package hslb

import (
	"strings"
	"testing"
)

// FuzzParseReport must never panic on arbitrary input.
func FuzzParseReport(f *testing.F) {
	f.Add(`{"taskNames":["a"],"fits":[{}],"nodes":[1],"predicted":[2],"makespan":2,"imbalance":1}`)
	f.Add(`{`)
	f.Add(``)
	f.Add(`{"taskNames":["a","b"],"nodes":[1],"predicted":[1,2]}`)
	f.Fuzz(func(t *testing.T, data string) {
		rep, err := ParseReport(strings.NewReader(data))
		if err != nil {
			return
		}
		// Accepted reports must be internally consistent.
		if len(rep.Nodes) != len(rep.TaskNames) || len(rep.Predicted) != len(rep.TaskNames) {
			t.Fatalf("inconsistent report accepted: %+v", rep)
		}
		// These must not panic.
		_ = rep.SortedByTime()
		var sb strings.Builder
		if len(rep.Fits) == len(rep.TaskNames) {
			_ = rep.WriteTable(&sb)
		}
	})
}
