// Package hslb is the public API of this repository: a from-scratch Go
// implementation of the Heuristic Static Load-Balancing (HSLB) algorithm of
// Alexeev, Mahajan, Leyffer, Fletcher and Fedorov ("Heuristic static
// load-balancing algorithm applied to the fragment molecular orbital
// method", SC 2012), together with every substrate the evaluation needs:
// an FMO application simulator, a Blue Gene/P-like machine model, a GDDI
// group-execution simulator, dynamic-load-balancing baselines, and a full
// MINLP optimization stack (LP simplex, convex NLP, MILP branch-and-bound
// with SOS1 branching, and LP/NLP-based outer approximation).
//
// # The algorithm
//
// HSLB replaces manual tuning of static node allocations with four steps:
//
//  1. Gather  — benchmark every task at a handful of node counts;
//  2. Fit     — least-squares fit the performance model
//     T(n) = a/n + b·nᶜ + d per task;
//  3. Solve   — find the allocation minimizing the maximum task time by
//     solving a mixed-integer nonlinear program with branch-and-bound
//     (globally optimal, since the fitted functions are convex);
//  4. Execute — run with the optimal allocation.
//
// RunPipeline drives all four steps; the sub-steps are available
// individually through the re-exported types below.
//
// # Package map
//
//   - core — allocation problems, solver routes, baselines (the paper's
//     contribution);
//   - perfmodel — the performance model and its fitting;
//   - fmo, machine, gddi, dlb — the application and machine substrates;
//   - coupled — the coupled-component layout extension;
//   - lp, nlp, milp, minlp, model — the optimization stack.
package hslb

import (
	"context"
	"errors"

	"repro/internal/core"
	"repro/internal/perfmodel"
)

// Re-exported core types: these form the public surface of the library.
type (
	// Task is one load-balancing unit with its performance model.
	Task = core.Task
	// Problem is an allocation instance (tasks, budget, objective).
	Problem = core.Problem
	// Allocation is a solved or heuristic node assignment.
	Allocation = core.Allocation
	// Objective selects min-max (default), max-min, or min-sum.
	Objective = core.Objective
	// SolverOptions tunes the MINLP route, including the graceful
	// Deadline and NodeBudget limits.
	SolverOptions = core.SolverOptions
	// NoIncumbentError reports a limited solve that found no feasible
	// point; Solve reacts by falling back to the parametric route.
	NoIncumbentError = core.NoIncumbentError
	// Params are the performance-model coefficients a, b, c, d.
	Params = perfmodel.Params
	// Sample is one benchmark observation (nodes, seconds).
	Sample = perfmodel.Sample
	// FitResult is a fitted performance function with R² diagnostics.
	FitResult = perfmodel.FitResult
	// FitOptions tunes the least-squares fit.
	FitOptions = perfmodel.FitOptions
)

// Objectives.
const (
	MinMax = core.MinMax
	MaxMin = core.MaxMin
	MinSum = core.MinSum
)

// ParseObjective maps the canonical objective names ("min-max", "max-min",
// "min-sum") onto the Objective constants; the CLI flags and the hslbd HTTP
// service share this parser.
var ParseObjective = core.ParseObjective

// Fit estimates performance-model coefficients from benchmark samples
// (HSLB step 2).
func Fit(samples []Sample, opts FitOptions) (*FitResult, error) {
	return perfmodel.Fit(samples, opts)
}

// SuggestSampleNodes returns benchmark node counts per the paper's
// guidance: minimum, maximum, and geometric intermediates.
func SuggestSampleNodes(minNodes, maxNodes, count int) []int {
	return perfmodel.SuggestSampleNodes(minNodes, maxNodes, count)
}

// Solve runs HSLB step 3 on an assembled problem using the paper's MINLP
// route, falling back to the specialized parametric solver when the MINLP
// route does not support the objective (max-min).
func Solve(p *Problem, opts SolverOptions) (*Allocation, error) {
	return SolveContext(context.Background(), p, opts)
}

// SolveContext is Solve with cooperative cancellation and graceful limits:
// when opts.Deadline or opts.NodeBudget stops the branch-and-bound early
// (or ctx is cancelled mid-solve), the best incumbent is returned with
// Allocation.Bounded set and the optimality gap reported; if no incumbent
// exists yet, the specialized parametric solver supplies a feasible
// allocation instead, carrying the MINLP's proven bound. SolveContext
// always returns a feasible allocation or an error explaining why none
// exists — never an unexplained limit error.
func SolveContext(ctx context.Context, p *Problem, opts SolverOptions) (*Allocation, error) {
	a, err := p.SolveMINLPContext(ctx, opts)
	if err == core.ErrObjectiveUnsupported {
		a, perr := p.SolveParametricContext(ctx)
		if perr == nil && opts.Canonical {
			a = p.CanonicalAllocation(a)
		}
		return a, perr
	}
	var noInc *core.NoIncumbentError
	if errors.As(err, &noInc) {
		// The limited B&B proved nothing feasible yet. The parametric
		// route is fast and bounded, so run it even under a cancelled
		// ctx (detached) to honour the feasible-allocation guarantee.
		a, perr := p.SolveParametric()
		if perr != nil {
			return nil, perr
		}
		a.Bounded = true
		a.BestBound = noInc.BestBound
		a.Gap = core.RelativeGap(p.ObjectiveValue(a), noInc.BestBound)
		if opts.Canonical {
			a = p.CanonicalAllocation(a)
		}
		return a, nil
	}
	return a, err
}

// SolveParametric runs the specialized exact solver (bisection on the
// objective level), which supports all three objectives and is much faster
// at very large node counts.
func SolveParametric(p *Problem) (*Allocation, error) {
	return p.SolveParametric()
}

// Baselines for comparison tables.
var (
	// Uniform is the GDDI-default equal-groups baseline.
	Uniform = core.Uniform
	// Proportional allocates proportionally to scalable work.
	Proportional = core.Proportional
	// ManualMimic imitates the paper's human-expert tuning loop.
	ManualMimic = core.ManualMimic
)

// JobSizePoint is one point of a machine-size sweep (see SweepJobSize).
type JobSizePoint = core.JobSizePoint

// SweepJobSize, FastestSize, and CostEfficientSize implement the paper's
// "prediction of the optimal number of nodes to run a job": sweep candidate
// machine sizes, then pick either the shortest time to solution or the
// largest size that keeps parallel efficiency above a floor.
var (
	SweepJobSize      = core.SweepJobSize
	FastestSize       = core.FastestSize
	CostEfficientSize = core.CostEfficientSize
	// SweepJobSizeContext is SweepJobSize with cancellation.
	SweepJobSizeContext = core.SweepJobSizeContext
	// SweepJobSizeTable answers the sweep from one parametric breakpoint
	// table instead of one solve per candidate size, and returns the table.
	SweepJobSizeTable = core.SweepJobSizeTable
)

// ParametricTable is the piecewise-constant allocation table of an
// N-parameterized instance family: the full answer to "how would the
// optimal allocation change with the node budget", computed with a handful
// of solves by walking breakpoints instead of re-solving every budget. See
// BuildParametricTable.
type ParametricTable = core.ParametricTable

// TableSegment is one budget bracket of a ParametricTable on which the
// optimal allocation is constant.
type TableSegment = core.TableSegment

// TableOptions configures BuildParametricTable.
type TableOptions = core.TableOptions

// BuildParametricTable computes the allocation table of base over the
// budget range [fromN, toN], verifying every segment boundary against a
// fresh solve.
func BuildParametricTable(ctx context.Context, base *Problem, fromN, toN int, opts TableOptions) (*ParametricTable, error) {
	return core.BuildParametricTable(ctx, base, fromN, toN, opts)
}
