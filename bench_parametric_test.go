package hslb

// Parametric breakpoint-table benchmarks: solving one N-parameterized
// family at EVERY budget in a range, either directly (one solve per
// budget) or through a breakpoint table (a handful of solves walking the
// segments, then pure lookups). TestMain records the totals in
// BENCH_parametric.json, which the CI bench job archives:
//
//	go test . -run xxx -bench ParametricSweep -benchtime 1x

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/perfmodel"
	"repro/internal/stats"
)

// parametricRecord is one sweep benchmark's totals, serialized into
// BENCH_parametric.json.
type parametricRecord struct {
	Name     string  `json:"name"`
	NsPerOp  float64 `json:"ns_per_op"`
	Budgets  int     `json:"budgets"`
	Solves   float64 `json:"solves_per_op"`
	Segments int     `json:"segments,omitempty"`
}

var parametricMu sync.Mutex
var parametricRecords []parametricRecord

func recordParametric(b *testing.B, budgets, segments int, solves float64) {
	b.ReportMetric(solves/float64(b.N), "solves/op")
	parametricMu.Lock()
	parametricRecords = append(parametricRecords, parametricRecord{
		Name:     b.Name(),
		NsPerOp:  float64(b.Elapsed().Nanoseconds()) / float64(b.N),
		Budgets:  budgets,
		Solves:   solves / float64(b.N),
		Segments: segments,
	})
	parametricMu.Unlock()
}

func writeParametricJSON() {
	parametricMu.Lock()
	defer parametricMu.Unlock()
	sort.Slice(parametricRecords, func(i, j int) bool {
		return parametricRecords[i].Name < parametricRecords[j].Name
	})
	byName := map[string]parametricRecord{}
	for _, r := range parametricRecords {
		byName[r.Name] = r
	}
	out := struct {
		Benchmarks []parametricRecord `json:"benchmarks"`
		// SweepSpeedup is the headline number: direct per-budget solving
		// vs the table build plus lookups, same family, same budgets.
		SweepSpeedup float64 `json:"sweep_speedup,omitempty"`
	}{Benchmarks: parametricRecords}
	d, dok := byName["BenchmarkParametricSweepDirect"]
	tb, tok := byName["BenchmarkParametricSweepTable"]
	if dok && tok && tb.NsPerOp > 0 {
		out.SweepSpeedup = d.NsPerOp / tb.NsPerOp
		fmt.Printf("\nparametric sweep: direct %.3fms vs table %.3fms (%.1fx) over %d budgets\n",
			d.NsPerOp/1e6, tb.NsPerOp/1e6, out.SweepSpeedup, d.Budgets)
	}
	buf, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "parametric bench collector:", err)
		return
	}
	if err := os.WriteFile("BENCH_parametric.json", append(buf, '\n'), 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "parametric bench collector:", err)
	}
}

// sweepFamily is the production workload shape: a few tasks, each
// restricted to power-of-two sweet-spot node counts, swept across the
// whole budget range.
func sweepFamily(seed uint64, total int) *core.Problem {
	rng := stats.NewRNG(seed)
	p := &core.Problem{TotalNodes: total, Objective: core.MinMax}
	for t := 0; t < 4; t++ {
		var set []int
		for n := 1; n <= total; n *= 2 {
			set = append(set, n)
		}
		p.Tasks = append(p.Tasks, core.Task{
			Name: "t",
			Perf: perfmodel.Params{
				A: rng.Range(1e3, 5e4),
				B: rng.Range(0, 1e-3),
				C: 1 + rng.Float64()*0.4,
				D: rng.Range(0, 10),
			},
			Allowed: set,
		})
	}
	return p
}

const sweepTotal = 2048

func sweepRange(p *core.Problem) (int, int) { return len(p.Tasks), p.TotalNodes }

// BenchmarkParametricSweepDirect solves the family at every budget, one
// parametric solve per budget — the pre-table cost of answering "what is
// the optimal allocation at every machine size".
func BenchmarkParametricSweepDirect(b *testing.B) {
	p := sweepFamily(47, sweepTotal)
	lo, hi := sweepRange(p)
	solves := 0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for n := lo; n <= hi; n++ {
			q := p.WithBudget(n)
			if q.Validate() != nil {
				continue
			}
			if _, err := q.SolveParametricContext(context.Background()); err != nil {
				b.Fatalf("N=%d: %v", n, err)
			}
			solves++
		}
	}
	recordParametric(b, hi-lo+1, 0, float64(solves))
}

// BenchmarkParametricSweepTable answers the same sweep by building the
// breakpoint table once (a handful of boundary-walking solves) and serving
// every budget by lookup.
func BenchmarkParametricSweepTable(b *testing.B) {
	p := sweepFamily(47, sweepTotal)
	lo, hi := sweepRange(p)
	var solves float64
	var segments int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tab, err := core.BuildParametricTable(context.Background(), p, lo, hi, core.TableOptions{})
		if err != nil {
			b.Fatal(err)
		}
		for n := lo; n <= hi; n++ {
			tab.Lookup(n)
		}
		solves += float64(tab.Solves)
		segments = len(tab.Segments)
	}
	recordParametric(b, hi-lo+1, segments, solves)
}

// TestParametricSweepAmortization is the deterministic form of the bench
// claim: on the production workload shape, the table answers the full
// budget sweep with at least 10x fewer solver calls than per-budget
// solving, and the answers are the same (spot-checked bit-for-bit here,
// exhaustively in internal/core and internal/serve).
func TestParametricSweepAmortization(t *testing.T) {
	p := sweepFamily(47, sweepTotal)
	lo, hi := sweepRange(p)
	start := time.Now()
	tab, err := core.BuildParametricTable(context.Background(), p, lo, hi, core.TableOptions{})
	if err != nil {
		t.Fatal(err)
	}
	buildTime := time.Since(start)
	budgets := hi - lo + 1
	if tab.Solves*10 > budgets {
		t.Fatalf("table spent %d solves for %d budgets — amortization below 10x", tab.Solves, budgets)
	}
	start = time.Now()
	checked := 0
	for n := lo; n <= hi; n += 97 { // spot-check a spread of budgets
		q := p.WithBudget(n)
		if q.Validate() != nil {
			continue
		}
		a, err := q.SolveParametricContext(context.Background())
		if err != nil {
			t.Fatalf("N=%d: %v", n, err)
		}
		a = q.CanonicalAllocation(a)
		seg, ok := tab.Lookup(n)
		if !ok {
			t.Fatalf("N=%d: solvable budget not covered", n)
		}
		if seg.Makespan != a.Makespan {
			t.Fatalf("N=%d: table %v vs direct %v", n, seg.Makespan, a.Makespan)
		}
		for i := range a.Nodes {
			if seg.Nodes[i] != a.Nodes[i] {
				t.Fatalf("N=%d: nodes %v vs %v", n, seg.Nodes, a.Nodes)
			}
		}
		checked++
	}
	directTime := time.Since(start)
	perBudget := directTime / time.Duration(checked)
	t.Logf("table: %d segments, %d solves for %d budgets (%.0fx solve amortization); build %v vs ~%v direct (est. %v for all budgets)",
		len(tab.Segments), tab.Solves, budgets, float64(budgets)/float64(tab.Solves),
		buildTime, perBudget, perBudget*time.Duration(budgets))
}
