package hslb

// One benchmark per experiment in DESIGN.md's index (T1–T7, F1–F2): each
// regenerates the corresponding table/figure series at Quick scale so that
// `go test -bench=.` exercises the entire reproduction harness. Run
// `go run ./cmd/fmobench -scale full` for the paper-scale numbers recorded
// in EXPERIMENTS.md.

import (
	"math"
	"testing"

	"repro/internal/experiments"
	"repro/internal/stats"
)

func benchTable(b *testing.B, run func(experiments.Scale) (*experiments.Table, error)) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		tbl, err := run(experiments.Quick)
		if err != nil {
			b.Fatal(err)
		}
		if len(tbl.Rows) == 0 {
			b.Fatalf("%s produced no rows", tbl.ID)
		}
	}
}

// BenchmarkT1FitQuality regenerates T1: performance-model fit quality vs
// the number of benchmark points (paper claim C5).
func BenchmarkT1FitQuality(b *testing.B) { benchTable(b, experiments.T1FitQuality) }

// BenchmarkT2Objectives regenerates T2: min-max vs max-min vs min-sum
// objectives (paper claim C3).
func BenchmarkT2Objectives(b *testing.B) { benchTable(b, experiments.T2Objectives) }

// BenchmarkT3Baselines regenerates T3: executed time of HSLB vs uniform /
// proportional / manual / tuned-DLB baselines (paper claim C2).
func BenchmarkT3Baselines(b *testing.B) { benchTable(b, experiments.T3Baselines) }

// BenchmarkF1Scaling regenerates the F1 figure series: predicted vs actual
// scaling curves (paper claim C1).
func BenchmarkF1Scaling(b *testing.B) { benchTable(b, experiments.F1Scaling) }

// BenchmarkT4Solver regenerates T4: SOS1 vs binary branching in the MINLP
// solver (paper claim C4).
func BenchmarkT4Solver(b *testing.B) { benchTable(b, experiments.T4Solver) }

// BenchmarkT4Relaxation regenerates T4b: LP/NLP-based B&B ablations.
func BenchmarkT4Relaxation(b *testing.B) { benchTable(b, experiments.T4Relaxation) }

// BenchmarkT5Sensitivity regenerates T5: allocation quality vs benchmark
// budget, interpolation vs extrapolation (paper claim C5).
func BenchmarkT5Sensitivity(b *testing.B) { benchTable(b, experiments.T5Sensitivity) }

// BenchmarkT6Coupled regenerates T6: the coupled-extension Table III analog
// (paper claim C6).
func BenchmarkT6Coupled(b *testing.B) { benchTable(b, experiments.T6Coupled) }

// BenchmarkF2Layouts regenerates the F2 figure series: layouts (1)-(3)
// comparison (paper claim C6).
func BenchmarkF2Layouts(b *testing.B) { benchTable(b, experiments.F2Layouts) }

// BenchmarkT7Crossover regenerates T7: the SLB/DLB regime crossover (the
// introduction's positioning claim).
func BenchmarkT7Crossover(b *testing.B) { benchTable(b, experiments.T7Crossover) }

// BenchmarkT8Families regenerates T8: the performance-model family
// ablation (HSLB form vs Amdahl vs power law, AICc-selected).
func BenchmarkT8Families(b *testing.B) { benchTable(b, experiments.T8Families) }

// benchTruth is a fit-heavy synthetic workload: enough tasks and multistart
// work that the pipeline's parallel stages dominate the run.
func benchTruth() []Params {
	rng := stats.NewRNG(7)
	truth := make([]Params, 16)
	for i := range truth {
		truth[i] = Params{
			A: rng.Range(500, 64000), B: rng.Range(0, 1e-3),
			C: 1 + rng.Float64()*0.3, D: rng.Range(0, 12),
		}
	}
	return truth
}

// benchPipelineAt runs the paired serial-vs-parallel pipeline benchmark.
// The two variants use the same seed, so their allocations must be
// bit-identical — the benchmark asserts it, making the speedup comparison
// `go test -bench 'PipelineFit(Serial|Parallel4)'` an apples-to-apples
// measurement (the ratio demonstrates the speedup on a multi-core host;
// on a single CPU the variants tie).
func benchPipelineAt(b *testing.B, parallelism int) {
	truth := benchTruth()
	names := make([]string, len(truth))
	for i := range names {
		names[i] = "t"
	}
	cfg := func(par int) *PipelineConfig {
		return &PipelineConfig{
			TaskNames:  names,
			TotalNodes: 4096,
			Benchmark: func(task, nodes int) float64 {
				return truth[task].Eval(float64(nodes))
			},
			UseParametric: true,
			Fit:           FitOptions{Starts: 24},
			Seed:          1,
			Parallelism:   par,
		}
	}
	ref, err := RunPipeline(cfg(-1))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := RunPipeline(cfg(parallelism))
		if err != nil {
			b.Fatal(err)
		}
		if math.Float64bits(res.Allocation.Makespan) != math.Float64bits(ref.Allocation.Makespan) {
			b.Fatalf("parallelism %d changed the optimum: %v vs %v",
				parallelism, res.Allocation.Makespan, ref.Allocation.Makespan)
		}
	}
}

// BenchmarkPipelineFitSerial is the serial baseline of the pair.
func BenchmarkPipelineFitSerial(b *testing.B) { benchPipelineAt(b, -1) }

// BenchmarkPipelineFitParallel4 is the 4-worker variant of the pair.
func BenchmarkPipelineFitParallel4(b *testing.B) { benchPipelineAt(b, 4) }

// benchSolverProblem builds an allocation MINLP whose tasks are restricted
// to sweet-spot sets — the structure whose branch-and-bound tree gives the
// speculative LP workers something to prefetch.
func benchSolverProblem() *Problem {
	rng := stats.NewRNG(44)
	p := &Problem{TotalNodes: 2048, Objective: MinMax}
	for t := 0; t < 4; t++ {
		set := make([]int, 0, 60)
		n := 1 + rng.Intn(3)
		for len(set) < 60 && n < p.TotalNodes {
			set = append(set, n)
			n += 1 + rng.Intn(23)
		}
		p.Tasks = append(p.Tasks, Task{
			Name: "t",
			Perf: Params{
				A: rng.Range(1e3, 5e4), B: rng.Range(0, 1e-3),
				C: 1 + rng.Float64()*0.4, D: rng.Range(0, 10),
			},
			Allowed: set,
		})
	}
	return p
}

// benchSolveAt runs the paired serial-vs-parallel MINLP benchmark; like the
// pipeline pair, it asserts the optimum is bit-identical across variants.
func benchSolveAt(b *testing.B, parallelism int) {
	p := benchSolverProblem()
	ref, err := Solve(p, SolverOptions{Parallelism: -1})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a, err := Solve(p, SolverOptions{Parallelism: parallelism})
		if err != nil {
			b.Fatal(err)
		}
		if math.Float64bits(a.Makespan) != math.Float64bits(ref.Makespan) {
			b.Fatalf("parallelism %d changed the optimum: %v vs %v",
				parallelism, a.Makespan, ref.Makespan)
		}
	}
}

// BenchmarkSolveMINLPSerial is the serial baseline of the solver pair.
func BenchmarkSolveMINLPSerial(b *testing.B) { benchSolveAt(b, -1) }

// BenchmarkSolveMINLPParallel4 is the 4-worker variant of the solver pair.
func BenchmarkSolveMINLPParallel4(b *testing.B) { benchSolveAt(b, 4) }

// BenchmarkPipeline measures the full four-step pipeline on a synthetic
// 8-task workload (the library's hot path).
func BenchmarkPipeline(b *testing.B) {
	truth := []Params{
		{A: 2000, C: 1, D: 2}, {A: 9000, C: 1, D: 5},
		{A: 32000, C: 1.1, D: 10}, {A: 500, C: 1, D: 1},
		{A: 15000, C: 1, D: 4}, {A: 64000, C: 1.05, D: 12},
		{A: 1200, C: 1, D: 2}, {A: 7000, C: 1, D: 3},
	}
	names := make([]string, len(truth))
	for i := range names {
		names[i] = "t"
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, err := RunPipeline(&PipelineConfig{
			TaskNames:  names,
			TotalNodes: 4096,
			Benchmark: func(task, nodes int) float64 {
				return truth[task].Eval(float64(nodes))
			},
			UseParametric: true,
			Seed:          uint64(i + 1),
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}
