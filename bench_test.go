package hslb

// One benchmark per experiment in DESIGN.md's index (T1–T7, F1–F2): each
// regenerates the corresponding table/figure series at Quick scale so that
// `go test -bench=.` exercises the entire reproduction harness. Run
// `go run ./cmd/fmobench -scale full` for the paper-scale numbers recorded
// in EXPERIMENTS.md.

import (
	"testing"

	"repro/internal/experiments"
)

func benchTable(b *testing.B, run func(experiments.Scale) (*experiments.Table, error)) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		tbl, err := run(experiments.Quick)
		if err != nil {
			b.Fatal(err)
		}
		if len(tbl.Rows) == 0 {
			b.Fatalf("%s produced no rows", tbl.ID)
		}
	}
}

// BenchmarkT1FitQuality regenerates T1: performance-model fit quality vs
// the number of benchmark points (paper claim C5).
func BenchmarkT1FitQuality(b *testing.B) { benchTable(b, experiments.T1FitQuality) }

// BenchmarkT2Objectives regenerates T2: min-max vs max-min vs min-sum
// objectives (paper claim C3).
func BenchmarkT2Objectives(b *testing.B) { benchTable(b, experiments.T2Objectives) }

// BenchmarkT3Baselines regenerates T3: executed time of HSLB vs uniform /
// proportional / manual / tuned-DLB baselines (paper claim C2).
func BenchmarkT3Baselines(b *testing.B) { benchTable(b, experiments.T3Baselines) }

// BenchmarkF1Scaling regenerates the F1 figure series: predicted vs actual
// scaling curves (paper claim C1).
func BenchmarkF1Scaling(b *testing.B) { benchTable(b, experiments.F1Scaling) }

// BenchmarkT4Solver regenerates T4: SOS1 vs binary branching in the MINLP
// solver (paper claim C4).
func BenchmarkT4Solver(b *testing.B) { benchTable(b, experiments.T4Solver) }

// BenchmarkT4Relaxation regenerates T4b: LP/NLP-based B&B ablations.
func BenchmarkT4Relaxation(b *testing.B) { benchTable(b, experiments.T4Relaxation) }

// BenchmarkT5Sensitivity regenerates T5: allocation quality vs benchmark
// budget, interpolation vs extrapolation (paper claim C5).
func BenchmarkT5Sensitivity(b *testing.B) { benchTable(b, experiments.T5Sensitivity) }

// BenchmarkT6Coupled regenerates T6: the coupled-extension Table III analog
// (paper claim C6).
func BenchmarkT6Coupled(b *testing.B) { benchTable(b, experiments.T6Coupled) }

// BenchmarkF2Layouts regenerates the F2 figure series: layouts (1)-(3)
// comparison (paper claim C6).
func BenchmarkF2Layouts(b *testing.B) { benchTable(b, experiments.F2Layouts) }

// BenchmarkT7Crossover regenerates T7: the SLB/DLB regime crossover (the
// introduction's positioning claim).
func BenchmarkT7Crossover(b *testing.B) { benchTable(b, experiments.T7Crossover) }

// BenchmarkT8Families regenerates T8: the performance-model family
// ablation (HSLB form vs Amdahl vs power law, AICc-selected).
func BenchmarkT8Families(b *testing.B) { benchTable(b, experiments.T8Families) }

// BenchmarkPipeline measures the full four-step pipeline on a synthetic
// 8-task workload (the library's hot path).
func BenchmarkPipeline(b *testing.B) {
	truth := []Params{
		{A: 2000, C: 1, D: 2}, {A: 9000, C: 1, D: 5},
		{A: 32000, C: 1.1, D: 10}, {A: 500, C: 1, D: 1},
		{A: 15000, C: 1, D: 4}, {A: 64000, C: 1.05, D: 12},
		{A: 1200, C: 1, D: 2}, {A: 7000, C: 1, D: 3},
	}
	names := make([]string, len(truth))
	for i := range names {
		names[i] = "t"
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, err := RunPipeline(&PipelineConfig{
			TaskNames:  names,
			TotalNodes: 4096,
			Benchmark: func(task, nodes int) float64 {
				return truth[task].Eval(float64(nodes))
			},
			UseParametric: true,
			Seed:          uint64(i + 1),
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}
