package hslb

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
)

// Report is the JSON-serializable summary of a pipeline run, suitable for
// the CLI tools and for archiving alongside experiment outputs.
type Report struct {
	TaskNames []string    `json:"taskNames"`
	Fits      []FitResult `json:"fits"`
	Nodes     []int       `json:"nodes"`
	Predicted []float64   `json:"predicted"`
	Makespan  float64     `json:"makespan"`
	Imbalance float64     `json:"imbalance"`
	Executed  *float64    `json:"executed,omitempty"`
}

// NewReport assembles a Report from a pipeline result.
func NewReport(names []string, r *PipelineResult) *Report {
	rep := &Report{
		TaskNames: append([]string(nil), names...),
		Fits:      append([]FitResult(nil), r.Fits...),
		Nodes:     append([]int(nil), r.Allocation.Nodes...),
		Predicted: append([]float64(nil), r.Allocation.Times...),
		Makespan:  r.Allocation.Makespan,
		Imbalance: r.Allocation.Imbalance,
	}
	if !math.IsNaN(r.Executed) {
		v := r.Executed
		rep.Executed = &v
	}
	return rep
}

// WriteJSON writes the report as indented JSON.
func (r *Report) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// WriteTable writes the report as an aligned text table in the style of the
// paper's Table III.
func (r *Report) WriteTable(w io.Writer) error {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-12s %10s %14s %8s\n", "component", "# nodes", "time, sec", "R²")
	for i, name := range r.TaskNames {
		fmt.Fprintf(&sb, "%-12s %10d %14.3f %8.4f\n", name, r.Nodes[i], r.Predicted[i], r.Fits[i].R2)
	}
	fmt.Fprintf(&sb, "%-12s %10s %14.3f\n", "total", "", r.Makespan)
	if r.Executed != nil {
		fmt.Fprintf(&sb, "%-12s %10s %14.3f\n", "executed", "", *r.Executed)
	}
	_, err := io.WriteString(w, sb.String())
	return err
}

// ParseReport reads a JSON report.
func ParseReport(rd io.Reader) (*Report, error) {
	var r Report
	if err := json.NewDecoder(rd).Decode(&r); err != nil {
		return nil, fmt.Errorf("hslb: parsing report: %w", err)
	}
	if len(r.Nodes) != len(r.TaskNames) || len(r.Predicted) != len(r.TaskNames) {
		return nil, fmt.Errorf("hslb: report arrays disagree on task count")
	}
	return &r, nil
}

// SortedByTime returns task indices ordered by descending predicted time
// (largest first), for "what dominates the run" summaries.
func (r *Report) SortedByTime() []int {
	idx := make([]int, len(r.Predicted))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool {
		return r.Predicted[idx[a]] > r.Predicted[idx[b]]
	})
	return idx
}
