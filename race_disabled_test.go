//go:build !race

package hslb

// raceEnabled reports whether the race detector is compiled in.
const raceEnabled = false
