package hslb

// Large-N scaling sweep for the LP layer's sparse kernels (see DESIGN.md,
// "Sparse kernels and presolve"). Each size builds the min-max T-series
// allocation LP — the paper's load-balancing shape, with one pick row and
// one load row per fragment family — and cold-solves it through the sparse
// path and the dense authority:
//
//	go test . -run xxx -bench BenchmarkScaling -benchtime 1x
//
// TestMain collects the per-size records into BENCH_scaling.json and prints
// a per-N dense-vs-sparse summary for the CI job log. The dense authority
// is capped at denseCap: above it a cold dense solve costs O(m·n) per pivot
// with m and n both in the thousands, minutes of wall clock that buy no
// information the capped sizes don't already give.

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"os/exec"
	"runtime"
	"sort"
	"strings"
	"testing"
	"time"

	"repro/internal/lp"
	"repro/internal/stats"
)

// scalingRecord is one (size, variant) measurement in BENCH_scaling.json.
type scalingRecord struct {
	Name        string  `json:"name"`
	N           int     `json:"n"`
	Variant     string  `json:"variant"` // "sparse", "dense", or "crash"
	NsPerOp     float64 `json:"ns_per_op"`
	Pivots      float64 `json:"pivots_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
}

// scalingMeta stamps each BENCH_scaling.json with the environment it was
// measured in, so archived artifacts from different commits and runners
// can be compared without guessing.
type scalingMeta struct {
	Commit    string `json:"commit,omitempty"`
	Date      string `json:"date"`
	GoVersion string `json:"go_version"`
}

var scalingRecords []scalingRecord

// scalingSizes is the full sweep; short mode stops at 512 to keep the CI
// smoke fast, and the dense authority stops at denseCap regardless. The
// 16384 and 65536 points are sparse-only (the dense authority would need
// hours there) and exist to pin the interactive-scale claim: a cold sparse
// solve at N=16384 lands under half a minute on a laptop-class core.
var scalingSizes = []int{128, 256, 512, 1024, 2048, 4096, 16384, 65536}

const (
	scalingShortCap = 512
	denseCap        = 1024
)

// minmaxTSeriesLP builds the continuous relaxation of the paper's min-max
// allocation problem at N fragment families: for each family a pick row
// (Σ_k z_fk = 1 over K sweet-spot configs), a load row coupling the family
// to the makespan T (Σ_k time_fk·z_fk − T ≤ 0), and one global node-budget
// row. Rows touch K+1 of the K·N+1 columns, the sparsity the kernels are
// built for.
//
// The second return is the paper-style heuristic hint the crash layer
// consumes: bisect the makespan target, give each family the cheapest
// (fewest-node) configuration meeting it, and value T at the selection's
// makespan. This is the greedy static allocation a production caller has
// in hand before any LP runs — not a solved optimum.
func minmaxTSeriesLP(n int, seed uint64) (*lp.Problem, []float64) {
	const K = 4
	rng := stats.NewRNG(seed)
	p := lp.NewProblem()
	T := p.AddVariable(0, lp.Inf, 1, "T")
	budget := make([]lp.Term, 0, K*n)
	famVars := make([][K]int, n)
	famTimes := make([][K]float64, n)
	famNodes := make([][K]float64, n)
	for f := 0; f < n; f++ {
		pick := make([]lp.Term, K)
		load := make([]lp.Term, 0, K+1)
		nodes := 1 + rng.Intn(8)
		a := rng.Range(50, 500)
		for k := 0; k < K; k++ {
			z := p.AddVariable(0, 1, 0, "")
			pick[k] = lp.Term{Var: z, Coef: 1}
			// DLB-style time curve: work/nodes plus a linear overhead.
			t := a/float64(nodes) + 0.1*float64(nodes) + rng.Range(0, 5)
			load = append(load, lp.Term{Var: z, Coef: t})
			budget = append(budget, lp.Term{Var: z, Coef: float64(nodes)})
			famVars[f][k], famTimes[f][k], famNodes[f][k] = z, t, float64(nodes)
			nodes *= 2
		}
		p.AddConstraint(pick, lp.EQ, 1, "")
		load = append(load, lp.Term{Var: T, Coef: -1})
		p.AddConstraint(load, lp.LE, 0, "")
	}
	// Smallest configs average 4.5 nodes per family; 6N leaves room to pick
	// while keeping the budget row binding (families want larger configs).
	nodeCap := 6 * float64(n)
	p.AddConstraint(budget, lp.LE, nodeCap, "")

	// Bisection on the makespan target: feasible(tgt) picks per family the
	// cheapest config with time ≤ tgt and checks the node budget.
	pickAt := func(tgt float64) ([]int, bool) {
		sel := make([]int, n)
		tot := 0.0
		for f := 0; f < n; f++ {
			bi, bn := -1, math.Inf(1)
			for k := 0; k < K; k++ {
				if famTimes[f][k] <= tgt && famNodes[f][k] < bn {
					bn, bi = famNodes[f][k], k
				}
			}
			if bi < 0 {
				return nil, false
			}
			sel[f] = bi
			tot += bn
		}
		return sel, tot <= nodeCap
	}
	lo, hi := 0.0, 0.0
	for f := 0; f < n; f++ {
		mn := math.Inf(1)
		for k := 0; k < K; k++ {
			if famTimes[f][k] < mn {
				mn = famTimes[f][k]
			}
		}
		if mn > lo {
			lo = mn
		}
		if famTimes[f][0] > hi {
			hi = famTimes[f][0]
		}
	}
	if hi < lo {
		hi = lo
	}
	var sel []int
	for it := 0; it < 60; it++ {
		mid := 0.5 * (lo + hi)
		if s, ok := pickAt(mid); ok {
			sel, hi = s, mid
		} else {
			lo = mid
		}
	}
	if sel == nil {
		sel, _ = pickAt(hi)
	}
	hint := make([]float64, p.NumVariables())
	maxT := 0.0
	for f := 0; f < n; f++ {
		hint[famVars[f][sel[f]]] = 1
		if t := famTimes[f][sel[f]]; t > maxT {
			maxT = t
		}
	}
	hint[T] = maxT
	return p, hint
}

// scalingMinOfCap bounds the sizes that are solved twice with the minimum
// wall clock recorded. The container's shared vCPU sees 15–40% run-to-run
// steal-time noise (measured: the same N=4096 binary lands anywhere from
// 1.31 s to 1.94 s); min-of-2 recovers the machine's actual solve cost for
// the sizes where a second solve is cheap, which is what the committed
// baseline and its CI regression gate need. Above the cap (N=16384/65536,
// minutes per solve) a single measurement stands.
const scalingMinOfCap = 4096

func benchScalingAt(b *testing.B, n int, variant string) {
	b.ReportAllocs()
	p, hint := minmaxTSeriesLP(n, 4242)
	switch variant {
	case "dense":
		p.DisableSparse = true
	case "crash":
		p.SetCrashPoint(hint)
	}
	// Settle the heap before timing: earlier sweep sizes leave pooled
	// arenas and a grown GC target behind (the dense N=1024 authority
	// alone retains a ~136 MB arena).
	runtime.GC()
	reps := 1
	if variant != "dense" && n <= scalingMinOfCap {
		reps = 2
	}
	b.ResetTimer()
	var pivots int
	best := int64(math.MaxInt64)
	allocs0 := mallocsNow()
	for i := 0; i < b.N; i++ {
		for r := 0; r < reps; r++ {
			t0 := time.Now()
			sol, err := p.Solve()
			d := time.Since(t0).Nanoseconds()
			if err != nil || sol.Status != lp.Optimal {
				b.Fatalf("N=%d %s: status %v err %v", n, variant, sol.Status, err)
			}
			if d < best {
				best = d
			}
			if r == 0 {
				pivots += sol.Pivots
			}
		}
	}
	allocs := (mallocsNow() - allocs0) / uint64(reps)
	b.ReportMetric(float64(pivots)/float64(b.N), "pivots/op")
	benchMu.Lock()
	scalingRecords = append(scalingRecords, scalingRecord{
		Name:        b.Name(),
		N:           n,
		Variant:     variant,
		NsPerOp:     float64(best),
		Pivots:      float64(pivots) / float64(b.N),
		AllocsPerOp: float64(allocs) / float64(b.N),
	})
	benchMu.Unlock()
}

// BenchmarkScaling sweeps the min-max T-series LP from N=128 to N=65536
// fragment families, cold-solving each size through the sparse kernels,
// the crash-hinted sparse path (the production shape: the heuristic
// allocation seeds the basis), and — up to denseCap — the dense authority.
func BenchmarkScaling(b *testing.B) {
	for _, n := range scalingSizes {
		if testing.Short() && n > scalingShortCap {
			b.Logf("short mode: skipping N=%d (cap %d)", n, scalingShortCap)
			continue
		}
		for _, variant := range []string{"sparse", "crash", "dense"} {
			if variant == "dense" && n > denseCap {
				b.Logf("dense authority capped at N=%d: skipping N=%d", denseCap, n)
				continue
			}
			n, variant := n, variant
			b.Run(fmt.Sprintf("N=%d/%s", n, variant), func(b *testing.B) {
				benchScalingAt(b, n, variant)
			})
		}
	}
}

// compareScalingBaseline diffs fresh records against the committed
// BENCH_scaling.json per N and variant, on all three metrics: time/op
// (>20% slower trips), pivots/op (>10% more trips — pivot counts are
// deterministic per commit, so any growth is a real algorithmic
// regression, and the slack only covers tie-breaking drift), and
// allocs/op (>20% more trips — alloc counts are deterministic up to pool
// warm-up). It prints a benchstat-style summary and, when the
// SCALING_GATE environment variable is non-empty, fails the process on
// any tripped point. The gate is opt-in because 1x time measurements on
// shared CI runners are noisy; the bench-smoke job opts in, local runs
// just see the table.
func compareScalingBaseline(fresh []scalingRecord) (regressed bool) {
	buf, err := os.ReadFile("BENCH_scaling.json")
	if err != nil {
		return false // no committed baseline: nothing to compare
	}
	var base struct {
		Benchmarks []scalingRecord `json:"benchmarks"`
	}
	if err := json.Unmarshal(buf, &base); err != nil {
		fmt.Fprintln(os.Stderr, "scaling baseline unreadable:", err)
		return false
	}
	baseBy := map[string]scalingRecord{}
	for _, r := range base.Benchmarks {
		baseBy[fmt.Sprintf("%d/%s", r.N, r.Variant)] = r
	}
	fmt.Println("\nscaling vs committed baseline (time/op, pivots/op, allocs/op):")
	for _, r := range fresh {
		key := fmt.Sprintf("%d/%s", r.N, r.Variant)
		b, ok := baseBy[key]
		if !ok || b.NsPerOp <= 0 {
			continue
		}
		dT := (r.NsPerOp - b.NsPerOp) / b.NsPerOp * 100
		flag := ""
		if dT > 20 {
			flag = "  << TIME REGRESSION"
			regressed = true
		}
		var dP, dA float64
		if b.Pivots > 0 {
			dP = (r.Pivots - b.Pivots) / b.Pivots * 100
			if dP > 10 {
				flag += "  << PIVOT REGRESSION"
				regressed = true
			}
		}
		if b.AllocsPerOp > 0 {
			dA = (r.AllocsPerOp - b.AllocsPerOp) / b.AllocsPerOp * 100
			if dA > 20 {
				flag += "  << ALLOC REGRESSION"
				regressed = true
			}
		}
		fmt.Printf("  N=%-5d %-6s time %9.2fms → %9.2fms %+6.1f%%   pivots %+6.1f%%   allocs %+6.1f%%%s\n",
			r.N, r.Variant, b.NsPerOp/1e6, r.NsPerOp/1e6, dT, dP, dA, flag)
	}
	return regressed
}

func writeScalingJSON() {
	sort.Slice(scalingRecords, func(i, j int) bool {
		if scalingRecords[i].N != scalingRecords[j].N {
			return scalingRecords[i].N < scalingRecords[j].N
		}
		return scalingRecords[i].Variant < scalingRecords[j].Variant
	})
	regressed := compareScalingBaseline(scalingRecords)
	meta := scalingMeta{
		Date:      time.Now().UTC().Format(time.RFC3339),
		GoVersion: runtime.Version(),
	}
	if out, err := exec.Command("git", "rev-parse", "--short", "HEAD").Output(); err == nil {
		meta.Commit = strings.TrimSpace(string(out))
	}
	buf, err := json.MarshalIndent(struct {
		Meta       scalingMeta     `json:"meta"`
		Benchmarks []scalingRecord `json:"benchmarks"`
	}{meta, scalingRecords}, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "scaling collector:", err)
		return
	}
	if err := os.WriteFile("BENCH_scaling.json", append(buf, '\n'), 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "scaling collector:", err)
		return
	}
	// Per-N dense-vs-sparse summary for the CI job log.
	bySize := map[int]map[string]scalingRecord{}
	sizes := []int{}
	for _, r := range scalingRecords {
		if bySize[r.N] == nil {
			bySize[r.N] = map[string]scalingRecord{}
			sizes = append(sizes, r.N)
		}
		bySize[r.N][r.Variant] = r
	}
	sort.Ints(sizes)
	fmt.Println("\ndense vs sparse cold solve (time/op, pivots/op, allocs/op):")
	for _, n := range sizes {
		s, okS := bySize[n]["sparse"]
		d, okD := bySize[n]["dense"]
		switch {
		case okS && okD:
			fmt.Printf("  N=%-5d time %9.1fms → %8.1fms (%5.2fx)   pivots %7.0f → %7.0f   allocs %7.0f → %7.0f\n",
				n, d.NsPerOp/1e6, s.NsPerOp/1e6, safeRatio(d.NsPerOp, s.NsPerOp),
				d.Pivots, s.Pivots, d.AllocsPerOp, s.AllocsPerOp)
		case okS:
			fmt.Printf("  N=%-5d time %12s → %8.1fms            pivots %7s → %7.0f   (dense authority capped at N=%d)\n",
				n, "—", s.NsPerOp/1e6, "—", s.Pivots, denseCap)
		}
	}
	fmt.Println("\ncold vs crash-hinted sparse solve (time/op, pivots/op):")
	for _, n := range sizes {
		s, okS := bySize[n]["sparse"]
		c, okC := bySize[n]["crash"]
		if !okS || !okC {
			continue
		}
		fmt.Printf("  N=%-5d time %9.1fms → %8.1fms (%5.2fx)   pivots %7.0f → %7.0f (%5.2fx)\n",
			n, s.NsPerOp/1e6, c.NsPerOp/1e6, safeRatio(s.NsPerOp, c.NsPerOp),
			s.Pivots, c.Pivots, safeRatio(s.Pivots, c.Pivots))
	}
	if regressed && os.Getenv("SCALING_GATE") != "" {
		fmt.Fprintln(os.Stderr, "SCALING_GATE: >20% time/op regression against committed BENCH_scaling.json")
		os.Exit(1)
	}
}

// solveAllocsAndPivots cold-solves the N-family T-series LP once (after a
// pool-warming solve) and returns the heap allocations and pivots of the
// measured solve.
func solveAllocsAndPivots(t *testing.T, n int) (allocs uint64, pivots int) {
	p, _ := minmaxTSeriesLP(n, 4242)
	if sol, err := p.Solve(); err != nil || sol.Status != lp.Optimal {
		t.Fatalf("N=%d warm-up: status %v err %v", n, sol.Status, err)
	}
	a0 := mallocsNow()
	sol, err := p.Solve()
	if err != nil || sol.Status != lp.Optimal {
		t.Fatalf("N=%d: status %v err %v", n, sol.Status, err)
	}
	return mallocsNow() - a0, sol.Pivots
}

// TestScalingAllocsSubLinearInPivots pins the workspace pooling win: a cold
// sparse solve's heap allocation count must grow strictly sub-linearly in
// its pivot count. Per-pivot state (FTRAN/BTRAN closures, devex weights,
// Forrest–Tomlin spike storage) lives in pooled, amortized-growth buffers,
// so quadrupling the instance — which much more than quadruples the pivots
// at these sizes — may only grow allocations by problem-build terms, never
// by a per-pivot term. The 0.75 headroom keeps runner noise out while still
// failing if any hot-loop allocation sneaks back in (per-pivot allocation
// would push the alloc ratio to ≥ the pivot ratio, 3–6x here).
func TestScalingAllocsSubLinearInPivots(t *testing.T) {
	if raceEnabled {
		t.Skip("race runtime allocates on its own schedule; Mallocs counts are meaningless under -race")
	}
	nSmall, nLarge := 512, 2048
	if testing.Short() {
		nSmall, nLarge = 256, 1024
	}
	aS, pS := solveAllocsAndPivots(t, nSmall)
	aL, pL := solveAllocsAndPivots(t, nLarge)
	if pS <= 0 || pL <= pS {
		t.Fatalf("degenerate pivot counts: %d, %d", pS, pL)
	}
	allocRatio := float64(aL) / float64(aS)
	pivotRatio := float64(pL) / float64(pS)
	t.Logf("N=%d: %d allocs, %d pivots; N=%d: %d allocs, %d pivots (alloc ratio %.2f, pivot ratio %.2f)",
		nSmall, aS, pS, nLarge, aL, pL, allocRatio, pivotRatio)
	if allocRatio > 0.75*pivotRatio {
		t.Errorf("allocations no longer sub-linear in pivots: alloc ratio %.2f vs pivot ratio %.2f (limit 0.75x)",
			allocRatio, pivotRatio)
	}
}

// TestScalingAllocsSubLinear16384 is the same sub-linearity pin at
// production scale: N=4096 → N=16384, where the entry-arena and counting-
// sort work in the LU layer is what keeps allocation counts flat while
// pivot counts triple. A 16384-family cold solve costs tens of seconds, so
// the test only runs when SCALING_HEAVY is set (the scheduled bench
// environment); the default suite pins the same property at 512→2048.
func TestScalingAllocsSubLinear16384(t *testing.T) {
	if os.Getenv("SCALING_HEAVY") == "" {
		t.Skip("set SCALING_HEAVY=1 to run the N=16384 allocation-scaling pin (tens of seconds)")
	}
	if raceEnabled {
		t.Skip("race runtime allocates on its own schedule; Mallocs counts are meaningless under -race")
	}
	aS, pS := solveAllocsAndPivots(t, 4096)
	aL, pL := solveAllocsAndPivots(t, 16384)
	if pS <= 0 || pL <= pS {
		t.Fatalf("degenerate pivot counts: %d, %d", pS, pL)
	}
	allocRatio := float64(aL) / float64(aS)
	pivotRatio := float64(pL) / float64(pS)
	t.Logf("N=4096: %d allocs, %d pivots; N=16384: %d allocs, %d pivots (alloc ratio %.2f, pivot ratio %.2f)",
		aS, pS, aL, pL, allocRatio, pivotRatio)
	if allocRatio > 0.75*pivotRatio {
		t.Errorf("allocations no longer sub-linear in pivots at scale: alloc ratio %.2f vs pivot ratio %.2f (limit 0.75x)",
			allocRatio, pivotRatio)
	}
}
