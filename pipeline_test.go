package hslb

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/stats"
)

// Failure injection: the pipeline must reject corrupt benchmark data with a
// clear error instead of producing a bogus allocation.

func TestPipelineRejectsNaNBenchmark(t *testing.T) {
	_, err := RunPipeline(&PipelineConfig{
		TaskNames:  []string{"a", "b"},
		TotalNodes: 64,
		Benchmark: func(task, nodes int) float64 {
			if task == 1 && nodes > 4 {
				return math.NaN()
			}
			return 100 / float64(nodes)
		},
	})
	if err == nil {
		t.Fatal("NaN benchmark data accepted")
	}
}

func TestPipelineRejectsNegativeBenchmark(t *testing.T) {
	_, err := RunPipeline(&PipelineConfig{
		TaskNames:  []string{"a", "b"},
		TotalNodes: 64,
		Benchmark:  func(task, nodes int) float64 { return -1 },
	})
	if err == nil {
		t.Fatal("negative benchmark data accepted")
	}
}

func TestPipelineInfeasibleAllowedSets(t *testing.T) {
	truth := []Params{{A: 100, C: 1, D: 1}, {A: 100, C: 1, D: 1}}
	_, err := RunPipeline(&PipelineConfig{
		TaskNames:  []string{"a", "b"},
		TotalNodes: 16,
		Benchmark: func(task, nodes int) float64 {
			return truth[task].Eval(float64(nodes))
		},
		Allowed: [][]int{{64, 128}, {2, 4}}, // a's set exceeds the budget
	})
	if err == nil {
		t.Fatal("infeasible allowed set accepted")
	}
}

func TestPipelineSingleTask(t *testing.T) {
	truth := Params{A: 1000, B: 0.01, C: 1, D: 5}
	res, err := RunPipeline(&PipelineConfig{
		TaskNames:  []string{"only"},
		TotalNodes: 256,
		Benchmark: func(task, nodes int) float64 {
			return truth.Eval(float64(nodes))
		},
		Seed: 9,
	})
	if err != nil {
		t.Fatal(err)
	}
	// One task: all useful nodes go to it, capped near the curve minimum.
	if res.Allocation.Nodes[0] < 1 || res.Allocation.Nodes[0] > 256 {
		t.Fatalf("allocation = %v", res.Allocation.Nodes)
	}
}

func TestPipelineExplicitSampleCounts(t *testing.T) {
	counts := map[int]bool{}
	truth := Params{A: 500, C: 1, D: 2}
	_, err := RunPipeline(&PipelineConfig{
		TaskNames:    []string{"a"},
		TotalNodes:   64,
		SampleCounts: []int{2, 8, 32, 64},
		Benchmark: func(task, nodes int) float64 {
			counts[nodes] = true
			return truth.Eval(float64(nodes))
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []int{2, 8, 32, 64} {
		if !counts[want] {
			t.Fatalf("node count %d not benchmarked (got %v)", want, counts)
		}
	}
	if counts[1] {
		t.Fatal("default counts used despite explicit SampleCounts")
	}
}

func TestPipelineMinNodesLiftsSamples(t *testing.T) {
	truth := Params{A: 500, C: 1, D: 2}
	minSeen := 1 << 30
	_, err := RunPipeline(&PipelineConfig{
		TaskNames:  []string{"a"},
		TotalNodes: 64,
		MinNodes:   []int{8},
		Benchmark: func(task, nodes int) float64 {
			if nodes < minSeen {
				minSeen = nodes
			}
			return truth.Eval(float64(nodes))
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if minSeen < 8 {
		t.Fatalf("benchmarked below the memory floor: %d", minSeen)
	}
}

// Property: on random noiseless truth curves the pipeline's allocation is
// feasible and never worse than uniform.
func TestPipelineBeatsUniformProperty(t *testing.T) {
	f := func(seed uint64) bool {
		rng := stats.NewRNG(seed)
		k := 2 + rng.Intn(5)
		truth := make([]Params, k)
		names := make([]string, k)
		for i := range truth {
			truth[i] = Params{
				A: rng.Range(100, 50000),
				B: rng.Range(0, 1e-3),
				C: 1 + rng.Float64()*0.5,
				D: rng.Range(0, 10),
			}
			names[i] = "t"
		}
		res, err := RunPipeline(&PipelineConfig{
			TaskNames:  names,
			TotalNodes: k * (8 + rng.Intn(200)),
			Benchmark: func(task, nodes int) float64 {
				return truth[task].Eval(float64(nodes))
			},
			UseParametric: true,
			Seed:          seed,
		})
		if err != nil {
			return false
		}
		if !res.Problem.Feasible(res.Allocation.Nodes) {
			return false
		}
		uni := Uniform(res.Problem)
		return res.Allocation.Makespan <= uni.Makespan*(1+1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: predicted makespan tracks the true one within a modest factor
// even under benchmark noise. Deterministic seeds: the bound is a
// statistical one, and rare adversarial curves can exceed a tight band.
func TestPipelinePredictionProperty(t *testing.T) {
	f := func(seed uint64) bool {
		rng := stats.NewRNG(seed)
		k := 2 + rng.Intn(4)
		truth := make([]Params, k)
		names := make([]string, k)
		for i := range truth {
			truth[i] = Params{
				A: rng.Range(1000, 30000), B: rng.Range(0, 5e-4),
				C: 1 + rng.Float64()*0.3, D: rng.Range(0.5, 8),
			}
			names[i] = "t"
		}
		noise := stats.NewRNG(seed + 1)
		res, err := RunPipeline(&PipelineConfig{
			TaskNames:  names,
			TotalNodes: 1024,
			Benchmark: func(task, nodes int) float64 {
				return truth[task].Eval(float64(nodes)) * noise.LogNormFactor(0.02)
			},
			UseParametric: true,
			Seed:          seed,
		})
		if err != nil {
			return false
		}
		trueMax := 0.0
		for i, n := range res.Allocation.Nodes {
			if v := truth[i].Eval(float64(n)); v > trueMax {
				trueMax = v
			}
		}
		ratio := res.Allocation.Makespan / trueMax
		return ratio > 0.6 && ratio < 1.6
	}
	if err := quick.Check(f, &quick.Config{
		MaxCount: 40,
		Rand:     rand.New(rand.NewSource(20120101)),
	}); err != nil {
		t.Fatal(err)
	}
}
