package core

import (
	"strings"
	"testing"

	"repro/internal/perfmodel"
)

func TestWriteAMPLMinMax(t *testing.T) {
	p := &Problem{
		Tasks: []Task{
			{Name: "atm", Perf: perfmodel.Params{A: 27180, B: 2e-4, C: 1, D: 45.3}},
			{Name: "ocn", Perf: perfmodel.Params{A: 7697, B: 1e-4, C: 1.1, D: 42.3},
				Allowed: []int{2, 4, 8, 16}},
		},
		TotalNodes: 64,
		Objective:  MinMax,
	}
	var sb strings.Builder
	if err := p.WriteAMPL(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"param N := 64;",
		"var n0 integer >= 1, <= 64;",
		"set ALLOWED1 := 2 4 8 16;",
		"var z1 {ALLOWED1} binary;",
		"subject to pick1: sum {k in ALLOWED1} z1[k] = 1;",
		"minimize makespan: T;",
		"subject to perf0: a0/n0 + b0*n0^c0 + d0 <= T;",
		"subject to budget: n0 + n1 <= N;",
		"solve;",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("AMPL export missing %q:\n%s", want, out)
		}
	}
}

func TestWriteAMPLObjectives(t *testing.T) {
	base := fourTasks(32, MaxMin)
	var sb strings.Builder
	if err := base.WriteAMPL(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "maximize floor_time: S;") {
		t.Fatalf("max-min export wrong:\n%s", sb.String())
	}
	if !strings.Contains(sb.String(), "= N;") {
		t.Fatal("max-min export must force Σn = N")
	}

	sum := fourTasks(32, MinSum)
	sb.Reset()
	if err := sum.WriteAMPL(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "minimize total_time:") {
		t.Fatalf("min-sum export wrong:\n%s", sb.String())
	}
}

func TestWriteAMPLRejectsInvalid(t *testing.T) {
	p := &Problem{TotalNodes: 4}
	var sb strings.Builder
	if err := p.WriteAMPL(&sb); err == nil {
		t.Fatal("invalid problem exported")
	}
}

func TestWriteAMPLCoefficientsRoundTrip(t *testing.T) {
	// Full-precision parameters must appear verbatim (%.17g preserves
	// float64 exactly).
	p := fourTasks(16, MinMax)
	p.Tasks[0].Perf.A = 1234.5678901234567
	var sb strings.Builder
	if err := p.WriteAMPL(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "1234.5678901234567") {
		t.Fatal("parameter precision lost in export")
	}
}
