package core

import "math"

// Power-of-two time normalization.
//
// The MINLP route hands the branch-and-bound machinery LPs whose rows mix
// time-dimensioned coefficients (the linearized performance cuts, with
// magnitudes set by the caller's time units — seconds, milliseconds, …)
// with dimensionless ±1 entries on the makespan and allocation variables.
// No tolerance inside the LP layer can make such a mixed system behave
// identically at every unit choice, and at extreme units the simplex can
// lose digits outright (the recorded hslbd defect: a cold warm-capable
// build on second-scale coefficients amplified its tableau to 1e30 and
// declared a feasible master infeasible). The fix belongs here, where the
// time dimension is still a single coherent axis: before solving, rescale
// every time coefficient by a power of two so the largest is O(1), solve,
// and undo the exact-power-of-two factor on the way out.
//
// Powers of two multiply IEEE-754 values without rounding (only the
// exponent moves, barring under/overflow), so:
//
//   - two problems that differ by an exact power-of-two time rescale
//     normalize to BIT-IDENTICAL problems, making the whole MINLP route —
//     node counts, pivot sequences, statistics — exactly scale-equivariant;
//   - the reported times lose nothing: they are recomputed from the
//     ORIGINAL coefficients (allocationFrom → Evaluate), and only the
//     solver-internal bound is Ldexp-ed back.
//
// The parametric, DP, and greedy routes need none of this: they only ever
// compare time values produced by perfmodel.Eval on the caller's
// coefficients, and those comparisons are equivariant under any uniform
// positive rescale already.

// TimeScaleExp returns the binary exponent e of the problem's time scale:
// the scale estimate mx satisfies mx = f·2^e with f ∈ [0.5, 1), so dividing
// every time coefficient by 2^e (see normalizedTime) puts the estimate into
// [0.5, 1). A degenerate estimate (no positive finite time) yields 0, i.e.
// no normalization.
//
// The estimate is the max over tasks of the task's minimum achievable time
// — the parametric route's lower bracket on the min-max optimum. It tracks
// the magnitude of the times the solver actually optimizes over, which is
// what the absolute solver tolerances (integrality, OA feasibility, gap)
// are calibrated for; the raw coefficient maximum would be off by the full
// parallelism factor (A is the one-node time; at the paper's 32768 nodes
// the optimal makespan sits three orders of magnitude below it).
//
// Every quantity involved is exactly equivariant under a power-of-two
// rescale of (A, B, D): the probe node counts are integer-valued functions
// of the problem structure and of Perf.ArgMin (which is invariant — moving
// the time axis does not move the minimizing n), and Perf.Eval at a fixed n
// scales by exactly the power of two. Hence e(scaled) = e(original) + s and
// the normalized problems are bit-identical.
func (p *Problem) TimeScaleExp() int {
	mx := 0.0
	for i := range p.Tasks {
		t := &p.Tasks[i]
		best := math.Inf(1)
		if t.Allowed != nil {
			for _, n := range t.candidates(p.TotalNodes) {
				if v := t.Perf.Eval(float64(n)); v < best {
					best = v
				}
			}
		} else {
			lo, hi := t.rangeFor(p.TotalNodes)
			am := int(math.Round(t.Perf.ArgMin()))
			for _, n := range []int{lo, hi, clampInt(am, lo, hi), clampInt(am+1, lo, hi)} {
				if v := t.Perf.Eval(float64(n)); v < best {
					best = v
				}
			}
		}
		if best > mx && !math.IsInf(best, 1) {
			mx = best
		}
	}
	if mx <= 0 || math.IsNaN(mx) {
		return 0
	}
	_, e := math.Frexp(mx)
	return e
}

// normalizedTime returns a copy of the problem with every time-dimensioned
// performance coefficient (A, B, D — C is the dimensionless communication
// exponent base) multiplied by 2^-e. Structure (node counts, bounds,
// allowed sets, objective) is shared or copied unchanged.
func (p *Problem) normalizedTime(e int) *Problem {
	q := &Problem{
		Tasks:       append([]Task(nil), p.Tasks...),
		TotalNodes:  p.TotalNodes,
		Objective:   p.Objective,
		UseAllNodes: p.UseAllNodes,
	}
	for i := range q.Tasks {
		pf := &q.Tasks[i].Perf
		pf.A = math.Ldexp(pf.A, -e)
		pf.B = math.Ldexp(pf.B, -e)
		pf.D = math.Ldexp(pf.D, -e)
	}
	return q
}
