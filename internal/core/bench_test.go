package core

import (
	"testing"
)

// BenchmarkParametric32768 solves the headline-scale allocation (32,768
// nodes, the paper's largest run) with the specialized solver.
func BenchmarkParametric32768(b *testing.B) {
	p := fourTasks(32768, MinMax)
	for i := 0; i < b.N; i++ {
		if _, err := p.SolveParametric(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMINLP8192SweetSpots solves the MINLP route with a sparse ocean
// allocation set at 8192 nodes.
func BenchmarkMINLP8192SweetSpots(b *testing.B) {
	p := fourTasks(8192, MinMax)
	p.Tasks[3].Allowed = []int{480, 512, 2356, 3136, 4564, 6124}
	for i := 0; i < b.N; i++ {
		if _, err := p.SolveMINLP(SolverOptions{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDPOracle measures the exact dynamic program at oracle scale.
func BenchmarkDPOracle(b *testing.B) {
	p := fourTasks(256, MinMax)
	for i := 0; i < b.N; i++ {
		if _, err := p.SolveDP(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkBaselines measures the heuristic allocators.
func BenchmarkBaselines(b *testing.B) {
	p := fourTasks(8192, MinMax)
	for i := 0; i < b.N; i++ {
		Uniform(p)
		Proportional(p)
		ManualMimic(p, 8)
	}
}
