package core

import (
	"context"
	"errors"
	"fmt"
)

// This file implements the paper's section on "prediction of the optimal
// layout and number of nodes to a job": once per-task performance functions
// exist, HSLB can answer not only "how do I split N nodes" but "what N
// should I ask the scheduler for" — either the shortest time to solution or
// the largest job that still meets a parallel-efficiency floor ("nodes are
// increased until scaling is reduced to a predefined limit").

// JobSizePoint is one point of a job-size sweep.
type JobSizePoint struct {
	Nodes      int     `json:"nodes"`
	Makespan   float64 `json:"makespan"`
	NodeHours  float64 `json:"nodeHours"`  // Nodes × Makespan / 3600
	Speedup    float64 `json:"speedup"`    // vs the smallest swept size
	Efficiency float64 `json:"efficiency"` // Speedup × smallestN / Nodes
}

func validateCandidates(candidates []int) error {
	if len(candidates) == 0 {
		return errors.New("core: no candidate sizes")
	}
	for i := 1; i < len(candidates); i++ {
		if candidates[i] <= candidates[i-1] {
			return errors.New("core: candidate sizes must be strictly increasing")
		}
	}
	return nil
}

// jobSizePoint derives the sweep statistics of one candidate from its
// makespan; base is makespan₀ × n₀ of the smallest candidate.
func jobSizePoint(n, n0 int, makespan, base float64, first bool) JobSizePoint {
	pt := JobSizePoint{
		Nodes:     n,
		Makespan:  makespan,
		NodeHours: float64(n) * makespan / 3600,
	}
	if first {
		pt.Speedup = 1
		pt.Efficiency = 1
	} else {
		pt.Speedup = base / float64(n0) / makespan
		pt.Efficiency = base / (makespan * float64(n))
	}
	return pt
}

// SweepJobSize solves the allocation problem at each candidate machine size
// (ascending) and reports makespan, node-hours, and efficiency relative to
// the smallest candidate. The tasks are shared across sizes; per-task
// restrictions apply at every size.
func SweepJobSize(tasks []Task, objective Objective, candidates []int) ([]JobSizePoint, error) {
	return SweepJobSizeContext(context.Background(), tasks, objective, candidates)
}

// SweepJobSizeContext is SweepJobSize with cooperative cancellation: ctx is
// threaded into every per-size solve, so a cancelled sweep stops mid-range
// and returns ctx's error instead of running the remaining sizes.
func SweepJobSizeContext(ctx context.Context, tasks []Task, objective Objective, candidates []int) ([]JobSizePoint, error) {
	if err := validateCandidates(candidates); err != nil {
		return nil, err
	}
	points := make([]JobSizePoint, 0, len(candidates))
	var base float64
	for i, n := range candidates {
		p := &Problem{Tasks: tasks, TotalNodes: n, Objective: objective}
		if err := p.Validate(); err != nil {
			return nil, fmt.Errorf("core: size %d: %w", n, err)
		}
		a, err := p.SolveParametricContext(ctx)
		if err != nil {
			return nil, fmt.Errorf("core: size %d: %w", n, err)
		}
		if i == 0 {
			base = a.Makespan * float64(n)
		}
		points = append(points, jobSizePoint(n, candidates[0], a.Makespan, base, i == 0))
	}
	return points, nil
}

// SweepJobSizeTable is SweepJobSizeContext through a parametric breakpoint
// table: one table build over [candidates[0], candidates[last]] answers
// every candidate by lookup, and the table is returned for reuse (further
// sizes in range cost a binary search, not a solve). Candidates falling in
// a table gap are solved directly, so the points are always exactly those
// of SweepJobSizeContext.
func SweepJobSizeTable(ctx context.Context, tasks []Task, objective Objective, candidates []int) ([]JobSizePoint, *ParametricTable, error) {
	if err := validateCandidates(candidates); err != nil {
		return nil, nil, err
	}
	base0 := &Problem{Tasks: tasks, TotalNodes: candidates[len(candidates)-1], Objective: objective}
	tab, err := BuildParametricTable(ctx, base0, candidates[0], candidates[len(candidates)-1], TableOptions{})
	if err != nil {
		return nil, nil, err
	}
	points := make([]JobSizePoint, 0, len(candidates))
	var base float64
	for i, n := range candidates {
		var makespan float64
		if seg, ok := tab.Lookup(n); ok {
			makespan = seg.Makespan
		} else {
			p := &Problem{Tasks: tasks, TotalNodes: n, Objective: objective}
			if err := p.Validate(); err != nil {
				return nil, nil, fmt.Errorf("core: size %d: %w", n, err)
			}
			a, err := p.SolveParametricContext(ctx)
			if err != nil {
				return nil, nil, fmt.Errorf("core: size %d: %w", n, err)
			}
			makespan = a.Makespan
		}
		if i == 0 {
			base = makespan * float64(n)
		}
		points = append(points, jobSizePoint(n, candidates[0], makespan, base, i == 0))
	}
	return points, tab, nil
}

// FastestSize returns the swept size with the smallest makespan (ties go to
// the smaller size — never pay for nodes that do not help).
func FastestSize(points []JobSizePoint) (JobSizePoint, error) {
	if len(points) == 0 {
		return JobSizePoint{}, errors.New("core: empty sweep")
	}
	best := points[0]
	for _, p := range points[1:] {
		if p.Makespan < best.Makespan*(1-1e-12) {
			best = p
		}
	}
	return best, nil
}

// CostEfficientSize returns the largest swept size whose parallel
// efficiency stays at or above minEfficiency — the paper's "cost-efficient
// goal". It falls back to the smallest size when nothing qualifies.
func CostEfficientSize(points []JobSizePoint, minEfficiency float64) (JobSizePoint, error) {
	if len(points) == 0 {
		return JobSizePoint{}, errors.New("core: empty sweep")
	}
	best := points[0]
	for _, p := range points[1:] {
		if p.Efficiency >= minEfficiency {
			best = p
		}
	}
	return best, nil
}
