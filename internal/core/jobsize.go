package core

import (
	"errors"
	"fmt"
)

// This file implements the paper's section on "prediction of the optimal
// layout and number of nodes to a job": once per-task performance functions
// exist, HSLB can answer not only "how do I split N nodes" but "what N
// should I ask the scheduler for" — either the shortest time to solution or
// the largest job that still meets a parallel-efficiency floor ("nodes are
// increased until scaling is reduced to a predefined limit").

// JobSizePoint is one point of a job-size sweep.
type JobSizePoint struct {
	Nodes      int     `json:"nodes"`
	Makespan   float64 `json:"makespan"`
	NodeHours  float64 `json:"nodeHours"`  // Nodes × Makespan / 3600
	Speedup    float64 `json:"speedup"`    // vs the smallest swept size
	Efficiency float64 `json:"efficiency"` // Speedup × smallestN / Nodes
}

// SweepJobSize solves the allocation problem at each candidate machine size
// (ascending) and reports makespan, node-hours, and efficiency relative to
// the smallest candidate. The tasks are shared across sizes; per-task
// restrictions apply at every size.
func SweepJobSize(tasks []Task, objective Objective, candidates []int) ([]JobSizePoint, error) {
	if len(candidates) == 0 {
		return nil, errors.New("core: no candidate sizes")
	}
	for i := 1; i < len(candidates); i++ {
		if candidates[i] <= candidates[i-1] {
			return nil, errors.New("core: candidate sizes must be strictly increasing")
		}
	}
	points := make([]JobSizePoint, 0, len(candidates))
	var base float64
	for i, n := range candidates {
		p := &Problem{Tasks: tasks, TotalNodes: n, Objective: objective}
		if err := p.Validate(); err != nil {
			return nil, fmt.Errorf("core: size %d: %w", n, err)
		}
		a, err := p.SolveParametric()
		if err != nil {
			return nil, fmt.Errorf("core: size %d: %w", n, err)
		}
		pt := JobSizePoint{
			Nodes:     n,
			Makespan:  a.Makespan,
			NodeHours: float64(n) * a.Makespan / 3600,
		}
		if i == 0 {
			base = a.Makespan * float64(n)
			pt.Speedup = 1
			pt.Efficiency = 1
		} else {
			pt.Speedup = base / float64(candidates[0]) / a.Makespan
			pt.Efficiency = base / (a.Makespan * float64(n))
		}
		points = append(points, pt)
	}
	return points, nil
}

// FastestSize returns the swept size with the smallest makespan (ties go to
// the smaller size — never pay for nodes that do not help).
func FastestSize(points []JobSizePoint) (JobSizePoint, error) {
	if len(points) == 0 {
		return JobSizePoint{}, errors.New("core: empty sweep")
	}
	best := points[0]
	for _, p := range points[1:] {
		if p.Makespan < best.Makespan*(1-1e-12) {
			best = p
		}
	}
	return best, nil
}

// CostEfficientSize returns the largest swept size whose parallel
// efficiency stays at or above minEfficiency — the paper's "cost-efficient
// goal". It falls back to the smallest size when nothing qualifies.
func CostEfficientSize(points []JobSizePoint, minEfficiency float64) (JobSizePoint, error) {
	if len(points) == 0 {
		return JobSizePoint{}, errors.New("core: empty sweep")
	}
	best := points[0]
	for _, p := range points[1:] {
		if p.Efficiency >= minEfficiency {
			best = p
		}
	}
	return best, nil
}
