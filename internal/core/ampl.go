package core

import (
	"fmt"
	"io"
)

// WriteAMPL emits the allocation problem as an AMPL model in the style of
// the paper's Table I/II — the format its authors actually ran through
// MINOTAUR on the NEOS server. The export lets users of this library solve
// the same instance with the original toolchain (or any AMPL-speaking
// solver) and compare answers against the built-in branch-and-bound.
//
// Max-min is exported with a maximized floor variable; sweet-spot sets use
// the binary-selection formulation of Table I lines 29-31.
func (p *Problem) WriteAMPL(w io.Writer) error {
	if err := p.Validate(); err != nil {
		return err
	}
	pr := func(format string, args ...interface{}) {}
	var firstErr error
	pr = func(format string, args ...interface{}) {
		if firstErr != nil {
			return
		}
		_, firstErr = fmt.Fprintf(w, format, args...)
	}

	pr("# HSLB allocation model (generated; cf. the paper's Table I/II)\n")
	pr("# objective: %v, total nodes: %d\n\n", p.Objective, p.TotalNodes)
	pr("param N := %d;\n\n", p.TotalNodes)

	for i := range p.Tasks {
		t := &p.Tasks[i]
		lo, hi := t.rangeFor(p.TotalNodes)
		pr("# task %d: %s — T(n) = a/n + b*n^c + d\n", i, t.Name)
		pr("param a%d := %.17g; param b%d := %.17g; param c%d := %.17g; param d%d := %.17g;\n",
			i, t.Perf.A, i, t.Perf.B, i, t.Perf.C, i, t.Perf.D)
		if t.Allowed != nil {
			cands := t.candidates(p.TotalNodes)
			pr("set ALLOWED%d :=", i)
			for _, c := range cands {
				pr(" %d", c)
			}
			pr(";\n")
			pr("var z%d {ALLOWED%d} binary;\n", i, i)
			pr("var n%d >= %d, <= %d;\n", i, cands[0], cands[len(cands)-1])
			pr("subject to pick%d: sum {k in ALLOWED%d} z%d[k] = 1;\n", i, i, i)
			pr("subject to link%d: sum {k in ALLOWED%d} k*z%d[k] = n%d;\n", i, i, i, i)
		} else {
			pr("var n%d integer >= %d, <= %d;\n", i, lo, hi)
		}
		pr("\n")
	}

	switch p.Objective {
	case MinMax:
		pr("var T >= 0;\nminimize makespan: T;\n")
		for i := range p.Tasks {
			pr("subject to perf%d: a%d/n%d + b%d*n%d^c%d + d%d <= T;\n",
				i, i, i, i, i, i, i)
		}
	case MaxMin:
		pr("var S >= 0;\nmaximize floor_time: S;\n")
		for i := range p.Tasks {
			pr("subject to perf%d: a%d/n%d + b%d*n%d^c%d + d%d >= S;\n",
				i, i, i, i, i, i, i)
		}
	default: // MinSum
		pr("minimize total_time: ")
		for i := range p.Tasks {
			if i > 0 {
				pr(" + ")
			}
			pr("(a%d/n%d + b%d*n%d^c%d + d%d)", i, i, i, i, i, i)
		}
		pr(";\n")
	}

	pr("subject to budget: ")
	for i := range p.Tasks {
		if i > 0 {
			pr(" + ")
		}
		pr("n%d", i)
	}
	if p.UseAllNodes || p.Objective == MaxMin {
		pr(" = N;\n")
	} else {
		pr(" <= N;\n")
	}
	pr("\nsolve;\ndisplay ")
	for i := range p.Tasks {
		if i > 0 {
			pr(", ")
		}
		pr("n%d", i)
	}
	pr(";\n")
	return firstErr
}
