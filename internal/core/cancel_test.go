package core

import (
	"context"
	"errors"
	"math"
	"testing"
	"time"

	"repro/internal/lp"
)

func TestDeadlineGracefulDegradation(t *testing.T) {
	// With a sub-microsecond deadline the solve cannot finish; the graceful
	// contract says: either a feasible bounded allocation, or a typed
	// no-incumbent error carrying a valid bound — never a bare failure.
	p := fourTasks(4096, MinMax)
	a, err := p.SolveMINLP(SolverOptions{Deadline: time.Nanosecond})
	if err != nil {
		var noInc *NoIncumbentError
		if !errors.As(err, &noInc) {
			t.Fatalf("deadline solve failed with untyped error %v", err)
		}
		opt, oerr := p.SolveMINLP(SolverOptions{})
		if oerr != nil {
			t.Fatalf("unlimited solve failed: %v", oerr)
		}
		if noInc.BestBound > opt.Makespan+1e-6 {
			t.Fatalf("no-incumbent bound %v exceeds optimum %v", noInc.BestBound, opt.Makespan)
		}
		return
	}
	if !p.Feasible(a.Nodes) {
		t.Fatalf("bounded allocation is not feasible: %v", a)
	}
	if !a.Bounded {
		// The relaxation may legitimately solve instantly; only a Limit
		// status marks the allocation bounded.
		return
	}
	if a.Gap < 0 {
		t.Fatalf("negative gap %v", a.Gap)
	}
	if a.BestBound > p.ObjectiveValue(a)+1e-6 {
		t.Fatalf("bound %v exceeds the incumbent objective %v", a.BestBound, p.ObjectiveValue(a))
	}
}

func TestDeadlineUnlimitedBitIdentical(t *testing.T) {
	// A generous deadline or node budget must not perturb the result.
	p := fourTasks(128, MinMax)
	plain, err := p.SolveMINLP(SolverOptions{})
	if err != nil {
		t.Fatal(err)
	}
	limited, err := p.SolveMINLP(SolverOptions{Deadline: time.Hour, NodeBudget: 1 << 30})
	if err != nil {
		t.Fatal(err)
	}
	if limited.Bounded {
		t.Fatalf("unpressed limits marked the allocation bounded")
	}
	if plain.Makespan != limited.Makespan || plain.SolverNodes != limited.SolverNodes ||
		plain.LPSolves != limited.LPSolves {
		t.Fatalf("generous limits changed the solve: %+v vs %+v", plain, limited)
	}
	for i := range plain.Nodes {
		if plain.Nodes[i] != limited.Nodes[i] {
			t.Fatalf("allocation diverged at task %d", i)
		}
	}
}

func TestDeadlineNodeBudgetGraceful(t *testing.T) {
	// NodeBudget exhaustion must degrade like Deadline expiry, while the
	// legacy MaxNodes keeps its historical hard-error behaviour.
	p := fourTasks(4096, MinMax)
	a, err := p.SolveMINLP(SolverOptions{NodeBudget: 1, SkipNLPRelaxation: true})
	if err != nil {
		var noInc *NoIncumbentError
		if !errors.As(err, &noInc) {
			t.Fatalf("budgeted solve failed with untyped error %v", err)
		}
	} else if !p.Feasible(a.Nodes) {
		t.Fatalf("budgeted allocation infeasible: %v", a)
	}
	if _, err := p.SolveMINLP(SolverOptions{MaxNodes: 1, SkipNLPRelaxation: true}); err == nil {
		t.Fatal("legacy MaxNodes limit no longer errors")
	} else if gr := new(NoIncumbentError); errors.As(err, &gr) {
		t.Fatal("legacy MaxNodes limit produced the graceful error type")
	}
}

func TestCancelMidMINLPSolve(t *testing.T) {
	p := fourTasks(4096, MinMax)
	ctx, cancel := context.WithCancel(context.Background())
	lps := 0
	a, err := p.SolveMINLPContext(ctx, SolverOptions{
		SkipNLPRelaxation: true,
		DebugLPCheck: func(*lp.Problem, *lp.Solution) {
			lps++
			if lps == 2 {
				cancel()
			}
		},
	})
	if err != nil {
		var noInc *NoIncumbentError
		if !errors.As(err, &noInc) {
			t.Fatalf("cancelled solve failed with untyped error %v", err)
		}
		return
	}
	if !p.Feasible(a.Nodes) {
		t.Fatalf("cancelled solve returned infeasible allocation: %v", a)
	}
}

func TestCancelParametricRoutes(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, obj := range []Objective{MinMax, MaxMin, MinSum} {
		p := fourTasks(256, obj)
		if _, err := p.SolveParametricContext(ctx); !errors.Is(err, context.Canceled) {
			t.Fatalf("objective %v: err = %v, want context.Canceled", obj, err)
		}
		// A live context reproduces the plain solver exactly.
		a, err := p.SolveParametric()
		if err != nil {
			t.Fatalf("objective %v: %v", obj, err)
		}
		b, err := p.SolveParametricContext(context.Background())
		if err != nil {
			t.Fatalf("objective %v: %v", obj, err)
		}
		if a.Makespan != b.Makespan {
			t.Fatalf("objective %v: context solve diverged", obj)
		}
	}
}

func TestRelativeGapDeadlineReporting(t *testing.T) {
	cases := []struct {
		obj, bound, want float64
	}{
		{10, 8, 0.2},
		{10, 10, 0},
		{10, 11, 0},                          // bound past the incumbent clamps to 0
		{0.5, 0.25, 0.25},                    // |obj| < 1 uses the absolute scale
		{10, math.Inf(-1), math.Inf(1)},      // nothing proven
		{math.NaN(), math.NaN(), math.NaN()}, // NaN/NaN clamps to 0 — see below
	}
	for _, c := range cases {
		got := RelativeGap(c.obj, c.bound)
		if math.IsNaN(c.want) {
			if got != 0 {
				t.Fatalf("RelativeGap(NaN, NaN) = %v, want 0", got)
			}
			continue
		}
		if math.Abs(got-c.want) > 1e-12 && got != c.want {
			t.Fatalf("RelativeGap(%v, %v) = %v, want %v", c.obj, c.bound, got, c.want)
		}
	}
}
