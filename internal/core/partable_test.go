package core

import (
	"context"
	"errors"
	"sync"
	"testing"

	"repro/internal/stats"
)

// directAt is the reference answer the table must reproduce bit-for-bit.
func directAt(t *testing.T, base *Problem, n int) *Allocation {
	t.Helper()
	p := base.WithBudget(n)
	if p.Validate() != nil {
		return nil
	}
	a, err := p.SolveParametricContext(context.Background())
	if err != nil {
		return nil
	}
	return p.CanonicalAllocation(a)
}

// TestParametricTableMatchesDirect is the core-side differential property:
// every budget in the table range answers bit-identically (nodes and
// makespan) to a per-budget direct solve, and gaps appear exactly where
// the direct solve declines.
func TestParametricTableMatchesDirect(t *testing.T) {
	instances := 120
	if testing.Short() {
		instances = 30
	}
	rng := stats.NewRNG(20260808)
	for k := 0; k < instances; k++ {
		base := randomProblem(rng, 6, 100, MinMax, true)
		fromN := len(base.Tasks)
		toN := base.TotalNodes
		tab, err := BuildParametricTable(context.Background(), base, fromN, toN, TableOptions{})
		if err != nil {
			t.Fatalf("instance %d: build: %v", k, err)
		}
		for n := fromN; n <= toN; n++ {
			want := directAt(t, base, n)
			seg, ok := tab.Lookup(n)
			if want == nil {
				if ok {
					t.Fatalf("instance %d N=%d: table covers an infeasible budget", k, n)
				}
				continue
			}
			if !ok {
				t.Fatalf("instance %d N=%d: uncovered feasible budget", k, n)
			}
			if seg.Makespan != want.Makespan {
				t.Fatalf("instance %d N=%d: makespan %g (table) vs %g (direct)", k, n, seg.Makespan, want.Makespan)
			}
			for i := range want.Nodes {
				if seg.Nodes[i] != want.Nodes[i] {
					t.Fatalf("instance %d N=%d: nodes %v (table) vs %v (direct)", k, n, seg.Nodes, want.Nodes)
				}
			}
		}
	}
}

// TestParametricTableBreakpointBoundaries is the breakpoint-walk property
// test: the analytic segment boundaries must agree with the boundaries a
// blind per-budget scan discovers, and the segment list must be sorted,
// non-overlapping, and in range.
func TestParametricTableBreakpointBoundaries(t *testing.T) {
	instances := 40
	if testing.Short() {
		instances = 10
	}
	rng := stats.NewRNG(20260809)
	for k := 0; k < instances; k++ {
		base := randomProblem(rng, 5, 80, MinMax, true)
		fromN := len(base.Tasks)
		toN := base.TotalNodes
		tab, err := BuildParametricTable(context.Background(), base, fromN, toN, TableOptions{})
		if err != nil {
			t.Fatalf("instance %d: build: %v", k, err)
		}
		prevEnd := fromN - 1
		for _, seg := range tab.Segments {
			if seg.FromN <= prevEnd || seg.ToN < seg.FromN || seg.ToN > toN {
				t.Fatalf("instance %d: malformed segment [%d,%d] after %d", k, seg.FromN, seg.ToN, prevEnd)
			}
			prevEnd = seg.ToN
		}
		// Scan-discovered boundaries: N and N+1 answer differently exactly
		// when a table boundary separates them.
		for n := fromN; n < toN; n++ {
			a, b := directAt(t, base, n), directAt(t, base, n+1)
			if a == nil || b == nil {
				continue
			}
			sa, oka := tab.Lookup(n)
			sb, okb := tab.Lookup(n + 1)
			if !oka || !okb {
				t.Fatalf("instance %d: lookup gap at %d/%d", k, n, n+1)
			}
			scanSame := sameTablePoint(a, b)
			tableSame := sa == sb
			if scanSame != tableSame {
				t.Fatalf("instance %d: boundary disagreement at N=%d→%d: scan same=%v table same=%v",
					k, n, n+1, scanSame, tableSame)
			}
		}
	}
}

// TestParametricTableOtherObjectives covers the non-analytic shapes
// (min-sum, max-min, UseAllNodes): the per-budget merge fallback must stay
// bit-identical to direct solves.
func TestParametricTableOtherObjectives(t *testing.T) {
	rng := stats.NewRNG(20260810)
	shapes := []struct {
		obj Objective
		all bool
	}{{MinSum, false}, {MaxMin, true}, {MinMax, true}}
	for _, sh := range shapes {
		for k := 0; k < 8; k++ {
			base := randomProblem(rng, 4, 50, sh.obj, true)
			base.UseAllNodes = sh.all
			fromN := len(base.Tasks)
			toN := base.TotalNodes
			tab, err := BuildParametricTable(context.Background(), base, fromN, toN, TableOptions{})
			if err != nil {
				t.Fatalf("%v/%v instance %d: build: %v", sh.obj, sh.all, k, err)
			}
			for n := fromN; n <= toN; n++ {
				p := base.WithBudget(n)
				var want *Allocation
				if p.Validate() == nil {
					if a, err := p.SolveParametricContext(context.Background()); err == nil {
						want = p.CanonicalAllocation(a)
					}
				}
				seg, ok := tab.Lookup(n)
				if want == nil {
					if ok {
						t.Fatalf("%v instance %d N=%d: covered infeasible budget", sh.obj, k, n)
					}
					continue
				}
				if !ok {
					t.Fatalf("%v instance %d N=%d: uncovered budget", sh.obj, k, n)
				}
				if seg.Makespan != want.Makespan {
					t.Fatalf("%v instance %d N=%d: makespan mismatch", sh.obj, k, n)
				}
				for i := range want.Nodes {
					if seg.Nodes[i] != want.Nodes[i] {
						t.Fatalf("%v instance %d N=%d: nodes %v vs %v", sh.obj, k, n, seg.Nodes, want.Nodes)
					}
				}
			}
		}
	}
}

// TestParametricTableCrossCheckMINLP validates integer-feasible segment
// boundaries through the milp/minlp stack: the MINLP route (canonical
// polish on) must bit-agree with the parametric walk at every boundary.
func TestParametricTableCrossCheckMINLP(t *testing.T) {
	if testing.Short() {
		t.Skip("MINLP cross-check is slow; covered by the full tier")
	}
	rng := stats.NewRNG(20260811)
	cross := func(ctx context.Context, p *Problem) (*Allocation, error) {
		return p.SolveMINLPContext(ctx, SolverOptions{Canonical: true})
	}
	for k := 0; k < 4; k++ {
		base := randomProblem(rng, 4, 60, MinMax, true)
		tab, err := BuildParametricTable(context.Background(), base, len(base.Tasks), base.TotalNodes,
			TableOptions{CrossCheck: cross})
		var mism *SegmentMismatchError
		if errors.As(err, &mism) {
			t.Fatalf("instance %d: MINLP cross-check mismatch: %v", k, err)
		}
		if err != nil {
			t.Fatalf("instance %d: build: %v", k, err)
		}
		if len(tab.Segments) == 0 {
			t.Fatalf("instance %d: empty table", k)
		}
	}
}

// TestParametricTableCancel: a cancelled build returns the context error
// promptly instead of walking the rest of the range.
func TestParametricTableCancel(t *testing.T) {
	base := fourTasks(4000, MinMax)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := BuildParametricTable(ctx, base, 4, 4000, TableOptions{}); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled build returned %v", err)
	}
}

// TestParametricTableBounds exercises the Lookup bound check and the
// range validation.
func TestParametricTableBounds(t *testing.T) {
	base := fourTasks(64, MinMax)
	tab, err := BuildParametricTable(context.Background(), base, 8, 64, TableOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := tab.Lookup(7); ok {
		t.Fatal("lookup below range succeeded")
	}
	if _, ok := tab.Lookup(65); ok {
		t.Fatal("lookup above range succeeded")
	}
	if _, ok := tab.Lookup(8); !ok {
		t.Fatal("lookup at FromN failed")
	}
	if _, ok := tab.Lookup(64); !ok {
		t.Fatal("lookup at ToN failed")
	}
	if _, err := BuildParametricTable(context.Background(), base, 10, 9, TableOptions{}); err == nil {
		t.Fatal("inverted range accepted")
	}
	var nilTab *ParametricTable
	if _, ok := nilTab.Lookup(8); ok {
		t.Fatal("nil table lookup succeeded")
	}
}

// TestParametricTableAmortization pins the point of the walk: serving the
// whole budget range from the table must spend far fewer solver calls
// than one solve per budget.
func TestParametricTableAmortization(t *testing.T) {
	base := fourTasks(2048, MinMax)
	// Sweet-spot allowed sets (powers of two), the paper's production
	// shape: few distinct per-task times → few breakpoints.
	for i := range base.Tasks {
		set := []int{}
		for v := 1; v <= 2048; v *= 2 {
			set = append(set, v)
		}
		base.Tasks[i].Allowed = set
	}
	tab, err := BuildParametricTable(context.Background(), base, 4, 2048, TableOptions{})
	if err != nil {
		t.Fatal(err)
	}
	budgets := 2048 - 4 + 1
	if tab.Solves*10 > budgets {
		t.Fatalf("table build spent %d solves for %d budgets — no 10x amortization", tab.Solves, budgets)
	}
	t.Logf("table: %d segments, %d solves for %d budgets (%.0fx amortization)",
		len(tab.Segments), tab.Solves, budgets, float64(budgets)/float64(tab.Solves))
}

// countdownCtx cancels itself after a fixed number of Err checks — a
// deterministic way to cancel mid-sweep without timing races.
type countdownCtx struct {
	context.Context
	mu    sync.Mutex
	left  int
	fired bool
}

func (c *countdownCtx) Err() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.fired {
		return context.Canceled
	}
	c.left--
	if c.left <= 0 {
		c.fired = true
		return context.Canceled
	}
	return nil
}

// TestSweepJobSizeCancelMidSweep is the regression for the recorded
// defect: SweepJobSize used to call SolveParametric() instead of
// SolveParametricContext(ctx), so a cancelled sweep kept solving every
// remaining size. A context expiring mid-sweep must abort the sweep with
// context.Canceled and return no points.
func TestSweepJobSizeCancelMidSweep(t *testing.T) {
	tasks := sweepTasks()
	sizes := []int{8, 32, 128, 512, 2048, 8192}
	// Count how many ctx checks a full sweep performs, then allow half:
	// the cancellation fires strictly inside the solve of a middle size.
	probe := &countdownCtx{Context: context.Background(), left: 1 << 30}
	if _, err := SweepJobSizeContext(probe, tasks, MinMax, sizes); err != nil {
		t.Fatalf("probe sweep failed: %v", err)
	}
	total := (1 << 30) - probe.left
	if total < 4 {
		t.Fatalf("sweep performed only %d ctx checks; countdown scheme inapplicable", total)
	}
	ctx := &countdownCtx{Context: context.Background(), left: total / 2}
	pts, err := SweepJobSizeContext(ctx, tasks, MinMax, sizes)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("mid-sweep cancel returned err=%v (points=%d) — sweep ignored the context", err, len(pts))
	}
	if pts != nil {
		t.Fatalf("cancelled sweep returned points: %v", pts)
	}
}

// TestSweepJobSizeTableMatchesDirect: the table-driven sweep must produce
// exactly the per-size sweep's points.
func TestSweepJobSizeTableMatchesDirect(t *testing.T) {
	tasks := sweepTasks()
	sizes := []int{8, 32, 128, 512, 2048}
	direct, err := SweepJobSize(tasks, MinMax, sizes)
	if err != nil {
		t.Fatal(err)
	}
	viaTab, tab, err := SweepJobSizeTable(context.Background(), tasks, MinMax, sizes)
	if err != nil {
		t.Fatal(err)
	}
	if tab == nil || len(tab.Segments) == 0 {
		t.Fatal("no table returned")
	}
	if len(viaTab) != len(direct) {
		t.Fatalf("point count %d vs %d", len(viaTab), len(direct))
	}
	for i := range direct {
		if viaTab[i] != direct[i] {
			t.Fatalf("point %d differs: %+v vs %+v", i, viaTab[i], direct[i])
		}
	}
}

// FuzzParametricTable drives the differential property from fuzzed
// instance shapes: whatever the generator parameters, table lookups must
// be bit-identical to direct solves over the whole range.
func FuzzParametricTable(f *testing.F) {
	f.Add(int64(1), uint8(4), uint8(60), true)
	f.Add(int64(20260808), uint8(6), uint8(90), false)
	f.Add(int64(7), uint8(2), uint8(20), true)
	f.Fuzz(func(t *testing.T, seed int64, maxTasks, maxNodes uint8, allowSets bool) {
		if maxTasks < 2 {
			maxTasks = 2
		}
		if maxTasks > 10 {
			maxTasks = 10
		}
		if maxNodes > 120 {
			maxNodes = 120
		}
		if int(maxNodes) <= int(maxTasks) {
			maxNodes = maxTasks + 10
		}
		rng := stats.NewRNG(uint64(seed))
		base := randomProblem(rng, int(maxTasks), int(maxNodes), MinMax, allowSets)
		fromN := len(base.Tasks)
		toN := base.TotalNodes
		tab, err := BuildParametricTable(context.Background(), base, fromN, toN, TableOptions{})
		if err != nil {
			t.Fatalf("build: %v", err)
		}
		for n := fromN; n <= toN; n++ {
			want := directAt(t, base, n)
			seg, ok := tab.Lookup(n)
			if want == nil {
				if ok {
					t.Fatalf("N=%d: covered infeasible budget", n)
				}
				continue
			}
			if !ok {
				t.Fatalf("N=%d: uncovered budget", n)
			}
			if seg.Makespan != want.Makespan {
				t.Fatalf("N=%d: makespan %g vs %g", n, seg.Makespan, want.Makespan)
			}
			for i := range want.Nodes {
				if seg.Nodes[i] != want.Nodes[i] {
					t.Fatalf("N=%d: nodes %v vs %v", n, seg.Nodes, want.Nodes)
				}
			}
		}
	})
}
