package core

import (
	"context"
	"fmt"
	"math"
	"sort"
)

// Parametric breakpoint tables: the optimal allocation of a min-max
// instance is piecewise-constant in the node budget N. Each segment
// [FromN, ToN] shares one node vector and one makespan; a table over a
// budget range answers any N in the range by binary search instead of a
// fresh solve (DESIGN.md "Parametric breakpoint tables").
//
// The walk is analytic, not trial-and-error: with M* the optimal makespan
// at budget N, the minimal budget needing is f(M*) = Σ_i g_i(M*) where
// g_i(v) is the smallest admissible node count with T_i(n) ≤ v, and the
// first budget that improves on M* is f(v_max) for v_max the largest
// per-task candidate time strictly below M*. Both are O(k log N) to
// evaluate, so extending a segment costs a vanishing fraction of a solve.
// Every emitted segment boundary is still verified against a cold solve;
// a mismatch (never observed — the differential battery hunts for one)
// falls back to bisecting the true boundary.

// TableSegment is one constant piece of a parametric table: for every
// budget n in [FromN, ToN] the canonical optimal allocation is Nodes with
// makespan Makespan.
type TableSegment struct {
	FromN    int     `json:"fromN"`
	ToN      int     `json:"toN"`
	Nodes    []int   `json:"nodes"`
	Makespan float64 `json:"makespan"`
}

// ParametricTable is the full piecewise-constant allocation table of one
// instance family (fixed tasks and objective, budget N varying) over
// [FromN, ToN]. Segments are sorted and non-overlapping but may leave
// gaps where the instance was infeasible or the solver declined.
type ParametricTable struct {
	Objective   Objective      `json:"objective"`
	UseAllNodes bool           `json:"useAllNodes"`
	FromN       int            `json:"fromN"`
	ToN         int            `json:"toN"`
	Segments    []TableSegment `json:"segments"`
	// Solves counts the solver invocations spent building the table (the
	// amortized cost of serving the whole range).
	Solves int `json:"solves"`
	// Skipped counts budgets in [FromN, ToN] not covered by any segment.
	Skipped int `json:"skipped,omitempty"`
}

// Lookup returns the segment covering budget n. The bound check is
// explicit: budgets outside [FromN, ToN] — or inside an uncovered gap —
// return ok=false and must be solved directly.
func (t *ParametricTable) Lookup(n int) (*TableSegment, bool) {
	if t == nil || n < t.FromN || n > t.ToN {
		return nil, false
	}
	i := sort.Search(len(t.Segments), func(i int) bool { return t.Segments[i].ToN >= n })
	if i == len(t.Segments) || n < t.Segments[i].FromN {
		return nil, false
	}
	return &t.Segments[i], true
}

// TableSolver solves one instance of the family; the table builder calls
// it with copies of the base problem at varying TotalNodes. Solvers must
// be deterministic: the table is only as reproducible as its solver.
type TableSolver func(ctx context.Context, p *Problem) (*Allocation, error)

// TableOptions configures BuildParametricTable.
type TableOptions struct {
	// Solve produces the allocation at one budget. nil means the exact
	// parametric route (SolveParametricContext + CanonicalAllocation).
	Solve TableSolver
	// CrossCheck, when set, is an independent solver run at every segment
	// boundary; a bit-level disagreement (nodes or makespan) aborts the
	// build with a SegmentMismatchError. Wiring the MINLP route here
	// validates integer feasibility of each segment through the
	// milp/minlp stack instead of trusting the walk.
	CrossCheck TableSolver
}

// SegmentMismatchError reports a cross-check solver disagreeing with the
// table solver at a segment boundary.
type SegmentMismatchError struct {
	N    int
	Want *Allocation
	Got  *Allocation
}

func (e *SegmentMismatchError) Error() string {
	return fmt.Sprintf("core: cross-check mismatch at N=%d: table %v (makespan %g) vs check %v (makespan %g)",
		e.N, e.Want.Nodes, e.Want.Makespan, e.Got.Nodes, e.Got.Makespan)
}

// defaultTableSolver is the exact parametric route in canonical form.
func defaultTableSolver(ctx context.Context, p *Problem) (*Allocation, error) {
	a, err := p.SolveParametricContext(ctx)
	if err != nil {
		return nil, err
	}
	return p.CanonicalAllocation(a), nil
}

// WithBudget returns a copy of the problem at a different node budget.
func (p *Problem) WithBudget(n int) *Problem {
	q := *p
	q.TotalNodes = n
	return &q
}

// BuildParametricTable computes the piecewise-constant allocation table of
// the base instance over budgets [fromN, toN]. Budgets where the problem
// is invalid or the solver errors are skipped (counted in Skipped), so a
// range starting below feasibility is handled gracefully.
//
// For min-max instances without UseAllNodes the walk is analytic: each
// solved budget yields its whole segment via SegmentBounds, the far
// boundary is verified by a fresh solve, and on the (theoretically
// impossible) event of a mismatch the true boundary is recovered by
// bisection. Other objective shapes degrade to a per-budget sweep with
// run-length merging of identical adjacent allocations — exactly as
// correct, with no amortization.
func BuildParametricTable(ctx context.Context, base *Problem, fromN, toN int, opts TableOptions) (*ParametricTable, error) {
	if fromN < 1 || toN < fromN {
		return nil, fmt.Errorf("core: invalid table range [%d, %d]", fromN, toN)
	}
	solve := opts.Solve
	if solve == nil {
		solve = defaultTableSolver
	}
	tab := &ParametricTable{
		Objective:   base.Objective,
		UseAllNodes: base.UseAllNodes,
		FromN:       fromN,
		ToN:         toN,
	}
	solveAt := func(n int) (*Allocation, error) {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		pn := base.WithBudget(n)
		if err := pn.Validate(); err != nil {
			return nil, err
		}
		tab.Solves++
		return solve(ctx, pn)
	}
	crossCheckAt := func(n int, want *Allocation) error {
		if opts.CrossCheck == nil {
			return nil
		}
		pn := base.WithBudget(n)
		got, err := opts.CrossCheck(ctx, pn)
		if err != nil {
			return err
		}
		if !sameTablePoint(want, got) {
			return &SegmentMismatchError{N: n, Want: want, Got: got}
		}
		return nil
	}

	n := fromN
	for n <= toN {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		a, err := solveAt(n)
		if err != nil {
			if ctx.Err() != nil {
				return nil, ctx.Err()
			}
			tab.Skipped++
			n++
			continue
		}
		end := n
		if _, hi, ok := base.WithBudget(n).SegmentBounds(a, toN); ok && hi > n {
			end = hi
			b, err := solveAt(end)
			if err != nil || !sameTablePoint(a, b) {
				if err != nil && ctx.Err() != nil {
					return nil, ctx.Err()
				}
				// The analytic boundary disagreed with the solver:
				// bisect the largest end' ≥ n whose solve still matches
				// the segment. The walk stays correct — every budget the
				// segment finally claims is bracketed by two verified
				// solves — it just stops trusting the hint here.
				lo, hi := n, end-1
				for lo < hi {
					mid := lo + (hi-lo+1)/2
					c, errM := solveAt(mid)
					if errM != nil {
						if ctx.Err() != nil {
							return nil, ctx.Err()
						}
						hi = mid - 1
						continue
					}
					if sameTablePoint(a, c) {
						lo = mid
					} else {
						hi = mid - 1
					}
				}
				end = lo
			}
		} else if mergeEnd := end; !ok {
			// Non-analytic shape (min-sum, max-min, UseAllNodes, or a
			// non-canonical allocation): extend by direct per-budget
			// solves as long as the answer is bit-identical.
			for mergeEnd < toN {
				b, err := solveAt(mergeEnd + 1)
				if err != nil || !sameTablePoint(a, b) {
					if err != nil && ctx.Err() != nil {
						return nil, ctx.Err()
					}
					break
				}
				mergeEnd++
			}
			end = mergeEnd
		}
		if err := crossCheckAt(n, a); err != nil {
			return nil, err
		}
		if end > n {
			if err := crossCheckAt(end, a); err != nil {
				return nil, err
			}
		}
		tab.Segments = append(tab.Segments, TableSegment{
			FromN:    n,
			ToN:      end,
			Nodes:    append([]int(nil), a.Nodes...),
			Makespan: a.Makespan,
		})
		n = end + 1
	}
	return tab, nil
}

// sameTablePoint reports bit-identical node vectors and makespans — the
// equality the differential gate demands between a table entry and a
// direct solve.
func sameTablePoint(a, b *Allocation) bool {
	if a == nil || b == nil || a.Bounded || b.Bounded {
		return false
	}
	if len(a.Nodes) != len(b.Nodes) || a.Makespan != b.Makespan {
		return false
	}
	for i := range a.Nodes {
		if a.Nodes[i] != b.Nodes[i] {
			return false
		}
	}
	return true
}

// SegmentBounds computes the budget interval over which allocation a stays
// the canonical optimum of the instance family p (tasks and objective
// fixed, TotalNodes varying), capped at capN. ok requires a min-max
// objective without UseAllNodes and a canonical (minimal-resource) proven
// allocation; every other shape returns ok=false and must be handled
// per-budget.
//
// Soundness: lo is f(M*) — the canonical allocation's own node sum, the
// least budget that achieves makespan M*. Improving on M* at any budget
// requires some per-task candidate time v < M*, hence at least
// f(v_max) = Σ_i g_i(v_max) nodes for v_max the largest candidate below
// M*; budgets up to f(v_max)−1 therefore keep the optimum — and the
// solver's bisection, whose accept/reject region is identical across the
// segment — exactly at (M*, a).
func (p *Problem) SegmentBounds(a *Allocation, capN int) (lo, hi int, ok bool) {
	if a == nil || a.Bounded || p.Objective != MinMax || p.UseAllNodes {
		return 0, 0, false
	}
	if len(a.Nodes) != len(p.Tasks) || a.Used > p.TotalNodes {
		return 0, 0, false
	}
	if math.IsNaN(a.Makespan) || math.IsInf(a.Makespan, 0) {
		return 0, 0, false
	}
	if capN < p.TotalNodes {
		capN = p.TotalNodes
	}
	// Canonical check: a must be exactly the minimal allocation achieving
	// its makespan (what CanonicalAllocation produces). Anything else —
	// bounded incumbents, heuristics, over-budget fallbacks — is refused.
	used := 0
	for i := range p.Tasks {
		n, okT := p.minNodesAchieving(i, a.Makespan)
		if !okT || n != a.Nodes[i] {
			return 0, 0, false
		}
		used += n
	}
	lo = used
	// v_max: the largest candidate time strictly below M* over all tasks,
	// with each task's node range capped at capN (the widest budget the
	// claim extends to).
	vmax := math.Inf(-1)
	for i := range p.Tasks {
		if v, okT := largestTimeBelow(&p.Tasks[i], a.Makespan, capN); okT && v > vmax {
			vmax = v
		}
	}
	if math.IsInf(vmax, -1) {
		// No task has any achievable time below M*: the optimum is pinned
		// for every larger budget in range.
		return lo, capN, true
	}
	need := 0
	for i := range p.Tasks {
		g, okT := minNodesAchievingAt(&p.Tasks[i], vmax, capN)
		if !okT {
			// v_max is unreachable for some task within capN, so no
			// budget in range can improve on M*.
			return lo, capN, true
		}
		need += g
	}
	if need <= p.TotalNodes {
		// Contradicts optimality of a at the current budget; refuse the
		// claim rather than emit an unsound segment.
		return 0, 0, false
	}
	hi = need - 1
	if hi > capN {
		hi = capN
	}
	return lo, hi, true
}

// minNodesAchievingAt is minNodesAchieving with an explicit budget cap:
// the smallest admissible node count for the task whose predicted time is
// ≤ target when the instance budget is total.
func minNodesAchievingAt(t *Task, target float64, total int) (int, bool) {
	lo, hi := t.rangeFor(total)
	if t.Allowed != nil {
		for _, n := range t.Allowed {
			if n < lo || n > hi {
				continue
			}
			if t.Perf.Eval(float64(n)) <= target {
				return n, true
			}
		}
		return 0, false
	}
	n0, ok := t.Perf.MinNodesFor(target, hi)
	if !ok {
		return 0, false
	}
	if n0 < lo {
		n0 = lo
	}
	if t.Perf.Eval(float64(n0)) > target {
		return 0, false
	}
	return n0, true
}

// largestTimeBelow returns the largest predicted time strictly below m
// over the task's admissible node counts at budget total. This is the
// next breakpoint candidate the walk steps to: extra candidates only
// shrink segments, missing ones would break soundness, so both branches
// of the convex time curve are scanned.
func largestTimeBelow(t *Task, m float64, total int) (float64, bool) {
	lo, hi := t.rangeFor(total)
	if lo > hi {
		return 0, false
	}
	if t.Allowed != nil {
		best, any := math.Inf(-1), false
		for _, n := range t.Allowed {
			if n < lo || n > hi {
				continue
			}
			if v := t.Perf.Eval(float64(n)); v < m && v > best {
				best, any = v, true
			}
		}
		return best, any
	}
	best, any := math.Inf(-1), false
	// Decreasing branch: the largest value < m sits at the smallest n
	// with T(n) < m. Strict inequality via the next float below m.
	if n, ok := t.Perf.MinNodesFor(math.Nextafter(m, math.Inf(-1)), hi); ok {
		if n < lo {
			n = lo
		}
		if v := t.Perf.Eval(float64(n)); v < m {
			best, any = v, true
		}
	}
	// Increasing branch (n ≥ ⌈argmin⌉): T is nondecreasing, so the
	// largest value < m sits at the largest n with T(n) < m.
	am := t.Perf.ArgMin()
	if !math.IsInf(am, 1) && am < float64(hi) {
		start := int(math.Ceil(am))
		if start < lo {
			start = lo
		}
		if start <= hi && t.Perf.Eval(float64(start)) < m {
			loB, hiB := start, hi
			for loB < hiB {
				mid := loB + (hiB-loB+1)/2
				if t.Perf.Eval(float64(mid)) < m {
					loB = mid
				} else {
					hiB = mid - 1
				}
			}
			if v := t.Perf.Eval(float64(loB)); v < m && v > best {
				best, any = v, true
			}
		}
	}
	return best, any
}
