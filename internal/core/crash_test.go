package core

import (
	"math"
	"testing"

	"repro/internal/lp"
)

// TestCrashSeedsMINLPRoute pins the heuristic→LP threading: SolveMINLP
// runs the paper's static allocation first and hands it to the master LP
// as a crash point, which must actually install (not silently decline),
// and the answer must match the crash-disabled route exactly. The
// DisableCrash knob is the ablation switch — with it set, no crash
// activity may occur at all.
func TestCrashSeedsMINLPRoute(t *testing.T) {
	p := fourTasks(64, MinMax)
	before := lp.ReadEngineStats()
	a, err := p.SolveMINLP(SolverOptions{})
	if err != nil {
		t.Fatal(err)
	}
	after := lp.ReadEngineStats()
	t.Logf("makespan=%g installs +%d declines +%d", a.Makespan,
		after.CrashInstalls-before.CrashInstalls, after.CrashDeclines-before.CrashDeclines)
	if after.CrashInstalls == before.CrashInstalls {
		t.Fatalf("no crash basis installed on the MINLP route")
	}

	b0 := lp.ReadEngineStats()
	ref, err := fourTasks(64, MinMax).SolveMINLP(SolverOptions{DisableCrash: true})
	if err != nil {
		t.Fatal(err)
	}
	b1 := lp.ReadEngineStats()
	if b1.CrashInstalls != b0.CrashInstalls || b1.CrashDeclines != b0.CrashDeclines {
		t.Fatalf("DisableCrash still produced crash activity")
	}
	if math.Abs(a.Makespan-ref.Makespan) > 1e-9*(1+math.Abs(ref.Makespan)) {
		t.Fatalf("crash changed the MINLP answer: %g vs %g", a.Makespan, ref.Makespan)
	}
}
