package core

import (
	"math"
	"testing"

	"repro/internal/lp"
	"repro/internal/stats"
)

// Regression: on this instance the warm-started OA master once pivoted on a
// round-off-level tableau entry (|α| ≈ 3e-8) during a dual reoptimization,
// irreversibly corrupting the shared tableau; a later node LP reported
// "optimal" for a point violating two equality rows by 0.5 and the true
// optimum was pruned. Guarded now by the dual pivot stability threshold and
// the post-optimal feasibility check in lp.Incremental (warm.go).
func TestWarmMasterTinyPivotRegression(t *testing.T) {
	rng := stats.NewRNG(0xfe5aa9cb04bf5a88)
	p := randomProblem(rng, 3, 24, MinMax, true)
	if err := p.Validate(); err != nil {
		t.Fatalf("validate: %v", err)
	}
	kkt := func(lpp *lp.Problem, sol *lp.Solution) {
		if sol.Status != lp.Optimal {
			return
		}
		if err := lp.VerifyKKT(lpp, sol, 1e-6); err != nil {
			t.Errorf("node LP failed KKT: %v", err)
		}
	}
	a, err := p.SolveMINLP(SolverOptions{DebugLPCheck: kkt})
	if err != nil {
		t.Fatalf("minlp: %v", err)
	}
	dp, err := p.SolveDP()
	if err != nil {
		t.Fatalf("dp: %v", err)
	}
	if math.Abs(a.Makespan-dp.Makespan) > 1e-5*(1+dp.Makespan) {
		t.Errorf("warm MINLP makespan %v, DP oracle %v", a.Makespan, dp.Makespan)
	}
}
