// Package core implements the decision-making step of the Heuristic Static
// Load-Balancing (HSLB) algorithm — the paper's primary contribution.
//
// Given one fitted performance function per task (package perfmodel), a
// total node budget N, and optional per-task allowed allocation sets
// ("sweet spots", modelled as special ordered sets exactly as the paper's
// AMPL models do), the package chooses the node allocation n_j per task j:
//
//	min-max:  minimize  max_j T_j(n_j)   (the paper's objective of choice)
//	max-min:  maximize  min_j T_j(n_j)   (close second in the paper)
//	min-sum:  minimize  Σ_j  T_j(n_j)    (reported "much worse")
//
// subject to Σ n_j ≤ N (or = N) and n_j integer from the task's range or
// allowed set.
//
// Three solver routes are provided and cross-validated in the tests:
//
//   - SolveMINLP — the paper's route: build the MINLP and solve it with the
//     LP/NLP-based branch-and-bound in package minlp (valid for the convex
//     objectives min-max and min-sum);
//   - SolveParametric — a specialized exact method that bisects the
//     objective level and uses the per-task inverse T_j⁻¹; it supports all
//     three objectives and is also the reference implementation;
//   - SolveDP — an O(k·N²) dynamic program, exact for any objective and
//     any allowed sets; used as the oracle in property tests (small N).
//
// Baseline allocators (Uniform — the GDDI default of equal groups,
// Proportional, and ManualMimic — a coordinate-descent imitation of the
// paper's "human expert" loop) provide the comparison columns for the
// benchmark tables.
package core

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"repro/internal/perfmodel"
	"repro/internal/stats"
)

// Objective selects the optimization goal.
type Objective int

// The three candidate objectives from the paper.
const (
	MinMax Objective = iota
	MaxMin
	MinSum
)

func (o Objective) String() string {
	switch o {
	case MinMax:
		return "min-max"
	case MaxMin:
		return "max-min"
	case MinSum:
		return "min-sum"
	}
	return "unknown"
}

// ParseObjective is the inverse of Objective.String: it maps the canonical
// names "min-max", "max-min", and "min-sum" onto the Objective constants.
// Every front end (CLI flags, the HTTP service) funnels through this one
// parser so the accepted spellings cannot drift apart.
func ParseObjective(s string) (Objective, error) {
	switch s {
	case "min-max":
		return MinMax, nil
	case "max-min":
		return MaxMin, nil
	case "min-sum":
		return MinSum, nil
	}
	return 0, fmt.Errorf("core: unknown objective %q (want min-max, max-min, or min-sum)", s)
}

// Task is one load-balancing unit: an FMO fragment (group) or, in the
// coupled extension, a model component.
type Task struct {
	Name string
	Perf perfmodel.Params
	// MinNodes is the smallest admissible allocation (memory floor);
	// 0 means 1.
	MinNodes int
	// MaxNodes caps the allocation; 0 means the problem's total.
	MaxNodes int
	// Allowed restricts allocations to this strictly increasing list of
	// node counts (the paper's hard-coded ocean counts / atmosphere sweet
	// spots). nil means the full integer range is admissible.
	Allowed []int
}

// rangeFor returns the effective [lo, hi] integer range of the task given
// the problem budget.
func (t *Task) rangeFor(total int) (lo, hi int) {
	lo = t.MinNodes
	if lo < 1 {
		lo = 1
	}
	hi = t.MaxNodes
	if hi <= 0 || hi > total {
		hi = total
	}
	return lo, hi
}

// candidates returns the admissible node counts of the task within the
// budget, smallest first. Only call this for small budgets (DP oracle and
// validation paths); the solvers use the O(log) helpers below.
func (t *Task) candidates(total int) []int {
	lo, hi := t.rangeFor(total)
	if t.Allowed != nil {
		out := make([]int, 0, len(t.Allowed))
		for _, n := range t.Allowed {
			if n >= lo && n <= hi {
				out = append(out, n)
			}
		}
		return out
	}
	if hi < lo {
		return nil
	}
	out := make([]int, 0, hi-lo+1)
	for n := lo; n <= hi; n++ {
		out = append(out, n)
	}
	return out
}

// minCandidate returns the smallest admissible allocation.
func (t *Task) minCandidate(total int) (int, bool) {
	lo, hi := t.rangeFor(total)
	if t.Allowed == nil {
		if lo > hi {
			return 0, false
		}
		return lo, true
	}
	for _, n := range t.Allowed {
		if n >= lo && n <= hi {
			return n, true
		}
	}
	return 0, false
}

// nextUp returns the smallest admissible count strictly greater than n.
func (t *Task) nextUp(n, total int) (int, bool) {
	lo, hi := t.rangeFor(total)
	if t.Allowed == nil {
		v := n + 1
		if v < lo {
			v = lo
		}
		if v > hi {
			return 0, false
		}
		return v, true
	}
	idx := sort.SearchInts(t.Allowed, n+1)
	for ; idx < len(t.Allowed); idx++ {
		v := t.Allowed[idx]
		if v > hi {
			return 0, false
		}
		if v >= lo {
			return v, true
		}
	}
	return 0, false
}

// nextDown returns the largest admissible count strictly less than n.
func (t *Task) nextDown(n, total int) (int, bool) {
	lo, hi := t.rangeFor(total)
	if t.Allowed == nil {
		v := n - 1
		if v > hi {
			v = hi
		}
		if v < lo {
			return 0, false
		}
		return v, true
	}
	idx := sort.SearchInts(t.Allowed, n) // first ≥ n
	for idx--; idx >= 0; idx-- {
		v := t.Allowed[idx]
		if v < lo {
			return 0, false
		}
		if v <= hi {
			return v, true
		}
	}
	return 0, false
}

// Problem is one allocation instance.
type Problem struct {
	Tasks      []Task
	TotalNodes int
	Objective  Objective
	// UseAllNodes forces Σ n_j = TotalNodes instead of ≤. Max-min is
	// always solved with equality (with a slack budget the objective is
	// degenerate: withholding nodes only raises times).
	UseAllNodes bool
}

// Validate reports structural problems.
func (p *Problem) Validate() error {
	if len(p.Tasks) == 0 {
		return errors.New("core: no tasks")
	}
	if p.TotalNodes < len(p.Tasks) {
		return fmt.Errorf("core: %d nodes cannot host %d tasks", p.TotalNodes, len(p.Tasks))
	}
	for i := range p.Tasks {
		t := &p.Tasks[i]
		if !t.Perf.Valid() {
			return fmt.Errorf("core: task %q has invalid performance parameters", t.Name)
		}
		for k := 1; k < len(t.Allowed); k++ {
			if t.Allowed[k] <= t.Allowed[k-1] {
				return fmt.Errorf("core: task %q allowed set not strictly increasing", t.Name)
			}
		}
		if _, ok := t.minCandidate(p.TotalNodes); !ok {
			return fmt.Errorf("core: task %q has no admissible allocation within %d nodes", t.Name, p.TotalNodes)
		}
	}
	return nil
}

// Allocation is a solved (or heuristic) node assignment.
type Allocation struct {
	Nodes []int     `json:"nodes"` // per task
	Times []float64 `json:"times"` // predicted per-task time

	Makespan  float64 `json:"makespan"`  // max time
	MinTime   float64 `json:"minTime"`   // min time
	SumTime   float64 `json:"sumTime"`   // Σ times
	Imbalance float64 `json:"imbalance"` // max/mean
	Used      int     `json:"used"`      // Σ nodes

	// Solver diagnostics (zero for heuristics).
	SolverNodes int `json:"solverNodes,omitempty"`
	LPSolves    int `json:"lpSolves,omitempty"`
	OACuts      int `json:"oaCuts,omitempty"`
	// Pivots is the total simplex pivot count behind this allocation
	// (Kelley relaxation plus master tree; see minlp.Result.Pivots) — the
	// hardware-independent measure of LP work that the serving layer
	// aggregates into its statistics counters.
	Pivots int `json:"pivots,omitempty"`

	// Bounded reports that the solve stopped at a deadline, node budget,
	// or cancellation and this allocation is the best feasible point found
	// — not a proven optimum. BestBound is the valid lower bound at stop
	// time and Gap the relative optimality gap (obj − bound)/max(1, |obj|);
	// both are zero for proven-optimal and heuristic allocations.
	Bounded   bool    `json:"bounded,omitempty"`
	BestBound float64 `json:"bestBound,omitempty"`
	Gap       float64 `json:"gap,omitempty"`
}

// Evaluate computes the predicted per-task times and summary statistics of
// an assignment under the problem's performance models.
func (p *Problem) Evaluate(nodes []int) *Allocation {
	if len(nodes) != len(p.Tasks) {
		panic("core: allocation length mismatch")
	}
	a := &Allocation{Nodes: append([]int(nil), nodes...)}
	a.Times = make([]float64, len(nodes))
	for i := range nodes {
		a.Times[i] = p.Tasks[i].Perf.Eval(float64(nodes[i]))
		a.Used += nodes[i]
	}
	a.Makespan = stats.Max(a.Times)
	a.MinTime = stats.Min(a.Times)
	a.SumTime = stats.Sum(a.Times)
	a.Imbalance = stats.Imbalance(a.Times)
	return a
}

// ObjectiveValue returns the allocation's value under the problem objective
// (always minimized: max-min is returned negated).
func (p *Problem) ObjectiveValue(a *Allocation) float64 {
	switch p.Objective {
	case MinMax:
		return a.Makespan
	case MaxMin:
		return -a.MinTime
	default:
		return a.SumTime
	}
}

// Feasible reports whether nodes is admissible for the problem.
func (p *Problem) Feasible(nodes []int) bool {
	if len(nodes) != len(p.Tasks) {
		return false
	}
	used := 0
	for i, n := range nodes {
		used += n
		lo, hi := p.Tasks[i].rangeFor(p.TotalNodes)
		if n < lo || n > hi {
			return false
		}
		if p.Tasks[i].Allowed != nil {
			ok := false
			for _, c := range p.Tasks[i].Allowed {
				if c == n {
					ok = true
					break
				}
			}
			if !ok {
				return false
			}
		}
	}
	if used > p.TotalNodes {
		return false
	}
	if (p.UseAllNodes || p.Objective == MaxMin) && used != p.EffectiveBudget() {
		return false
	}
	return true
}

// EffectiveBudget is the node count an equality-constrained allocation must
// use: the full machine, unless per-task caps make that impossible, in
// which case it is the largest usable total (Σ per-task maxima).
func (p *Problem) EffectiveBudget() int {
	sumMax := 0
	for i := range p.Tasks {
		_, hi := p.Tasks[i].rangeFor(p.TotalNodes)
		if p.Tasks[i].Allowed != nil {
			if v, ok := p.Tasks[i].nextDown(hi+1, p.TotalNodes); ok {
				hi = v
			} else {
				hi = 0
			}
		}
		sumMax += hi
	}
	if sumMax < p.TotalNodes {
		return sumMax
	}
	return p.TotalNodes
}

// snapDown returns the largest admissible count ≤ n for the task (falling
// back to the smallest admissible when n is below the whole set).
func (t *Task) snapDown(n, total int) int {
	if v, ok := t.nextDown(n+1, total); ok {
		return v
	}
	v, _ := t.minCandidate(total)
	return v
}

// SnapToFeasible maps an arbitrary node count onto the task's feasible
// allocation set within the budget: the largest admissible count ≤ n after
// clamping n to the task's [min, max] range, falling back to the smallest
// admissible count when n lies below the whole set. ok is false when the
// task has no admissible allocation at all. The gather step uses this so
// tasks are only ever benchmarked at node counts the solver could actually
// allocate.
func (t *Task) SnapToFeasible(n, total int) (int, bool) {
	if _, ok := t.minCandidate(total); !ok {
		return 0, false
	}
	lo, hi := t.rangeFor(total)
	return t.snapDown(clampInt(n, lo, hi), total), true
}

// Uniform is the GDDI-default baseline: divide the machine evenly (snapping
// to allowed sets). Remaining nodes are left idle, as the default group
// layout would.
func Uniform(p *Problem) *Allocation {
	k := len(p.Tasks)
	share := p.TotalNodes / k
	nodes := make([]int, k)
	for i := range p.Tasks {
		nodes[i] = p.Tasks[i].snapDown(share, p.TotalNodes)
	}
	fixBudget(p, nodes)
	return p.Evaluate(nodes)
}

// Proportional allocates in proportion to each task's scalable work
// coefficient a_j, the natural "informed guess" baseline.
func Proportional(p *Problem) *Allocation {
	k := len(p.Tasks)
	totalW := 0.0
	for i := range p.Tasks {
		totalW += p.Tasks[i].Perf.A
	}
	nodes := make([]int, k)
	for i := range p.Tasks {
		w := p.Tasks[i].Perf.A
		share := 1
		if totalW > 0 {
			share = int(math.Floor(w / totalW * float64(p.TotalNodes)))
		}
		nodes[i] = p.Tasks[i].snapDown(share, p.TotalNodes)
	}
	fixBudget(p, nodes)
	return p.Evaluate(nodes)
}

// ManualMimic imitates the paper's human-expert loop: starting from the
// proportional guess, it repeatedly moves nodes from the fastest task to the
// slowest while the makespan improves, for a limited number of "submissions"
// (the paper: "five to ten iterations"). The result is a decent allocation
// but not the optimum, matching the quality gap the paper measures.
func ManualMimic(p *Problem, iterations int) *Allocation {
	if iterations <= 0 {
		iterations = 8
	}
	best := Proportional(p)
	for it := 0; it < iterations; it++ {
		cur := best
		// Move a chunk of the fastest task's nodes to the slowest task.
		slow := stats.ArgMax(cur.Times)
		fast := stats.ArgMin(cur.Times)
		if slow == fast {
			break
		}
		nodes := append([]int(nil), cur.Nodes...)
		chunk := nodes[fast] / 4
		if chunk < 1 {
			chunk = 1
		}
		loFast, _ := p.Tasks[fast].rangeFor(p.TotalNodes)
		if nodes[fast]-chunk < loFast {
			chunk = nodes[fast] - loFast
		}
		if chunk <= 0 {
			break
		}
		nodes[fast] = p.Tasks[fast].snapDown(nodes[fast]-chunk, p.TotalNodes)
		nodes[slow] = p.Tasks[slow].snapDown(nodes[slow]+chunk, p.TotalNodes)
		fixBudget(p, nodes)
		cand := p.Evaluate(nodes)
		if p.ObjectiveValue(cand) < p.ObjectiveValue(best) {
			best = cand
		}
	}
	return best
}

// fixBudget repairs an assignment that exceeds the budget (by shrinking the
// largest allocations to admissible smaller counts) and, when the problem
// requires using all nodes, distributes the leftover.
func fixBudget(p *Problem, nodes []int) {
	used := 0
	for _, n := range nodes {
		used += n
	}
	for used > p.TotalNodes {
		// Shrink the biggest shrinkable allocation one admissible step.
		big, next := -1, 0
		for i := range nodes {
			if big >= 0 && nodes[i] <= nodes[big] {
				continue
			}
			if v, ok := p.Tasks[i].nextDown(nodes[i], p.TotalNodes); ok {
				big, next = i, v
			}
		}
		if big < 0 {
			// Cannot shrink further; give up (caller's Feasible check
			// will catch truly impossible cases).
			break
		}
		used -= nodes[big] - next
		nodes[big] = next
	}
	if p.UseAllNodes || p.Objective == MaxMin {
		distributeLeftover(p, nodes, p.TotalNodes-used)
	}
}

// distributeLeftover grows allocations by admissible steps until the budget
// is exhausted (or no step fits), preferring the currently slowest task.
func distributeLeftover(p *Problem, nodes []int, leftover int) {
	for leftover > 0 {
		bestTask, bestStep := -1, 0
		bestTime := -1.0
		for i := range nodes {
			up, ok := p.Tasks[i].nextUp(nodes[i], p.TotalNodes)
			if !ok {
				continue
			}
			step := up - nodes[i]
			if step > leftover {
				continue
			}
			t := p.Tasks[i].Perf.Eval(float64(nodes[i]))
			if t > bestTime {
				bestTime, bestTask, bestStep = t, i, step
			}
		}
		if bestTask < 0 {
			return
		}
		nodes[bestTask] += bestStep
		leftover -= bestStep
	}
}
