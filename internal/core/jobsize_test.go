package core

import (
	"testing"
	"testing/quick"

	"repro/internal/perfmodel"
	"repro/internal/stats"
)

func sweepTasks() []Task {
	return []Task{
		{Name: "a", Perf: perfmodel.Params{A: 4000, B: 0.001, C: 1, D: 2}},
		{Name: "b", Perf: perfmodel.Params{A: 16000, B: 0.001, C: 1, D: 4}},
	}
}

func TestSweepJobSize(t *testing.T) {
	pts, err := SweepJobSize(sweepTasks(), MinMax, []int{8, 32, 128, 512, 2048})
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 5 {
		t.Fatalf("points = %d", len(pts))
	}
	if pts[0].Speedup != 1 || pts[0].Efficiency != 1 {
		t.Fatalf("base point = %+v", pts[0])
	}
	// Makespan non-increasing; efficiency broadly decreasing (small
	// increases are legitimate: integer allocations at tiny sizes are
	// coarse, so the base point can be slightly inefficient itself).
	for i := 1; i < len(pts); i++ {
		if pts[i].Makespan > pts[i-1].Makespan*(1+1e-9) {
			t.Fatalf("makespan increased at %d nodes", pts[i].Nodes)
		}
		if pts[i].Efficiency > pts[i-1].Efficiency*1.15 {
			t.Fatalf("efficiency jumped at %d nodes: %v → %v",
				pts[i].Nodes, pts[i-1].Efficiency, pts[i].Efficiency)
		}
	}
	if pts[len(pts)-1].Efficiency >= pts[0].Efficiency {
		t.Fatal("efficiency did not decay across the sweep (Amdahl)")
	}
}

func TestSweepJobSizeErrors(t *testing.T) {
	if _, err := SweepJobSize(sweepTasks(), MinMax, nil); err == nil {
		t.Fatal("empty candidates accepted")
	}
	if _, err := SweepJobSize(sweepTasks(), MinMax, []int{8, 8}); err == nil {
		t.Fatal("non-increasing candidates accepted")
	}
	if _, err := SweepJobSize(sweepTasks(), MinMax, []int{1, 8}); err == nil {
		t.Fatal("size below task count accepted")
	}
}

func TestFastestSize(t *testing.T) {
	pts, err := SweepJobSize(sweepTasks(), MinMax, []int{8, 64, 512, 4096, 32768})
	if err != nil {
		t.Fatal(err)
	}
	fast, err := FastestSize(pts)
	if err != nil {
		t.Fatal(err)
	}
	// With the b·n term present, the fastest size is not the largest one
	// once overhead dominates — and is never slower than any other point.
	for _, p := range pts {
		if fast.Makespan > p.Makespan*(1+1e-12) {
			t.Fatalf("fastest %d slower than %d", fast.Nodes, p.Nodes)
		}
	}
	if _, err := FastestSize(nil); err == nil {
		t.Fatal("empty sweep accepted")
	}
}

func TestCostEfficientSize(t *testing.T) {
	pts, err := SweepJobSize(sweepTasks(), MinMax, []int{8, 32, 128, 512, 2048})
	if err != nil {
		t.Fatal(err)
	}
	eff, err := CostEfficientSize(pts, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if eff.Efficiency < 0.5 {
		t.Fatalf("returned efficiency %v below the floor", eff.Efficiency)
	}
	// A stricter floor cannot pick a larger machine.
	strict, err := CostEfficientSize(pts, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	if strict.Nodes > eff.Nodes {
		t.Fatalf("stricter floor picked a bigger machine: %d > %d", strict.Nodes, eff.Nodes)
	}
	if _, err := CostEfficientSize(nil, 0.5); err == nil {
		t.Fatal("empty sweep accepted")
	}
}

// Property: the cost-efficient size always meets the floor or is the
// smallest size; the fastest size's makespan is the sweep minimum.
func TestJobSizeProperty(t *testing.T) {
	f := func(seed uint64) bool {
		rng := stats.NewRNG(seed)
		tasks := []Task{
			{Name: "a", Perf: perfmodel.Params{A: rng.Range(100, 10000), B: rng.Range(0, 0.01), C: 1, D: rng.Range(0, 5)}},
			{Name: "b", Perf: perfmodel.Params{A: rng.Range(100, 10000), B: rng.Range(0, 0.01), C: 1, D: rng.Range(0, 5)}},
			{Name: "c", Perf: perfmodel.Params{A: rng.Range(100, 10000), B: rng.Range(0, 0.01), C: 1, D: rng.Range(0, 5)}},
		}
		pts, err := SweepJobSize(tasks, MinMax, []int{4, 16, 64, 256, 1024})
		if err != nil {
			return false
		}
		floor := rng.Range(0.2, 0.95)
		eff, err := CostEfficientSize(pts, floor)
		if err != nil {
			return false
		}
		if eff.Nodes != pts[0].Nodes && eff.Efficiency < floor {
			return false
		}
		fast, err := FastestSize(pts)
		if err != nil {
			return false
		}
		for _, p := range pts {
			if fast.Makespan > p.Makespan*(1+1e-9) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}
