package core

import (
	"context"
	"errors"
	"fmt"
	"math"
	"time"

	"repro/internal/lp"
	"repro/internal/minlp"
	"repro/internal/model"
)

// SolverOptions forwards tuning knobs to the MINLP solver.
type SolverOptions struct {
	// DisableSOSBranching is the paper's ablation: branch on individual
	// binaries instead of the allocation special ordered sets.
	DisableSOSBranching bool
	// DisableWarmStart solves every LP of the Kelley relaxation and the
	// branch-and-bound tree from scratch instead of reusing the previous
	// basis (benchmark ablation; warm starts are on by default).
	DisableWarmStart bool
	// SkipNLPRelaxation starts branch-and-bound from the pure linear
	// relaxation without the initial Kelley solve.
	SkipNLPRelaxation bool
	// DisableSparse solves every LP with the dense simplex kernels
	// instead of the sparsity-aware path (benchmark ablation; the sparse
	// kernels are on by default).
	DisableSparse bool
	// DisablePresolve skips the LP presolve reduction in front of every
	// cold LP solve of the MINLP route (ablation knob; the
	// scale-equivariance test battery exercises both settings).
	DisablePresolve bool
	// DisableCrash skips the heuristic crash start: by default the MINLP
	// route runs the paper's parametric heuristic first and hands its
	// allocation to the LP layer as a crash basis for the root relaxation
	// (ablation knob; the crash-vs-cold battery exercises both settings).
	DisableCrash bool
	// CutAtFractional adds outer-approximation cuts at fractional nodes.
	CutAtFractional bool
	// MaxNodes bounds the branch-and-bound tree; exhausting it is a hard
	// failure (an error), the historical behaviour. Prefer NodeBudget for
	// graceful degradation.
	MaxNodes int
	// Deadline bounds the wall-clock time of the solve (0 = unlimited).
	// On expiry the solve degrades gracefully: the best incumbent found so
	// far is returned with Allocation.Bounded set and its optimality gap
	// reported; when no incumbent exists yet, a *NoIncumbentError is
	// returned so callers can fall back to the parametric route.
	Deadline time.Duration
	// NodeBudget bounds the branch-and-bound tree like MaxNodes but with
	// the same graceful degradation as Deadline. When both MaxNodes and
	// NodeBudget are set the smaller wins and degradation applies.
	NodeBudget int
	// Parallelism bounds the solver's worker pools (speculative node-LP
	// evaluation and OA feasibility checks): 0 uses one worker per CPU,
	// negative forces serial. The returned allocation and all solver
	// statistics are bit-identical for every setting.
	Parallelism int
	// Canonical post-processes the solved allocation with
	// Problem.CanonicalAllocation, replacing whatever alternate optimum
	// the search happened to reach by the unique minimal-resource optimal
	// allocation. The makespan is unchanged; only the tie-break among
	// equally optimal assignments becomes deterministic and independent of
	// task order. The HTTP solve service sets this so cached responses are
	// reproducible; default off to preserve historical outputs.
	Canonical bool
	// DebugLPCheck, when non-nil, is invoked after every node LP solve of
	// the branch-and-bound tree (testing hook, e.g. lp.VerifyKKT).
	DebugLPCheck func(p *lp.Problem, sol *lp.Solution)
}

// ErrObjectiveUnsupported is returned by SolveMINLP for max-min, whose
// constraints S ≤ T_j(n_j) are concave-side and therefore outside the
// convex outer-approximation framework; use SolveParametric for it.
var ErrObjectiveUnsupported = errors.New("core: max-min is not convex; use SolveParametric")

// NoIncumbentError reports that a deadline-, budget-, or cancellation-
// limited MINLP solve stopped before finding any integer-feasible
// incumbent. BestBound is a valid lower bound on the optimum at stop time
// (-Inf when nothing was proven). Callers should fall back to a heuristic
// or the parametric route; hslb.Solve does so automatically.
type NoIncumbentError struct {
	BestBound float64
}

func (e *NoIncumbentError) Error() string {
	return fmt.Sprintf("core: MINLP solve stopped before any incumbent (best bound %g)", e.BestBound)
}

// BuildModel constructs the paper's MINLP (Table I structure) for the
// problem. It returns the model plus the ids of the per-task allocation
// variables (for inspection and tests).
func (p *Problem) BuildModel() (*model.Model, []int, error) {
	m, nVars, _, err := p.buildModelStart(nil)
	return m, nVars, err
}

// buildModelStart is BuildModel plus an optional primal start: when hint is
// a per-task node assignment (the paper's heuristic allocation), the model
// variables are valued at it during construction — allocation variables at
// the assigned counts, assignment binaries at the matching candidate's
// indicator, time variables at the predicted times — and the vector is
// returned for the LP layer's crash-basis construction. A nil hint returns
// a nil start.
func (p *Problem) buildModelStart(hint []int) (*model.Model, []int, []float64, error) {
	if err := p.Validate(); err != nil {
		return nil, nil, nil, err
	}
	if p.Objective == MaxMin {
		return nil, nil, nil, ErrObjectiveUnsupported
	}
	if len(hint) != len(p.Tasks) {
		hint = nil
	}
	m := model.New()
	k := len(p.Tasks)

	// A safe upper bound for any per-task time the solver can select.
	ub := 1.0
	for i := range p.Tasks {
		t := &p.Tasks[i]
		lo, _ := t.minCandidate(p.TotalNodes)
		_, hi := t.rangeFor(p.TotalNodes)
		v := math.Max(t.Perf.Eval(float64(lo)), t.Perf.Eval(float64(hi)))
		if v > ub {
			ub = v
		}
	}
	ub *= 1.0000001

	nVars := make([]int, k)
	var timeVars []int
	var tv int
	if p.Objective == MinMax {
		tv = m.AddVar(0, ub, model.Continuous, "T")
		m.SetObjective([]model.Term{{Var: tv, Coef: 1}}, 0)
	} else { // MinSum
		timeVars = make([]int, k)
		obj := make([]model.Term, 0, k)
		for i := range p.Tasks {
			timeVars[i] = m.AddVar(0, ub, model.Continuous, fmt.Sprintf("t[%s]", p.Tasks[i].Name))
			obj = append(obj, model.Term{Var: timeVars[i], Coef: 1})
		}
		m.SetObjective(obj, 0)
	}

	var zOnes []int // assignment binaries the hint values at 1
	budget := make([]model.Term, 0, k)
	for i := range p.Tasks {
		t := &p.Tasks[i]
		lo, hi := t.rangeFor(p.TotalNodes)
		if t.Allowed != nil {
			// Discrete allocation set modelled exactly as the paper's
			// AMPL: binaries z_k with Σz = 1, n = Σ z·A_k, declared as
			// an SOS1 branched on as a set (Table I, lines 29-31).
			cands := t.candidates(p.TotalNodes)
			n := m.AddVar(float64(cands[0]), float64(cands[len(cands)-1]), model.Continuous,
				fmt.Sprintf("n[%s]", t.Name))
			nVars[i] = n
			one := make([]model.Term, 0, len(cands))
			link := []model.Term{{Var: n, Coef: -1}}
			zs := make([]int, 0, len(cands))
			wts := make([]float64, 0, len(cands))
			for _, c := range cands {
				z := m.AddBinary(fmt.Sprintf("z[%s=%d]", t.Name, c))
				zs = append(zs, z)
				wts = append(wts, float64(c))
				one = append(one, model.Term{Var: z, Coef: 1})
				link = append(link, model.Term{Var: z, Coef: float64(c)})
				if hint != nil && c == hint[i] {
					zOnes = append(zOnes, z)
				}
			}
			m.AddLinear(one, lp.EQ, 1, fmt.Sprintf("pick[%s]", t.Name))
			m.AddLinear(link, lp.EQ, 0, fmt.Sprintf("link[%s]", t.Name))
			m.AddSOS1(zs, wts, fmt.Sprintf("sos[%s]", t.Name))
		} else {
			nVars[i] = m.AddVar(float64(lo), float64(hi), model.Integer,
				fmt.Sprintf("n[%s]", t.Name))
		}
		target := tv
		if p.Objective == MinSum {
			target = timeVars[i]
		}
		m.AddNonlinear(t.Perf.Constraint(nVars[i], target), fmt.Sprintf("perf[%s]", t.Name))
		budget = append(budget, model.Term{Var: nVars[i], Coef: 1})
	}
	sense := lp.LE
	if p.UseAllNodes {
		sense = lp.EQ
	}
	m.AddLinear(budget, sense, float64(p.TotalNodes), "budget")

	var start []float64
	if hint != nil {
		start = make([]float64, m.NumVars())
		maxT := 0.0
		for i := range p.Tasks {
			tm := p.Tasks[i].Perf.Eval(float64(hint[i]))
			if tm > maxT {
				maxT = tm
			}
			start[nVars[i]] = float64(hint[i])
			if p.Objective == MinSum {
				start[timeVars[i]] = tm
			}
		}
		if p.Objective == MinMax {
			start[tv] = maxT
		}
		for _, z := range zOnes {
			start[z] = 1
		}
	}
	return m, nVars, start, nil
}

// SolveMINLP is the paper's solver route: formulate the allocation MINLP
// and solve it with LP/NLP-based branch-and-bound. Valid for the convex
// objectives (min-max and min-sum); globally optimal by convexity.
func (p *Problem) SolveMINLP(opts SolverOptions) (*Allocation, error) {
	return p.SolveMINLPContext(context.Background(), opts)
}

// SolveMINLPContext is SolveMINLP with cooperative cancellation and the
// graceful-degradation contract of SolverOptions.Deadline/NodeBudget: when
// the solve is stopped early (ctx cancelled, ctx or Deadline expired, or
// NodeBudget exhausted) it returns the best incumbent with Bounded, Gap,
// and BestBound set instead of an error, or a *NoIncumbentError when no
// integer-feasible point was reached. With no limit firing the result is
// bit-identical to SolveMINLP.
func (p *Problem) SolveMINLPContext(ctx context.Context, opts SolverOptions) (*Allocation, error) {
	// Normalize the time dimension to O(1) by an exact power of two before
	// formulating (see scale.go): the branch-and-bound machinery then sees
	// the same bits whatever time units the caller works in, and the LP
	// layer never faces coefficients at numerically hostile magnitudes.
	// Times in the returned allocation are computed from the ORIGINAL
	// coefficients (allocationFrom); only the solver-internal best bound
	// needs the power-of-two factor undone.
	e := p.TimeScaleExp()
	sp := p
	if e != 0 {
		sp = p.normalizedTime(e)
	}
	// The parametric heuristic is the paper's crash start: its allocation
	// becomes a primal point for the LP layer's crash-basis construction,
	// letting the root relaxation (and any cold node solve) skip phase 1.
	// Strictly best-effort — a heuristic failure just means a cold start.
	var hint []int
	if !opts.DisableCrash {
		if ha, herr := sp.SolveParametricContext(ctx); herr == nil && ha != nil {
			hint = ha.Nodes
		}
	}
	m, nVars, start, err := sp.buildModelStart(hint)
	if err != nil {
		return nil, err
	}
	// NodeBudget and Deadline degrade gracefully; a bare MaxNodes keeps the
	// historical hard-failure semantics.
	graceful := opts.Deadline > 0 || opts.NodeBudget > 0
	maxNodes := opts.MaxNodes
	if opts.NodeBudget > 0 && (maxNodes == 0 || opts.NodeBudget < maxNodes) {
		maxNodes = opts.NodeBudget
	}
	res := minlp.SolveContext(ctx, m, minlp.Options{
		DisableSOSBranching: opts.DisableSOSBranching,
		DisableWarmStart:    opts.DisableWarmStart,
		SkipNLPRelaxation:   opts.SkipNLPRelaxation,
		DisableSparse:       opts.DisableSparse,
		DisablePresolve:     opts.DisablePresolve,
		CutAtFractional:     opts.CutAtFractional,
		MaxNodes:            maxNodes,
		TimeLimit:           opts.Deadline,
		Parallelism:         opts.Parallelism,
		DebugLPCheck:        opts.DebugLPCheck,
		CrashPoint:          start,
	})
	if res.Status == minlp.Limit && (graceful || ctx.Err() != nil) {
		bound := math.Ldexp(res.BestBound, e) // exact: exponent shift only
		if res.X == nil {
			return nil, &NoIncumbentError{BestBound: bound}
		}
		a := p.allocationFrom(res, nVars)
		a.Bounded = true
		a.BestBound = bound
		a.Gap = RelativeGap(p.ObjectiveValue(a), bound)
		if opts.Canonical {
			a = p.CanonicalAllocation(a)
		}
		return a, nil
	}
	if res.Status != minlp.Optimal {
		return nil, fmt.Errorf("core: MINLP solve ended with status %v", res.Status)
	}
	a := p.allocationFrom(res, nVars)
	if opts.Canonical {
		a = p.CanonicalAllocation(a)
	}
	return a, nil
}

// allocationFrom rounds the solver point into an integer allocation and
// attaches the solver statistics.
func (p *Problem) allocationFrom(res *minlp.Result, nVars []int) *Allocation {
	nodes := make([]int, len(p.Tasks))
	for i, v := range nVars {
		nodes[i] = int(math.Round(res.X[v]))
	}
	a := p.Evaluate(nodes)
	a.SolverNodes = res.Nodes
	a.LPSolves = res.LPSolves
	a.OACuts = res.OACuts
	a.Pivots = res.Pivots
	return a
}

// CanonicalAllocation maps a min-max allocation onto the canonical
// representative of its optimality class: per task, the smallest admissible
// node count whose predicted time still meets the allocation's makespan.
// Alternate optima differ only in how many spare nodes non-critical tasks
// happen to hold, and which alternate the branch-and-bound returns depends
// on task order (column order steers pivot tie-breaks); the canonical form
// is a per-task function of the makespan alone and therefore independent of
// task order — the property the solve service's cache relies on.
//
// The makespan is preserved bit for bit: the critical task's minimal count
// is exactly its current one (any smaller admissible count would exceed the
// makespan on the decreasing branch). If floating-point pathologies break
// that invariant, or the objective is not min-max, or the problem pins the
// budget (UseAllNodes: shrinking would strand nodes), the allocation is
// returned unchanged — canonicalization never degrades a solution.
func (p *Problem) CanonicalAllocation(a *Allocation) *Allocation {
	if a == nil || p.Objective != MinMax || p.UseAllNodes {
		return a
	}
	nodes := make([]int, len(p.Tasks))
	for i := range p.Tasks {
		n, ok := p.minNodesAchieving(i, a.Makespan)
		if !ok {
			return a
		}
		nodes[i] = n
	}
	c := p.Evaluate(nodes)
	if c.Makespan != a.Makespan || c.Used > p.TotalNodes {
		return a
	}
	c.SolverNodes = a.SolverNodes
	c.LPSolves = a.LPSolves
	c.OACuts = a.OACuts
	c.Pivots = a.Pivots
	c.Bounded = a.Bounded
	c.BestBound = a.BestBound
	c.Gap = a.Gap
	return c
}

// RelativeGap is the standard MIP gap (obj − bound)/max(1, |obj|), clamped
// to be non-negative and finite-aware: an unproven bound (-Inf) yields +Inf.
func RelativeGap(obj, bound float64) float64 {
	if math.IsInf(bound, -1) {
		return math.Inf(1)
	}
	g := (obj - bound) / math.Max(1, math.Abs(obj))
	if g < 0 || math.IsNaN(g) {
		return 0
	}
	return g
}

// minNodesAchieving returns the smallest admissible allocation for task i
// whose predicted time is ≤ target, or ok=false.
func (p *Problem) minNodesAchieving(i int, target float64) (int, bool) {
	t := &p.Tasks[i]
	lo, hi := t.rangeFor(p.TotalNodes)
	if t.Allowed != nil {
		for _, n := range t.Allowed {
			if n < lo || n > hi {
				continue
			}
			if t.Perf.Eval(float64(n)) <= target {
				return n, true
			}
		}
		return 0, false
	}
	n0, ok := t.Perf.MinNodesFor(target, hi)
	if !ok {
		return 0, false
	}
	if n0 < lo {
		n0 = lo
	}
	if t.Perf.Eval(float64(n0)) > target {
		return 0, false
	}
	return n0, true
}

// maxNodesKeeping returns the largest admissible allocation for task i whose
// predicted time is still ≥ target (used by max-min), or ok=false.
func (p *Problem) maxNodesKeeping(i int, target float64) (int, bool) {
	t := &p.Tasks[i]
	lo, hi := t.rangeFor(p.TotalNodes)
	if t.Allowed != nil {
		for k := len(t.Allowed) - 1; k >= 0; k-- {
			n := t.Allowed[k]
			if n < lo || n > hi {
				continue
			}
			if t.Perf.Eval(float64(n)) >= target {
				return n, true
			}
		}
		return 0, false
	}
	// The time curve is convex: ≥ target holds on a prefix [lo, d1] of the
	// decreasing branch and possibly a suffix [d2, hi] of the increasing
	// branch. Prefer the suffix (larger n).
	if t.Perf.Eval(float64(hi)) >= target {
		return hi, true
	}
	am := t.Perf.ArgMin()
	upper := hi
	if am < float64(upper) {
		upper = int(am)
	}
	if upper < lo {
		upper = lo
	}
	// Binary search the decreasing branch [lo, upper] for the largest n
	// with T(n) ≥ target.
	if t.Perf.Eval(float64(lo)) < target {
		return 0, false
	}
	loN, hiN := lo, upper
	for loN < hiN {
		mid := (loN + hiN + 1) / 2
		if t.Perf.Eval(float64(mid)) >= target {
			loN = mid
		} else {
			hiN = mid - 1
		}
	}
	return loN, true
}

// SolveParametric is the specialized exact solver: it bisects the objective
// level and uses the per-task inverse of the performance function. It
// supports all three objectives and serves as the independent
// cross-validation of the MINLP route (DESIGN.md, decision 4).
func (p *Problem) SolveParametric() (*Allocation, error) {
	return p.SolveParametricContext(context.Background())
}

// SolveParametricContext is SolveParametric with cooperative cancellation:
// ctx is checked between bisection iterations (and greedy rounds), and a
// cancelled run returns ctx.Err(). The route is fast and needs no
// deadline-degradation machinery; with a live ctx the result is
// bit-identical to SolveParametric.
func (p *Problem) SolveParametricContext(ctx context.Context) (*Allocation, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	switch p.Objective {
	case MinMax:
		return p.solveMinMaxParametric(ctx)
	case MaxMin:
		return p.solveMaxMinParametric(ctx)
	default:
		return p.solveMinSumGreedy(ctx)
	}
}

func (p *Problem) minAllocation() []int {
	nodes := make([]int, len(p.Tasks))
	for i := range p.Tasks {
		nodes[i], _ = p.Tasks[i].minCandidate(p.TotalNodes)
	}
	return nodes
}

func (p *Problem) solveMinMaxParametric(ctx context.Context) (*Allocation, error) {
	// Feasibility check of a makespan target.
	tryTarget := func(target float64) ([]int, bool) {
		nodes := make([]int, len(p.Tasks))
		used := 0
		for i := range p.Tasks {
			n, ok := p.minNodesAchieving(i, target)
			if !ok {
				return nil, false
			}
			nodes[i] = n
			used += n
		}
		if used > p.TotalNodes {
			return nil, false
		}
		return nodes, true
	}

	// Bracket: hi = makespan of the minimum allocation (always feasible),
	// lo = the best any single task can ever do (optimum is ≥ max of the
	// per-task minima... the max over tasks of their minimum achievable
	// time is a valid lower bound).
	minAlloc := p.Evaluate(p.minAllocation())
	hi := minAlloc.Makespan
	lo := 0.0
	for i := range p.Tasks {
		best := math.Inf(1)
		t := &p.Tasks[i]
		if t.Allowed != nil {
			for _, n := range t.candidates(p.TotalNodes) {
				if v := t.Perf.Eval(float64(n)); v < best {
					best = v
				}
			}
		} else {
			lo2, hi2 := t.rangeFor(p.TotalNodes)
			am := int(math.Round(t.Perf.ArgMin()))
			for _, n := range []int{lo2, hi2, clampInt(am, lo2, hi2), clampInt(am+1, lo2, hi2)} {
				if v := t.Perf.Eval(float64(n)); v < best {
					best = v
				}
			}
		}
		if best > lo {
			lo = best
		}
	}
	if lo > hi {
		lo = hi
	}
	// The convergence test is homogeneous in the time unit (no absolute
	// "+1" floor): a uniform rescale of the coefficients rescales lo, hi,
	// and the threshold together, so the bisection runs the same number of
	// iterations whatever units the caller uses. The 100-iteration cap
	// bounds the degenerate hi→0 case.
	for iter := 0; iter < 100 && hi-lo > 1e-12*hi; iter++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		mid := (lo + hi) / 2
		if _, ok := tryTarget(mid); ok {
			hi = mid
		} else {
			lo = mid
		}
	}
	nodes, ok := tryTarget(hi)
	if !ok {
		// Numerical edge: fall back to the always-feasible minimum
		// allocation.
		nodes = p.minAllocation()
	}
	// Spend leftover nodes where they reduce the makespan.
	p.polishMinMax(nodes)
	if p.UseAllNodes {
		used := 0
		for _, n := range nodes {
			used += n
		}
		distributeLeftover(p, nodes, p.TotalNodes-used)
	}
	return p.Evaluate(nodes), nil
}

// polishMinMax greedily grows the current makespan task while that strictly
// helps and budget remains.
func (p *Problem) polishMinMax(nodes []int) {
	used := 0
	for _, n := range nodes {
		used += n
	}
	for {
		times := make([]float64, len(nodes))
		for i := range nodes {
			times[i] = p.Tasks[i].Perf.Eval(float64(nodes[i]))
		}
		worst := argMaxF(times)
		up, ok := p.Tasks[worst].nextUp(nodes[worst], p.TotalNodes)
		if !ok || used+up-nodes[worst] > p.TotalNodes {
			return
		}
		if p.Tasks[worst].Perf.Eval(float64(up)) >= times[worst] {
			return // no longer improving (entered the increasing branch)
		}
		used += up - nodes[worst]
		nodes[worst] = up
	}
}

func (p *Problem) solveMaxMinParametric(ctx context.Context) (*Allocation, error) {
	minAlloc := p.minAllocation()
	budget := p.EffectiveBudget()
	sumMin := 0
	for _, n := range minAlloc {
		sumMin += n
	}
	// Feasibility of a floor S: every task can stay ≥ S while together
	// absorbing the whole (effective) budget.
	tryFloor := func(s float64) ([]int, bool) {
		caps := make([]int, len(p.Tasks))
		sumCap := 0
		for i := range p.Tasks {
			c, ok := p.maxNodesKeeping(i, s)
			if !ok || c < minAlloc[i] {
				return nil, false
			}
			caps[i] = c
			sumCap += c
		}
		if sumCap < budget {
			return nil, false
		}
		nodes := append([]int(nil), minAlloc...)
		leftover := budget - sumMin
		// Distribute the surplus to the currently slowest growable task:
		// any distribution within the caps keeps the floor, but this one
		// also improves the makespan as a secondary criterion.
		for leftover > 0 {
			bestI, bestUp := -1, 0
			bestTime := -1.0
			for i := range nodes {
				up, ok := p.Tasks[i].nextUp(nodes[i], p.TotalNodes)
				if !ok || up > caps[i] || up-nodes[i] > leftover {
					continue
				}
				t := p.Tasks[i].Perf.Eval(float64(nodes[i]))
				if t > bestTime {
					bestTime, bestI, bestUp = t, i, up
				}
			}
			if bestI < 0 {
				break
			}
			leftover -= bestUp - nodes[bestI]
			nodes[bestI] = bestUp
		}
		if leftover != 0 {
			return nil, false
		}
		return nodes, true
	}

	// Bracket S ∈ [0, min time at the minimum allocation].
	hi := math.Inf(1)
	for i, n := range minAlloc {
		if v := p.Tasks[i].Perf.Eval(float64(n)); v < hi {
			hi = v
		}
	}
	lo := 0.0
	best, ok := tryFloor(lo)
	if !ok {
		return nil, errors.New("core: max-min allocation cannot use all nodes (allowed-set gaps)")
	}
	// Homogeneous convergence test; see solveMinMaxParametric.
	for iter := 0; iter < 100 && hi-lo > 1e-12*hi; iter++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		mid := (lo + hi) / 2
		if nodes, ok := tryFloor(mid); ok {
			lo = mid
			best = nodes
		} else {
			hi = mid
		}
	}
	return p.Evaluate(best), nil
}

// solveMinSumGreedy allocates by largest marginal time reduction per node.
// For unit-step tasks with convex performance functions the exchange
// argument makes this exact; with sparse allowed sets it is a (good)
// heuristic, and the MINLP route remains the exact reference.
func (p *Problem) solveMinSumGreedy(ctx context.Context) (*Allocation, error) {
	nodes := p.minAllocation()
	used := 0
	for _, n := range nodes {
		used += n
	}
	for {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		bestI, bestUp := -1, 0
		bestRate := 0.0
		for i := range p.Tasks {
			up, ok := p.Tasks[i].nextUp(nodes[i], p.TotalNodes)
			if !ok || used+up-nodes[i] > p.TotalNodes {
				continue
			}
			gain := p.Tasks[i].Perf.Eval(float64(nodes[i])) - p.Tasks[i].Perf.Eval(float64(up))
			rate := gain / float64(up-nodes[i])
			if rate > bestRate {
				bestRate, bestI, bestUp = rate, i, up
			}
		}
		if bestI < 0 {
			break
		}
		used += bestUp - nodes[bestI]
		nodes[bestI] = bestUp
	}
	if p.UseAllNodes {
		distributeLeftover(p, nodes, p.TotalNodes-used)
	}
	return p.Evaluate(nodes), nil
}

// SolveDP solves the allocation problem exactly by dynamic programming over
// (task, nodes-used) states. It is O(k·N·|candidates|) and intended as the
// test oracle for small N; all objectives and allowed sets are supported.
func (p *Problem) SolveDP() (*Allocation, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	k := len(p.Tasks)
	N := p.TotalNodes
	const inf = math.MaxFloat64
	worstInit := inf
	better := func(a, b float64) bool { return a < b }
	combine := func(prev, t float64) float64 { return math.Max(prev, t) } // MinMax
	switch p.Objective {
	case MaxMin:
		combine = func(prev, t float64) float64 { return math.Min(prev, t) }
		better = func(a, b float64) bool { return a > b }
		worstInit = -1
	case MinSum:
		combine = func(prev, t float64) float64 { return prev + t }
	}
	identity := 0.0
	if p.Objective == MinMax {
		identity = 0
	} else if p.Objective == MaxMin {
		identity = inf
	}

	val := make([][]float64, k+1)
	choice := make([][]int, k+1)
	for j := 0; j <= k; j++ {
		val[j] = make([]float64, N+1)
		choice[j] = make([]int, N+1)
		for m := range val[j] {
			val[j][m] = worstInit
			choice[j][m] = -1
		}
	}
	val[0][0] = identity
	for j := 1; j <= k; j++ {
		cands := p.Tasks[j-1].candidates(N)
		for m := 0; m <= N; m++ {
			if val[j-1][m] == worstInit {
				continue
			}
			for _, c := range cands {
				if m+c > N {
					break
				}
				t := p.Tasks[j-1].Perf.Eval(float64(c))
				v := combine(val[j-1][m], t)
				if choice[j][m+c] == -1 || better(v, val[j][m+c]) {
					val[j][m+c] = v
					choice[j][m+c] = c
				}
			}
		}
	}
	bestM, bestV := -1, worstInit
	loM := 0
	if p.UseAllNodes || p.Objective == MaxMin {
		loM = p.EffectiveBudget()
	}
	for m := loM; m <= N; m++ {
		if choice[k][m] == -1 && !(k == 0 && m == 0) {
			continue
		}
		if val[k][m] == worstInit {
			continue
		}
		if bestM == -1 || better(val[k][m], bestV) {
			bestM, bestV = m, val[k][m]
		}
	}
	if bestM < 0 {
		return nil, errors.New("core: DP found no feasible allocation")
	}
	nodes := make([]int, k)
	m := bestM
	for j := k; j >= 1; j-- {
		c := choice[j][m]
		nodes[j-1] = c
		m -= c
	}
	return p.Evaluate(nodes), nil
}

func clampInt(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

func argMaxF(xs []float64) int {
	best := 0
	for i, x := range xs {
		if x > xs[best] {
			best = i
		}
	}
	return best
}
