package core

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/perfmodel"
	"repro/internal/stats"
)

// fourTasks builds a CESM/FMO-flavoured four-task problem with heterogeneous
// scalable work, reminiscent of the paper's ice/lnd/atm/ocn component mix.
func fourTasks(n int, obj Objective) *Problem {
	return &Problem{
		Tasks: []Task{
			{Name: "lnd", Perf: perfmodel.Params{A: 1500, B: 0.001, C: 1, D: 2}},
			{Name: "ice", Perf: perfmodel.Params{A: 9000, B: 0.002, C: 1, D: 5}},
			{Name: "atm", Perf: perfmodel.Params{A: 32000, B: 0.001, C: 1.1, D: 10}},
			{Name: "ocn", Perf: perfmodel.Params{A: 14000, B: 0.003, C: 1, D: 8}},
		},
		TotalNodes: n,
		Objective:  obj,
	}
}

func randomProblem(rng *stats.RNG, maxTasks, maxNodes int, obj Objective, allowSets bool) *Problem {
	k := 2 + rng.Intn(maxTasks-1)
	n := k + rng.Intn(maxNodes-k)
	p := &Problem{TotalNodes: n, Objective: obj}
	for i := 0; i < k; i++ {
		t := Task{
			Name: "t",
			Perf: perfmodel.Params{
				A: rng.Range(1, 500),
				B: rng.Range(0, 0.05),
				C: rng.Range(1, 1.6),
				D: rng.Range(0, 3),
			},
		}
		if allowSets && rng.Intn(2) == 0 {
			// A sparse allowed set.
			set := []int{}
			for v := 1; v <= n; v += 1 + rng.Intn(3) {
				set = append(set, v)
			}
			t.Allowed = set
		}
		p.Tasks = append(p.Tasks, t)
	}
	return p
}

func TestValidate(t *testing.T) {
	p := fourTasks(16, MinMax)
	if err := p.Validate(); err != nil {
		t.Fatalf("valid problem rejected: %v", err)
	}
	if err := (&Problem{TotalNodes: 4}).Validate(); err == nil {
		t.Fatal("empty task list accepted")
	}
	small := fourTasks(3, MinMax)
	if err := small.Validate(); err == nil {
		t.Fatal("4 tasks on 3 nodes accepted")
	}
	bad := fourTasks(16, MinMax)
	bad.Tasks[0].Allowed = []int{4, 4}
	if err := bad.Validate(); err == nil {
		t.Fatal("non-increasing allowed set accepted")
	}
	gap := fourTasks(16, MinMax)
	gap.Tasks[0].Allowed = []int{100} // beyond the budget
	if err := gap.Validate(); err == nil {
		t.Fatal("unreachable allowed set accepted")
	}
}

func TestEvaluate(t *testing.T) {
	p := fourTasks(100, MinMax)
	a := p.Evaluate([]int{10, 30, 40, 20})
	if a.Used != 100 {
		t.Fatalf("Used = %d", a.Used)
	}
	if a.Makespan < a.MinTime || a.Imbalance < 1 {
		t.Fatalf("inconsistent stats: %+v", a)
	}
	wantSum := 0.0
	for _, v := range a.Times {
		wantSum += v
	}
	if math.Abs(a.SumTime-wantSum) > 1e-9 {
		t.Fatalf("SumTime = %v, want %v", a.SumTime, wantSum)
	}
}

func TestTaskCandidateHelpers(t *testing.T) {
	task := Task{Allowed: []int{2, 4, 8, 16}, MinNodes: 3}
	if n, ok := task.minCandidate(100); !ok || n != 4 {
		t.Fatalf("minCandidate = %d, %v", n, ok)
	}
	if n, ok := task.nextUp(4, 100); !ok || n != 8 {
		t.Fatalf("nextUp(4) = %d, %v", n, ok)
	}
	if _, ok := task.nextUp(16, 100); ok {
		t.Fatal("nextUp past the end succeeded")
	}
	if n, ok := task.nextDown(8, 100); !ok || n != 4 {
		t.Fatalf("nextDown(8) = %d, %v", n, ok)
	}
	if _, ok := task.nextDown(4, 100); ok {
		t.Fatal("nextDown below MinNodes succeeded")
	}
	if v := task.snapDown(11, 100); v != 8 {
		t.Fatalf("snapDown(11) = %d", v)
	}
	if v := task.snapDown(1, 100); v != 4 {
		t.Fatalf("snapDown below set = %d (want smallest admissible)", v)
	}
	// Budget caps the set.
	if n, ok := task.nextUp(8, 10); ok {
		t.Fatalf("nextUp beyond budget gave %d", n)
	}
	free := Task{}
	if n, ok := free.minCandidate(50); !ok || n != 1 {
		t.Fatalf("free minCandidate = %d", n)
	}
	if n, ok := free.nextUp(7, 50); !ok || n != 8 {
		t.Fatalf("free nextUp = %d", n)
	}
}

func TestMinMaxParametricSmall(t *testing.T) {
	p := fourTasks(64, MinMax)
	a, err := p.SolveParametric()
	if err != nil {
		t.Fatal(err)
	}
	if !p.Feasible(a.Nodes) {
		t.Fatalf("infeasible allocation %v", a.Nodes)
	}
	dp, err := p.SolveDP()
	if err != nil {
		t.Fatal(err)
	}
	if a.Makespan > dp.Makespan*(1+1e-9) {
		t.Fatalf("parametric %v worse than DP %v", a.Makespan, dp.Makespan)
	}
}

func TestMINLPMatchesDP(t *testing.T) {
	p := fourTasks(48, MinMax)
	a, err := p.SolveMINLP(SolverOptions{})
	if err != nil {
		t.Fatal(err)
	}
	dp, err := p.SolveDP()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(a.Makespan-dp.Makespan) > 1e-6*dp.Makespan {
		t.Fatalf("MINLP %v vs DP %v (nodes %v vs %v)", a.Makespan, dp.Makespan, a.Nodes, dp.Nodes)
	}
}

func TestMINLPMaxMinRejected(t *testing.T) {
	p := fourTasks(48, MaxMin)
	if _, err := p.SolveMINLP(SolverOptions{}); err == nil {
		t.Fatal("max-min accepted by the convex MINLP route")
	}
}

func TestMinSumRoutesAgree(t *testing.T) {
	p := fourTasks(40, MinSum)
	greedy, err := p.SolveParametric()
	if err != nil {
		t.Fatal(err)
	}
	dp, err := p.SolveDP()
	if err != nil {
		t.Fatal(err)
	}
	minlpRes, err := p.SolveMINLP(SolverOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(minlpRes.SumTime-dp.SumTime) > 1e-5*dp.SumTime {
		t.Fatalf("MINLP min-sum %v vs DP %v", minlpRes.SumTime, dp.SumTime)
	}
	// Greedy is exact for unit-step convex tasks.
	if math.Abs(greedy.SumTime-dp.SumTime) > 1e-6*dp.SumTime {
		t.Fatalf("greedy min-sum %v vs DP %v", greedy.SumTime, dp.SumTime)
	}
}

func TestMaxMinParametricAgainstDP(t *testing.T) {
	p := fourTasks(32, MaxMin)
	a, err := p.SolveParametric()
	if err != nil {
		t.Fatal(err)
	}
	dp, err := p.SolveDP()
	if err != nil {
		t.Fatal(err)
	}
	if a.Used != p.TotalNodes {
		t.Fatalf("max-min must use all nodes, used %d", a.Used)
	}
	if math.Abs(a.MinTime-dp.MinTime) > 1e-6*(1+dp.MinTime) {
		t.Fatalf("max-min parametric %v vs DP %v", a.MinTime, dp.MinTime)
	}
}

func TestAllowedSetsRespected(t *testing.T) {
	p := fourTasks(128, MinMax)
	p.Tasks[3].Allowed = []int{2, 4, 8, 16, 32, 64} // the ocean-style set
	a, err := p.SolveMINLP(SolverOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !p.Feasible(a.Nodes) {
		t.Fatalf("allocation violates allowed set: %v", a.Nodes)
	}
	b, err := p.SolveParametric()
	if err != nil {
		t.Fatal(err)
	}
	if !p.Feasible(b.Nodes) {
		t.Fatalf("parametric allocation violates allowed set: %v", b.Nodes)
	}
	if math.Abs(a.Makespan-b.Makespan) > 1e-6*a.Makespan {
		t.Fatalf("routes disagree: MINLP %v vs parametric %v", a.Makespan, b.Makespan)
	}
}

func TestBaselinesFeasibleAndWorse(t *testing.T) {
	p := fourTasks(256, MinMax)
	opt, err := p.SolveParametric()
	if err != nil {
		t.Fatal(err)
	}
	for name, a := range map[string]*Allocation{
		"uniform":      Uniform(p),
		"proportional": Proportional(p),
		"manual":       ManualMimic(p, 8),
	} {
		if a.Used > p.TotalNodes {
			t.Fatalf("%s overspends: %d > %d", name, a.Used, p.TotalNodes)
		}
		if a.Makespan < opt.Makespan*(1-1e-9) {
			t.Fatalf("%s beats the optimum: %v < %v", name, a.Makespan, opt.Makespan)
		}
	}
	// The heterogeneous mix should make uniform clearly worse than HSLB.
	if Uniform(p).Makespan < opt.Makespan*1.05 {
		t.Fatalf("uniform unexpectedly close to optimal: %v vs %v",
			Uniform(p).Makespan, opt.Makespan)
	}
	// Manual tuning lands between uniform and optimal.
	man := ManualMimic(p, 8)
	if man.Makespan > Uniform(p).Makespan*(1+1e-9) {
		t.Fatalf("manual mimic worse than its uniform start: %v vs %v",
			man.Makespan, Uniform(p).Makespan)
	}
}

// Property: parametric min-max matches the DP oracle on random instances,
// including sparse allowed sets.
func TestMinMaxParametricVsDPProperty(t *testing.T) {
	f := func(seed uint64) bool {
		rng := stats.NewRNG(seed)
		p := randomProblem(rng, 4, 40, MinMax, true)
		if p.Validate() != nil {
			return true // skip degenerate instance
		}
		a, err := p.SolveParametric()
		if err != nil {
			return false
		}
		dp, err := p.SolveDP()
		if err != nil {
			return false
		}
		if !p.Feasible(a.Nodes) {
			return false
		}
		return a.Makespan <= dp.Makespan*(1+1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// Property: the MINLP route matches the DP oracle on random instances.
func TestMINLPVsDPProperty(t *testing.T) {
	f := func(seed uint64) bool {
		rng := stats.NewRNG(seed)
		p := randomProblem(rng, 3, 24, MinMax, true)
		if p.Validate() != nil {
			return true
		}
		a, err := p.SolveMINLP(SolverOptions{})
		if err != nil {
			return false
		}
		dp, err := p.SolveDP()
		if err != nil {
			return false
		}
		return math.Abs(a.Makespan-dp.Makespan) <= 1e-5*(1+dp.Makespan)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: baselines never beat the exact optimum.
func TestBaselinesNeverBeatOptimumProperty(t *testing.T) {
	f := func(seed uint64) bool {
		rng := stats.NewRNG(seed)
		p := randomProblem(rng, 4, 60, MinMax, false)
		if p.Validate() != nil {
			return true
		}
		opt, err := p.SolveParametric()
		if err != nil {
			return false
		}
		for _, a := range []*Allocation{Uniform(p), Proportional(p), ManualMimic(p, 6)} {
			if a.Makespan < opt.Makespan*(1-1e-9) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestLargeScaleParametric(t *testing.T) {
	// The paper's headline scale: 32,768 nodes. The parametric solver must
	// handle it fast and produce a balanced allocation.
	p := fourTasks(32768, MinMax)
	a, err := p.SolveParametric()
	if err != nil {
		t.Fatal(err)
	}
	if !p.Feasible(a.Nodes) {
		t.Fatalf("infeasible: %v", a.Nodes)
	}
	if a.Imbalance > 1.10 {
		t.Fatalf("imbalance %v at 32768 nodes; times %v", a.Imbalance, a.Times)
	}
}

func TestLargeScaleMINLPWithSweetSpots(t *testing.T) {
	// MINLP route at scale with a sparse ocean set (the paper's setting).
	p := fourTasks(8192, MinMax)
	p.Tasks[3].Allowed = []int{480, 512, 2356, 3136, 4564, 6124}
	a, err := p.SolveMINLP(SolverOptions{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := p.SolveParametric()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(a.Makespan-b.Makespan) > 1e-5*a.Makespan {
		t.Fatalf("routes disagree at scale: %v vs %v", a.Makespan, b.Makespan)
	}
}

func TestUseAllNodes(t *testing.T) {
	p := fourTasks(100, MinMax)
	p.UseAllNodes = true
	a, err := p.SolveParametric()
	if err != nil {
		t.Fatal(err)
	}
	if a.Used != 100 {
		t.Fatalf("Used = %d, want 100", a.Used)
	}
	if !p.Feasible(a.Nodes) {
		t.Fatal("infeasible equality allocation")
	}
}

func TestObjectiveValue(t *testing.T) {
	p := fourTasks(40, MinMax)
	a := p.Evaluate([]int{10, 10, 10, 10})
	if p.ObjectiveValue(a) != a.Makespan {
		t.Fatal("min-max objective mismatch")
	}
	p.Objective = MaxMin
	if p.ObjectiveValue(a) != -a.MinTime {
		t.Fatal("max-min objective mismatch")
	}
	p.Objective = MinSum
	if p.ObjectiveValue(a) != a.SumTime {
		t.Fatal("min-sum objective mismatch")
	}
}

func TestObjectiveComparisonShape(t *testing.T) {
	// The paper: min-max and max-min give similar quality; min-sum is much
	// worse as a load-balancing objective. Judge each objective's
	// allocation by the resulting makespan.
	mm := fourTasks(1024, MinMax)
	aMM, err := mm.SolveParametric()
	if err != nil {
		t.Fatal(err)
	}
	xm := fourTasks(1024, MaxMin)
	aXM, err := xm.SolveParametric()
	if err != nil {
		t.Fatal(err)
	}
	ms := fourTasks(1024, MinSum)
	aMS, err := ms.SolveParametric()
	if err != nil {
		t.Fatal(err)
	}
	if aMM.Makespan > aXM.Makespan*1.25 {
		t.Fatalf("min-max (%v) much worse than max-min (%v)?", aMM.Makespan, aXM.Makespan)
	}
	if aMS.Makespan < aMM.Makespan*1.02 {
		t.Fatalf("min-sum (%v) not worse than min-max (%v); paper says it is much worse",
			aMS.Makespan, aMM.Makespan)
	}
}
