// Package prof wires optional -cpuprofile / -memprofile outputs into the
// command-line tools. Both profiles are written in pprof format: inspect
// with `go tool pprof <binary> <file>`.
package prof

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// Start begins CPU profiling when cpu is non-empty. The returned stop
// function ends the CPU profile and, when mem is non-empty, writes a heap
// profile captured after a final GC. Call stop exactly once, before the
// process exits (including error exits — os.Exit skips deferred calls).
func Start(cpu, mem string) (stop func(), err error) {
	var cpuFile *os.File
	if cpu != "" {
		cpuFile, err = os.Create(cpu)
		if err != nil {
			return nil, fmt.Errorf("cpu profile: %w", err)
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return nil, fmt.Errorf("cpu profile: %w", err)
		}
	}
	return func() {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			cpuFile.Close()
		}
		if mem != "" {
			f, err := os.Create(mem)
			if err != nil {
				fmt.Fprintf(os.Stderr, "mem profile: %v\n", err)
				return
			}
			defer f.Close()
			runtime.GC() // measure live heap, not transient garbage
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "mem profile: %v\n", err)
			}
		}
	}, nil
}
