// Package perfmodel implements the HSLB performance model of the paper
// (Table II of the companion text):
//
//	T(n) = T_sca(n) + T_nln(n) + T_ser = a/n + b·nᶜ + d,   a, b, c, d ≥ 0
//
// where n is the number of nodes allocated to a task,
//
//   - a/n is the perfectly scalable (Amdahl) part, monotonically decreasing
//     towards zero;
//   - b·nᶜ captures the partially parallelized / communication /
//     synchronization overhead, an increasing function on the machines the
//     paper studied (on Intrepid, "this term was increasing ... parameters
//     c, b almost equal to zero");
//   - d is the serial remainder, a constant floor that dominates at scale.
//
// Fitting minimizes the sum of squared residuals against measured
// wall-clock samples, with all coefficients constrained non-negative, via
// projected Levenberg–Marquardt with multistart (package nlp). By default
// the exponent is constrained to c ≥ 1, which together with a, b, d ≥ 0
// makes T convex on n > 0 — the property that makes the paper's LP/NLP
// branch-and-bound globally optimal. The follow-up text observes b and c
// "almost equal to zero" on Intrepid; with b ≈ 0 the exponent is barely
// identifiable, so constraining c ≥ 1 costs essentially no fit quality
// while buying the convexity guarantee (DESIGN.md, decision 1).
package perfmodel

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/model"
	"repro/internal/nlp"
	"repro/internal/stats"
)

// Params are the fitted coefficients of one task's performance function.
type Params struct {
	A float64 `json:"a"` // scalable work (seconds at n=1 contribution a)
	B float64 `json:"b"` // overhead coefficient
	C float64 `json:"c"` // overhead exponent
	D float64 `json:"d"` // serial floor (seconds)
}

// Eval returns T(n). n must be positive.
func (p Params) Eval(n float64) float64 {
	return p.A/n + p.B*math.Pow(n, p.C) + p.D
}

// Deriv returns dT/dn.
func (p Params) Deriv(n float64) float64 {
	d := -p.A / (n * n)
	if p.B != 0 {
		d += p.B * p.C * math.Pow(n, p.C-1)
	}
	return d
}

// Convex reports whether T is convex on n > 0 (true when the overhead term
// is absent or its exponent is at least 1).
func (p Params) Convex() bool { return p.B == 0 || p.C >= 1 }

// Valid reports whether all coefficients are finite and non-negative.
func (p Params) Valid() bool {
	for _, v := range []float64{p.A, p.B, p.C, p.D} {
		if v < 0 || math.IsNaN(v) || math.IsInf(v, 0) {
			return false
		}
	}
	return true
}

func (p Params) String() string {
	return fmt.Sprintf("T(n) = %.4g/n + %.4g·n^%.3g + %.4g", p.A, p.B, p.C, p.D)
}

// Constraint returns the Smooth g(x) = T(x[nVar]) − x[tVar], i.e. the
// paper's temporal constraint T ≥ T_j(n_j) in g ≤ 0 form, for use in
// allocation models.
func (p Params) Constraint(nVar, tVar int) model.Smooth {
	return &model.FuncSmooth{
		Over: []int{nVar, tVar},
		F: func(x []float64) float64 {
			return p.Eval(x[nVar]) - x[tVar]
		},
		DF: func(x []float64) []float64 {
			return []float64{p.Deriv(x[nVar]), -1}
		},
	}
}

// ArgMin returns the real n > 0 minimizing T (may be +Inf when T is
// non-increasing everywhere, i.e. b = 0).
func (p Params) ArgMin() float64 {
	if p.B == 0 || p.C == 0 {
		return math.Inf(1)
	}
	// Solve a/n² = b·c·n^(c-1) → n^(c+1) = a/(b·c).
	if p.A == 0 {
		return 1e-300 // strictly increasing: minimum at the left edge
	}
	return math.Pow(p.A/(p.B*p.C), 1/(p.C+1))
}

// MinNodesFor returns the smallest integer n in [1, nMax] with T(n) ≤ t.
// Because T is decreasing up to ArgMin, the search bisects the decreasing
// branch; it returns ok=false when no n in range achieves t.
func (p Params) MinNodesFor(t float64, nMax int) (int, bool) {
	if nMax < 1 {
		return 0, false
	}
	hi := float64(nMax)
	if am := p.ArgMin(); am < hi {
		hi = am
	}
	ihi := int(math.Floor(hi))
	if ihi < 1 {
		ihi = 1
	}
	if p.Eval(float64(ihi)) > t {
		// Check the neighbourhood of the minimum (integer rounding).
		if ihi+1 <= nMax && p.Eval(float64(ihi+1)) <= t {
			return ihi + 1, true
		}
		return 0, false
	}
	lo, hi2 := 1, ihi
	for lo < hi2 {
		mid := (lo + hi2) / 2
		if p.Eval(float64(mid)) <= t {
			hi2 = mid
		} else {
			lo = mid + 1
		}
	}
	return lo, true
}

// Sample is one benchmark observation: measured wall-clock time on a node
// count.
type Sample struct {
	Nodes float64 `json:"nodes"`
	Time  float64 `json:"time"`
}

// FitOptions tunes Fit. Zero values select defaults.
type FitOptions struct {
	// CMin/CMax bound the overhead exponent. Defaults 1 and 2.5; set
	// CMin < 1 to allow the non-convex regime (the exact table-based
	// solver can still use such fits).
	CMin, CMax float64
	// Starts is the number of multistart points (default 12).
	Starts int
	// Seed drives the deterministic multistart sampling.
	Seed uint64
	// Parallelism bounds the multistart worker pool: 0 uses one worker per
	// CPU, negative forces serial. The fitted result is bit-identical for
	// every setting (see nlp.LSQOptions.Parallelism). Callers that already
	// fit many tasks in parallel should pass -1 to avoid oversubscribing
	// the machine.
	Parallelism int
}

// FitResult is a fitted performance function with quality diagnostics.
type FitResult struct {
	Params Params  `json:"params"`
	SSE    float64 `json:"sse"`
	R2     float64 `json:"r2"`
}

// ErrTooFewSamples is returned when fewer than 2 distinct node counts are
// provided; the paper recommends at least 4 ("the number of benchmarking
// runs ... should be at least greater than four").
var ErrTooFewSamples = errors.New("perfmodel: need samples at at least 2 distinct node counts")

// Fit estimates the coefficients from benchmark samples by box-constrained
// least squares, reproducing the paper's step 2 (Table II, line 10).
func Fit(samples []Sample, opts FitOptions) (*FitResult, error) {
	if opts.CMax == 0 {
		opts.CMax = 2.5
	}
	if opts.CMin == 0 {
		opts.CMin = 1
	}
	if opts.Starts == 0 {
		opts.Starts = 12
	}
	distinct := map[float64]bool{}
	for _, s := range samples {
		if s.Nodes < 1 || s.Time < 0 || math.IsNaN(s.Time) {
			return nil, fmt.Errorf("perfmodel: invalid sample (n=%g, t=%g)", s.Nodes, s.Time)
		}
		distinct[s.Nodes] = true
	}
	if len(distinct) < 2 {
		return nil, ErrTooFewSamples
	}

	maxT := 0.0
	maxN := 0.0
	for _, s := range samples {
		if s.Time > maxT {
			maxT = s.Time
		}
		if s.Nodes > maxN {
			maxN = s.Nodes
		}
	}

	prob := &nlp.LSQProblem{
		Residuals: func(th []float64) []float64 {
			p := Params{A: th[0], B: th[1], C: th[2], D: th[3]}
			r := make([]float64, len(samples))
			for i, s := range samples {
				r[i] = p.Eval(s.Nodes) - s.Time
			}
			return r
		},
		Lo: []float64{0, 0, opts.CMin, 0},
		Hi: []float64{maxT * maxN * 10, maxT * 10, opts.CMax, maxT * 2},
	}
	// Heuristic start: all time scalable at the smallest sample.
	start := []float64{samples[0].Time * samples[0].Nodes, 0, math.Max(1, opts.CMin), 0}
	rng := stats.NewRNG(opts.Seed + 0x9e3779b9)
	res, err := prob.SolveMultistart(start, opts.Starts, rng, nlp.LSQOptions{MaxIter: 300, Parallelism: opts.Parallelism})
	if err != nil {
		return nil, err
	}
	fitted := Params{A: res.Theta[0], B: res.Theta[1], C: res.Theta[2], D: res.Theta[3]}
	obs := make([]float64, len(samples))
	pred := make([]float64, len(samples))
	for i, s := range samples {
		obs[i] = s.Time
		pred[i] = fitted.Eval(s.Nodes)
	}
	return &FitResult{Params: fitted, SSE: res.SSE, R2: stats.RSquared(obs, pred)}, nil
}

// SuggestSampleNodes returns the node counts at which to benchmark a task,
// following the paper's recommendation: the minimum feasible count, the
// maximum available, and geometrically spaced points in between to capture
// the curvature.
func SuggestSampleNodes(minNodes, maxNodes, count int) []int {
	if count < 2 {
		count = 2
	}
	if minNodes < 1 {
		minNodes = 1
	}
	if maxNodes < minNodes {
		maxNodes = minNodes
	}
	out := make([]int, 0, count)
	ratio := float64(maxNodes) / float64(minNodes)
	for i := 0; i < count; i++ {
		f := float64(i) / float64(count-1)
		n := int(math.Round(float64(minNodes) * math.Pow(ratio, f)))
		if len(out) > 0 && n <= out[len(out)-1] {
			n = out[len(out)-1] + 1
		}
		if n > maxNodes {
			break
		}
		out = append(out, n)
	}
	return out
}
