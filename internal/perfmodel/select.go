package perfmodel

import (
	"fmt"
	"math"

	"repro/internal/nlp"
	"repro/internal/stats"
)

// Family identifies a performance-model functional form. The paper settles
// on the four-parameter HSLB form; the alternatives here implement the
// model-choice discussion of its performance-model section (simpler Amdahl
// variants for components that need fewer degrees of freedom — recall that
// on Intrepid b and c were "almost equal to zero").
type Family int

// Model families.
const (
	// FamilyHSLB is T(n) = a/n + b·nᶜ + d (the paper's model).
	FamilyHSLB Family = iota
	// FamilyAmdahl is T(n) = a/n + d (pure Amdahl).
	FamilyAmdahl
	// FamilyPower is T(n) = a/nᶜ + d (power-law scaling, sublinear when
	// c < 1 — the common fit for codes with serialized phases).
	FamilyPower
)

func (f Family) String() string {
	switch f {
	case FamilyHSLB:
		return "hslb"
	case FamilyAmdahl:
		return "amdahl"
	case FamilyPower:
		return "power"
	}
	return "unknown"
}

// NumParams returns the number of free coefficients of the family.
func (f Family) NumParams() int {
	switch f {
	case FamilyHSLB:
		return 4
	case FamilyAmdahl:
		return 2
	default:
		return 3
	}
}

// FitFamily fits the requested family to the samples. The result always
// uses the Params representation (unused coefficients zero; FamilyPower
// stores its exponent by scaling: T = a·n⁻ᶜ + d is encoded with B = 0 and
// a pseudo-A — see below).
//
// Because Params canonically represents a/n + b·nᶜ + d, FamilyPower is
// returned as a PowerParams instead.
func FitFamily(f Family, samples []Sample, opts FitOptions) (*FamilyFit, error) {
	switch f {
	case FamilyHSLB:
		r, err := Fit(samples, opts)
		if err != nil {
			return nil, err
		}
		return &FamilyFit{Family: f, HSLB: r.Params, SSE: r.SSE, R2: r.R2, N: len(samples)}, nil
	case FamilyAmdahl:
		return fitAmdahl(samples, opts)
	case FamilyPower:
		return fitPower(samples, opts)
	default:
		return nil, fmt.Errorf("perfmodel: unknown family %v", f)
	}
}

// PowerParams is the a/nᶜ + d form.
type PowerParams struct {
	A float64 `json:"a"`
	C float64 `json:"c"`
	D float64 `json:"d"`
}

// Eval returns T(n).
func (p PowerParams) Eval(n float64) float64 { return p.A/math.Pow(n, p.C) + p.D }

// FamilyFit is a fitted model of any family.
type FamilyFit struct {
	Family Family      `json:"family"`
	HSLB   Params      `json:"hslb,omitempty"`  // FamilyHSLB / FamilyAmdahl
	Power  PowerParams `json:"power,omitempty"` // FamilyPower
	SSE    float64     `json:"sse"`
	R2     float64     `json:"r2"`
	N      int         `json:"n"`
}

// Eval returns the fitted prediction at n.
func (ff *FamilyFit) Eval(n float64) float64 {
	if ff.Family == FamilyPower {
		return ff.Power.Eval(n)
	}
	return ff.HSLB.Eval(n)
}

// AICc returns the small-sample corrected Akaike information criterion of
// the fit under a Gaussian error model (lower is better). When the sample
// count is too small for the correction (n ≤ k+1) it returns +Inf,
// penalizing overparameterized fits outright.
func (ff *FamilyFit) AICc() float64 {
	n := float64(ff.N)
	k := float64(ff.Family.NumParams())
	if n <= k+1 {
		return math.Inf(1)
	}
	sse := ff.SSE
	if sse < 1e-300 {
		sse = 1e-300
	}
	aic := n*math.Log(sse/n) + 2*k
	return aic + 2*k*(k+1)/(n-k-1)
}

func fitAmdahl(samples []Sample, opts FitOptions) (*FamilyFit, error) {
	if err := validateSamples(samples); err != nil {
		return nil, err
	}
	maxT, maxN := sampleScales(samples)
	prob := &nlp.LSQProblem{
		Residuals: func(th []float64) []float64 {
			r := make([]float64, len(samples))
			for i, s := range samples {
				r[i] = th[0]/s.Nodes + th[1] - s.Time
			}
			return r
		},
		Lo: []float64{0, 0},
		Hi: []float64{maxT * maxN * 10, maxT * 2},
	}
	rng := stats.NewRNG(opts.Seed + 0x51ed)
	starts := opts.Starts
	if starts == 0 {
		starts = 8
	}
	res, err := prob.SolveMultistart([]float64{samples[0].Time * samples[0].Nodes, 0}, starts, rng, nlp.LSQOptions{MaxIter: 200, Parallelism: opts.Parallelism})
	if err != nil {
		return nil, err
	}
	p := Params{A: res.Theta[0], C: 1, D: res.Theta[1]}
	return &FamilyFit{
		Family: FamilyAmdahl, HSLB: p, SSE: res.SSE,
		R2: r2Of(samples, p.Eval), N: len(samples),
	}, nil
}

func fitPower(samples []Sample, opts FitOptions) (*FamilyFit, error) {
	if err := validateSamples(samples); err != nil {
		return nil, err
	}
	maxT, maxN := sampleScales(samples)
	prob := &nlp.LSQProblem{
		Residuals: func(th []float64) []float64 {
			r := make([]float64, len(samples))
			for i, s := range samples {
				r[i] = th[0]/math.Pow(s.Nodes, th[1]) + th[2] - s.Time
			}
			return r
		},
		Lo: []float64{0, 0.05, 0},
		Hi: []float64{maxT * maxN * 10, 2, maxT * 2},
	}
	rng := stats.NewRNG(opts.Seed + 0x9dc5)
	starts := opts.Starts
	if starts == 0 {
		starts = 10
	}
	res, err := prob.SolveMultistart([]float64{samples[0].Time * samples[0].Nodes, 1, 0}, starts, rng, nlp.LSQOptions{MaxIter: 250, Parallelism: opts.Parallelism})
	if err != nil {
		return nil, err
	}
	pp := PowerParams{A: res.Theta[0], C: res.Theta[1], D: res.Theta[2]}
	return &FamilyFit{
		Family: FamilyPower, Power: pp, SSE: res.SSE,
		R2: r2Of(samples, pp.Eval), N: len(samples),
	}, nil
}

// SelectModel fits every family and returns them sorted by AICc, best
// first — the automated version of "choosing an appropriate performance
// model is a crucial step".
func SelectModel(samples []Sample, opts FitOptions) ([]*FamilyFit, error) {
	fams := []Family{FamilyHSLB, FamilyAmdahl, FamilyPower}
	fits := make([]*FamilyFit, 0, len(fams))
	for _, f := range fams {
		ff, err := FitFamily(f, samples, opts)
		if err != nil {
			return nil, err
		}
		fits = append(fits, ff)
	}
	// Insertion sort by AICc (3 elements).
	for i := 1; i < len(fits); i++ {
		for j := i; j > 0 && fits[j].AICc() < fits[j-1].AICc(); j-- {
			fits[j], fits[j-1] = fits[j-1], fits[j]
		}
	}
	return fits, nil
}

// r2Of computes R² of a prediction function against the samples.
func r2Of(samples []Sample, eval func(float64) float64) float64 {
	obs := make([]float64, len(samples))
	pred := make([]float64, len(samples))
	for i, s := range samples {
		obs[i] = s.Time
		pred[i] = eval(s.Nodes)
	}
	return stats.RSquared(obs, pred)
}

func validateSamples(samples []Sample) error {
	distinct := map[float64]bool{}
	for _, s := range samples {
		if s.Nodes < 1 || s.Time < 0 || math.IsNaN(s.Time) {
			return fmt.Errorf("perfmodel: invalid sample (n=%g, t=%g)", s.Nodes, s.Time)
		}
		distinct[s.Nodes] = true
	}
	if len(distinct) < 2 {
		return ErrTooFewSamples
	}
	return nil
}

func sampleScales(samples []Sample) (maxT, maxN float64) {
	for _, s := range samples {
		if s.Time > maxT {
			maxT = s.Time
		}
		if s.Nodes > maxN {
			maxN = s.Nodes
		}
	}
	return maxT, maxN
}
