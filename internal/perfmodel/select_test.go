package perfmodel

import (
	"math"
	"testing"

	"repro/internal/stats"
)

func samplesFrom(eval func(float64) float64, ns []float64, noise float64, seed uint64) []Sample {
	rng := stats.NewRNG(seed)
	out := make([]Sample, len(ns))
	for i, n := range ns {
		out[i] = Sample{Nodes: n, Time: eval(n) * rng.LogNormFactor(noise)}
	}
	return out
}

var selGrid = []float64{1, 2, 4, 8, 16, 32, 64, 128, 256}

func TestFitFamilyAmdahl(t *testing.T) {
	truth := Params{A: 1200, C: 1, D: 7}
	ff, err := FitFamily(FamilyAmdahl, samplesFrom(truth.Eval, selGrid, 0, 1), FitOptions{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if ff.R2 < 0.9999 {
		t.Fatalf("R² = %v", ff.R2)
	}
	if math.Abs(ff.HSLB.A-1200) > 15 || math.Abs(ff.HSLB.D-7) > 0.5 {
		t.Fatalf("params = %+v", ff.HSLB)
	}
}

func TestFitFamilyPower(t *testing.T) {
	truth := PowerParams{A: 900, C: 0.7, D: 3}
	ff, err := FitFamily(FamilyPower, samplesFrom(truth.Eval, selGrid, 0, 2), FitOptions{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if ff.R2 < 0.9999 {
		t.Fatalf("R² = %v (fit %+v)", ff.R2, ff.Power)
	}
	if math.Abs(ff.Power.C-0.7) > 0.05 {
		t.Fatalf("exponent = %v, want ≈0.7", ff.Power.C)
	}
}

func TestFitFamilyHSLBWrapper(t *testing.T) {
	truth := Params{A: 5000, B: 0.002, C: 1.2, D: 3}
	ff, err := FitFamily(FamilyHSLB, samplesFrom(truth.Eval, selGrid, 0, 3), FitOptions{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if ff.Family != FamilyHSLB || ff.R2 < 0.999 {
		t.Fatalf("fit = %+v", ff)
	}
}

func TestFamilyFitEvalDispatch(t *testing.T) {
	ff := &FamilyFit{Family: FamilyPower, Power: PowerParams{A: 100, C: 1, D: 1}}
	if v := ff.Eval(10); math.Abs(v-11) > 1e-12 {
		t.Fatalf("power Eval = %v", v)
	}
	ff2 := &FamilyFit{Family: FamilyAmdahl, HSLB: Params{A: 100, C: 1, D: 1}}
	if v := ff2.Eval(10); math.Abs(v-11) > 1e-12 {
		t.Fatalf("amdahl Eval = %v", v)
	}
}

func TestSelectModelPrefersSimpleWhenTrue(t *testing.T) {
	// Amdahl ground truth with few, slightly noisy points: AICc must not
	// pick the 4-parameter model.
	truth := Params{A: 2000, C: 1, D: 5}
	samples := samplesFrom(truth.Eval, []float64{1, 4, 16, 64, 256}, 0.01, 4)
	fits, err := SelectModel(samples, FitOptions{Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	if fits[0].Family == FamilyHSLB {
		t.Fatalf("AICc picked the 4-parameter model over simpler ones: %v", fits[0].Family)
	}
	// All families must rank with finite-or-worse criteria in order.
	for i := 1; i < len(fits); i++ {
		if fits[i].AICc() < fits[i-1].AICc() {
			t.Fatal("SelectModel not sorted by AICc")
		}
	}
}

func TestSelectModelPicksPowerForSublinear(t *testing.T) {
	truth := PowerParams{A: 800, C: 0.55, D: 2}
	samples := samplesFrom(truth.Eval, selGrid, 0.005, 5)
	fits, err := SelectModel(samples, FitOptions{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	// The HSLB family (with its c ≥ 1 convexity constraint) cannot express
	// a/n^0.55; power must win.
	if fits[0].Family != FamilyPower {
		t.Fatalf("best family = %v, want power (AICcs: %v %v %v)",
			fits[0].Family, fits[0].AICc(), fits[1].AICc(), fits[2].AICc())
	}
}

func TestAICcPenalizesTinySamples(t *testing.T) {
	ff := &FamilyFit{Family: FamilyHSLB, SSE: 1, N: 4} // n ≤ k+1
	if !math.IsInf(ff.AICc(), 1) {
		t.Fatalf("AICc = %v, want +Inf for n ≤ k+1", ff.AICc())
	}
}

func TestFitFamilyErrors(t *testing.T) {
	if _, err := FitFamily(FamilyAmdahl, nil, FitOptions{}); err == nil {
		t.Fatal("empty samples accepted")
	}
	if _, err := FitFamily(FamilyPower, []Sample{{Nodes: 2, Time: 1}}, FitOptions{}); err == nil {
		t.Fatal("single point accepted")
	}
	if _, err := FitFamily(Family(99), samplesFrom(func(float64) float64 { return 1 }, selGrid, 0, 6), FitOptions{}); err == nil {
		t.Fatal("unknown family accepted")
	}
}

func TestFamilyStrings(t *testing.T) {
	if FamilyHSLB.String() != "hslb" || FamilyAmdahl.String() != "amdahl" ||
		FamilyPower.String() != "power" || Family(9).String() != "unknown" {
		t.Fatal("Family.String broken")
	}
	if FamilyHSLB.NumParams() != 4 || FamilyAmdahl.NumParams() != 2 || FamilyPower.NumParams() != 3 {
		t.Fatal("NumParams broken")
	}
}
