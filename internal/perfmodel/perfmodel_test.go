package perfmodel

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/model"
	"repro/internal/stats"
)

func TestEvalKnown(t *testing.T) {
	p := Params{A: 100, B: 0.01, C: 1, D: 2}
	// T(10) = 10 + 0.1 + 2 = 12.1
	if got := p.Eval(10); math.Abs(got-12.1) > 1e-12 {
		t.Fatalf("Eval(10) = %v", got)
	}
}

func TestDerivMatchesNumeric(t *testing.T) {
	ps := []Params{
		{A: 50, B: 0.02, C: 1.3, D: 1},
		{A: 1000, B: 0, C: 1, D: 5},
		{A: 0, B: 0.5, C: 2, D: 0},
	}
	for _, p := range ps {
		for _, n := range []float64{1, 3, 17, 250} {
			h := 1e-6 * n
			num := (p.Eval(n+h) - p.Eval(n-h)) / (2 * h)
			if math.Abs(p.Deriv(n)-num) > 1e-4*(1+math.Abs(num)) {
				t.Fatalf("Deriv mismatch for %v at n=%v: %v vs %v", p, n, p.Deriv(n), num)
			}
		}
	}
}

func TestConvexFlag(t *testing.T) {
	if !(Params{A: 1, B: 0, C: 0.2, D: 0}).Convex() {
		t.Fatal("b=0 should be convex")
	}
	if !(Params{A: 1, B: 1, C: 1.5, D: 0}).Convex() {
		t.Fatal("c≥1 should be convex")
	}
	if (Params{A: 1, B: 1, C: 0.5, D: 0}).Convex() {
		t.Fatal("c<1 with b>0 flagged convex")
	}
}

func TestConstraintSmoothGradient(t *testing.T) {
	p := Params{A: 120, B: 0.03, C: 1.2, D: 4}
	g := p.Constraint(0, 1)
	rng := stats.NewRNG(1)
	if d := model.CheckGradSampled(g, []float64{2, 0}, []float64{500, 100}, 100, rng); d > 1e-3 {
		t.Fatalf("analytic gradient off by %v", d)
	}
}

func TestConstraintConvexity(t *testing.T) {
	p := Params{A: 120, B: 0.03, C: 1.4, D: 4}
	g := p.Constraint(0, 1)
	rng := stats.NewRNG(2)
	if !model.CheckConvexSampled(g, []float64{1, 0}, []float64{1000, 100}, 300, 1e-7, rng) {
		t.Fatal("convex params produced non-convex constraint")
	}
}

func TestArgMin(t *testing.T) {
	p := Params{A: 100, B: 0.01, C: 1, D: 0}
	// a/n² = b → n = sqrt(100/0.01) = 100.
	if am := p.ArgMin(); math.Abs(am-100) > 1e-9 {
		t.Fatalf("ArgMin = %v, want 100", am)
	}
	if am := (Params{A: 5, B: 0, C: 1, D: 1}).ArgMin(); !math.IsInf(am, 1) {
		t.Fatalf("ArgMin without overhead = %v, want +Inf", am)
	}
}

func TestMinNodesFor(t *testing.T) {
	p := Params{A: 100, B: 0, C: 1, D: 2}
	// T(n) = 100/n + 2 ≤ 12 → n ≥ 10.
	n, ok := p.MinNodesFor(12, 1000)
	if !ok || n != 10 {
		t.Fatalf("MinNodesFor = %d, %v; want 10", n, ok)
	}
	// Unachievable target (below the serial floor).
	if _, ok := p.MinNodesFor(1.5, 1000000); ok {
		t.Fatal("achieved target below serial floor")
	}
	// Range too small.
	if _, ok := p.MinNodesFor(12, 5); ok {
		t.Fatal("achieved target beyond nMax")
	}
}

// Property: MinNodesFor returns the boundary: T(n) ≤ t and T(n-1) > t.
func TestMinNodesForBoundaryProperty(t *testing.T) {
	f := func(seed uint64) bool {
		rng := stats.NewRNG(seed)
		p := Params{A: rng.Range(10, 5000), B: rng.Range(0, 0.01), C: rng.Range(1, 2), D: rng.Range(0, 5)}
		target := p.Eval(float64(1+rng.Intn(500))) * rng.Range(0.9, 1.5)
		n, ok := p.MinNodesFor(target, 100000)
		if !ok {
			// Verify no small n would do (sample a few).
			for _, cand := range []int{1, 2, 5, 17, 99, 1234, 99999} {
				if p.Eval(float64(cand)) <= target {
					return false
				}
			}
			return true
		}
		if p.Eval(float64(n)) > target {
			return false
		}
		return n == 1 || p.Eval(float64(n-1)) > target
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestFitRecoversKnownCurve(t *testing.T) {
	truth := Params{A: 5000, B: 0.002, C: 1.2, D: 3}
	var samples []Sample
	for _, n := range []float64{8, 32, 128, 512, 2048} {
		samples = append(samples, Sample{Nodes: n, Time: truth.Eval(n)})
	}
	res, err := Fit(samples, FitOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.R2 < 0.9999 {
		t.Fatalf("R² = %v for noiseless data (params %v)", res.R2, res.Params)
	}
	// Predictions should interpolate accurately even if individual
	// parameters trade off (the paper observed exactly this: different
	// local optima, same quality).
	for _, n := range []float64{16, 64, 256, 1024} {
		want := truth.Eval(n)
		got := res.Params.Eval(n)
		if math.Abs(got-want) > 0.02*want {
			t.Fatalf("interpolation at n=%v: got %v want %v", n, got, want)
		}
	}
}

func TestFitNoisyDataR2(t *testing.T) {
	truth := Params{A: 20000, B: 0.001, C: 1.1, D: 8}
	rng := stats.NewRNG(7)
	var samples []Sample
	for _, n := range []float64{16, 64, 256, 1024, 4096} {
		// 2% multiplicative noise, as a real benchmark would show.
		samples = append(samples, Sample{Nodes: n, Time: truth.Eval(n) * rng.LogNormFactor(0.02)})
	}
	res, err := Fit(samples, FitOptions{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.R2 < 0.99 {
		t.Fatalf("R² = %v, want ≈1 (the paper: 'R² was very close to 1')", res.R2)
	}
	if !res.Params.Valid() || !res.Params.Convex() {
		t.Fatalf("fit returned invalid/non-convex params %v", res.Params)
	}
}

func TestFitPureAmdahl(t *testing.T) {
	// b = 0 curve: fit must cope with the unidentifiable exponent.
	truth := Params{A: 900, B: 0, C: 1, D: 1}
	var samples []Sample
	for _, n := range []float64{1, 4, 16, 64, 256} {
		samples = append(samples, Sample{Nodes: n, Time: truth.Eval(n)})
	}
	res, err := Fit(samples, FitOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range []float64{2, 8, 32, 128} {
		if math.Abs(res.Params.Eval(n)-truth.Eval(n)) > 0.05*truth.Eval(n) {
			t.Fatalf("b=0 fit poor at n=%v: %v vs %v", n, res.Params.Eval(n), truth.Eval(n))
		}
	}
}

func TestFitErrors(t *testing.T) {
	if _, err := Fit(nil, FitOptions{}); err == nil {
		t.Fatal("empty samples accepted")
	}
	if _, err := Fit([]Sample{{Nodes: 4, Time: 1}, {Nodes: 4, Time: 1.1}}, FitOptions{}); err == nil {
		t.Fatal("single distinct node count accepted")
	}
	if _, err := Fit([]Sample{{Nodes: 0, Time: 1}, {Nodes: 4, Time: 1}}, FitOptions{}); err == nil {
		t.Fatal("invalid node count accepted")
	}
	if _, err := Fit([]Sample{{Nodes: 2, Time: -1}, {Nodes: 4, Time: 1}}, FitOptions{}); err == nil {
		t.Fatal("negative time accepted")
	}
}

func TestFitNonConvexOption(t *testing.T) {
	// With CMin < 1 the fitter may return c < 1; Convex() must report it.
	truth := Params{A: 100, B: 2, C: 0.3, D: 0}
	var samples []Sample
	for _, n := range []float64{1, 2, 4, 8, 16, 32, 64} {
		samples = append(samples, Sample{Nodes: n, Time: truth.Eval(n)})
	}
	res, err := Fit(samples, FitOptions{CMin: 0.05, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if res.R2 < 0.999 {
		t.Fatalf("unconstrained fit R² = %v", res.R2)
	}
}

func TestSuggestSampleNodes(t *testing.T) {
	ns := SuggestSampleNodes(16, 2048, 5)
	if len(ns) != 5 {
		t.Fatalf("got %v", ns)
	}
	if ns[0] != 16 || ns[len(ns)-1] != 2048 {
		t.Fatalf("endpoints wrong: %v (paper: minimum and maximum must be sampled)", ns)
	}
	for i := 1; i < len(ns); i++ {
		if ns[i] <= ns[i-1] {
			t.Fatalf("not increasing: %v", ns)
		}
	}
	// Degenerate ranges.
	if ns := SuggestSampleNodes(8, 8, 4); len(ns) == 0 || ns[0] != 8 {
		t.Fatalf("degenerate range: %v", ns)
	}
}

// Property: fitted predictions are non-negative across the sampled range.
func TestFitNonNegativeProperty(t *testing.T) {
	f := func(seed uint64) bool {
		rng := stats.NewRNG(seed)
		truth := Params{A: rng.Range(100, 10000), B: rng.Range(0, 0.01), C: rng.Range(1, 1.8), D: rng.Range(0, 10)}
		var samples []Sample
		for _, n := range []float64{4, 16, 64, 256, 1024} {
			samples = append(samples, Sample{Nodes: n, Time: truth.Eval(n) * rng.LogNormFactor(0.03)})
		}
		res, err := Fit(samples, FitOptions{Seed: seed})
		if err != nil {
			return false
		}
		for _, n := range []float64{1, 10, 100, 1000, 10000} {
			if res.Params.Eval(n) < 0 {
				return false
			}
		}
		return res.Params.Valid()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
