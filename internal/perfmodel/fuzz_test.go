package perfmodel

import (
	"math"
	"testing"
)

// FuzzFit feeds arbitrary sample tuples to the fitter: it must either
// reject them with an error or return valid, finite parameters — never
// panic, never emit NaN curves.
func FuzzFit(f *testing.F) {
	f.Add(float64(1), 100.0, 4.0, 30.0, 16.0, 10.0)
	f.Add(float64(2), 50.0, 2.0, 50.0, 2.0, 50.0) // duplicate node counts
	f.Add(float64(0), 1.0, 4.0, -3.0, 16.0, 10.0) // invalid entries
	f.Add(math.Inf(1), 1.0, 4.0, 3.0, 16.0, 10.0)
	f.Fuzz(func(t *testing.T, n1, t1, n2, t2, n3, t3 float64) {
		samples := []Sample{{n1, t1}, {n2, t2}, {n3, t3}}
		res, err := Fit(samples, FitOptions{Starts: 3, Seed: 1})
		if err != nil {
			return // rejected: fine
		}
		if !res.Params.Valid() {
			t.Fatalf("accepted fit with invalid params %+v from %v", res.Params, samples)
		}
		for _, n := range []float64{1, 7, 100} {
			if v := res.Params.Eval(n); math.IsNaN(v) || v < 0 {
				t.Fatalf("prediction %v at n=%v from %+v", v, n, res.Params)
			}
		}
	})
}

// FuzzFitVector extends FuzzFit to sample vectors of arbitrary length,
// decoded from raw fuzz bytes: empty sets, single points, long runs of
// duplicates, and wild magnitudes must all be rejected cleanly or fitted
// to valid finite parameters.
func FuzzFitVector(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{1, 100, 4, 30, 16, 10, 64, 3})
	f.Add([]byte{255, 255, 0, 0, 7, 7, 7, 7, 7, 7, 7, 7})
	f.Fuzz(func(t *testing.T, data []byte) {
		var samples []Sample
		for i := 0; i+1 < len(data); i += 2 {
			n := float64(data[i])
			if data[i]%16 == 0 {
				n = math.Pow(2, float64(data[i])/8) // huge node counts
			}
			samples = append(samples, Sample{Nodes: n, Time: float64(int8(data[i+1]))})
		}
		res, err := Fit(samples, FitOptions{Starts: 3, Seed: 1})
		if err != nil {
			return // rejected: fine
		}
		if !res.Params.Valid() {
			t.Fatalf("accepted fit with invalid params %+v from %v", res.Params, samples)
		}
		for _, n := range []float64{1, 7, 100, 1e6} {
			if v := res.Params.Eval(n); math.IsNaN(v) || v < 0 {
				t.Fatalf("prediction %v at n=%v from %+v", v, n, res.Params)
			}
		}
	})
}

// FuzzMinNodesFor checks the inverse function against direct evaluation
// for arbitrary parameters and targets.
func FuzzMinNodesFor(f *testing.F) {
	f.Add(100.0, 0.01, 1.2, 2.0, 10.0)
	f.Add(0.0, 0.0, 1.0, 0.0, 1.0)
	f.Fuzz(func(t *testing.T, a, b, c, d, target float64) {
		if a < 0 || b < 0 || c < 1 || c > 3 || d < 0 ||
			math.IsNaN(a+b+c+d+target) || math.IsInf(a+b+c+d+target, 0) ||
			a > 1e12 || b > 1e6 || d > 1e12 {
			return
		}
		p := Params{A: a, B: b, C: c, D: d}
		n, ok := p.MinNodesFor(target, 10000)
		if !ok {
			return
		}
		if n < 1 || n > 10000 {
			t.Fatalf("n = %d out of range", n)
		}
		if p.Eval(float64(n)) > target {
			t.Fatalf("MinNodesFor returned n=%d with T=%v > target %v (params %+v)",
				n, p.Eval(float64(n)), target, p)
		}
	})
}
