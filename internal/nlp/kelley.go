package nlp

import (
	"math"

	"repro/internal/lp"
	"repro/internal/model"
)

// ConvexStatus reports the outcome of a convex NLP solve.
type ConvexStatus int

// Convex solve outcomes.
const (
	ConvexOptimal ConvexStatus = iota
	ConvexInfeasible
	ConvexUnbounded
	ConvexIterLimit
)

func (s ConvexStatus) String() string {
	switch s {
	case ConvexOptimal:
		return "optimal"
	case ConvexInfeasible:
		return "infeasible"
	case ConvexUnbounded:
		return "unbounded"
	case ConvexIterLimit:
		return "iteration limit"
	}
	return "unknown"
}

// ConvexResult is the solution of the continuous relaxation.
type ConvexResult struct {
	Status ConvexStatus
	X      []float64
	Obj    float64
	// Cuts is the number of linearization cuts generated; the caller
	// (outer approximation) reuses CutPoints to warm-start its master.
	Cuts      int
	CutPoints [][]float64
	Iters     int
	// Pivots is the total simplex pivot count across all LP resolves
	// (see lp.Solution.Pivots).
	Pivots int
}

// ConvexOptions tunes SolveConvex. Zero values select defaults.
type ConvexOptions struct {
	MaxIter int // default 400
	// Tol is the nonlinear feasibility tolerance (default 1e-7), applied
	// relative to each constraint's first-order magnitude at the candidate
	// point (model.CutScale, power-of-two factors with floor 1).
	Tol float64
	// DisableWarmStart solves every cutting-plane iteration from scratch
	// instead of dual-simplex reoptimizing from the previous basis.
	DisableWarmStart bool
	// DisableSparse pins the LP relaxation to the dense simplex kernels
	// (benchmark/ablation knob for the sparse path).
	DisableSparse bool
	// DisablePresolve skips the LP presolve reduction in front of cold
	// relaxation solves (ablation knob for the scale-equivariance
	// battery; warm solves never presolve).
	DisablePresolve bool
}

// SolveConvex minimizes the model's linear objective over its linear
// constraints, bounds, and convex nonlinear constraints, ignoring
// integrality — i.e. it solves the continuous relaxation via Kelley's
// cutting-plane method: repeatedly solve the LP relaxation, add first-order
// cuts at the solution for violated nonlinear constraints, and stop when the
// solution is nonlinear-feasible.
//
// For convex constraint functions every cut is valid, the LP objective is a
// monotone lower bound, and the method converges to the global optimum of
// the relaxation — exactly the property the paper's solver relies on.
func SolveConvex(m *model.Model, opts ConvexOptions) *ConvexResult {
	if opts.MaxIter == 0 {
		opts.MaxIter = 400
	}
	if opts.Tol == 0 {
		opts.Tol = 1e-7
	}
	p := m.LPRelaxation()
	p.DisableSparse = opts.DisableSparse
	p.DisablePresolve = opts.DisablePresolve
	res := &ConvexResult{}
	nl := m.Nonlinear()
	// Each iteration only appends cuts, so the previous optimal basis
	// stays dual-feasible and the incremental solver reoptimizes with a
	// handful of dual pivots instead of a full cold solve.
	var inc *lp.Incremental
	if !opts.DisableWarmStart {
		inc = lp.NewIncremental(p)
	}
	for iter := 0; iter < opts.MaxIter; iter++ {
		res.Iters = iter + 1
		var sol *lp.Solution
		var err error
		if inc != nil {
			sol, err = inc.Solve()
		} else {
			sol, err = p.Solve()
		}
		if sol != nil {
			res.Pivots += sol.Pivots
		}
		if err != nil {
			res.Status = ConvexInfeasible
			return res
		}
		switch sol.Status {
		case lp.Infeasible:
			res.Status = ConvexInfeasible
			return res
		case lp.Unbounded:
			// The LP relaxation is unbounded. If there are nonlinear
			// constraints they might bound the problem, but without a
			// finite point to cut at we cannot proceed; treat as
			// unbounded (our models always have bounded variables, so
			// this is defensive).
			res.Status = ConvexUnbounded
			return res
		case lp.IterLimit:
			res.Status = ConvexIterLimit
			return res
		}
		// Cut every violated constraint at this point (not only the
		// worst): fewer LP resolves in practice. "Violated" is judged
		// relative to the constraint's first-order magnitude at this point
		// (model.CutScale, floor 1); the linearization is computed anyway
		// for the cut, so the scale costs nothing extra. A value below Tol
		// is feasible at any scale and skips the gradient evaluation.
		added := false
		for k := range nl {
			v := nl[k].G.Value(sol.X)
			if v <= opts.Tol {
				continue
			}
			terms, rhs := m.LinearCutAt(k, sol.X)
			if v <= opts.Tol*model.CutScale(terms, rhs, sol.X) {
				continue
			}
			p.AddConstraint(terms, lp.LE, rhs, "oa["+nl[k].Name+"]")
			added = true
		}
		if !added {
			res.Status = ConvexOptimal
			res.X = sol.X
			res.Obj = m.EvalObjective(sol.X)
			return res
		}
		res.Cuts++
		res.CutPoints = append(res.CutPoints, append([]float64(nil), sol.X...))
	}
	res.Status = ConvexIterLimit
	return res
}

// ProjectedObjLowerBound returns a quick lower bound on the model objective
// from variable bounds alone (used by tests and sanity checks).
func ProjectedObjLowerBound(m *model.Model) float64 {
	terms, c := m.Objective()
	lb := c
	for _, t := range terms {
		v := m.Var(t.Var)
		if t.Coef >= 0 {
			lb += t.Coef * v.Lo
		} else {
			lb += t.Coef * v.Hi
		}
	}
	if math.IsNaN(lb) {
		return math.Inf(-1)
	}
	return lb
}
