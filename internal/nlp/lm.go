// Package nlp provides the two nonlinear solvers the HSLB stack needs:
//
//   - box-constrained nonlinear least squares via a projected
//     Levenberg–Marquardt method with multistart (the paper's step 2, fitting
//     the performance-model coefficients), and
//   - a convex NLP solver via Kelley's cutting-plane method layered on the
//     LP simplex (the stand-in for filterSQP in MINOTAUR's LP/NLP-based
//     branch-and-bound, used to solve continuous relaxations).
package nlp

import (
	"errors"
	"math"

	"repro/internal/lina"
	"repro/internal/par"
	"repro/internal/stats"
)

// ErrNoProgress is returned when Levenberg–Marquardt cannot reduce the sum
// of squares from the given start (e.g. the residual function returned NaN).
var ErrNoProgress = errors.New("nlp: no progress possible from start point")

// LSQProblem describes a box-constrained nonlinear least-squares problem:
// minimize ||Residuals(θ)||² subject to Lo ≤ θ ≤ Hi.
type LSQProblem struct {
	// Residuals evaluates the residual vector at θ. Its length must be
	// constant and at least len(θ).
	Residuals func(theta []float64) []float64
	// Jacobian optionally evaluates J[i][j] = ∂r_i/∂θ_j. When nil,
	// forward differences are used.
	Jacobian func(theta []float64) [][]float64
	Lo, Hi   []float64
}

// LSQOptions tunes the solver. Zero values select sensible defaults.
type LSQOptions struct {
	MaxIter   int     // default 200
	TolRel    float64 // relative SSE improvement tolerance, default 1e-12
	InitialMu float64 // initial damping, default 1e-3
	// Parallelism bounds the worker count of SolveMultistart: 0 uses one
	// worker per CPU, negative forces serial. The result is bit-identical
	// for every setting (start points are drawn before any solve runs, and
	// the best result is selected in start order), but parallel runs
	// require Residuals/Jacobian to be safe for concurrent calls.
	Parallelism int
}

// LSQResult reports a least-squares fit.
type LSQResult struct {
	Theta      []float64
	SSE        float64
	Iterations int
	Converged  bool
}

func (p *LSQProblem) project(theta []float64) {
	for i := range theta {
		if theta[i] < p.Lo[i] {
			theta[i] = p.Lo[i]
		}
		if theta[i] > p.Hi[i] {
			theta[i] = p.Hi[i]
		}
	}
}

func (p *LSQProblem) sse(theta []float64) float64 {
	r := p.Residuals(theta)
	s := 0.0
	for _, v := range r {
		s += v * v
	}
	return s
}

func (p *LSQProblem) jacobian(theta []float64, r0 []float64) [][]float64 {
	if p.Jacobian != nil {
		return p.Jacobian(theta)
	}
	n := len(theta)
	jac := make([][]float64, len(r0))
	for i := range jac {
		jac[i] = make([]float64, n)
	}
	th := append([]float64(nil), theta...)
	for j := 0; j < n; j++ {
		h := 1e-7 * (1 + math.Abs(theta[j]))
		// Step inward if the forward step leaves the box.
		if th[j]+h > p.Hi[j] {
			h = -h
		}
		orig := th[j]
		th[j] = orig + h
		r1 := p.Residuals(th)
		th[j] = orig
		for i := range r1 {
			jac[i][j] = (r1[i] - r0[i]) / h
		}
	}
	return jac
}

// Solve runs projected Levenberg–Marquardt from start (clamped to the box).
func (p *LSQProblem) Solve(start []float64, opts LSQOptions) (*LSQResult, error) {
	if opts.MaxIter == 0 {
		opts.MaxIter = 200
	}
	if opts.TolRel == 0 {
		opts.TolRel = 1e-12
	}
	if opts.InitialMu == 0 {
		opts.InitialMu = 1e-3
	}
	n := len(start)
	if len(p.Lo) != n || len(p.Hi) != n {
		return nil, errors.New("nlp: bound length mismatch")
	}
	theta := append([]float64(nil), start...)
	p.project(theta)

	// Note: fewer residuals than parameters is allowed — the
	// Levenberg–Marquardt damping keeps the normal equations positive
	// definite, and the method converges to one interpolating solution
	// (multistart explores several).
	r := p.Residuals(theta)
	if len(r) == 0 {
		return nil, errors.New("nlp: empty residual vector")
	}
	sse := 0.0
	for _, v := range r {
		sse += v * v
	}
	if math.IsNaN(sse) || math.IsInf(sse, 0) {
		return nil, ErrNoProgress
	}

	mu := opts.InitialMu
	res := &LSQResult{Theta: theta, SSE: sse}
	for iter := 0; iter < opts.MaxIter; iter++ {
		res.Iterations = iter + 1
		jac := p.jacobian(theta, r)
		// Normal equations: (JᵀJ + μ·diag(JᵀJ)) δ = -Jᵀr.
		jtj := lina.NewMatrix(n, n)
		jtr := make([]float64, n)
		for i := range jac {
			row := jac[i]
			for a := 0; a < n; a++ {
				if row[a] == 0 {
					continue
				}
				jtr[a] += row[a] * r[i]
				for b := a; b < n; b++ {
					jtj.Add(a, b, row[a]*row[b])
				}
			}
		}
		for a := 1; a < n; a++ {
			for b := 0; b < a; b++ {
				jtj.Set(a, b, jtj.At(b, a))
			}
		}
		improved := false
		for tries := 0; tries < 25; tries++ {
			aug := jtj.Clone()
			for a := 0; a < n; a++ {
				d := jtj.At(a, a)
				if d == 0 {
					d = 1
				}
				aug.Add(a, a, mu*d)
			}
			rhs := make([]float64, n)
			for a := range rhs {
				rhs[a] = -jtr[a]
			}
			l, err := lina.Cholesky(aug)
			if err != nil {
				mu *= 10
				continue
			}
			delta := lina.SolveCholesky(l, rhs)
			cand := make([]float64, n)
			for a := range cand {
				cand[a] = theta[a] + delta[a]
			}
			p.project(cand)
			candSSE := p.sse(cand)
			if !math.IsNaN(candSSE) && candSSE < sse {
				rel := (sse - candSSE) / (sse + 1e-300)
				theta, sse = cand, candSSE
				r = p.Residuals(theta)
				mu = math.Max(mu/3, 1e-12)
				improved = true
				if rel < opts.TolRel {
					res.Converged = true
				}
				break
			}
			mu *= 10
		}
		res.Theta, res.SSE = theta, sse
		if !improved {
			// Local stationarity (or boundary): call it converged when
			// the projected gradient is small.
			res.Converged = true
			break
		}
		if res.Converged {
			break
		}
	}
	return res, nil
}

// SolveMultistart runs Solve from several random starting points inside the
// box (plus the provided start when non-nil) and returns the best result.
// The paper notes that different starts reach different local optima with
// similar objective quality; multistart makes the fit robust to that.
//
// The starts are independent, so they run on the opts.Parallelism-bounded
// worker pool. All random start points are drawn from rng up front (the
// same stream a serial loop would consume, since solving never touches
// rng), and the winner is the lowest-SSE result with ties broken by start
// order — so the outcome is bit-identical to the serial loop for any
// worker count.
func (p *LSQProblem) SolveMultistart(start []float64, k int, rng *stats.RNG, opts LSQOptions) (*LSQResult, error) {
	starts := make([][]float64, 0, k+1)
	if start != nil {
		starts = append(starts, start)
	}
	n := len(p.Lo)
	for i := 0; i < k; i++ {
		s := make([]float64, n)
		for j := range s {
			lo, hi := p.Lo[j], p.Hi[j]
			if math.IsInf(hi, 1) {
				hi = math.Max(lo, 1) * 100
			}
			if math.IsInf(lo, -1) {
				lo = -hi
			}
			s[j] = rng.Range(lo, hi)
		}
		starts = append(starts, s)
	}
	results := par.Map(opts.Parallelism, len(starts), func(i int) *LSQResult {
		r, err := p.Solve(starts[i], opts)
		if err != nil {
			return nil
		}
		return r
	})
	var best *LSQResult
	for _, r := range results {
		if r == nil {
			continue
		}
		if best == nil || r.SSE < best.SSE {
			best = r
		}
	}
	if best == nil {
		return nil, ErrNoProgress
	}
	return best, nil
}
