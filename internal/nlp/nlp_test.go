package nlp

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/lp"
	"repro/internal/model"
	"repro/internal/stats"
)

// --- Levenberg–Marquardt ---

func TestLMLinearFit(t *testing.T) {
	// Fit y = θ0 + θ1·t exactly.
	ts := []float64{0, 1, 2, 3, 4}
	ys := []float64{1, 3, 5, 7, 9}
	p := &LSQProblem{
		Residuals: func(th []float64) []float64 {
			r := make([]float64, len(ts))
			for i := range ts {
				r[i] = th[0] + th[1]*ts[i] - ys[i]
			}
			return r
		},
		Lo: []float64{-100, -100},
		Hi: []float64{100, 100},
	}
	res, err := p.Solve([]float64{0, 0}, LSQOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Theta[0]-1) > 1e-6 || math.Abs(res.Theta[1]-2) > 1e-6 {
		t.Fatalf("theta = %v", res.Theta)
	}
	if res.SSE > 1e-10 {
		t.Fatalf("SSE = %v", res.SSE)
	}
}

func TestLMExponentialFit(t *testing.T) {
	// Classic nonlinear fit: y = θ0·exp(θ1·t), true θ = (2, -0.7).
	ts := make([]float64, 20)
	ys := make([]float64, 20)
	for i := range ts {
		ts[i] = float64(i) * 0.25
		ys[i] = 2 * math.Exp(-0.7*ts[i])
	}
	p := &LSQProblem{
		Residuals: func(th []float64) []float64 {
			r := make([]float64, len(ts))
			for i := range ts {
				r[i] = th[0]*math.Exp(th[1]*ts[i]) - ys[i]
			}
			return r
		},
		Lo: []float64{0, -5},
		Hi: []float64{10, 5},
	}
	res, err := p.Solve([]float64{1, 0}, LSQOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Theta[0]-2) > 1e-4 || math.Abs(res.Theta[1]+0.7) > 1e-4 {
		t.Fatalf("theta = %v (SSE=%v)", res.Theta, res.SSE)
	}
}

func TestLMRespectsBounds(t *testing.T) {
	// Unconstrained optimum θ=5 but box is [0,3]: solution must be 3.
	p := &LSQProblem{
		Residuals: func(th []float64) []float64 {
			return []float64{th[0] - 5}
		},
		Lo: []float64{0},
		Hi: []float64{3},
	}
	res, err := p.Solve([]float64{1}, LSQOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Theta[0]-3) > 1e-8 {
		t.Fatalf("theta = %v, want 3", res.Theta)
	}
}

func TestLMAnalyticJacobian(t *testing.T) {
	ts := []float64{1, 2, 4, 8}
	ys := []float64{10, 5, 2.5, 1.25}
	p := &LSQProblem{
		Residuals: func(th []float64) []float64 {
			r := make([]float64, len(ts))
			for i := range ts {
				r[i] = th[0]/ts[i] - ys[i]
			}
			return r
		},
		Jacobian: func(th []float64) [][]float64 {
			j := make([][]float64, len(ts))
			for i := range ts {
				j[i] = []float64{1 / ts[i]}
			}
			return j
		},
		Lo: []float64{0},
		Hi: []float64{100},
	}
	res, err := p.Solve([]float64{1}, LSQOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Theta[0]-10) > 1e-8 {
		t.Fatalf("theta = %v, want 10", res.Theta)
	}
}

func TestLMRosenbrockResiduals(t *testing.T) {
	// Rosenbrock as least squares: r = (10(y-x²), 1-x); optimum (1,1).
	p := &LSQProblem{
		Residuals: func(th []float64) []float64 {
			return []float64{10 * (th[1] - th[0]*th[0]), 1 - th[0]}
		},
		Lo: []float64{-5, -5},
		Hi: []float64{5, 5},
	}
	res, err := p.Solve([]float64{-1.2, 1}, LSQOptions{MaxIter: 500})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Theta[0]-1) > 1e-5 || math.Abs(res.Theta[1]-1) > 1e-5 {
		t.Fatalf("theta = %v", res.Theta)
	}
}

func TestLMUnderdetermined(t *testing.T) {
	// Fewer residuals than parameters: damping keeps the steps defined
	// and the solver reaches an interpolating solution (r → 0).
	p := &LSQProblem{
		Residuals: func(th []float64) []float64 { return []float64{th[0] + th[1] - 1} },
		Lo:        []float64{0, 0},
		Hi:        []float64{1, 1},
	}
	res, err := p.Solve([]float64{0.9, 0.9}, LSQOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.SSE > 1e-10 {
		t.Fatalf("SSE = %v, want ~0", res.SSE)
	}
	if _, err := (&LSQProblem{
		Residuals: func([]float64) []float64 { return nil },
		Lo:        []float64{0},
		Hi:        []float64{1},
	}).Solve([]float64{0.5}, LSQOptions{}); err == nil {
		t.Fatal("empty residuals accepted")
	}
}

func TestLMMultistartFindsGlobal(t *testing.T) {
	// r(θ) = sin(θ) + θ/10 over [-10, 10] squared has several local minima;
	// multistart should land near the global one (θ ≈ -7.07 where r ≈ 0...
	// actually any root of sin θ = -θ/10; the residual can reach 0).
	p := &LSQProblem{
		Residuals: func(th []float64) []float64 {
			return []float64{math.Sin(th[0]) + th[0]/10, 0}
		},
		Lo: []float64{-10},
		Hi: []float64{10},
	}
	rng := stats.NewRNG(3)
	res, err := p.SolveMultistart(nil, 20, rng, LSQOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.SSE > 1e-10 {
		t.Fatalf("multistart SSE = %v, want ~0 (theta=%v)", res.SSE, res.Theta)
	}
}

// Property: LM never increases SSE relative to the (projected) start.
func TestLMMonotoneProperty(t *testing.T) {
	f := func(seed uint64) bool {
		rng := stats.NewRNG(seed)
		a, b := rng.Range(-3, 3), rng.Range(-3, 3)
		ts := []float64{1, 2, 3, 4, 5}
		p := &LSQProblem{
			Residuals: func(th []float64) []float64 {
				r := make([]float64, len(ts))
				for i, tv := range ts {
					r[i] = th[0]*tv + th[1]*tv*tv - (a*tv + b*tv*tv + rng0(seed, i))
				}
				return r
			},
			Lo: []float64{-10, -10},
			Hi: []float64{10, 10},
		}
		start := []float64{rng.Range(-10, 10), rng.Range(-10, 10)}
		sse0 := 0.0
		proj := append([]float64(nil), start...)
		p.project(proj)
		for _, v := range p.Residuals(proj) {
			sse0 += v * v
		}
		res, err := p.Solve(start, LSQOptions{})
		if err != nil {
			return false
		}
		return res.SSE <= sse0+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// rng0 produces a small deterministic perturbation for the property test.
func rng0(seed uint64, i int) float64 {
	return float64((seed>>uint(i%32))%7) * 0.01
}

// --- Kelley convex solver ---

func circleConstraint(x, y int, r float64) model.Smooth {
	return &model.FuncSmooth{
		Over: []int{x, y},
		F: func(v []float64) float64 {
			return v[x]*v[x] + v[y]*v[y] - r*r
		},
		DF: func(v []float64) []float64 {
			return []float64{2 * v[x], 2 * v[y]}
		},
	}
}

func TestKelleyCircle(t *testing.T) {
	// min -x - y s.t. x²+y² ≤ 2, box [-10,10]² → x=y=1, obj=-2.
	m := model.New()
	x := m.AddVar(-10, 10, model.Continuous, "x")
	y := m.AddVar(-10, 10, model.Continuous, "y")
	m.SetObjective([]model.Term{{Var: x, Coef: -1}, {Var: y, Coef: -1}}, 0)
	m.AddNonlinear(circleConstraint(x, y, math.Sqrt(2)), "circle")
	res := SolveConvex(m, ConvexOptions{})
	if res.Status != ConvexOptimal {
		t.Fatalf("status = %v", res.Status)
	}
	if math.Abs(res.X[x]-1) > 1e-3 || math.Abs(res.X[y]-1) > 1e-3 {
		t.Fatalf("x = %v", res.X)
	}
	if math.Abs(res.Obj+2) > 1e-3 {
		t.Fatalf("obj = %v", res.Obj)
	}
}

func TestKelleyLinearOnly(t *testing.T) {
	m := model.New()
	x := m.AddVar(0, 4, model.Continuous, "x")
	m.SetObjective([]model.Term{{Var: x, Coef: -1}}, 0)
	m.AddLinear([]model.Term{{Var: x, Coef: 1}}, lp.LE, 3, "")
	res := SolveConvex(m, ConvexOptions{})
	if res.Status != ConvexOptimal || math.Abs(res.X[x]-3) > 1e-9 {
		t.Fatalf("res = %+v", res)
	}
	if res.Cuts != 0 {
		t.Fatalf("cuts = %d on a linear problem", res.Cuts)
	}
}

func TestKelleyInfeasible(t *testing.T) {
	m := model.New()
	x := m.AddVar(0, 1, model.Continuous, "x")
	m.SetObjective([]model.Term{{Var: x, Coef: 1}}, 0)
	m.AddLinear([]model.Term{{Var: x, Coef: 1}}, lp.GE, 2, "")
	res := SolveConvex(m, ConvexOptions{})
	if res.Status != ConvexInfeasible {
		t.Fatalf("status = %v, want infeasible", res.Status)
	}
}

func TestKelleyNonlinearInfeasible(t *testing.T) {
	// x² ≤ -1 is infeasible; cuts should drive the LP infeasible.
	m := model.New()
	x := m.AddVar(-5, 5, model.Continuous, "x")
	m.SetObjective([]model.Term{{Var: x, Coef: 1}}, 0)
	m.AddNonlinear(&model.FuncSmooth{
		Over: []int{x},
		F:    func(v []float64) float64 { return v[x]*v[x] + 1 },
		DF:   func(v []float64) []float64 { return []float64{2 * v[x]} },
	}, "")
	res := SolveConvex(m, ConvexOptions{MaxIter: 200})
	if res.Status != ConvexInfeasible {
		t.Fatalf("status = %v, want infeasible", res.Status)
	}
}

func TestKelleyMinMaxStructure(t *testing.T) {
	// The paper's min-max form: min T s.t. T ≥ fᵢ(nᵢ), Σnᵢ ≤ N with
	// fᵢ(n) = wᵢ/n. With w = (4, 1) and N = 3 both constraints bind at the
	// optimum: 4/n₁ = 1/n₂ and n₁+n₂ = 3 → n = (2.4, 0.6), T = 5/3.
	m := model.New()
	tv := m.AddVar(0, 1e9, model.Continuous, "T")
	n1 := m.AddVar(0.1, 10, model.Continuous, "n1")
	n2 := m.AddVar(0.1, 10, model.Continuous, "n2")
	m.SetObjective([]model.Term{{Var: tv, Coef: 1}}, 0)
	mk := func(n int, w float64) model.Smooth {
		return &model.FuncSmooth{
			Over: []int{n, tv},
			F:    func(v []float64) float64 { return w/v[n] - v[tv] },
			DF:   func(v []float64) []float64 { return []float64{-w / (v[n] * v[n]), -1} },
		}
	}
	m.AddNonlinear(mk(n1, 4), "f1")
	m.AddNonlinear(mk(n2, 1), "f2")
	m.AddLinear([]model.Term{{Var: n1, Coef: 1}, {Var: n2, Coef: 1}}, lp.LE, 3, "cap")
	res := SolveConvex(m, ConvexOptions{})
	if res.Status != ConvexOptimal {
		t.Fatalf("status = %v", res.Status)
	}
	if math.Abs(res.X[n1]-2.4) > 1e-2 || math.Abs(res.X[n2]-0.6) > 1e-2 {
		t.Fatalf("allocation = (%v, %v), want (2.4, 0.6)", res.X[n1], res.X[n2])
	}
	if math.Abs(res.Obj-5.0/3) > 1e-3 {
		t.Fatalf("obj = %v, want 5/3", res.Obj)
	}
}

// Property: the Kelley solution is always feasible and its objective is a
// valid bound sandwich: LP lower bound ≤ obj.
func TestKelleyFeasibleProperty(t *testing.T) {
	f := func(seed uint64) bool {
		rng := stats.NewRNG(seed)
		m := model.New()
		tv := m.AddVar(0, 1e9, model.Continuous, "T")
		n := 2 + rng.Intn(4)
		total := 5 + rng.Range(0, 20)
		terms := make([]model.Term, 0, n)
		for i := 0; i < n; i++ {
			v := m.AddVar(0.05, 100, model.Continuous, "n")
			w := rng.Range(0.5, 20)
			m.AddNonlinear(&model.FuncSmooth{
				Over: []int{v, tv},
				F:    func(x []float64) float64 { return w/x[v] - x[tv] },
				DF:   func(x []float64) []float64 { return []float64{-w / (x[v] * x[v]), -1} },
			}, "")
			terms = append(terms, model.Term{Var: v, Coef: 1})
		}
		m.AddLinear(terms, lp.LE, total, "cap")
		m.SetObjective([]model.Term{{Var: tv, Coef: 1}}, 0)
		res := SolveConvex(m, ConvexOptions{})
		if res.Status != ConvexOptimal {
			return false
		}
		if m.LinViolation(res.X) > 1e-5 || m.NonlinViolation(res.X) > 1e-5 {
			return false
		}
		return res.Obj >= ProjectedObjLowerBound(m)-1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
