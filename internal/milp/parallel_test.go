package milp

import (
	"math"
	"testing"

	"repro/internal/lp"
	"repro/internal/stats"
)

// randomInstance builds a small bounded random MILP: box-bounded variables
// (most integer), a handful of random rows, and occasionally an SOS1 set
// over fresh binaries. Degenerate corners — infeasible rows, empty integer
// sets, dominated SOS members — are all fair game: the property under test
// is only that parallel and serial solves agree exactly.
func randomInstance(rng *stats.RNG) (*lp.Problem, []int, []SOS1) {
	p := lp.NewProblem()
	nv := 2 + rng.Intn(5)
	var ints []int
	for i := 0; i < nv; i++ {
		ub := float64(1 + rng.Intn(10))
		v := p.AddVariable(0, ub, rng.Range(-10, 10), "")
		if rng.Float64() < 0.7 {
			ints = append(ints, v)
		}
	}
	nc := 1 + rng.Intn(4)
	for c := 0; c < nc; c++ {
		var terms []lp.Term
		for v := 0; v < nv; v++ {
			if rng.Float64() < 0.6 {
				terms = append(terms, lp.Term{Var: v, Coef: rng.Range(-5, 5)})
			}
		}
		if len(terms) == 0 {
			continue
		}
		sense := lp.LE
		switch {
		case rng.Float64() < 0.2:
			sense = lp.GE
		case rng.Float64() < 0.1:
			sense = lp.EQ
		}
		p.AddConstraint(terms, sense, rng.Range(-5, 20), "")
	}
	var sos []SOS1
	if rng.Float64() < 0.3 {
		k := 3 + rng.Intn(3)
		vars := make([]int, k)
		weights := make([]float64, k)
		terms := make([]lp.Term, k)
		for i := range vars {
			vars[i] = p.AddVariable(0, 1, rng.Range(-5, 0), "")
			weights[i] = float64(i + 1)
			terms[i] = lp.Term{Var: vars[i], Coef: 1}
		}
		p.AddConstraint(terms, lp.LE, 1, "")
		ints = append(ints, vars...)
		sos = append(sos, SOS1{Vars: vars, Weights: weights})
	}
	return p, ints, sos
}

// sameResult requires bit-identical results: the determinism contract of
// Options.Parallelism promises exact equality, not tolerance-level equality.
func sameResult(t *testing.T, seed int, serial, parallel *Result) {
	t.Helper()
	if serial.Status != parallel.Status {
		t.Fatalf("seed %d: status %v (serial) vs %v (parallel)", seed, serial.Status, parallel.Status)
	}
	if math.Float64bits(serial.Obj) != math.Float64bits(parallel.Obj) {
		t.Fatalf("seed %d: obj %v (serial) vs %v (parallel)", seed, serial.Obj, parallel.Obj)
	}
	if math.Float64bits(serial.BestBound) != math.Float64bits(parallel.BestBound) {
		t.Fatalf("seed %d: bound %v (serial) vs %v (parallel)", seed, serial.BestBound, parallel.BestBound)
	}
	if serial.Nodes != parallel.Nodes || serial.LPSolves != parallel.LPSolves || serial.Cuts != parallel.Cuts {
		t.Fatalf("seed %d: stats (%d,%d,%d) (serial) vs (%d,%d,%d) (parallel)", seed,
			serial.Nodes, serial.LPSolves, serial.Cuts,
			parallel.Nodes, parallel.LPSolves, parallel.Cuts)
	}
	if len(serial.X) != len(parallel.X) {
		t.Fatalf("seed %d: len(X) %d (serial) vs %d (parallel)", seed, len(serial.X), len(parallel.X))
	}
	for i := range serial.X {
		if math.Float64bits(serial.X[i]) != math.Float64bits(parallel.X[i]) {
			t.Fatalf("seed %d: X[%d] = %v (serial) vs %v (parallel)", seed, i, serial.X[i], parallel.X[i])
		}
	}
}

// TestParallelMatchesSerialProperty drives the determinism contract over a
// large population of random instances: for every seed the speculative
// parallel solve must reproduce the serial Result bit for bit, and every
// node LP solution must carry a valid KKT certificate.
func TestParallelMatchesSerialProperty(t *testing.T) {
	instances := 1000
	if testing.Short() {
		instances = 120
	}
	for seed := 0; seed < instances; seed++ {
		rng := stats.NewRNG(uint64(seed) + 1)
		p, ints, sos := randomInstance(rng)
		kkt := func(p *lp.Problem, sol *lp.Solution) {
			if sol.Status != lp.Optimal {
				return
			}
			if err := lp.VerifyKKT(p, sol, 1e-6); err != nil {
				t.Fatalf("seed %d: node LP certificate: %v", seed, err)
			}
		}
		// Warm starts force serial LP solves, so disable them here to
		// keep the speculative prefetch path under test.
		opts := Options{MaxNodes: 20000, DebugLPCheck: kkt, DisableWarmStart: true}
		optsSerial := opts
		optsSerial.Parallelism = -1
		serial := Solve(p.Clone(), ints, sos, optsSerial)
		for _, workers := range []int{2, 4} {
			optsPar := opts
			optsPar.Parallelism = workers
			sameResult(t, seed, serial, Solve(p.Clone(), ints, sos, optsPar))
		}
	}
}
