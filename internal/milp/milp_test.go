package milp

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/lp"
	"repro/internal/stats"
)

func TestKnapsack(t *testing.T) {
	// max 10a + 13b + 7c s.t. 3a + 4b + 2c ≤ 6, binaries.
	// Best: a + c (val 17, wt 5)? b + c = 20, wt 6 ✓ → optimum 20.
	p := lp.NewProblem()
	a := p.AddVariable(0, 1, -10, "a")
	b := p.AddVariable(0, 1, -13, "b")
	c := p.AddVariable(0, 1, -7, "c")
	p.AddConstraint([]lp.Term{{Var: a, Coef: 3}, {Var: b, Coef: 4}, {Var: c, Coef: 2}}, lp.LE, 6, "cap")
	res := Solve(p, []int{a, b, c}, nil, Options{})
	if res.Status != Optimal {
		t.Fatalf("status = %v", res.Status)
	}
	if math.Abs(res.Obj+20) > 1e-6 {
		t.Fatalf("obj = %v, want -20 (x=%v)", res.Obj, res.X)
	}
	if math.Abs(res.X[b]-1) > 1e-6 || math.Abs(res.X[c]-1) > 1e-6 || math.Abs(res.X[a]) > 1e-6 {
		t.Fatalf("x = %v", res.X)
	}
}

func TestIntegerRounding(t *testing.T) {
	// min -x s.t. 2x ≤ 7, x integer in [0, 10] → x = 3 (LP gives 3.5).
	p := lp.NewProblem()
	x := p.AddVariable(0, 10, -1, "x")
	p.AddConstraint([]lp.Term{{Var: x, Coef: 2}}, lp.LE, 7, "")
	res := Solve(p, []int{x}, nil, Options{})
	if res.Status != Optimal || math.Abs(res.X[x]-3) > 1e-6 {
		t.Fatalf("res = %+v", res)
	}
}

func TestMixedIntegerContinuous(t *testing.T) {
	// min -y - 0.1x, y integer. x ≤ 3.7 continuous, y ≤ x (so y ≤ 3).
	p := lp.NewProblem()
	x := p.AddVariable(0, 3.7, -0.1, "x")
	y := p.AddVariable(0, 10, -1, "y")
	p.AddConstraint([]lp.Term{{Var: y, Coef: 1}, {Var: x, Coef: -1}}, lp.LE, 0, "")
	res := Solve(p, []int{y}, nil, Options{})
	if res.Status != Optimal {
		t.Fatalf("status = %v", res.Status)
	}
	if math.Abs(res.X[y]-3) > 1e-6 || math.Abs(res.X[x]-3.7) > 1e-6 {
		t.Fatalf("x = %v", res.X)
	}
}

func TestInfeasibleMILP(t *testing.T) {
	// 2x = 3 with x integer is infeasible.
	p := lp.NewProblem()
	x := p.AddVariable(0, 10, 1, "x")
	p.AddConstraint([]lp.Term{{Var: x, Coef: 2}}, lp.EQ, 3, "")
	res := Solve(p, []int{x}, nil, Options{})
	if res.Status != Infeasible {
		t.Fatalf("status = %v, want infeasible", res.Status)
	}
}

func TestUnboundedMILP(t *testing.T) {
	p := lp.NewProblem()
	p.AddVariable(0, lp.Inf, -1, "x")
	res := Solve(p, []int{}, nil, Options{})
	if res.Status != Unbounded {
		t.Fatalf("status = %v, want unbounded", res.Status)
	}
}

func TestPureLPPassThrough(t *testing.T) {
	p := lp.NewProblem()
	x := p.AddVariable(0, 5, -1, "x")
	res := Solve(p, nil, nil, Options{})
	if res.Status != Optimal || math.Abs(res.X[x]-5) > 1e-9 {
		t.Fatalf("res = %+v", res)
	}
	if res.Nodes != 1 {
		t.Fatalf("nodes = %d, want 1", res.Nodes)
	}
}

func TestSOS1Branching(t *testing.T) {
	// Choose exactly one of 5 allocation levels (Σz=1) to maximize value
	// with a capacity constraint that excludes the largest.
	p := lp.NewProblem()
	levels := []float64{1, 2, 4, 8, 16}
	values := []float64{1, 3, 6, 10, 100}
	var zs []int
	terms := make([]lp.Term, 0, 5)
	capTerms := make([]lp.Term, 0, 5)
	for i := range levels {
		z := p.AddVariable(0, 1, -values[i], "")
		zs = append(zs, z)
		terms = append(terms, lp.Term{Var: z, Coef: 1})
		capTerms = append(capTerms, lp.Term{Var: z, Coef: levels[i]})
	}
	p.AddConstraint(terms, lp.EQ, 1, "one")
	p.AddConstraint(capTerms, lp.LE, 10, "cap")
	sos := []SOS1{{Vars: zs, Weights: levels}}

	res := Solve(p, zs, sos, Options{})
	if res.Status != Optimal {
		t.Fatalf("status = %v", res.Status)
	}
	// Level 16 violates the capacity; best admissible is level 8 (value 10).
	if math.Abs(res.Obj+10) > 1e-6 {
		t.Fatalf("obj = %v, want -10", res.Obj)
	}
	if math.Abs(res.X[zs[3]]-1) > 1e-6 {
		t.Fatalf("x = %v", res.X)
	}
}

func TestSOSVsBinaryBranchingAgree(t *testing.T) {
	// Same optimum with and without SOS branching; typically fewer nodes
	// with SOS on sets with many members.
	rng := stats.NewRNG(17)
	for trial := 0; trial < 10; trial++ {
		nLevels := 20 + rng.Intn(30)
		p := lp.NewProblem()
		var zs []int
		one := make([]lp.Term, 0, nLevels)
		cap := make([]lp.Term, 0, nLevels)
		weights := make([]float64, nLevels)
		for i := 0; i < nLevels; i++ {
			weights[i] = float64(i + 1)
			z := p.AddVariable(0, 1, -rng.Range(0, 50), "")
			zs = append(zs, z)
			one = append(one, lp.Term{Var: z, Coef: 1})
			cap = append(cap, lp.Term{Var: z, Coef: weights[i]})
		}
		p.AddConstraint(one, lp.EQ, 1, "")
		p.AddConstraint(cap, lp.LE, float64(nLevels)*0.6, "")
		sos := []SOS1{{Vars: zs, Weights: weights}}

		withSOS := Solve(p, zs, sos, Options{})
		without := Solve(p, zs, sos, Options{DisableSOSBranching: true})
		if withSOS.Status != Optimal || without.Status != Optimal {
			t.Fatalf("status: %v / %v", withSOS.Status, without.Status)
		}
		if math.Abs(withSOS.Obj-without.Obj) > 1e-6 {
			t.Fatalf("objectives differ: %v vs %v", withSOS.Obj, without.Obj)
		}
	}
}

func TestLazyCuts(t *testing.T) {
	// min -x - y, integers in [0,10], lazy enforces x + y ≤ 7.
	p := lp.NewProblem()
	x := p.AddVariable(0, 10, -1, "x")
	y := p.AddVariable(0, 10, -1, "y")
	calls := 0
	lazy := func(v []float64) []LazyCut {
		calls++
		if v[x]+v[y] > 7+1e-6 {
			return []LazyCut{{
				Terms: []lp.Term{{Var: x, Coef: 1}, {Var: y, Coef: 1}},
				Sense: lp.LE, RHS: 7,
			}}
		}
		return nil
	}
	res := Solve(p, []int{x, y}, nil, Options{Lazy: lazy})
	if res.Status != Optimal {
		t.Fatalf("status = %v", res.Status)
	}
	if math.Abs(res.Obj+7) > 1e-6 {
		t.Fatalf("obj = %v, want -7", res.Obj)
	}
	if calls == 0 || res.Cuts == 0 {
		t.Fatalf("lazy callback unused (calls=%d cuts=%d)", calls, res.Cuts)
	}
}

func TestNodeLimit(t *testing.T) {
	// An awkward equality forces branching; a node limit of 1 must stop.
	p := lp.NewProblem()
	var ints []int
	terms := make([]lp.Term, 0, 10)
	for i := 0; i < 10; i++ {
		v := p.AddVariable(0, 1, -float64(i%3+1), "")
		ints = append(ints, v)
		terms = append(terms, lp.Term{Var: v, Coef: float64(2*i + 1)})
	}
	p.AddConstraint(terms, lp.LE, 31.5, "")
	res := Solve(p, ints, nil, Options{MaxNodes: 1})
	if res.Status != NodeLimit && res.Status != Optimal {
		t.Fatalf("status = %v", res.Status)
	}
}

// bruteForceMILP enumerates all integer assignments (all variables integer,
// small boxes) and returns the best objective.
func bruteForceMILP(p *lp.Problem, ints []int, sos []SOS1) (float64, bool) {
	n := p.NumVariables()
	x := make([]float64, n)
	best, found := math.Inf(1), false
	var rec func(k int)
	rec = func(k int) {
		if k == n {
			for _, s := range sos {
				nz := 0
				for _, v := range s.Vars {
					if x[v] != 0 {
						nz++
					}
				}
				if nz > 1 {
					return
				}
			}
			if p.MaxViolation(x) < 1e-7 {
				if o := p.Objective(x); o < best {
					best, found = o, true
				}
			}
			return
		}
		lo, hi := p.Bounds(k)
		for v := math.Ceil(lo); v <= hi+1e-9; v++ {
			x[k] = v
			rec(k + 1)
		}
	}
	rec(0)
	return best, found
}

// Property: branch-and-bound matches exhaustive enumeration on random small
// all-integer problems.
func TestAgainstBruteForceProperty(t *testing.T) {
	f := func(seed uint64) bool {
		rng := stats.NewRNG(seed)
		n := 2 + rng.Intn(4)
		p := lp.NewProblem()
		ints := make([]int, n)
		for j := 0; j < n; j++ {
			ints[j] = p.AddVariable(0, float64(1+rng.Intn(4)), rng.Range(-5, 5), "")
		}
		// Random feasible-by-zero constraints (rhs ≥ 0 for LE keeps x=0
		// feasible, so the instance always has an optimum).
		mrows := 1 + rng.Intn(3)
		for i := 0; i < mrows; i++ {
			terms := make([]lp.Term, n)
			for j := 0; j < n; j++ {
				terms[j] = lp.Term{Var: j, Coef: rng.Range(-2, 4)}
			}
			p.AddConstraint(terms, lp.LE, rng.Range(0, 8), "")
		}
		res := Solve(p, ints, nil, Options{})
		if res.Status != Optimal {
			return false
		}
		want, ok := bruteForceMILP(p, ints, nil)
		if !ok {
			return false
		}
		return math.Abs(res.Obj-want) < 1e-6*(1+math.Abs(want))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

// Property: with SOS1 sets, brute force still agrees.
func TestSOSAgainstBruteForceProperty(t *testing.T) {
	f := func(seed uint64) bool {
		rng := stats.NewRNG(seed)
		k := 3 + rng.Intn(4)
		p := lp.NewProblem()
		zs := make([]int, k)
		one := make([]lp.Term, k)
		wts := make([]float64, k)
		for i := 0; i < k; i++ {
			zs[i] = p.AddVariable(0, 1, rng.Range(-10, 2), "")
			one[i] = lp.Term{Var: zs[i], Coef: 1}
			wts[i] = float64(i + 1)
		}
		p.AddConstraint(one, lp.EQ, 1, "")
		// A random knapsack row over the set.
		row := make([]lp.Term, k)
		for i := 0; i < k; i++ {
			row[i] = lp.Term{Var: zs[i], Coef: rng.Range(0, 5)}
		}
		p.AddConstraint(row, lp.LE, rng.Range(1, 6), "")
		sos := []SOS1{{Vars: zs, Weights: wts}}
		res := Solve(p, zs, sos, Options{})
		want, ok := bruteForceMILP(p, zs, sos)
		if !ok {
			// Every member may violate the knapsack row; then the MILP
			// must agree it is infeasible.
			return res.Status == Infeasible
		}
		if res.Status != Optimal {
			return false
		}
		return math.Abs(res.Obj-want) < 1e-6*(1+math.Abs(want))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

func TestBoundReporting(t *testing.T) {
	p := lp.NewProblem()
	x := p.AddVariable(0, 10, -1, "x")
	p.AddConstraint([]lp.Term{{Var: x, Coef: 2}}, lp.LE, 7, "")
	res := Solve(p, []int{x}, nil, Options{})
	if res.Status != Optimal {
		t.Fatalf("status = %v", res.Status)
	}
	if res.BestBound != res.Obj {
		t.Fatalf("best bound %v != obj %v at optimality", res.BestBound, res.Obj)
	}
}
