package milp

import (
	"testing"
	"time"

	"repro/internal/lp"
	"repro/internal/stats"
)

// hardInstance builds an equality-knapsack MILP that forces substantial
// branching.
func hardInstance(n int, seed uint64) (*lp.Problem, []int) {
	rng := stats.NewRNG(seed)
	p := lp.NewProblem()
	ints := make([]int, n)
	terms := make([]lp.Term, n)
	for j := 0; j < n; j++ {
		ints[j] = p.AddVariable(0, 1, -rng.Range(1, 10), "")
		terms[j] = lp.Term{Var: ints[j], Coef: float64(2*j + 3)}
	}
	p.AddConstraint(terms, lp.LE, float64(n*n)/2.5, "")
	return p, ints
}

func TestTimeLimitStopsSearch(t *testing.T) {
	p, ints := hardInstance(40, 1)
	res := Solve(p, ints, nil, Options{TimeLimit: time.Microsecond})
	if res.Status != NodeLimit && res.Status != Optimal {
		t.Fatalf("status = %v", res.Status)
	}
	// A microsecond cannot finish a 40-variable knapsack that requires
	// any branching at all; expect the limit to have fired (unless the LP
	// relaxation happened to be integral).
	if res.Status == NodeLimit && res.Nodes > 5 {
		t.Fatalf("time limit fired late: %d nodes", res.Nodes)
	}
}

func TestTimeLimitZeroMeansUnlimited(t *testing.T) {
	p, ints := hardInstance(12, 2)
	res := Solve(p, ints, nil, Options{})
	if res.Status != Optimal {
		t.Fatalf("status = %v", res.Status)
	}
}

func TestNodeLimitReportsBound(t *testing.T) {
	p, ints := hardInstance(40, 3)
	res := Solve(p, ints, nil, Options{MaxNodes: 3})
	if res.Status == Optimal {
		return // solved at the root; nothing to check
	}
	if res.Status != NodeLimit {
		t.Fatalf("status = %v", res.Status)
	}
	// The reported bound must be a valid lower bound: continue the solve
	// to optimality and compare.
	full := Solve(p, ints, nil, Options{})
	if full.Status != Optimal {
		t.Fatalf("full solve status = %v", full.Status)
	}
	if res.BestBound > full.Obj+1e-6 {
		t.Fatalf("limit-time bound %v exceeds true optimum %v", res.BestBound, full.Obj)
	}
}

func TestGapTolEarlyStop(t *testing.T) {
	p, ints := hardInstance(24, 4)
	tight := Solve(p, ints, nil, Options{})
	loose := Solve(p, ints, nil, Options{GapTol: 0.2})
	if tight.Status != Optimal || loose.Status != Optimal {
		t.Fatalf("status: %v / %v", tight.Status, loose.Status)
	}
	// The loose solve's answer is within 20% of optimal and never better.
	if loose.Obj < tight.Obj-1e-9 {
		t.Fatalf("loose gap found a better objective: %v < %v", loose.Obj, tight.Obj)
	}
	if loose.Obj > tight.Obj+0.2*(1+absF(tight.Obj)) {
		t.Fatalf("loose solve exceeded its gap: %v vs %v", loose.Obj, tight.Obj)
	}
	if loose.Nodes > tight.Nodes {
		t.Fatalf("loose gap explored more nodes (%d > %d)", loose.Nodes, tight.Nodes)
	}
}

func absF(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}
