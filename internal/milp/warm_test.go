package milp

import (
	"math"
	"testing"

	"repro/internal/lp"
	"repro/internal/stats"
)

// TestWarmMatchesColdProperty fuzzes random MILPs and checks that the
// default warm-started tree and a cold-solved tree agree on the answer.
// Tree statistics are allowed to differ (warm and cold solves can land on
// different vertices of the same optimal face, which changes branching),
// but status and objective must match, and every warm node LP must carry a
// valid KKT certificate.
func TestWarmMatchesColdProperty(t *testing.T) {
	n := 1000
	if testing.Short() {
		n = 120
	}
	for seed := 0; seed < n; seed++ {
		rng := stats.NewRNG(uint64(9000 + seed))
		p, ints, sos := randomInstance(rng)

		kkt := func(p *lp.Problem, sol *lp.Solution) {
			if sol.Status != lp.Optimal {
				return
			}
			if err := lp.VerifyKKT(p, sol, 1e-6); err != nil {
				t.Fatalf("seed %d: warm node LP certificate: %v", seed, err)
			}
		}
		warm := Solve(p.Clone(), ints, sos, Options{MaxNodes: 20000, DebugLPCheck: kkt})
		cold := Solve(p.Clone(), ints, sos, Options{MaxNodes: 20000, DisableWarmStart: true})

		if warm.Status != cold.Status {
			t.Fatalf("seed %d: status %v (warm) vs %v (cold)", seed, warm.Status, cold.Status)
		}
		if warm.Status != Optimal {
			continue
		}
		if diff := math.Abs(warm.Obj - cold.Obj); diff > 1e-9*(1+math.Abs(cold.Obj)) {
			t.Fatalf("seed %d: obj %v (warm) vs %v (cold)", seed, warm.Obj, cold.Obj)
		}
	}
}

// TestIterLimitNodeNotPruned is the regression test for the bug where a
// node LP ending in lp.IterLimit was pruned exactly like lp.Infeasible,
// silently discarding a subtree that may hold the optimum. An iteration
// budget that truncates every node must yield a bounded, explicitly inexact
// verdict — never a claim of infeasibility.
func TestIterLimitNodeNotPruned(t *testing.T) {
	build := func() (*lp.Problem, []int) {
		p := lp.NewProblem()
		var ints []int
		for i := 0; i < 3; i++ {
			ints = append(ints, p.AddVariable(0, 1, -1, ""))
		}
		p.AddConstraint([]lp.Term{{Var: 0, Coef: 1}, {Var: 1, Coef: 1}, {Var: 2, Coef: 1}}, lp.LE, 2, "")
		p.MaxIter = 1 // truncate every node LP
		return p, ints
	}
	for _, cold := range []bool{false, true} {
		p, ints := build()
		res := Solve(p, ints, nil, Options{DisableWarmStart: cold})
		if res.Status == Infeasible {
			t.Fatalf("cold=%v: IterLimit nodes reported as Infeasible (the model is feasible)", cold)
		}
		if res.Status != NodeLimit {
			t.Fatalf("cold=%v: want NodeLimit for a fully truncated search, got %v", cold, res.Status)
		}
		if !res.Inexact {
			t.Fatalf("cold=%v: truncated search not flagged Inexact", cold)
		}
	}

	// Sanity: the same model solves to optimality with a real budget.
	p, ints := build()
	p.MaxIter = 0
	res := Solve(p, ints, nil, Options{})
	if res.Status != Optimal || res.Inexact {
		t.Fatalf("control solve: status %v inexact %v", res.Status, res.Inexact)
	}
	if math.Abs(res.Obj-(-2)) > 1e-9 {
		t.Fatalf("control solve: obj %v, want -2", res.Obj)
	}
}

// TestWarmPivotSavings checks the headline perf claim at the milp level:
// warm-started trees spend several times fewer simplex pivots than cold
// trees on the same instances.
func TestWarmPivotSavings(t *testing.T) {
	var warmPivots, coldPivots int
	for seed := 0; seed < 8; seed++ {
		rng := stats.NewRNG(uint64(777 + seed))
		// Assignment-structured instance shaped like the paper's
		// allocation problems: each task picks exactly one config, two
		// capacity rows couple the tasks. The LP has one row per task, so
		// a cold node solve pays O(tasks) pivots while the warm repair of
		// a single branched bound stays O(1) — the regime the basis-reuse
		// layer targets.
		p := lp.NewProblem()
		tasks, configs := 12, 4
		var ints []int
		x := make([][]int, tasks)
		for ti := 0; ti < tasks; ti++ {
			x[ti] = make([]int, configs)
			for k := 0; k < configs; k++ {
				x[ti][k] = p.AddVariable(0, 1, 1+10*rng.Float64(), "")
				ints = append(ints, x[ti][k])
			}
			terms := make([]lp.Term, configs)
			for k := 0; k < configs; k++ {
				terms[k] = lp.Term{Var: x[ti][k], Coef: 1}
			}
			p.AddConstraint(terms, lp.EQ, 1, "")
		}
		for c := 0; c < 2; c++ {
			var terms []lp.Term
			for ti := 0; ti < tasks; ti++ {
				for k := 0; k < configs; k++ {
					terms = append(terms, lp.Term{Var: x[ti][k], Coef: 1 + 5*rng.Float64()})
				}
			}
			p.AddConstraint(terms, lp.LE, 3.0*float64(tasks), "")
		}
		warm := Solve(p.Clone(), ints, nil, Options{MaxNodes: 20000})
		cold := Solve(p.Clone(), ints, nil, Options{MaxNodes: 20000, DisableWarmStart: true})
		if warm.Status != Optimal || cold.Status != Optimal {
			t.Fatalf("seed %d: status %v (warm) / %v (cold)", seed, warm.Status, cold.Status)
		}
		if diff := math.Abs(warm.Obj - cold.Obj); diff > 1e-9*(1+math.Abs(cold.Obj)) {
			t.Fatalf("seed %d: obj %v (warm) vs %v (cold)", seed, warm.Obj, cold.Obj)
		}
		warmPivots += warm.Pivots
		coldPivots += cold.Pivots
	}
	if warmPivots*3 > coldPivots {
		t.Fatalf("warm trees used %d pivots vs %d cold — expected at least 3x savings",
			warmPivots, coldPivots)
	}
	t.Logf("pivots: warm %d vs cold %d (%.1fx)", warmPivots, coldPivots,
		float64(coldPivots)/float64(warmPivots))
}
