package milp

import (
	"context"
	"testing"

	"repro/internal/lp"
)

func TestCancelBeforeSolve(t *testing.T) {
	p, ints := hardInstance(20, 5)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res := SolveContext(ctx, p, ints, nil, Options{})
	if res.Status != NodeLimit {
		t.Fatalf("status = %v, want NodeLimit", res.Status)
	}
	if res.Nodes != 0 {
		t.Fatalf("explored %d nodes under a pre-cancelled context", res.Nodes)
	}
}

func TestCancelMidSolve(t *testing.T) {
	p, ints := hardInstance(40, 6)
	ctx, cancel := context.WithCancel(context.Background())
	lps := 0
	res := SolveContext(ctx, p, ints, nil, Options{
		DebugLPCheck: func(*lp.Problem, *lp.Solution) {
			lps++
			if lps == 3 {
				cancel()
			}
		},
	})
	if res.Status == Optimal {
		t.Skip("instance solved before the cancellation point")
	}
	if res.Status != NodeLimit {
		t.Fatalf("status = %v, want NodeLimit", res.Status)
	}
	// The reported bound must stay a valid lower bound on the optimum
	// even though cancellation interrupted a node mid-processing.
	full := Solve(p, ints, nil, Options{})
	if full.Status != Optimal {
		t.Fatalf("full solve status = %v", full.Status)
	}
	if res.BestBound > full.Obj+1e-6 {
		t.Fatalf("cancelled-solve bound %v exceeds true optimum %v", res.BestBound, full.Obj)
	}
}

func TestCancelNilContextEquivalent(t *testing.T) {
	// SolveContext with a background context must match Solve bit for bit.
	p, ints := hardInstance(16, 7)
	a := Solve(p, ints, nil, Options{})
	b := SolveContext(context.Background(), p, ints, nil, Options{})
	if a.Status != b.Status || a.Obj != b.Obj || a.Nodes != b.Nodes || a.LPSolves != b.LPSolves {
		t.Fatalf("context solve diverged: %+v vs %+v", a, b)
	}
}
