// Package milp implements an LP-based branch-and-bound solver for
// mixed-integer linear programs, with two features the paper's solver
// depends on:
//
//   - special-ordered-set (SOS1) branching: the paper reports that branching
//     on the special ordered set modelling the discrete atmosphere/ocean
//     allocation choices — rather than on its individual binary variables —
//     made the MINLP solver about two orders of magnitude faster;
//   - lazy constraint callbacks: integer-feasible LP solutions are offered
//     to a callback that may reject them by returning violated cuts, which
//     become part of every subsequent node. This is the single-tree
//     LP/NLP-based branch-and-bound of Quesada and Grossmann that MINOTAUR
//     implements; package minlp supplies the outer-approximation callback.
//
// Node selection is best-bound, branching is most-fractional (or SOS).
package milp

import (
	"container/heap"
	"math"
	"time"

	"repro/internal/lp"
)

// Status reports the outcome of a MILP solve.
type Status int

// Solve outcomes.
const (
	Optimal Status = iota
	Infeasible
	Unbounded
	NodeLimit
)

func (s Status) String() string {
	switch s {
	case Optimal:
		return "optimal"
	case Infeasible:
		return "infeasible"
	case Unbounded:
		return "unbounded"
	case NodeLimit:
		return "node limit"
	}
	return "unknown"
}

// SOS1 declares that at most one of Vars may be nonzero. Weights must be
// strictly increasing and are used to pick the branching split point.
type SOS1 struct {
	Vars    []int
	Weights []float64
}

// LazyCut is a linear cut returned by a callback; it must be valid for every
// feasible point of the true problem (globally valid), because it is added
// to all nodes.
type LazyCut struct {
	Terms []lp.Term
	Sense lp.Sense
	RHS   float64
	Name  string
}

// Lazy inspects a candidate integer-feasible point and returns violated
// global cuts; returning none accepts the point as feasible.
type Lazy func(x []float64) []LazyCut

// Options tunes the solver. Zero values select defaults.
type Options struct {
	IntTol   float64 // integrality tolerance, default 1e-6
	GapTol   float64 // relative optimality gap, default 1e-9
	MaxNodes int     // default 200000
	// TimeLimit stops the search after the given wall-clock budget
	// (status NodeLimit, best incumbent kept); 0 means unlimited.
	TimeLimit time.Duration
	// DisableSOSBranching makes the solver ignore SOS declarations for
	// branching (their feasibility must then be implied by integer
	// structure, as with Σz=1 over binaries). This is the ablation knob
	// for the paper's two-orders-of-magnitude claim.
	DisableSOSBranching bool
	// CutAtFractional also runs the lazy callback at fractional node
	// solutions, tightening the relaxation earlier at the cost of more
	// callback work.
	CutAtFractional bool
	Lazy            Lazy
	// DebugLPCheck, when non-nil, is invoked after every node LP solve
	// (testing hook: e.g. lp.VerifyKKT certificates).
	DebugLPCheck func(p *lp.Problem, sol *lp.Solution)
}

// Result is the outcome of a solve.
type Result struct {
	Status    Status
	X         []float64
	Obj       float64
	BestBound float64
	Nodes     int
	LPSolves  int
	Cuts      int
}

type nodeState struct {
	lo, hi []float64
	bound  float64
	depth  int
	seq    int // tiebreak for deterministic order
}

type nodeQueue []*nodeState

func (q nodeQueue) Len() int { return len(q) }
func (q nodeQueue) Less(i, j int) bool {
	if q[i].bound != q[j].bound {
		return q[i].bound < q[j].bound
	}
	return q[i].seq < q[j].seq
}
func (q nodeQueue) Swap(i, j int)       { q[i], q[j] = q[j], q[i] }
func (q *nodeQueue) Push(x interface{}) { *q = append(*q, x.(*nodeState)) }
func (q *nodeQueue) Pop() interface{} {
	old := *q
	n := len(old)
	it := old[n-1]
	*q = old[:n-1]
	return it
}

type solver struct {
	base *lp.Problem
	ints []int
	sos  []SOS1
	opts Options

	cuts  []LazyCut
	queue nodeQueue
	seq   int

	incumbent []float64
	incObj    float64
	unbounded bool
	res       *Result
}

// Solve minimizes the LP base subject to integrality of ints, the SOS1
// declarations, and any lazy cuts produced by opts.Lazy.
func Solve(base *lp.Problem, ints []int, sos []SOS1, opts Options) *Result {
	if opts.IntTol == 0 {
		opts.IntTol = 1e-6
	}
	if opts.GapTol == 0 {
		opts.GapTol = 1e-9
	}
	if opts.MaxNodes == 0 {
		opts.MaxNodes = 200000
	}
	s := &solver{base: base, ints: ints, sos: sos, opts: opts,
		incObj: math.Inf(1), res: &Result{BestBound: math.Inf(-1)}}

	n := base.NumVariables()
	root := &nodeState{lo: make([]float64, n), hi: make([]float64, n), bound: math.Inf(-1)}
	for j := 0; j < n; j++ {
		root.lo[j], root.hi[j] = base.Bounds(j)
	}
	// Tighten integer bounds to integers up front.
	for _, j := range ints {
		root.lo[j] = math.Ceil(root.lo[j] - 1e-9)
		root.hi[j] = math.Floor(root.hi[j] + 1e-9)
	}
	heap.Init(&s.queue)
	heap.Push(&s.queue, root)

	start := time.Now()
	for s.queue.Len() > 0 {
		if s.res.Nodes >= s.opts.MaxNodes ||
			(s.opts.TimeLimit > 0 && time.Since(start) > s.opts.TimeLimit) {
			s.finish(NodeLimit)
			return s.res
		}
		node := heap.Pop(&s.queue).(*nodeState)
		if node.bound >= s.incObj-s.pruneEps() {
			continue // dominated by incumbent
		}
		s.res.Nodes++
		s.processNode(node)
		if s.unbounded {
			s.res.Status = Unbounded
			return s.res
		}
	}
	if s.incumbent == nil {
		s.res.Status = Infeasible
		s.res.BestBound = math.Inf(1)
		return s.res
	}
	s.finish(Optimal)
	s.res.BestBound = s.res.Obj
	return s.res
}

func (s *solver) pruneEps() float64 {
	return s.opts.GapTol * (1 + math.Abs(s.incObj))
}

func (s *solver) finish(st Status) {
	s.res.Status = st
	if s.incumbent != nil {
		s.res.X = s.incumbent
		s.res.Obj = s.incObj
	} else if st == Optimal {
		s.res.Status = Infeasible
	}
	// Best bound over remaining nodes (for gap reporting on limits).
	bb := math.Inf(1)
	if s.incumbent != nil {
		bb = s.incObj
	}
	for _, nd := range s.queue {
		if nd.bound < bb {
			bb = nd.bound
		}
	}
	if s.res.Status == NodeLimit {
		s.res.BestBound = bb
	}
}

// buildLP assembles the node's LP: base + global cuts + node bounds.
func (s *solver) buildLP(node *nodeState) *lp.Problem {
	p := s.base.Clone()
	for j := 0; j < p.NumVariables(); j++ {
		p.SetBounds(j, node.lo[j], node.hi[j])
	}
	for i := range s.cuts {
		c := &s.cuts[i]
		p.AddConstraint(c.Terms, c.Sense, c.RHS, c.Name)
	}
	return p
}

func (s *solver) processNode(node *nodeState) {
	// Cut loop: re-solve the same node while the lazy callback keeps
	// rejecting its solution.
	for pass := 0; pass < 200; pass++ {
		p := s.buildLP(node)
		sol, err := p.Solve()
		s.res.LPSolves++
		if s.opts.DebugLPCheck != nil && err == nil {
			s.opts.DebugLPCheck(p, sol)
		}
		if err != nil || sol.Status == lp.Infeasible || sol.Status == lp.IterLimit {
			return // prune
		}
		if sol.Status == lp.Unbounded {
			// An unbounded node relaxation means the MILP is unbounded
			// or its recession cone needs cuts we cannot derive here;
			// report unbounded (our models always bound variables).
			s.unbounded = true
			return
		}
		node.bound = sol.Obj
		if sol.Obj >= s.incObj-s.pruneEps() {
			return // bound prune
		}

		fracVar := s.mostFractional(sol.X)
		violSOS := s.violatedSOS(sol.X)

		if fracVar < 0 && violSOS < 0 {
			// Integer and SOS feasible: offer to the lazy callback.
			if s.opts.Lazy != nil {
				if cuts := s.opts.Lazy(sol.X); len(cuts) > 0 {
					s.cuts = append(s.cuts, cuts...)
					s.res.Cuts += len(cuts)
					continue // re-solve this node with the new cuts
				}
			}
			s.incumbent = append([]float64(nil), sol.X...)
			s.incObj = sol.Obj
			return
		}

		if s.opts.CutAtFractional && s.opts.Lazy != nil {
			if cuts := s.opts.Lazy(sol.X); len(cuts) > 0 {
				s.cuts = append(s.cuts, cuts...)
				s.res.Cuts += len(cuts)
				continue
			}
		}

		// Branch. Prefer SOS sets (unless ablated), matching the paper.
		if violSOS >= 0 && !s.opts.DisableSOSBranching {
			s.branchSOS(node, violSOS, sol.X)
		} else if fracVar >= 0 {
			s.branchVar(node, fracVar, sol.X[fracVar])
		} else {
			// Only SOS violated but SOS branching disabled: fall back to
			// branching on the largest member variable if it is integer;
			// otherwise accept (the model must carry Σz=1 structure).
			s.branchSOS(node, violSOS, sol.X)
		}
		return
	}
}

// mostFractional returns the integer variable furthest from integrality at
// x, or -1 when all are integral within tolerance.
func (s *solver) mostFractional(x []float64) int {
	best, bestDist := -1, s.opts.IntTol
	for _, j := range s.ints {
		f := x[j] - math.Floor(x[j])
		d := math.Min(f, 1-f)
		if d > bestDist {
			best, bestDist = j, d
		}
	}
	return best
}

// violatedSOS returns the index of an SOS1 set with more than one nonzero
// member at x, or -1.
func (s *solver) violatedSOS(x []float64) int {
	for k := range s.sos {
		nz := 0
		for _, v := range s.sos[k].Vars {
			if math.Abs(x[v]) > s.opts.IntTol {
				nz++
			}
		}
		if nz > 1 {
			return k
		}
	}
	return -1
}

// branchVar creates the floor/ceil children for integer variable j.
func (s *solver) branchVar(parent *nodeState, j int, v float64) {
	left := cloneNode(parent)
	left.hi[j] = math.Floor(v)
	right := cloneNode(parent)
	right.lo[j] = math.Ceil(v)
	s.pushChild(left)
	s.pushChild(right)
}

// branchSOS splits the set at the weighted average of the fractional
// solution: the left child zeroes the members above the split, the right
// child zeroes those at or below it. Every SOS1-feasible point lies in one
// of the children, so the division is exhaustive.
func (s *solver) branchSOS(parent *nodeState, k int, x []float64) {
	set := s.sos[k]
	// Weighted barycenter of the current (violating) solution.
	num, den := 0.0, 0.0
	for i, v := range set.Vars {
		val := math.Abs(x[v])
		num += set.Weights[i] * val
		den += val
	}
	split := set.Weights[(len(set.Weights)-1)/2]
	if den > 0 {
		split = num / den
	}
	// Ensure the split separates at least one member on each side.
	if split <= set.Weights[0] {
		split = set.Weights[0]
	}
	if split >= set.Weights[len(set.Weights)-1] {
		split = set.Weights[len(set.Weights)-2]
	}
	left := cloneNode(parent)
	right := cloneNode(parent)
	branched := false
	for i, v := range set.Vars {
		if set.Weights[i] > split {
			left.lo[v], left.hi[v] = 0, 0
			branched = true
		} else {
			right.lo[v], right.hi[v] = 0, 0
		}
	}
	if !branched {
		// Degenerate split; zero the last member on the left instead.
		v := set.Vars[len(set.Vars)-1]
		left.lo[v], left.hi[v] = 0, 0
	}
	s.pushChild(left)
	s.pushChild(right)
}

func (s *solver) pushChild(n *nodeState) {
	// Reject children with empty boxes early.
	for j := range n.lo {
		if n.lo[j] > n.hi[j] {
			return
		}
	}
	s.seq++
	n.seq = s.seq
	heap.Push(&s.queue, n)
}

func cloneNode(n *nodeState) *nodeState {
	return &nodeState{
		lo:    append([]float64(nil), n.lo...),
		hi:    append([]float64(nil), n.hi...),
		bound: n.bound,
		depth: n.depth + 1,
	}
}
