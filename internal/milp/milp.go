// Package milp implements an LP-based branch-and-bound solver for
// mixed-integer linear programs, with two features the paper's solver
// depends on:
//
//   - special-ordered-set (SOS1) branching: the paper reports that branching
//     on the special ordered set modelling the discrete atmosphere/ocean
//     allocation choices — rather than on its individual binary variables —
//     made the MINLP solver about two orders of magnitude faster;
//   - lazy constraint callbacks: integer-feasible LP solutions are offered
//     to a callback that may reject them by returning violated cuts, which
//     become part of every subsequent node. This is the single-tree
//     LP/NLP-based branch-and-bound of Quesada and Grossmann that MINOTAUR
//     implements; package minlp supplies the outer-approximation callback.
//
// Node selection is best-bound, branching is most-fractional (or SOS).
package milp

import (
	"container/heap"
	"context"
	"math"
	"sort"
	"sync"
	"time"

	"repro/internal/lp"
	"repro/internal/par"
)

// Status reports the outcome of a MILP solve.
type Status int

// Solve outcomes.
const (
	Optimal Status = iota
	Infeasible
	Unbounded
	NodeLimit
)

func (s Status) String() string {
	switch s {
	case Optimal:
		return "optimal"
	case Infeasible:
		return "infeasible"
	case Unbounded:
		return "unbounded"
	case NodeLimit:
		return "node limit"
	}
	return "unknown"
}

// SOS1 declares that at most one of Vars may be nonzero. Weights must be
// strictly increasing and are used to pick the branching split point.
type SOS1 struct {
	Vars    []int
	Weights []float64
}

// LazyCut is a linear cut returned by a callback; it must be valid for every
// feasible point of the true problem (globally valid), because it is added
// to all nodes.
type LazyCut struct {
	Terms []lp.Term
	Sense lp.Sense
	RHS   float64
	Name  string
}

// Lazy inspects a candidate integer-feasible point and returns violated
// global cuts; returning none accepts the point as feasible.
type Lazy func(x []float64) []LazyCut

// Options tunes the solver. Zero values select defaults.
type Options struct {
	// IntTol is the integrality tolerance (default 1e-6). Deliberately
	// dimensionless/absolute: integer variables are count-valued (node
	// allocations, binaries), so their unit is fixed at 1 and never
	// rescales with the problem data. The same reasoning covers the
	// ±1e-9 Ceil/Floor snaps applied to integer bounds at node setup.
	IntTol   float64
	GapTol   float64 // relative optimality gap, default 1e-9
	MaxNodes int     // default 200000
	// TimeLimit stops the search after the given wall-clock budget
	// (status NodeLimit, best incumbent kept); 0 means unlimited.
	TimeLimit time.Duration
	// DisableSOSBranching makes the solver ignore SOS declarations for
	// branching (their feasibility must then be implied by integer
	// structure, as with Σz=1 over binaries). This is the ablation knob
	// for the paper's two-orders-of-magnitude claim.
	DisableSOSBranching bool
	// CutAtFractional also runs the lazy callback at fractional node
	// solutions, tightening the relaxation earlier at the cost of more
	// callback work.
	CutAtFractional bool
	Lazy            Lazy
	// DebugLPCheck, when non-nil, is invoked after every node LP solve
	// (testing hook: e.g. lp.VerifyKKT certificates). It always runs on
	// the solver's own goroutine, in node-processing order, even when
	// Parallelism delegates the LP solve itself to a worker.
	DebugLPCheck func(p *lp.Problem, sol *lp.Solution)
	// Parallelism bounds the speculative LP worker pool: while the serial
	// authority processes one node, up to Workers(Parallelism) workers
	// pre-solve the LP relaxations of the best nodes still in the queue.
	// The authority consumes a speculative solution only when it was
	// computed against the exact cut pool the node would see serially, so
	// the search — optimum, tree statistics, every Result field — is
	// bit-identical to a serial run. 0 uses one worker per CPU; values
	// that resolve to a single worker select the plain serial path.
	// Speculation only applies when DisableWarmStart is set: the warm
	// path reoptimizes each node from its parent basis on the authority
	// goroutine, which is both faster and inherently sequential.
	Parallelism int
	// DisableWarmStart turns off dual-simplex warm starting of node LPs
	// from the parent basis and reverts to cold two-phase solves (plus
	// speculative prefetch when Parallelism allows). Warm starting is the
	// default; this is the ablation/benchmark knob.
	DisableWarmStart bool
	// DisableSparse pins every node LP to the dense simplex kernels
	// (lp.Problem.DisableSparse on the base problem, inherited by all
	// node clones). Benchmark/ablation knob for the sparse path.
	DisableSparse bool
	// DisablePresolve skips the LP presolve reduction in front of cold
	// node solves (lp.Problem.DisablePresolve on the base problem,
	// inherited by all node clones). Ablation knob for the
	// scale-equivariance battery.
	DisablePresolve bool
}

// Result is the outcome of a solve.
type Result struct {
	Status    Status
	X         []float64
	Obj       float64
	BestBound float64
	Nodes     int
	LPSolves  int
	Cuts      int
	// Pivots is the total number of simplex basis changes across all node
	// LP solves — the hardware-independent measure of LP work that the
	// warm-start benchmarks compare.
	Pivots int
	// WarmSolves / ColdSolves split the node LP solves by how the basis
	// cache fared: WarmSolves were resolved by dual-simplex reoptimization
	// of the cached parent basis, ColdSolves needed a full two-phase
	// rebuild (every solve is cold when DisableWarmStart is set). See
	// lp.Incremental.Stats.
	WarmSolves int
	ColdSolves int
	// Inexact reports that at least one node LP hit its iteration limit
	// and was dropped from the search rather than pruned as infeasible.
	// The reported bound (and, when Status is Optimal-like, the incumbent)
	// may therefore be weaker than the true optimum; Status is NodeLimit
	// whenever the dropped subtrees could still matter.
	Inexact bool
}

type nodeState struct {
	lo, hi []float64
	bound  float64
	depth  int
	seq    int // tiebreak for deterministic order
	// basis is the parent's optimal LP basis, inherited at branching and
	// used to warm-start this node's first solve.
	basis *lp.Basis
}

type nodeQueue []*nodeState

func (q nodeQueue) Len() int { return len(q) }
func (q nodeQueue) Less(i, j int) bool {
	if q[i].bound != q[j].bound {
		return q[i].bound < q[j].bound
	}
	return q[i].seq < q[j].seq
}
func (q nodeQueue) Swap(i, j int)       { q[i], q[j] = q[j], q[i] }
func (q *nodeQueue) Push(x interface{}) { *q = append(*q, x.(*nodeState)) }
func (q *nodeQueue) Pop() interface{} {
	old := *q
	n := len(old)
	it := old[n-1]
	*q = old[:n-1]
	return it
}

type solver struct {
	ctx  context.Context
	base *lp.Problem
	ints []int
	sos  []SOS1
	opts Options

	cuts  []LazyCut
	queue nodeQueue
	seq   int

	incumbent []float64
	incObj    float64
	unbounded bool
	res       *Result

	spec *speculator // nil when running serially or warm-starting

	// Warm-start state: one persistent incremental LP shared by every
	// node, reconfigured per node by bound updates and cut appends.
	inc         *lp.Incremental // nil when DisableWarmStart
	cutsApplied int             // prefix of s.cuts already absorbed by inc

	// inexactBound tracks the weakest bound among nodes dropped on
	// lp.IterLimit; the final BestBound may not exceed it.
	inexactBound float64
}

// specResult is one pre-solved node LP relaxation.
type specResult struct {
	p   *lp.Problem
	sol *lp.Solution
	err error
}

// specEntry tracks one in-flight or finished speculative solve. The worker
// fills res and closes done; the authority reads res only after <-done.
type specEntry struct {
	version int // len(s.cuts) when the solve was launched
	done    chan struct{}
	res     specResult
}

// speculator is the bounded worker pool that pre-solves node LPs while the
// serial authority is busy with the current node. All of its bookkeeping
// (the entries map) is owned by the authority goroutine; workers communicate
// only through their own specEntry.
type speculator struct {
	tasks   chan func()
	wg      sync.WaitGroup
	entries map[*nodeState]*specEntry
}

func newSpeculator(workers int) *speculator {
	sp := &speculator{
		tasks:   make(chan func(), 2*workers),
		entries: make(map[*nodeState]*specEntry),
	}
	sp.wg.Add(workers)
	for i := 0; i < workers; i++ {
		go func() {
			defer sp.wg.Done()
			for f := range sp.tasks {
				f()
			}
		}()
	}
	return sp
}

func (sp *speculator) close() {
	close(sp.tasks)
	sp.wg.Wait()
}

// speculate launches pre-solves for the most promising nodes still queued.
// Launching is best-effort: a full task queue or an up-to-date entry simply
// skips the node. Never blocks the authority.
func (s *solver) speculate() {
	sp := s.spec
	if sp == nil || s.queue.Len() == 0 {
		return
	}
	version := len(s.cuts)
	cuts := s.cuts[:version] // immutable snapshot: elements below version never change
	for _, node := range s.bestQueued(cap(sp.tasks)) {
		if e, ok := sp.entries[node]; ok && e.version == version {
			continue // already speculated against the current cut pool
		}
		e := &specEntry{version: version, done: make(chan struct{})}
		node := node
		task := func() {
			defer close(e.done)
			p := buildNodeLP(s.base, node, cuts)
			sol, err := p.Solve()
			e.res = specResult{p: p, sol: sol, err: err}
		}
		select {
		case sp.tasks <- task:
			sp.entries[node] = e
		default:
			return // workers saturated; stop launching this round
		}
	}
}

// bestQueued returns up to k queued nodes in the exact order the authority
// would pop them ((bound, seq) ascending), skipping nodes the incumbent
// already dominates.
func (s *solver) bestQueued(k int) []*nodeState {
	best := make([]*nodeState, 0, k)
	for _, nd := range s.queue {
		if nd.bound >= s.incObj-s.pruneEps() {
			continue
		}
		if len(best) == k && !less(nd, best[k-1]) {
			continue
		}
		pos := sort.Search(len(best), func(i int) bool { return less(nd, best[i]) })
		if len(best) < k {
			best = append(best, nil)
		}
		copy(best[pos+1:], best[pos:len(best)-1])
		best[pos] = nd
	}
	return best
}

func less(a, b *nodeState) bool {
	if a.bound != b.bound {
		return a.bound < b.bound
	}
	return a.seq < b.seq
}

// nodeLP returns the node's LP relaxation and its solution, consuming a
// speculative result when one exists for the current cut pool and solving
// inline otherwise. Both paths produce bit-identical output: the worker
// built the same problem (same base, same node bounds, same cut prefix)
// and lp.Solve is deterministic.
func (s *solver) nodeLP(node *nodeState) (*lp.Problem, *lp.Solution, error) {
	if s.inc != nil {
		return s.warmLP(node)
	}
	if s.spec != nil {
		if e, ok := s.spec.entries[node]; ok {
			delete(s.spec.entries, node)
			if e.version == len(s.cuts) {
				<-e.done
				return e.res.p, e.res.sol, e.res.err
			}
			// Stale: the cut pool grew since launch. Fall through and
			// solve inline; the worker's result is dropped on arrival.
		}
	}
	p := s.buildLP(node)
	sol, err := p.Solve()
	return p, sol, err
}

// warmLP reconfigures the shared incremental LP for the node — bound
// updates plus any cuts appended since the last node — and reoptimizes with
// the dual simplex from the parent basis (or the previous node's live basis
// when the parent snapshot is stale or absent). Correctness does not depend
// on the basis: incompatible snapshots are ignored and numerical failures
// fall back to a cold solve inside the lp layer.
func (s *solver) warmLP(node *nodeState) (*lp.Problem, *lp.Solution, error) {
	for j := range node.lo {
		s.inc.TightenBound(j, node.lo[j], node.hi[j])
	}
	for i := s.cutsApplied; i < len(s.cuts); i++ {
		c := &s.cuts[i]
		s.inc.AddRow(c.Terms, c.Sense, c.RHS, c.Name)
	}
	s.cutsApplied = len(s.cuts)
	sol, err := s.inc.SolveFrom(node.basis)
	return s.inc.Problem(), sol, err
}

// buildNodeLP assembles base + node bounds + the given cut prefix. It only
// reads shared state (base is cloned, cuts is an immutable prefix), so it is
// safe to run on a worker while the authority continues.
func buildNodeLP(base *lp.Problem, node *nodeState, cuts []LazyCut) *lp.Problem {
	p := base.Clone()
	for j := 0; j < p.NumVariables(); j++ {
		p.SetBounds(j, node.lo[j], node.hi[j])
	}
	for i := range cuts {
		c := &cuts[i]
		p.AddConstraint(c.Terms, c.Sense, c.RHS, c.Name)
	}
	return p
}

// Solve minimizes the LP base subject to integrality of ints, the SOS1
// declarations, and any lazy cuts produced by opts.Lazy.
func Solve(base *lp.Problem, ints []int, sos []SOS1, opts Options) *Result {
	return SolveContext(context.Background(), base, ints, sos, opts)
}

// SolveContext is Solve with cooperative cancellation: the search checks ctx
// between nodes and between cut-loop passes, and on cancellation (or ctx
// deadline expiry) stops exactly as a TimeLimit would — status NodeLimit,
// best incumbent and remaining best bound reported. A never-cancelled ctx
// yields a search bit-identical to Solve.
func SolveContext(ctx context.Context, base *lp.Problem, ints []int, sos []SOS1, opts Options) *Result {
	if opts.IntTol == 0 {
		opts.IntTol = 1e-6
	}
	if opts.GapTol == 0 {
		opts.GapTol = 1e-9
	}
	if opts.MaxNodes == 0 {
		opts.MaxNodes = 200000
	}
	if (opts.DisableSparse && !base.DisableSparse) ||
		(opts.DisablePresolve && !base.DisablePresolve) {
		base = base.Clone() // node LPs clone base, so the flags propagate
		base.DisableSparse = base.DisableSparse || opts.DisableSparse
		base.DisablePresolve = base.DisablePresolve || opts.DisablePresolve
	}
	s := &solver{ctx: ctx, base: base, ints: ints, sos: sos, opts: opts,
		incObj: math.Inf(1), inexactBound: math.Inf(1),
		res: &Result{BestBound: math.Inf(-1)}}
	// Fill the basis-cache counters on every exit path; with warm starts
	// disabled every LP solve is by definition cold.
	defer func() {
		if s.inc != nil {
			s.res.WarmSolves, s.res.ColdSolves = s.inc.Stats()
		} else {
			s.res.ColdSolves = s.res.LPSolves
		}
	}()
	if opts.DisableWarmStart {
		// Speculative prefetch only pays off for cold node solves; the
		// warm path reoptimizes sequentially from the parent basis.
		if w := par.Workers(opts.Parallelism); w > 1 {
			s.spec = newSpeculator(w)
			defer s.spec.close()
		}
	}

	n := base.NumVariables()
	root := &nodeState{lo: make([]float64, n), hi: make([]float64, n), bound: math.Inf(-1)}
	for j := 0; j < n; j++ {
		root.lo[j], root.hi[j] = base.Bounds(j)
	}
	// Tighten integer bounds to integers up front.
	for _, j := range ints {
		root.lo[j] = math.Ceil(root.lo[j] - 1e-9)
		root.hi[j] = math.Floor(root.hi[j] + 1e-9)
	}
	if !opts.DisableWarmStart {
		// The incremental LP starts from the root box (base clone, so it
		// inherits MaxIter); each node reconfigures it in place.
		s.inc = lp.NewIncremental(buildNodeLP(base, root, nil))
	}
	heap.Init(&s.queue)
	heap.Push(&s.queue, root)

	start := time.Now()
	for s.queue.Len() > 0 {
		if s.res.Nodes >= s.opts.MaxNodes || s.ctx.Err() != nil ||
			(s.opts.TimeLimit > 0 && time.Since(start) > s.opts.TimeLimit) {
			s.finish(NodeLimit)
			return s.res
		}
		node := heap.Pop(&s.queue).(*nodeState)
		if s.spec != nil && node.bound >= s.incObj-s.pruneEps() {
			delete(s.spec.entries, node) // any speculative work is moot
		}
		if node.bound >= s.incObj-s.pruneEps() {
			continue // dominated by incumbent
		}
		s.res.Nodes++
		s.speculate()
		s.processNode(node)
		if s.unbounded {
			s.res.Status = Unbounded
			return s.res
		}
	}
	if s.incumbent == nil {
		if s.res.Inexact {
			// Subtrees were dropped on iteration limits; claiming
			// Infeasible could be wrong. Report the bounded outcome.
			s.finish(NodeLimit)
			return s.res
		}
		s.res.Status = Infeasible
		s.res.BestBound = math.Inf(1)
		return s.res
	}
	if s.res.Inexact && s.inexactBound < s.incObj-s.pruneEps() {
		// A dropped subtree could still contain a better incumbent than
		// the one we hold: optimality is unproven.
		s.finish(NodeLimit)
		return s.res
	}
	s.finish(Optimal)
	s.res.BestBound = s.res.Obj
	return s.res
}

// pruneEps is the bound-vs-incumbent slack below which a node is fathomed:
// GapTol relative to the incumbent objective, which is the one value that is
// guaranteed to carry the problem's objective scale (box bounds do not —
// they routinely hold big-M values orders of magnitude above any attainable
// objective). The unit floor covers the no-incumbent and near-zero cases;
// for the HSLB stack it is exact, because the core layer's power-of-two
// time normalization delivers O(1) objectives here.
func (s *solver) pruneEps() float64 {
	return s.opts.GapTol * (1 + math.Abs(s.incObj))
}

func (s *solver) finish(st Status) {
	s.res.Status = st
	if s.incumbent != nil {
		s.res.X = s.incumbent
		s.res.Obj = s.incObj
	} else if st == Optimal {
		s.res.Status = Infeasible
	}
	// Best bound over remaining nodes (for gap reporting on limits).
	bb := math.Inf(1)
	if s.incumbent != nil {
		bb = s.incObj
	}
	for _, nd := range s.queue {
		if nd.bound < bb {
			bb = nd.bound
		}
	}
	if bb > s.inexactBound {
		bb = s.inexactBound
	}
	if s.res.Status == NodeLimit {
		s.res.BestBound = bb
	}
}

// buildLP assembles the node's LP: base + global cuts + node bounds.
func (s *solver) buildLP(node *nodeState) *lp.Problem {
	p := s.base.Clone()
	for j := 0; j < p.NumVariables(); j++ {
		p.SetBounds(j, node.lo[j], node.hi[j])
	}
	for i := range s.cuts {
		c := &s.cuts[i]
		p.AddConstraint(c.Terms, c.Sense, c.RHS, c.Name)
	}
	return p
}

func (s *solver) processNode(node *nodeState) {
	// Cut loop: re-solve the same node while the lazy callback keeps
	// rejecting its solution.
	for pass := 0; pass < 200; pass++ {
		if s.ctx.Err() != nil {
			// Re-queue the node so finish() still counts its bound when
			// the main loop stops next iteration with status NodeLimit;
			// dropping it could overstate BestBound.
			heap.Push(&s.queue, node)
			return
		}
		p, sol, err := s.nodeLP(node)
		s.res.LPSolves++
		if err == nil {
			s.res.Pivots += sol.Pivots
		}
		if s.opts.DebugLPCheck != nil && err == nil {
			s.opts.DebugLPCheck(p, sol)
		}
		if err != nil || sol.Status == lp.Infeasible {
			return // prune
		}
		if sol.Status == lp.IterLimit {
			// The LP could not be finished within its iteration budget.
			// Unlike infeasibility this proves nothing about the subtree:
			// pruning here could silently discard the optimum. Drop the
			// node but record that the search is now inexact, capped by
			// this node's last known bound.
			s.res.Inexact = true
			if node.bound < s.inexactBound {
				s.inexactBound = node.bound
			}
			return
		}
		if sol.Status == lp.Unbounded {
			// An unbounded node relaxation means the MILP is unbounded
			// or its recession cone needs cuts we cannot derive here;
			// report unbounded (our models always bound variables).
			s.unbounded = true
			return
		}
		node.bound = sol.Obj
		// Remember the optimal basis: children inherit it (cloneNode) as
		// their warm-start seed, and cut-loop re-solves of this node reuse
		// it directly.
		node.basis = sol.Basis
		if sol.Obj >= s.incObj-s.pruneEps() {
			return // bound prune
		}

		fracVar := s.mostFractional(sol.X)
		violSOS := s.violatedSOS(sol.X)

		if fracVar < 0 && violSOS < 0 {
			// Integer and SOS feasible: offer to the lazy callback.
			if s.opts.Lazy != nil {
				if cuts := s.opts.Lazy(sol.X); len(cuts) > 0 {
					s.cuts = append(s.cuts, cuts...)
					s.res.Cuts += len(cuts)
					continue // re-solve this node with the new cuts
				}
			}
			s.incumbent = append([]float64(nil), sol.X...)
			s.incObj = sol.Obj
			return
		}

		if s.opts.CutAtFractional && s.opts.Lazy != nil {
			if cuts := s.opts.Lazy(sol.X); len(cuts) > 0 {
				s.cuts = append(s.cuts, cuts...)
				s.res.Cuts += len(cuts)
				continue
			}
		}

		// Branch. Prefer SOS sets (unless ablated), matching the paper.
		if violSOS >= 0 && !s.opts.DisableSOSBranching {
			s.branchSOS(node, violSOS, sol.X)
		} else if fracVar >= 0 {
			s.branchVar(node, fracVar, sol.X[fracVar])
		} else {
			// Only SOS violated but SOS branching disabled: fall back to
			// branching on the largest member variable if it is integer;
			// otherwise accept (the model must carry Σz=1 structure).
			s.branchSOS(node, violSOS, sol.X)
		}
		return
	}
}

// mostFractional returns the integer variable furthest from integrality at
// x, or -1 when all are integral within tolerance.
func (s *solver) mostFractional(x []float64) int {
	best, bestDist := -1, s.opts.IntTol
	for _, j := range s.ints {
		f := x[j] - math.Floor(x[j])
		d := math.Min(f, 1-f)
		if d > bestDist {
			best, bestDist = j, d
		}
	}
	return best
}

// violatedSOS returns the index of an SOS1 set with more than one nonzero
// member at x, or -1.
func (s *solver) violatedSOS(x []float64) int {
	for k := range s.sos {
		nz := 0
		for _, v := range s.sos[k].Vars {
			if math.Abs(x[v]) > s.opts.IntTol {
				nz++
			}
		}
		if nz > 1 {
			return k
		}
	}
	return -1
}

// branchVar creates the floor/ceil children for integer variable j.
func (s *solver) branchVar(parent *nodeState, j int, v float64) {
	left := cloneNode(parent)
	left.hi[j] = math.Floor(v)
	right := cloneNode(parent)
	right.lo[j] = math.Ceil(v)
	s.pushChild(left)
	s.pushChild(right)
}

// branchSOS splits the set at the weighted average of the fractional
// solution: the left child zeroes the members above the split, the right
// child zeroes those at or below it. Every SOS1-feasible point lies in one
// of the children, so the division is exhaustive.
func (s *solver) branchSOS(parent *nodeState, k int, x []float64) {
	set := s.sos[k]
	// Weighted barycenter of the current (violating) solution.
	num, den := 0.0, 0.0
	for i, v := range set.Vars {
		val := math.Abs(x[v])
		num += set.Weights[i] * val
		den += val
	}
	split := set.Weights[(len(set.Weights)-1)/2]
	if den > 0 {
		split = num / den
	}
	// Ensure the split separates at least one member on each side.
	if split <= set.Weights[0] {
		split = set.Weights[0]
	}
	if split >= set.Weights[len(set.Weights)-1] {
		split = set.Weights[len(set.Weights)-2]
	}
	left := cloneNode(parent)
	right := cloneNode(parent)
	branched := false
	for i, v := range set.Vars {
		if set.Weights[i] > split {
			left.lo[v], left.hi[v] = 0, 0
			branched = true
		} else {
			right.lo[v], right.hi[v] = 0, 0
		}
	}
	if !branched {
		// Degenerate split; zero the last member on the left instead.
		v := set.Vars[len(set.Vars)-1]
		left.lo[v], left.hi[v] = 0, 0
	}
	s.pushChild(left)
	s.pushChild(right)
}

func (s *solver) pushChild(n *nodeState) {
	// Reject children with empty boxes early.
	for j := range n.lo {
		if n.lo[j] > n.hi[j] {
			return
		}
	}
	s.seq++
	n.seq = s.seq
	heap.Push(&s.queue, n)
}

func cloneNode(n *nodeState) *nodeState {
	return &nodeState{
		lo:    append([]float64(nil), n.lo...),
		hi:    append([]float64(nil), n.hi...),
		bound: n.bound,
		depth: n.depth + 1,
		basis: n.basis, // immutable snapshot, shared with the parent
	}
}
