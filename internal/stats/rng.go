// Package stats provides deterministic pseudo-random number generation and
// small-sample descriptive statistics used throughout the HSLB code base.
//
// Everything in the repository that needs randomness (noise injection in the
// simulator, multistart initial points for the fitter, random test instances)
// goes through RNG so that runs are reproducible from a single seed.
package stats

import "math"

// RNG is a small, fast, deterministic pseudo-random number generator
// (xoshiro256** seeded via splitmix64). It is not safe for concurrent use;
// derive independent streams with Split.
type RNG struct {
	s [4]uint64
}

// NewRNG returns a generator seeded from seed. Two generators constructed
// with the same seed produce identical streams.
func NewRNG(seed uint64) *RNG {
	r := &RNG{}
	// splitmix64 to spread the seed over the full state.
	x := seed
	for i := range r.s {
		x += 0x9e3779b97f4a7c15
		z := x
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		r.s[i] = z ^ (z >> 31)
	}
	return r
}

// Split derives a new, statistically independent generator from r,
// advancing r in the process.
func (r *RNG) Split() *RNG {
	return NewRNG(r.Uint64() ^ 0xd1342543de82ef95)
}

// Uint64 returns the next 64 uniformly distributed bits.
func (r *RNG) Uint64() uint64 {
	rotl := func(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }
	result := rotl(r.s[1]*5, 7) * 9
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = rotl(r.s[3], 45)
	return result
}

// Float64 returns a uniform value in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform integer in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("stats: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Range returns a uniform value in [lo, hi).
func (r *RNG) Range(lo, hi float64) float64 {
	return lo + (hi-lo)*r.Float64()
}

// Norm returns a normally distributed value with the given mean and standard
// deviation, using the Marsaglia polar method.
func (r *RNG) Norm(mean, stddev float64) float64 {
	for {
		u := 2*r.Float64() - 1
		v := 2*r.Float64() - 1
		s := u*u + v*v
		if s > 0 && s < 1 {
			return mean + stddev*u*math.Sqrt(-2*math.Log(s)/s)
		}
	}
}

// LogNormFactor returns a multiplicative noise factor exp(N(0, sigma)) with
// the mean of the underlying normal shifted so the factor has expectation 1.
// sigma == 0 returns exactly 1.
func (r *RNG) LogNormFactor(sigma float64) float64 {
	if sigma == 0 {
		return 1
	}
	return math.Exp(r.Norm(-sigma*sigma/2, sigma))
}

// Perm returns a random permutation of [0, n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Shuffle permutes xs in place.
func (r *RNG) Shuffle(xs []float64) {
	for i := len(xs) - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		xs[i], xs[j] = xs[j], xs[i]
	}
}
