package stats

// Fault injection for the gather step's robustness tests: a FaultPlan
// decides, deterministically from a seed, which attempts of a keyed
// operation fail. Keyed derivation (rather than a shared sequential stream)
// is what makes retry deterministic: the value of a benchmark sample and
// the verdict of its k-th attempt depend only on (seed, key, attempt), so a
// run where every failure is eventually retried to success reproduces the
// failure-free run bit for bit.

// Key2 mixes two integers (e.g. a task index and a node count) into a
// single 64-bit key for keyed RNG and fault-plan lookups.
func Key2(a, b int) uint64 {
	return mix64(uint64(int64(a))*0x9e3779b97f4a7c15 ^ uint64(int64(b)))
}

// KeyedRNG returns a generator whose stream depends only on (seed, key):
// call-order independent, so concurrent or retried callers sharing a seed
// still draw reproducible, statistically independent streams per key.
func KeyedRNG(seed, key uint64) *RNG {
	return NewRNG(mix64(seed ^ mix64(key)))
}

// mix64 is the splitmix64 finalizer, a strong 64-bit mixing permutation.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// FaultPlan is an injectable failure schedule for tests and demos: attempt
// i (0-based) of the operation identified by key fails iff Fails(key, i).
// The zero value never fails. A plan is immutable and safe for concurrent
// use.
type FaultPlan struct {
	// Seed selects the failure pattern.
	Seed uint64
	// FailProb is the probability that a given (key, attempt) pair fails.
	FailProb float64
	// MaxFailures, when positive, caps consecutive failures per key:
	// attempts ≥ MaxFailures always succeed, guaranteeing that a caller
	// retrying at least MaxFailures times recovers every operation.
	MaxFailures int
}

// Fails reports whether the attempt-th try of operation key fails under the
// plan. Deterministic in (Seed, key, attempt).
func (f *FaultPlan) Fails(key uint64, attempt int) bool {
	if f == nil || f.FailProb <= 0 {
		return false
	}
	if f.MaxFailures > 0 && attempt >= f.MaxFailures {
		return false
	}
	u := mix64(f.Seed ^ mix64(key) ^ mix64(uint64(attempt)+0x6a09e667f3bcc909))
	return float64(u>>11)/(1<<53) < f.FailProb
}

// FaultyFunc wraps a pure keyed computation with the plan's failure
// schedule: each call for a key counts as one attempt, failing attempts
// return ErrInjectedFault, and successful attempts return eval(key). The
// returned closure tracks attempt counts per key and is NOT safe for
// concurrent use (the gather step calls it serially).
func (f *FaultPlan) FaultyFunc(eval func(key uint64) float64) func(key uint64) (float64, error) {
	attempts := make(map[uint64]int)
	return func(key uint64) (float64, error) {
		a := attempts[key]
		attempts[key] = a + 1
		if f.Fails(key, a) {
			return 0, ErrInjectedFault
		}
		return eval(key), nil
	}
}

// ErrInjectedFault is the error returned by FaultyFunc on a scheduled
// failure.
var ErrInjectedFault = errInjected{}

type errInjected struct{}

func (errInjected) Error() string { return "stats: injected fault" }
