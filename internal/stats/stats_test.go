package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverged at step %d", i)
		}
	}
}

func TestRNGSeedsDiffer(t *testing.T) {
	a, b := NewRNG(1), NewRNG(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("different seeds produced %d identical values", same)
	}
}

func TestRNGFloat64Range(t *testing.T) {
	r := NewRNG(7)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %v", f)
		}
	}
}

func TestRNGFloat64Mean(t *testing.T) {
	r := NewRNG(11)
	n := 100000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	mean := sum / float64(n)
	if math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("uniform mean %v too far from 0.5", mean)
	}
}

func TestRNGNorm(t *testing.T) {
	r := NewRNG(13)
	n := 200000
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = r.Norm(3, 2)
	}
	if m := Mean(xs); math.Abs(m-3) > 0.05 {
		t.Fatalf("normal mean %v too far from 3", m)
	}
	if s := StdDev(xs); math.Abs(s-2) > 0.05 {
		t.Fatalf("normal stddev %v too far from 2", s)
	}
}

func TestRNGIntn(t *testing.T) {
	r := NewRNG(17)
	counts := make([]int, 10)
	for i := 0; i < 10000; i++ {
		counts[r.Intn(10)]++
	}
	for v, c := range counts {
		if c < 800 || c > 1200 {
			t.Fatalf("Intn(10) value %d count %d far from uniform", v, c)
		}
	}
}

func TestRNGIntnPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	NewRNG(1).Intn(0)
}

func TestLogNormFactor(t *testing.T) {
	r := NewRNG(19)
	if f := r.LogNormFactor(0); f != 1 {
		t.Fatalf("LogNormFactor(0) = %v, want 1", f)
	}
	n := 200000
	sum := 0.0
	for i := 0; i < n; i++ {
		f := r.LogNormFactor(0.1)
		if f <= 0 {
			t.Fatalf("non-positive noise factor %v", f)
		}
		sum += f
	}
	if mean := sum / float64(n); math.Abs(mean-1) > 0.01 {
		t.Fatalf("LogNormFactor mean %v, want ~1", mean)
	}
}

func TestPerm(t *testing.T) {
	r := NewRNG(23)
	p := r.Perm(50)
	seen := make([]bool, 50)
	for _, v := range p {
		if v < 0 || v >= 50 || seen[v] {
			t.Fatalf("invalid permutation: %v", p)
		}
		seen[v] = true
	}
}

func TestSplitIndependence(t *testing.T) {
	r := NewRNG(29)
	a := r.Split()
	b := r.Split()
	if a.Uint64() == b.Uint64() {
		t.Fatal("split streams start identically")
	}
}

func TestMeanVariance(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if m := Mean(xs); m != 5 {
		t.Fatalf("Mean = %v, want 5", m)
	}
	if v := Variance(xs); v != 4 {
		t.Fatalf("Variance = %v, want 4", v)
	}
	if s := StdDev(xs); s != 2 {
		t.Fatalf("StdDev = %v, want 2", s)
	}
}

func TestMeanEmpty(t *testing.T) {
	if m := Mean(nil); m != 0 {
		t.Fatalf("Mean(nil) = %v, want 0", m)
	}
	if v := Variance([]float64{3}); v != 0 {
		t.Fatalf("Variance singleton = %v, want 0", v)
	}
}

func TestMinMax(t *testing.T) {
	xs := []float64{3, -1, 4, 1, 5}
	if m := Min(xs); m != -1 {
		t.Fatalf("Min = %v", m)
	}
	if m := Max(xs); m != 5 {
		t.Fatalf("Max = %v", m)
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	cases := []struct{ q, want float64 }{
		{0, 1}, {0.25, 2}, {0.5, 3}, {0.75, 4}, {1, 5},
	}
	for _, c := range cases {
		if got := Quantile(xs, c.q); math.Abs(got-c.want) > 1e-12 {
			t.Fatalf("Quantile(%v) = %v, want %v", c.q, got, c.want)
		}
	}
}

func TestRSquaredPerfect(t *testing.T) {
	obs := []float64{1, 2, 3, 4}
	if r2 := RSquared(obs, obs); r2 != 1 {
		t.Fatalf("R^2 of perfect fit = %v", r2)
	}
}

func TestRSquaredMeanModel(t *testing.T) {
	obs := []float64{1, 2, 3, 4}
	pred := []float64{2.5, 2.5, 2.5, 2.5}
	if r2 := RSquared(obs, pred); math.Abs(r2) > 1e-12 {
		t.Fatalf("R^2 of mean model = %v, want 0", r2)
	}
}

func TestImbalance(t *testing.T) {
	if im := Imbalance([]float64{1, 1, 1, 1}); im != 1 {
		t.Fatalf("Imbalance uniform = %v", im)
	}
	if im := Imbalance([]float64{2, 0}); im != 2 {
		t.Fatalf("Imbalance = %v, want 2", im)
	}
	if im := Imbalance([]float64{0, 0}); im != 1 {
		t.Fatalf("Imbalance zeros = %v, want 1", im)
	}
}

func TestArgMinMax(t *testing.T) {
	xs := []float64{3, 7, 7, 1, 1}
	if i := ArgMax(xs); i != 1 {
		t.Fatalf("ArgMax = %d, want 1 (first of ties)", i)
	}
	if i := ArgMin(xs); i != 3 {
		t.Fatalf("ArgMin = %d, want 3 (first of ties)", i)
	}
}

// Property: quantile is monotone in q and bounded by min/max.
func TestQuantileMonotoneProperty(t *testing.T) {
	f := func(seed uint64, n uint8) bool {
		if n == 0 {
			return true
		}
		r := NewRNG(seed)
		xs := make([]float64, int(n))
		for i := range xs {
			xs[i] = r.Range(-100, 100)
		}
		prev := math.Inf(-1)
		for q := 0.0; q <= 1.0; q += 0.1 {
			v := Quantile(xs, q)
			if v < prev-1e-9 || v < Min(xs)-1e-9 || v > Max(xs)+1e-9 {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: R^2 never exceeds 1.
func TestRSquaredBoundedProperty(t *testing.T) {
	f := func(seed uint64, n uint8) bool {
		m := int(n%20) + 2
		r := NewRNG(seed)
		obs := make([]float64, m)
		pred := make([]float64, m)
		for i := range obs {
			obs[i] = r.Range(0, 10)
			pred[i] = r.Range(0, 10)
		}
		return RSquared(obs, pred) <= 1+1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: imbalance is >= 1 for non-negative loads with positive mean.
func TestImbalanceAtLeastOneProperty(t *testing.T) {
	f := func(seed uint64, n uint8) bool {
		m := int(n%20) + 1
		r := NewRNG(seed)
		xs := make([]float64, m)
		for i := range xs {
			xs[i] = r.Range(0.001, 10)
		}
		return Imbalance(xs) >= 1-1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
