package stats

import (
	"math"
	"testing"
)

func TestFaultPlanDeterministic(t *testing.T) {
	plan := FaultPlan{Seed: 42, FailProb: 0.5}
	for key := uint64(0); key < 50; key++ {
		for a := 0; a < 5; a++ {
			if plan.Fails(key, a) != plan.Fails(key, a) {
				t.Fatalf("Fails(%d, %d) is not deterministic", key, a)
			}
		}
	}
}

func TestFaultPlanZeroNeverFails(t *testing.T) {
	var plan FaultPlan
	for key := uint64(0); key < 100; key++ {
		if plan.Fails(key, 0) {
			t.Fatalf("zero plan failed key %d", key)
		}
	}
	if (*FaultPlan)(nil).Fails(1, 0) {
		t.Fatal("nil plan failed")
	}
}

func TestFaultPlanMaxFailures(t *testing.T) {
	plan := FaultPlan{Seed: 7, FailProb: 1, MaxFailures: 3}
	for key := uint64(0); key < 20; key++ {
		for a := 0; a < 3; a++ {
			if !plan.Fails(key, a) {
				t.Fatalf("attempt %d of key %d should fail (FailProb 1)", a, key)
			}
		}
		if plan.Fails(key, 3) {
			t.Fatalf("attempt 3 of key %d should succeed (MaxFailures 3)", key)
		}
	}
}

func TestFaultPlanRate(t *testing.T) {
	plan := FaultPlan{Seed: 11, FailProb: 0.3}
	fails := 0
	const n = 20000
	for key := uint64(0); key < n; key++ {
		if plan.Fails(key, 0) {
			fails++
		}
	}
	got := float64(fails) / n
	if math.Abs(got-0.3) > 0.02 {
		t.Fatalf("empirical failure rate %.3f, want ≈ 0.30", got)
	}
}

func TestFaultyFuncRecovers(t *testing.T) {
	plan := FaultPlan{Seed: 3, FailProb: 0.8, MaxFailures: 2}
	eval := func(key uint64) float64 { return float64(key) * 1.5 }
	f := plan.FaultyFunc(eval)
	for key := uint64(0); key < 30; key++ {
		var v float64
		var err error
		for a := 0; a < 3; a++ { // MaxFailures=2 ⇒ attempt 2 always succeeds
			v, err = f(key)
			if err == nil {
				break
			}
			if err != ErrInjectedFault {
				t.Fatalf("unexpected error %v", err)
			}
		}
		if err != nil {
			t.Fatalf("key %d did not recover within MaxFailures retries", key)
		}
		if v != eval(key) {
			t.Fatalf("recovered value %v != eval %v", v, eval(key))
		}
	}
}

func TestKeyedRNGFaultIndependence(t *testing.T) {
	// Streams for different keys must differ; the same key must reproduce
	// regardless of draw order.
	a1 := KeyedRNG(9, Key2(1, 64)).Float64()
	b := KeyedRNG(9, Key2(2, 64)).Float64()
	a2 := KeyedRNG(9, Key2(1, 64)).Float64()
	if a1 != a2 {
		t.Fatalf("keyed stream not reproducible: %v vs %v", a1, a2)
	}
	if a1 == b {
		t.Fatalf("distinct keys produced identical streams")
	}
	if Key2(3, 5) == Key2(5, 3) {
		t.Fatal("Key2 should not be symmetric in its arguments")
	}
}
