package stats

import (
	"math"
	"sort"
)

// Sum returns the sum of xs.
func Sum(xs []float64) float64 {
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s
}

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	return Sum(xs) / float64(len(xs))
}

// Variance returns the population variance of xs, or 0 for fewer than two
// elements.
func Variance(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	s := 0.0
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return s / float64(len(xs))
}

// StdDev returns the population standard deviation of xs.
func StdDev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// Min returns the minimum of xs. It panics on an empty slice.
func Min(xs []float64) float64 {
	if len(xs) == 0 {
		panic("stats: Min of empty slice")
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the maximum of xs. It panics on an empty slice.
func Max(xs []float64) float64 {
	if len(xs) == 0 {
		panic("stats: Max of empty slice")
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// Quantile returns the q-quantile (0 <= q <= 1) of xs using linear
// interpolation between order statistics. It panics on an empty slice.
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		panic("stats: Quantile of empty slice")
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	if q <= 0 {
		return s[0]
	}
	if q >= 1 {
		return s[len(s)-1]
	}
	pos := q * float64(len(s)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return s[lo]
	}
	frac := pos - float64(lo)
	return s[lo]*(1-frac) + s[hi]*frac
}

// RSquared returns the coefficient of determination of predictions pred
// against observations obs. A perfect fit returns 1. If the observations
// have zero variance, it returns 1 when the predictions match exactly and
// -inf otherwise.
func RSquared(obs, pred []float64) float64 {
	if len(obs) != len(pred) {
		panic("stats: RSquared length mismatch")
	}
	if len(obs) == 0 {
		return 1
	}
	mean := Mean(obs)
	ssRes, ssTot := 0.0, 0.0
	for i := range obs {
		r := obs[i] - pred[i]
		ssRes += r * r
		d := obs[i] - mean
		ssTot += d * d
	}
	if ssTot == 0 {
		if ssRes == 0 {
			return 1
		}
		return math.Inf(-1)
	}
	return 1 - ssRes/ssTot
}

// Imbalance returns the load-imbalance ratio max/mean of xs, the standard
// metric for how far a schedule is from perfectly balanced (1 is perfect).
// It panics on an empty slice and returns +Inf when the mean is zero but the
// max is not.
func Imbalance(xs []float64) float64 {
	mx := Max(xs)
	mean := Mean(xs)
	if mean == 0 {
		if mx == 0 {
			return 1
		}
		return math.Inf(1)
	}
	return mx / mean
}

// ArgMax returns the index of the maximum element of xs, breaking ties in
// favour of the lowest index. It panics on an empty slice.
func ArgMax(xs []float64) int {
	if len(xs) == 0 {
		panic("stats: ArgMax of empty slice")
	}
	best := 0
	for i, x := range xs {
		if x > xs[best] {
			best = i
		}
	}
	return best
}

// ArgMin returns the index of the minimum element of xs, breaking ties in
// favour of the lowest index. It panics on an empty slice.
func ArgMin(xs []float64) int {
	if len(xs) == 0 {
		panic("stats: ArgMin of empty slice")
	}
	best := 0
	for i, x := range xs {
		if x < xs[best] {
			best = i
		}
	}
	return best
}
