package fleet

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"
)

// TestShardedLRUBasics: get/put/refresh/len on a small striped cache.
func TestShardedLRUBasics(t *testing.T) {
	c := NewShardedLRU[int](64, 8)
	if c.ShardCount() != 8 || c.Capacity() != 64 {
		t.Fatalf("shape: %d shards cap %d", c.ShardCount(), c.Capacity())
	}
	if _, ok := c.Get("absent"); ok {
		t.Fatal("phantom hit")
	}
	for i := 0; i < 40; i++ {
		c.Put(fmt.Sprintf("k%d", i), i)
	}
	if c.Len() != 40 {
		t.Fatalf("len %d, want 40", c.Len())
	}
	for i := 0; i < 40; i++ {
		v, ok := c.Get(fmt.Sprintf("k%d", i))
		if !ok || v != i {
			t.Fatalf("k%d: (%v, %v)", i, v, ok)
		}
	}
	c.Put("k7", 700) // refresh
	if v, _ := c.Get("k7"); v != 700 {
		t.Fatalf("refresh lost: %d", v)
	}
	if c.Len() != 40 {
		t.Fatalf("refresh changed len: %d", c.Len())
	}
}

// TestShardedLRUCapacityExact: the total entry count never exceeds the
// configured capacity, for capacities that do not divide the shard count.
func TestShardedLRUCapacityExact(t *testing.T) {
	for _, tc := range []struct{ cap, shards int }{
		{1, 1}, {2, 2}, {3, 4}, {7, 4}, {64, 16}, {100, 16}, {4096, 64},
	} {
		c := NewShardedLRU[int](tc.cap, tc.shards)
		total := 0
		for i := range c.shards {
			total += c.shards[i].cap
		}
		if total != tc.cap {
			t.Fatalf("cap %d shards %d: shard caps sum to %d", tc.cap, tc.shards, total)
		}
		for i := 0; i < 4*tc.cap+13; i++ {
			c.Put(fmt.Sprintf("key-%d", i), i)
			if c.Len() > tc.cap {
				t.Fatalf("cap %d shards %d: len %d after %d puts", tc.cap, tc.shards, c.Len(), i+1)
			}
		}
	}
}

// TestShardedLRUShardClamp: shard counts are rounded to powers of two and
// clamped so every shard owns at least one slot.
func TestShardedLRUShardClamp(t *testing.T) {
	if n := NewShardedLRU[int](1024, 5).ShardCount(); n != 8 {
		t.Fatalf("5 shards rounded to %d, want 8", n)
	}
	if n := NewShardedLRU[int](2, 64).ShardCount(); n != 2 {
		t.Fatalf("cap-2 cache got %d shards, want 2", n)
	}
	if n := NewShardedLRU[int](1, 64).ShardCount(); n != 1 {
		t.Fatalf("cap-1 cache got %d shards, want 1", n)
	}
	if n := NewShardedLRU[int](4096, 0).ShardCount(); n&(n-1) != 0 || n < 1 {
		t.Fatalf("auto shards %d not a power of two", n)
	}
}

// TestShardedLRUPerShardEviction: with one shard the cache is the exact
// textbook LRU (oldest-first); with many, eviction happens in the full
// shard while other shards keep their entries.
func TestShardedLRUPerShardEviction(t *testing.T) {
	// Single shard: global LRU semantics.
	c := NewShardedLRU[int](2, 1)
	c.Put("a", 1)
	c.Put("b", 2)
	c.Get("a") // refresh a; b is now oldest
	c.Put("c", 3)
	if _, ok := c.Get("b"); ok {
		t.Fatal("single shard: LRU entry b survived")
	}
	if _, ok := c.Get("a"); !ok {
		t.Fatal("single shard: refreshed entry a evicted")
	}

	// Striped: filling one shard evicts only within it.
	s := NewShardedLRU[int](64, 8)
	target := s.ShardFor("seed-key")
	var inTarget, elsewhere []string
	for i := 0; inTarget == nil || len(inTarget) < 20 || len(elsewhere) < 5; i++ {
		k := fmt.Sprintf("probe-%d", i)
		if s.ShardFor(k) == target {
			inTarget = append(inTarget, k)
		} else if len(elsewhere) < 5 {
			elsewhere = append(elsewhere, k)
		}
	}
	for _, k := range elsewhere {
		s.Put(k, 1)
	}
	for _, k := range inTarget { // 20 keys into a cap-8 shard
		s.Put(k, 2)
	}
	for _, k := range elsewhere {
		if _, ok := s.Get(k); !ok {
			t.Fatalf("eviction leaked across shards: %s gone", k)
		}
	}
}

// TestShardedLRURange: Range visits every entry exactly once and stops when
// asked.
func TestShardedLRURange(t *testing.T) {
	c := NewShardedLRU[int](128, 8)
	want := map[string]int{}
	for i := 0; i < 60; i++ {
		k := fmt.Sprintf("r%d", i)
		want[k] = i
		c.Put(k, i)
	}
	got := map[string]int{}
	c.Range(func(k string, v int) bool {
		if _, dup := got[k]; dup {
			t.Fatalf("key %s visited twice", k)
		}
		got[k] = v
		return true
	})
	if len(got) != len(want) {
		t.Fatalf("visited %d entries, want %d", len(got), len(want))
	}
	for k, v := range want {
		if got[k] != v {
			t.Fatalf("%s: %d want %d", k, got[k], v)
		}
	}
	n := 0
	c.Range(func(string, int) bool { n++; return n < 7 })
	if n != 7 {
		t.Fatalf("early stop visited %d", n)
	}
}

// TestShardedLRUConcurrent is the race-tier exercise: concurrent
// Get/Put/evict/Range from many goroutines over a keyspace larger than the
// cache, so eviction churns constantly while snapshots walk the shards.
// Correctness assertions are minimal (hit values match what was put, the
// bound holds); under -race this is primarily the data-race check demanded
// by the striped design.
func TestShardedLRUConcurrent(t *testing.T) {
	const (
		workers = 8
		ops     = 2000
		keys    = 512
	)
	c := NewShardedLRU[int](128, 16)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(1000 + w)))
			for i := 0; i < ops; i++ {
				k := fmt.Sprintf("key-%d", rng.Intn(keys))
				switch rng.Intn(4) {
				case 0, 1:
					c.Put(k, len(k))
				case 2:
					if v, ok := c.Get(k); ok && v != len(k) {
						t.Errorf("corrupt value for %s: %d", k, v)
						return
					}
				case 3:
					seen := 0
					c.Range(func(key string, v int) bool {
						if v != len(key) {
							t.Errorf("corrupt range value for %s: %d", key, v)
							return false
						}
						seen++
						return seen < 64
					})
				}
			}
		}(w)
	}
	wg.Wait()
	if c.Len() > 128 {
		t.Fatalf("capacity bound broken under concurrency: %d", c.Len())
	}
}

// TestShardForStable: the shard assignment is a pure function of the key.
func TestShardForStable(t *testing.T) {
	c := NewShardedLRU[int](256, 32)
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 200; i++ {
		k := fmt.Sprintf("%x", rng.Int63())
		if a, b := c.ShardFor(k), c.ShardFor(k); a != b || a < 0 || a >= 32 {
			t.Fatalf("unstable or out-of-range shard for %s: %d vs %d", k, a, b)
		}
	}
}
