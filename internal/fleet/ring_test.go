package fleet

import (
	"fmt"
	"math/rand"
	"testing"
)

func ringKeys(n int, seed int64) []string {
	rng := rand.New(rand.NewSource(seed))
	keys := make([]string, n)
	for i := range keys {
		keys[i] = fmt.Sprintf("%016x%016x", rng.Uint64(), rng.Uint64())
	}
	return keys
}

// TestRingDeterministic: two independently built rings with the same
// membership agree on every owner — the property that lets the gateway and
// each replica compute placement without coordination.
func TestRingDeterministic(t *testing.T) {
	a := NewRing(64)
	b := NewRing(64)
	a.Add("r0", "r1", "r2")
	b.Add("r2", "r0", "r1") // different insertion order
	for _, k := range ringKeys(500, 1) {
		if a.Owner(k) != b.Owner(k) {
			t.Fatalf("rings disagree on %s: %s vs %s", k, a.Owner(k), b.Owner(k))
		}
		oa, ob := a.Owners(k, 2), b.Owners(k, 2)
		if len(oa) != 2 || len(ob) != 2 || oa[0] != ob[0] || oa[1] != ob[1] {
			t.Fatalf("failover order disagrees on %s: %v vs %v", k, oa, ob)
		}
	}
}

// TestRingSingleOwnership: every key has exactly one owner; Owners returns
// distinct members with the owner first.
func TestRingSingleOwnership(t *testing.T) {
	r := NewRing(64)
	r.Add("a", "b", "c", "d", "e")
	for _, k := range ringKeys(1000, 2) {
		own := r.Owner(k)
		if own == "" {
			t.Fatalf("key %s lost (no owner)", k)
		}
		owners := r.Owners(k, 3)
		if len(owners) != 3 || owners[0] != own {
			t.Fatalf("Owners(%s, 3) = %v, owner %s", k, owners, own)
		}
		seen := map[string]bool{}
		for _, id := range owners {
			if seen[id] {
				t.Fatalf("key %s double-owned: %v", k, owners)
			}
			seen[id] = true
		}
	}
	empty := NewRing(64)
	if empty.Owner("k") != "" || empty.Owners("k", 2) != nil {
		t.Fatal("empty ring invented an owner")
	}
}

// TestRingStability is the consistent-hashing contract: removing a member
// reassigns only the keys it owned, and adding one only moves keys to the
// newcomer — in both cases about K/N of them.
func TestRingStability(t *testing.T) {
	const members = 5
	keys := ringKeys(4000, 3)
	r := NewRing(64)
	for i := 0; i < members; i++ {
		r.Add(fmt.Sprintf("r%d", i))
	}
	before := make(map[string]string, len(keys))
	for _, k := range keys {
		before[k] = r.Owner(k)
	}

	// Removal: survivors keep every key they owned.
	r.Remove("r2")
	moved := 0
	for _, k := range keys {
		after := r.Owner(k)
		if before[k] != "r2" && after != before[k] {
			t.Fatalf("removing r2 moved %s from %s to %s", k, before[k], after)
		}
		if before[k] == "r2" {
			if after == "r2" || after == "" {
				t.Fatalf("key %s still owned by removed member (or lost)", k)
			}
			moved++
		}
	}
	if lo, hi := len(keys)/members/3, 3*len(keys)/members; moved < lo || moved > hi {
		t.Fatalf("removal moved %d keys, expected around %d", moved, len(keys)/members)
	}

	// Re-addition: keys move only to the re-added member, and it reclaims
	// exactly the ownership arcs it had (the ring is deterministic).
	r.Add("r2")
	gained := 0
	for _, k := range keys {
		after := r.Owner(k)
		if after != before[k] {
			t.Fatalf("re-adding r2 left %s with %s, originally %s", k, after, before[k])
		}
		if after == "r2" {
			gained++
		}
	}
	if gained != moved {
		t.Fatalf("r2 reclaimed %d keys, owned %d before", gained, moved)
	}
}

// TestRingBalance: with 64 vnodes no member of a small fleet owns a
// pathological share of a uniform keyspace.
func TestRingBalance(t *testing.T) {
	r := NewRing(64)
	r.Add("a", "b", "c")
	counts := map[string]int{}
	keys := ringKeys(6000, 4)
	for _, k := range keys {
		counts[r.Owner(k)]++
	}
	mean := len(keys) / 3
	for id, n := range counts {
		if n < mean/2 || n > 2*mean {
			t.Fatalf("member %s owns %d of %d keys (mean %d): ring badly unbalanced %v",
				id, n, len(keys), mean, counts)
		}
	}
}

// TestRingAddIdempotent: re-adding a member or adding "" must not distort
// the ring.
func TestRingAddIdempotent(t *testing.T) {
	r := NewRing(32)
	r.Add("a", "b")
	n := len(r.points)
	r.Add("a", "", "b")
	if len(r.points) != n || r.Size() != 2 {
		t.Fatalf("idempotent add grew the ring: %d points, %d members", len(r.points), r.Size())
	}
	r.Remove("nope") // unknown: no-op
	if r.Size() != 2 {
		t.Fatal("removing an unknown member changed the ring")
	}
}
