// Package fleet holds the primitives of the multi-replica serving layer:
// a sharded (striped) LRU cache that removes the single-mutex bottleneck of
// the per-process solution cache, and a consistent-hash ring that assigns
// canonical instance keys to replicas so a fleet shares solves instead of
// duplicating them.
//
// Both primitives are deliberately dependency-free and value-agnostic: the
// serve layer owns what is cached (canonical solutions) and what the ring
// keys are (canonical instance hashes); fleet owns only the placement
// mechanics. See DESIGN.md "Fleet architecture".
package fleet

import (
	"container/list"
	"runtime"
	"sync"
)

// ShardedLRU is a size-bounded map from string key to V, striped across a
// power-of-two number of independently locked LRU shards. Each shard is the
// textbook mutex+list LRU; the stripe count is chosen so that concurrent
// request handlers rarely contend on the same lock.
//
// Capacity is split exactly across shards (shard i gets cap/shards plus one
// of the cap%shards remainder slots), so the total entry count never
// exceeds the configured capacity. Eviction is LRU *per shard*, which
// approximates global LRU for the uniformly hashed keys the serve layer
// uses (hex SHA-256 instance hashes); a worst-case adversarial key set can
// evict earlier than global LRU would, never later than its shard's own
// recency order.
type ShardedLRU[V any] struct {
	shards []lruShard[V]
	mask   uint64
	cap    int
}

type lruShard[V any] struct {
	mu    sync.Mutex
	cap   int
	m     map[string]*list.Element
	order *list.List // front = most recently used
	_     [24]byte   // pad toward a cache line to curb false sharing of the locks
}

type lruEntry[V any] struct {
	key string
	val V
}

// DefaultShards picks the stripe count for a given capacity: the smallest
// power of two at or above 4×GOMAXPROCS, clamped to [1, 256] and to the
// capacity itself (a shard with zero slots could never hold anything).
func DefaultShards(capacity int) int {
	want := 4 * runtime.GOMAXPROCS(0)
	if want > 256 {
		want = 256
	}
	n := 1
	for n < want {
		n <<= 1
	}
	for n > 1 && n > capacity {
		n >>= 1
	}
	return n
}

// NewShardedLRU builds a cache holding at most capacity entries across the
// given number of shards. shards is rounded up to a power of two; shards <= 0
// selects DefaultShards(capacity). capacity must be positive.
func NewShardedLRU[V any](capacity, shards int) *ShardedLRU[V] {
	if capacity <= 0 {
		panic("fleet: ShardedLRU capacity must be positive")
	}
	if shards <= 0 {
		shards = DefaultShards(capacity)
	}
	n := 1
	for n < shards {
		n <<= 1
	}
	for n > 1 && n > capacity {
		// More shards than slots would leave empty shards that silently drop
		// every put; shrink until each shard owns at least one slot.
		n >>= 1
	}
	c := &ShardedLRU[V]{shards: make([]lruShard[V], n), mask: uint64(n - 1), cap: capacity}
	base, extra := capacity/n, capacity%n
	for i := range c.shards {
		sc := base
		if i < extra {
			sc++
		}
		c.shards[i] = lruShard[V]{cap: sc, m: make(map[string]*list.Element), order: list.New()}
	}
	return c
}

// hashKey is FNV-1a 64 with a splitmix64 finalizer. The finalizer matters:
// the low bits select the shard, and plain FNV's low bits correlate for
// short keys with shared suffixes (the fuzz target feeds exactly those).
func hashKey(key string) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= prime64
	}
	h ^= h >> 30
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 27
	h *= 0x94d049bb133111eb
	h ^= h >> 31
	return h
}

// ShardFor reports which shard holds key (stable for the cache's lifetime;
// exported for tests and the shard-distribution fuzz target).
func (c *ShardedLRU[V]) ShardFor(key string) int {
	return int(hashKey(key) & c.mask)
}

// Get returns the value cached under key and marks it most recently used in
// its shard.
func (c *ShardedLRU[V]) Get(key string) (V, bool) {
	s := &c.shards[hashKey(key)&c.mask]
	s.mu.Lock()
	defer s.mu.Unlock()
	el, ok := s.m[key]
	if !ok {
		var zero V
		return zero, false
	}
	s.order.MoveToFront(el)
	return el.Value.(*lruEntry[V]).val, true
}

// Put inserts (or refreshes) key, evicting the least recently used entry of
// its shard when that shard is full.
func (c *ShardedLRU[V]) Put(key string, val V) {
	s := &c.shards[hashKey(key)&c.mask]
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.cap == 0 {
		return
	}
	if el, ok := s.m[key]; ok {
		el.Value.(*lruEntry[V]).val = val
		s.order.MoveToFront(el)
		return
	}
	s.m[key] = s.order.PushFront(&lruEntry[V]{key: key, val: val})
	for s.order.Len() > s.cap {
		oldest := s.order.Back()
		s.order.Remove(oldest)
		delete(s.m, oldest.Value.(*lruEntry[V]).key)
	}
}

// Len reports the current entry count across all shards.
func (c *ShardedLRU[V]) Len() int {
	n := 0
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		n += s.order.Len()
		s.mu.Unlock()
	}
	return n
}

// Capacity reports the configured total capacity.
func (c *ShardedLRU[V]) Capacity() int { return c.cap }

// ShardCount reports the stripe count (a power of two).
func (c *ShardedLRU[V]) ShardCount() int { return len(c.shards) }

// Range calls f for every entry, shard by shard, most- to least-recently
// used within each shard, until f returns false. Only one shard's lock is
// held at a time, so Range never blocks the whole cache: it is a consistent
// snapshot per shard, not across shards — exactly what the disk snapshot
// writer needs (concurrent puts may or may not appear; nothing is visited
// twice within a shard). f runs under the visited shard's lock and must not
// call back into the cache.
func (c *ShardedLRU[V]) Range(f func(key string, val V) bool) {
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		for el := s.order.Front(); el != nil; el = el.Next() {
			e := el.Value.(*lruEntry[V])
			if !f(e.key, e.val) {
				s.mu.Unlock()
				return
			}
		}
		s.mu.Unlock()
	}
}
