package fleet

import (
	"crypto/sha256"
	"encoding/binary"
	"sort"
	"strconv"
)

// Ring is a consistent-hash ring assigning string keys to named members
// (replicas). Each member contributes vnodes points on a 64-bit circle; a
// key is owned by the member whose point is the first at or clockwise of
// the key's hash. The construction is fully deterministic from the member
// names and vnode count — SHA-256 of "id#i" for points, SHA-256 of the key
// for lookups — so a gateway and every replica build byte-identical rings
// from the same membership list without any coordination.
//
// The consistent-hashing contract, pinned by TestRingStability and
// FuzzHashRing:
//
//   - every key has exactly one owner while the ring is non-empty;
//   - removing a member only reassigns the keys that member owned;
//   - adding a member only moves keys *to* the new member, in expectation
//     K/N of them (concentration improving with vnodes).
//
// Ring is not synchronized: build it up front and treat it as read-only
// while serving (membership in this system is a deploy-time decision; the
// failure path is the gateway's retry, not a ring edit).
type Ring struct {
	vnodes int
	points []ringPoint // sorted by (hash, id)
	member map[string]bool
}

type ringPoint struct {
	hash uint64
	id   string
}

// DefaultVNodes is the default virtual-node count per member. 64 keeps the
// largest-over-smallest ownership arc under ~1.4× for small fleets, and a
// 3-replica ring is only 192 points — lookup is a binary search either way.
// All parties of one fleet must agree on the value (it changes every point
// hash), which is why it is a constructor argument, not a per-Add option.
const DefaultVNodes = 64

// NewRing builds an empty ring; vnodes <= 0 selects DefaultVNodes.
func NewRing(vnodes int) *Ring {
	if vnodes <= 0 {
		vnodes = DefaultVNodes
	}
	return &Ring{vnodes: vnodes, member: make(map[string]bool)}
}

// VNodes reports the per-member virtual-node count.
func (r *Ring) VNodes() int { return r.vnodes }

// hash64 is the first 8 bytes of SHA-256, big endian: stable across
// processes, architectures, and Go versions — the property that lets every
// fleet member compute placement independently.
func hash64(s string) uint64 {
	sum := sha256.Sum256([]byte(s))
	return binary.BigEndian.Uint64(sum[:8])
}

// Add inserts members (idempotent per id; empty ids are ignored).
func (r *Ring) Add(ids ...string) {
	for _, id := range ids {
		if id == "" || r.member[id] {
			continue
		}
		r.member[id] = true
		for i := 0; i < r.vnodes; i++ {
			r.points = append(r.points, ringPoint{hash: hash64(id + "#" + strconv.Itoa(i)), id: id})
		}
	}
	sort.Slice(r.points, func(a, b int) bool {
		if r.points[a].hash != r.points[b].hash {
			return r.points[a].hash < r.points[b].hash
		}
		return r.points[a].id < r.points[b].id
	})
}

// Remove deletes a member and its points (no-op for unknown ids).
func (r *Ring) Remove(id string) {
	if !r.member[id] {
		return
	}
	delete(r.member, id)
	kept := r.points[:0]
	for _, p := range r.points {
		if p.id != id {
			kept = append(kept, p)
		}
	}
	r.points = kept
}

// Members returns the member ids in sorted order.
func (r *Ring) Members() []string {
	ids := make([]string, 0, len(r.member))
	for id := range r.member {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

// Size reports the member count.
func (r *Ring) Size() int { return len(r.member) }

// Owner returns the member owning key, or "" on an empty ring.
func (r *Ring) Owner(key string) string {
	owners := r.Owners(key, 1)
	if len(owners) == 0 {
		return ""
	}
	return owners[0]
}

// Owners returns up to n distinct members in ring order starting at key's
// owner: the owner first, then the members next clockwise — the natural
// failover / peer-fill order, identical on every party that built the same
// ring.
func (r *Ring) Owners(key string, n int) []string {
	if n <= 0 || len(r.points) == 0 {
		return nil
	}
	if n > len(r.member) {
		n = len(r.member)
	}
	h := hash64(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	owners := make([]string, 0, n)
	seen := make(map[string]bool, n)
	for k := 0; k < len(r.points) && len(owners) < n; k++ {
		p := r.points[(i+k)%len(r.points)]
		if !seen[p.id] {
			seen[p.id] = true
			owners = append(owners, p.id)
		}
	}
	return owners
}
