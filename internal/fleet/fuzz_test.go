package fleet

import (
	"fmt"
	"math/rand"
	"testing"
)

// FuzzHashRing drives a membership-churn script against the consistent-hash
// contract: at every step every key has exactly one owner; a removal only
// reassigns keys the removed member owned; an addition only moves keys to
// the newcomer, and not more than a concentration bound above the ideal
// K/N share. The script bytes choose which of up to 8 members join or
// leave; key material derives from the seed so the corpus explores both
// sides of the hash.
func FuzzHashRing(f *testing.F) {
	f.Add([]byte{0, 1, 2, 0x83, 3, 0x81, 1}, int64(1))
	f.Add([]byte{0, 0, 0x80, 1, 2, 3, 4, 5, 6, 7, 0x84}, int64(2))
	f.Add([]byte{7, 6, 5, 0x87, 0x86, 4}, int64(3))
	f.Fuzz(func(t *testing.T, script []byte, seed int64) {
		if len(script) > 64 {
			script = script[:64]
		}
		const nKeys = 300
		rng := rand.New(rand.NewSource(seed))
		keys := make([]string, nKeys)
		for i := range keys {
			keys[i] = fmt.Sprintf("%016x-%d", rng.Uint64(), i)
		}
		r := NewRing(32)
		owner := make(map[string]string, nKeys) // last observed owner per key

		check := func(op string, id string) {
			n := r.Size()
			for _, k := range keys {
				own := r.Owner(k)
				if n == 0 {
					if own != "" {
						t.Fatalf("%s %s: empty ring owns %s", op, id, k)
					}
					continue
				}
				if own == "" {
					t.Fatalf("%s %s: key %s lost (no owner on %d-member ring)", op, id, k, n)
				}
				if owners := r.Owners(k, 2); len(owners) == 2 && owners[0] == owners[1] {
					t.Fatalf("%s %s: key %s double-owned by %s", op, id, k, owners[0])
				}
			}
		}

		for _, b := range script {
			id := fmt.Sprintf("m%d", b&0x07)
			if b&0x80 != 0 {
				if !r.member[id] {
					continue
				}
				r.Remove(id)
				// Only keys owned by the removed member may change hands.
				for _, k := range keys {
					own := r.Owner(k)
					if prev := owner[k]; prev != "" && prev != id && own != prev {
						t.Fatalf("remove %s moved key %s from %s to %s", id, k, prev, own)
					}
					owner[k] = own
				}
				check("remove", id)
				continue
			}
			if r.member[id] {
				continue
			}
			r.Add(id)
			moved := 0
			for _, k := range keys {
				own := r.Owner(k)
				if prev := owner[k]; prev != "" && own != prev {
					if own != id {
						t.Fatalf("add %s moved key %s from %s to %s", id, k, prev, own)
					}
					moved++
				}
				owner[k] = own
			}
			// Concentration bound: the newcomer takes about K/N; allow a
			// generous 3× plus slack so the 32-vnode variance can't flake.
			if n := r.Size(); n >= 2 && moved > 3*nKeys/n+24 {
				t.Fatalf("add %s to a %d-member ring moved %d of %d keys (ideal %d)",
					id, n, moved, nKeys, nKeys/n)
			}
			check("add", id)
		}
	})
}

// FuzzShardedCacheKey feeds arbitrary keys through the striped cache: the
// shard choice must be stable, a put must be readable back regardless of
// key shape (embedded NULs, long runs, shared suffixes), the capacity bound
// must hold, and Range must visit live keys exactly once.
func FuzzShardedCacheKey(f *testing.F) {
	f.Add([]byte("plain-key"), uint8(4))
	f.Add([]byte{0, 0, 0, 1, 0, 0, 0, 2}, uint8(16))
	f.Add([]byte("aaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaab"), uint8(1))
	f.Fuzz(func(t *testing.T, raw []byte, shards uint8) {
		c := NewShardedLRU[int](32, int(shards)%64)
		if n := c.ShardCount(); n < 1 || n&(n-1) != 0 {
			t.Fatalf("shard count %d not a positive power of two", n)
		}
		// Derive a family of related keys from the raw bytes: the fuzzer
		// loves shared prefixes/suffixes, exactly where weak shard hashes
		// correlate.
		base := string(raw)
		keys := []string{base, base + "0", base + "1", "0" + base, base + base}
		for i, k := range keys {
			if a, b := c.ShardFor(k), c.ShardFor(k); a != b {
				t.Fatalf("unstable shard for %q: %d vs %d", k, a, b)
			}
			c.Put(k, i)
		}
		// Re-put under the same keys (later index wins for duplicates). A
		// key may legitimately be gone — distinct keys hashing to one
		// cap-1 shard evict each other — but a hit must return the right
		// value, and the very last put is its shard's MRU and must survive.
		want := map[string]int{}
		for i, k := range keys {
			want[k] = i
			c.Put(k, i)
		}
		for k, v := range want {
			if got, ok := c.Get(k); ok && got != v {
				t.Fatalf("key %q: got %d, want %d", k, got, v)
			}
		}
		last := keys[len(keys)-1]
		if got, ok := c.Get(last); !ok || got != want[last] {
			t.Fatalf("last-put key %q: got (%d, %v), want %d", last, got, ok, want[last])
		}
		if c.Len() > 32 {
			t.Fatalf("capacity bound broken: %d", c.Len())
		}
		seen := map[string]bool{}
		c.Range(func(k string, v int) bool {
			if seen[k] {
				t.Fatalf("key %q visited twice", k)
			}
			seen[k] = true
			if w, ok := want[k]; ok && v != w {
				t.Fatalf("key %q: range saw %d, want %d", k, v, w)
			}
			return true
		})
		if len(seen) != c.Len() {
			t.Fatalf("range visited %d keys, len says %d", len(seen), c.Len())
		}
	})
}
