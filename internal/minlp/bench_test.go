package minlp

import (
	"testing"
)

// BenchmarkAllocationMINLP solves the paper-style min-max allocation MINLP
// (4 tasks, 4096 nodes) end to end.
func BenchmarkAllocationMINLP(b *testing.B) {
	w := []float64{9000, 4500, 32000, 14000}
	for i := 0; i < b.N; i++ {
		m, _, _ := minMaxModel(w, 4096)
		res := Solve(m, Options{})
		if res.Status != Optimal {
			b.Fatalf("status %v", res.Status)
		}
	}
}

// BenchmarkAllocationMINLPNoSOSWarmup is the ablated variant without the
// initial Kelley relaxation.
func BenchmarkAllocationMINLPNoWarmStart(b *testing.B) {
	w := []float64{9000, 4500, 32000, 14000}
	for i := 0; i < b.N; i++ {
		m, _, _ := minMaxModel(w, 4096)
		res := Solve(m, Options{SkipNLPRelaxation: true})
		if res.Status != Optimal {
			b.Fatalf("status %v", res.Status)
		}
	}
}
