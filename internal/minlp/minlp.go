// Package minlp implements the LP/NLP-based branch-and-bound algorithm for
// convex mixed-integer nonlinear programs — the algorithm the paper uses
// (via MINOTAUR) to solve the HSLB node-allocation problems.
//
// The method, following Quesada & Grossmann (and Fletcher & Leyffer's outer
// approximation, which the paper cites):
//
//  1. Solve the continuous NLP relaxation. Its solution provides the first
//     linearization points; infeasibility or the bound it produces can end
//     the search immediately.
//  2. Build a master MILP from the linear part of the model plus
//     outer-approximation cuts at the relaxation solution.
//  3. Run a single branch-and-bound tree over the master (package milp).
//     Whenever the tree finds an integer-feasible LP point, a lazy callback
//     checks the true nonlinear constraints: violated constraints are
//     linearized at that point (a valid global cut that separates it, by
//     convexity) and the node is re-solved; points satisfying every
//     constraint become incumbents.
//
// Because the fitted HSLB performance functions are convex (coefficients
// a, b, d ≥ 0 and exponent c ≥ 1 — the paper: "the positivity of the
// coefficients implies that the nonlinear functions are convex"), every cut
// is valid and the returned solution is globally optimal, which is the
// guarantee the paper's abstract highlights.
package minlp

import (
	"context"
	"fmt"
	"math"
	"time"

	"repro/internal/lp"
	"repro/internal/milp"
	"repro/internal/model"
	"repro/internal/nlp"
	"repro/internal/par"
)

// lazyDebug enables tracing of the OA lazy callback (tests flip it).
var lazyDebug = false

// Status reports the outcome of a solve.
type Status int

// Solve outcomes.
const (
	Optimal Status = iota
	Infeasible
	Unbounded
	Limit
)

func (s Status) String() string {
	switch s {
	case Optimal:
		return "optimal"
	case Infeasible:
		return "infeasible"
	case Unbounded:
		return "unbounded"
	case Limit:
		return "limit"
	}
	return "unknown"
}

// Options tunes the solver. Zero values select defaults.
type Options struct {
	// FeasTol is the nonlinear feasibility tolerance for accepting
	// incumbents (default 1e-6). It is applied relative to the
	// constraint's first-order magnitude at the candidate point (see
	// model.CutScale), with scale floor 1 — i.e. exactly the historical
	// absolute tolerance for O(1)-scaled models.
	FeasTol float64
	// MaxNodes bounds the branch-and-bound tree (default 200000).
	MaxNodes int
	// DisableSOSBranching forwards the ablation knob to the MILP tree.
	DisableSOSBranching bool
	// DisableWarmStart forwards to the Kelley relaxation and the MILP
	// master: every LP is then solved from scratch instead of
	// dual-simplex reoptimized from a parent basis.
	DisableWarmStart bool
	// CutAtFractional adds OA cuts at fractional node solutions too.
	CutAtFractional bool
	// DisableSparse pins every LP — Kelley relaxation and master tree —
	// to the dense simplex kernels (benchmark/ablation knob).
	DisableSparse bool
	// DisablePresolve skips the LP presolve reduction in front of every
	// cold LP solve of the Kelley relaxation and the master tree
	// (ablation knob for the scale-equivariance battery).
	DisablePresolve bool
	// SkipNLPRelaxation skips step 1 (the initial Kelley solve); the
	// master then starts from the pure linear relaxation. Used by the
	// solver ablation benchmarks.
	SkipNLPRelaxation bool
	// GridCuts seeds the master with linearizations of every nonlinear
	// constraint at a geometric grid of points across its variable box
	// (default 8; negative disables). A tight initial master keeps the
	// branch-and-bound tree small on the flat objective plateaus typical
	// of allocation problems.
	GridCuts int
	// GapTol is the relative optimality gap of the master tree
	// (default 1e-7).
	GapTol float64
	// TimeLimit bounds the wall-clock time of the master tree search
	// (0 = unlimited); on expiry the best incumbent is returned with
	// status Limit.
	TimeLimit time.Duration
	// DebugLPCheck forwards to the MILP tree (testing hook).
	DebugLPCheck func(p *lp.Problem, sol *lp.Solution)
	// CrashPoint, when non-nil, is a primal point in model-variable space
	// (e.g. a heuristic allocation) handed to the LP layer as a crash
	// hint on the master problem: cold solves and warm-start rebuilds
	// construct a starting basis from it instead of marching from the
	// all-slack vertex. Node clones inherit it. Strictly best-effort: the
	// LP layer verifies every crash basis and falls back to a cold start.
	CrashPoint []float64
	// Parallelism forwards to the MILP tree's speculative LP pool and
	// bounds the worker pool that evaluates the nonlinear constraints in
	// the OA feasibility callback. Results are bit-identical for every
	// setting (the callback merges per-constraint verdicts in constraint
	// order; the tree keeps its serial incumbent authority). 0 uses one
	// worker per CPU, negative forces serial.
	Parallelism int
}

// Result is the outcome of a solve.
type Result struct {
	Status Status
	X      []float64
	Obj    float64
	// RelaxObj is the continuous relaxation optimum (a global lower
	// bound); NaN when the relaxation was skipped.
	RelaxObj float64
	// BestBound is a valid global lower bound on the optimum at the time
	// the solve stopped: equal to Obj for Optimal, the tightest of the
	// remaining tree bounds for Limit, -Inf when nothing was proven.
	// Callers use it to report the optimality gap of deadline-bounded
	// solves.
	BestBound float64
	Nodes     int
	LPSolves  int
	OACuts    int
	// Pivots is the total simplex pivot count across the Kelley
	// relaxation and the master tree (see lp.Solution.Pivots).
	Pivots int
	// WarmSolves / ColdSolves are the master tree's basis-cache
	// statistics (see milp.Result); the Kelley relaxation's LP solves are
	// counted in LPSolves but not split here.
	WarmSolves int
	ColdSolves int
}

// Solve minimizes the model. The model's nonlinear constraints must be
// convex; see the package comment.
func Solve(m *model.Model, opts Options) *Result {
	return SolveContext(context.Background(), m, opts)
}

// SolveContext is Solve with cooperative cancellation: ctx is threaded into
// the master branch-and-bound tree (see milp.SolveContext), so cancellation
// or a ctx deadline stops the search like a TimeLimit — status Limit with
// the best incumbent, if any, in X. A never-cancelled ctx is bit-identical
// to Solve.
func SolveContext(ctx context.Context, m *model.Model, opts Options) *Result {
	if opts.FeasTol == 0 {
		opts.FeasTol = 1e-6
	}
	if opts.GridCuts == 0 {
		opts.GridCuts = 8
	}
	if opts.GapTol == 0 {
		opts.GapTol = 1e-7
	}
	res := &Result{RelaxObj: math.NaN(), BestBound: math.Inf(-1)}
	if err := m.Validate(); err != nil {
		res.Status = Infeasible
		return res
	}
	if ctx.Err() != nil {
		// Cancelled before any work: nothing proven, no incumbent.
		res.Status = Limit
		return res
	}

	master := m.LPRelaxation()
	if opts.CrashPoint != nil {
		master.SetCrashPoint(opts.CrashPoint)
	}

	// Seed the master with grid linearizations: for each nonlinear
	// constraint, sweep each of its variables over a geometric grid of its
	// box (others at the box midpoint) and cut there.
	if opts.GridCuts > 0 {
		// Coordinates of linearization points are kept small in
		// magnitude: the cut right-hand side Σ∇g·x̄ − g(x̄) suffers
		// catastrophic cancellation when x̄ holds huge components (e.g.
		// a makespan variable bounded by 1e12), which would perturb the
		// cut into cutting off feasible points.
		const magCap = 1e8
		nvars := m.NumVars()
		for k := range m.Nonlinear() {
			g := m.Nonlinear()[k].G
			vars := g.Vars()
			base := make([]float64, nvars)
			for _, v := range vars {
				vi := m.Var(v)
				base[v] = clampMag(boundedBase(vi.Lo, vi.Hi), magCap)
			}
			for _, v := range vars {
				vi := m.Var(v)
				lo, hi := vi.Lo, vi.Hi
				// The degenerate-box cutoff is relative to the bound
				// magnitude; an absolute cutoff would misjudge boxes at
				// units far from O(1). An exactly-pinned box (lo == hi,
				// including 0) still skips.
				if math.IsInf(lo, -1) || math.IsInf(hi, 1) ||
					hi-lo <= 1e-12*math.Max(math.Abs(lo), math.Abs(hi)) {
					continue
				}
				lo, hi = math.Max(lo, -magCap), math.Min(hi, magCap)
				if hi <= lo {
					continue
				}
				denom := float64(opts.GridCuts - 1)
				if denom < 1 {
					denom = 1
				}
				for i := 0; i < opts.GridCuts; i++ {
					f := float64(i) / denom
					pt := append([]float64(nil), base...)
					if lo > 0 {
						pt[v] = lo * math.Pow(hi/lo, f) // geometric
					} else {
						pt[v] = lo + (hi-lo)*f // linear
					}
					if !finiteAt(g, pt) {
						continue
					}
					m.LinearizeAt(master, k, pt)
				}
			}
		}
	}

	// Step 1: continuous relaxation via Kelley's method. Its cut points
	// warm-start the master with the same linearizations.
	if !opts.SkipNLPRelaxation {
		relax := nlp.SolveConvex(m.Clone(), nlp.ConvexOptions{
			Tol:              opts.FeasTol / 10,
			DisableWarmStart: opts.DisableWarmStart,
			DisableSparse:    opts.DisableSparse,
			DisablePresolve:  opts.DisablePresolve,
		})
		res.LPSolves += relax.Iters
		res.Pivots += relax.Pivots
		switch relax.Status {
		case nlp.ConvexInfeasible:
			res.Status = Infeasible
			return res
		case nlp.ConvexUnbounded:
			res.Status = Unbounded
			return res
		case nlp.ConvexIterLimit:
			// Keep going with whatever cuts we got; the master remains a
			// relaxation either way.
		default:
			res.RelaxObj = relax.Obj
		}
		for _, pt := range relax.CutPoints {
			for k := range m.Nonlinear() {
				m.LinearizeAt(master, k, pt)
			}
		}
		if relax.X != nil {
			for k := range m.Nonlinear() {
				m.LinearizeAt(master, k, relax.X)
			}
		}
	}

	// Step 3: single-tree branch and bound with OA lazy cuts. Cuts are
	// deduplicated by (constraint, quantized linearization point): repeat
	// candidates sharing coordinates would otherwise flood the master
	// with identical rows.
	//
	// The per-constraint feasibility checks (and the gradients of the
	// violated ones) are independent pure evaluations, so they run on the
	// shared worker pool; the verdicts are merged in constraint order and
	// the `seen` dedup map stays on the authority's goroutine, keeping the
	// emitted cut sequence bit-identical to a serial run.
	seen := make(map[cutKey]bool)
	varScale := quantScales(m)
	type verdict struct {
		violated bool
		key      cutKey
		terms    []lp.Term
		rhs      float64
	}
	lazy := func(x []float64) []milp.LazyCut {
		nl := m.Nonlinear()
		workers := opts.Parallelism
		if len(nl) < 8 {
			workers = -1 // not worth the goroutine round-trip
		}
		verdicts := par.Map(workers, len(nl), func(k int) verdict {
			g := nl[k].G
			v := g.Value(x)
			// Fast path: CutScale ≥ 1, so v ≤ FeasTol is feasible at any
			// scale and needs no gradient evaluation.
			if v <= opts.FeasTol {
				return verdict{}
			}
			// The violation check is relative to the constraint's
			// first-order magnitude at this very point; the linearization
			// is needed for both the scale and (if violated) the cut.
			terms, rhs := m.LinearCutAt(k, x)
			if v <= opts.FeasTol*model.CutScale(terms, rhs, x) {
				return verdict{}
			}
			return verdict{violated: true, key: makeCutKey(k, g.Vars(), x, varScale), terms: terms, rhs: rhs}
		})
		var cuts []milp.LazyCut
		for _, vd := range verdicts {
			if !vd.violated {
				continue
			}
			if seen[vd.key] {
				if lazyDebug {
					fmt.Printf("lazy SKIP k=%d x=%v\n", vd.key.k, x)
				}
				continue
			}
			seen[vd.key] = true
			cuts = append(cuts, milp.LazyCut{Terms: vd.terms, Sense: lp.LE, RHS: vd.rhs, Name: "oa"})
		}
		if lazyDebug {
			fmt.Printf("lazy: x=%v -> %d cuts\n", x, len(cuts))
		}
		return cuts
	}

	sos := make([]milp.SOS1, 0, len(m.SOS()))
	for _, s := range m.SOS() {
		sos = append(sos, milp.SOS1{Vars: s.Vars, Weights: s.Weights})
	}

	mres := milp.SolveContext(ctx, master, m.IntegerVars(), sos, milp.Options{
		MaxNodes:            opts.MaxNodes,
		GapTol:              opts.GapTol,
		TimeLimit:           opts.TimeLimit,
		DisableSOSBranching: opts.DisableSOSBranching,
		DisableWarmStart:    opts.DisableWarmStart,
		DisableSparse:       opts.DisableSparse,
		DisablePresolve:     opts.DisablePresolve,
		CutAtFractional:     opts.CutAtFractional,
		Lazy:                lazy,
		DebugLPCheck:        opts.DebugLPCheck,
		Parallelism:         opts.Parallelism,
	})
	res.Nodes = mres.Nodes
	res.LPSolves += mres.LPSolves
	res.OACuts = mres.Cuts
	res.Pivots += mres.Pivots
	res.WarmSolves = mres.WarmSolves
	res.ColdSolves = mres.ColdSolves
	switch mres.Status {
	case milp.Optimal:
		res.Status = Optimal
		res.X = mres.X
		res.Obj = m.EvalObjective(mres.X)
		res.BestBound = res.Obj
	case milp.Infeasible:
		res.Status = Infeasible
		res.BestBound = math.Inf(1)
	case milp.Unbounded:
		res.Status = Unbounded
	default:
		res.Status = Limit
		if mres.X != nil {
			res.X = mres.X
			res.Obj = m.EvalObjective(mres.X)
		}
		// The master tree's bound is valid for the MINLP too (the master
		// is a relaxation); the Kelley relaxation bound may be tighter.
		res.BestBound = mres.BestBound
		if !math.IsNaN(res.RelaxObj) && res.RelaxObj > res.BestBound {
			res.BestBound = res.RelaxObj
		}
	}
	return res
}

// cutKey identifies a linearization by constraint index and quantized point.
type cutKey struct {
	k    int
	hash uint64
}

// quantScales precomputes, per variable, the reciprocal quantization step
// for cut deduplication: 2^40 divided by the power-of-two magnitude of the
// variable's box. Two linearization points collide only when they agree to
// ~1e-12 of the variable's own range — always at least as fine as the
// historical absolute 1e-6 rounding (a coarser key could merge genuinely
// different cuts and let a violated incumbent slip past the lazy check),
// and, being a pure power of two, the quantization maps exactly across
// power-of-two rescalings of the model data.
func quantScales(m *model.Model) []float64 {
	s := make([]float64, m.NumVars())
	for v := range s {
		vi := m.Var(v)
		b := 0.0
		if lo := math.Abs(vi.Lo); !math.IsInf(lo, 1) {
			b = lo
		}
		if hi := math.Abs(vi.Hi); !math.IsInf(hi, 1) && hi > b {
			b = hi
		}
		e := 0
		if b > 1 {
			_, e = math.Frexp(b)
		}
		s[v] = math.Ldexp(1, 40-e)
	}
	return s
}

func makeCutKey(k int, vars []int, x []float64, varScale []float64) cutKey {
	// FNV-style hash over the box-relative quantized coordinates.
	h := uint64(1469598103934665603)
	for _, v := range vars {
		q := int64(math.Round(x[v] * varScale[v]))
		for i := 0; i < 8; i++ {
			h ^= uint64(q >> (8 * i) & 0xff)
			h *= 1099511628211
		}
	}
	return cutKey{k: k, hash: h}
}

// boundedBase returns a representative point of [lo, hi], preferring the
// smallest-magnitude finite bound (numerically safest for cut RHS).
func boundedBase(lo, hi float64) float64 {
	switch {
	case math.IsInf(lo, -1) && math.IsInf(hi, 1):
		return 0
	case math.IsInf(lo, -1):
		return hi
	default:
		return lo
	}
}

// clampMag limits |v| to cap.
func clampMag(v, cap float64) float64 {
	if v > cap {
		return cap
	}
	if v < -cap {
		return -cap
	}
	return v
}

// finiteAt reports whether g and its gradient are finite at x.
func finiteAt(g model.Smooth, x []float64) bool {
	if v := g.Value(x); math.IsNaN(v) || math.IsInf(v, 0) {
		return false
	}
	for _, d := range g.Grad(x) {
		if math.IsNaN(d) || math.IsInf(d, 0) {
			return false
		}
	}
	return true
}

// SetLazyDebug toggles tracing of the lazy OA callback (testing aid).
func SetLazyDebug(on bool) { lazyDebug = on }
