package minlp

import "testing"

// TestWarmColdStatsSurface: the basis-cache statistics of the master tree
// must surface through Result so the serve layer can export them. With warm
// starting on, a branchy instance reoptimizes most node LPs from a cached
// parent basis; with it off, every LP solve is by definition cold.
func TestWarmColdStatsSurface(t *testing.T) {
	w := []float64{13, 11, 7, 5, 3, 2, 17}
	m, _, _ := minMaxModel(w, 23)

	warm := Solve(m.Clone(), Options{})
	if warm.Status != Optimal {
		t.Fatalf("status %v", warm.Status)
	}
	if warm.WarmSolves+warm.ColdSolves == 0 {
		t.Fatal("warm-started solve reported no basis-cache activity at all")
	}
	if warm.WarmSolves == 0 {
		t.Fatalf("warm-started solve reported zero warm reoptimizations: %+v", warm)
	}

	cold := Solve(m.Clone(), Options{DisableWarmStart: true})
	if cold.Status != Optimal {
		t.Fatalf("status %v", cold.Status)
	}
	if cold.WarmSolves != 0 {
		t.Fatalf("DisableWarmStart still counted %d warm solves", cold.WarmSolves)
	}
	if cold.ColdSolves == 0 {
		t.Fatal("DisableWarmStart reported zero cold solves")
	}
	// Different pivot paths legitimately differ in the last ulps.
	if diff := cold.Obj - warm.Obj; diff > 1e-9 || diff < -1e-9 {
		t.Fatalf("warm starting changed the optimum: %v vs %v", warm.Obj, cold.Obj)
	}
}
