package minlp

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/lp"
	"repro/internal/model"
	"repro/internal/stats"
)

// minMaxModel builds the paper's allocation MINLP:
//
//	min T  s.t.  T ≥ wᵢ/nᵢ,  Σnᵢ ≤ N,  nᵢ ∈ {1..N} integer.
//
// Returns the model and the variable ids (T, n...).
func minMaxModel(w []float64, n int) (*model.Model, int, []int) {
	m := model.New()
	tv := m.AddVar(0, 1e12, model.Continuous, "T")
	m.SetObjective([]model.Term{{Var: tv, Coef: 1}}, 0)
	ids := make([]int, len(w))
	capTerms := make([]model.Term, 0, len(w))
	for i := range w {
		wi := w[i]
		v := m.AddVar(1, float64(n), model.Integer, "n")
		ids[i] = v
		m.AddNonlinear(&model.FuncSmooth{
			Over: []int{v, tv},
			F:    func(x []float64) float64 { return wi/x[v] - x[tv] },
			DF:   func(x []float64) []float64 { return []float64{-wi / (x[v] * x[v]), -1} },
		}, "t")
		capTerms = append(capTerms, model.Term{Var: v, Coef: 1})
	}
	m.AddLinear(capTerms, lp.LE, float64(n), "cap")
	return m, tv, ids
}

// bruteMinMax enumerates all allocations of N nodes to len(w) tasks with
// nᵢ ≥ 1 and returns the optimal makespan.
func bruteMinMax(w []float64, n int) float64 {
	k := len(w)
	best := math.Inf(1)
	alloc := make([]int, k)
	var rec func(i, left int)
	rec = func(i, left int) {
		if i == k-1 {
			alloc[i] = left
			worst := 0.0
			for j, wj := range w {
				if t := wj / float64(alloc[j]); t > worst {
					worst = t
				}
			}
			if worst < best {
				best = worst
			}
			return
		}
		for v := 1; v <= left-(k-1-i); v++ {
			alloc[i] = v
			rec(i+1, left-v)
		}
	}
	if k == 0 || n < k {
		return best
	}
	rec(0, n)
	return best
}

func TestMinMaxSmall(t *testing.T) {
	w := []float64{4, 1}
	m, _, ids := minMaxModel(w, 3)
	res := Solve(m, Options{})
	if res.Status != Optimal {
		t.Fatalf("status = %v", res.Status)
	}
	// n = (2, 1): max(2, 1) = 2 is the integer optimum.
	if math.Abs(res.Obj-2) > 1e-5 {
		t.Fatalf("obj = %v, want 2 (x=%v)", res.Obj, res.X)
	}
	if math.Abs(res.X[ids[0]]-2) > 1e-6 || math.Abs(res.X[ids[1]]-1) > 1e-6 {
		t.Fatalf("alloc = (%v, %v)", res.X[ids[0]], res.X[ids[1]])
	}
	// Relaxation bound must be ≤ integer optimum.
	if !math.IsNaN(res.RelaxObj) && res.RelaxObj > res.Obj+1e-6 {
		t.Fatalf("relaxation bound %v exceeds optimum %v", res.RelaxObj, res.Obj)
	}
}

func TestCircleInteger(t *testing.T) {
	// min -x-y s.t. x²+y² ≤ 25, x,y integer in [0,5] → (3,4)/(4,3), obj -7.
	m := model.New()
	x := m.AddVar(0, 5, model.Integer, "x")
	y := m.AddVar(0, 5, model.Integer, "y")
	m.SetObjective([]model.Term{{Var: x, Coef: -1}, {Var: y, Coef: -1}}, 0)
	m.AddNonlinear(&model.FuncSmooth{
		Over: []int{x, y},
		F:    func(v []float64) float64 { return v[x]*v[x] + v[y]*v[y] - 25 },
		DF:   func(v []float64) []float64 { return []float64{2 * v[x], 2 * v[y]} },
	}, "circle")
	res := Solve(m, Options{})
	if res.Status != Optimal {
		t.Fatalf("status = %v", res.Status)
	}
	if math.Abs(res.Obj+7) > 1e-6 {
		t.Fatalf("obj = %v, want -7 (x=%v)", res.Obj, res.X)
	}
	if m.NonlinViolation(res.X) > 1e-6 {
		t.Fatalf("infeasible solution %v", res.X)
	}
}

func TestInfeasibleNonlinear(t *testing.T) {
	m := model.New()
	x := m.AddVar(0, 5, model.Integer, "x")
	m.SetObjective([]model.Term{{Var: x, Coef: 1}}, 0)
	m.AddNonlinear(&model.FuncSmooth{
		Over: []int{x},
		F:    func(v []float64) float64 { return v[x]*v[x] + 1 },
		DF:   func(v []float64) []float64 { return []float64{2 * v[x]} },
	}, "")
	res := Solve(m, Options{})
	if res.Status != Infeasible {
		t.Fatalf("status = %v, want infeasible", res.Status)
	}
}

func TestInfeasibleLinear(t *testing.T) {
	m := model.New()
	x := m.AddVar(0, 5, model.Integer, "x")
	m.SetObjective([]model.Term{{Var: x, Coef: 1}}, 0)
	m.AddLinear([]model.Term{{Var: x, Coef: 1}}, lp.GE, 9, "")
	res := Solve(m, Options{})
	if res.Status != Infeasible {
		t.Fatalf("status = %v, want infeasible", res.Status)
	}
}

func TestPureMILPPassThrough(t *testing.T) {
	m := model.New()
	x := m.AddVar(0, 10, model.Integer, "x")
	m.SetObjective([]model.Term{{Var: x, Coef: -1}}, 0)
	m.AddLinear([]model.Term{{Var: x, Coef: 2}}, lp.LE, 7, "")
	res := Solve(m, Options{})
	if res.Status != Optimal || math.Abs(res.X[x]-3) > 1e-6 {
		t.Fatalf("res = %+v", res)
	}
}

func TestSOSAllocationSet(t *testing.T) {
	// n must come from the sweet-spot set {2, 4, 8, 16}: z binaries with
	// Σz=1 and n = Σ z·level, minimizing 100/n + n/10 (trade-off with
	// integer optimum at n=16: 6.25+1.6=7.85 vs n=8: 12.5+0.8=13.3...
	// wait: 100/16+1.6 = 7.85; continuous opt ~ n=31.6; so largest level
	// wins).
	m := model.New()
	levels := []float64{2, 4, 8, 16}
	n := m.AddVar(2, 16, model.Continuous, "n")
	tv := m.AddVar(0, 1e9, model.Continuous, "T")
	m.SetObjective([]model.Term{{Var: tv, Coef: 1}}, 0)
	var zs []int
	one := make([]model.Term, 0, len(levels))
	link := []model.Term{{Var: n, Coef: -1}}
	for _, lv := range levels {
		z := m.AddBinary("z")
		zs = append(zs, z)
		one = append(one, model.Term{Var: z, Coef: 1})
		link = append(link, model.Term{Var: z, Coef: lv})
	}
	m.AddLinear(one, lp.EQ, 1, "pick")
	m.AddLinear(link, lp.EQ, 0, "n=level")
	m.AddSOS1(zs, levels, "levels")
	m.AddNonlinear(&model.FuncSmooth{
		Over: []int{n, tv},
		F:    func(x []float64) float64 { return 100/x[n] + x[n]/10 - x[tv] },
		DF:   func(x []float64) []float64 { return []float64{-100/(x[n]*x[n]) + 0.1, -1} },
	}, "perf")
	res := Solve(m, Options{})
	if res.Status != Optimal {
		t.Fatalf("status = %v", res.Status)
	}
	if math.Abs(res.X[n]-16) > 1e-6 {
		t.Fatalf("n = %v, want 16", res.X[n])
	}
	if math.Abs(res.Obj-(100.0/16+1.6)) > 1e-4 {
		t.Fatalf("obj = %v", res.Obj)
	}
}

func TestAblationsAgree(t *testing.T) {
	w := []float64{9, 5, 2, 1}
	base, _, _ := minMaxModel(w, 12)
	ref := Solve(base.Clone(), Options{})
	if ref.Status != Optimal {
		t.Fatalf("ref status = %v", ref.Status)
	}
	variants := []Options{
		{DisableSOSBranching: true},
		{SkipNLPRelaxation: true},
		{CutAtFractional: true},
		{SkipNLPRelaxation: true, CutAtFractional: true},
	}
	for i, o := range variants {
		r := Solve(base.Clone(), o)
		if r.Status != Optimal {
			t.Fatalf("variant %d status = %v", i, r.Status)
		}
		if math.Abs(r.Obj-ref.Obj) > 1e-5 {
			t.Fatalf("variant %d obj %v != ref %v", i, r.Obj, ref.Obj)
		}
	}
}

// Property: LP/NLP-based branch and bound matches brute-force enumeration on
// random min-max allocation instances (the paper's core problem).
func TestMinMaxAgainstBruteForceProperty(t *testing.T) {
	f := func(seed uint64) bool {
		rng := stats.NewRNG(seed)
		k := 2 + rng.Intn(3)
		n := k + rng.Intn(10)
		w := make([]float64, k)
		for i := range w {
			w[i] = rng.Range(0.5, 20)
		}
		m, _, _ := minMaxModel(w, n)
		res := Solve(m, Options{})
		if res.Status != Optimal {
			return false
		}
		want := bruteMinMax(w, n)
		return math.Abs(res.Obj-want) < 1e-5*(1+want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

// Property: the relaxation bound never exceeds the integer optimum.
func TestRelaxationBoundProperty(t *testing.T) {
	f := func(seed uint64) bool {
		rng := stats.NewRNG(seed)
		k := 2 + rng.Intn(3)
		n := k + rng.Intn(8)
		w := make([]float64, k)
		for i := range w {
			w[i] = rng.Range(0.5, 10)
		}
		m, _, _ := minMaxModel(w, n)
		res := Solve(m, Options{})
		if res.Status != Optimal {
			return false
		}
		return math.IsNaN(res.RelaxObj) || res.RelaxObj <= res.Obj+1e-5
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestValidateRejected(t *testing.T) {
	m := model.New()
	m.AddVar(5, 2, model.Continuous, "bad")
	res := Solve(m, Options{})
	if res.Status != Infeasible {
		t.Fatalf("status = %v", res.Status)
	}
}
