package minlp

import (
	"math"
	"testing"
	"time"

	"repro/internal/lp"
	"repro/internal/model"
)

func TestGridCutsDisabled(t *testing.T) {
	w := []float64{7, 3, 1}
	m, _, _ := minMaxModel(w, 9)
	withGrid := Solve(m.Clone(), Options{})
	noGrid := Solve(m.Clone(), Options{GridCuts: -1})
	if withGrid.Status != Optimal || noGrid.Status != Optimal {
		t.Fatalf("status: %v / %v", withGrid.Status, noGrid.Status)
	}
	if math.Abs(withGrid.Obj-noGrid.Obj) > 1e-5*(1+withGrid.Obj) {
		t.Fatalf("grid cuts changed the optimum: %v vs %v", withGrid.Obj, noGrid.Obj)
	}
}

func TestTimeLimitPassthrough(t *testing.T) {
	// A big enough instance that a microsecond budget cannot finish.
	w := make([]float64, 8)
	for i := range w {
		w[i] = float64(i*i + 1)
	}
	m, _, _ := minMaxModel(w, 4000)
	res := Solve(m, Options{TimeLimit: time.Microsecond, SkipNLPRelaxation: true, GridCuts: -1})
	if res.Status == Optimal {
		t.Skip("instance solved within the budget; nothing to assert")
	}
	if res.Status != Limit {
		t.Fatalf("status = %v, want limit", res.Status)
	}
}

func TestGapTolerancePassthrough(t *testing.T) {
	w := []float64{11, 7, 5, 2}
	m, _, _ := minMaxModel(w, 25)
	tight := Solve(m.Clone(), Options{})
	loose := Solve(m.Clone(), Options{GapTol: 0.25})
	if tight.Status != Optimal || loose.Status != Optimal {
		t.Fatalf("status: %v / %v", tight.Status, loose.Status)
	}
	if loose.Obj < tight.Obj-1e-9 {
		t.Fatalf("loose gap beat the optimum: %v < %v", loose.Obj, tight.Obj)
	}
	if loose.Obj > tight.Obj*1.25+1e-9 {
		t.Fatalf("loose solve exceeded its gap: %v vs %v", loose.Obj, tight.Obj)
	}
}

func TestCutDeduplication(t *testing.T) {
	// Force repeated candidate points: a model whose master revisits the
	// same integer assignment; the dedupe keeps OACuts bounded by
	// (constraints × distinct points).
	w := []float64{5, 5, 5}
	m, _, _ := minMaxModel(w, 9)
	res := Solve(m, Options{SkipNLPRelaxation: true, GridCuts: -1})
	if res.Status != Optimal {
		t.Fatalf("status = %v", res.Status)
	}
	if res.OACuts > 60 {
		t.Fatalf("%d OA cuts on a 3-task toy problem; dedupe broken?", res.OACuts)
	}
}

func TestNonSmoothBoundaryGridCuts(t *testing.T) {
	// Nonlinear constraint whose function blows up at the variable's
	// lower bound edge (1/x as x→0): finiteAt must skip bad grid points
	// and the solve still succeed.
	m := model.New()
	x := m.AddVar(0, 10, model.Integer, "x") // lower bound 0: 1/x undefined there
	tv := m.AddVar(0, 1e6, model.Continuous, "T")
	m.SetObjective([]model.Term{{Var: tv, Coef: 1}}, 0)
	m.AddNonlinear(&model.FuncSmooth{
		Over: []int{x, tv},
		F: func(v []float64) float64 {
			return 9/v[x] - v[tv]
		},
		DF: func(v []float64) []float64 {
			return []float64{-9 / (v[x] * v[x]), -1}
		},
	}, "blowup")
	m.AddLinear([]model.Term{{Var: x, Coef: 1}}, lp.GE, 1, "x>=1")
	m.AddLinear([]model.Term{{Var: x, Coef: 1}}, lp.LE, 3, "x<=3")
	res := Solve(m, Options{})
	if res.Status != Optimal {
		t.Fatalf("status = %v", res.Status)
	}
	if math.Abs(res.Obj-3) > 1e-4 { // x=3 → T=3
		t.Fatalf("obj = %v, want 3", res.Obj)
	}
}
