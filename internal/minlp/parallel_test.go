package minlp

import (
	"math"
	"testing"

	"repro/internal/lp"
	"repro/internal/stats"
)

// sameResult requires bit-identical results — the determinism contract of
// Options.Parallelism — including the tree statistics.
func sameResult(t *testing.T, seed int, serial, parallel *Result) {
	t.Helper()
	if serial.Status != parallel.Status {
		t.Fatalf("seed %d: status %v (serial) vs %v (parallel)", seed, serial.Status, parallel.Status)
	}
	if math.Float64bits(serial.Obj) != math.Float64bits(parallel.Obj) {
		t.Fatalf("seed %d: obj %v (serial) vs %v (parallel)", seed, serial.Obj, parallel.Obj)
	}
	if serial.Nodes != parallel.Nodes || serial.LPSolves != parallel.LPSolves || serial.OACuts != parallel.OACuts {
		t.Fatalf("seed %d: stats (%d,%d,%d) (serial) vs (%d,%d,%d) (parallel)", seed,
			serial.Nodes, serial.LPSolves, serial.OACuts,
			parallel.Nodes, parallel.LPSolves, parallel.OACuts)
	}
	if len(serial.X) != len(parallel.X) {
		t.Fatalf("seed %d: len(X) %d (serial) vs %d (parallel)", seed, len(serial.X), len(parallel.X))
	}
	for i := range serial.X {
		if math.Float64bits(serial.X[i]) != math.Float64bits(parallel.X[i]) {
			t.Fatalf("seed %d: X[%d] = %v (serial) vs %v (parallel)", seed, i, serial.X[i], parallel.X[i])
		}
	}
}

// TestParallelMatchesSerialProperty solves a population of random paper-style
// allocation MINLPs serially and in parallel and requires bit-identical
// results — objective, allocation, and tree statistics — plus a valid KKT
// certificate for every node LP, and agreement with brute-force enumeration.
func TestParallelMatchesSerialProperty(t *testing.T) {
	instances := 1000
	if testing.Short() {
		instances = 60
	}
	for seed := 0; seed < instances; seed++ {
		rng := stats.NewRNG(uint64(seed) + 1)
		k := 2 + rng.Intn(3)
		w := make([]float64, k)
		for i := range w {
			w[i] = rng.Range(0.5, 10)
		}
		n := k + rng.Intn(7)
		m, _, ids := minMaxModel(w, n)
		// VerifyKKT's tolerance is absolute, and OA cut rows mix unit
		// coefficients with gradients of w/n curves over a huge makespan
		// box, so residuals of ~1e-4 are tiny relative to the row scale.
		kkt := func(p *lp.Problem, sol *lp.Solution) {
			if sol.Status != lp.Optimal {
				return
			}
			if err := lp.VerifyKKT(p, sol, 1e-3); err != nil {
				t.Fatalf("seed %d: node LP certificate: %v", seed, err)
			}
		}
		serial := Solve(m.Clone(), Options{Parallelism: -1, DebugLPCheck: kkt})
		if serial.Status != Optimal {
			t.Fatalf("seed %d: serial status %v", seed, serial.Status)
		}
		if want := bruteMinMax(w, n); math.Abs(serial.Obj-want) > 1e-4*want {
			t.Fatalf("seed %d: obj %v, brute force %v (w=%v n=%d)", seed, serial.Obj, want, w, n)
		}
		for _, workers := range []int{2, 4} {
			sameResult(t, seed, serial, Solve(m.Clone(), Options{Parallelism: workers, DebugLPCheck: kkt}))
		}
		// The allocation itself must be integral and within budget.
		total := 0
		for _, id := range ids {
			v := serial.X[id]
			if math.Abs(v-math.Round(v)) > 1e-6 {
				t.Fatalf("seed %d: fractional allocation %v", seed, v)
			}
			total += int(math.Round(v))
		}
		if total > n {
			t.Fatalf("seed %d: allocation uses %d of %d nodes", seed, total, n)
		}
	}
}
