package minlp

import (
	"context"
	"math"
	"testing"
	"time"

	"repro/internal/lp"
)

func TestCancelBeforeOA(t *testing.T) {
	w := []float64{7, 3, 1}
	m, _, _ := minMaxModel(w, 9)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res := SolveContext(ctx, m, Options{})
	if res.Status != Limit {
		t.Fatalf("status = %v, want limit", res.Status)
	}
	if !math.IsInf(res.BestBound, -1) {
		t.Fatalf("a solve that never ran proved bound %v", res.BestBound)
	}
}

func TestCancelMidOA(t *testing.T) {
	w := make([]float64, 8)
	for i := range w {
		w[i] = float64(i*i + 1)
	}
	m, _, _ := minMaxModel(w, 4000)
	ctx, cancel := context.WithCancel(context.Background())
	lps := 0
	res := SolveContext(ctx, m, Options{
		SkipNLPRelaxation: true, GridCuts: -1,
		DebugLPCheck: func(*lp.Problem, *lp.Solution) {
			lps++
			if lps == 5 {
				cancel()
			}
		},
	})
	if res.Status == Optimal {
		t.Skip("instance solved before the cancellation point")
	}
	if res.Status != Limit {
		t.Fatalf("status = %v, want limit", res.Status)
	}
	// Whatever bound the interrupted solve reports must not exceed the
	// true optimum.
	full := Solve(m.Clone(), Options{})
	if full.Status != Optimal {
		t.Fatalf("full solve status = %v", full.Status)
	}
	if res.BestBound > full.Obj+1e-6*(1+full.Obj) {
		t.Fatalf("cancelled bound %v exceeds optimum %v", res.BestBound, full.Obj)
	}
}

func TestDeadlineReportsBestBound(t *testing.T) {
	w := make([]float64, 8)
	for i := range w {
		w[i] = float64(i*i + 1)
	}
	m, _, _ := minMaxModel(w, 4000)
	res := Solve(m.Clone(), Options{TimeLimit: time.Microsecond, SkipNLPRelaxation: true, GridCuts: -1})
	if res.Status == Optimal {
		t.Skip("instance solved within the budget")
	}
	if res.Status != Limit {
		t.Fatalf("status = %v, want limit", res.Status)
	}
	full := Solve(m.Clone(), Options{})
	if full.Status != Optimal {
		t.Fatalf("full solve status = %v", full.Status)
	}
	if res.BestBound > full.Obj+1e-6*(1+full.Obj) {
		t.Fatalf("deadline bound %v exceeds optimum %v", res.BestBound, full.Obj)
	}
}

func TestCancelOptimalKeepsBestBound(t *testing.T) {
	w := []float64{11, 7, 5, 2}
	m, _, _ := minMaxModel(w, 25)
	res := SolveContext(context.Background(), m, Options{})
	if res.Status != Optimal {
		t.Fatalf("status = %v", res.Status)
	}
	if res.BestBound != res.Obj {
		t.Fatalf("optimal solve: BestBound %v != Obj %v", res.BestBound, res.Obj)
	}
}
