package serve

import (
	"errors"
	"testing"
	"time"
)

// TestOptionValidation: every invalid field must be rejected at New with a
// typed *OptionError naming the field — never deferred to the first request.
func TestOptionValidation(t *testing.T) {
	cases := []struct {
		field  string
		mutate func(*ServerOptions)
	}{
		{"CacheSize", func(o *ServerOptions) { o.CacheSize = 0 }},
		{"CacheSize", func(o *ServerOptions) { o.CacheSize = -4 }},
		{"MaxInFlight", func(o *ServerOptions) { o.MaxInFlight = 0 }},
		{"MaxInFlight", func(o *ServerOptions) { o.MaxInFlight = -1 }},
		{"QueueTimeout", func(o *ServerOptions) { o.QueueTimeout = -time.Second }},
		{"BatchWindow", func(o *ServerOptions) { o.BatchWindow = -time.Millisecond }},
		{"BatchWindow", func(o *ServerOptions) { o.BatchWindow = 2 * time.Minute }},
		{"DefaultDeadline", func(o *ServerOptions) { o.DefaultDeadline = -time.Second }},
		// Regression: a default deadline beyond the cap used to validate,
		// then be silently capped on every request.
		{"DefaultDeadline", func(o *ServerOptions) {
			o.MaxDeadline = time.Second
			o.DefaultDeadline = 2 * time.Second
		}},
		{"MaxDeadline", func(o *ServerOptions) { o.MaxDeadline = -time.Second }},
		{"TableCacheSize", func(o *ServerOptions) { o.TableCacheSize = -1 }},
		{"MaxTasks", func(o *ServerOptions) { o.MaxTasks = 0 }},
		{"MaxTotalNodes", func(o *ServerOptions) { o.MaxTotalNodes = -2 }},
		{"MaxBodyBytes", func(o *ServerOptions) { o.MaxBodyBytes = 0 }},
	}
	for _, tc := range cases {
		opts := DefaultOptions()
		tc.mutate(&opts)
		srv, err := New(opts)
		if srv != nil || err == nil {
			t.Fatalf("%s: New accepted invalid options (err=%v)", tc.field, err)
		}
		var oe *OptionError
		if !errors.As(err, &oe) {
			t.Fatalf("%s: error is %T, want *OptionError", tc.field, err)
		}
		if oe.Field != tc.field {
			t.Fatalf("OptionError names field %q, want %q", oe.Field, tc.field)
		}
		if oe.Error() == "" || oe.Reason == "" {
			t.Fatalf("%s: OptionError missing message/reason", tc.field)
		}
	}
}

func TestOptionValidationAccepts(t *testing.T) {
	// The defaults must be valid, and DisableCache lifts the CacheSize
	// requirement.
	srv, err := New(DefaultOptions())
	if err != nil {
		t.Fatalf("DefaultOptions rejected: %v", err)
	}
	srv.Close()

	opts := DefaultOptions()
	opts.CacheSize = 0
	opts.DisableCache = true
	srv, err = New(opts)
	if err != nil {
		t.Fatalf("DisableCache with CacheSize 0 rejected: %v", err)
	}
	if srv.cache != nil {
		t.Fatal("DisableCache server still built a cache")
	}
	srv.Close()

	// The deadline boundary cases: a default exactly at the cap, and an
	// uncapped server with any default, are both legal.
	opts = DefaultOptions()
	opts.MaxDeadline = time.Second
	opts.DefaultDeadline = time.Second
	srv, err = New(opts)
	if err != nil {
		t.Fatalf("DefaultDeadline == MaxDeadline rejected: %v", err)
	}
	srv.Close()

	opts = DefaultOptions()
	opts.DefaultDeadline = time.Hour // MaxDeadline 0 = uncapped
	srv, err = New(opts)
	if err != nil {
		t.Fatalf("DefaultDeadline with uncapped MaxDeadline rejected: %v", err)
	}
	srv.Close()
}
