package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

// newTestServer spins up a Server behind httptest; mutate tweaks the
// options (nil for defaults).
func newTestServer(t *testing.T, mutate func(*ServerOptions)) (*Server, *httptest.Server) {
	t.Helper()
	opts := DefaultOptions()
	if mutate != nil {
		mutate(&opts)
	}
	srv, err := New(opts)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() { ts.Close(); srv.Close() })
	return srv, ts
}

func postJSON(t *testing.T, url, body string) (int, http.Header, []byte) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("reading response: %v", err)
	}
	return resp.StatusCode, resp.Header, data
}

// rawResponse splits a 200 body into the byte-comparable solution block and
// the decoded meta block.
type rawResponse struct {
	Solution json.RawMessage `json:"solution"`
	Meta     MetaBody        `json:"meta"`
}

func decodeResponse(t *testing.T, data []byte) (rawResponse, SolutionBody) {
	t.Helper()
	var raw rawResponse
	if err := json.Unmarshal(data, &raw); err != nil {
		t.Fatalf("decoding response %s: %v", data, err)
	}
	var sol SolutionBody
	if err := json.Unmarshal(raw.Solution, &sol); err != nil {
		t.Fatalf("decoding solution: %v", err)
	}
	return raw, sol
}

func decodeError(t *testing.T, data []byte) ErrorDetail {
	t.Helper()
	var body ErrorBody
	if err := json.Unmarshal(data, &body); err != nil {
		t.Fatalf("decoding error body %s: %v", data, err)
	}
	return body.Error
}

const twoTaskBody = `{
  "totalNodes": 64,
  "tasks": [
    {"name": "frag-a", "params": {"a": 1200, "b": 0.004, "c": 1.1, "d": 1.5}},
    {"name": "frag-b", "params": {"a": 300, "b": 0.001, "c": 1.05, "d": 2.0}},
    {"name": "frag-c", "params": {"a": 900, "b": 0.002, "c": 1.2, "d": 0.5}}
  ]
}`

// TestEndpointsHappyPath: all three solve routes accept the same body and
// return a well-formed optimal solution; a repeat hits the cache and
// marshals to identical bytes.
func TestEndpointsHappyPath(t *testing.T) {
	srv, ts := newTestServer(t, nil)
	for _, route := range []string{"solve", "minlp", "parametric"} {
		url := ts.URL + "/v1/" + route
		status, hdr, data := postJSON(t, url, twoTaskBody)
		if status != 200 {
			t.Fatalf("%s: status %d body %s", route, status, data)
		}
		if got := hdr.Get("X-HSLB-Cache"); got != "miss" {
			t.Fatalf("%s: first request X-HSLB-Cache = %q, want miss", route, got)
		}
		raw, sol := decodeResponse(t, data)
		if raw.Meta.Cached || raw.Meta.Route != route {
			t.Fatalf("%s: meta %+v", route, raw.Meta)
		}
		if sol.Status != "optimal" {
			t.Fatalf("%s: status %q", route, sol.Status)
		}
		if len(sol.Allocation) != 3 || sol.Allocation[0].Name != "frag-a" ||
			sol.Allocation[1].Name != "frag-b" || sol.Allocation[2].Name != "frag-c" {
			t.Fatalf("%s: allocation not in request order: %+v", route, sol.Allocation)
		}
		used := 0
		maxTime := 0.0
		for _, a := range sol.Allocation {
			if a.Nodes < 1 {
				t.Fatalf("%s: task %s got %d nodes", route, a.Name, a.Nodes)
			}
			used += a.Nodes
			if a.Time > maxTime {
				maxTime = a.Time
			}
		}
		if used != sol.Used || used > 64 {
			t.Fatalf("%s: used %d (body says %d)", route, used, sol.Used)
		}
		if sol.Makespan != maxTime || sol.Objective != sol.Makespan {
			t.Fatalf("%s: makespan %v vs max time %v", route, sol.Makespan, maxTime)
		}

		status2, hdr2, data2 := postJSON(t, url, twoTaskBody)
		if status2 != 200 {
			t.Fatalf("%s repeat: status %d", route, status2)
		}
		if got := hdr2.Get("X-HSLB-Cache"); got != "hit" {
			t.Fatalf("%s repeat: X-HSLB-Cache = %q, want hit", route, got)
		}
		raw2, _ := decodeResponse(t, data2)
		if !raw2.Meta.Cached {
			t.Fatalf("%s repeat: not served from cache", route)
		}
		if !bytes.Equal(raw.Solution, raw2.Solution) {
			t.Fatalf("%s: cached solution differs:\n%s\n%s", route, raw.Solution, raw2.Solution)
		}
	}
	st := srv.Stats()
	if st.Hits != 3 || st.Misses != 3 || st.Solves != 3 || st.CacheSize != 3 {
		t.Fatalf("counters after 3×(miss+hit): %+v", st)
	}
}

func TestHealthzStatz(t *testing.T) {
	_, ts := newTestServer(t, nil)
	resp, err := http.Get(ts.URL + "/v1/healthz")
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != 200 {
		t.Fatalf("healthz: %d", resp.StatusCode)
	}
	resp.Body.Close()

	status, _, data := postJSON(t, ts.URL+"/v1/healthz", "{}")
	if status != 405 || decodeError(t, data).Code != CodeMethodNotAllowed {
		t.Fatalf("POST healthz: %d %s", status, data)
	}

	resp, err = http.Get(ts.URL + "/v1/statz")
	if err != nil {
		t.Fatal(err)
	}
	var st Stats
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatalf("statz decode: %v", err)
	}
	resp.Body.Close()

	resp, err = http.Get(ts.URL + "/v1/solve")
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != 405 {
		t.Fatalf("GET solve: %d", resp.StatusCode)
	}
	resp.Body.Close()
}

// TestMalformedRequests: every malformed body maps to a typed 400, never a
// panic or an untyped 500.
func TestMalformedRequests(t *testing.T) {
	_, ts := newTestServer(t, func(o *ServerOptions) {
		o.MaxTasks = 8
		o.MaxTotalNodes = 1 << 16
	})
	cases := []struct {
		name string
		body string
	}{
		{"empty body", ``},
		{"not json", `{"totalNodes": `},
		{"trailing data", `{"totalNodes": 4, "tasks": [{"params": {"a": 1}}]} true`},
		{"unknown field", `{"totalNodes": 4, "bogus": 1, "tasks": [{"params": {"a": 1}}]}`},
		{"no tasks", `{"totalNodes": 4, "tasks": []}`},
		{"zero nodes", `{"totalNodes": 0, "tasks": [{"params": {"a": 1}}]}`},
		{"negative nodes", `{"totalNodes": -3, "tasks": [{"params": {"a": 1}}]}`},
		{"huge nodes", `{"totalNodes": 99999999, "tasks": [{"params": {"a": 1}}]}`},
		{"too many tasks", `{"totalNodes": 4, "tasks": [` +
			strings.Repeat(`{"params": {"a": 1}},`, 8) + `{"params": {"a": 1}}]}`},
		{"bad objective", `{"totalNodes": 4, "objective": "min-avg", "tasks": [{"params": {"a": 1}}]}`},
		{"negative deadline", `{"totalNodes": 4, "deadlineMs": -5, "tasks": [{"params": {"a": 1}}]}`},
		{"nan param", `{"totalNodes": 4, "tasks": [{"params": {"a": NaN}}]}`},
		{"string param", `{"totalNodes": 4, "tasks": [{"params": {"a": "fast"}}]}`},
		{"negative param", `{"totalNodes": 4, "tasks": [{"params": {"a": -1}}]}`},
		{"params and samples", `{"totalNodes": 4, "tasks": [{"params": {"a": 1},
			"samples": [{"nodes": 1, "time": 2}]}]}`},
		{"neither params nor samples", `{"totalNodes": 4, "tasks": [{"name": "x"}]}`},
		{"bad sample", `{"totalNodes": 4, "tasks": [{"samples": [
			{"nodes": 0, "time": 2}, {"nodes": 2, "time": 1},
			{"nodes": 3, "time": 1}, {"nodes": 4, "time": 1}]}]}`},
		{"negative minNodes", `{"totalNodes": 4, "tasks": [{"params": {"a": 1}, "minNodes": -2}]}`},
		{"min above max", `{"totalNodes": 4, "tasks": [{"params": {"a": 1}, "minNodes": 3, "maxNodes": 2}]}`},
		{"unsorted allowed", `{"totalNodes": 4, "tasks": [{"params": {"a": 1}, "allowed": [4, 2]}]}`},
		{"allowed above total", `{"totalNodes": 4, "tasks": [{"params": {"a": 1}, "allowed": [2, 8]}]}`},
	}
	for _, tc := range cases {
		status, _, data := postJSON(t, ts.URL+"/v1/solve", tc.body)
		if status != 400 {
			t.Fatalf("%s: status %d body %s", tc.name, status, data)
		}
		if det := decodeError(t, data); det.Code != CodeBadRequest || det.Message == "" {
			t.Fatalf("%s: error detail %+v", tc.name, det)
		}
	}
}

func TestInsufficientSamples(t *testing.T) {
	_, ts := newTestServer(t, nil)
	body := `{"totalNodes": 16, "tasks": [{"name": "sparse", "samples": [
		{"nodes": 1, "time": 10}, {"nodes": 2, "time": 6}]}]}`
	status, _, data := postJSON(t, ts.URL+"/v1/solve", body)
	if status != 422 {
		t.Fatalf("status %d body %s", status, data)
	}
	det := decodeError(t, data)
	if det.Code != CodeInsufficientSamples || det.Task != "sparse" {
		t.Fatalf("error detail %+v", det)
	}
}

func TestSampleFittingPath(t *testing.T) {
	// A task given enough samples is fitted server-side and solved like any
	// other; the fit is seeded, so repeating the request hits the cache.
	_, ts := newTestServer(t, nil)
	body := `{"totalNodes": 32, "tasks": [
		{"name": "fitted", "samples": [
			{"nodes": 1, "time": 100}, {"nodes": 2, "time": 52},
			{"nodes": 4, "time": 27}, {"nodes": 8, "time": 15},
			{"nodes": 16, "time": 9}]},
		{"name": "direct", "params": {"a": 80, "b": 0.01, "c": 1.0, "d": 1.0}}]}`
	status, _, data := postJSON(t, ts.URL+"/v1/solve", body)
	if status != 200 {
		t.Fatalf("status %d body %s", status, data)
	}
	_, sol := decodeResponse(t, data)
	if sol.Status != "optimal" || len(sol.Allocation) != 2 {
		t.Fatalf("solution %+v", sol)
	}
	_, _, data2 := postJSON(t, ts.URL+"/v1/solve", body)
	raw2, _ := decodeResponse(t, data2)
	if !raw2.Meta.Cached {
		t.Fatal("seeded fit should canonicalize to the same key on repeat")
	}
}

func TestMinlpMaxMinUnsupported(t *testing.T) {
	_, ts := newTestServer(t, nil)
	body := `{"totalNodes": 16, "objective": "max-min", "tasks": [
		{"params": {"a": 10, "c": 1}}, {"params": {"a": 20, "c": 1}}]}`
	status, _, data := postJSON(t, ts.URL+"/v1/minlp", body)
	if status != 400 {
		t.Fatalf("status %d body %s", status, data)
	}
	if det := decodeError(t, data); det.Code != CodeUnsupported {
		t.Fatalf("error detail %+v", det)
	}
	// The automatic route handles it via the parametric fallback.
	status, _, data = postJSON(t, ts.URL+"/v1/solve", body)
	if status != 200 {
		t.Fatalf("auto route: status %d body %s", status, data)
	}
	if _, sol := decodeResponse(t, data); sol.Status != "optimal" {
		t.Fatalf("auto route solution %+v", sol)
	}
}

// bigBody builds a request large enough that a nanosecond deadline cannot
// complete the branch-and-bound proof.
func bigBody(seed int) string {
	var b strings.Builder
	fmt.Fprintf(&b, `{"totalNodes": 4096, "tasks": [`)
	for i := 0; i < 10; i++ {
		if i > 0 {
			b.WriteString(",")
		}
		fmt.Fprintf(&b, `{"params": {"a": %d, "b": 0.00%d1, "c": 1.%d, "d": %d.5}}`,
			50000+i*7919+seed*104729, i+1, (i+seed)%7+1, i%3)
	}
	b.WriteString("]}")
	return b.String()
}

// TestDeadlineExpiry: with an effectively zero deadline the service must
// degrade gracefully — a bounded incumbent with its gap, or a typed 504
// carrying the proven bound — and must never cache the deadline artifact.
func TestDeadlineExpiry(t *testing.T) {
	srv, ts := newTestServer(t, func(o *ServerOptions) {
		o.DefaultDeadline = time.Nanosecond
	})
	sawLimit := false
	optimal := 0
	for seed := 0; seed < 10 && !sawLimit; seed++ {
		status, _, data := postJSON(t, ts.URL+"/v1/solve", bigBody(seed))
		switch status {
		case 200:
			_, sol := decodeResponse(t, data)
			switch sol.Status {
			case "optimal":
				// The root relaxation happened to be integral; try another.
				optimal++
			case "bounded":
				sawLimit = true
				if sol.Gap < 0 {
					t.Fatalf("negative gap: %+v", sol)
				}
				if sol.BestBound != 0 && sol.BestBound > sol.Objective+1e-6 {
					t.Fatalf("bound above incumbent: %+v", sol)
				}
			default:
				t.Fatalf("status %q", sol.Status)
			}
		case 504:
			sawLimit = true
			det := decodeError(t, data)
			if det.Code != CodeNoIncumbent {
				t.Fatalf("504 detail %+v", det)
			}
		default:
			t.Fatalf("status %d body %s", status, data)
		}
	}
	if !sawLimit {
		t.Fatal("no instance hit the nanosecond deadline; enlarge bigBody")
	}
	if st := srv.Stats(); st.CacheSize != int64(optimal) {
		t.Fatalf("deadline artifacts leaked into the cache: %+v (optimal=%d)", st, optimal)
	}
}

// TestMaxDeadlineClamp: a huge client deadline is clamped to MaxDeadline.
func TestMaxDeadlineClamp(t *testing.T) {
	_, ts := newTestServer(t, func(o *ServerOptions) {
		o.MaxDeadline = time.Nanosecond
	})
	sawLimit := false
	for seed := 0; seed < 10 && !sawLimit; seed++ {
		body := strings.Replace(bigBody(seed), `{"totalNodes"`, `{"deadlineMs": 3600000, "totalNodes"`, 1)
		status, _, data := postJSON(t, ts.URL+"/v1/solve", body)
		if status == 504 {
			sawLimit = true
			continue
		}
		if status != 200 {
			t.Fatalf("status %d body %s", status, data)
		}
		if _, sol := decodeResponse(t, data); sol.Status == "bounded" {
			sawLimit = true
		}
	}
	if !sawLimit {
		t.Fatal("hour-long client deadline was not clamped to the server cap")
	}
}

// TestClientCancellation: a client that goes away mid-request releases its
// interest; the last-to-leave cancels the in-flight solve.
func TestClientCancellation(t *testing.T) {
	srv, ts := newTestServer(t, func(o *ServerOptions) {
		o.BatchWindow = 30 * time.Second // park the leader so timing is ours
	})
	ctx, cancel := context.WithCancel(context.Background())
	req, err := http.NewRequestWithContext(ctx, http.MethodPost,
		ts.URL+"/v1/solve", strings.NewReader(twoTaskBody))
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		resp, err := http.DefaultClient.Do(req)
		if err == nil {
			resp.Body.Close()
		}
		done <- err
	}()
	// Wait until the request has joined the flight group, then hang up.
	waitFor(t, func() bool {
		srv.flight.mu.Lock()
		defer srv.flight.mu.Unlock()
		return len(srv.flight.calls) == 1
	}, "request joined the flight group")
	cancel()
	if err := <-done; !errors.Is(err, context.Canceled) {
		t.Fatalf("client saw %v, want context.Canceled", err)
	}
	// The abandoned flight must be torn down and counted, and the leader's
	// solve context cancelled so no solver work runs for nobody.
	waitFor(t, func() bool {
		srv.flight.mu.Lock()
		defer srv.flight.mu.Unlock()
		return len(srv.flight.calls) == 0
	}, "flight group drained")
	waitFor(t, func() bool { return srv.Stats().Canceled == 1 }, "canceled counter")
	if st := srv.Stats(); st.Solves != 0 || st.CacheSize != 0 {
		t.Fatalf("abandoned request still solved: %+v", st)
	}
}

// TestCancellationReachesSolver: an already-abandoned flight context makes
// the solver return context.Canceled through SolveContext, not a result.
func TestCancellationReachesSolver(t *testing.T) {
	srv, err := New(DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	call, leader := srv.flight.join(srv.base, "k")
	if !leader {
		t.Fatal("first join must lead")
	}
	srv.flight.leave("k", call) // last waiter leaves → ctx cancelled
	req, herr := decodeSolveRequest([]byte(twoTaskBody), &srv.opts)
	if herr != nil {
		t.Fatalf("decode: %v", herr)
	}
	prob, herr := buildProblem(req)
	if herr != nil {
		t.Fatalf("build: %v", herr)
	}
	canon := canonicalize(routeSolve, prob)
	srv.runSolve(routeSolve, "k", call, canon, 0)
	<-call.done
	if !errors.Is(call.err, context.Canceled) {
		t.Fatalf("solve returned (%v, %v), want context.Canceled", call.sol, call.err)
	}
}

// TestSingleflightCollapse: concurrent identical requests share one solve.
func TestSingleflightCollapse(t *testing.T) {
	const clients = 6
	srv, ts := newTestServer(t, func(o *ServerOptions) {
		o.DisableCache = true
		o.BatchWindow = 400 * time.Millisecond
	})
	var wg sync.WaitGroup
	solutions := make([][]byte, clients)
	collapsed := make([]bool, clients)
	errs := make([]error, clients)
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, err := http.Post(ts.URL+"/v1/solve", "application/json", strings.NewReader(twoTaskBody))
			if err != nil {
				errs[i] = err
				return
			}
			defer resp.Body.Close()
			data, err := io.ReadAll(resp.Body)
			if err != nil {
				errs[i] = err
				return
			}
			if resp.StatusCode != 200 {
				errs[i] = fmt.Errorf("status %d: %s", resp.StatusCode, data)
				return
			}
			var raw rawResponse
			if err := json.Unmarshal(data, &raw); err != nil {
				errs[i] = err
				return
			}
			solutions[i] = raw.Solution
			collapsed[i] = raw.Meta.Collapsed
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("client %d: %v", i, err)
		}
	}
	nCollapsed := 0
	for i := 0; i < clients; i++ {
		if !bytes.Equal(solutions[i], solutions[0]) {
			t.Fatalf("client %d got a different solution", i)
		}
		if collapsed[i] {
			nCollapsed++
		}
	}
	st := srv.Stats()
	if st.Solves != 1 {
		t.Fatalf("%d clients caused %d solves, want 1 (stats %+v)", clients, st.Solves, st)
	}
	if st.Collapsed != clients-1 || nCollapsed != clients-1 {
		t.Fatalf("collapsed counter %d / meta count %d, want %d", st.Collapsed, nCollapsed, clients-1)
	}
	if st.Misses != clients {
		t.Fatalf("misses %d, want %d", st.Misses, clients)
	}
}

// TestQueueFull: with every solve slot taken and no queue budget, new work
// is rejected with a typed 429.
func TestQueueFull(t *testing.T) {
	srv, ts := newTestServer(t, func(o *ServerOptions) {
		o.MaxInFlight = 1
		o.QueueTimeout = 0
	})
	srv.sem <- struct{}{} // occupy the only slot
	defer func() { <-srv.sem }()
	status, _, data := postJSON(t, ts.URL+"/v1/solve", twoTaskBody)
	if status != 429 {
		t.Fatalf("status %d body %s", status, data)
	}
	if det := decodeError(t, data); det.Code != CodeQueueFull {
		t.Fatalf("error detail %+v", det)
	}
	if st := srv.Stats(); st.Rejected != 1 {
		t.Fatalf("rejected counter %+v", st)
	}
}

// TestCacheEviction: the LRU stays bounded and evicts oldest-first.
// CacheShards = 1 pins the exact global-LRU order; with striping the bound
// still holds but eviction order is per-shard (see internal/fleet tests).
func TestCacheEviction(t *testing.T) {
	srv, ts := newTestServer(t, func(o *ServerOptions) {
		o.CacheSize = 2
		o.CacheShards = 1
	})
	// Note the distinct c exponents: with c shared, a = 10 vs 20 would be an
	// exact power-of-two rescaling and correctly share one cache slot.
	bodies := []string{
		`{"totalNodes": 8, "tasks": [{"params": {"a": 10, "c": 1.0}}]}`,
		`{"totalNodes": 8, "tasks": [{"params": {"a": 20, "c": 1.1}}]}`,
		`{"totalNodes": 8, "tasks": [{"params": {"a": 30, "c": 1.2}}]}`,
	}
	for _, b := range bodies {
		postJSON(t, ts.URL+"/v1/solve", b)
	}
	if st := srv.Stats(); st.CacheSize != 2 {
		t.Fatalf("cache size %d, want 2", st.CacheSize)
	}
	// The first body was evicted: requesting it again is a miss.
	_, hdr, _ := postJSON(t, ts.URL+"/v1/solve", bodies[0])
	if hdr.Get("X-HSLB-Cache") != "miss" {
		t.Fatal("evicted entry still served from cache")
	}
	// The third is still resident.
	_, hdr, _ = postJSON(t, ts.URL+"/v1/solve", bodies[2])
	if hdr.Get("X-HSLB-Cache") != "hit" {
		t.Fatal("resident entry missed")
	}
}

// TestConcurrentClients hammers one server from many goroutines over a few
// distinct instances: all responses must succeed and agree per instance.
// Run under -race this doubles as the data-race check on cache, flight
// group, and counters.
func TestConcurrentClients(t *testing.T) {
	_, ts := newTestServer(t, func(o *ServerOptions) { o.BatchWindow = 5 * time.Millisecond })
	bodies := []string{
		twoTaskBody,
		`{"totalNodes": 32, "tasks": [{"params": {"a": 100, "b": 0.01, "c": 1.1, "d": 1}},
			{"params": {"a": 50, "c": 1}}]}`,
		`{"totalNodes": 16, "objective": "min-sum", "tasks": [{"params": {"a": 10, "c": 1}},
			{"params": {"a": 5, "c": 1}}]}`,
	}
	const perBody = 8
	var mu sync.Mutex
	first := make([][]byte, len(bodies))
	var wg sync.WaitGroup
	for bi := range bodies {
		for c := 0; c < perBody; c++ {
			wg.Add(1)
			go func(bi int) {
				defer wg.Done()
				resp, err := http.Post(ts.URL+"/v1/solve", "application/json", strings.NewReader(bodies[bi]))
				if err != nil {
					t.Errorf("body %d: %v", bi, err)
					return
				}
				defer resp.Body.Close()
				data, _ := io.ReadAll(resp.Body)
				if resp.StatusCode != 200 {
					t.Errorf("body %d: status %d: %s", bi, resp.StatusCode, data)
					return
				}
				var raw rawResponse
				if err := json.Unmarshal(data, &raw); err != nil {
					t.Errorf("body %d: %v", bi, err)
					return
				}
				mu.Lock()
				defer mu.Unlock()
				if first[bi] == nil {
					first[bi] = raw.Solution
				} else if !bytes.Equal(first[bi], raw.Solution) {
					t.Errorf("body %d: divergent solutions", bi)
				}
			}(bi)
		}
	}
	wg.Wait()
}

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, cond func() bool, what string) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}
