// Package serve is the long-running HTTP/JSON face of the HSLB solver: a
// cached, batching solve service layered on the library's
// SolveContext/RunPipelineContext APIs.
//
// Endpoints:
//
//	POST /v1/solve      — the automatic route (MINLP with parametric fallback)
//	POST /v1/minlp      — the paper's MINLP route, no fallback
//	POST /v1/parametric — the specialized parametric solver
//	GET  /v1/healthz    — liveness
//	GET  /v1/statz      — expvar-style counters (hits, misses, collapsed, ...)
//
// Repeated-query serving is where static load balancing beats dynamic
// schemes: the same instance shapes recur, so the service canonicalizes
// each instance (stable task order, normalized constraint spelling,
// power-of-two scale normalization of the cache key) and answers most
// solves from a bounded LRU cache in sub-millisecond time. Concurrent
// identical requests collapse into one solve (singleflight), admission
// control bounds the number of solver invocations in flight, and
// per-request deadlines map onto the solver's graceful degradation
// (bounded incumbent + optimality gap instead of an error).
//
// Determinism contract: the service always solves the canonical instance
// with SolverOptions.Canonical set, so the Solution block of a response is
// a pure function of the canonical instance — byte-identical whether it
// was served from cache, joined an in-flight solve, or solved fresh, and
// independent of the task order the request arrived in. See DESIGN.md
// "Service architecture".
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"runtime"
	"time"

	hslb "repro"
	"repro/internal/core"
	"repro/internal/fleet"
)

// ServerOptions tunes the service. The zero value is invalid — use
// DefaultOptions as the base — and every field is validated by New, which
// returns *OptionError at construction instead of failing at first request.
type ServerOptions struct {
	// CacheSize bounds the solution cache (entries). Must be positive
	// unless DisableCache is set.
	CacheSize int
	// CacheShards is the stripe count of the solution cache (rounded up to
	// a power of two; per-shard locks). 0 selects an automatic count from
	// GOMAXPROCS; 1 recovers the exact single-LRU eviction order. Must be
	// non-negative.
	CacheShards int
	// ShedCapacity enables the load-shedding tier: when admission control
	// would reject a solve (all slots busy, queue timeout expired), up to
	// this many concurrent requests are instead answered by the cheap
	// parametric heuristic solver and marked "degraded":true in meta —
	// tier 1 of the pressure response, with 429 as tier 2 once shed
	// capacity is also exhausted. 0 disables shedding (every admission
	// failure is a 429). Must be non-negative. Degraded answers are never
	// cached.
	ShedCapacity int
	// SelfID names this replica on the fleet's consistent-hash ring;
	// required when Peers is set, ignored otherwise. Every fleet member
	// (replicas and gateway) must use the same ID set and ring geometry.
	SelfID string
	// Peers lists the other replicas of the fleet for peer cache-fill: on
	// a cache miss the flight leader first asks the key's ring owners
	// (excluding itself) for their cached solution before spending a solve
	// slot, so replicas share solves instead of duplicating them. IDs must
	// be unique, non-empty, and distinct from SelfID.
	Peers []ReplicaSpec
	// PeerTimeout bounds each peer cache-fill probe; 0 means a 250ms
	// default. Must be non-negative. Probes are best-effort: any error or
	// timeout falls through to a normal solve.
	PeerTimeout time.Duration
	// SnapshotPath, when non-empty, is where LoadSnapshotFile/
	// SaveSnapshotFile persist the solution cache across restarts (used by
	// cmd/hslbd's -snapshot flag; the Server itself never touches the path
	// spontaneously).
	SnapshotPath string
	// TableCacheSize bounds the parametric breakpoint-table cache
	// (families). When positive, every proven-optimal min-max solve also
	// certifies the budget bracket on which its allocation is constant
	// (two extra verification solves per bracket), and later requests for
	// the same task family at any budget inside a certified bracket are
	// answered at cache-hit cost without solving. 0 disables tables; must
	// be non-negative.
	TableCacheSize int
	// DisableCache turns the solution cache off (every request solves);
	// the differential test harness uses this as its reference server.
	DisableCache bool
	// MaxInFlight bounds concurrently running solver invocations; must be
	// positive. Cache hits are not counted — they do not solve.
	MaxInFlight int
	// QueueTimeout is how long a request waits for a free solve slot
	// before being rejected with 429; 0 rejects immediately when
	// saturated. Must be non-negative.
	QueueTimeout time.Duration
	// BatchWindow delays each leader solve by this much so that bursts of
	// identical requests collapse into it (singleflight batching); 0
	// disables the delay. Must be non-negative.
	BatchWindow time.Duration
	// DefaultDeadline applies to requests that set no deadlineMs; 0 means
	// unlimited. Must be non-negative.
	DefaultDeadline time.Duration
	// MaxDeadline caps per-request deadlines (0 = uncapped). Must be
	// non-negative.
	MaxDeadline time.Duration
	// MaxTasks / MaxTotalNodes / MaxBodyBytes reject oversized requests
	// at the door. All must be positive.
	MaxTasks      int
	MaxTotalNodes int
	MaxBodyBytes  int64
	// Parallelism is forwarded to SolverOptions.Parallelism for every
	// solve (0 = one worker per CPU, negative = serial). Any value is
	// valid; results are bit-identical regardless.
	Parallelism int
}

// DefaultOptions is the recommended starting configuration.
func DefaultOptions() ServerOptions {
	return ServerOptions{
		CacheSize:     4096,
		CacheShards:   0, // automatic power-of-two stripe count
		MaxInFlight:   runtime.GOMAXPROCS(0),
		QueueTimeout:  2 * time.Second,
		BatchWindow:   0,
		MaxTasks:      4096,
		MaxTotalNodes: 1 << 20,
		MaxBodyBytes:  4 << 20,
	}
}

// ReplicaSpec names one fleet member: a stable ID (the consistent-hash
// ring identity) and the base URL its HTTP interface listens on.
type ReplicaSpec struct {
	ID  string
	URL string
}

// OptionError reports an invalid ServerOptions field at construction time.
type OptionError struct {
	Field  string
	Value  interface{}
	Reason string
}

func (e *OptionError) Error() string {
	return fmt.Sprintf("serve: invalid ServerOptions.%s = %v: %s", e.Field, e.Value, e.Reason)
}

// Validate checks every field; New calls it so a misconfigured server can
// never start serving.
func (o *ServerOptions) Validate() error {
	if !o.DisableCache && o.CacheSize <= 0 {
		return &OptionError{Field: "CacheSize", Value: o.CacheSize,
			Reason: "must be positive (or set DisableCache)"}
	}
	if o.TableCacheSize < 0 {
		return &OptionError{Field: "TableCacheSize", Value: o.TableCacheSize,
			Reason: "must be non-negative (0 disables parametric tables)"}
	}
	if o.CacheShards < 0 {
		return &OptionError{Field: "CacheShards", Value: o.CacheShards,
			Reason: "must be non-negative (0 selects the automatic stripe count)"}
	}
	if o.ShedCapacity < 0 {
		return &OptionError{Field: "ShedCapacity", Value: o.ShedCapacity,
			Reason: "must be non-negative (0 disables load shedding)"}
	}
	if o.PeerTimeout < 0 {
		return &OptionError{Field: "PeerTimeout", Value: o.PeerTimeout,
			Reason: "must be non-negative"}
	}
	if len(o.Peers) > 0 {
		if o.SelfID == "" {
			return &OptionError{Field: "SelfID", Value: o.SelfID,
				Reason: "required when Peers is set (this replica must be on the ring)"}
		}
		seen := map[string]bool{o.SelfID: true}
		for _, p := range o.Peers {
			if p.ID == "" || p.URL == "" {
				return &OptionError{Field: "Peers", Value: p,
					Reason: "every peer needs a non-empty ID and URL"}
			}
			if seen[p.ID] {
				return &OptionError{Field: "Peers", Value: p.ID,
					Reason: "peer IDs must be unique and distinct from SelfID"}
			}
			seen[p.ID] = true
		}
	}
	if o.MaxInFlight <= 0 {
		return &OptionError{Field: "MaxInFlight", Value: o.MaxInFlight, Reason: "must be positive"}
	}
	if o.QueueTimeout < 0 {
		return &OptionError{Field: "QueueTimeout", Value: o.QueueTimeout, Reason: "must be non-negative"}
	}
	if o.BatchWindow < 0 {
		return &OptionError{Field: "BatchWindow", Value: o.BatchWindow, Reason: "must be non-negative"}
	}
	if o.BatchWindow > time.Minute {
		return &OptionError{Field: "BatchWindow", Value: o.BatchWindow,
			Reason: "batching beyond a minute holds solve slots idle; configure a cache instead"}
	}
	if o.DefaultDeadline < 0 {
		return &OptionError{Field: "DefaultDeadline", Value: o.DefaultDeadline, Reason: "must be non-negative"}
	}
	if o.MaxDeadline < 0 {
		return &OptionError{Field: "MaxDeadline", Value: o.MaxDeadline, Reason: "must be non-negative"}
	}
	if o.MaxDeadline > 0 && o.DefaultDeadline > o.MaxDeadline {
		return &OptionError{Field: "DefaultDeadline", Value: o.DefaultDeadline,
			Reason: "must not exceed MaxDeadline (the default would be silently capped on every request)"}
	}
	if o.MaxTasks <= 0 {
		return &OptionError{Field: "MaxTasks", Value: o.MaxTasks, Reason: "must be positive"}
	}
	if o.MaxTotalNodes <= 0 {
		return &OptionError{Field: "MaxTotalNodes", Value: o.MaxTotalNodes, Reason: "must be positive"}
	}
	if o.MaxBodyBytes <= 0 {
		return &OptionError{Field: "MaxBodyBytes", Value: o.MaxBodyBytes, Reason: "must be positive"}
	}
	return nil
}

// Server is the solve service. Create with New, expose via Handler, stop
// with Close (which cancels all in-flight solves).
type Server struct {
	opts    ServerOptions
	cache   *solutionCache // nil when disabled
	tables  *tableCache    // nil when disabled (TableCacheSize == 0)
	flight  *flightGroup
	sem     chan struct{}
	shedSem chan struct{} // nil when shedding disabled
	stats   counters
	mux     *http.ServeMux

	// Peer cache-fill state (nil / empty without Peers): the fleet ring
	// over SelfID + peer IDs, the peer base URLs, and the probe client.
	ring       *fleet.Ring
	peerURL    map[string]string
	peerClient *http.Client

	base   context.Context
	cancel context.CancelFunc
}

// New validates opts and builds a Server.
func New(opts ServerOptions) (*Server, error) {
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	s := &Server{
		opts:   opts,
		flight: newFlightGroup(),
		sem:    make(chan struct{}, opts.MaxInFlight),
		mux:    http.NewServeMux(),
	}
	if !opts.DisableCache {
		s.cache = newSolutionCache(opts.CacheSize, opts.CacheShards)
	}
	if opts.TableCacheSize > 0 {
		s.tables = newTableCache(opts.TableCacheSize)
	}
	if opts.ShedCapacity > 0 {
		s.shedSem = make(chan struct{}, opts.ShedCapacity)
	}
	if len(opts.Peers) > 0 {
		s.ring = fleet.NewRing(fleet.DefaultVNodes)
		s.ring.Add(opts.SelfID)
		s.peerURL = make(map[string]string, len(opts.Peers))
		for _, p := range opts.Peers {
			s.ring.Add(p.ID)
			s.peerURL[p.ID] = p.URL
		}
		to := opts.PeerTimeout
		if to == 0 {
			to = 250 * time.Millisecond
		}
		s.peerClient = &http.Client{Timeout: to}
	}
	s.base, s.cancel = context.WithCancel(context.Background())
	s.mux.HandleFunc("/v1/solve", s.solveHandler(routeSolve))
	s.mux.HandleFunc("/v1/minlp", s.solveHandler(routeMINLP))
	s.mux.HandleFunc("/v1/parametric", s.solveHandler(routeParametric))
	s.mux.HandleFunc("/v1/healthz", s.handleHealthz)
	s.mux.HandleFunc("/v1/statz", s.handleStatz)
	s.mux.HandleFunc("/v1/peerfill", s.handlePeerFill)
	return s, nil
}

// Handler returns the service's HTTP handler.
func (s *Server) Handler() http.Handler { return s.mux }

// Close cancels every in-flight solve. The server must not serve new
// requests afterwards.
func (s *Server) Close() { s.cancel() }

// Stats snapshots the service counters.
func (s *Server) Stats() Stats {
	n, shards := 0, 0
	if s.cache != nil {
		n, shards = s.cache.Len(), s.cache.ShardCount()
	}
	fams, segs := 0, 0
	if s.tables != nil {
		fams, segs = s.tables.len(), s.tables.segments()
	}
	return s.stats.snapshot(n, shards, fams, segs)
}

// Solver routes. The route is part of both the cache key and the flight
// key: the routes tie-break alternate optima differently.
const (
	routeSolve      = "solve"
	routeMINLP      = "minlp"
	routeParametric = "parametric"
)

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, &httpError{status: 405, body: ErrorBody{ErrorDetail{
			Code: CodeMethodNotAllowed, Message: "use GET"}}})
		return
	}
	writeJSON(w, 200, map[string]interface{}{
		"status":   "ok",
		"inFlight": s.stats.inFlight.Load(),
	})
}

func (s *Server) handleStatz(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, &httpError{status: 405, body: ErrorBody{ErrorDetail{
			Code: CodeMethodNotAllowed, Message: "use GET"}}})
		return
	}
	writeJSON(w, 200, s.Stats())
}

// solveHandler builds the POST handler of one solver route. The pipeline
// is: decode → validate → fit samples → canonicalize → cache → singleflight
// → admission control → solve → render against the requesting instance.
func (s *Server) solveHandler(route string) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			writeError(w, &httpError{status: 405, body: ErrorBody{ErrorDetail{
				Code: CodeMethodNotAllowed, Message: "use POST"}}})
			return
		}
		s.stats.requests.Add(1)
		body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, s.opts.MaxBodyBytes))
		if err != nil {
			writeError(w, badRequest("reading body: %v", err))
			return
		}
		req, herr := decodeSolveRequest(body, &s.opts)
		if herr != nil {
			writeError(w, herr)
			return
		}
		prob, herr := buildProblem(req)
		if herr != nil {
			writeError(w, herr)
			return
		}
		if route == routeMINLP && prob.Objective == core.MaxMin {
			writeError(w, mapSolveError(core.ErrObjectiveUnsupported))
			return
		}

		canon := canonicalize(route, prob)
		meta := MetaBody{Route: route}

		// Fast path: the canonical instance was solved before.
		if s.cache != nil {
			if sol, ok := s.cache.Get(canon.key); ok {
				s.stats.hits.Add(1)
				meta.Cached = true
				writeSolution(w, prob, canon, sol, meta, "hit")
				return
			}
		}
		// Second fast path: this exact budget was never solved, but an
		// earlier solve of the same task family certified a breakpoint
		// bracket covering it. The hit is promoted into the per-budget
		// cache so repeats of this budget take the first fast path.
		if s.tables != nil {
			if sol, ok := s.tables.lookup(canon.tkey, canon.prob.TotalNodes); ok {
				s.stats.tableHits.Add(1)
				meta.TableHit = true
				if s.cache != nil {
					s.cache.Put(canon.key, sol)
				}
				writeSolution(w, prob, canon, sol, meta, "table")
				return
			}
		}
		s.stats.misses.Add(1)

		deadline := s.effectiveDeadline(req.DeadlineMs)
		flightKey := fmt.Sprintf("%s|%d", canon.key, deadline)
		call, leader := s.flight.join(s.base, flightKey)
		if leader {
			go s.runSolve(route, flightKey, call, canon, deadline)
		} else {
			s.stats.collapsed.Add(1)
			meta.Collapsed = true
		}

		select {
		case <-call.done:
		case <-r.Context().Done():
			s.flight.leave(flightKey, call)
			s.stats.canceled.Add(1)
			// The client is gone; this write is best-effort.
			writeError(w, &httpError{status: 499, body: ErrorBody{ErrorDetail{
				Code: CodeCanceled, Message: "client closed request"}}})
			return
		}
		s.flight.leave(flightKey, call)
		if call.err != nil {
			if he, ok := call.err.(*httpError); ok {
				// Typed admission rejection. rejected is a request-scoped
				// counter, so every waiter bounced by the shared flight
				// counts, not just the leader (which used to under-count
				// collapsed rejections).
				if he.body.Error.Code == CodeQueueFull {
					s.stats.rejected.Add(1)
				}
				writeError(w, he)
				return
			}
			if errors.Is(call.err, context.Canceled) {
				// The solve was abandoned (all waiters left) or the server is
				// shutting down; either way this write is best-effort.
				writeError(w, &httpError{status: 499, body: ErrorBody{ErrorDetail{
					Code: CodeCanceled, Message: "solve canceled"}}})
				return
			}
			// solveErrors is flight-scoped and was already counted by the
			// leader in runSolve (counting here double-counted one failed
			// solve once per collapsed waiter).
			writeError(w, mapSolveError(call.err))
			return
		}
		sol := call.sol
		if sol.bounded {
			s.stats.bounded.Add(1)
		}
		state := "miss"
		switch call.via {
		case viaShed:
			// Tier-1 pressure response: the admission gate was saturated and
			// the flight was downgraded to the parametric heuristic answer.
			// Marked so clients (and the load harness) can tell a degraded
			// answer from the route's real one.
			meta.Degraded = true
			state = "shed"
			s.stats.degraded.Add(1)
		case viaPeer:
			meta.PeerFill = true
			state = "peer"
		}
		writeSolution(w, prob, canon, sol, meta, state)
	}
}

// effectiveDeadline resolves a request's deadlineMs against the server's
// default and cap.
func (s *Server) effectiveDeadline(deadlineMs int64) time.Duration {
	d := time.Duration(deadlineMs) * time.Millisecond
	if d == 0 {
		d = s.opts.DefaultDeadline
	}
	if s.opts.MaxDeadline > 0 && (d == 0 || d > s.opts.MaxDeadline) {
		d = s.opts.MaxDeadline
	}
	return d
}

// runSolve is the leader goroutine of one flight: batch-window wait, peer
// cache-fill probe, admission control (with the load-shedding downgrade on
// saturation), solve, publish, cache.
func (s *Server) runSolve(route, flightKey string, call *flightCall, canon *canonical, deadline time.Duration) {
	if s.opts.BatchWindow > 0 {
		t := time.NewTimer(s.opts.BatchWindow)
		select {
		case <-t.C:
		case <-call.ctx.Done():
			t.Stop()
			s.flight.complete(flightKey, call, nil, call.ctx.Err())
			return
		}
	}

	// Peer cache-fill: before spending a solve slot, ask the key's ring
	// owners whether they already hold the canonical solution. A hit costs
	// one small GET instead of a solve; any failure falls through.
	if s.ring != nil {
		if sol := s.peerFill(call.ctx, canon.key); sol != nil {
			if s.cache != nil {
				s.cache.Put(canon.key, sol)
			}
			call.via = viaPeer
			s.flight.complete(flightKey, call, sol, nil)
			return
		}
	}

	// Admission: one slot per running solve, bounded queue wait. On
	// saturation, tier 1 of the pressure response downgrades the flight to
	// the parametric heuristic (tryShed); tier 2 — shedding disabled or
	// shed capacity also exhausted — is the 429.
	var queue <-chan time.Time
	if s.opts.QueueTimeout > 0 {
		t := time.NewTimer(s.opts.QueueTimeout)
		defer t.Stop()
		queue = t.C
	}
	select {
	case s.sem <- struct{}{}:
	default:
		admitted := false
		if queue != nil {
			select {
			case s.sem <- struct{}{}:
				admitted = true
			case <-queue:
			case <-call.ctx.Done():
				s.flight.complete(flightKey, call, nil, call.ctx.Err())
				return
			}
		}
		if !admitted {
			if s.tryShed(route, flightKey, call, canon) {
				return
			}
			// rejected is counted per waiter in solveHandler.
			s.flight.complete(flightKey, call, nil, errQueueFull)
			return
		}
	}
	defer func() { <-s.sem }()

	s.stats.solves.Add(1)
	s.stats.inFlight.Add(1)
	alloc, err := s.dispatch(call.ctx, route, canon.prob, deadline)
	s.stats.inFlight.Add(-1)
	if err == nil && alloc.Bounded && call.ctx.Err() != nil {
		// The graceful solver contract turns mid-solve cancellation into a
		// bounded incumbent; for the service that is a cancellation
		// artifact (abandoned flight or shutdown), not a publishable
		// result — a deadline-bounded incumbent has ctx.Err() == nil.
		err = call.ctx.Err()
	}
	if err != nil {
		if !errors.Is(err, context.Canceled) {
			// Flight-scoped: one failed dispatch counts once, however many
			// collapsed waiters observe it.
			s.stats.solveErrors.Add(1)
		}
		s.flight.complete(flightKey, call, nil, err)
		return
	}
	s.stats.pivots.Add(int64(alloc.Pivots))
	sol := fromAllocation(alloc)
	if s.cache != nil && !sol.bounded {
		// Only proven-optimal solutions are replayable; a bounded
		// incumbent is whatever the deadline happened to allow.
		s.cache.Put(canon.key, sol)
	}
	s.flight.complete(flightKey, call, sol, nil)
	// Waiters are unblocked; spend this flight's admission slot certifying
	// the breakpoint bracket around this budget before releasing it.
	if !sol.bounded {
		s.maybeExtendTable(route, canon, alloc, sol, deadline)
	}
}

// maybeExtendTable turns one proven-optimal solve into a verified
// breakpoint bracket: SegmentBounds yields the analytic budget range on
// which the allocation is provably constant, the far endpoints of that
// range are re-solved with the same route solver, and only a bracket whose
// endpoints bit-match the claim is stored. Runs on the flight leader after
// waiters are unblocked, still inside the admission slot, so verification
// work is bounded the same way as request work.
func (s *Server) maybeExtendTable(route string, canon *canonical, alloc *core.Allocation, sol *canonSolution, deadline time.Duration) {
	if s.tables == nil {
		return
	}
	n := canon.prob.TotalNodes
	if _, ok := s.tables.lookup(canon.tkey, n); ok {
		return // some bracket already covers this budget
	}
	lo, hi, ok := canon.prob.SegmentBounds(alloc, s.opts.MaxTotalNodes)
	if !ok || hi <= lo {
		// Non-analytic shape or a width-1 bracket: the per-budget cache
		// already serves repeats, a table adds nothing.
		return
	}
	ctx := s.base
	if deadline > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(s.base, deadline)
		defer cancel()
	}
	verify := func(m int) bool {
		if m == n {
			return true
		}
		s.stats.solves.Add(1)
		s.stats.tableSolves.Add(1)
		va, err := s.dispatch(ctx, route, canon.prob.WithBudget(m), deadline)
		if err != nil || va.Bounded {
			return false // could not certify (deadline/shutdown); not a conflict
		}
		s.stats.pivots.Add(int64(va.Pivots))
		if va.Makespan != alloc.Makespan {
			s.stats.tableConflicts.Add(1)
			return false
		}
		for i := range alloc.Nodes {
			if va.Nodes[i] != alloc.Nodes[i] {
				s.stats.tableConflicts.Add(1)
				return false
			}
		}
		return true
	}
	if !verify(lo) || !verify(hi) {
		return
	}
	s.tables.insert(canon.tkey, lo, hi, sol)
}

// dispatch runs the route's solver on the canonical instance. Canonical
// tie-breaking is always on: it is what makes responses a pure function of
// the canonical instance.
func (s *Server) dispatch(ctx context.Context, route string, p *core.Problem, deadline time.Duration) (*core.Allocation, error) {
	opts := core.SolverOptions{
		Deadline:    deadline,
		Parallelism: s.opts.Parallelism,
		Canonical:   true,
	}
	switch route {
	case routeMINLP:
		return p.SolveMINLPContext(ctx, opts)
	case routeParametric:
		a, err := p.SolveParametricContext(ctx)
		if err != nil {
			return nil, err
		}
		return p.CanonicalAllocation(a), nil
	default:
		return hslb.SolveContext(ctx, p, opts)
	}
}

var errQueueFull = &httpError{status: 429, body: ErrorBody{ErrorDetail{
	Code: CodeQueueFull, Message: "all solve slots busy and the queue timeout expired"}}}

// writeSolution renders and writes the 200 response.
func writeSolution(w http.ResponseWriter, p *core.Problem, canon *canonical, sol *canonSolution, meta MetaBody, cacheState string) {
	meta.SolverNodes = sol.solverNodes
	meta.LPSolves = sol.lpSolves
	meta.OACuts = sol.oaCuts
	meta.Pivots = sol.pivots
	w.Header().Set("X-HSLB-Cache", cacheState)
	writeJSON(w, 200, SolveResponse{Solution: buildSolution(p, canon, sol), Meta: meta})
}

func writeError(w http.ResponseWriter, e *httpError) {
	writeJSON(w, e.status, e.body)
}

func writeJSON(w http.ResponseWriter, status int, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	_ = enc.Encode(v)
}
