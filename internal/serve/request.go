package serve

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"math"

	hslb "repro"
	"repro/internal/core"
	"repro/internal/perfmodel"
)

// SolveRequest is the JSON body of the /v1/solve, /v1/minlp, and
// /v1/parametric endpoints. Each task carries either fitted performance
// coefficients (params) or raw benchmark samples (samples) to be fitted
// server-side — exactly one of the two.
type SolveRequest struct {
	Tasks       []TaskRequest `json:"tasks"`
	TotalNodes  int           `json:"totalNodes"`
	Objective   string        `json:"objective,omitempty"`   // default "min-max"
	UseAllNodes bool          `json:"useAllNodes,omitempty"` // require Σ n = N
	// DeadlineMs bounds the solve wall clock; on expiry the best incumbent
	// is served with bounded=true and its optimality gap (see
	// SolverOptions.Deadline). 0 means the server's default.
	DeadlineMs int64 `json:"deadlineMs,omitempty"`
	// FitSeed seeds the multistart fit of sample-bearing tasks (default 1);
	// ignored for tasks that already carry params.
	FitSeed uint64 `json:"fitSeed,omitempty"`
}

// TaskRequest is one task of a SolveRequest.
type TaskRequest struct {
	Name     string             `json:"name,omitempty"`
	Params   *ParamsRequest     `json:"params,omitempty"`
	Samples  []perfmodel.Sample `json:"samples,omitempty"`
	MinNodes int                `json:"minNodes,omitempty"`
	MaxNodes int                `json:"maxNodes,omitempty"`
	Allowed  []int              `json:"allowed,omitempty"`
}

// ParamsRequest mirrors perfmodel.Params: T(n) = a/n + b·n^c + d.
type ParamsRequest struct {
	A float64 `json:"a"`
	B float64 `json:"b"`
	C float64 `json:"c"`
	D float64 `json:"d"`
}

// Error codes of the typed error body. Stable API surface: clients switch
// on these, not on message text.
const (
	CodeBadRequest          = "bad_request"
	CodeInsufficientSamples = "insufficient_samples"
	CodeNoIncumbent         = "no_incumbent"
	CodeUnsupported         = "objective_unsupported"
	CodeQueueFull           = "queue_full"
	CodeCanceled            = "canceled"
	CodeMethodNotAllowed    = "method_not_allowed"
	CodeInternal            = "internal"
	// CodeNotFound is the /v1/peerfill miss: the asked-for canonical key is
	// not in this replica's cache.
	CodeNotFound = "not_found"
	// CodeReplicaUnavailable is the gateway's "no replica answered": the
	// key's owner and its failover both failed at the transport level.
	CodeReplicaUnavailable = "replica_unavailable"
)

// ErrorBody is the typed JSON error envelope: {"error": {...}}.
type ErrorBody struct {
	Error ErrorDetail `json:"error"`
}

// ErrorDetail names the failure. Task and BestBound are populated when the
// underlying typed error carries them (InsufficientSamplesError names the
// offending task; NoIncumbentError proves a bound even when no feasible
// point was found).
type ErrorDetail struct {
	Code      string   `json:"code"`
	Message   string   `json:"message"`
	Task      string   `json:"task,omitempty"`
	BestBound *float64 `json:"bestBound,omitempty"`
}

// httpError is the handler-internal error carrying its HTTP mapping.
type httpError struct {
	status int
	body   ErrorBody
}

func (e *httpError) Error() string { return e.body.Error.Message }

func badRequest(format string, args ...interface{}) *httpError {
	return &httpError{status: 400, body: ErrorBody{ErrorDetail{
		Code: CodeBadRequest, Message: fmt.Sprintf(format, args...),
	}}}
}

// decodeSolveRequest parses and validates a request body. It is a pure
// function of its inputs (fuzzed by FuzzRequestDecode) and must reject —
// never panic on — arbitrary bytes: NaN/Inf coefficient spellings, negative
// counts, and budgets beyond opts.MaxTotalNodes all return typed errors.
func decodeSolveRequest(data []byte, opts *ServerOptions) (*SolveRequest, *httpError) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var req SolveRequest
	if err := dec.Decode(&req); err != nil {
		return nil, badRequest("malformed JSON: %v", err)
	}
	if dec.More() {
		return nil, badRequest("trailing data after JSON body")
	}
	if len(req.Tasks) == 0 {
		return nil, badRequest("tasks must be non-empty")
	}
	if len(req.Tasks) > opts.MaxTasks {
		return nil, badRequest("too many tasks: %d (server limit %d)", len(req.Tasks), opts.MaxTasks)
	}
	if req.TotalNodes <= 0 {
		return nil, badRequest("totalNodes must be positive, got %d", req.TotalNodes)
	}
	if req.TotalNodes > opts.MaxTotalNodes {
		return nil, badRequest("totalNodes %d exceeds the server limit %d", req.TotalNodes, opts.MaxTotalNodes)
	}
	if req.DeadlineMs < 0 {
		return nil, badRequest("deadlineMs must be non-negative, got %d", req.DeadlineMs)
	}
	if req.Objective == "" {
		req.Objective = "min-max"
	}
	if _, err := core.ParseObjective(req.Objective); err != nil {
		return nil, badRequest("%v", err)
	}
	for i := range req.Tasks {
		if herr := validateTask(i, &req.Tasks[i], req.TotalNodes); herr != nil {
			return nil, herr
		}
	}
	return &req, nil
}

func validateTask(i int, t *TaskRequest, total int) *httpError {
	name := t.Name
	if name == "" {
		name = fmt.Sprintf("task[%d]", i)
	}
	if (t.Params == nil) == (len(t.Samples) == 0) {
		return badRequest("task %s: exactly one of params and samples is required", name)
	}
	if t.Params != nil {
		for _, f := range []struct {
			n string
			v float64
		}{{"a", t.Params.A}, {"b", t.Params.B}, {"c", t.Params.C}, {"d", t.Params.D}} {
			if math.IsNaN(f.v) || math.IsInf(f.v, 0) || f.v < 0 {
				return badRequest("task %s: params.%s must be finite and non-negative, got %v", name, f.n, f.v)
			}
		}
	}
	for _, s := range t.Samples {
		if !(s.Nodes >= 1) || math.IsInf(s.Nodes, 0) ||
			!(s.Time > 0) || math.IsInf(s.Time, 0) {
			return badRequest("task %s: samples need nodes ≥ 1 and time > 0, got (%v, %v)", name, s.Nodes, s.Time)
		}
	}
	if t.MinNodes < 0 || t.MaxNodes < 0 {
		return badRequest("task %s: minNodes/maxNodes must be non-negative", name)
	}
	if t.MaxNodes > 0 && t.MinNodes > t.MaxNodes {
		return badRequest("task %s: minNodes %d exceeds maxNodes %d", name, t.MinNodes, t.MaxNodes)
	}
	for k, n := range t.Allowed {
		if n < 1 {
			return badRequest("task %s: allowed counts must be ≥ 1, got %d", name, n)
		}
		if k > 0 && n <= t.Allowed[k-1] {
			return badRequest("task %s: allowed set must be strictly increasing", name)
		}
		if n > total {
			return badRequest("task %s: allowed count %d exceeds totalNodes %d", name, n, total)
		}
	}
	return nil
}

// buildProblem turns a validated request into a core.Problem in request
// task order, fitting sample-bearing tasks with a deterministic seed. A
// task with fewer than four surviving samples maps the pipeline's
// *InsufficientSamplesError onto HTTP 422.
func buildProblem(req *SolveRequest) (*core.Problem, *httpError) {
	obj, err := core.ParseObjective(req.Objective)
	if err != nil {
		return nil, badRequest("%v", err)
	}
	p := &core.Problem{TotalNodes: req.TotalNodes, Objective: obj, UseAllNodes: req.UseAllNodes}
	p.Tasks = make([]core.Task, len(req.Tasks))
	for i := range req.Tasks {
		rt := &req.Tasks[i]
		name := rt.Name
		if name == "" {
			name = fmt.Sprintf("task[%d]", i)
		}
		t := core.Task{Name: name, MinNodes: rt.MinNodes, MaxNodes: rt.MaxNodes}
		if rt.Allowed != nil {
			t.Allowed = append([]int(nil), rt.Allowed...)
		}
		if rt.Params != nil {
			t.Perf = perfmodel.Params{A: rt.Params.A, B: rt.Params.B, C: rt.Params.C, D: rt.Params.D}
		} else {
			if len(rt.Samples) < 4 {
				ierr := &hslb.InsufficientSamplesError{Task: name, Got: len(rt.Samples), Need: 4}
				return nil, &httpError{status: 422, body: ErrorBody{ErrorDetail{
					Code: CodeInsufficientSamples, Message: ierr.Error(), Task: name,
				}}}
			}
			seed := req.FitSeed
			if seed == 0 {
				seed = 1
			}
			fit, err := perfmodel.Fit(rt.Samples, perfmodel.FitOptions{Seed: seed, Parallelism: -1})
			if err != nil {
				return nil, badRequest("task %s: fit failed: %v", name, err)
			}
			t.Perf = fit.Params
		}
		p.Tasks[i] = t
	}
	if err := p.Validate(); err != nil {
		return nil, badRequest("%v", err)
	}
	return p, nil
}

// canonSolution is the route-independent essence of a solved canonical
// instance: the canonical-order node vector, the limit flags, and the
// solver diagnostics. Predicted times are recomputed per request (see
// lruCache), so they never appear here. Only unbounded (proven-optimal)
// values are cached; bounded ones flow through the singleflight group to
// their waiters and are then dropped.
type canonSolution struct {
	nodes     []int
	bounded   bool
	bestBound float64
	gap       float64

	solverNodes int
	lpSolves    int
	oaCuts      int
	pivots      int
}

// SolutionBody is the deterministic part of a solve response: everything in
// it is a pure function of the canonical instance, so a cached response and
// a cache-disabled solve of the same instance marshal to identical bytes.
type SolutionBody struct {
	Status     string      `json:"status"` // "optimal" or "bounded"
	Objective  float64     `json:"objective"`
	Allocation []TaskAlloc `json:"allocation"`
	Makespan   float64     `json:"makespan"`
	MinTime    float64     `json:"minTime"`
	SumTime    float64     `json:"sumTime"`
	Imbalance  float64     `json:"imbalance"`
	Used       int         `json:"used"`
	// BestBound/Gap are only meaningful for bounded responses; an unproven
	// bound (-Inf) or infinite gap is reported as absent (JSON cannot
	// carry Inf), with status "bounded" signalling "no proven bound".
	BestBound float64 `json:"bestBound,omitempty"`
	Gap       float64 `json:"gap,omitempty"`
}

// TaskAlloc is one task's share of the allocation, in request task order
// with request names.
type TaskAlloc struct {
	Name  string  `json:"name"`
	Nodes int     `json:"nodes"`
	Time  float64 `json:"time"`
}

// MetaBody carries the per-response serving metadata; unlike SolutionBody
// it may legitimately differ between a cached and a fresh response.
type MetaBody struct {
	Cached    bool `json:"cached"`
	Collapsed bool `json:"collapsed,omitempty"` // joined another request's solve
	// TableHit marks a response served from a verified parametric
	// breakpoint bracket: this exact budget was never solved, but the
	// allocation is certified constant across a bracket containing it.
	TableHit bool `json:"tableHit,omitempty"`
	// Degraded marks a load-shed response: admission was saturated and this
	// answer came from the parametric heuristic instead of the route's real
	// solver. Clients that need the route's exact optimum should retry later.
	Degraded bool `json:"degraded,omitempty"`
	// PeerFill marks a response whose solution was pulled from a fleet
	// peer's cache instead of being solved locally.
	PeerFill    bool   `json:"peerFill,omitempty"`
	Route       string `json:"route"`
	SolverNodes int    `json:"solverNodes,omitempty"`
	LPSolves    int    `json:"lpSolves,omitempty"`
	OACuts      int    `json:"oaCuts,omitempty"`
	Pivots      int    `json:"pivots,omitempty"`
}

// SolveResponse is the full response envelope.
type SolveResponse struct {
	Solution SolutionBody `json:"solution"`
	Meta     MetaBody     `json:"meta"`
}

// buildSolution renders a canonical solution against the requesting
// instance: nodes are un-permuted into request order and all derived
// quantities are re-evaluated on the request's own problem, which makes the
// body bit-identical to what a direct, uncached solve of this exact request
// would report.
func buildSolution(p *core.Problem, c *canonical, sol *canonSolution) SolutionBody {
	nodes := c.unpermute(sol.nodes)
	a := p.Evaluate(nodes)
	body := SolutionBody{
		Status:    "optimal",
		Objective: p.ObjectiveValue(a),
		Makespan:  a.Makespan,
		MinTime:   a.MinTime,
		SumTime:   a.SumTime,
		Imbalance: a.Imbalance,
		Used:      a.Used,
	}
	if sol.bounded {
		body.Status = "bounded"
		if !math.IsInf(sol.bestBound, 0) && !math.IsNaN(sol.bestBound) {
			body.BestBound = sol.bestBound
		}
		if !math.IsInf(sol.gap, 0) && !math.IsNaN(sol.gap) {
			body.Gap = sol.gap
		}
	}
	body.Allocation = make([]TaskAlloc, len(nodes))
	for i := range nodes {
		body.Allocation[i] = TaskAlloc{Name: p.Tasks[i].Name, Nodes: nodes[i], Time: a.Times[i]}
	}
	return body
}

// fromAllocation extracts the canonical solution from a solver allocation
// (which is in canonical task order, since the service always solves the
// canonicalized instance).
func fromAllocation(a *core.Allocation) *canonSolution {
	return &canonSolution{
		nodes:       append([]int(nil), a.Nodes...),
		bounded:     a.Bounded,
		bestBound:   a.BestBound,
		gap:         a.Gap,
		solverNodes: a.SolverNodes,
		lpSolves:    a.LPSolves,
		oaCuts:      a.OACuts,
		pivots:      a.Pivots,
	}
}

// mapSolveError converts solver errors into their typed HTTP form.
func mapSolveError(err error) *httpError {
	var noInc *core.NoIncumbentError
	switch {
	case errors.As(err, &noInc):
		det := ErrorDetail{Code: CodeNoIncumbent, Message: err.Error()}
		if !math.IsInf(noInc.BestBound, 0) && !math.IsNaN(noInc.BestBound) {
			bb := noInc.BestBound
			det.BestBound = &bb
		}
		return &httpError{status: 504, body: ErrorBody{det}}
	case errors.Is(err, core.ErrObjectiveUnsupported):
		return &httpError{status: 400, body: ErrorBody{ErrorDetail{
			Code: CodeUnsupported, Message: err.Error(),
		}}}
	default:
		return &httpError{status: 500, body: ErrorBody{ErrorDetail{
			Code: CodeInternal, Message: err.Error(),
		}}}
	}
}
