package serve

import (
	"repro/internal/fleet"
)

// The solution cache is a striped LRU (fleet.ShardedLRU): per-shard locks
// with a power-of-two stripe count, replacing the single-mutex LRU that
// served PRs 5–9. At one process the mutex was never the bottleneck next
// to multi-millisecond solves; at fleet scale the cache front-runs every
// request — including the sub-millisecond hits that dominate under Zipf
// traffic — and a single lock serializes exactly the path that should be
// embarrassingly parallel. Keys stay the scale-canonical SHA-256 instance
// hashes (canon.go), so shard selection is uniform by construction.
//
// Semantics preserved from the single-mutex cache: bounded entry count
// (exact — capacity is split across shards without rounding up), only
// proven-optimal canonical solutions are stored, and a hit refreshes
// recency. Eviction is LRU per shard rather than globally; with uniform
// keys this is the textbook approximation, and CacheShards=1 recovers the
// exact global-LRU order (pinned by TestCacheEviction).
type solutionCache = fleet.ShardedLRU[*canonSolution]

// newSolutionCache builds the striped cache; shards <= 0 selects the
// automatic stripe count (see fleet.DefaultShards).
func newSolutionCache(capacity, shards int) *solutionCache {
	return fleet.NewShardedLRU[*canonSolution](capacity, shards)
}
