package serve

import (
	"container/list"
	"sync"
)

// lruCache is a bounded, mutex-guarded LRU map from canonical key to
// solution. It is deliberately simple: the solve service's working set is
// "the instance shapes currently recurring in traffic", for which plain LRU
// is the textbook fit, and a single mutex is never the bottleneck next to
// multi-millisecond solves.
type lruCache struct {
	mu    sync.Mutex
	cap   int
	m     map[string]*list.Element
	order *list.List // front = most recently used
}

type lruEntry struct {
	key string
	sol *canonSolution
}

func newLRUCache(capacity int) *lruCache {
	return &lruCache{cap: capacity, m: make(map[string]*list.Element), order: list.New()}
}

// get returns the cached solution for key and marks it most recently used.
func (c *lruCache) get(key string) (*canonSolution, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.m[key]
	if !ok {
		return nil, false
	}
	c.order.MoveToFront(el)
	return el.Value.(*lruEntry).sol, true
}

// put inserts (or refreshes) key, evicting the least recently used entry
// when the cache is full.
func (c *lruCache) put(key string, sol *canonSolution) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.m[key]; ok {
		el.Value.(*lruEntry).sol = sol
		c.order.MoveToFront(el)
		return
	}
	c.m[key] = c.order.PushFront(&lruEntry{key: key, sol: sol})
	for c.order.Len() > c.cap {
		oldest := c.order.Back()
		c.order.Remove(oldest)
		delete(c.m, oldest.Value.(*lruEntry).key)
	}
}

// len reports the current entry count.
func (c *lruCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}
