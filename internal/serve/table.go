package serve

import (
	"container/list"
	"sort"
	"sync"
)

// tableCache maps a parametric family key (canonical.tkey) to that family's
// breakpoint table: the set of verified node-budget brackets on which the
// optimal allocation is known to be constant. It lets the service answer a
// /v1/solve or /v1/parametric request at a budget it has never seen at
// cache-hit cost, as long as some earlier solve of the same family proved a
// segment covering it.
//
// Soundness is layered exactly like the core engine's table builder
// (core.BuildParametricTable): the theoretical segment around a solved
// budget comes from core.Problem.SegmentBounds — an analytic claim — but
// the service only ever serves from a bracket whose far endpoints it has
// re-solved with the same route solver and bit-compared against the claim
// (see Server.maybeExtendTable). A disagreement is counted (tableConflicts)
// and the bracket is discarded, so a theory bug degrades to cache misses,
// never to wrong answers. The ~1000-instance differential gate in
// table_diff_test.go enforces bit-identity of table-served responses
// against a cache-disabled reference server.
type tableCache struct {
	mu    sync.Mutex
	cap   int
	m     map[string]*list.Element
	order *list.List // front = most recently used
}

// tableEntry is one family's table: verified brackets sorted by lo,
// non-overlapping.
type tableEntry struct {
	tkey string
	segs []tableSeg
}

// tableSeg is one verified bracket [lo, hi] (inclusive, in TotalNodes) on
// which the canonical solution is constant. Both endpoints have been
// re-solved by the route solver; interior budgets rest on the SegmentBounds
// claim plus the differential gate.
type tableSeg struct {
	lo, hi int
	sol    *canonSolution
}

func newTableCache(capacity int) *tableCache {
	return &tableCache{cap: capacity, m: make(map[string]*list.Element), order: list.New()}
}

// lookup returns the family's solution at budget n if a verified bracket
// covers it, marking the family most recently used.
func (c *tableCache) lookup(tkey string, n int) (*canonSolution, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.m[tkey]
	if !ok {
		return nil, false
	}
	c.order.MoveToFront(el)
	segs := el.Value.(*tableEntry).segs
	i := sort.Search(len(segs), func(i int) bool { return segs[i].hi >= n })
	if i < len(segs) && segs[i].lo <= n {
		return segs[i].sol, true
	}
	return nil, false
}

// insert records a verified bracket for the family, evicting the least
// recently used family when the cache is full. Brackets that overlap an
// existing one are dropped: within one family overlapping brackets must
// carry the same solution anyway (both were verified), so the first claim
// wins and the structure stays trivially non-overlapping.
func (c *tableCache) insert(tkey string, lo, hi int, sol *canonSolution) {
	if lo > hi || sol == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.m[tkey]
	if !ok {
		el = c.order.PushFront(&tableEntry{tkey: tkey})
		c.m[tkey] = el
		for c.order.Len() > c.cap {
			oldest := c.order.Back()
			c.order.Remove(oldest)
			delete(c.m, oldest.Value.(*tableEntry).tkey)
		}
	} else {
		c.order.MoveToFront(el)
	}
	e := el.Value.(*tableEntry)
	i := sort.Search(len(e.segs), func(i int) bool { return e.segs[i].hi >= lo })
	if i < len(e.segs) && e.segs[i].lo <= hi {
		return // overlaps an existing verified bracket
	}
	e.segs = append(e.segs, tableSeg{})
	copy(e.segs[i+1:], e.segs[i:])
	e.segs[i] = tableSeg{lo: lo, hi: hi, sol: sol}
}

// len reports the number of families currently holding a table.
func (c *tableCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}

// segments reports the total verified-bracket count across all families
// (diagnostics only).
func (c *tableCache) segments() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := 0
	for el := c.order.Front(); el != nil; el = el.Next() {
		n += len(el.Value.(*tableEntry).segs)
	}
	return n
}
