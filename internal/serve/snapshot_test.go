package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math/rand"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

// TestSnapshotRoundTrip: a warmed cache snapshotted and loaded into a
// fresh server serves the same instances as cache hits with byte-identical
// solution blocks.
func TestSnapshotRoundTrip(t *testing.T) {
	srv, ts := newTestServer(t, nil)
	rng := rand.New(rand.NewSource(42))
	bodies := make([]string, 6)
	want := make([][]byte, len(bodies))
	for i := range bodies {
		bodies[i] = requestFromProblem(randomCanonProblem(rng))
		_, _, want[i], _ = postRaw(t, ts.URL+"/v1/solve", bodies[i])
	}

	var buf bytes.Buffer
	if err := srv.SaveSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	srv2, ts2 := newTestServer(t, nil)
	loaded, dropped, err := srv2.LoadSnapshot(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if loaded != len(bodies) || dropped != 0 {
		t.Fatalf("loaded %d dropped %d, want %d/0", loaded, dropped, len(bodies))
	}
	for i, b := range bodies {
		_, meta, sol, _ := postRaw(t, ts2.URL+"/v1/solve", b)
		if !meta.Cached {
			t.Fatalf("body %d: warmed server missed", i)
		}
		if !bytes.Equal(sol, want[i]) {
			t.Fatalf("body %d: warmed response diverges\nwarm: %s\nlive: %s", i, sol, want[i])
		}
	}
	if st := srv2.Stats(); st.SnapshotLoaded != int64(len(bodies)) || st.SnapshotDropped != 0 || st.Solves != 0 {
		t.Fatalf("warmup counters: %+v", st)
	}
}

// TestSnapshotStaleEngineDropped is the regression test for snapshot
// re-validation: a snapshot recorded under a different engine fingerprint
// (i.e. any change to the LP tolerance configuration) must be dropped
// wholesale — replaying solutions across solver configurations would break
// the byte-identity contract silently.
func TestSnapshotStaleEngineDropped(t *testing.T) {
	srv, ts := newTestServer(t, nil)
	postRaw(t, ts.URL+"/v1/solve", twoTaskBody)
	var buf bytes.Buffer
	if err := srv.SaveSnapshot(&buf); err != nil {
		t.Fatal(err)
	}

	// Rewrite the header as if an older engine had written the file.
	lines := strings.SplitN(buf.String(), "\n", 2)
	var hdr snapshotHeader
	if err := json.Unmarshal([]byte(lines[0]), &hdr); err != nil {
		t.Fatal(err)
	}
	hdr.Engine = "lptol-0000000000000000"
	stale, _ := json.Marshal(hdr)
	doctored := string(stale) + "\n" + lines[1]

	srv2, ts2 := newTestServer(t, nil)
	loaded, dropped, err := srv2.LoadSnapshot(strings.NewReader(doctored))
	if err != nil {
		t.Fatal(err)
	}
	if loaded != 0 || dropped != 1 {
		t.Fatalf("stale snapshot: loaded %d dropped %d, want 0/1", loaded, dropped)
	}
	if st := srv2.Stats(); st.SnapshotDropped != 1 || st.CacheSize != 0 {
		t.Fatalf("stale entries reached the cache: %+v", st)
	}
	_, meta, _, _ := postRaw(t, ts2.URL+"/v1/solve", twoTaskBody)
	if meta.Cached {
		t.Fatal("request served from a stale-engine snapshot entry")
	}

	// An unrecognized schema is not a snapshot at all.
	if _, _, err := srv2.LoadSnapshot(strings.NewReader(`{"schema":"bogus/9"}` + "\n")); err == nil {
		t.Fatal("bogus schema accepted")
	}
}

// TestSnapshotEntryValidation: malformed lines, corrupt keys, and invalid
// node vectors are dropped individually without poisoning the rest.
func TestSnapshotEntryValidation(t *testing.T) {
	srv, ts := newTestServer(t, nil)
	postRaw(t, ts.URL+"/v1/solve", twoTaskBody)
	var buf bytes.Buffer
	if err := srv.SaveSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	doctored := buf.String() +
		"this is not json\n" +
		`{"key":"zz","sol":{"nodes":[1]}}` + "\n" + // key not a hex sha-256
		fmt.Sprintf(`{"key":%q,"sol":{"nodes":[]}}`, strings.Repeat("a", 64)) + "\n" + // empty vector
		fmt.Sprintf(`{"key":%q,"sol":{"nodes":[0,-3]}}`, strings.Repeat("b", 64)) + "\n" // non-positive counts

	srv2, _ := newTestServer(t, nil)
	loaded, dropped, err := srv2.LoadSnapshot(strings.NewReader(doctored))
	if err != nil {
		t.Fatal(err)
	}
	if loaded != 1 || dropped != 4 {
		t.Fatalf("loaded %d dropped %d, want 1/4", loaded, dropped)
	}
}

// TestSnapshotFiles: the SnapshotPath round trip, including the
// missing-file cold start.
func TestSnapshotFiles(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cache.snap")
	srv, ts := newTestServer(t, func(o *ServerOptions) { o.SnapshotPath = path })
	if loaded, dropped, err := srv.LoadSnapshotFile(); err != nil || loaded != 0 || dropped != 0 {
		t.Fatalf("cold start: %d/%d, %v", loaded, dropped, err)
	}
	postRaw(t, ts.URL+"/v1/solve", twoTaskBody)
	if err := srv.SaveSnapshotFile(); err != nil {
		t.Fatal(err)
	}
	srv2, ts2 := newTestServer(t, func(o *ServerOptions) { o.SnapshotPath = path })
	if loaded, _, err := srv2.LoadSnapshotFile(); err != nil || loaded != 1 {
		t.Fatalf("warm boot: loaded %d, %v", loaded, err)
	}
	_, meta, _, _ := postRaw(t, ts2.URL+"/v1/solve", twoTaskBody)
	if !meta.Cached {
		t.Fatal("warm boot did not serve from the snapshot")
	}
	if srv3, _ := newTestServer(t, nil); srv3.SaveSnapshotFile() == nil {
		t.Fatal("SaveSnapshotFile without a SnapshotPath must fail")
	}
}

// TestSnapshotUnderConcurrency exercises snapshot save/load racing live
// cache traffic; meaningful under -race (short tier).
func TestSnapshotUnderConcurrency(t *testing.T) {
	srv, err := New(DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	// Seed keys directly through the cache (no HTTP: this is a pure
	// data-race exercise of Range vs Put/Get vs LoadSnapshot).
	sol := &canonSolution{nodes: []int{1, 2}}
	keyOf := func(i int) string { return fmt.Sprintf("%064x", i) }
	for i := 0; i < 64; i++ {
		srv.cache.Put(keyOf(i), sol)
	}
	var base bytes.Buffer
	if err := srv.SaveSnapshot(&base); err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				switch (i + w) % 3 {
				case 0:
					srv.cache.Put(keyOf(i%128), sol)
				case 1:
					srv.cache.Get(keyOf(i % 128))
				default:
					var buf bytes.Buffer
					if err := srv.SaveSnapshot(&buf); err != nil {
						t.Errorf("save: %v", err)
						return
					}
				}
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 20; i++ {
			if _, _, err := srv.LoadSnapshot(bytes.NewReader(base.Bytes())); err != nil {
				t.Errorf("load: %v", err)
				return
			}
		}
	}()
	wg.Wait()
}
