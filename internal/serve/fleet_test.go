package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math/rand"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	hslb "repro"
	"repro/internal/core"
)

// fleetHarness is a running N-replica fleet behind one gateway: each
// replica peers with the other N-1 for cache fill, and the gateway routes
// by canonical key over the same ring.
type fleetHarness struct {
	servers  []*Server
	tss      []*httptest.Server
	specs    []ReplicaSpec
	handlers []http.Handler // indirection so a replica can be "restarted"
	gw       *Gateway
	gwTS     *httptest.Server
}

// newFleet builds the harness. The handler indirection exists for the
// chaos test: closing tss[i] kills the replica, and re-serving handlers[i]
// (or a fresh Server's handler) on the same address restarts it.
func newFleet(t *testing.T, n int, mutate func(i int, o *ServerOptions)) *fleetHarness {
	t.Helper()
	h := &fleetHarness{
		servers:  make([]*Server, n),
		tss:      make([]*httptest.Server, n),
		specs:    make([]ReplicaSpec, n),
		handlers: make([]http.Handler, n),
	}
	for i := 0; i < n; i++ {
		i := i
		h.tss[i] = httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			h.handlers[i].ServeHTTP(w, r)
		}))
		h.specs[i] = ReplicaSpec{ID: fmt.Sprintf("r%d", i), URL: h.tss[i].URL}
	}
	for i := 0; i < n; i++ {
		opts := DefaultOptions()
		// Local httptest peers are fast, but a parallel test run can stall a
		// probe past the 250ms production default; the tests are about
		// correctness, not probe latency.
		opts.PeerTimeout = 2 * time.Second
		opts.SelfID = h.specs[i].ID
		for j, spec := range h.specs {
			if j != i {
				opts.Peers = append(opts.Peers, spec)
			}
		}
		if mutate != nil {
			mutate(i, &opts)
		}
		srv, err := New(opts)
		if err != nil {
			t.Fatalf("replica %d: %v", i, err)
		}
		h.servers[i] = srv
		h.handlers[i] = srv.Handler()
	}
	gw, err := NewGateway(GatewayOptions{Replicas: h.specs})
	if err != nil {
		t.Fatalf("NewGateway: %v", err)
	}
	h.gw = gw
	h.gwTS = httptest.NewServer(gw.Handler())
	t.Cleanup(func() {
		h.gwTS.Close()
		for i := range h.tss {
			h.tss[i].Close()
			h.servers[i].Close()
		}
	})
	return h
}

// replicaIndex maps an X-HSLB-Replica header back to the harness index.
func (h *fleetHarness) replicaIndex(t *testing.T, id string) int {
	t.Helper()
	for i, spec := range h.specs {
		if spec.ID == id {
			return i
		}
	}
	t.Fatalf("unknown replica id %q", id)
	return -1
}

// postOwner posts a body through the gateway and reports which replica
// answered.
func postOwner(t *testing.T, h *fleetHarness, route, body string) (MetaBody, []byte, int) {
	t.Helper()
	resp, err := http.Post(h.gwTS.URL+"/v1/"+route, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST via gateway: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("gateway status %d", resp.StatusCode)
	}
	var raw rawResponse
	data := mustReadAll(t, resp)
	mustUnmarshal(t, data, &raw)
	return raw.Meta, raw.Solution, h.replicaIndex(t, resp.Header.Get("X-HSLB-Replica"))
}

func mustReadAll(t *testing.T, resp *http.Response) []byte {
	t.Helper()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func mustUnmarshal(t *testing.T, data []byte, v interface{}) {
	t.Helper()
	if err := json.Unmarshal(data, v); err != nil {
		t.Fatalf("decode %s: %v", data, err)
	}
}

// TestReplicatedDifferential is the fleet-scale differential battery: a
// ~1000-check sweep asserting that a 3-replica consistent-hash fleet
// behind the gateway, a single-process server, and the direct library
// agree byte-for-byte on every instance — across the cache/table/shedding
// ablations (even trials run on a plain-cache fleet, odd trials on a fleet
// with parametric tables and the shed tier armed) and across permuted and
// power-of-two-rescaled request spellings.
func TestReplicatedDifferential(t *testing.T) {
	trials := 250 // ≥1000 byte-comparisons: ~4+ checks per trial
	if testing.Short() {
		trials = 30
	}

	plain := newFleet(t, 3, nil)
	ablated := newFleet(t, 3, func(i int, o *ServerOptions) {
		o.TableCacheSize = 8
		o.ShedCapacity = 2
	})
	fleets := []*fleetHarness{plain, ablated}

	_, singleTS := newTestServer(t, nil)

	rng := rand.New(rand.NewSource(20260808))
	checks := 0
	failures := 0
	peerFills := 0
	for trial := 0; trial < trials; trial++ {
		p := randomCanonProblem(rng)
		switch trial % 5 {
		case 3:
			p.Objective = core.MinSum
		case 4:
			p.Objective = core.MaxMin
		}
		fleet := fleets[trial%2]

		perm, _ := permuteProblem(rng, p)
		e := rng.Intn(13) - 6
		if e == 0 {
			e = 3
		}
		variants := []*core.Problem{p, perm, scaleProblem(perm, e)}

		var ownerIdx int
		skip := false
		for vi, v := range variants {
			if skip {
				continue
			}
			body := requestFromProblem(v)
			resp, err := http.Post(fleet.gwTS.URL+"/v1/solve", "application/json", strings.NewReader(body))
			if err != nil {
				t.Fatalf("trial %d variant %d: %v", trial, vi, err)
			}
			data := mustReadAll(t, resp)
			status := resp.StatusCode
			replica := resp.Header.Get("X-HSLB-Replica")
			resp.Body.Close()

			refStatus, _, refSol, refData := postRaw(t, singleTS.URL+"/v1/solve", body)
			if status != 200 && vi == 0 {
				// A rejected request (random instances can carry allowed
				// counts beyond the budget) or a rare solver failure: the
				// whole stack must fail identically, byte for byte.
				if refStatus != status || !bytes.Equal(data, refData) {
					t.Fatalf("trial %d: fleet and single-process servers disagree on failure (%d vs %d):\n%s\n%s",
						trial, status, refStatus, data, refData)
				}
				if status == 500 {
					failures++
				}
				checks++
				skip = true
				continue
			}
			if status != 200 || refStatus != 200 {
				t.Fatalf("trial %d variant %d: gateway %d, single %d: %s", trial, vi, status, refStatus, data)
			}
			var raw rawResponse
			mustUnmarshal(t, data, &raw)
			if vi == 0 {
				ownerIdx = fleet.replicaIndex(t, replica)
			} else {
				// Canonical routing: every spelling lands on the owner and
				// hits its cache.
				if got := fleet.replicaIndex(t, replica); got != ownerIdx {
					t.Fatalf("trial %d variant %d routed to replica %d, owner is %d", trial, vi, got, ownerIdx)
				}
				if !raw.Meta.Cached {
					t.Fatalf("trial %d variant %d missed the owner's cache (meta %+v)", trial, vi, raw.Meta)
				}
			}
			if !bytes.Equal(raw.Solution, refSol) {
				t.Fatalf("trial %d variant %d: fleet diverges from single-process server\nfleet:  %s\nsingle: %s",
					trial, vi, raw.Solution, refSol)
			}
			checks++
		}
		if skip {
			continue
		}

		// Peer cache-fill differential: ask a non-owner replica directly.
		// Its local miss must be answered from the owner's cache (PeerFill)
		// with the identical bytes, without solving.
		other := (ownerIdx + 1) % len(fleet.servers)
		body := requestFromProblem(p)
		_, meta, sol, data := postRaw(t, fleet.tss[other].URL+"/v1/solve", body)
		if !meta.PeerFill && !meta.Cached {
			t.Fatalf("trial %d: non-owner replica solved locally instead of peer-filling (meta %+v, %s)", trial, meta, data)
		}
		if meta.PeerFill {
			peerFills++
		}
		_, _, refSol, _ := postRaw(t, singleTS.URL+"/v1/solve", body)
		if !bytes.Equal(sol, refSol) {
			t.Fatalf("trial %d: peer-filled response diverges\npeer:   %s\nsingle: %s", trial, sol, refSol)
		}
		checks++

		// Direct-library comparison (the canonical polish pins a unique
		// optimum only for the MinMax family).
		if p.Objective == core.MinMax && !p.UseAllNodes {
			var bodySol SolutionBody
			mustUnmarshal(t, sol, &bodySol)
			direct, err := hslb.Solve(p, hslb.SolverOptions{Canonical: true})
			if err != nil {
				t.Fatalf("trial %d: direct solve: %v", trial, err)
			}
			for i := range p.Tasks {
				if bodySol.Allocation[i].Nodes != direct.Nodes[i] || bodySol.Allocation[i].Time != direct.Times[i] {
					t.Fatalf("trial %d task %d: fleet (%d, %v) vs direct (%d, %v)", trial, i,
						bodySol.Allocation[i].Nodes, bodySol.Allocation[i].Time, direct.Nodes[i], direct.Times[i])
				}
			}
			if bodySol.Makespan != direct.Makespan {
				t.Fatalf("trial %d: makespan %v vs direct %v", trial, bodySol.Makespan, direct.Makespan)
			}
			checks++
		}
	}

	if failures*20 > trials {
		t.Fatalf("%d/%d trials hit solver failures — no longer rare", failures, trials)
	}
	if !testing.Short() && checks < 1000 {
		t.Fatalf("only %d byte-comparisons ran, want ≥ 1000", checks)
	}
	if peerFills == 0 {
		t.Fatal("no peer cache-fills happened — the fleet never shared a solve")
	}
	// Work conservation per fleet: each non-failed trial solved exactly
	// once across its three replicas (variants hit the owner's cache, the
	// non-owner peer-filled); table-bracket verification solves are the
	// only extra dispatches.
	for fi, fleet := range fleets {
		var solves, tableSolves, peerHits int64
		for _, srv := range fleet.servers {
			st := srv.Stats()
			solves += st.Solves
			tableSolves += st.TableSolves
			peerHits += st.PeerHits
		}
		fleetTrials := trials / 2
		if fi < trials%2 {
			fleetTrials++
		}
		if got := solves - tableSolves; got > int64(fleetTrials) {
			t.Fatalf("fleet %d: %d request solves for %d trials — replicas duplicated work", fi, got, fleetTrials)
		}
		if peerHits == 0 {
			t.Fatalf("fleet %d: no peer cache-fill hits", fi)
		}
	}
	t.Logf("replicated differential: %d trials, %d byte-comparisons, %d peer fills, %d solver failures",
		trials, checks, peerFills, failures)
}

// TestPeerFillCounterAudit extends the singleflight counter audit to the
// peer-fill path: a batch of identical requests collapsing onto one flight
// on a non-owner replica costs exactly one peer probe and zero solves,
// while the request-scoped counters move once per request.
func TestPeerFillCounterAudit(t *testing.T) {
	h := newFleet(t, 2, func(i int, o *ServerOptions) {
		if i == 1 {
			o.BatchWindow = 300 * time.Millisecond
		}
	})
	// Seed the owner (replica 0) directly so its cache holds the key.
	_, _, seedSol, _ := postRaw(t, h.tss[0].URL+"/v1/solve", twoTaskBody)

	const clients = 4
	var start, wg sync.WaitGroup
	start.Add(1)
	sols := make([][]byte, clients)
	metas := make([]MetaBody, clients)
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			start.Wait()
			_, meta, sol, _ := postRaw(t, h.tss[1].URL+"/v1/solve", twoTaskBody)
			sols[i], metas[i] = sol, meta
		}(i)
	}
	start.Done()
	wg.Wait()
	for i := 0; i < clients; i++ {
		if !metas[i].PeerFill {
			t.Fatalf("client %d: not peer-filled (meta %+v)", i, metas[i])
		}
		if !bytes.Equal(sols[i], seedSol) {
			t.Fatalf("client %d: peer-filled bytes diverge from the owner's", i)
		}
	}
	st := h.servers[1].Stats()
	if st.Requests != clients || st.Misses != clients {
		t.Fatalf("request-scoped counters: %+v, want requests=misses=%d", st, clients)
	}
	if st.Collapsed != clients-1 {
		t.Fatalf("collapsed = %d, want %d", st.Collapsed, clients-1)
	}
	if st.PeerChecks != 1 || st.PeerHits != 1 {
		t.Fatalf("flight-scoped peer counters: %+v, want peerChecks=peerHits=1", st)
	}
	if st.Solves != 0 || st.PeerErrors != 0 {
		t.Fatalf("peer-filled flight must not solve: %+v", st)
	}
	// The fill was cached: the next request is a plain local hit.
	_, meta, _, _ := postRaw(t, h.tss[1].URL+"/v1/solve", twoTaskBody)
	if !meta.Cached {
		t.Fatalf("peer-filled solution was not cached locally (meta %+v)", meta)
	}
}

// TestShedDegradedAnswer pins tier 1 of the pressure response: with every
// solve slot taken and shed capacity armed, a request gets the parametric
// heuristic answer marked degraded — byte-identical in its solution block
// to the /v1/parametric route's answer for the same instance — and the
// degraded answer is never cached, so the next uncontended request gets
// the route's real solve.
func TestShedDegradedAnswer(t *testing.T) {
	srv, ts := newTestServer(t, func(o *ServerOptions) {
		o.MaxInFlight = 1
		o.QueueTimeout = 0
		o.ShedCapacity = 2
	})
	_, refTS := newTestServer(t, nil)

	srv.sem <- struct{}{} // saturate admission
	status, hdr, data := postJSON(t, ts.URL+"/v1/solve", twoTaskBody)
	if status != 200 {
		t.Fatalf("shed request: status %d body %s", status, data)
	}
	if hdr.Get("X-HSLB-Cache") != "shed" {
		t.Fatalf("X-HSLB-Cache = %q, want shed", hdr.Get("X-HSLB-Cache"))
	}
	raw, _ := decodeResponse(t, data)
	if !raw.Meta.Degraded {
		t.Fatalf("meta not marked degraded: %+v", raw.Meta)
	}
	// The degraded solution block is exactly the parametric route's.
	_, _, refSol, _ := postRaw(t, refTS.URL+"/v1/parametric", twoTaskBody)
	if !bytes.Equal(raw.Solution, refSol) {
		t.Fatalf("degraded answer diverges from the parametric route\nshed:       %s\nparametric: %s", raw.Solution, refSol)
	}
	st := srv.Stats()
	if st.Sheds != 1 || st.Degraded != 1 || st.Solves != 0 || st.Rejected != 0 {
		t.Fatalf("shed counters: %+v, want sheds=degraded=1, solves=rejected=0", st)
	}
	if st.CacheSize != 0 {
		t.Fatal("degraded answer was cached")
	}

	// Slot released: the same instance now gets the real route answer,
	// solved fresh (the shed left no cache entry behind).
	<-srv.sem
	_, hdr, data = postJSON(t, ts.URL+"/v1/solve", twoTaskBody)
	if hdr.Get("X-HSLB-Cache") != "miss" {
		t.Fatalf("post-shed request X-HSLB-Cache = %q, want miss", hdr.Get("X-HSLB-Cache"))
	}
	raw, _ = decodeResponse(t, data)
	if raw.Meta.Degraded {
		t.Fatalf("uncontended request still degraded: %+v", raw.Meta)
	}
}

// TestShedTierTo429: tier 2 — when shed capacity is itself exhausted the
// typed 429 comes back, and with shedding disabled (the default) the 429
// is immediate, preserving the pre-fleet admission contract.
func TestShedTierTo429(t *testing.T) {
	srv, ts := newTestServer(t, func(o *ServerOptions) {
		o.MaxInFlight = 1
		o.QueueTimeout = 0
		o.ShedCapacity = 1
	})
	srv.sem <- struct{}{}     // saturate admission
	srv.shedSem <- struct{}{} // and shed capacity
	status, _, data := postJSON(t, ts.URL+"/v1/solve", twoTaskBody)
	if status != 429 {
		t.Fatalf("status %d body %s", status, data)
	}
	if det := decodeError(t, data); det.Code != CodeQueueFull {
		t.Fatalf("error %+v", det)
	}
	st := srv.Stats()
	if st.Sheds != 0 || st.Degraded != 0 || st.Rejected != 1 {
		t.Fatalf("tier-2 counters: %+v", st)
	}
}

// TestShedCounterAudit: the shed is flight-scoped, the degraded verdict is
// request-scoped — a batch collapsing onto one shed flight runs the
// heuristic once and marks every waiter degraded.
func TestShedCounterAudit(t *testing.T) {
	srv, ts := newTestServer(t, func(o *ServerOptions) {
		o.MaxInFlight = 1
		o.QueueTimeout = 0
		o.ShedCapacity = 1
		o.BatchWindow = 300 * time.Millisecond
	})
	srv.sem <- struct{}{}
	defer func() { <-srv.sem }()

	const clients = 4
	var start, wg sync.WaitGroup
	start.Add(1)
	degraded := make([]bool, clients)
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			start.Wait()
			_, meta, _, _ := postRaw(t, ts.URL+"/v1/solve", twoTaskBody)
			degraded[i] = meta.Degraded
		}(i)
	}
	start.Done()
	wg.Wait()
	for i, d := range degraded {
		if !d {
			t.Fatalf("client %d: answer not degraded", i)
		}
	}
	st := srv.Stats()
	if st.Sheds != 1 {
		t.Fatalf("sheds = %d, want 1 (flight-scoped)", st.Sheds)
	}
	if st.Degraded != clients {
		t.Fatalf("degraded = %d, want %d (request-scoped)", st.Degraded, clients)
	}
	if st.Solves != 0 || st.Collapsed != clients-1 {
		t.Fatalf("counters: %+v", st)
	}
}

// TestGatewayChaos kills the replica that owns an instance while requests
// are in flight: the gateway must fail over to the second ring owner and
// return byte-identical answers, counting each transport failure exactly
// once; after the replica restarts (cold) on the same address, routing
// returns to it and it refills from its peers.
func TestGatewayChaos(t *testing.T) {
	h := newFleet(t, 3, nil)
	// Baseline through the healthy fleet.
	meta, want, ownerIdx := postOwner(t, h, "solve", twoTaskBody)
	if meta.Cached {
		t.Fatalf("first request cached: %+v", meta)
	}

	// Kill the owner with prejudice.
	addr := h.tss[ownerIdx].Listener.Addr().String()
	h.tss[ownerIdx].CloseClientConnections()
	h.tss[ownerIdx].Close()

	const clients = 4
	var start, wg sync.WaitGroup
	start.Add(1)
	sols := make([][]byte, clients)
	idxs := make([]int, clients)
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			start.Wait()
			_, sols[i], idxs[i] = postOwner(t, h, "solve", twoTaskBody)
		}(i)
	}
	start.Done()
	wg.Wait()
	for i := 0; i < clients; i++ {
		if idxs[i] == ownerIdx {
			t.Fatalf("client %d: answered by the dead replica", i)
		}
		if !bytes.Equal(sols[i], want) {
			t.Fatalf("client %d: failover answer diverges\nfailover: %s\nhealthy:  %s", i, sols[i], want)
		}
	}
	gst := h.gw.Stats()
	if gst.Retries != clients {
		t.Fatalf("retries = %d, want %d (exactly one failover per request)", gst.Retries, clients)
	}
	if gst.Unavailable != 0 {
		t.Fatalf("unavailable = %d, want 0 (the failover replica was healthy)", gst.Unavailable)
	}

	// Restart: a fresh, cold replica on the same address under the same
	// ring identity. Routing returns to it, and its first answer is a peer
	// cache-fill from the failover replica that solved during the outage.
	opts := DefaultOptions()
	opts.SelfID = h.specs[ownerIdx].ID
	for j, spec := range h.specs {
		if j != ownerIdx {
			opts.Peers = append(opts.Peers, spec)
		}
	}
	fresh, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	defer fresh.Close()
	h.handlers[ownerIdx] = fresh.Handler()
	var l net.Listener
	deadline := time.Now().Add(5 * time.Second)
	for {
		l, err = net.Listen("tcp", addr)
		if err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("restarting replica on %s: %v", addr, err)
		}
		time.Sleep(50 * time.Millisecond)
	}
	hs := &http.Server{Handler: http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		h.handlers[ownerIdx].ServeHTTP(w, r)
	})}
	go hs.Serve(l)
	defer hs.Close()

	meta, sol, idx := postOwner(t, h, "solve", twoTaskBody)
	if idx != ownerIdx {
		t.Fatalf("after restart, request routed to %d, owner is %d", idx, ownerIdx)
	}
	if !meta.PeerFill {
		t.Fatalf("restarted replica did not peer-fill (meta %+v)", meta)
	}
	if !bytes.Equal(sol, want) {
		t.Fatalf("post-restart answer diverges\nrestart: %s\nhealthy: %s", sol, want)
	}
	if g2 := h.gw.Stats(); g2.Retries != gst.Retries {
		t.Fatalf("restart added retries: %d → %d", gst.Retries, g2.Retries)
	}
}

// TestGatewayAllReplicasDown: when the owner and its failover are both
// unreachable the gateway answers a typed 502 and counts it once.
func TestGatewayAllReplicasDown(t *testing.T) {
	h := newFleet(t, 2, nil)
	h.tss[0].Close()
	h.tss[1].Close()
	status, _, data := postJSON(t, h.gwTS.URL+"/v1/solve", twoTaskBody)
	if status != 502 {
		t.Fatalf("status %d body %s", status, data)
	}
	if det := decodeError(t, data); det.Code != CodeReplicaUnavailable {
		t.Fatalf("error %+v", det)
	}
	gst := h.gw.Stats()
	if gst.Unavailable != 1 || gst.Retries != 1 {
		t.Fatalf("gateway stats %+v, want unavailable=1 retries=1", gst)
	}
}

// TestGatewayRejectsAtEdge: a request a replica would reject is rejected
// by the gateway with the identical typed error, before any forwarding.
func TestGatewayRejectsAtEdge(t *testing.T) {
	h := newFleet(t, 2, nil)
	_, ts := newTestServer(t, nil)
	for _, body := range []string{
		`{"tasks": [], "totalNodes": 4}`,
		`{"totalNodes": 8, "tasks": [{"params": {"a": -1, "c": 1}}]}`,
		`not json`,
	} {
		gwStatus, _, gwData := postJSON(t, h.gwTS.URL+"/v1/solve", body)
		refStatus, _, refData := postJSON(t, ts.URL+"/v1/solve", body)
		if gwStatus != refStatus || !bytes.Equal(gwData, refData) {
			t.Fatalf("edge rejection diverges for %q:\ngateway: %d %s\nreplica: %d %s",
				body, gwStatus, gwData, refStatus, refData)
		}
	}
	if gst := h.gw.Stats(); gst.Forwarded != 0 || gst.BadRequests != 3 {
		t.Fatalf("gateway stats %+v, want forwarded=0 badRequests=3", gst)
	}
}
