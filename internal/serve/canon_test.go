package serve

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/perfmodel"
)

func randomCanonProblem(rng *rand.Rand) *core.Problem {
	for {
		p := randomCanonProblemOnce(rng)
		// Reject instances whose minimal admissible counts already blow the
		// budget: the service rightly refuses to solve the unsolvable.
		need := 0
		feasible := true
		for _, t := range p.Tasks {
			min := t.MinNodes
			if min < 1 {
				min = 1
			}
			if t.Allowed != nil {
				m := -1
				for _, n := range t.Allowed {
					if n >= min {
						m = n
						break
					}
				}
				if m < 0 {
					feasible = false
					break
				}
				min = m
			}
			need += min
		}
		if feasible && need <= p.TotalNodes {
			return p
		}
	}
}

func randomCanonProblemOnce(rng *rand.Rand) *core.Problem {
	k := 2 + rng.Intn(6)
	total := 32 + rng.Intn(256)
	tasks := make([]core.Task, k)
	for i := range tasks {
		tasks[i] = core.Task{
			Name: fmt.Sprintf("t%d", i),
			Perf: perfmodel.Params{
				A: 500 + rng.Float64()*50000,
				B: rng.Float64() * 1e-3,
				C: 1 + rng.Float64()*0.3,
				D: rng.Float64() * 5,
			},
		}
		if rng.Intn(3) == 0 {
			tasks[i].MinNodes = 1 + rng.Intn(3)
		}
		if rng.Intn(4) == 0 {
			var allowed []int
			n := 1 + rng.Intn(4)
			for len(allowed) < 5 {
				allowed = append(allowed, n)
				n += 1 + rng.Intn(10)
			}
			tasks[i].Allowed = allowed
		}
	}
	return &core.Problem{Tasks: tasks, TotalNodes: total, Objective: core.MinMax}
}

func permuteProblem(rng *rand.Rand, p *core.Problem) (*core.Problem, []int) {
	perm := rng.Perm(len(p.Tasks))
	tasks := make([]core.Task, len(p.Tasks))
	for i, pi := range perm {
		tasks[pi] = p.Tasks[i]
	}
	return &core.Problem{Tasks: tasks, TotalNodes: p.TotalNodes,
		Objective: p.Objective, UseAllNodes: p.UseAllNodes}, perm
}

func scaleProblem(p *core.Problem, e int) *core.Problem {
	tasks := make([]core.Task, len(p.Tasks))
	copy(tasks, p.Tasks)
	for i := range tasks {
		tasks[i].Perf.A = math.Ldexp(tasks[i].Perf.A, e)
		tasks[i].Perf.B = math.Ldexp(tasks[i].Perf.B, e)
		tasks[i].Perf.D = math.Ldexp(tasks[i].Perf.D, e)
	}
	return &core.Problem{Tasks: tasks, TotalNodes: p.TotalNodes,
		Objective: p.Objective, UseAllNodes: p.UseAllNodes}
}

// TestCanonicalKeyInvariance: permuted and exactly power-of-two-rescaled
// copies of an instance share the canonical cache key; genuinely different
// instances do not.
func TestCanonicalKeyInvariance(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 200; trial++ {
		p := randomCanonProblem(rng)
		c0 := canonicalize(routeSolve, p)

		pp, _ := permuteProblem(rng, p)
		if cp := canonicalize(routeSolve, pp); cp.key != c0.key {
			t.Fatalf("trial %d: permuted copy changed the key", trial)
		}
		// Exactly power-of-two-rescaled copies SHARE the key: every solver
		// route is exactly equivariant under such rescalings (the MINLP
		// route normalizes its time axis with the same TimeScaleExp the
		// hash uses), so the whole family runs the identical search and the
		// cached node vector serves all of them.
		e := rng.Intn(13) - 6
		if e == 0 {
			e = 7
		}
		ps := scaleProblem(pp, e)
		if cs := canonicalize(routeSolve, ps); cs.key != c0.key {
			t.Fatalf("trial %d: 2^%d-rescaled copy does not share the key", trial, e)
		}

		// Renaming tasks must not change the key either.
		pn := &core.Problem{Tasks: append([]core.Task(nil), p.Tasks...),
			TotalNodes: p.TotalNodes, Objective: p.Objective}
		for i := range pn.Tasks {
			pn.Tasks[i].Name = fmt.Sprintf("renamed-%d", i)
		}
		if cn := canonicalize(routeSolve, pn); cn.key != c0.key {
			t.Fatalf("trial %d: renaming tasks changed the key", trial)
		}

		// Distinct instances get distinct keys.
		if cr := canonicalize(routeMINLP, p); cr.key == c0.key {
			t.Fatalf("trial %d: different routes share a key", trial)
		}
		p2 := &core.Problem{Tasks: p.Tasks, TotalNodes: p.TotalNodes + 1, Objective: p.Objective}
		if c2 := canonicalize(routeSolve, p2); c2.key == c0.key {
			t.Fatalf("trial %d: different budgets share a key", trial)
		}
		p3 := scaleProblem(p, 0)
		p3.Tasks[0].Perf.A *= 1.5 // not a power of two
		if c3 := canonicalize(routeSolve, p3); c3.key == c0.key {
			t.Fatalf("trial %d: perturbed coefficients share a key", trial)
		}
	}
}

// TestCanonicalKeyNormalization: redundant constraint spellings hash alike.
func TestCanonicalKeyNormalization(t *testing.T) {
	base := func() *core.Problem {
		return &core.Problem{
			TotalNodes: 64,
			Objective:  core.MinMax,
			Tasks: []core.Task{
				{Name: "a", Perf: perfmodel.Params{A: 100, C: 1}},
				{Name: "b", Perf: perfmodel.Params{A: 200, C: 1}, MinNodes: 2, Allowed: []int{2, 4, 8}},
			},
		}
	}
	k0 := canonicalize(routeSolve, base()).key

	p := base()
	p.Tasks[0].MinNodes = 1 // MinNodes 0 and 1 mean the same thing
	if canonicalize(routeSolve, p).key != k0 {
		t.Fatal("MinNodes 0 vs 1 changed the key")
	}
	p = base()
	p.Tasks[0].MaxNodes = 64 // MaxNodes ≥ total means unbounded
	if canonicalize(routeSolve, p).key != k0 {
		t.Fatal("MaxNodes == total vs 0 changed the key")
	}
	p = base()
	p.Tasks[1].Allowed = []int{1, 2, 4, 8} // 1 < MinNodes is inadmissible anyway
	if canonicalize(routeSolve, p).key != k0 {
		t.Fatal("inadmissible allowed entry changed the key")
	}
	p = base()
	p.Tasks[1].MaxNodes = 4 // genuinely tighter: must change the key
	if canonicalize(routeSolve, p).key == k0 {
		t.Fatal("tighter MaxNodes kept the key")
	}
}

// TestUnpermute: the canonical permutation round-trips node vectors.
func TestUnpermute(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 100; trial++ {
		p := randomCanonProblem(rng)
		c := canonicalize(routeSolve, p)
		// Mark each canonical task with a recognizable node count and check
		// it lands on the request task with the same coefficients.
		nodes := make([]int, len(c.prob.Tasks))
		for i := range nodes {
			nodes[i] = i + 1
		}
		out := c.unpermute(nodes)
		for ci, ri := range c.perm {
			if out[ri] != ci+1 {
				t.Fatalf("trial %d: perm[%d]=%d mapped wrong", trial, ci, ri)
			}
			if p.Tasks[ri].Perf != c.prob.Tasks[ci].Perf {
				t.Fatalf("trial %d: canonical task %d is not request task %d", trial, ci, ri)
			}
		}
	}
}
