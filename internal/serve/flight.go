package serve

import (
	"context"
	"sync"
)

// flightGroup collapses concurrent identical solves into one: the first
// request for a key becomes the leader and runs the solve, later arrivals
// (followers) wait for the leader's result. The leader's solve runs under a
// context that is cancelled only when every interested request has gone
// away, so one impatient client cannot kill a solve that others still want
// — and a fully abandoned solve does not burn CPU for nobody.
//
// The flight key includes the request deadline (unlike the cache key):
// requests asking for different time budgets are not "identical work" and
// must not share a bounded result.
type flightGroup struct {
	mu    sync.Mutex
	calls map[string]*flightCall
}

type flightCall struct {
	done   chan struct{} // closed when sol/err are final
	cancel context.CancelFunc
	ctx    context.Context

	sol *canonSolution
	err error
	// via records how the leader produced sol: "" for a normal admitted
	// solve, viaShed for a load-shed parametric downgrade, viaPeer for a
	// peer cache-fill. Written by the leader before complete closes done;
	// read by waiters after done — the channel is the synchronization.
	via string

	waiters int // requests (leader included) still interested
}

// via values for flightCall.
const (
	viaShed = "shed"
	viaPeer = "peer"
)

func newFlightGroup() *flightGroup {
	return &flightGroup{calls: make(map[string]*flightCall)}
}

// join returns the in-flight call for key, registering the caller as a
// waiter, or creates one (leader=true) whose solve the caller must run and
// complete. base is the server's lifetime context; the call context is
// derived from it, never from a single request.
func (g *flightGroup) join(base context.Context, key string) (call *flightCall, leader bool) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if c, ok := g.calls[key]; ok {
		c.waiters++
		return c, false
	}
	ctx, cancel := context.WithCancel(base)
	c := &flightCall{done: make(chan struct{}), ctx: ctx, cancel: cancel, waiters: 1}
	g.calls[key] = c
	return c, true
}

// leave deregisters one waiter. When the last waiter leaves an unfinished
// call, its solve context is cancelled and the call is removed so that a
// later request starts fresh instead of inheriting a dying solve.
func (g *flightGroup) leave(key string, c *flightCall) {
	g.mu.Lock()
	c.waiters--
	abandoned := c.waiters == 0
	if abandoned && g.calls[key] == c {
		delete(g.calls, key)
	}
	g.mu.Unlock()
	if abandoned {
		c.cancel()
	}
}

// complete publishes the leader's result and removes the call from the
// group (followers that already hold the pointer read the result through
// it; new requests for the key start a fresh call — important because the
// result may be non-cacheable).
func (g *flightGroup) complete(key string, c *flightCall, sol *canonSolution, err error) {
	g.mu.Lock()
	if g.calls[key] == c {
		delete(g.calls, key)
	}
	g.mu.Unlock()
	c.sol = sol
	c.err = err
	close(c.done)
	c.cancel()
}
