package serve

import (
	"math"
	"math/rand"
	"testing"

	hslb "repro"
	"repro/internal/core"
)

// scaleProblemBy multiplies every time-dimensioned coefficient by an
// arbitrary positive factor (the inexact cousin of scaleProblem's exact
// power-of-two rescale).
func scaleProblemBy(p *core.Problem, f float64) *core.Problem {
	tasks := make([]core.Task, len(p.Tasks))
	copy(tasks, p.Tasks)
	for i := range tasks {
		tasks[i].Perf.A *= f
		tasks[i].Perf.B *= f
		tasks[i].Perf.D *= f
	}
	return &core.Problem{Tasks: tasks, TotalNodes: p.TotalNodes,
		Objective: p.Objective, UseAllNodes: p.UseAllNodes}
}

// equivConfigs rotates the battery across every solver path: the sparse
// revised default, the dense tableau, cold starts, presolve off, the pure
// LP start (no Kelley relaxation), and the all-ablations combination.
var equivConfigs = []struct {
	name string
	opts hslb.SolverOptions
}{
	{"default", hslb.SolverOptions{}},
	{"dense", hslb.SolverOptions{DisableSparse: true}},
	{"cold", hslb.SolverOptions{DisableWarmStart: true}},
	{"nopresolve", hslb.SolverOptions{DisablePresolve: true}},
	{"skipnlp", hslb.SolverOptions{SkipNLPRelaxation: true}},
	{"cold-dense-nopresolve", hslb.SolverOptions{
		DisableWarmStart: true, DisableSparse: true, DisablePresolve: true}},
}

// assertExactlyScaled asserts that the allocation of the 2^e-rescaled
// problem is the base allocation with every time shifted by exactly e
// binary orders of magnitude — bit-for-bit, not approximately.
func assertExactlyScaled(t *testing.T, tag string, base, scaled *core.Allocation, e int) {
	t.Helper()
	for i := range base.Nodes {
		if scaled.Nodes[i] != base.Nodes[i] {
			t.Fatalf("%s: nodes diverge under 2^%d rescale: %v vs %v", tag, e, scaled.Nodes, base.Nodes)
		}
		if scaled.Times[i] != math.Ldexp(base.Times[i], e) {
			t.Fatalf("%s: task %d time %v is not exactly 2^%d × %v", tag, i, scaled.Times[i], e, base.Times[i])
		}
	}
	if scaled.Makespan != math.Ldexp(base.Makespan, e) ||
		scaled.MinTime != math.Ldexp(base.MinTime, e) ||
		scaled.SumTime != math.Ldexp(base.SumTime, e) {
		t.Fatalf("%s: summary stats are not exactly 2^%d-shifted: %+v vs %+v", tag, e, scaled, base)
	}
	if scaled.Imbalance != base.Imbalance || scaled.Used != base.Used {
		t.Fatalf("%s: dimensionless stats moved under rescale: %+v vs %+v", tag, scaled, base)
	}
	if scaled.SolverNodes != base.SolverNodes || scaled.LPSolves != base.LPSolves ||
		scaled.OACuts != base.OACuts || scaled.Pivots != base.Pivots {
		t.Fatalf("%s: solver effort not bit-identical under 2^%d rescale (search diverged): %+v vs %+v",
			tag, e, scaled, base)
	}
}

// TestScaleEquivariance is the tentpole property battery: ~1000 random
// instances (full mode; short mode runs a slice under the race job), each
// solved at its native scale, at a random exact power-of-two rescale, and
// at a random arbitrary positive rescale, rotating through every solver
// path (dense, sparse, warm, cold, presolve on/off, with and without the
// Kelley start).
//
// Exact power-of-two rescaling must leave the entire solve bit-identical:
// same node vector, same solver-effort counters, and every reported time
// shifted by exactly the scale exponent. Arbitrary positive rescaling
// cannot promise bit-identical searches (the normalized coefficients round
// differently), but the optimal allocation itself must still agree.
func TestScaleEquivariance(t *testing.T) {
	trials := 334 // ×3 solves per trial ≈ 1000 instances
	if testing.Short() {
		trials = 25
	}
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < trials; trial++ {
		p := randomCanonProblem(rng)
		if trial%3 == 1 {
			p.Objective = core.MinSum
		}
		if trial%4 == 2 {
			p.UseAllNodes = true
		}
		cfg := equivConfigs[trial%len(equivConfigs)]
		opts := cfg.opts
		opts.Canonical = true // pin the tie-break among alternate optima

		e := rng.Intn(13) - 6
		if e == 0 {
			e = 4
		}
		f := math.Exp(rng.Float64()*8 - 4) // factor in ≈ [0.018, 55]

		base, baseErr := hslb.Solve(p, opts)
		scaled, scaledErr := hslb.Solve(scaleProblem(p, e), opts)
		if baseErr != nil {
			// UseAllNodes plus sparse allowed sets can make an instance
			// genuinely infeasible (no admissible counts sum to the exact
			// budget). The verdict itself must be scale-equivariant.
			if scaledErr == nil {
				t.Fatalf("trial %d (%s): base failed (%v) but 2^%d rescale solved", trial, cfg.name, baseErr, e)
			}
			if _, arbErr := hslb.Solve(scaleProblemBy(p, f), opts); arbErr == nil {
				t.Fatalf("trial %d (%s): base failed (%v) but %g× rescale solved", trial, cfg.name, baseErr, f)
			}
			continue
		}
		if scaledErr != nil {
			t.Fatalf("trial %d (%s): 2^%d-scaled solve: %v", trial, cfg.name, e, scaledErr)
		}
		assertExactlyScaled(t, cfg.name, base, scaled, e)

		arb, err := hslb.Solve(scaleProblemBy(p, f), opts)
		if err != nil {
			t.Fatalf("trial %d (%s): %g×-scaled solve: %v", trial, cfg.name, f, err)
		}
		if p.Objective == core.MinMax && !p.UseAllNodes {
			// The canonical polish pins a unique optimum for this family,
			// so even an inexact rescale must land on the same allocation.
			for i := range base.Nodes {
				if arb.Nodes[i] != base.Nodes[i] {
					t.Fatalf("trial %d (%s): allocation moved under %g× rescale: %v vs %v",
						trial, cfg.name, f, arb.Nodes, base.Nodes)
				}
			}
		}
		// For every family (including the ones with unpinned alternate
		// optima) the optimal objective itself must scale with f up to
		// rounding of the rescaled coefficients.
		obj, aobj := p.ObjectiveValue(base), p.ObjectiveValue(arb)
		if math.Abs(aobj-f*obj) > 1e-9*math.Abs(f*obj) {
			t.Fatalf("trial %d (%s): optimum moved under %g× rescale: %v vs %v×%v",
				trial, cfg.name, f, aobj, f, obj)
		}
	}
}

// FuzzScaleEquivariance feeds the power-of-two half of the property to the
// fuzzer: arbitrary instance seeds, scale exponents, and solver-path
// selectors, asserting the bit-identical-solve contract every time.
func FuzzScaleEquivariance(f *testing.F) {
	f.Add(uint64(1), int8(3), uint8(0))
	f.Add(uint64(20120501), int8(-6), uint8(1))
	f.Add(uint64(95), int8(6), uint8(2))
	f.Add(uint64(7), int8(1), uint8(5))
	f.Fuzz(func(t *testing.T, seed uint64, eRaw int8, cfgRaw uint8) {
		e := int(eRaw) % 7
		if e == 0 {
			e = 5
		}
		rng := rand.New(rand.NewSource(int64(seed)))
		p := randomCanonProblem(rng)
		if seed%3 == 1 {
			p.Objective = core.MinSum
		}
		cfg := equivConfigs[int(cfgRaw)%len(equivConfigs)]
		opts := cfg.opts
		opts.Canonical = true
		base, err := hslb.Solve(p, opts)
		scaled, errS := hslb.Solve(scaleProblem(p, e), opts)
		if (err == nil) != (errS == nil) {
			t.Fatalf("error parity broken under 2^%d rescale: %v vs %v", e, err, errS)
		}
		if err != nil {
			return // both failed identically; nothing to compare
		}
		assertExactlyScaled(t, cfg.name, base, scaled, e)
	})
}

// TestWarmSparseFalseInfeasibleRegression replays the recorded hslbd defect
// (differential sweep seed 20120501, trial 95: a 7-task, 37-node MinMax
// instance): the warm-capable sparse cold build of the OA master amplified
// its phase-1 tableau to ~1e30 and declared the feasible master infeasible,
// surfacing as a 500 from the solve service. With the relative-tolerance
// overhaul (core time normalization + dense confirmation of sparse
// infeasible verdicts) the instance must solve on the default path, agree
// bitwise with every ablation that historically dodged the bug, and stay
// exactly equivariant under the sweep's 2^3 rescale.
func TestWarmSparseFalseInfeasibleRegression(t *testing.T) {
	rng := rand.New(rand.NewSource(20120501))
	const target = 95
	var unscaled, permuted, scaled *core.Problem
	for trial := 0; trial <= target; trial++ {
		p := randomCanonProblem(rng)
		switch trial % 5 {
		case 3:
			p.Objective = core.MinSum
		case 4:
			p.Objective = core.MaxMin
		}
		perm, _ := permuteProblem(rng, p)
		e := rng.Intn(13) - 6
		if e == 0 {
			e = 3
		}
		s := scaleProblem(perm, e)
		if trial == target {
			unscaled, permuted, scaled = p, perm, s
		}
	}
	if len(unscaled.Tasks) != 7 || unscaled.TotalNodes != 37 || unscaled.Objective != core.MinMax {
		t.Fatalf("RNG replay drifted: got %d tasks, %d nodes, objective %v",
			len(unscaled.Tasks), unscaled.TotalNodes, unscaled.Objective)
	}

	// The defect fired on the default path (warm-capable sparse master).
	ref, err := hslb.Solve(unscaled, hslb.SolverOptions{})
	if err != nil {
		t.Fatalf("default path still fails on the recorded instance: %v", err)
	}
	if math.Abs(ref.Makespan-6287.485823) > 0.01 {
		t.Fatalf("makespan %v, want ≈ 6287.485823", ref.Makespan)
	}

	// Every ablation that historically dodged the bug must now agree
	// bitwise with the default path.
	for _, cfg := range []struct {
		name string
		opts hslb.SolverOptions
	}{
		{"skipNLP", hslb.SolverOptions{SkipNLPRelaxation: true}},
		{"noWarm", hslb.SolverOptions{DisableWarmStart: true}},
		{"noSparse", hslb.SolverOptions{DisableSparse: true}},
	} {
		a, err := hslb.Solve(unscaled, cfg.opts)
		if err != nil {
			t.Fatalf("%s: %v", cfg.name, err)
		}
		if a.Makespan != ref.Makespan {
			t.Fatalf("%s: makespan %v != default %v", cfg.name, a.Makespan, ref.Makespan)
		}
		for i := range a.Nodes {
			if a.Nodes[i] != ref.Nodes[i] {
				t.Fatalf("%s: nodes %v != default %v", cfg.name, a.Nodes, ref.Nodes)
			}
		}
	}

	// The sweep's permuted and 2^3-rescaled variants of the same trial.
	pRef, err := hslb.Solve(permuted, hslb.SolverOptions{})
	if err != nil {
		t.Fatalf("permuted: %v", err)
	}
	if pRef.Makespan != ref.Makespan {
		t.Fatalf("permuted makespan %v != %v", pRef.Makespan, ref.Makespan)
	}
	sRef, err := hslb.Solve(scaled, hslb.SolverOptions{})
	if err != nil {
		t.Fatalf("scaled: %v", err)
	}
	assertExactlyScaled(t, "trial95", pRef, sRef, 3)
}
