package serve

import (
	"sync/atomic"

	"repro/internal/lp"
)

// counters are the service's expvar-style monitoring counters, exported as
// JSON by /v1/statz. All fields are monotonically increasing except
// inFlight (a gauge).
//
// Counting discipline (pinned by TestSingleflightCounterAudit): counters
// describing *requests* — requests, hits, misses, collapsed, canceled,
// rejected, bounded, tableHits, degraded — increment once per request, in
// the handler, even when many requests share one flight. Counters
// describing *solver work* — solves, solveErrors, pivots, tableSolves,
// inFlight, sheds, shedErrors, peerChecks/Hits/Errors — increment once per
// flight-leader dispatch, no matter how many waiters observe the outcome.
type counters struct {
	requests    atomic.Int64 // solve-family requests admitted to decoding
	hits        atomic.Int64 // per-budget cache hits
	misses      atomic.Int64 // cache misses (triggered or joined a solve)
	collapsed   atomic.Int64 // requests that joined another request's in-flight solve
	solves      atomic.Int64 // solver invocations actually run (incl. table verification)
	rejected    atomic.Int64 // requests bounced by admission control
	canceled    atomic.Int64 // requests whose client went away first
	solveErrors atomic.Int64 // solver dispatches that ended in an error
	bounded     atomic.Int64 // responses serving a deadline-bounded incumbent
	pivots      atomic.Int64 // total simplex pivots across all solves
	inFlight    atomic.Int64 // solves currently running (gauge)

	// Parametric breakpoint tables (see table.go).
	tableHits      atomic.Int64 // requests answered from a verified table bracket
	tableSolves    atomic.Int64 // extra solves spent verifying bracket endpoints
	tableConflicts atomic.Int64 // endpoint verifications that contradicted the analytic bracket

	// Load shedding (tier-1 pressure response; see runSolve/tryShed).
	sheds      atomic.Int64 // flights downgraded to the parametric heuristic
	shedErrors atomic.Int64 // shed attempts whose heuristic solve itself failed
	degraded   atomic.Int64 // requests answered with a degraded (shed) solution

	// Peer cache-fill (fleet mode; see peerFill/handlePeerFill).
	peerChecks atomic.Int64 // peer probes issued by flight leaders
	peerHits   atomic.Int64 // probes that returned a usable cached solution
	peerErrors atomic.Int64 // probes that failed (transport, engine mismatch, bad body)

	// Cache snapshot persistence (see snapshot.go).
	snapshotLoaded  atomic.Int64 // entries restored from the last snapshot load
	snapshotDropped atomic.Int64 // snapshot entries rejected by re-validation
}

// Stats is the JSON snapshot shape of the service counters.
type Stats struct {
	Requests    int64 `json:"requests"`
	Hits        int64 `json:"hits"`
	Misses      int64 `json:"misses"`
	Collapsed   int64 `json:"collapsed"`
	Solves      int64 `json:"solves"`
	Rejected    int64 `json:"rejected"`
	Canceled    int64 `json:"canceled"`
	SolveErrors int64 `json:"solveErrors"`
	Bounded     int64 `json:"bounded"`
	Pivots      int64 `json:"pivots"`
	InFlight    int64 `json:"inFlight"`
	CacheSize   int64 `json:"cacheSize"`
	CacheShards int64 `json:"cacheShards"` // stripe count of the solution cache

	TableHits      int64 `json:"tableHits"`
	TableSolves    int64 `json:"tableSolves"`
	TableConflicts int64 `json:"tableConflicts"`
	TableFamilies  int64 `json:"tableFamilies"` // families holding a table
	TableSegments  int64 `json:"tableSegments"` // verified brackets across all families

	// Load shedding and fleet peer cache-fill.
	Sheds           int64 `json:"sheds"`
	ShedErrors      int64 `json:"shedErrors"`
	Degraded        int64 `json:"degraded"`
	PeerChecks      int64 `json:"peerChecks"`
	PeerHits        int64 `json:"peerHits"`
	PeerErrors      int64 `json:"peerErrors"`
	SnapshotLoaded  int64 `json:"snapshotLoaded"`
	SnapshotDropped int64 `json:"snapshotDropped"`

	// Revised-simplex engine health (process-global, from lp.ReadEngineStats):
	// how often the sparse LU engine answered cold solves itself versus
	// declining to the dense tableau authority, and how hard the basis
	// representation worked (Forrest–Tomlin updates vs refactorizations,
	// drift-check trips). A fallback or drift rate creeping up is the first
	// outward sign of a numerically hostile instance family.
	EngineSolves    int64 `json:"engineSolves"`
	EngineFallbacks int64 `json:"engineFallbacks"`
	EngineDrifts    int64 `json:"engineDrifts"`
	EngineRefactors int64 `json:"engineRefactors"`
	EngineUpdates   int64 `json:"engineUpdates"`

	// Structure-exploiting layers (crash bases, bordered makespan column,
	// aggregation presolve). Installs vs declines is the crash hit rate:
	// declines rising means the heuristic points stopped rounding to
	// feasible vertices and solves silently went cold.
	EngineCrashInstalls int64 `json:"engineCrashInstalls"`
	EngineCrashDeclines int64 `json:"engineCrashDeclines"`
	EngineBorderSolves  int64 `json:"engineBorderSolves"`
	EngineAggMerges     int64 `json:"engineAggMerges"`
}

func (c *counters) snapshot(cacheLen, cacheShards, tableFamilies, tableSegments int) Stats {
	eng := lp.ReadEngineStats()
	return Stats{
		Requests:    c.requests.Load(),
		Hits:        c.hits.Load(),
		Misses:      c.misses.Load(),
		Collapsed:   c.collapsed.Load(),
		Solves:      c.solves.Load(),
		Rejected:    c.rejected.Load(),
		Canceled:    c.canceled.Load(),
		SolveErrors: c.solveErrors.Load(),
		Bounded:     c.bounded.Load(),
		Pivots:      c.pivots.Load(),
		InFlight:    c.inFlight.Load(),
		CacheSize:   int64(cacheLen),
		CacheShards: int64(cacheShards),

		TableHits:      c.tableHits.Load(),
		TableSolves:    c.tableSolves.Load(),
		TableConflicts: c.tableConflicts.Load(),
		TableFamilies:  int64(tableFamilies),
		TableSegments:  int64(tableSegments),

		Sheds:           c.sheds.Load(),
		ShedErrors:      c.shedErrors.Load(),
		Degraded:        c.degraded.Load(),
		PeerChecks:      c.peerChecks.Load(),
		PeerHits:        c.peerHits.Load(),
		PeerErrors:      c.peerErrors.Load(),
		SnapshotLoaded:  c.snapshotLoaded.Load(),
		SnapshotDropped: c.snapshotDropped.Load(),

		EngineSolves:    eng.Solves,
		EngineFallbacks: eng.Fallbacks,
		EngineDrifts:    eng.Drifts,
		EngineRefactors: eng.Refactors,
		EngineUpdates:   eng.Updates,

		EngineCrashInstalls: eng.CrashInstalls,
		EngineCrashDeclines: eng.CrashDeclines,
		EngineBorderSolves:  eng.BorderSolves,
		EngineAggMerges:     eng.AggMerges,
	}
}
