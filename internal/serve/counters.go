package serve

import "sync/atomic"

// counters are the service's expvar-style monitoring counters, exported as
// JSON by /v1/statz. All fields are monotonically increasing except
// inFlight (a gauge).
type counters struct {
	requests    atomic.Int64 // solve-family requests admitted to decoding
	hits        atomic.Int64 // cache hits
	misses      atomic.Int64 // cache misses (triggered or joined a solve)
	collapsed   atomic.Int64 // requests that joined another request's in-flight solve
	solves      atomic.Int64 // solver invocations actually run
	rejected    atomic.Int64 // requests bounced by admission control
	canceled    atomic.Int64 // requests whose client went away first
	solveErrors atomic.Int64 // solves that ended in an error
	bounded     atomic.Int64 // responses serving a deadline-bounded incumbent
	pivots      atomic.Int64 // total simplex pivots across all solves
	inFlight    atomic.Int64 // solves currently running (gauge)
}

// Stats is the JSON snapshot shape of the service counters.
type Stats struct {
	Requests    int64 `json:"requests"`
	Hits        int64 `json:"hits"`
	Misses      int64 `json:"misses"`
	Collapsed   int64 `json:"collapsed"`
	Solves      int64 `json:"solves"`
	Rejected    int64 `json:"rejected"`
	Canceled    int64 `json:"canceled"`
	SolveErrors int64 `json:"solveErrors"`
	Bounded     int64 `json:"bounded"`
	Pivots      int64 `json:"pivots"`
	InFlight    int64 `json:"inFlight"`
	CacheSize   int64 `json:"cacheSize"`
}

func (c *counters) snapshot(cacheLen int) Stats {
	return Stats{
		Requests:    c.requests.Load(),
		Hits:        c.hits.Load(),
		Misses:      c.misses.Load(),
		Collapsed:   c.collapsed.Load(),
		Solves:      c.solves.Load(),
		Rejected:    c.rejected.Load(),
		Canceled:    c.canceled.Load(),
		SolveErrors: c.solveErrors.Load(),
		Bounded:     c.bounded.Load(),
		Pivots:      c.pivots.Load(),
		InFlight:    c.inFlight.Load(),
		CacheSize:   int64(cacheLen),
	}
}
