package serve

import (
	"context"
	"encoding/hex"
	"encoding/json"
	"io"
	"net/http"
	"net/url"

	"repro/internal/lp"
)

// This file is the replica side of fleet mode: the load-shedding downgrade
// (tier 1 of the pressure response) and the peer cache-fill protocol that
// lets replicas share solves instead of duplicating them.

// engineHeader carries the engine fingerprint on every /v1/peerfill
// response; a probe whose peer reports a different fingerprint is discarded
// (a mixed-version fleet must not share solutions — the solver's tolerance
// constants are part of the answer's identity).
const engineHeader = "X-HSLB-Engine"

// engineFingerprint identifies the solver configuration whose cached
// solutions are interchangeable: today that is exactly the LP tolerance
// set. Snapshot loading (snapshot.go) uses the same fingerprint.
func engineFingerprint() string { return lp.ToleranceFingerprint() }

// maxPeerBody bounds a peerfill response body; a canonical solution is a
// node vector plus four diagnostic ints, so 1 MiB is generous.
const maxPeerBody = 1 << 20

// peerFillProbes caps how many ring owners a flight leader asks before
// giving up and solving locally.
const peerFillProbes = 2

// wireSolution is the JSON shape of a cached canonical solution on the
// peerfill and snapshot wires. Only proven-optimal solutions are ever
// cached, so the bounded/bestBound/gap triple never travels.
type wireSolution struct {
	Nodes       []int `json:"nodes"`
	SolverNodes int   `json:"solverNodes,omitempty"`
	LPSolves    int   `json:"lpSolves,omitempty"`
	OACuts      int   `json:"oaCuts,omitempty"`
	Pivots      int   `json:"pivots,omitempty"`
}

func toWire(sol *canonSolution) wireSolution {
	return wireSolution{
		Nodes:       sol.nodes,
		SolverNodes: sol.solverNodes,
		LPSolves:    sol.lpSolves,
		OACuts:      sol.oaCuts,
		Pivots:      sol.pivots,
	}
}

// fromWire validates a wire solution and rebuilds the cache entry. The
// bytes come from a peer or a disk snapshot, so they are untrusted: an
// empty or negative node vector is rejected rather than cached.
func fromWire(w wireSolution) (*canonSolution, bool) {
	if len(w.Nodes) == 0 {
		return nil, false
	}
	for _, n := range w.Nodes {
		if n < 1 {
			return nil, false
		}
	}
	if w.SolverNodes < 0 || w.LPSolves < 0 || w.OACuts < 0 || w.Pivots < 0 {
		return nil, false
	}
	return &canonSolution{
		nodes:       append([]int(nil), w.Nodes...),
		solverNodes: w.SolverNodes,
		lpSolves:    w.LPSolves,
		oaCuts:      w.OACuts,
		pivots:      w.Pivots,
	}, true
}

// validCacheKey recognizes the only key shape the cache ever stores: a
// hex-encoded SHA-256 (canon.go). Anything else on the peerfill or
// snapshot wire is noise.
func validCacheKey(key string) bool {
	if len(key) != 64 {
		return false
	}
	_, err := hex.DecodeString(key)
	return err == nil
}

// tryShed is tier 1 of the pressure response: the admission gate was
// saturated, so instead of bouncing the flight with a 429, answer it with
// the cheap parametric heuristic, bounded by its own shedSem so a stampede
// of shed solves cannot starve the machine either. Returns false — caller
// falls through to the 429 — when shedding is disabled, shed capacity is
// also exhausted, or the heuristic itself fails. Shed answers are marked
// degraded in meta and never cached: the next uncontended request for the
// key gets the route's real answer.
func (s *Server) tryShed(route, flightKey string, call *flightCall, canon *canonical) bool {
	if s.shedSem == nil {
		return false
	}
	select {
	case s.shedSem <- struct{}{}:
	default:
		return false
	}
	defer func() { <-s.shedSem }()
	s.stats.sheds.Add(1)
	a, err := canon.prob.SolveParametricContext(call.ctx)
	if err != nil {
		s.stats.shedErrors.Add(1)
		return false
	}
	sol := fromAllocation(canon.prob.CanonicalAllocation(a))
	call.via = viaShed
	s.flight.complete(flightKey, call, sol, nil)
	return true
}

// peerFill asks the key's ring owners (excluding this replica) whether
// they already cached the canonical solution. Strictly best-effort: any
// transport error, engine mismatch, or malformed body makes the probe a
// miss and the caller solves locally. Counters are flight-scoped — the
// leader probes once per flight however many waiters collapsed onto it.
func (s *Server) peerFill(ctx context.Context, key string) *canonSolution {
	// Ask for one extra owner so that when this replica is itself on the
	// owner list we still probe up to peerFillProbes real peers.
	owners := s.ring.Owners(key, peerFillProbes+1)
	probed := 0
	for _, id := range owners {
		if id == s.opts.SelfID || probed >= peerFillProbes {
			continue
		}
		probed++
		s.stats.peerChecks.Add(1)
		if sol := s.probePeer(id, key); sol != nil {
			s.stats.peerHits.Add(1)
			return sol
		}
		if ctx.Err() != nil {
			return nil
		}
	}
	return nil
}

// probePeer issues one GET /v1/peerfill to peer id and validates the
// answer. The probe deliberately does not inherit the flight context: its
// own short client timeout (PeerTimeout) is the bound, and a flight
// abandoned mid-probe is caught by the ctx check in peerFill.
func (s *Server) probePeer(id, key string) *canonSolution {
	base := s.peerURL[id]
	if base == "" {
		return nil
	}
	resp, err := s.peerClient.Get(base + "/v1/peerfill?key=" + url.QueryEscape(key))
	if err != nil {
		s.stats.peerErrors.Add(1)
		return nil
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusNotFound {
		// A clean miss is the common case, not an error.
		_, _ = io.Copy(io.Discard, io.LimitReader(resp.Body, maxPeerBody))
		return nil
	}
	if resp.StatusCode != http.StatusOK || resp.Header.Get(engineHeader) != engineFingerprint() {
		s.stats.peerErrors.Add(1)
		return nil
	}
	body, err := io.ReadAll(io.LimitReader(resp.Body, maxPeerBody))
	if err != nil {
		s.stats.peerErrors.Add(1)
		return nil
	}
	var w wireSolution
	if json.Unmarshal(body, &w) != nil {
		s.stats.peerErrors.Add(1)
		return nil
	}
	sol, ok := fromWire(w)
	if !ok {
		s.stats.peerErrors.Add(1)
		return nil
	}
	return sol
}

// handlePeerFill serves this replica's side of the protocol: GET with a
// canonical cache key returns the cached solution (200 + engine
// fingerprint header) or a typed 404. It never solves — peer fill shares
// work already done, it must not create new work.
func (s *Server) handlePeerFill(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, &httpError{status: 405, body: ErrorBody{ErrorDetail{
			Code: CodeMethodNotAllowed, Message: "use GET"}}})
		return
	}
	key := r.URL.Query().Get("key")
	if !validCacheKey(key) {
		writeError(w, badRequest("key must be a hex SHA-256 cache key"))
		return
	}
	w.Header().Set(engineHeader, engineFingerprint())
	if s.cache == nil {
		writeError(w, peerMiss)
		return
	}
	sol, ok := s.cache.Get(key)
	if !ok {
		writeError(w, peerMiss)
		return
	}
	writeJSON(w, 200, toWire(sol))
}

var peerMiss = &httpError{status: 404, body: ErrorBody{ErrorDetail{
	Code: CodeNotFound, Message: "key not cached on this replica"}}}
