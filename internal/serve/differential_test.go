package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	hslb "repro"
	"repro/internal/core"
)

// requestFromProblem renders a core.Problem as a service request body.
func requestFromProblem(p *core.Problem) string {
	var b strings.Builder
	fmt.Fprintf(&b, `{"totalNodes": %d`, p.TotalNodes)
	switch p.Objective {
	case core.MaxMin:
		b.WriteString(`, "objective": "max-min"`)
	case core.MinSum:
		b.WriteString(`, "objective": "min-sum"`)
	}
	if p.UseAllNodes {
		b.WriteString(`, "useAllNodes": true`)
	}
	b.WriteString(`, "tasks": [`)
	for i, t := range p.Tasks {
		if i > 0 {
			b.WriteString(",")
		}
		fmt.Fprintf(&b, `{"name": %q, "params": {"a": %s, "b": %s, "c": %s, "d": %s}`,
			t.Name, jsonFloat(t.Perf.A), jsonFloat(t.Perf.B), jsonFloat(t.Perf.C), jsonFloat(t.Perf.D))
		if t.MinNodes > 0 {
			fmt.Fprintf(&b, `, "minNodes": %d`, t.MinNodes)
		}
		if t.MaxNodes > 0 {
			fmt.Fprintf(&b, `, "maxNodes": %d`, t.MaxNodes)
		}
		if len(t.Allowed) > 0 {
			data, _ := json.Marshal(t.Allowed)
			fmt.Fprintf(&b, `, "allowed": %s`, data)
		}
		b.WriteString("}")
	}
	b.WriteString("]}")
	return b.String()
}

// jsonFloat prints a float with full round-trip precision so the service
// decodes the exact same bits the direct solver sees.
func jsonFloat(v float64) string {
	data, _ := json.Marshal(v)
	return string(data)
}

func postRaw(t *testing.T, url, body string) (int, MetaBody, json.RawMessage, []byte) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST: %v", err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	var raw rawResponse
	if resp.StatusCode == 200 {
		if err := json.Unmarshal(data, &raw); err != nil {
			t.Fatalf("decode: %v (%s)", err, data)
		}
	}
	return resp.StatusCode, raw.Meta, raw.Solution, data
}

// TestDifferentialCacheCorrectness is the end-to-end differential harness:
// a 1000-instance sweep (short mode: 120) asserting, for each random
// instance and its fragment-permuted and power-of-two-rescaled copies,
// that
//
//  1. the variants canonicalize to the same cache key, so only the first
//     request solves and the rest are cache hits;
//  2. every cached response is byte-identical (the whole solution block:
//     status, objective, allocation, makespan, min/sum/imbalance, bounds)
//     to the same request served by a cache-disabled reference server;
//  3. for the MinMax family, the un-permuted cached solution is
//     bit-identical to a fresh direct hslb.Solve of the permuted instance
//     with canonical tie-breaking.
func TestDifferentialCacheCorrectness(t *testing.T) {
	trials := 334 // ×3 requests per trial ≈ 1000 instances solved/served
	if testing.Short() {
		trials = 40
	}

	cachedSrv, err := New(DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	defer cachedSrv.Close()
	cached := httptest.NewServer(cachedSrv.Handler())
	defer cached.Close()

	refOpts := DefaultOptions()
	refOpts.DisableCache = true
	refSrv, err := New(refOpts)
	if err != nil {
		t.Fatal(err)
	}
	defer refSrv.Close()
	ref := httptest.NewServer(refSrv.Handler())
	defer ref.Close()

	rng := rand.New(rand.NewSource(20120501))
	solverFailures := 0
	equivChecks := 0 // rescaled-variant responses actually compared
	for trial := 0; trial < trials; trial++ {
		p := randomCanonProblem(rng)
		switch trial % 5 {
		case 3:
			p.Objective = core.MinSum
		case 4:
			p.Objective = core.MaxMin
		}

		perm, permIdx := permuteProblem(rng, p)
		e := rng.Intn(13) - 6
		if e == 0 {
			e = 3
		}
		scaled := scaleProblem(perm, e)

		// The permuted copy (variant 1) AND the power-of-two rescaled copy
		// (variant 2) must both hit variant 0's cache slot: the solver
		// stack is exactly scale-equivariant and the cache key is
		// scale-canonical, so the whole rescaled family shares one entry.
		variants := []*core.Problem{p, perm, scaled}
		skipTrial := false
		for vi, v := range variants {
			if skipTrial && vi > 0 {
				continue // no cached solution to compare against
			}
			body := requestFromProblem(v)
			status, meta, sol, data := postRaw(t, cached.URL+"/v1/solve", body)
			if status == 500 && vi == 0 {
				// A solver failure on the base instance. The differential
				// property still holds: the reference server must fail
				// with the identical body. (The historically recorded
				// failure here — the warm-started sparse master falsely
				// reporting an instance infeasible — is fixed and has its
				// own regression test; this branch stays as a guard.)
				refStatus, _, _, refData := postRaw(t, ref.URL+"/v1/solve", body)
				if refStatus != 500 || !bytes.Equal(data, refData) {
					t.Fatalf("trial %d: cached and reference servers disagree on failure:\n%s\n%s", trial, data, refData)
				}
				solverFailures++
				skipTrial = true
				continue
			}
			if status != 200 {
				t.Fatalf("trial %d variant %d: status %d: %s", trial, vi, status, data)
			}
			if vi == 1 && !meta.Cached {
				t.Fatalf("trial %d: permuted copy missed the cache", trial)
			}
			if vi == 2 && !meta.Cached {
				t.Fatalf("trial %d: 2^%d-rescaled copy missed the cache (scale-equivariance broken?)", trial, e)
			}
			if vi == 2 {
				equivChecks++
			}
			refStatus, refMeta, refSol, refData := postRaw(t, ref.URL+"/v1/solve", body)
			if refStatus != 200 {
				t.Fatalf("trial %d variant %d: reference status %d: %s", trial, vi, refStatus, refData)
			}
			if refMeta.Cached {
				t.Fatalf("reference server served from a cache it should not have")
			}
			if !bytes.Equal(sol, refSol) {
				t.Fatalf("trial %d variant %d (obj %v, scale 2^%d): cached response diverges from cache-disabled reference\ncached: %s\nfresh:  %s",
					trial, vi, p.Objective, e, sol, refSol)
			}
		}

		// Direct-library comparison on the permuted instance (the canonical
		// polish pins a unique optimum only for the MinMax family).
		if p.Objective == core.MinMax && !p.UseAllNodes && !skipTrial {
			var body SolutionBody
			_, _, solRaw, _ := postRaw(t, cached.URL+"/v1/solve", requestFromProblem(perm))
			if err := json.Unmarshal(solRaw, &body); err != nil {
				t.Fatal(err)
			}
			direct, err := hslb.Solve(perm, hslb.SolverOptions{Canonical: true})
			if err != nil {
				t.Fatalf("trial %d: direct solve: %v", trial, err)
			}
			for i := range perm.Tasks {
				if body.Allocation[i].Nodes != direct.Nodes[i] {
					t.Fatalf("trial %d task %d: served %d nodes, direct solve says %d\nserved: %v\ndirect: %v (perm %v)",
						trial, i, body.Allocation[i].Nodes, direct.Nodes[i], body.Allocation, direct.Nodes, permIdx)
				}
				if body.Allocation[i].Time != direct.Times[i] {
					t.Fatalf("trial %d task %d: served time %v, direct %v (must be bit-identical)",
						trial, i, body.Allocation[i].Time, direct.Times[i])
				}
			}
			if body.Makespan != direct.Makespan || body.SumTime != direct.SumTime ||
				body.Imbalance != direct.Imbalance || body.Used != direct.Used {
				t.Fatalf("trial %d: derived stats diverge: %+v vs %+v", trial, body, direct)
			}
		}
	}

	// The sweep's cache behavior in aggregate: both variants beyond the
	// first of a non-failed trial must have hit, and solver failures must
	// stay the rare edge case they are claimed to be. The equivariance
	// property must have actually been exercised — a sweep that compared
	// zero rescaled variants would pass vacuously.
	if solverFailures*20 > trials {
		t.Fatalf("%d/%d trials hit solver failures — no longer a rare edge case", solverFailures, trials)
	}
	if equivChecks == 0 {
		t.Fatal("no rescaled variants were compared — the scale-equivariance sweep did not run")
	}
	t.Logf("differential sweep: %d trials, %d scale-equivariance comparisons, %d solver failures",
		trials, equivChecks, solverFailures)
	st := cachedSrv.Stats()
	if st.Hits < 2*int64(trials-solverFailures) {
		t.Fatalf("expected ≥ %d cache hits across the sweep, got %+v", 2*(trials-solverFailures), st)
	}
	if st.SolveErrors != int64(solverFailures) || refSrv.Stats().SolveErrors != int64(solverFailures) {
		t.Fatalf("unexpected solve errors during sweep: %+v / %+v (solver failures %d)",
			st, refSrv.Stats(), solverFailures)
	}
}

// TestScaledInstanceShared pins the scale-sharing decision end to end: a
// power-of-two rescaled copy of a cached instance is answered from the
// original's slot, and the served body is byte-identical to what a
// cache-disabled server computes for the rescaled request from scratch.
// (The solver stack is exactly equivariant under power-of-two time
// rescalings and the cache stores only the node vector — every reported
// time is re-evaluated on the requesting problem's own coefficients — so
// the hit cannot change the answer.)
func TestScaledInstanceShared(t *testing.T) {
	srv, ts := newTestServer(t, nil)
	_, ref := newTestServer(t, func(o *ServerOptions) { o.DisableCache = true })
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 8; trial++ {
		p := randomCanonProblem(rng)
		postRaw(t, ts.URL+"/v1/solve", requestFromProblem(p))
		e := -4 + trial
		if e >= 0 {
			e++ // skip the degenerate no-op rescale
		}
		scaled := scaleProblem(p, e)
		body := requestFromProblem(scaled)
		_, meta, sol, _ := postRaw(t, ts.URL+"/v1/solve", body)
		if !meta.Cached {
			t.Fatalf("trial %d: rescaled instance missed the original's cache slot", trial)
		}
		_, refMeta, refSol, _ := postRaw(t, ref.URL+"/v1/solve", body)
		if refMeta.Cached {
			t.Fatal("reference server must not cache")
		}
		if !bytes.Equal(sol, refSol) {
			t.Fatalf("trial %d: cached rescaled response diverges from fresh solve\ncached: %s\nfresh:  %s", trial, sol, refSol)
		}
	}
	if st := srv.Stats(); st.Solves != 8 || st.CacheSize != 8 || st.Hits != 8 {
		t.Fatalf("want one solve, one slot, one hit per trial, got %+v", st)
	}
}
