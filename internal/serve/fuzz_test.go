package serve

import (
	"testing"
)

// FuzzRequestDecode hammers the request decoder with arbitrary bytes. The
// contract under test: decodeSolveRequest either returns a validated
// request or a typed *httpError — it must never panic, whatever the bytes
// spell (NaN/Inf coefficients, negative counts, absurd sizes, truncated
// JSON). When decoding succeeds on a parameter-only request, problem
// construction must succeed too: validation is supposed to be complete, not
// best-effort.
func FuzzRequestDecode(f *testing.F) {
	seeds := []string{
		``,
		`{}`,
		`not json at all`,
		`{"totalNodes": 8, "tasks": [{"params": {"a": 1, "b": 0.1, "c": 1, "d": 0}}]}`,
		`{"totalNodes": 8, "tasks": [{"params": {"a": 1e308, "b": 1e308, "c": 50, "d": 1e308}},
			{"params": {"a": 5e-324, "c": 0.001}}]}`,
		`{"totalNodes": 8, "tasks": [{"params": {"a": NaN}}]}`,
		`{"totalNodes": 8, "tasks": [{"params": {"a": -1}}]}`,
		`{"totalNodes": -8, "tasks": [{"params": {"a": 1}}]}`,
		`{"totalNodes": 99999999999999999999, "tasks": [{"params": {"a": 1}}]}`,
		`{"totalNodes": 8, "tasks": [{"samples": [{"nodes": 1, "time": 1}]}]}`,
		`{"totalNodes": 8, "tasks": [{"samples": [{"nodes": -1, "time": 0}]}]}`,
		`{"totalNodes": 8, "deadlineMs": -9223372036854775808, "tasks": [{"params": {"a": 1}}]}`,
		`{"totalNodes": 8, "objective": "min-max", "useAllNodes": true,
			"tasks": [{"params": {"a": 1}, "minNodes": 3, "maxNodes": 2, "allowed": [5, 2]}]}`,
		`{"totalNodes": 8, "tasks": [{"params": {"a": 1}, "allowed": [0, -3, 9999]}]}`,
		`{"totalNodes": 8, "tasks": [{"params": {"a": 1}}]} trailing`,
		`{"totalNodes": 8, "unknown": true, "tasks": [{"params": {"a": 1}}]}`,
		`[1, 2, 3]`,
		`"just a string"`,
		"{\"totalNodes\": 8, \"tasks\": [{\"name\": \"\\u0000\", \"params\": {\"a\": 1}}]}",
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	opts := DefaultOptions()
	opts.MaxTasks = 64 // keep adversarial inputs cheap to validate
	f.Fuzz(func(t *testing.T, data []byte) {
		req, herr := decodeSolveRequest(data, &opts)
		if (req == nil) == (herr == nil) {
			t.Fatalf("decode returned req=%v err=%v: exactly one must be set", req, herr)
		}
		if herr != nil {
			if herr.status < 400 || herr.status > 499 {
				t.Fatalf("decoder error mapped to status %d, want 4xx", herr.status)
			}
			if herr.body.Error.Code == "" || herr.body.Error.Message == "" {
				t.Fatalf("untyped decode error: %+v", herr.body)
			}
			return
		}
		// Sample-bearing tasks run the (expensive, already-fuzzed) fitter;
		// restrict the construction check to parameter-only requests.
		for _, task := range req.Tasks {
			if len(task.Samples) > 0 {
				return
			}
		}
		prob, herr := buildProblem(req)
		if (prob == nil) == (herr == nil) {
			t.Fatalf("buildProblem returned prob=%v err=%v", prob, herr)
		}
		if prob != nil {
			if err := prob.Validate(); err != nil {
				t.Fatalf("decoder accepted a request that builds an invalid problem: %v", err)
			}
			// Canonicalization must hold its permutation invariant on
			// anything that decodes.
			c := canonicalize(routeSolve, prob)
			if len(c.perm) != len(prob.Tasks) {
				t.Fatalf("canonical perm length %d for %d tasks", len(c.perm), len(prob.Tasks))
			}
			seen := make([]bool, len(c.perm))
			for _, ri := range c.perm {
				if ri < 0 || ri >= len(seen) || seen[ri] {
					t.Fatalf("canonical perm %v is not a permutation", c.perm)
				}
				seen[ri] = true
			}
		}
	})
}
