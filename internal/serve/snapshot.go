package serve

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
)

// Cache snapshots persist the solution cache across restarts so a rebooted
// replica does not start with a cold cache under live traffic. The format
// is line-oriented JSON: a header line naming the schema and the engine
// fingerprint, then one line per entry.
//
// Loading re-validates everything: a snapshot written by a different
// engine (any change to the LP tolerance set — see lp.ToleranceFingerprint)
// is dropped wholesale, because cached solutions are only replayable under
// the exact solver configuration that produced them; and each surviving
// entry's key and node vector are validated individually, so a truncated
// or hand-edited file degrades to a partial (or empty) warmup, never a
// poisoned cache.

// snapshotSchema names the on-disk format; bump on incompatible change.
const snapshotSchema = "hslb-cache-snapshot/1"

type snapshotHeader struct {
	Schema string `json:"schema"`
	Engine string `json:"engine"`
}

type snapshotEntry struct {
	Key string       `json:"key"`
	Sol wireSolution `json:"sol"`
}

// SaveSnapshot writes the current cache contents. Entries are collected
// first and encoded after, so no shard lock is held across writes; a
// snapshot taken under live traffic is a consistent-enough warmup set, not
// a point-in-time transaction.
func (s *Server) SaveSnapshot(w io.Writer) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	if err := enc.Encode(snapshotHeader{Schema: snapshotSchema, Engine: engineFingerprint()}); err != nil {
		return err
	}
	var entries []snapshotEntry
	if s.cache != nil {
		s.cache.Range(func(key string, sol *canonSolution) bool {
			entries = append(entries, snapshotEntry{Key: key, Sol: toWire(sol)})
			return true
		})
	}
	for _, e := range entries {
		if err := enc.Encode(e); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// LoadSnapshot warms the cache from a snapshot stream, returning how many
// entries were restored and how many were dropped by re-validation. A
// stale engine fingerprint drops every entry (counted); a malformed header
// is an error (the file is not a snapshot at all).
func (s *Server) LoadSnapshot(r io.Reader) (loaded, dropped int, err error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64*1024), maxPeerBody)
	if !sc.Scan() {
		if err := sc.Err(); err != nil {
			return 0, 0, err
		}
		return 0, 0, fmt.Errorf("serve: snapshot is empty")
	}
	var hdr snapshotHeader
	if json.Unmarshal(sc.Bytes(), &hdr) != nil || hdr.Schema != snapshotSchema {
		return 0, 0, fmt.Errorf("serve: not a %s snapshot", snapshotSchema)
	}
	stale := hdr.Engine != engineFingerprint()
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var e snapshotEntry
		if json.Unmarshal(line, &e) != nil {
			dropped++
			continue
		}
		sol, ok := fromWire(e.Sol)
		if stale || !ok || !validCacheKey(e.Key) || s.cache == nil {
			dropped++
			continue
		}
		s.cache.Put(e.Key, sol)
		loaded++
	}
	if err := sc.Err(); err != nil {
		return loaded, dropped, err
	}
	s.stats.snapshotLoaded.Add(int64(loaded))
	s.stats.snapshotDropped.Add(int64(dropped))
	return loaded, dropped, nil
}

// SaveSnapshotFile writes the snapshot to opts.SnapshotPath via a
// temporary file + rename, so a crash mid-write never leaves a truncated
// snapshot where the next boot will read it.
func (s *Server) SaveSnapshotFile() error {
	if s.opts.SnapshotPath == "" {
		return fmt.Errorf("serve: no SnapshotPath configured")
	}
	tmp := s.opts.SnapshotPath + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if err := s.SaveSnapshot(f); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	return os.Rename(tmp, s.opts.SnapshotPath)
}

// LoadSnapshotFile warms the cache from opts.SnapshotPath. A missing file
// is a clean cold start, not an error.
func (s *Server) LoadSnapshotFile() (loaded, dropped int, err error) {
	if s.opts.SnapshotPath == "" {
		return 0, 0, fmt.Errorf("serve: no SnapshotPath configured")
	}
	f, err := os.Open(s.opts.SnapshotPath)
	if os.IsNotExist(err) {
		return 0, 0, nil
	}
	if err != nil {
		return 0, 0, err
	}
	defer f.Close()
	return s.LoadSnapshot(f)
}
