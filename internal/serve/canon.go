package serve

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"math"
	"sort"

	"repro/internal/core"
)

// canonical is the cache-facing view of one solve instance: the same
// problem with its tasks in a stable, request-order-independent order plus
// the hash key that identifies its equivalence class.
//
// Two requests share a key exactly when their canonical instances describe
// the same optimization problem: task order and task names are erased (the
// solver never reads names, and responses are rebuilt from the request),
// and redundant spellings of the same constraint set are normalized
// (MinNodes 0 vs 1, MaxNodes 0 vs ≥ N, allowed-set entries outside the
// admissible range).
//
// Performance coefficients are hashed in scale-canonical form: every
// time-dimensioned coefficient (a, b, d — not the dimensionless exponent
// base c) is divided by the instance's power-of-two time scale
// (core.Problem.TimeScaleExp) before its bits enter the hash, so an entire
// family of exact power-of-two rescalings of one workload collapses to a
// single cache entry.
//
// This is sound because every solver route is exactly equivariant under
// such rescalings: the parametric/DP/greedy routes only compare
// perfmodel.Eval values (which scale by the exact power of two), and the
// MINLP route normalizes its own time axis with the same TimeScaleExp
// before branch and bound, so two pow-2-related instances run bit-identical
// searches and return the same node vector. Only the node vector is cached;
// all reported times are re-evaluated on the requesting problem's own
// coefficients (buildSolution), so a cache hit is byte-identical to an
// uncached solve of that exact request. (Earlier revisions hashed raw bits
// because the solver stack carried absolute tolerances and rescaled
// instances could converge to different optima; the relative-tolerance
// overhaul removed that failure mode — see DESIGN.md "Numerics and
// tolerances".)
//
// Non-power-of-two rescalings do NOT share a key: dividing by the
// power-of-two scale leaves their mantissa bits distinct. That is
// deliberate — only the power-of-two quotient is exact in IEEE-754, so only
// there is bit-identity of the search guaranteed.
type canonical struct {
	// key is the hex SHA-256 cache key over (route, objective, budget
	// semantics, scale-canonicalized tasks).
	key string
	// tkey is key with the node budget erased: it identifies the
	// N-parameterized family this instance belongs to, and is the handle of
	// the parametric breakpoint tables (see table.go). Two requests share a
	// tkey exactly when their canonical instances differ in TotalNodes
	// alone — note that canonicalization itself is budget-aware (MaxNodes
	// and allowed-set normalization read the budget), so each request joins
	// a family through its own normalization and a family claim can never
	// leak across genuinely different constraint sets.
	tkey string
	// prob is the canonicalized instance the service actually solves: the
	// requesting problem with tasks reordered and representationally
	// normalized, at the caller's own time scale (the MINLP route
	// normalizes internally; the other routes are scale-equivariant as-is).
	prob *core.Problem
	// perm maps canonical task index → request task index, for
	// un-permuting the cached node vector on the way out.
	perm []int
}

// canonicalize builds the canonical instance and cache key for a validated
// problem. route names the solver endpoint ("solve", "minlp",
// "parametric"): the routes break ties among alternate optima differently,
// so their solutions must not share cache slots.
func canonicalize(route string, p *core.Problem) *canonical {
	k := len(p.Tasks)
	norm := make([]core.Task, k)
	for i := range p.Tasks {
		norm[i] = normalizeTask(p.Tasks[i], p.TotalNodes)
	}
	perm := make([]int, k)
	for i := range perm {
		perm[i] = i
	}
	// Stable sort on the full task content: equal keys (interchangeable
	// tasks) keep request order, which is harmless because swapping
	// identical tasks maps the instance onto itself.
	sort.SliceStable(perm, func(a, b int) bool {
		return taskLess(&norm[perm[a]], &norm[perm[b]])
	})
	tasks := make([]core.Task, k)
	for c, ri := range perm {
		tasks[c] = norm[ri]
	}

	cp := &core.Problem{
		Tasks:       tasks,
		TotalNodes:  p.TotalNodes,
		Objective:   p.Objective,
		UseAllNodes: p.UseAllNodes,
	}
	return &canonical{
		key:  hashInstance(route, cp, true),
		tkey: hashInstance(route, cp, false),
		prob: cp,
		perm: perm,
	}
}

// normalizeTask rewrites the redundant spellings of a task's constraint set
// into one canonical form without changing its meaning: MinNodes below 1
// means 1, MaxNodes of 0 or beyond the budget means "unbounded" (0), and
// allowed-set entries outside the effective [min, max] range can never be
// chosen. The name is kept for solver diagnostics but excluded from the
// hash.
func normalizeTask(t core.Task, total int) core.Task {
	if t.MinNodes < 1 {
		t.MinNodes = 1
	}
	if t.MaxNodes <= 0 || t.MaxNodes >= total {
		// A cap at or beyond the whole budget never binds.
		t.MaxNodes = 0
	}
	if t.Allowed != nil {
		hi := t.MaxNodes
		if hi == 0 {
			hi = total
		}
		kept := make([]int, 0, len(t.Allowed))
		for _, n := range t.Allowed {
			if n >= t.MinNodes && n <= hi {
				kept = append(kept, n)
			}
		}
		t.Allowed = kept
	}
	return t
}

// taskLess is the stable canonical order: performance coefficients first
// (the dominant term a, then b, c, d), then the constraint set. Names are
// deliberately not compared — they are not part of the instance identity.
func taskLess(a, b *core.Task) bool {
	if a.Perf.A != b.Perf.A {
		return a.Perf.A < b.Perf.A
	}
	if a.Perf.B != b.Perf.B {
		return a.Perf.B < b.Perf.B
	}
	if a.Perf.C != b.Perf.C {
		return a.Perf.C < b.Perf.C
	}
	if a.Perf.D != b.Perf.D {
		return a.Perf.D < b.Perf.D
	}
	if a.MinNodes != b.MinNodes {
		return a.MinNodes < b.MinNodes
	}
	if a.MaxNodes != b.MaxNodes {
		return a.MaxNodes < b.MaxNodes
	}
	if len(a.Allowed) != len(b.Allowed) {
		return len(a.Allowed) < len(b.Allowed)
	}
	for i := range a.Allowed {
		if a.Allowed[i] != b.Allowed[i] {
			return a.Allowed[i] < b.Allowed[i]
		}
	}
	return false
}

// hashInstance computes the canonical cache key. The encoding is a flat,
// fixed-order byte stream: any field that can alter the solution — route,
// objective, budget semantics, total nodes, and every task's
// scale-canonical coefficient bits and constraint set — is included; names,
// deadlines (only proven-optimal results are cached, and those are
// deadline-independent), and parallelism (bit-identical by the par
// contract) are not. The time scale exponent itself is deliberately NOT
// hashed: it is the one quantity that differs across a power-of-two
// rescaled family, and erasing it is exactly what lets the family share a
// slot.
//
// withN selects between the per-instance cache key (budget included) and
// the parametric family key (budget erased — everything else identical),
// so the two keys can never disagree about any other field.
func hashInstance(route string, p *core.Problem, withN bool) string {
	h := sha256.New()
	var buf [8]byte
	wu := func(v uint64) {
		binary.LittleEndian.PutUint64(buf[:], v)
		h.Write(buf[:])
	}
	wf := func(v float64) { wu(math.Float64bits(v)) }
	e := p.TimeScaleExp()
	if e != 0 && !scaleExact(p, e) {
		e = 0
	}
	h.Write([]byte(route))
	h.Write([]byte{0})
	wu(uint64(p.Objective))
	if p.UseAllNodes {
		wu(1)
	} else {
		wu(0)
	}
	if withN {
		wu(uint64(p.TotalNodes))
	}
	for i := range p.Tasks {
		t := &p.Tasks[i]
		wf(math.Ldexp(t.Perf.A, -e))
		wf(math.Ldexp(t.Perf.B, -e))
		wf(t.Perf.C) // dimensionless exponent base: not time-scaled
		wf(math.Ldexp(t.Perf.D, -e))
		wu(uint64(t.MinNodes))
		wu(uint64(t.MaxNodes))
		wu(uint64(len(t.Allowed)))
		for _, n := range t.Allowed {
			wu(uint64(n))
		}
	}
	return hex.EncodeToString(h.Sum(nil))
}

// scaleExact reports whether dividing every time coefficient by 2^e is an
// exact IEEE-754 operation (no underflow to subnormal loss, no overflow).
// If not, the instance is hashed at its raw scale: losing a cache-sharing
// opportunity is fine, letting two numerically distinct instances collide
// on one key is not.
func scaleExact(p *core.Problem, e int) bool {
	ok := func(x float64) bool {
		y := math.Ldexp(x, -e)
		return !math.IsInf(y, 0) && math.Ldexp(y, e) == x
	}
	for i := range p.Tasks {
		pf := &p.Tasks[i].Perf
		if !ok(pf.A) || !ok(pf.B) || !ok(pf.D) {
			return false
		}
	}
	return true
}

// unpermute maps a canonical-order node vector back onto request task
// order.
func (c *canonical) unpermute(nodes []int) []int {
	out := make([]int, len(nodes))
	for ci, ri := range c.perm {
		out[ri] = nodes[ci]
	}
	return out
}
