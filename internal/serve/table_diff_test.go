package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	hslb "repro"
	"repro/internal/core"
)

// withBudget is the serve-test variant of core.Problem.WithBudget: the same
// task family at a different node budget.
func withBudget(p *core.Problem, n int) *core.Problem {
	return &core.Problem{Tasks: p.Tasks, TotalNodes: n,
		Objective: p.Objective, UseAllNodes: p.UseAllNodes}
}

// sweetSpotProblem builds the production shape parametric tables exist for:
// every task restricted to power-of-two node counts (the paper's GDDI
// sweet spots), which makes the optimal allocation constant across wide
// budget brackets.
func sweetSpotProblem(rng *rand.Rand, k, total int) *core.Problem {
	tasks := make([]core.Task, k)
	for i := range tasks {
		var allowed []int
		for n := 1; n <= total; n *= 2 {
			allowed = append(allowed, n)
		}
		tasks[i] = core.Task{
			Name:    fmt.Sprintf("t%d", i),
			Perf:    randomCanonProblemOnce(rng).Tasks[0].Perf,
			Allowed: allowed,
		}
	}
	return &core.Problem{Tasks: tasks, TotalNodes: total, Objective: core.MinMax}
}

// TestDifferentialParametricTable is the tentpole gate: a ~1000-budget
// differential sweep (short mode: a slice) asserting that a table-enabled
// server is byte-identical, budget for budget, to a cache-disabled
// reference server and — for the min-max family — bit-identical to direct
// library solves rotated across the dense/sparse/warm/presolve ablations.
// Every budget is then replayed: the replay must be served (per-budget
// cache or table bracket) and byte-identical to the first pass. Zero
// bracket conflicts are tolerated across the whole sweep.
func TestDifferentialParametricTable(t *testing.T) {
	trials := 125 // ×8 budgets ≈ 1000 per-budget differential checks
	if testing.Short() {
		trials = 15
	}

	tabOpts := DefaultOptions()
	tabOpts.TableCacheSize = 64
	tabSrv, err := New(tabOpts)
	if err != nil {
		t.Fatal(err)
	}
	defer tabSrv.Close()
	tab := httptest.NewServer(tabSrv.Handler())
	defer tab.Close()

	refOpts := DefaultOptions()
	refOpts.DisableCache = true
	refSrv, err := New(refOpts)
	if err != nil {
		t.Fatal(err)
	}
	defer refSrv.Close()
	ref := httptest.NewServer(refSrv.Handler())
	defer ref.Close()

	rng := rand.New(rand.NewSource(20260808))
	checks := 0
	for trial := 0; trial < trials; trial++ {
		var p *core.Problem
		if trial%4 == 3 {
			p = sweetSpotProblem(rng, 2+rng.Intn(4), 48+rng.Intn(200))
		} else {
			p = randomCanonProblem(rng)
		}
		if trial%6 == 5 {
			p.Objective = core.MinSum // no tables; correctness must be unaffected
		}
		route := "parametric"
		if trial%4 == 1 {
			route = "solve"
		}

		base := p.TotalNodes
		type firstPass struct {
			status int
			sol    json.RawMessage
		}
		seen := map[int]firstPass{}
		for dn := -3; dn <= 4; dn++ {
			n := base + dn
			if n < 1 {
				continue
			}
			body := requestFromProblem(withBudget(p, n))
			status, _, sol, data := postRaw(t, tab.URL+"/v1/"+route, body)
			refStatus, refMeta, refSol, refData := postRaw(t, ref.URL+"/v1/"+route, body)
			if refMeta.Cached || refMeta.TableHit {
				t.Fatalf("reference server served from a cache it must not have")
			}
			if status != refStatus {
				t.Fatalf("trial %d %s N=%d: table server status %d, reference %d\n%s\n%s",
					trial, route, n, status, refStatus, data, refData)
			}
			if status != 200 {
				if !bytes.Equal(data, refData) {
					t.Fatalf("trial %d %s N=%d: servers disagree on failure body\n%s\n%s",
						trial, route, n, data, refData)
				}
				seen[n] = firstPass{status: status}
				continue
			}
			if !bytes.Equal(sol, refSol) {
				t.Fatalf("trial %d %s N=%d: table server diverges from reference\ntable: %s\nref:   %s",
					trial, route, n, sol, refSol)
			}
			seen[n] = firstPass{status: status, sol: sol}
			checks++

			// Direct-library ablation check: the canonical polish pins a
			// unique optimum for the min-max family, so the served body must
			// bit-match a fresh solve on every solver path.
			if p.Objective == core.MinMax && !p.UseAllNodes {
				cfg := equivConfigs[(trial*7+dn+3)%len(equivConfigs)]
				opts := cfg.opts
				opts.Canonical = true
				direct, err := hslb.Solve(withBudget(p, n), opts)
				if err != nil {
					t.Fatalf("trial %d N=%d (%s): direct solve: %v", trial, n, cfg.name, err)
				}
				var sb SolutionBody
				if err := json.Unmarshal(sol, &sb); err != nil {
					t.Fatal(err)
				}
				for i := range direct.Nodes {
					if sb.Allocation[i].Nodes != direct.Nodes[i] || sb.Allocation[i].Time != direct.Times[i] {
						t.Fatalf("trial %d N=%d (%s): served allocation diverges from direct solve\nserved: %+v\ndirect: %v / %v",
							trial, n, cfg.name, sb.Allocation, direct.Nodes, direct.Times)
					}
				}
				if sb.Makespan != direct.Makespan {
					t.Fatalf("trial %d N=%d (%s): makespan %v vs %v", trial, n, cfg.name, sb.Makespan, direct.Makespan)
				}
			}
		}

		// Replay every budget: now everything must be served without a fresh
		// solve and stay byte-identical.
		for n, fp := range seen {
			body := requestFromProblem(withBudget(p, n))
			status, meta, sol, data := postRaw(t, tab.URL+"/v1/"+route, body)
			if status != fp.status {
				t.Fatalf("trial %d %s N=%d: replay status %d, first pass %d: %s",
					trial, route, n, status, fp.status, data)
			}
			if status != 200 {
				continue
			}
			if !meta.Cached && !meta.TableHit {
				t.Fatalf("trial %d %s N=%d: replay was solved fresh (meta %+v)", trial, route, n, meta)
			}
			if !bytes.Equal(sol, fp.sol) {
				t.Fatalf("trial %d %s N=%d: replay diverges from first pass\nreplay: %s\nfirst:  %s",
					trial, route, n, sol, fp.sol)
			}
		}
	}

	st := tabSrv.Stats()
	if st.TableConflicts != 0 {
		t.Fatalf("bracket verification found %d conflicts across the sweep (stats %+v)", st.TableConflicts, st)
	}
	if st.TableHits == 0 {
		t.Fatalf("sweep never served from a table — the tentpole path did not run (stats %+v)", st)
	}
	if st.TableSegments == 0 || st.TableSolves == 0 {
		t.Fatalf("no brackets were certified (stats %+v)", st)
	}
	t.Logf("differential table sweep: %d per-budget checks, stats %+v", checks, st)
}

// TestParametricTableServing pins the serving mechanics end to end: one
// solve certifies a bracket; a request at a different budget inside it is
// answered from the table (tableHit meta, "table" cache header) and
// promoted into the per-budget cache, so its replay is a plain hit.
func TestParametricTableServing(t *testing.T) {
	srv, ts := newTestServer(t, func(o *ServerOptions) { o.TableCacheSize = 8 })
	rng := rand.New(rand.NewSource(7))
	p := sweetSpotProblem(rng, 3, 600)
	status, _, _, data := postRaw(t, ts.URL+"/v1/parametric", requestFromProblem(p))
	if status != 200 {
		t.Fatalf("base solve: %d %s", status, data)
	}
	st := srv.Stats()
	if st.TableSegments == 0 {
		t.Fatalf("sweet-spot solve certified no bracket (stats %+v)", st)
	}

	// White-box: read the certified bracket and pick an unseen interior
	// budget.
	canon := canonicalize(routeParametric, p)
	srv.tables.mu.Lock()
	entry := srv.tables.m[canon.tkey].Value.(*tableEntry)
	seg := entry.segs[0]
	srv.tables.mu.Unlock()
	if seg.hi <= seg.lo {
		t.Fatalf("degenerate bracket [%d,%d]", seg.lo, seg.hi)
	}
	inner := (seg.lo + seg.hi) / 2
	if inner == p.TotalNodes {
		inner++
	}

	body := requestFromProblem(withBudget(p, inner))
	status, meta, sol, _ := postRaw(t, ts.URL+"/v1/parametric", body)
	if status != 200 || !meta.TableHit || meta.Cached {
		t.Fatalf("interior budget %d not served from the table: status %d meta %+v", inner, status, meta)
	}
	if got := srv.Stats().TableHits; got != 1 {
		t.Fatalf("tableHits = %d, want 1", got)
	}

	// Promotion: the replay is a plain per-budget cache hit, byte-identical.
	resp, err := http.Post(ts.URL+"/v1/parametric", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if got := resp.Header.Get("X-HSLB-Cache"); got != "hit" {
		t.Fatalf("replay X-HSLB-Cache = %q, want hit (promotion failed)", got)
	}
	_, meta2, sol2, _ := postRaw(t, ts.URL+"/v1/parametric", body)
	if !meta2.Cached || meta2.TableHit {
		t.Fatalf("replay meta %+v", meta2)
	}
	if !bytes.Equal(sol, sol2) {
		t.Fatalf("promoted replay diverges:\n%s\n%s", sol, sol2)
	}
}

// TestTableCacheEvictionInvalidation: evicting a family's table forgets its
// brackets (requests solve again), while a table surviving a per-budget
// cache eviction still serves the evicted budget.
func TestTableCacheEvictionInvalidation(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	famA := sweetSpotProblem(rng, 3, 500)
	famB := sweetSpotProblem(rng, 3, 500)

	// Part 1: table LRU churn. With room for one family, solving B evicts
	// A's table, so A's certified bracket no longer serves.
	srv, ts := newTestServer(t, func(o *ServerOptions) { o.TableCacheSize = 1 })
	if status, _, _, data := postRaw(t, ts.URL+"/v1/parametric", requestFromProblem(famA)); status != 200 {
		t.Fatalf("famA: %d %s", status, data)
	}
	canonA := canonicalize(routeParametric, famA)
	srv.tables.mu.Lock()
	elA, okA := srv.tables.m[canonA.tkey]
	var segA tableSeg
	if okA {
		segA = elA.Value.(*tableEntry).segs[0]
	}
	srv.tables.mu.Unlock()
	if !okA || segA.hi <= segA.lo {
		t.Fatalf("famA certified no usable bracket")
	}
	if status, _, _, data := postRaw(t, ts.URL+"/v1/parametric", requestFromProblem(famB)); status != 200 {
		t.Fatalf("famB: %d %s", status, data)
	}
	st := srv.Stats()
	if st.TableFamilies != 1 {
		t.Fatalf("table LRU not bounded: %+v", st)
	}
	inner := (segA.lo + segA.hi) / 2
	if inner == famA.TotalNodes {
		inner++
	}
	_, meta, _, _ := postRaw(t, ts.URL+"/v1/parametric", requestFromProblem(withBudget(famA, inner)))
	if meta.TableHit {
		t.Fatalf("evicted family still served from a table (meta %+v)", meta)
	}

	// Part 2: the opposite survival order. With a one-entry per-budget
	// cache, solving B evicts A's per-budget entry, but A's table bracket
	// (room for both families now) still answers A's original budget.
	srv2, ts2 := newTestServer(t, func(o *ServerOptions) {
		o.CacheSize = 1
		o.TableCacheSize = 8
	})
	if status, _, _, data := postRaw(t, ts2.URL+"/v1/parametric", requestFromProblem(famA)); status != 200 {
		t.Fatalf("famA: %d %s", status, data)
	}
	if status, _, _, data := postRaw(t, ts2.URL+"/v1/parametric", requestFromProblem(famB)); status != 200 {
		t.Fatalf("famB: %d %s", status, data)
	}
	if st := srv2.Stats(); st.CacheSize != 1 {
		t.Fatalf("per-budget cache not bounded: %+v", st)
	}
	_, meta, _, _ = postRaw(t, ts2.URL+"/v1/parametric", requestFromProblem(famA))
	if !meta.TableHit || meta.Cached {
		t.Fatalf("evicted budget not re-served from the surviving table (meta %+v)", meta)
	}
}

// failingParametricBody is an instance the parametric route reliably fails
// on: max-min requires handing out the whole budget, but the allowed sets
// can only sum to 4, 6, or 8 nodes — never 7.
const failingParametricBody = `{
  "totalNodes": 7,
  "objective": "max-min",
  "tasks": [
    {"params": {"a": 100, "b": 0, "c": 1, "d": 0}, "allowed": [2, 4]},
    {"params": {"a": 80, "b": 0, "c": 1, "d": 0}, "allowed": [2, 4]}
  ]
}`

// TestSingleflightCounterAudit pins the counting discipline under
// singleflight batching on a failing solve. Historically solveErrors was
// counted once per waiter — a batch of k collapsed requests sharing one
// failed dispatch reported k+1 solver errors. The audit: request-scoped
// counters move once per request, flight-scoped ones once per dispatch.
func TestSingleflightCounterAudit(t *testing.T) {
	srv, ts := newTestServer(t, func(o *ServerOptions) {
		o.BatchWindow = 500 * time.Millisecond
	})
	const clients = 4
	var start, wg sync.WaitGroup
	start.Add(1)
	statuses := make([]int, clients)
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			start.Wait()
			resp, err := http.Post(ts.URL+"/v1/parametric", "application/json",
				strings.NewReader(failingParametricBody))
			if err != nil {
				t.Errorf("client %d: %v", i, err)
				return
			}
			resp.Body.Close()
			statuses[i] = resp.StatusCode
		}(i)
	}
	start.Done()
	wg.Wait()
	for i, s := range statuses {
		if s != 500 {
			t.Fatalf("client %d: status %d, want 500 (instance no longer fails?)", i, s)
		}
	}
	st := srv.Stats()
	if st.Requests != clients || st.Misses != clients {
		t.Fatalf("request-scoped counters: %+v, want requests=misses=%d", st, clients)
	}
	if st.Solves != 1 || st.SolveErrors != 1 {
		t.Fatalf("flight-scoped counters: %+v, want solves=solveErrors=1 for %d batched clients", st, clients)
	}
	if st.Collapsed != clients-1 {
		t.Fatalf("collapsed = %d, want %d (batch window missed?)", st.Collapsed, clients-1)
	}
	if st.Hits != 0 || st.Rejected != 0 || st.Bounded != 0 || st.TableHits != 0 {
		t.Fatalf("unexpected counter movement: %+v", st)
	}
}

// TestQueueFullRejectedPerWaiter: admission rejection is a request-scoped
// verdict. Every waiter sharing the rejected flight gets the 429 and must
// be counted — the old flight-scoped count reported 1 rejection for any
// number of collapsed clients.
func TestQueueFullRejectedPerWaiter(t *testing.T) {
	srv, ts := newTestServer(t, func(o *ServerOptions) {
		o.MaxInFlight = 1
		o.QueueTimeout = 100 * time.Millisecond
		o.BatchWindow = 200 * time.Millisecond
	})
	srv.sem <- struct{}{} // occupy the only solve slot
	defer func() { <-srv.sem }()

	const clients = 3
	var start, wg sync.WaitGroup
	start.Add(1)
	statuses := make([]int, clients)
	codes := make([]string, clients)
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			start.Wait()
			resp, err := http.Post(ts.URL+"/v1/solve", "application/json", strings.NewReader(twoTaskBody))
			if err != nil {
				t.Errorf("client %d: %v", i, err)
				return
			}
			data := make([]byte, 4096)
			n, _ := resp.Body.Read(data)
			resp.Body.Close()
			statuses[i] = resp.StatusCode
			var body ErrorBody
			_ = json.Unmarshal(data[:n], &body)
			codes[i] = body.Error.Code
		}(i)
	}
	start.Done()
	wg.Wait()
	for i := range statuses {
		if statuses[i] != 429 || codes[i] != CodeQueueFull {
			t.Fatalf("client %d: status %d code %q, want 429 %q", i, statuses[i], codes[i], CodeQueueFull)
		}
	}
	st := srv.Stats()
	if st.Rejected != clients {
		t.Fatalf("rejected = %d, want %d (one per bounced waiter): %+v", st.Rejected, clients, st)
	}
	if st.Solves != 0 || st.SolveErrors != 0 {
		t.Fatalf("a rejected flight must not count as solver work: %+v", st)
	}
}
