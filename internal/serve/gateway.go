package serve

import (
	"bytes"
	"io"
	"net/http"
	"sync/atomic"
	"time"

	"repro/internal/fleet"
)

// Gateway is the fleet's thin routing tier: it decodes and canonicalizes
// each solve request at the edge, routes it to the canonical key's
// consistent-hash owner, and streams the replica's response back verbatim.
// Because routing is by *canonical* key, every spelling of the same
// instance — permuted task order, power-of-two rescaled coefficients —
// lands on the same replica and shares its cache entry; a random or
// round-robin balancer would smear one hot instance across every replica's
// cache instead.
//
// Failure handling: a transport-level error (replica down, connection
// refused, timeout) fails over to the key's second ring owner, once. An
// HTTP-level error is NOT retried — a replica that answered is alive, and
// its typed error (429, 422, 500...) is the answer; retrying it would
// double-count request-scoped statz counters on the fleet. When both
// owners fail at the transport level the gateway answers 502
// replica_unavailable.
//
// The gateway holds no solver state: responses are byte-identical to
// talking to the owning replica directly (pinned by the replicated
// differential battery).
type Gateway struct {
	opts   ServerOptions // decode limits only (MaxTasks, MaxTotalNodes, MaxBodyBytes)
	ring   *fleet.Ring
	url    map[string]string
	client *http.Client
	mux    *http.ServeMux

	requests    atomic.Int64
	forwarded   atomic.Int64
	retries     atomic.Int64
	unavailable atomic.Int64
	badRequests atomic.Int64
}

// GatewayOptions configures a Gateway. Zero limits inherit DefaultOptions.
type GatewayOptions struct {
	// Replicas is the fleet membership: the same ID set every replica was
	// configured with (the ring must agree fleet-wide), plus base URLs.
	Replicas []ReplicaSpec
	// MaxTasks / MaxTotalNodes / MaxBodyBytes mirror the replicas' decode
	// limits so the gateway rejects exactly what a replica would reject.
	MaxTasks      int
	MaxTotalNodes int
	MaxBodyBytes  int64
	// Timeout bounds each forwarded attempt end-to-end; 0 means no bound
	// (solves can be slow — set this above the replicas' MaxDeadline).
	Timeout time.Duration
}

// NewGateway validates opts and builds the routing tier.
func NewGateway(opts GatewayOptions) (*Gateway, error) {
	if len(opts.Replicas) == 0 {
		return nil, &OptionError{Field: "Replicas", Value: opts.Replicas,
			Reason: "a gateway needs at least one replica"}
	}
	seen := map[string]bool{}
	for _, r := range opts.Replicas {
		if r.ID == "" || r.URL == "" {
			return nil, &OptionError{Field: "Replicas", Value: r,
				Reason: "every replica needs a non-empty ID and URL"}
		}
		if seen[r.ID] {
			return nil, &OptionError{Field: "Replicas", Value: r.ID,
				Reason: "replica IDs must be unique"}
		}
		seen[r.ID] = true
	}
	if opts.Timeout < 0 {
		return nil, &OptionError{Field: "Timeout", Value: opts.Timeout,
			Reason: "must be non-negative"}
	}
	def := DefaultOptions()
	lim := ServerOptions{MaxTasks: def.MaxTasks, MaxTotalNodes: def.MaxTotalNodes, MaxBodyBytes: def.MaxBodyBytes}
	if opts.MaxTasks > 0 {
		lim.MaxTasks = opts.MaxTasks
	}
	if opts.MaxTotalNodes > 0 {
		lim.MaxTotalNodes = opts.MaxTotalNodes
	}
	if opts.MaxBodyBytes > 0 {
		lim.MaxBodyBytes = opts.MaxBodyBytes
	}
	g := &Gateway{
		opts:   lim,
		ring:   fleet.NewRing(fleet.DefaultVNodes),
		url:    make(map[string]string, len(opts.Replicas)),
		client: &http.Client{Timeout: opts.Timeout},
		mux:    http.NewServeMux(),
	}
	for _, r := range opts.Replicas {
		g.ring.Add(r.ID)
		g.url[r.ID] = r.URL
	}
	g.mux.HandleFunc("/v1/solve", g.routeHandler(routeSolve))
	g.mux.HandleFunc("/v1/minlp", g.routeHandler(routeMINLP))
	g.mux.HandleFunc("/v1/parametric", g.routeHandler(routeParametric))
	g.mux.HandleFunc("/v1/healthz", g.handleHealthz)
	g.mux.HandleFunc("/v1/statz", g.handleStatz)
	return g, nil
}

// Handler returns the gateway's HTTP handler.
func (g *Gateway) Handler() http.Handler { return g.mux }

// GatewayStats is the /v1/statz snapshot of the routing tier.
type GatewayStats struct {
	Requests    int64 `json:"requests"`    // solve-family requests received
	Forwarded   int64 `json:"forwarded"`   // attempts forwarded to a replica
	Retries     int64 `json:"retries"`     // transport-failure failovers to the second owner
	Unavailable int64 `json:"unavailable"` // requests answered 502 (both owners down)
	BadRequests int64 `json:"badRequests"` // rejected at the edge before routing
	Replicas    int64 `json:"replicas"`    // ring size
}

// Stats snapshots the gateway counters.
func (g *Gateway) Stats() GatewayStats {
	return GatewayStats{
		Requests:    g.requests.Load(),
		Forwarded:   g.forwarded.Load(),
		Retries:     g.retries.Load(),
		Unavailable: g.unavailable.Load(),
		BadRequests: g.badRequests.Load(),
		Replicas:    int64(g.ring.Size()),
	}
}

func (g *Gateway) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, &httpError{status: 405, body: ErrorBody{ErrorDetail{
			Code: CodeMethodNotAllowed, Message: "use GET"}}})
		return
	}
	writeJSON(w, 200, map[string]interface{}{"status": "ok", "replicas": g.ring.Size()})
}

func (g *Gateway) handleStatz(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, &httpError{status: 405, body: ErrorBody{ErrorDetail{
			Code: CodeMethodNotAllowed, Message: "use GET"}}})
		return
	}
	writeJSON(w, 200, g.Stats())
}

// routeHandler builds the forwarding handler of one solve route. The
// request is decoded with the replicas' own decode path, so anything a
// replica would reject is rejected here with the identical typed error —
// and anything accepted routes by its canonical key.
func (g *Gateway) routeHandler(route string) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			writeError(w, &httpError{status: 405, body: ErrorBody{ErrorDetail{
				Code: CodeMethodNotAllowed, Message: "use POST"}}})
			return
		}
		g.requests.Add(1)
		body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, g.opts.MaxBodyBytes))
		if err != nil {
			g.badRequests.Add(1)
			writeError(w, badRequest("reading body: %v", err))
			return
		}
		req, herr := decodeSolveRequest(body, &g.opts)
		if herr != nil {
			g.badRequests.Add(1)
			writeError(w, herr)
			return
		}
		prob, herr := buildProblem(req)
		if herr != nil {
			g.badRequests.Add(1)
			writeError(w, herr)
			return
		}
		key := canonicalize(route, prob).key

		// Owner first, then its ring successor as the one-shot failover.
		for attempt, id := range g.ring.Owners(key, 2) {
			if attempt == 1 {
				g.retries.Add(1)
			}
			g.forwarded.Add(1)
			resp, err := g.forward(r, id, body)
			if err != nil {
				continue // transport failure: the replica never saw it
			}
			w.Header().Set("X-HSLB-Replica", id)
			relay(w, resp)
			return
		}
		g.unavailable.Add(1)
		writeError(w, &httpError{status: 502, body: ErrorBody{ErrorDetail{
			Code:    CodeReplicaUnavailable,
			Message: "the instance's replica and its failover are unreachable"}}})
	}
}

// forward POSTs the original body bytes to one replica. The request
// context is propagated so a client hanging up cancels the replica-side
// solve wait too.
func (g *Gateway) forward(r *http.Request, id string, body []byte) (*http.Response, error) {
	req, err := http.NewRequestWithContext(r.Context(), http.MethodPost,
		g.url[id]+r.URL.Path, bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	return g.client.Do(req)
}

// relay copies a replica response to the client verbatim: status, the
// response headers the service defines, and the body bytes untouched —
// the gateway must be invisible in the bytes (X-HSLB-Replica aside, which
// names where the answer came from).
func relay(w http.ResponseWriter, resp *http.Response) {
	defer resp.Body.Close()
	for _, h := range []string{"Content-Type", "X-HSLB-Cache", engineHeader} {
		if v := resp.Header.Get(h); v != "" {
			w.Header().Set(h, v)
		}
	}
	w.WriteHeader(resp.StatusCode)
	_, _ = io.Copy(w, resp.Body)
}
