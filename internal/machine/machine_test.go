package machine

import (
	"math"
	"testing"

	"repro/internal/stats"
)

func TestIntrepidShape(t *testing.T) {
	m := Intrepid()
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	if m.Nodes != 40960 || m.CoresPerNode != 4 {
		t.Fatalf("Intrepid dimensions wrong: %d nodes × %d cores", m.Nodes, m.CoresPerNode)
	}
	if m.Cores() != 163840 {
		t.Fatalf("Cores = %d", m.Cores())
	}
}

func TestValidate(t *testing.T) {
	cases := []func(*Machine){
		func(m *Machine) { m.Nodes = 0 },
		func(m *Machine) { m.CoresPerNode = 0 },
		func(m *Machine) { m.Speed = 0 },
		func(m *Machine) { m.BandwidthBytesPerSec = 0 },
		func(m *Machine) { m.NoiseSigma = -1 },
	}
	for i, mutate := range cases {
		m := Small(8)
		mutate(m)
		if err := m.Validate(); err == nil {
			t.Fatalf("case %d: invalid machine accepted", i)
		}
	}
}

func TestComputeTimeScales(t *testing.T) {
	m := Small(1024)
	t1 := m.ComputeTime(1e12, 1)
	t2 := m.ComputeTime(1e12, 2)
	if math.Abs(t1/t2-2) > 1e-9 {
		t.Fatalf("compute time not inversely proportional to nodes: %v vs %v", t1, t2)
	}
	fast := Small(1024)
	fast.Speed = 2
	if math.Abs(m.ComputeTime(1e12, 4)/fast.ComputeTime(1e12, 4)-2) > 1e-9 {
		t.Fatal("speed factor not applied")
	}
}

func TestCommTime(t *testing.T) {
	m := Small(64)
	// Pure latency.
	if got := m.CommTime(0, 10); math.Abs(got-10*m.LatencySec) > 1e-15 {
		t.Fatalf("latency term = %v", got)
	}
	// Pure bandwidth.
	if got := m.CommTime(1e9, 0); math.Abs(got-1) > 1e-9 {
		t.Fatalf("bandwidth term = %v", got)
	}
}

func TestCollectiveTimeLog(t *testing.T) {
	m := Small(64)
	t64 := m.CollectiveTime(0, 64)
	t2 := m.CollectiveTime(0, 2)
	if math.Abs(t64/t2-6) > 1e-9 { // log2(64)=6 vs log2(2)=1
		t.Fatalf("collective stages: %v vs %v", t64, t2)
	}
	if m.CollectiveTime(0, 1) != 0 {
		t.Fatal("single-node collective should cost nothing")
	}
}

func TestNoise(t *testing.T) {
	quiet := Small(8) // NoiseSigma = 0
	rng := stats.NewRNG(1)
	if f := quiet.Noise(rng); f != 1 {
		t.Fatalf("noise-free machine returned factor %v", f)
	}
	noisy := Intrepid()
	sum := 0.0
	n := 50000
	for i := 0; i < n; i++ {
		f := noisy.Noise(rng)
		if f <= 0 {
			t.Fatalf("non-positive noise factor %v", f)
		}
		sum += f
	}
	if mean := sum / float64(n); math.Abs(mean-1) > 0.01 {
		t.Fatalf("noise mean %v, want ~1", mean)
	}
}
