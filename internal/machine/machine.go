// Package machine models the parallel machine the simulations run on — a
// Blue Gene/P-like system, standing in for Intrepid (ALCF), the platform of
// the paper's experiments: 40,960 quad-core nodes, with the application run
// as 1 MPI task × 4 threads per node so that the node is the allocation
// unit (exactly the paper's choice: "nodes were used to represent the
// physical computing unit in our algorithm").
//
// The model is deliberately simple — per-node compute rate, a latency/
// bandwidth communication term, and deterministic run-to-run noise — because
// HSLB only observes per-task wall-clock times; what matters is that those
// times scale the way real machines make them scale.
package machine

import (
	"fmt"

	"repro/internal/stats"
)

// Machine describes the simulated system.
type Machine struct {
	// Name for reports.
	Name string
	// Nodes is the total node count (Intrepid: 40960).
	Nodes int
	// CoresPerNode (Intrepid BG/P: 4).
	CoresPerNode int
	// Speed scales all compute times (1.0 = BG/P-like baseline; >1 is a
	// faster machine).
	Speed float64
	// LatencySec is the per-message latency of the interconnect.
	LatencySec float64
	// BandwidthBytesPerSec is the per-link bandwidth.
	BandwidthBytesPerSec float64
	// NoiseSigma is the lognormal sigma of run-to-run variability of task
	// times (OS jitter, network contention). 0 disables noise.
	NoiseSigma float64
}

// Intrepid returns the machine model for the paper's platform.
func Intrepid() *Machine {
	return &Machine{
		Name:                 "Intrepid (IBM Blue Gene/P)",
		Nodes:                40960,
		CoresPerNode:         4,
		Speed:                1.0,
		LatencySec:           3.5e-6,
		BandwidthBytesPerSec: 425e6, // per-link 3D torus
		NoiseSigma:           0.015,
	}
}

// Small returns a small test machine with no noise.
func Small(nodes int) *Machine {
	return &Machine{
		Name:                 fmt.Sprintf("test-%d", nodes),
		Nodes:                nodes,
		CoresPerNode:         4,
		Speed:                1.0,
		LatencySec:           1e-6,
		BandwidthBytesPerSec: 1e9,
	}
}

// Cores returns the total core count.
func (m *Machine) Cores() int { return m.Nodes * m.CoresPerNode }

// Validate reports configuration problems.
func (m *Machine) Validate() error {
	if m.Nodes < 1 {
		return fmt.Errorf("machine: need at least one node, have %d", m.Nodes)
	}
	if m.CoresPerNode < 1 {
		return fmt.Errorf("machine: need at least one core per node, have %d", m.CoresPerNode)
	}
	if m.Speed <= 0 {
		return fmt.Errorf("machine: non-positive speed %g", m.Speed)
	}
	if m.LatencySec < 0 || m.BandwidthBytesPerSec <= 0 {
		return fmt.Errorf("machine: invalid network parameters")
	}
	if m.NoiseSigma < 0 {
		return fmt.Errorf("machine: negative noise sigma")
	}
	return nil
}

// ComputeTime returns the wall-clock seconds for `flops` of perfectly
// parallel work on n nodes.
func (m *Machine) ComputeTime(flops float64, n int) float64 {
	// BG/P-like nominal rate: 3.4 GF/core sustained fraction folded into
	// Speed; use 1e9 flop/s·core as the unit scale.
	rate := 1e9 * m.Speed * float64(m.CoresPerNode) * float64(n)
	return flops / rate
}

// CommTime returns the wall-clock seconds to move `bytes` across the
// interconnect in `messages` messages (α-β model).
func (m *Machine) CommTime(bytes float64, messages float64) float64 {
	return messages*m.LatencySec + bytes/m.BandwidthBytesPerSec
}

// CollectiveTime approximates a tree-based collective over n nodes moving
// `bytes` per stage: log₂(n) latency-bound stages.
func (m *Machine) CollectiveTime(bytes float64, n int) float64 {
	stages := 0.0
	for v := 1; v < n; v <<= 1 {
		stages++
	}
	return stages * (m.LatencySec + bytes/m.BandwidthBytesPerSec)
}

// Noise returns a multiplicative run-to-run noise factor (expectation 1)
// drawn from rng; exactly 1 when the machine is noise-free.
func (m *Machine) Noise(rng *stats.RNG) float64 {
	return rng.LogNormFactor(m.NoiseSigma)
}
