package lp

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// The package's tolerances (costEps, pivotEps, feasEps, …) live in tol.go.

// varMap records how an original variable was rewritten in standard form.
type varMap struct {
	kind  int     // 0: x = lo + u, 1: x = hi - u, 2: x = u⁺ - u⁻, 3: fixed
	col   int     // primary standard column (u or u⁺)
	col2  int     // u⁻ for kind 2
	shift float64 // lo (kind 0), hi (kind 1), fixed value (kind 3)
}

// standard is the problem in bounded computational form:
// min cᵀu + c0, A u = b, lb ≤ u ≤ ub (lb finite, ub may be +Inf).
//
// A cold standardization always produces lb = 0; warm-start bound updates
// (Incremental.TightenBound) move lb/ub of individual columns, which the
// bounded-variable simplex handles implicitly — they cost nothing, unlike
// explicit rows. This matters: the HSLB master MILPs carry thousands of
// binaries.
type standard struct {
	a  [][]float64
	b  []float64
	c  []float64
	lb []float64
	ub []float64
	c0 float64

	vmaps []varMap
	// rowOf[i] is the standard row holding original constraint i;
	// rowSign[i] maps the standard dual back to the original sense.
	rowOf   []int
	rowSign []float64
	// unitCol[r] is a column that started as the identity on row r (its
	// slack or artificial), used to read B⁻¹ for dual extraction.
	unitCol []int
	nReal   int // columns that are not artificial

	// orig/origB are the pristine (unreduced) constraint matrix and RHS,
	// captured just before phase 1 when a warm-capable solve was requested.
	// They are the refactorization source for installing a stored Basis.
	orig  [][]float64
	origB []float64

	// pat holds the per-row nonzero patterns built during standardization
	// (CSR index arrays over the dense rows; nil when the sparse kernels
	// are disabled). origPat is the pristine-row counterpart of orig, the
	// pattern source for sparse refactorization.
	pat     [][]int32
	origPat [][]int32

	// val holds the nonzero values aligned with pat, built only by
	// sparse-only standardization (the revised engine's input) — the dense
	// rows are then never materialized and a stays row-count-only (nil
	// rows), saving the m×n arena entirely.
	val [][]float64

	// scale is the power-of-two magnitude of the standardized RHS
	// (primalScale(b), tol.go); every SCALED tolerance of the solve is
	// multiplied by it so verdicts are relative to the data's units.
	scale float64
}

// workspace is the reusable dense-matrix arena for cold solves. Pooling it
// means branch-and-bound node solves stop reallocating the tableau, the
// single largest allocation of the solver hot path. The arena only ever
// backs one solve at a time; persistent (warm) solvers pass ws == nil and
// allocate normally.
type workspace struct {
	arena []float64

	// Sparse-kernel scratch, pooled alongside the matrix arena: patArena
	// backs the per-row nonzero pattern lists, the flat int32 buffers back
	// the column counts, the generation-stamp array, and the pattern
	// rebuild scratch of one tableau at a time.
	patArena   []int32
	colCnt     []int32
	mark       []int32
	patScratch []int32

	// Row-accumulator scratch for standardize: a dense coefficient
	// accumulator plus membership marks and the touched-column list,
	// replacing the per-row map the row builder used to allocate.
	// valArena backs the sparse-only value rows (the pattern rows reuse
	// patArena, which the dense path's patMatrix never touches in
	// sparse-only mode). Invariant between calls: acc and accMark are
	// all-zero.
	acc      []float64
	accMark  []int32
	accTouch []int32
	valArena []float64
}

var wsPool = sync.Pool{New: func() interface{} { return &workspace{} }}

// matrix carves m rows of length 0 and capacity w each from the arena.
// Appending within a row stays inside its slot; the rare overflow falls back
// to the Go allocator, which is safe (just unpooled).
func (ws *workspace) matrix(m, w int) [][]float64 {
	if ws == nil {
		rows := make([][]float64, 0, m)
		return rows
	}
	need := m * w
	if cap(ws.arena) < need {
		ws.arena = make([]float64, need)
	}
	a := ws.arena[:need]
	for i := range a {
		a[i] = 0
	}
	rows := make([][]float64, m)
	for i := range rows {
		rows[i] = a[i*w : i*w : (i+1)*w]
	}
	return rows[:0]
}

// patMatrix carves m empty pattern rows of capacity w from the pooled
// int32 arena (mirrors matrix; a pattern can never exceed the column
// capacity of its row, so the slots cannot overflow).
func (ws *workspace) patMatrix(m, w int) [][]int32 {
	if ws == nil {
		return make([][]int32, 0, m)
	}
	need := m * w
	if cap(ws.patArena) < need {
		ws.patArena = make([]int32, need)
	}
	a := ws.patArena[:need]
	rows := make([][]int32, m)
	for i := range rows {
		rows[i] = a[i*w : i*w : (i+1)*w][:0]
	}
	return rows[:0]
}

// sortPattern orders a freshly built pattern row ascending (map iteration
// order is random; the kernels need determinism). Small rows use an
// allocation-free insertion sort; the rare dense row (the node-budget row)
// goes through sort.Slice.
func sortPattern(v []int32) {
	if len(v) > 32 {
		sort.Slice(v, func(i, j int) bool { return v[i] < v[j] })
		return
	}
	for i := 1; i < len(v); i++ {
		x := v[i]
		j := i - 1
		for j >= 0 && v[j] > x {
			v[j+1] = v[j]
			j--
		}
		v[j+1] = x
	}
}

// standardize rewrites p into bounded standard form. It returns Infeasible
// immediately for contradictory bounds. ws (optional) provides the row
// arena. keepFixed retains lo==hi variables as real zero-range columns
// instead of eliminating them — required by warm-capable solves, where a
// later TightenBound may relax the fix and the column must still exist for
// the change to be absorbable. sparseOnly skips the dense rows entirely
// and emits aligned pattern/value rows (s.pat/s.val) instead — the revised
// engine's input, which at thousands of fragments avoids clearing an
// m×n arena just to read its few nonzeros; s.a then holds nil rows and
// serves only as the row count.
func standardize(p *Problem, ws *workspace, keepFixed, sparseOnly bool) (*standard, Status) {
	s := &standard{}
	n := len(p.costs)
	s.vmaps = make([]varMap, n)

	// Upper bound on the final column count: one or two structural columns
	// per variable, one slack per inequality row, one artificial per row.
	maxCols := 0
	for j := 0; j < n; j++ {
		if math.IsInf(p.lo[j], -1) && math.IsInf(p.hi[j], 1) {
			maxCols += 2
		} else if keepFixed || p.lo[j] != p.hi[j] || math.IsInf(p.lo[j], 0) {
			maxCols++
		}
	}
	maxCols += 2 * len(p.rows)
	var rows [][]float64
	sparseOn := !p.DisableSparse || sparseOnly
	var pats [][]int32
	var patFlat []int32
	var valFlat []float64
	if sparseOnly {
		pats = make([][]int32, 0, len(p.rows))
		s.val = make([][]float64, 0, len(p.rows))
		// Flat arenas for the pattern/value rows, pre-sized so appends
		// never reallocate mid-build: ≤ 2 columns per term (a free
		// variable splits) plus one slack per row.
		nnzBound := len(p.rows)
		for i := range p.rows {
			nnzBound += 2 * len(p.rows[i].Terms)
		}
		if ws != nil {
			if cap(ws.patArena) < nnzBound {
				ws.patArena = make([]int32, 0, nnzBound)
			}
			if cap(ws.valArena) < nnzBound {
				ws.valArena = make([]float64, 0, nnzBound)
			}
			patFlat = ws.patArena[:0]
			valFlat = ws.valArena[:0]
		} else {
			patFlat = make([]int32, 0, nnzBound)
			valFlat = make([]float64, 0, nnzBound)
		}
	} else {
		rows = ws.matrix(len(p.rows), maxCols)
		if sparseOn {
			pats = ws.patMatrix(len(p.rows), maxCols)
		}
	}

	// Map variables.
	for j := 0; j < n; j++ {
		lo, hi := p.lo[j], p.hi[j]
		switch {
		case lo > hi:
			return nil, Infeasible
		case lo == hi && !math.IsInf(lo, 0) && !keepFixed:
			s.vmaps[j] = varMap{kind: 3, shift: lo}
			s.c0 += p.costs[j] * lo
		case !math.IsInf(lo, -1):
			u := hi - lo // +Inf when hi is +Inf
			col := s.addCol(p.costs[j], u)
			s.vmaps[j] = varMap{kind: 0, col: col, shift: lo}
			s.c0 += p.costs[j] * lo
		case !math.IsInf(hi, 1): // lo = -inf, hi finite
			col := s.addCol(-p.costs[j], math.Inf(1))
			s.vmaps[j] = varMap{kind: 1, col: col, shift: hi}
			s.c0 += p.costs[j] * hi
		default: // free
			cp := s.addCol(p.costs[j], math.Inf(1))
			cm := s.addCol(-p.costs[j], math.Inf(1))
			s.vmaps[j] = varMap{kind: 2, col: cp, col2: cm}
		}
	}

	// Constraint rows. Each becomes an equality with optional slack. Row
	// coefficients accumulate into a dense accumulator plus a touched-column
	// list — the per-row map this code used to allocate dominated the
	// revised path's allocs_per_op once everything else was pooled.
	// Invariant: acc and accMark are all-zero between rows (each row clears
	// exactly what it touched).
	s.rowOf = make([]int, len(p.rows))
	s.rowSign = make([]float64, len(p.rows))
	var acc []float64
	var accMark []int32
	var accTouch []int32
	if ws != nil {
		if cap(ws.acc) < maxCols {
			ws.acc = make([]float64, maxCols)
			ws.accMark = make([]int32, maxCols)
		}
		acc, accMark = ws.acc[:maxCols], ws.accMark[:maxCols]
		accTouch = ws.accTouch[:0]
	} else {
		acc = make([]float64, maxCols)
		accMark = make([]int32, maxCols)
	}
	accAdd := func(c int, v float64) {
		if accMark[c] == 0 {
			accMark[c] = 1
			accTouch = append(accTouch, int32(c))
		}
		acc[c] += v
	}
	addRow := func(rhs float64, slack bool) int {
		// accTouch is sorted by the caller; zero accumulator entries
		// (exact term cancellation) are dropped from patterns and values,
		// matching the map-era behavior.
		if sparseOnly {
			pb, vb := len(patFlat), len(valFlat)
			for _, c := range accTouch {
				if v := acc[c]; v != 0 {
					patFlat = append(patFlat, c)
					valFlat = append(valFlat, v)
				}
			}
			if slack {
				sc := s.addCol(0, math.Inf(1))
				patFlat = append(patFlat, int32(sc))
				valFlat = append(valFlat, 1)
			}
			s.a = append(s.a, nil)
			s.b = append(s.b, rhs)
			pats = append(pats, patFlat[pb:len(patFlat):len(patFlat)])
			s.val = append(s.val, valFlat[vb:len(valFlat):len(valFlat)])
			return len(s.a) - 1
		}
		var row []float64
		if len(rows) < cap(rows) {
			rows = rows[:len(rows)+1]
			row = rows[len(rows)-1][:0]
		}
		row = append(row, make([]float64, len(s.c)-len(row))...)
		for i := range row {
			row[i] = 0
		}
		for _, c := range accTouch {
			row[c] = acc[c]
		}
		if slack {
			sc := s.addCol(0, math.Inf(1))
			row = append(row, make([]float64, len(s.c)-len(row))...)
			row[sc] = 1
		}
		s.a = append(s.a, row)
		s.b = append(s.b, rhs)
		if sparseOn {
			// The row's nonzero pattern. The slack, if any, is the newest
			// column and therefore already the largest index.
			var rp []int32
			pooled := len(pats) < cap(pats)
			if pooled {
				pats = pats[:len(pats)+1]
				rp = pats[len(pats)-1][:0]
			}
			for _, c := range accTouch {
				if acc[c] != 0 {
					rp = append(rp, c)
				}
			}
			if slack {
				rp = append(rp, int32(len(s.c)-1))
			}
			if pooled {
				pats[len(pats)-1] = rp
			} else {
				pats = append(pats, rp)
			}
		}
		return len(s.a) - 1
	}

	for i := range p.rows {
		r := &p.rows[i]
		rhs := r.RHS
		for _, t := range r.Terms {
			vm := s.vmaps[t.Var]
			switch vm.kind {
			case 0:
				accAdd(vm.col, t.Coef)
				rhs -= t.Coef * vm.shift
			case 1:
				accAdd(vm.col, -t.Coef)
				rhs -= t.Coef * vm.shift
			case 2:
				accAdd(vm.col, t.Coef)
				accAdd(vm.col2, -t.Coef)
			case 3:
				rhs -= t.Coef * vm.shift
			}
		}
		sign := 1.0
		sense := r.Sense
		if sense == GE { // negate into ≤
			for _, c := range accTouch {
				acc[c] = -acc[c]
			}
			rhs = -rhs
			sign = -1
			sense = LE
		}
		sortPattern(accTouch)
		s.rowOf[i] = addRow(rhs, sense == LE)
		s.rowSign[i] = sign
		for _, c := range accTouch {
			acc[c] = 0
			accMark[c] = 0
		}
		accTouch = accTouch[:0]
	}
	if ws != nil {
		// Return the (possibly grown) scratch to the pool; arenas stay
		// referenced by s.pat/s.val until the solve completes, which is
		// safe — the pool hands a workspace to one solve at a time.
		ws.accTouch = accTouch[:0]
		if sparseOnly {
			ws.patArena = patFlat[:0]
			ws.valArena = valFlat[:0]
		}
	}

	// Make b ≥ 0 (flips dual sign of affected rows).
	for r := range s.a {
		if s.b[r] < 0 {
			s.b[r] = -s.b[r]
			if sparseOnly {
				for c := range s.val[r] {
					s.val[r][c] = -s.val[r][c]
				}
			} else {
				for c := range s.a[r] {
					s.a[r][c] = -s.a[r][c]
				}
			}
			for i, ro := range s.rowOf {
				if ro == r {
					s.rowSign[i] = -s.rowSign[i]
				}
			}
		}
	}

	// Pad rows to full width (slack columns added after a row was created).
	if !sparseOnly {
		for r := range s.a {
			if len(s.a[r]) < len(s.c) {
				s.a[r] = append(s.a[r], make([]float64, len(s.c)-len(s.a[r]))...)
			}
		}
	}
	s.nReal = len(s.c)
	if sparseOn {
		s.pat = pats
	}
	s.scale = primalScale(s.b)
	return s, Optimal
}

func (s *standard) addCol(cost, upper float64) int {
	s.c = append(s.c, cost)
	s.lb = append(s.lb, 0)
	s.ub = append(s.ub, upper)
	if s.val == nil { // sparse-only rows carry no dense storage to widen
		for r := range s.a {
			s.a[r] = append(s.a[r], 0)
		}
	}
	return len(s.c) - 1
}

// isSlack reports whether standard column j can serve as an initial basic
// column: zero cost, unbounded above, and not an artificial.
func (s *standard) isSlack(j int) bool {
	return s.c[j] == 0 && j < s.nReal && math.IsInf(s.ub[j], 1)
}

// Nonbasic variable positions.
const (
	atLower int8 = iota
	atUpper
)

// debugPhase1 is a test hook invoked when phase 1 concludes infeasible.
var debugPhase1 func(t *tableau, std *standard, artStart int)

// Phase1Diag summarizes a phase-1 infeasibility conclusion (testing aid).
type Phase1Diag struct {
	Obj          float64 // residual Σ artificials
	Iters        int
	PositiveArts int
	WorstDLower  float64 // most negative reduced cost among atLower nonbasics
	WorstDUpper  float64 // most positive reduced cost among atUpper nonbasics
}

// SetPhase1Debug installs a callback fired when a solve concludes
// infeasible in phase 1 (nil disables). Testing aid.
func SetPhase1Debug(f func(Phase1Diag)) {
	if f == nil {
		debugPhase1 = nil
		return
	}
	debugPhase1 = func(t *tableau, std *standard, artStart int) {
		d := Phase1Diag{Obj: t.obj, Iters: t.iters}
		for i, bc := range t.basis {
			if bc >= artStart && t.b[i] > 1e-9 {
				d.PositiveArts++
			}
		}
		for j := range t.d {
			if t.inBase[j] || t.banned[j] {
				continue
			}
			if t.status[j] == atLower && t.d[j] < d.WorstDLower {
				d.WorstDLower = t.d[j]
			}
			if t.status[j] == atUpper && t.d[j] > d.WorstDUpper {
				d.WorstDUpper = t.d[j]
			}
		}
		f(d)
	}
}

// tableau is the dense working state of the bounded-variable simplex.
type tableau struct {
	a      [][]float64 // m x n, kept as B⁻¹A
	b      []float64   // m, current values of the basic variables
	d      []float64   // n, reduced costs for the current phase
	lb     []float64   // n, column lower bounds (0 after a cold standardize)
	ub     []float64   // n, column upper bounds
	basis  []int       // m, basic column per row
	inBase []bool      // n
	status []int8      // n, bound position of nonbasic columns
	banned []bool      // columns excluded from entering (artificials)
	obj    float64     // current phase objective value
	iters  int
	pivots int // basis-changing pivots (excludes pure bound flips)

	// delta is the Harris ratio-test relative feasibility slack: pass 1
	// of the ratio test relaxes each basic bound by delta × the
	// power-of-two magnitude of that bound, letting pass 2 pick the
	// largest-|pivot| row among those whose exact ratio fits under the
	// relaxed limit. Per-bound scaling matters: a global slack sized to
	// the RHS norm over-relaxes the O(1) outer-approximation cut rows by
	// the budget row's magnitude, delivering solutions whose cut
	// violations the OA callback (tolerance 1e-6) keeps rejecting — the
	// cut pool then grows without bound. Zero degrades gracefully to an
	// exact-tie max-|pivot| rule.
	delta float64

	// Sparse-kernel state (see sparse.go). pat == nil means the dense
	// kernels are in charge; the two share the same value rows, so the
	// sparse path can drop to dense at any time.
	pat        [][]int32 // per-row exact nonzero column patterns
	colCnt     []int32   // per-column pattern-membership counts
	nnz        int       // Σ len(pat[i]), the fill monitor
	mark       []int32   // shared generation-stamp scratch, len n
	markGen    int32
	patScratch []int32 // pattern rebuild buffer

	active []int32 // pricing skip list: non-banned, non-fixed columns
	cand   []int32 // partial-pricing candidate list (sparse mode)

	// Dual-devex row weights for runDual's leaving-row choice (devex.go).
	// ddOff pins the dual simplex to the plain most-violated rule
	// (Problem.DisableDevex, threaded through by reoptimize); ddCol is the
	// gathered pivot column the weight update reads after the pivot.
	dd    dualDevex
	ddOff bool
	ddCol []float64
}

// nbVal returns the current value of nonbasic column j.
func (t *tableau) nbVal(j int) float64 {
	if t.status[j] == atUpper {
		return t.ub[j]
	}
	return t.lb[j]
}

// run iterates the primal simplex until optimality, unboundedness, or the
// iteration budget is exhausted.
func (t *tableau) run(maxIter int) Status {
	m := len(t.a)
	t.buildActive()
	stall := 0
	// Engage Bland's rule quickly once the objective stops moving:
	// degenerate plateaus are common on the branch-and-bound children of
	// binary-heavy masters, and Dantzig pricing can walk them for a very
	// long time.
	blandAfter := m + 64
	for t.iters < maxIter {
		t.iters++
		bland := stall > blandAfter

		// Entering column: nonbasic whose reduced cost improves in its
		// feasible movement direction (see priceEntering in sparse.go for
		// the skip-list and candidate-list mechanics).
		e, dir := t.priceEntering(bland)
		if e < 0 {
			return Optimal
		}

		// Ratio test (two-pass Harris): how far can x_e move in direction
		// dir? Pass 1 finds the most limiting ratio with every basic bound
		// relaxed by the feasibility slack delta; pass 2 picks, among the
		// rows whose exact ratio fits under that relaxed limit, the one
		// with the largest pivot magnitude. A single exact-minimum pass
		// is forced to pivot wherever the minimum happens to fall — on
		// the near-parallel rows that duplicate outer-approximation cuts
		// produce, that is a noise-magnitude entry (~1e-7), and a pivot
		// on it amplifies the whole tableau by its reciprocal. Two such
		// pivots corrupted reduced costs to 1e14 and made the dense
		// authority report an "optimal" point 2× outside a column bound.
		// The price is a bound violation of at most delta on the rows
		// pass 2 overrides, which is within the solve's feasibility
		// tolerance by construction (both are feasEps × the primal scale).
		tMax := t.ub[e] - t.lb[e] // own bound flip distance (lower↔upper)
		limit1 := tMax
		for i := 0; i < m; i++ {
			rate := dir * t.a[i][e] // d(x_B(i))/d(t) = -rate
			if rate > pivotEps {
				// Basic variable decreases towards its lower bound.
				lo := t.lb[t.basis[i]]
				if l := (t.b[i] - lo + t.delta*pow2Scale(lo)) / rate; l < limit1 {
					limit1 = l
				}
			} else if rate < -pivotEps {
				ubB := t.ub[t.basis[i]]
				if math.IsInf(ubB, 1) {
					continue
				}
				// Basic variable increases towards its upper bound.
				if l := (ubB - t.b[i] + t.delta*pow2Scale(ubB)) / -rate; l < limit1 {
					limit1 = l
				}
			}
		}
		if math.IsInf(limit1, 1) {
			return Unbounded
		}
		r, rKind := -1, atLower
		limit := tMax
		bestRate := 0.0
		for i := 0; i < m; i++ {
			rate := dir * t.a[i][e]
			var l float64
			var kind int8
			if rate > pivotEps {
				l = (t.b[i] - t.lb[t.basis[i]]) / rate
				kind = atLower
			} else if rate < -pivotEps {
				ubB := t.ub[t.basis[i]]
				if math.IsInf(ubB, 1) {
					continue
				}
				l = (ubB - t.b[i]) / -rate
				kind = atUpper
			} else {
				continue
			}
			if l > limit1+ratioTieEps {
				continue
			}
			a := math.Abs(rate)
			if r < 0 || a > bestRate || (a == bestRate && t.betterLeaving(i, r)) {
				limit, r, rKind, bestRate = l, i, kind, a
			}
		}
		if r >= 0 && limit > tMax {
			// Every admissible row blocks later than the entering column's
			// own bound: flip instead of pivoting.
			r, limit = -1, tMax
		}
		if limit < 0 {
			limit = 0
		}

		// Progress is judged relative to the objective scale; absolute
		// epsilons let 1e-13-sized zigzags reset the stall counter
		// forever.
		improved := t.d[e]*dir*limit < -progressRelEps*(1+math.Abs(t.obj))
		// Move the entering variable by dir·limit.
		if limit > 0 {
			for i := 0; i < m; i++ {
				t.b[i] -= t.a[i][e] * dir * limit
			}
			t.obj += t.d[e] * dir * limit
		}

		if r < 0 {
			// Pure bound flip: no basis change.
			if t.status[e] == atLower {
				t.status[e] = atUpper
			} else {
				t.status[e] = atLower
			}
		} else {
			// Basis change: leaving variable settles at one of its
			// bounds; entering becomes basic with its new value.
			leave := t.basis[r]
			t.inBase[leave] = false
			t.status[leave] = rKind
			// Snap the leaving variable's row value exactly.
			newVal := dir*limit + t.nbVal(e)
			t.basis[r] = e
			t.inBase[e] = true
			t.b[r] = newVal
			t.pivot(r, e)
			t.pivots++
		}
		// Numerical hygiene: clamp tiny bound violations of basic values.
		for i := 0; i < m; i++ {
			lo := t.lb[t.basis[i]]
			if t.b[i] < lo && t.b[i] > lo-boundSnapEps {
				t.b[i] = lo
			}
		}
		if improved {
			stall = 0
		} else {
			stall++
		}
	}
	return IterLimit
}

// betterLeaving breaks ratio-test ties (candidate row i against incumbent
// r). The dense authority keeps its historical lowest-basis-index rule. In
// sparse mode the Markowitz-flavored rule prefers the row with the smaller
// nonzero pattern: a degenerate problem offers many tied pivot rows, and
// choosing a wide one (the makespan or budget row of an allocation LP)
// sprays its pattern across every touched row in one pivot. Any tied row
// is mathematically valid, so this only steers fill-in, not correctness.
func (t *tableau) betterLeaving(i, r int) bool {
	if r < 0 {
		return true
	}
	if t.sparse() {
		if d := len(t.pat[i]) - len(t.pat[r]); d != 0 {
			return d < 0
		}
	}
	return t.basis[i] < t.basis[r]
}

// pivot performs the row reduction making column e the unit column of row r
// and keeping the reduced costs consistent. The caller has already updated
// basis/inBase/status/b.
func (t *tableau) pivot(r, e int) {
	if t.sparse() {
		t.pivotSparse(r, e)
		return
	}
	pr := t.a[r]
	inv := 1 / pr[e]
	for j := range pr {
		pr[j] *= inv
	}
	for i := range t.a {
		if i == r {
			continue
		}
		f := t.a[i][e]
		if f == 0 {
			continue
		}
		ri := t.a[i]
		for j := range ri {
			ri[j] -= f * pr[j]
		}
		ri[e] = 0
	}
	f := t.d[e]
	if f != 0 {
		for j := range t.d {
			t.d[j] -= f * pr[j]
		}
		t.d[e] = 0
	}
}

// setCosts installs a cost vector and recomputes reduced costs and the
// objective for the current basis/bound configuration.
func (t *tableau) setCosts(c []float64) {
	copy(t.d, c)
	t.obj = 0
	for i, bcol := range t.basis {
		cb := c[bcol]
		if cb == 0 {
			continue
		}
		t.obj += cb * t.b[i]
		row := t.a[i]
		if t.sparse() {
			for _, j := range t.pat[i] {
				t.d[j] -= cb * row[j]
			}
		} else {
			for j := range t.d {
				t.d[j] -= cb * row[j]
			}
		}
	}
	t.cand = t.cand[:0] // the candidate list priced the old costs
	for _, bcol := range t.basis {
		t.d[bcol] = 0
	}
	// Nonbasic variables parked at a nonzero bound contribute directly.
	for j := range t.d {
		if t.inBase[j] {
			continue
		}
		if v := t.nbVal(j); v != 0 {
			t.obj += c[j] * v
		}
	}
}

// Solve solves the problem and returns the solution. The error is non-nil
// only for structurally invalid models; infeasibility and unboundedness are
// reported through Solution.Status.
func (p *Problem) Solve() (*Solution, error) {
	if !p.DisablePresolve {
		for j := range p.lo {
			if math.IsNaN(p.lo[j]) || math.IsNaN(p.hi[j]) {
				return nil, fmt.Errorf("%w: NaN bound on variable %d", ErrBadModel, j)
			}
		}
		ps, st := presolveProblem(p)
		if st == Infeasible {
			return &Solution{Status: Infeasible}, nil
		}
		if ps != nil {
			sol, err := ps.reduced.solveAggregated()
			if err != nil {
				return nil, err
			}
			return ps.postsolve(sol), nil
		}
	}
	return p.solveAggregated()
}

// solveAggregated runs the aggregation reduction (aggregate.go) in front
// of the cold solve: p → aggregate → solveColdAuto → disaggregate. The
// layers compose as p → presolve → aggregate → solve, with each postsolve
// unwinding in reverse.
func (p *Problem) solveAggregated() (*Solution, error) {
	if !p.DisableAggregation {
		ag, st := aggregateProblem(p)
		if st == Infeasible {
			return &Solution{Status: Infeasible}, nil
		}
		if ag != nil {
			aggMerges.Add(1)
			ws := wsPool.Get().(*workspace)
			sol, err := solveColdAuto(ag.reduced, ws)
			wsPool.Put(ws)
			if err != nil {
				return nil, err
			}
			return ag.postsolve(sol), nil
		}
	}
	ws := wsPool.Get().(*workspace)
	sol, err := solveColdAuto(p, ws)
	wsPool.Put(ws)
	return sol, err
}

// revisedSolves counts cold solves answered by the revised sparse engine.
// It exists for route-selection observability in tests (diagnostic hooks
// must never alter which engine answers a solve); production code never
// reads it.
var revisedSolves atomic.Int64

// solveColdAuto routes a one-shot cold solve: the revised sparse engine
// (revised.go) when the sparse path is enabled, with the dense tableau as
// both the correctness authority and the fallback for every case the
// engine declines (iteration limits, numerical trouble, Infeasible
// verdicts it never stands behind).
func solveColdAuto(p *Problem, ws *workspace) (*Solution, error) {
	if sol, ok := solveRevised(p, ws); ok {
		revisedSolves.Add(1)
		return sol, nil
	}
	sol, _, _, err := solveCold(p, ws, nil)
	return sol, err
}

// coldSetup standardizes p and erects the phase-0 system shared by every
// tableau-path start: the identity basis scan, the artificial append, the
// sparse-kernel init, and (for warm-capable solves) the pristine snapshot.
// A non-nil Solution or error is a final verdict (the std/t returns are
// then nil); otherwise the tableau is ready for phase 1 — or, on the crash
// path, for a direct basis install (Incremental.rebuildFromCrash).
func coldSetup(p *Problem, ws *workspace, tag *basisTag) (*Solution, *standard, *tableau, int, int, error) {
	for j := range p.lo {
		if math.IsNaN(p.lo[j]) || math.IsNaN(p.hi[j]) {
			return nil, nil, nil, 0, 0, fmt.Errorf("%w: NaN bound on variable %d", ErrBadModel, j)
		}
	}
	std, st := standardize(p, ws, tag != nil, false)
	if st == Infeasible {
		return &Solution{Status: Infeasible}, nil, nil, 0, 0, nil
	}

	m, n := len(std.a), len(std.c)
	maxIter := p.MaxIter
	if maxIter == 0 {
		// Basis changes scale with rows, bound flips with columns; this
		// budget is an order of magnitude above what healthy solves use.
		maxIter = 200*(m+25) + 20*n
	}

	t := &tableau{
		a:     std.a,
		b:     append([]float64(nil), std.b...),
		ub:    std.ub,
		basis: make([]int, m),
		delta: feasEps,
	}

	// Initial basis: a slack column that is exactly the identity on the
	// row, else an artificial. All structural columns start at lower.
	std.unitCol = make([]int, m)
	used := make([]bool, n)
	for i := range t.a {
		t.basis[i] = -1
		for j := 0; j < n; j++ {
			if used[j] || !std.isSlack(j) || t.a[i][j] != 1 {
				continue
			}
			unique := true
			for k := range t.a {
				if k != i && t.a[k][j] != 0 {
					unique = false
					break
				}
			}
			if unique {
				t.basis[i] = j
				std.unitCol[i] = j
				used[j] = true
				break
			}
		}
	}
	artStart := n
	for i := range t.a {
		if t.basis[i] >= 0 {
			continue
		}
		// Append the artificial column manually: std.addCol would also
		// push a zero onto every row, duplicating the column we add here.
		col := len(std.c)
		std.c = append(std.c, 0)
		std.lb = append(std.lb, 0)
		std.ub = append(std.ub, math.Inf(1))
		for r := range t.a {
			v := 0.0
			if r == i {
				v = 1
			}
			t.a[r] = append(t.a[r], v)
		}
		if std.pat != nil {
			// The artificial is the newest (largest) column: the pattern
			// stays sorted.
			std.pat[i] = append(std.pat[i], int32(col))
		}
		t.basis[i] = col
		std.unitCol[i] = col
	}
	n = len(std.c)
	std.a = t.a
	t.lb = std.lb
	t.ub = std.ub
	t.banned = make([]bool, n)
	t.d = make([]float64, n)
	t.status = make([]int8, n)
	t.inBase = make([]bool, n)
	for _, bc := range t.basis {
		t.inBase[bc] = true
	}
	if std.pat != nil {
		t.initSparse(std.pat, ws)
	}

	// Warm-capable solves keep a pristine copy of the (artificial-extended)
	// system for later basis refactorization.
	if tag != nil {
		std.orig = make([][]float64, m)
		for i := range t.a {
			std.orig[i] = append([]float64(nil), t.a[i]...)
		}
		std.origB = append([]float64(nil), t.b...)
		if std.pat != nil {
			// Patterns are still pristine here (no pivots yet); snapshot
			// them alongside orig for sparse refactorization.
			std.origPat = make([][]int32, m)
			for i := range std.pat {
				std.origPat[i] = append([]int32(nil), std.pat[i]...)
			}
		}
	}
	return nil, std, t, artStart, maxIter, nil
}

// solveCold runs the full two-phase primal simplex. ws (optional) backs the
// dense matrix with a pooled arena — callers that retain std/t (warm
// solvers) must pass ws == nil. tag, when non-nil, enables the Basis
// snapshot on optimal solutions.
func solveCold(p *Problem, ws *workspace, tag *basisTag) (*Solution, *standard, *tableau, error) {
	sol, std, t, artStart, maxIter, err := coldSetup(p, ws, tag)
	if sol != nil || err != nil {
		return sol, nil, nil, err
	}
	n := len(std.c)

	totalIters := 0

	// Phase 1: minimize the sum of artificials.
	if artStart < n {
		phase1 := make([]float64, n)
		for j := artStart; j < n; j++ {
			phase1[j] = 1
		}
		t.setCosts(phase1)
		st := t.run(maxIter)
		totalIters += t.iters
		if st == IterLimit {
			return &Solution{Status: IterLimit, Iterations: totalIters, Pivots: t.pivots}, nil, nil, nil
		}
		// The incrementally tracked objective drifts over long runs;
		// judge feasibility on the exact residual: artificials have unit
		// cost and infinite upper bounds, so the phase-1 objective is
		// precisely the sum of basic artificial values.
		resid := 0.0
		for i, bc := range t.basis {
			if bc >= artStart && t.b[i] > 0 {
				resid += t.b[i]
			}
		}
		if st == Unbounded || resid > feasTol(std.scale) {
			// An Infeasible conclusion reached with the sparse pattern
			// kernels is confirmed against the dense authority before it
			// escapes. The kernels can — rarely — pivot themselves into a
			// numerical explosion whose phase-1 residual is astronomically
			// large (the recorded hslbd defect reached 5e30, with st even
			// reporting Unbounded, impossible for a genuine phase 1); no
			// residual threshold distinguishes that from honest
			// infeasibility, so the verdict itself is re-derived densely.
			// Genuine infeasibles pay one extra dense solve; in the HSLB
			// stack those are rare because branch-and-bound prunes
			// contradictory boxes via presolve/empty-box checks first.
			if std.pat != nil {
				dense := *p
				dense.DisableSparse = true
				sol2, std2, t2, err := solveCold(&dense, ws, tag)
				if err == nil && sol2 != nil {
					sol2.Iterations += totalIters
					sol2.Pivots += t.pivots
					if sol2.Status != Infeasible && debugInfeasConfirm != nil {
						debugInfeasConfirm(resid, sol2.Status)
					}
				}
				return sol2, std2, t2, err
			}
			if debugPhase1 != nil {
				debugPhase1(t, std, artStart)
			}
			return &Solution{Status: Infeasible, Iterations: totalIters, Pivots: t.pivots}, nil, nil, nil
		}
		// Drive artificials out of the basis where possible. Basic
		// artificial values are numerical noise at this point.
		for i := range t.basis {
			if t.basis[i] < artStart {
				continue
			}
			t.b[i] = 0
			for j := 0; j < artStart; j++ {
				if t.inBase[j] {
					continue
				}
				if math.Abs(t.a[i][j]) > artPivotEps {
					t.pivotOutArtificial(i, j)
					break
				}
			}
			// If no pivot was found the row is redundant; the artificial
			// stays basic at value 0, which is harmless.
		}
		for j := artStart; j < n; j++ {
			t.banned[j] = true
		}
	}

	// Phase 2: original costs.
	t.iters = 0
	t.setCosts(std.c)
	st2 := t.run(maxIter)
	totalIters += t.iters
	switch st2 {
	case Unbounded:
		return &Solution{Status: Unbounded, Iterations: totalIters, Pivots: t.pivots}, nil, nil, nil
	case IterLimit:
		return &Solution{Status: IterLimit, Iterations: totalIters, Pivots: t.pivots}, nil, nil, nil
	}

	return extract(p, std, t, totalIters, t.pivots, tag), std, t, nil
}

// extract recovers the original-variable solution, the row duals, and (when
// tag is non-nil) a Basis snapshot from an optimal tableau.
func extract(p *Problem, std *standard, t *tableau, iters, pivots int, tag *basisTag) *Solution {
	n := len(std.c)
	u := make([]float64, n)
	for j := 0; j < n; j++ {
		if !t.inBase[j] {
			u[j] = t.nbVal(j)
		}
	}
	for i, bcol := range t.basis {
		u[bcol] = t.b[i]
	}
	// Map back to original variables.
	x := make([]float64, len(p.costs))
	for j, vm := range std.vmaps {
		switch vm.kind {
		case 0:
			x[j] = vm.shift + u[vm.col]
		case 1:
			x[j] = vm.shift - u[vm.col]
		case 2:
			x[j] = u[vm.col] - u[vm.col2]
		case 3:
			x[j] = vm.shift
		}
	}
	// Duals: y_r = c_unit − d_unit for the identity column of each row
	// (slack and artificial costs are 0 in phase 2, so y_r = −d).
	dual := make([]float64, len(p.rows))
	for i := range p.rows {
		r := std.rowOf[i]
		if r < 0 {
			continue
		}
		dual[i] = std.rowSign[i] * -t.d[std.unitCol[r]]
	}
	sol := &Solution{
		Status:     Optimal,
		X:          x,
		Obj:        p.Objective(x),
		Dual:       dual,
		Iterations: iters,
		Pivots:     pivots,
	}
	if tag != nil {
		bs := &Basis{tag: tag, cols: make([]int32, len(t.basis)), status: make([]int8, n)}
		for i, bc := range t.basis {
			bs.cols[i] = int32(bc)
		}
		copy(bs.status, t.status)
		sol.Basis = bs
	}
	return sol
}

// pivotOutArtificial swaps a zero-valued basic artificial in row r for
// structural column j (entering at value 0; feasibility is unaffected).
func (t *tableau) pivotOutArtificial(r, j int) {
	leave := t.basis[r]
	t.inBase[leave] = false
	t.status[leave] = atLower
	t.basis[r] = j
	t.inBase[j] = true
	// j enters at its current bound value; b[r] stays the artificial's
	// (zeroed) value plus the bound offset of j.
	t.b[r] = t.nbVal(j)
	t.pivot(r, j)
}
