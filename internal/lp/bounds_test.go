package lp

import (
	"math"
	"testing"
	"time"

	"repro/internal/stats"
)

// The bounded-variable simplex handles upper bounds implicitly (no explicit
// rows). These tests exercise its specific code paths: bound flips,
// nonbasic-at-upper optima, and the performance this buys on binary-heavy
// problems.

func TestAllAtUpper(t *testing.T) {
	// max x+y+z with x≤2, y≤3, z≤4 and no rows: pure bound flips.
	p := NewProblem()
	x := p.AddVariable(0, 2, -1, "x")
	y := p.AddVariable(0, 3, -1, "y")
	z := p.AddVariable(0, 4, -1, "z")
	sol := solveOK(t, p)
	if sol.X[x] != 2 || sol.X[y] != 3 || sol.X[z] != 4 {
		t.Fatalf("x = %v", sol.X)
	}
	if math.Abs(sol.Obj+9) > 1e-9 {
		t.Fatalf("obj = %v", sol.Obj)
	}
}

func TestMixAtUpperAndBasic(t *testing.T) {
	// max 3x + 2y s.t. x + y ≤ 5, x ≤ 3, y ≤ 4 → x=3 (upper), y=2 (basic).
	p := NewProblem()
	x := p.AddVariable(0, 3, -3, "x")
	y := p.AddVariable(0, 4, -2, "y")
	p.AddConstraint([]Term{{x, 1}, {y, 1}}, LE, 5, "")
	sol := solveOK(t, p)
	if math.Abs(sol.X[x]-3) > 1e-9 || math.Abs(sol.X[y]-2) > 1e-9 {
		t.Fatalf("x = %v", sol.X)
	}
}

func TestUpperBoundedWithGE(t *testing.T) {
	// min x + 4y s.t. x + y ≥ 6, x ≤ 4 → x=4 at upper, y=2.
	p := NewProblem()
	x := p.AddVariable(0, 4, 1, "x")
	y := p.AddVariable(0, Inf, 4, "y")
	p.AddConstraint([]Term{{x, 1}, {y, 1}}, GE, 6, "")
	sol := solveOK(t, p)
	if math.Abs(sol.X[x]-4) > 1e-8 || math.Abs(sol.X[y]-2) > 1e-8 {
		t.Fatalf("x = %v", sol.X)
	}
	if math.Abs(sol.Obj-12) > 1e-8 {
		t.Fatalf("obj = %v", sol.Obj)
	}
}

func TestNegativeBoundedRange(t *testing.T) {
	// Variable confined to a negative range: -7 ≤ x ≤ -3, max x → -3.
	p := NewProblem()
	x := p.AddVariable(-7, -3, -1, "x")
	sol := solveOK(t, p)
	if math.Abs(sol.X[x]+3) > 1e-9 {
		t.Fatalf("x = %v", sol.X[x])
	}
	p.SetCost(x, 1)
	sol = solveOK(t, p)
	if math.Abs(sol.X[x]+7) > 1e-9 {
		t.Fatalf("x = %v", sol.X[x])
	}
}

func TestDualsWithActiveUpperBound(t *testing.T) {
	// min -3x - 2y s.t. x + y ≤ 5 (row dual), x ≤ 3 active upper bound.
	// Row binds with y basic: y's reduced cost 0 → dual = -2; x's reduced
	// cost -3 + 2 = -1 ≤ 0, consistent with x at its upper bound.
	p := NewProblem()
	x := p.AddVariable(0, 3, -3, "x")
	y := p.AddVariable(0, 10, -2, "y")
	p.AddConstraint([]Term{{x, 1}, {y, 1}}, LE, 5, "")
	sol := solveOK(t, p)
	if math.Abs(sol.Dual[0]+2) > 1e-8 {
		t.Fatalf("dual = %v, want -2", sol.Dual[0])
	}
}

func TestKnapsackRelaxationManyColumns(t *testing.T) {
	// 2000 bounded [0,1] columns with a single knapsack row: the implicit
	// bound handling must keep this fast (explicit bound rows would build
	// a 2001-row dense tableau).
	rng := stats.NewRNG(3)
	p := NewProblem()
	terms := make([]Term, 0, 2000)
	for j := 0; j < 2000; j++ {
		v := p.AddVariable(0, 1, -rng.Range(0.1, 10), "")
		terms = append(terms, Term{v, rng.Range(0.1, 5)})
	}
	p.AddConstraint(terms, LE, 500, "cap")
	start := time.Now()
	sol := solveOK(t, p)
	elapsed := time.Since(start)
	if p.MaxViolation(sol.X) > 1e-6 {
		t.Fatalf("violation %v", p.MaxViolation(sol.X))
	}
	// LP knapsack: at most one fractional variable.
	frac := 0
	for _, v := range sol.X {
		if v > 1e-9 && v < 1-1e-9 {
			frac++
		}
	}
	if frac > 1 {
		t.Fatalf("%d fractional variables in an LP knapsack, want ≤ 1", frac)
	}
	if elapsed > 5*time.Second {
		t.Fatalf("2000-column knapsack took %v", elapsed)
	}
}

func TestBoundFlipChain(t *testing.T) {
	// A chain where optimality requires flipping several variables to
	// their upper bounds without them ever entering the basis.
	p := NewProblem()
	var vs []int
	terms := make([]Term, 0, 10)
	for j := 0; j < 10; j++ {
		v := p.AddVariable(0, 1, -float64(j+1), "")
		vs = append(vs, v)
		terms = append(terms, Term{v, 1})
	}
	p.AddConstraint(terms, LE, 7, "")
	sol := solveOK(t, p)
	// Greedy: the 7 most valuable variables at 1, the rest at 0.
	for j, v := range vs {
		want := 0.0
		if j >= 3 {
			want = 1
		}
		if math.Abs(sol.X[v]-want) > 1e-8 {
			t.Fatalf("x[%d] = %v, want %v (x=%v)", j, sol.X[v], want, sol.X)
		}
	}
}

func TestEqualityWithBoundedVars(t *testing.T) {
	// x + y = 4 with x ≤ 1.5: x at upper, y = 2.5 (min y).
	p := NewProblem()
	x := p.AddVariable(0, 1.5, 0, "x")
	y := p.AddVariable(0, 10, 1, "y")
	p.AddConstraint([]Term{{x, 1}, {y, 1}}, EQ, 4, "")
	sol := solveOK(t, p)
	if math.Abs(sol.X[x]-1.5) > 1e-8 || math.Abs(sol.X[y]-2.5) > 1e-8 {
		t.Fatalf("x = %v", sol.X)
	}
}

func TestInfeasibleDueToUpperBounds(t *testing.T) {
	// Σ x_i ≥ 10 with all x ≤ 1 and only 5 variables: infeasible.
	p := NewProblem()
	terms := make([]Term, 0, 5)
	for j := 0; j < 5; j++ {
		v := p.AddVariable(0, 1, 0, "")
		terms = append(terms, Term{v, 1})
	}
	p.AddConstraint(terms, GE, 10, "")
	sol, err := p.Solve()
	if err != nil || sol.Status != Infeasible {
		t.Fatalf("status = %v err = %v", sol.Status, err)
	}
}
