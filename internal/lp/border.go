package lp

// Bordered factorization of a dense coupling column.
//
// On the paper's min-max allocation LPs one basis column — the makespan
// variable T — appears in every load row (nnz ≈ m/2). Factoring it into the
// LU poisons everything downstream: the U closure of that column densifies,
// the hyper-sparse FTRAN/BTRAN m/8 abort fires on every pivot, and each
// iteration pays Ω(m/2) regardless of how sparse the rest of the basis is.
//
// The classical cure is to keep the coupling column OUT of the factorization
// and handle it by a rank-one bordered (Sherman–Morrison) correction:
//
//	B = B₀ + (a_c − e_ρ)·e_sᵀ
//
// where slot s of the true basis holds the coupling column a_c, and B₀ is
// the same basis with the unit column e_ρ standing in for it (ρ a support
// row of a_c chosen so B₀ stays nonsingular — its unit column must not
// already be basic). The LU factors B₀, which is as sparse as the rest of
// the basis; all products with B⁻¹ are recovered from B₀⁻¹ plus the border
// column f = B₀⁻¹a_c. Since B₀⁻¹e_ρ = e_s by construction:
//
//	FTRAN:  x = B⁻¹w:    x₀ = B₀⁻¹w,  t = x₀[s]/f[s],  x = x₀ − t·(f − e_s)
//	BTRAN:  y = wᵀB⁻¹:   y₀ = wᵀB₀⁻¹, q = (w·f − w[s])/f[s], y = y₀ − q·z
//	        with z = e_sᵀB₀⁻¹ (one cached unit BTRAN, invalidated per update)
//
// The crucial property for the T-series: x₀[s] = (B₀⁻¹w)[s] is ZERO for
// almost every entering column (s is reachable only through rows coupled to
// ρ), so the FTRAN correction usually vanishes and the hyper-sparse result
// passes through untouched — the engine gets sparse-basis pivot costs while
// the true basis contains a half-dense column.
//
// Updates: when a pivot replaces the column in slot r ≠ s, B₀ takes the
// same replacement (one ordinary Forrest–Tomlin update) and f is patched by
// the product-form eta of that replacement, f ← E·f. When the coupling
// column itself leaves (r == s), the FT update makes the LU factor the true
// basis again and the border simply disengages. Stability is policed by
// borderDiagEps on the divisor f[s] — a failed check tears the border down
// and refactors plain, the same decline-not-guess discipline as the rest of
// the engine. Both per-pivot drift checks run on border-corrected values
// against independent routes, so a wrong correction cannot survive a pivot.

import "math"

// borderOff tears down the border; the caller is responsible for the LU
// matching rv.basis again (refactor or an update that restored it).
func (rv *revEngine) borderOff() {
	rv.borderOn = false
	rv.zValid = false
}

// bumpBGen advances the border's row-mark generation (wrap-safe).
func (rv *revEngine) bumpBGen() int32 {
	rv.bGen++
	if rv.bGen < 0 {
		for i := range rv.bMark {
			rv.bMark[i] = 0
		}
		rv.bGen = 1
	}
	return rv.bGen
}

// engageBorder flips the border on for slot s with stand-in row rho and
// counts the solve once.
func (rv *revEngine) engageBorder(s int, rho int32) {
	rv.borderOn = true
	rv.borderSlot = s
	rv.borderRow = rho
	rv.zValid = false
	if !rv.borderUsed {
		rv.borderUsed = true
		borderSolves.Add(1)
	}
}

// maybeEngageBorderAtFactor scans the current basis (about to be factored)
// for a column dense enough to border — the crash-install path, where the
// heuristic vertex already contains the makespan column. ρ is the support
// row of the column with the largest coefficient among rows whose own unit
// column is nonbasic (a basic unit column would collide with e_ρ and make
// B₀ singular).
func (rv *revEngine) maybeEngageBorderAtFactor(p *Problem) {
	if p.DisableBorder || rv.borderOn {
		return
	}
	cut := int32(borderColCut(rv.m))
	s, sNnz := -1, int32(0)
	for i, bc := range rv.basis {
		if nz := rv.colPtr[bc+1] - rv.colPtr[bc]; nz >= cut && nz > sNnz {
			s, sNnz = i, nz
		}
	}
	if s < 0 {
		return
	}
	c := rv.basis[s]
	rho, bestA := int32(-1), 0.0
	for t := rv.colPtr[c]; t < rv.colPtr[c+1]; t++ {
		i := rv.rowIdx[t]
		uc := rv.slackOf[i]
		if uc < 0 {
			uc = rv.artOf[i]
		}
		if uc >= 0 && rv.inBase[uc] {
			continue
		}
		if a := math.Abs(rv.colVal[t]); a > bestA {
			bestA, rho = a, i
		}
	}
	if rho < 0 {
		return
	}
	rv.engageBorder(s, rho)
}

// factorBordered factors B₀ (the basis with e_ρ in the border slot) and
// refreshes the border column f = B₀⁻¹a_c. false → the caller falls back to
// a plain factorization of the true basis.
func (rv *revEngine) factorBordered() bool {
	s := rv.borderSlot
	c := rv.basis[s]
	// The synthetic unit column e_ρ lives at column index n; reset reserved
	// the extra colPtr slot and one spare nonzero for it.
	pos := rv.colPtr[rv.n]
	rv.rowIdx[pos] = rv.borderRow
	rv.colVal[pos] = 1
	rv.colPtr[rv.n+1] = pos + 1
	rv.fBasis = growInt(rv.fBasis, rv.m)
	copy(rv.fBasis, rv.basis[:rv.m])
	rv.fBasis[s] = rv.n
	if !rv.lu.factor(rv.m, rv.colPtr, rv.rowIdx, rv.colVal, rv.fBasis) {
		return false
	}
	rv.zValid = false
	return rv.recomputeF0(c)
}

// recomputeF0 refreshes f = B₀⁻¹a_c from the current (bordered) LU and
// re-tests the Sherman–Morrison divisor f[s] against borderDiagEps·‖f‖∞.
// Clobbers lu.xSlot.
func (rv *revEngine) recomputeF0(c int) bool {
	sup := rv.lu.ftran(rv.rowIdx[rv.colPtr[c]:rv.colPtr[c+1]], rv.colVal[rv.colPtr[c]:rv.colPtr[c+1]], false)
	f := rv.f0[:rv.m]
	for i := range f {
		f[i] = 0
	}
	mx := 0.0
	for _, si := range sup {
		v := rv.lu.xSlot[si]
		f[si] = v
		if a := math.Abs(v); a > mx {
			mx = a
		}
	}
	rv.f0mx = mx
	rv.f0s = f[rv.borderSlot]
	return mx > 0 && math.Abs(rv.f0s) >= borderDiagEps*mx
}

// ensureZ caches z = e_sᵀB₀⁻¹ (support-tracked in zRow/zTouch). It must run
// BEFORE any same-iteration btranUnit whose result is still live, because
// both share lu.yRow.
func (rv *revEngine) ensureZ() {
	if rv.zValid {
		return
	}
	for _, r := range rv.zTouch {
		rv.zRow[r] = 0
	}
	rv.zTouch = rv.zTouch[:0]
	for _, r := range rv.lu.btranUnit(rv.borderSlot) {
		if v := rv.lu.yRow[r]; v != 0 {
			rv.zRow[r] = v
			rv.zTouch = append(rv.zTouch, r)
		}
	}
	rv.zValid = true
}

// enterFtran computes x = B⁻¹a_e for entering column e, spike saved for the
// FT update. Without the border — or when the correction coefficient is
// exactly zero, the common T-series case — the hyper-sparse lu result
// passes through untouched. Otherwise the corrected column is materialized
// densely in bW (support = allSlots); lu.xSlot still holds the uncorrected
// x₀ = B₀⁻¹a_e, which borderUpdate's eta patch relies on.
func (rv *revEngine) enterFtran(e int) ([]int32, []float64) {
	sup := rv.lu.ftran(rv.rowIdx[rv.colPtr[e]:rv.colPtr[e+1]], rv.colVal[rv.colPtr[e]:rv.colPtr[e+1]], true)
	if !rv.borderOn {
		return sup, rv.lu.xSlot
	}
	s := rv.borderSlot
	x0s := rv.lu.xSlot[s]
	if x0s == 0 {
		return sup, rv.lu.xSlot
	}
	t := x0s / rv.f0s
	w := rv.bW[:rv.m]
	x0 := rv.lu.xSlot
	f := rv.f0
	for i := 0; i < rv.m; i++ {
		w[i] = x0[i] - t*f[i]
	}
	w[s] = t
	return rv.allSlots[:rv.m], w
}

// bFtranDense is the border-aware dense FTRAN x = B⁻¹w (consumes w, result
// aliases lu.xSlot exactly like lu.ftranDense).
func (rv *revEngine) bFtranDense(w []float64) []float64 {
	x := rv.lu.ftranDense(w)
	if rv.borderOn {
		s := rv.borderSlot
		if t := x[s] / rv.f0s; t != 0 {
			f := rv.f0
			for i := 0; i < rv.m; i++ {
				x[i] -= t * f[i]
			}
			x[s] = t
		}
	}
	return x
}

// rowBtran computes the pivot row y = e_rᵀB⁻¹, border-corrected in place in
// lu.yRow. The returned support list is lu.yTouch extended (without
// duplicates — pivotRow accumulates over it) by the correction's rows.
func (rv *revEngine) rowBtran(r int) []int32 {
	if !rv.borderOn {
		return rv.lu.btranUnit(r)
	}
	rv.ensureZ() // must precede btranUnit: both write lu.yRow
	yT := rv.lu.btranUnit(r)
	s := rv.borderSlot
	num := rv.f0[r]
	if r == s {
		num -= 1
	}
	if num == 0 {
		return yT
	}
	q := num / rv.f0s
	gen := rv.bumpBGen()
	for _, rr := range yT {
		rv.bMark[rr] = gen
	}
	y := rv.lu.yRow
	for _, rr := range rv.zTouch {
		if rv.bMark[rr] != gen {
			rv.bMark[rr] = gen
			yT = append(yT, rr)
		}
		y[rr] -= q * rv.zRow[rr]
	}
	rv.lu.yTouch = yT
	return yT
}

// btranDenseB is the border-aware dense BTRAN y = cᵀB⁻¹ for a slot-space
// cost vector (result aliases lu.yRow like lu.btranDense).
func (rv *revEngine) btranDenseB(cSlot []float64) []float64 {
	if !rv.borderOn {
		return rv.lu.btranDense(cSlot)
	}
	rv.ensureZ() // must precede btranDense: both write lu.yRow
	y := rv.lu.btranDense(cSlot)
	s := rv.borderSlot
	num := -cSlot[s]
	for i := 0; i < rv.m; i++ {
		if v := rv.f0[i]; v != 0 {
			num += cSlot[i] * v
		}
	}
	if num != 0 {
		q := num / rv.f0s
		for _, rr := range rv.zTouch {
			y[rr] -= q * rv.zRow[rr]
		}
	}
	return y
}

// borderUpdate applies the basis replacement at slot r to the
// factorization. Under the border: a pivot AT the border slot swaps the
// coupling column out, so the FT update (whose spike is the true entering
// column) makes the LU exact and the border disengages; any other pivot
// updates B₀ and patches f by the product-form eta of the replacement,
// f ← E·f with E built from x₀ = B₀⁻¹a_e (still in lu.xSlot from
// enterFtran). false → the caller must recover() (full refactorization,
// which re-fators bordered or tears down as borderOn dictates).
func (rv *revEngine) borderUpdate(r int) bool {
	if !rv.lu.update(r) {
		return false
	}
	engUpdates.Add(1)
	if !rv.borderOn {
		return true
	}
	rv.zValid = false
	if r == rv.borderSlot {
		rv.borderOff()
		return true
	}
	x0 := rv.lu.xSlot
	f := rv.f0
	if math.Abs(x0[r]) <= pivotEps {
		// Eta pivot too small (the corrected pivot passed the ratio test on
		// the border correction alone): rebuild f from the updated LU.
		if !rv.recomputeF0(rv.basis[rv.borderSlot]) {
			rv.borderOff()
			return false
		}
		return true
	}
	pr := f[r] / x0[r]
	if pr != 0 {
		if rv.lu.xDense {
			for i := 0; i < rv.m; i++ {
				f[i] -= pr * x0[i]
			}
		} else {
			for _, si := range rv.lu.xTouch {
				f[si] -= pr * x0[si]
			}
		}
	}
	f[r] = pr
	rv.f0s = f[rv.borderSlot]
	// f0mx is maintained as an upper bound (entries only ever compared
	// downward, so overestimating is the safe direction).
	if a := math.Abs(pr); a > rv.f0mx {
		rv.f0mx = a
	}
	if math.Abs(rv.f0s) < borderDiagEps*rv.f0mx {
		rv.borderOff()
		return false
	}
	return true
}

// engagePivotBorder installs entering column e as a bordered coupling
// column at pivot time: the LU absorbs e_ρ at slot r (so it keeps factoring
// the sparse B₀) while the engine's books record e basic. Called instead of
// the ordinary FT update, after the commit updated the books. false → the
// caller must recover() (the LU and the books disagree until then).
func (rv *revEngine) engagePivotBorder(r int, rho int32, e int) bool {
	// Overwrite the saved spike (the dense entering column) with e_ρ, then
	// update: LU ← B₀ = current basis with e_ρ at slot r.
	unitRow := [1]int32{rho}
	unitVal := [1]float64{1}
	rv.lu.ftran(unitRow[:], unitVal[:], true)
	if !rv.lu.update(r) {
		return false
	}
	engUpdates.Add(1)
	rv.engageBorder(r, rho)
	if !rv.recomputeF0(e) {
		rv.borderOff()
		return false
	}
	return true
}
