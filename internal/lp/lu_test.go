package lp

// Unit battery for the sparse LU kernel (lu.go): factorization and all four
// solve variants against dense references, Forrest–Tomlin update sequences
// against fresh factorizations of the mutated basis, and a fuzz target
// exercising factor+update on arbitrary small matrices. The revised-engine
// integration batteries (LU-vs-dense on real LP instances) live in
// revised_test.go; this file proves the kernel in isolation.

import (
	"math"
	"math/rand"
	"testing"
)

// testCSC is a column-compressed test matrix with more columns than rows so
// update tests can swap basis columns.
type testCSC struct {
	m, n int
	ptr  []int32
	idx  []int32
	val  []float64
}

// col returns column j densified into out (len m, caller-zeroed).
func (a *testCSC) col(j int, out []float64) {
	for t := a.ptr[j]; t < a.ptr[j+1]; t++ {
		out[a.idx[t]] = a.val[t]
	}
}

// mulBasis computes B·x for the basis selection, B[:,slot] = A[:,basis[slot]].
func (a *testCSC) mulBasis(basis []int, x []float64, out []float64) {
	for i := range out {
		out[i] = 0
	}
	for slot, c := range basis {
		xv := x[slot]
		if xv == 0 {
			continue
		}
		for t := a.ptr[c]; t < a.ptr[c+1]; t++ {
			out[a.idx[t]] += a.val[t] * xv
		}
	}
}

// randTestCSC builds an m×n sparse matrix whose first m columns form a
// diagonally dominant (hence nonsingular) basis; the extra columns carry a
// dominant entry at a random row so update tests usually stay nonsingular.
func randTestCSC(rng *rand.Rand, m, n int, density float64) *testCSC {
	a := &testCSC{m: m, n: n, ptr: make([]int32, 1, n+1)}
	add := func(i int, v float64) {
		a.idx = append(a.idx, int32(i))
		a.val = append(a.val, v)
	}
	for j := 0; j < n; j++ {
		diag := j % m
		if j >= m {
			diag = rng.Intn(m)
		}
		for i := 0; i < m; i++ {
			if i == diag {
				add(i, 4+rng.Float64())
			} else if rng.Float64() < density {
				add(i, rng.NormFloat64())
			}
		}
		a.ptr = append(a.ptr, int32(len(a.idx)))
	}
	return a
}

// denseSolve solves B·x = b by Gaussian elimination with partial pivoting;
// B is densified from the basis columns. Returns false on (near) singular.
func denseSolve(a *testCSC, basis []int, b []float64) ([]float64, bool) {
	m := a.m
	bm := make([][]float64, m)
	for i := range bm {
		bm[i] = make([]float64, m)
	}
	for slot, c := range basis {
		for t := a.ptr[c]; t < a.ptr[c+1]; t++ {
			bm[a.idx[t]][slot] = a.val[t]
		}
	}
	x := append([]float64(nil), b...)
	perm := make([]int, m)
	for i := range perm {
		perm[i] = i
	}
	for k := 0; k < m; k++ {
		p, best := -1, 0.0
		for i := k; i < m; i++ {
			if v := math.Abs(bm[i][k]); v > best {
				p, best = i, v
			}
		}
		if best < 1e-12 {
			return nil, false
		}
		bm[k], bm[p] = bm[p], bm[k]
		x[k], x[p] = x[p], x[k]
		for i := k + 1; i < m; i++ {
			f := bm[i][k] / bm[k][k]
			if f == 0 {
				continue
			}
			bm[i][k] = 0
			for j := k + 1; j < m; j++ {
				bm[i][j] -= f * bm[k][j]
			}
			x[i] -= f * x[k]
		}
	}
	for k := m - 1; k >= 0; k-- {
		s := x[k]
		for j := k + 1; j < m; j++ {
			s -= bm[k][j] * x[j]
		}
		x[k] = s / bm[k][k]
	}
	return x, true
}

func maxAbs(v []float64) float64 {
	mx := 0.0
	for _, x := range v {
		if a := math.Abs(x); a > mx {
			mx = a
		}
	}
	return mx
}

// checkFtranResidual verifies B·x = rhs for the sparse result in lu.xSlot.
// eps is the relative backward-error budget: 1e-8 for a fresh factorization,
// driftEps (1e-7) after Forrest–Tomlin update chains — matching the drift
// discipline the revised engine itself enforces.
func checkFtranResidual(t *testing.T, a *testCSC, basis []int, lu *luFactor, rhs []float64, eps float64, tag string) {
	t.Helper()
	x := make([]float64, a.m)
	copy(x, lu.xSlot[:a.m])
	bx := make([]float64, a.m)
	a.mulBasis(basis, x, bx)
	tol := eps * (1 + maxAbs(x))
	for i := range bx {
		if math.Abs(bx[i]-rhs[i]) > tol {
			t.Fatalf("%s: residual %g at row %d (tol %g)", tag, bx[i]-rhs[i], i, tol)
		}
	}
}

// checkBtranRow verifies y·B = want for the sparse result in lu.yRow.
func checkBtranRow(t *testing.T, a *testCSC, basis []int, lu *luFactor, want []float64, eps float64, tag string) {
	t.Helper()
	y := lu.yRow
	tol := eps * (1 + maxAbs(y[:a.m]))
	for slot, c := range basis {
		s := 0.0
		for tt := a.ptr[c]; tt < a.ptr[c+1]; tt++ {
			s += y[a.idx[tt]] * a.val[tt]
		}
		if math.Abs(s-want[slot]) > tol {
			t.Fatalf("%s: (y·B)[%d]=%g want %g", tag, slot, s, want[slot])
		}
	}
}

func TestLUFactorSolves(t *testing.T) {
	rng := rand.New(rand.NewSource(71001))
	for trial := 0; trial < 200; trial++ {
		m := 1 + rng.Intn(30)
		a := randTestCSC(rng, m, m, 0.05+rng.Float64()*0.3)
		basis := make([]int, m)
		for i := range basis {
			basis[i] = i
		}
		lu := &luFactor{}
		if !lu.factor(m, a.ptr, a.idx, a.val, basis) {
			t.Fatalf("trial %d: factor reported singular on a diagonally dominant basis", trial)
		}

		// ftran of each basis column must reproduce a unit vector.
		slotCheck := rng.Intn(m)
		c := basis[slotCheck]
		xT := lu.ftran(a.idx[a.ptr[c]:a.ptr[c+1]], a.val[a.ptr[c]:a.ptr[c+1]], false)
		for _, s := range xT {
			want := 0.0
			if int(s) == slotCheck {
				want = 1
			}
			if math.Abs(lu.xSlot[s]-want) > 1e-9 {
				t.Fatalf("trial %d: ftran(basis col) x[%d]=%g want %g", trial, s, lu.xSlot[s], want)
			}
		}

		// ftran of a random sparse rhs vs the dense reference.
		var rows []int32
		var vals []float64
		rhs := make([]float64, m)
		for i := 0; i < m; i++ {
			if rng.Float64() < 0.4 {
				v := rng.NormFloat64()
				rows = append(rows, int32(i))
				vals = append(vals, v)
				rhs[i] = v
			}
		}
		lu.ftran(rows, vals, false)
		checkFtranResidual(t, a, basis, lu, rhs, 1e-8, "ftran sparse")
		if ref, ok := denseSolve(a, basis, rhs); ok {
			for s := 0; s < m; s++ {
				if math.Abs(lu.xSlot[s]-ref[s]) > 1e-8*(1+maxAbs(ref)) {
					t.Fatalf("trial %d: ftran x[%d]=%g dense ref %g", trial, s, lu.xSlot[s], ref[s])
				}
			}
		}

		// ftranDense on a dense rhs.
		w := make([]float64, m)
		rhsD := make([]float64, m)
		for i := range w {
			w[i] = rng.NormFloat64()
			rhsD[i] = w[i]
		}
		lu.ftranDense(w)
		checkFtranResidual(t, a, basis, lu, rhsD, 1e-8, "ftranDense")
		for i := range w {
			if w[i] != 0 {
				t.Fatalf("trial %d: ftranDense left w[%d]=%g (contract: consumed)", trial, i, w[i])
			}
		}

		// btranUnit: y·B = e_slot.
		slot := rng.Intn(m)
		lu.btranUnit(slot)
		unit := make([]float64, m)
		unit[slot] = 1
		checkBtranRow(t, a, basis, lu, unit, 1e-8, "btranUnit")

		// btranDense: y·B = c.
		cs := make([]float64, m)
		for i := range cs {
			cs[i] = rng.NormFloat64()
		}
		lu.btranDense(cs)
		checkBtranRow(t, a, basis, lu, cs, 1e-8, "btranDense")
	}
}

func TestLUFactorSingular(t *testing.T) {
	rng := rand.New(rand.NewSource(71002))
	m := 8
	a := randTestCSC(rng, m, m+1, 0.3)
	// Duplicate a column: basis using it twice is exactly singular.
	a.ptr = append(a.ptr[:m+1], a.ptr[m])
	basis := make([]int, m)
	for i := range basis {
		basis[i] = i
	}
	basis[3] = basis[5]
	lu := &luFactor{}
	if lu.factor(m, a.ptr, a.idx, a.val, basis) {
		t.Fatal("factor accepted a basis with a duplicated column")
	}
	// The factor must remain usable after a singular rejection.
	for i := range basis {
		basis[i] = i
	}
	if !lu.factor(m, a.ptr, a.idx, a.val, basis) {
		t.Fatal("factor failed on a nonsingular basis after a singular rejection")
	}
}

// TestLUUpdate drives long Forrest–Tomlin sequences: random column swaps,
// each applied via ftran(saveSpike)+update, verified by fresh solves against
// the mutated basis, with refactorization both on demand (update declines)
// and on the adaptive trigger.
func TestLUUpdate(t *testing.T) {
	rng := rand.New(rand.NewSource(71003))
	for trial := 0; trial < 60; trial++ {
		m := 2 + rng.Intn(24)
		n := m + 2 + rng.Intn(2*m)
		a := randTestCSC(rng, m, n, 0.05+rng.Float64()*0.25)
		basis := make([]int, m)
		inBase := make([]bool, n)
		for i := range basis {
			basis[i] = i
			inBase[i] = true
		}
		lu := &luFactor{}
		if !lu.factor(m, a.ptr, a.idx, a.val, basis) {
			t.Fatalf("trial %d: initial factor singular", trial)
		}
		refactors, updates := 0, 0
		for step := 0; step < 3*m; step++ {
			e := rng.Intn(n)
			if inBase[e] {
				continue
			}
			slot := rng.Intn(m)
			// Protocol mirror of the revised engine: FTRAN the entering
			// column with the spike saved, then update in place.
			lu.ftran(a.idx[a.ptr[e]:a.ptr[e+1]], a.val[a.ptr[e]:a.ptr[e+1]], true)
			newBasis := append([]int(nil), basis...)
			newBasis[slot] = e
			if _, ok := denseSolve(a, newBasis, make([]float64, m)); !ok {
				continue // candidate basis singular; the engine's ratio test would not pick it
			}
			if lu.update(slot) {
				updates++
			} else {
				refactors++
				if !lu.factor(m, a.ptr, a.idx, a.val, newBasis) {
					t.Fatalf("trial %d step %d: refactor failed on verified-nonsingular basis", trial, step)
				}
			}
			inBase[basis[slot]] = false
			inBase[e] = true
			basis[slot] = e
			if lu.needRefactor() {
				if !lu.factor(m, a.ptr, a.idx, a.val, basis) {
					t.Fatalf("trial %d step %d: adaptive refactor failed", trial, step)
				}
				refactors++
			}

			// Verify both solve directions against the mutated basis.
			var rows []int32
			var vals []float64
			rhs := make([]float64, m)
			for i := 0; i < m; i++ {
				if rng.Float64() < 0.5 {
					v := rng.NormFloat64()
					rows = append(rows, int32(i))
					vals = append(vals, v)
					rhs[i] = v
				}
			}
			lu.ftran(rows, vals, false)
			checkFtranResidual(t, a, basis, lu, rhs, driftEps, "post-update ftran")
			slotQ := rng.Intn(m)
			lu.btranUnit(slotQ)
			unit := make([]float64, m)
			unit[slotQ] = 1
			checkBtranRow(t, a, basis, lu, unit, driftEps, "post-update btranUnit")
		}
		if trial == 0 && updates == 0 {
			t.Error("no FT update ever succeeded; the update path is not being exercised")
		}
	}
}

// TestLUUpdateFillTrigger pins the adaptive reinversion contract: updates
// accumulate H fill, needRefactor eventually fires, and a refactorization
// resets the budget.
func TestLUUpdateFillTrigger(t *testing.T) {
	rng := rand.New(rand.NewSource(71004))
	m := 12
	n := 3 * m
	a := randTestCSC(rng, m, n, 0.4)
	basis := make([]int, m)
	inBase := make([]bool, n)
	for i := range basis {
		basis[i] = i
		inBase[i] = true
	}
	lu := &luFactor{}
	if !lu.factor(m, a.ptr, a.idx, a.val, basis) {
		t.Fatal("initial factor singular")
	}
	fired := false
	for step := 0; step < 4*luMaxUpdates && !fired; step++ {
		e := rng.Intn(n)
		if inBase[e] {
			continue
		}
		slot := rng.Intn(m)
		lu.ftran(a.idx[a.ptr[e]:a.ptr[e+1]], a.val[a.ptr[e]:a.ptr[e+1]], true)
		if !lu.update(slot) {
			continue
		}
		inBase[basis[slot]] = false
		inBase[e] = true
		basis[slot] = e
		if lu.needRefactor() {
			fired = true
		}
	}
	if !fired {
		t.Fatal("needRefactor never fired across 4×luMaxUpdates attempted pivots")
	}
	if !lu.factor(m, a.ptr, a.idx, a.val, basis) {
		t.Fatal("refactor failed")
	}
	if lu.needRefactor() {
		t.Fatal("needRefactor still true immediately after refactorization")
	}
	if lu.updates != 0 || lu.hFill != 0 {
		t.Fatalf("refactor did not reset update accounting: updates=%d hFill=%d", lu.updates, lu.hFill)
	}
}

// FuzzLUFactor feeds arbitrary small matrices through factor + an update
// sequence, checking backward error on every solve. Wired into the CI fuzz
// smoke alongside FuzzSimplex/FuzzPresolve.
func FuzzLUFactor(f *testing.F) {
	f.Add([]byte{5, 200, 3, 7, 9, 0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12})
	f.Add([]byte{2, 255, 0, 1, 2, 3})
	f.Add([]byte{8, 128, 9, 9, 9, 9, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16, 17, 18})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 4 {
			return
		}
		m := 1 + int(data[0])%8
		n := m + 1 + int(data[1])%8
		data = data[2:]
		a := &testCSC{m: m, n: n, ptr: make([]int32, 1, n+1)}
		pos := 0
		next := func() byte {
			if pos >= len(data) {
				pos = 0
			}
			if len(data) == 0 {
				return 0
			}
			b := data[pos]
			pos++
			return b
		}
		for j := 0; j < n; j++ {
			for i := 0; i < m; i++ {
				b := next()
				if b%3 == 0 {
					continue // structural zero
				}
				// Quantized values in [-4, 4]: keeps ‖B‖ bounded so the
				// backward-error tolerance below is meaningful.
				v := float64(int(b)-128) / 32
				if v == 0 {
					v = 0.5
				}
				a.idx = append(a.idx, int32(i))
				a.val = append(a.val, v)
			}
			a.ptr = append(a.ptr, int32(len(a.idx)))
		}
		basis := make([]int, m)
		inBase := make([]bool, n)
		for i := range basis {
			basis[i] = i
			inBase[i] = true
		}
		lu := &luFactor{}
		if !lu.factor(m, a.ptr, a.idx, a.val, basis) {
			return // singular input is a valid rejection
		}
		verify := func(tag string) {
			rhs := make([]float64, m)
			var rows []int32
			var vals []float64
			for i := 0; i < m; i++ {
				v := float64(int(next())-128) / 32
				if v == 0 {
					continue
				}
				rhs[i] = v
				rows = append(rows, int32(i))
				vals = append(vals, v)
			}
			lu.ftran(rows, vals, false)
			x := make([]float64, m)
			copy(x, lu.xSlot[:m])
			bx := make([]float64, m)
			a.mulBasis(basis, x, bx)
			// Backward-error bound: threshold pivoting (τ=0.1) admits
			// growth, so the tolerance scales with ‖x‖ and ‖B‖ (≤4·m).
			tol := 1e-5 * (1 + maxAbs(x)*float64(4*m))
			for i := range bx {
				if d := math.Abs(bx[i] - rhs[i]); !(d <= tol) {
					t.Fatalf("%s: residual %g at row %d (tol %g, m=%d)", tag, d, i, tol, m)
				}
			}
		}
		verify("after factor")
		for step := 0; step < 6; step++ {
			e := int(next()) % n
			if inBase[e] {
				continue
			}
			slot := int(next()) % m
			lu.ftran(a.idx[a.ptr[e]:a.ptr[e+1]], a.val[a.ptr[e]:a.ptr[e+1]], true)
			if !lu.update(slot) {
				continue // declined update: caller would refactor; basis unchanged here
			}
			inBase[basis[slot]] = false
			inBase[e] = true
			basis[slot] = e
			verify("after update")
		}
	})
}
