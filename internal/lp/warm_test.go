package lp

import (
	"math"
	"math/rand"
	"testing"
)

// checkAgainstCold solves inc warm and the same problem cold, and asserts
// matching status, objective within objTol, and a KKT certificate on the
// warm solution.
func checkAgainstCold(t *testing.T, inc *Incremental, b *Basis, label string) *Solution {
	t.Helper()
	warm, err := inc.SolveFrom(b)
	if err != nil {
		t.Fatalf("%s: warm solve error: %v", label, err)
	}
	cold, err := inc.Problem().Clone().Solve()
	if err != nil {
		t.Fatalf("%s: cold solve error: %v", label, err)
	}
	if warm.Status != cold.Status {
		t.Fatalf("%s: status mismatch warm=%v cold=%v", label, warm.Status, cold.Status)
	}
	if warm.Status != Optimal {
		return warm
	}
	if d := math.Abs(warm.Obj - cold.Obj); d > 1e-9*(1+math.Abs(cold.Obj)) {
		t.Fatalf("%s: objective mismatch warm=%.12g cold=%.12g (Δ=%g)", label, warm.Obj, cold.Obj, d)
	}
	if err := VerifyKKT(inc.Problem(), warm, 1e-6); err != nil {
		t.Fatalf("%s: warm KKT: %v", label, err)
	}
	if warm.Basis == nil {
		t.Fatalf("%s: optimal warm solution missing basis snapshot", label)
	}
	return warm
}

func TestIncrementalTightenBound(t *testing.T) {
	p := NewProblem()
	x := p.AddVariable(0, 10, -1, "x")
	y := p.AddVariable(0, 10, -2, "y")
	p.AddConstraint([]Term{{x, 1}, {y, 1}}, LE, 12, "cap")
	p.AddConstraint([]Term{{x, 1}, {y, 3}}, LE, 24, "mix")

	inc := NewIncremental(p)
	sol := checkAgainstCold(t, inc, nil, "root")
	root := sol.Basis

	// Branch-like sequence: tighten, solve, retighten from the root basis.
	inc.TightenBound(y, 0, 3)
	checkAgainstCold(t, inc, root, "y<=3")
	inc.TightenBound(y, 4, 10)
	checkAgainstCold(t, inc, root, "y>=4")
	inc.TightenBound(y, 5, 5) // fixed within the box
	checkAgainstCold(t, inc, root, "y=5")
	inc.TightenBound(y, 0, 10) // relax back
	checkAgainstCold(t, inc, root, "relaxed")
}

func TestIncrementalAddRow(t *testing.T) {
	p := NewProblem()
	x := p.AddVariable(0, 4, -3, "x")
	y := p.AddVariable(0, 4, -5, "y")
	p.AddConstraint([]Term{{x, 3}, {y, 2}}, LE, 18, "m")

	inc := NewIncremental(p)
	checkAgainstCold(t, inc, nil, "root")

	// Cutting-plane-like sequence: rows arrive one at a time.
	inc.AddRow([]Term{{x, 1}, {y, 1}}, LE, 5, "cut1")
	checkAgainstCold(t, inc, nil, "cut1")
	inc.AddRow([]Term{{x, -1}, {y, 1}}, GE, -1, "cut2")
	checkAgainstCold(t, inc, nil, "cut2")
	inc.AddRow([]Term{{x, 1}, {y, 2}}, EQ, 8, "eqcut")
	checkAgainstCold(t, inc, nil, "eqcut")
}

func TestIncrementalInfeasibleChildKeepsWarmState(t *testing.T) {
	p := NewProblem()
	x := p.AddVariable(0, 10, -1, "x")
	y := p.AddVariable(0, 10, -1, "y")
	p.AddConstraint([]Term{{x, 1}, {y, 1}}, GE, 5, "floor")

	inc := NewIncremental(p)
	sol := checkAgainstCold(t, inc, nil, "root")
	root := sol.Basis

	// Empty box child: must not poison the warm state.
	inc.TightenBound(x, 6, 2)
	if s, err := inc.SolveFrom(root); err != nil || s.Status != Infeasible {
		t.Fatalf("empty box: got status %v err %v", s.Status, err)
	}
	inc.TightenBound(x, 0, 10)
	checkAgainstCold(t, inc, root, "after empty box")

	// LP-infeasible child (bounds force row violation).
	inc.TightenBound(x, 0, 1)
	inc.TightenBound(y, 0, 1)
	if s, err := inc.SolveFrom(root); err != nil || s.Status != Infeasible {
		t.Fatalf("lp-infeasible child: got status %v err %v", s.Status, err)
	}
	inc.TightenBound(x, 0, 10)
	inc.TightenBound(y, 0, 10)
	checkAgainstCold(t, inc, root, "after infeasible child")
}

func TestIncrementalStaleBasisIgnored(t *testing.T) {
	build := func() *Problem {
		p := NewProblem()
		x := p.AddVariable(0, 4, -1, "x")
		y := p.AddVariable(0, 4, -1, "y")
		p.AddConstraint([]Term{{x, 1}, {y, 2}}, LE, 6, "r")
		return p
	}
	incA := NewIncremental(build())
	solA, err := incA.Solve()
	if err != nil || solA.Status != Optimal {
		t.Fatalf("A: %v %v", solA.Status, err)
	}
	// A basis from a different standardization must be ignored, not crash.
	incB := NewIncremental(build())
	checkAgainstCold(t, incB, solA.Basis, "foreign basis")
}

func TestIncrementalCostChangeFallsBackCold(t *testing.T) {
	p := NewProblem()
	x := p.AddVariable(0, 4, -1, "x")
	p.AddConstraint([]Term{{x, 1}}, LE, 3, "r")
	inc := NewIncremental(p)
	checkAgainstCold(t, inc, nil, "root")
	p.SetCost(x, 2) // outside the warm class: minimum moves to x=0
	sol := checkAgainstCold(t, inc, nil, "after cost change")
	if math.Abs(sol.X[x]) > 1e-9 {
		t.Fatalf("expected x=0 after cost flip, got %g", sol.X[x])
	}
}

func TestIncrementalPlainSolveHasNilBasis(t *testing.T) {
	p := NewProblem()
	x := p.AddVariable(0, 1, -1, "x")
	p.AddConstraint([]Term{{x, 1}}, LE, 1, "r")
	sol, err := p.Solve()
	if err != nil || sol.Status != Optimal {
		t.Fatalf("%v %v", sol, err)
	}
	if sol.Basis != nil {
		t.Fatal("plain Problem.Solve must not export a basis")
	}
}

// randomWarmInstance builds a random LP plus a mutation script mirroring
// the branch-and-bound / cutting-plane access pattern.
func randomWarmInstance(rng *rand.Rand) *Problem {
	p := NewProblem()
	n := 2 + rng.Intn(5)
	for j := 0; j < n; j++ {
		lo := float64(rng.Intn(5))
		hi := lo + float64(1+rng.Intn(9))
		if rng.Float64() < 0.15 {
			lo = math.Inf(-1) // kind-1 column
		}
		cost := math.Round((rng.Float64()*4-2)*8) / 8
		p.AddVariable(lo, hi, cost, "")
	}
	rowsN := 1 + rng.Intn(4)
	for i := 0; i < rowsN; i++ {
		var terms []Term
		for j := 0; j < n; j++ {
			if rng.Float64() < 0.6 {
				terms = append(terms, Term{j, math.Round((rng.Float64()*4-2)*8) / 8})
			}
		}
		if len(terms) == 0 {
			terms = append(terms, Term{rng.Intn(n), 1})
		}
		sense := LE
		switch rng.Intn(4) {
		case 0:
			sense = GE
		case 1:
			sense = EQ
		}
		rhs := math.Round((rng.Float64()*20 - 4)) // mildly biased feasible
		p.AddConstraint(terms, sense, rhs, "")
	}
	return p
}

// TestWarmMatchesColdProperty is the 1000-instance fuzzed warm-vs-cold
// property: every warm reoptimization after a random sequence of bound
// tightenings and row additions must match a from-scratch cold solve in
// status and objective (1e-9 relative) and carry a KKT certificate.
func TestWarmMatchesColdProperty(t *testing.T) {
	instances := 1000
	if testing.Short() {
		instances = 120
	}
	rng := rand.New(rand.NewSource(20260806))
	for k := 0; k < instances; k++ {
		p := randomWarmInstance(rng)
		inc := NewIncremental(p)
		warm, err := inc.Solve()
		if err != nil {
			t.Fatalf("instance %d: root error: %v", k, err)
		}
		cold, _ := p.Clone().Solve()
		if warm.Status != cold.Status {
			t.Fatalf("instance %d: root status warm=%v cold=%v", k, warm.Status, cold.Status)
		}
		var parent *Basis
		if warm.Status == Optimal {
			parent = warm.Basis
		}
		steps := 2 + rng.Intn(4)
		for s := 0; s < steps; s++ {
			// Mutate: mostly bound tightenings, sometimes a new row.
			if rng.Float64() < 0.35 {
				var terms []Term
				for j := 0; j < p.NumVariables(); j++ {
					if rng.Float64() < 0.5 {
						terms = append(terms, Term{j, math.Round((rng.Float64()*4-2)*8) / 8})
					}
				}
				if len(terms) == 0 {
					terms = append(terms, Term{0, 1})
				}
				sense := LE
				if rng.Intn(3) == 0 {
					sense = GE
				}
				inc.AddRow(terms, sense, math.Round(rng.Float64()*20-2), "")
			} else {
				v := rng.Intn(p.NumVariables())
				lo, hi := p.Bounds(v)
				if math.IsInf(lo, -1) {
					// Keep the bound class: only move the finite side.
					inc.TightenBound(v, lo, hi-rng.Float64()*2)
				} else {
					nlo := lo + rng.Float64()*2
					nhi := hi - rng.Float64()*2
					if rng.Float64() < 0.2 {
						nhi = nlo // fix
					}
					inc.TightenBound(v, nlo, nhi)
				}
			}
			w, err := inc.SolveFrom(parent)
			if err != nil {
				t.Fatalf("instance %d step %d: warm error: %v", k, s, err)
			}
			c, err := p.Clone().Solve()
			if err != nil {
				t.Fatalf("instance %d step %d: cold error: %v", k, s, err)
			}
			if w.Status != c.Status {
				t.Fatalf("instance %d step %d: status warm=%v cold=%v", k, s, w.Status, c.Status)
			}
			if w.Status == Optimal {
				if d := math.Abs(w.Obj - c.Obj); d > 1e-9*(1+math.Abs(c.Obj)) {
					t.Fatalf("instance %d step %d: obj warm=%.12g cold=%.12g", k, s, w.Obj, c.Obj)
				}
				if err := VerifyKKT(p, w, 1e-6); err != nil {
					t.Fatalf("instance %d step %d: warm KKT: %v", k, s, err)
				}
				parent = w.Basis
			}
		}
	}
}

// TestWarmPivotAdvantage asserts the headline perf property on a
// branch-and-bound-like workload: reoptimizing children from the parent
// basis must use far fewer pivots than cold solves.
func TestWarmPivotAdvantage(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	p := NewProblem()
	n := 24
	for j := 0; j < n; j++ {
		p.AddVariable(0, 1, rng.Float64()*2-1, "")
	}
	for i := 0; i < 16; i++ {
		var terms []Term
		for j := 0; j < n; j++ {
			terms = append(terms, Term{j, rng.Float64()})
		}
		p.AddConstraint(terms, LE, float64(n)/3, "")
	}
	inc := NewIncremental(p)
	root, err := inc.Solve()
	if err != nil || root.Status != Optimal {
		t.Fatalf("root: %v %v", root, err)
	}
	warmPivots, coldPivots := 0, 0
	children := 0
	for j := 0; j < n && children < 40; j++ {
		for _, fix := range []float64{0, 1} {
			inc.TightenBound(j, fix, fix)
			w, err := inc.SolveFrom(root.Basis)
			if err != nil {
				t.Fatal(err)
			}
			c, err := p.Clone().Solve()
			if err != nil {
				t.Fatal(err)
			}
			if w.Status == Optimal {
				warmPivots += w.Pivots
				coldPivots += c.Pivots
				children++
			}
			inc.TightenBound(j, 0, 1)
		}
	}
	if children == 0 {
		t.Fatal("no optimal children")
	}
	t.Logf("children=%d warm pivots=%d cold pivots=%d", children, warmPivots, coldPivots)
	if warmPivots*3 > coldPivots {
		t.Fatalf("warm start too weak: warm=%d cold=%d pivots (want ≥3×)", warmPivots, coldPivots)
	}
}
