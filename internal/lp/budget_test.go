package lp

import (
	"math"
	"math/rand"
	"testing"
)

// RHS ranging (Incremental.SetRHS): the warm layer's contribution to the
// parametric breakpoint tables — walking one row's right-hand side across
// a range (the budget row of an N-parameterized family) must reoptimize
// warmly and match a cold solve at every step.

// budgetWalkLP is a small allocation-shaped LP: maximize utility over n
// activities under one budget row (index 0) and a couple of coupling
// rows. The budget row is the one whose RHS the tests walk.
func budgetWalkLP(rng *rand.Rand, n int) (*Problem, int) {
	p := NewProblem()
	terms := make([]Term, 0, n)
	for j := 0; j < n; j++ {
		hi := 2 + float64(rng.Intn(8))
		cost := -math.Round((0.5+rng.Float64()*3)*8) / 8 // maximize
		v := p.AddVariable(0, hi, cost, "")
		terms = append(terms, Term{v, 1 + float64(rng.Intn(3))})
	}
	budget := p.AddConstraint(terms, LE, 4, "budget")
	rows := 1 + rng.Intn(3)
	for i := 0; i < rows; i++ {
		var rt []Term
		for j := 0; j < n; j++ {
			if rng.Float64() < 0.5 {
				rt = append(rt, Term{j, math.Round((rng.Float64()*4-1)*8) / 8})
			}
		}
		if len(rt) == 0 {
			rt = append(rt, Term{rng.Intn(n), 1})
		}
		sense := LE
		if rng.Intn(3) == 0 {
			sense = GE
		}
		p.AddConstraint(rt, sense, math.Round(rng.Float64()*10), "")
	}
	return p, budget
}

// TestSetRHSWarmMatchesColdProperty fuzzes RHS ranging across every row
// kind (LE/GE/EQ, sign-flipped standard rows included): after each SetRHS
// the warm reoptimization must match a cold solve in status and objective
// and carry a KKT certificate.
func TestSetRHSWarmMatchesColdProperty(t *testing.T) {
	instances := 400
	if testing.Short() {
		instances = 80
	}
	rng := rand.New(rand.NewSource(20260808))
	for k := 0; k < instances; k++ {
		p := randomWarmInstance(rng)
		inc := NewIncremental(p)
		if _, err := inc.Solve(); err != nil {
			t.Fatalf("instance %d: root error: %v", k, err)
		}
		steps := 3 + rng.Intn(4)
		for s := 0; s < steps; s++ {
			row := rng.Intn(p.NumConstraints())
			delta := math.Round((rng.Float64()*8-4)*4) / 4
			inc.SetRHS(row, p.RHS(row)+delta)
			checkAgainstCold(t, inc, nil, "setrhs")
		}
	}
}

// TestBudgetWalkWarmMatchesCold walks the budget row of allocation-shaped
// LPs across a whole range, in both directions, checking warm-vs-cold at
// every budget — the exact access pattern of a parametric table build.
func TestBudgetWalkWarmMatchesCold(t *testing.T) {
	instances := 60
	if testing.Short() {
		instances = 15
	}
	rng := rand.New(rand.NewSource(20260807))
	for k := 0; k < instances; k++ {
		p, budget := budgetWalkLP(rng, 3+rng.Intn(5))
		inc := NewIncremental(p)
		if _, err := inc.Solve(); err != nil {
			t.Fatalf("instance %d: root error: %v", k, err)
		}
		for b := 4.0; b <= 24; b += 2 {
			inc.SetRHS(budget, b)
			checkAgainstCold(t, inc, nil, "walk-up")
		}
		for b := 23.0; b >= 1; b -= 3 {
			inc.SetRHS(budget, b)
			checkAgainstCold(t, inc, nil, "walk-down")
		}
	}
}

// TestBudgetWalkPivotAdvantage asserts the point of RHS ranging: a warm
// budget walk must spend far fewer pivots than cold solves at every
// budget. The threshold is deliberately loose (≥1.5×) — the walk takes a
// handful of dual pivots per step against a full cold solve.
func TestBudgetWalkPivotAdvantage(t *testing.T) {
	rng := rand.New(rand.NewSource(20260809))
	var warmPivots, coldPivots int
	for k := 0; k < 10; k++ {
		p, budget := budgetWalkLP(rng, 8)
		inc := NewIncremental(p)
		root, err := inc.Solve()
		if err != nil {
			t.Fatalf("instance %d: root error: %v", k, err)
		}
		_ = root
		for b := 5.0; b <= 45; b += 1 {
			inc.SetRHS(budget, b)
			w, err := inc.Solve()
			if err != nil {
				t.Fatalf("instance %d b=%g: warm error: %v", k, b, err)
			}
			warmPivots += w.Pivots
			c, err := p.Clone().Solve()
			if err != nil {
				t.Fatalf("instance %d b=%g: cold error: %v", k, b, err)
			}
			coldPivots += c.Pivots
		}
	}
	if coldPivots == 0 {
		t.Fatalf("degenerate workload: zero cold pivots")
	}
	if float64(coldPivots) < 1.5*float64(warmPivots) {
		t.Fatalf("warm budget walk shows no pivot advantage: warm=%d cold=%d", warmPivots, coldPivots)
	}
	t.Logf("budget walk pivots: warm=%d cold=%d (%.1fx)", warmPivots, coldPivots, float64(coldPivots)/float64(math.Max(1, float64(warmPivots))))
}
