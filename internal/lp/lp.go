// Package lp implements a two-phase primal simplex solver for linear
// programs in general form:
//
//	minimize    cᵀx
//	subject to  aᵢᵀx {≤,=,≥} bᵢ
//	            loⱼ ≤ xⱼ ≤ hiⱼ   (bounds may be infinite)
//
// The solver is exactly what the HSLB optimization stack needs: robust on the
// small/medium problems produced by outer approximation and branch-and-bound,
// scaling to thousands of fragment families, deterministic, and
// dependency-free. It is the stand-in for CLP, which the paper's MINOTAUR
// solver uses for its LP relaxations.
//
// Internally the problem is presolved (presolve.go), reduced to standard
// computational form (min cᵀx, Ax = b, x ≥ 0), and solved with Dantzig
// pricing plus an automatic switch to Bland's rule to escape degenerate
// cycling. Cold solves run a sparse revised simplex with a product-form
// inverse (revised.go); warm solves and all fallbacks run the tableau
// simplex (simplex.go) with pattern-aware kernels (sparse.go), whose dense
// loops are the correctness authority (Problem.DisableSparse).
package lp

import (
	"errors"
	"fmt"
	"math"
)

// Sense is the relational operator of a constraint row.
type Sense int

// Constraint senses.
const (
	LE Sense = iota // aᵀx ≤ b
	GE              // aᵀx ≥ b
	EQ              // aᵀx = b
)

func (s Sense) String() string {
	switch s {
	case LE:
		return "<="
	case GE:
		return ">="
	case EQ:
		return "="
	}
	return "?"
}

// Status reports the outcome of a solve.
type Status int

// Solve outcomes.
const (
	Optimal Status = iota
	Infeasible
	Unbounded
	IterLimit
)

func (s Status) String() string {
	switch s {
	case Optimal:
		return "optimal"
	case Infeasible:
		return "infeasible"
	case Unbounded:
		return "unbounded"
	case IterLimit:
		return "iteration limit"
	}
	return "unknown"
}

// ErrBadModel reports a structurally invalid problem (e.g. lo > hi).
var ErrBadModel = errors.New("lp: invalid model")

// Inf is a convenience for unbounded variable bounds.
var Inf = math.Inf(1)

// Term is one coefficient of a constraint row.
type Term struct {
	Var  int
	Coef float64
}

// Constraint is one row of the problem.
type Constraint struct {
	Terms []Term
	Sense Sense
	RHS   float64
	Name  string
}

// Problem is a linear program under construction. The zero value is an empty
// minimization problem ready for use.
type Problem struct {
	costs []float64
	lo    []float64
	hi    []float64
	names []string
	rows  []Constraint

	// MaxIter bounds simplex iterations per phase; 0 means automatic
	// (scales with problem size).
	MaxIter int

	// DisableSparse pins every solve of this problem to the dense simplex
	// kernels (full-row pivots, full-column pricing) — the correctness
	// authority the sparse path is validated against. Copied by Clone, so
	// the knob propagates through branch-and-bound node problems.
	DisableSparse bool

	// DisablePresolve skips the presolve/postsolve reduction in front of
	// cold Problem.Solve calls. Incremental (warm) solves never presolve;
	// their bound-tightening machinery plays the same role.
	DisablePresolve bool

	// DisableDevex pins the revised engine and the warm dual simplex to
	// classic Dantzig pricing instead of devex reference-framework weights.
	// Ablation knob for the devex-vs-Dantzig property battery and the
	// pivot-count benchmarks; pricing choice can change which tied-optimal
	// vertex a solve lands on, never the verdict. Copied by Clone.
	DisableDevex bool

	// DisableCrash ignores any crash point set by SetCrashPoint: every
	// solve starts from the standard slack/artificial basis. Ablation knob
	// for the crash-vs-cold property battery. Copied by Clone.
	DisableCrash bool

	// DisableAggregation skips the duplicate-column/duplicate-row
	// aggregation pass in front of cold Problem.Solve calls (presolve.go).
	// Ablation knob for the aggregation round-trip battery. Copied by Clone.
	DisableAggregation bool

	// DisableBorder pins the revised engine to plain LU factorization of
	// the full basis: dense coupling columns (the T-series makespan column)
	// are factored in place instead of being held out in a bordered
	// Sherman–Morrison solve (border.go). Ablation knob. Copied by Clone.
	DisableBorder bool

	// crashPoint, when non-nil, is a caller-supplied primal point in
	// original variable space that solvers may round to a starting vertex
	// (crash basis). It is advisory: solvers verify feasibility before
	// adopting it and silently fall back to the cold start otherwise.
	crashPoint []float64
}

// NewProblem returns an empty problem.
func NewProblem() *Problem { return &Problem{} }

// AddVariable adds a variable with bounds [lo, hi] and objective coefficient
// cost, returning its index. Use -lp.Inf / lp.Inf for free bounds.
func (p *Problem) AddVariable(lo, hi, cost float64, name string) int {
	p.costs = append(p.costs, cost)
	p.lo = append(p.lo, lo)
	p.hi = append(p.hi, hi)
	p.names = append(p.names, name)
	return len(p.costs) - 1
}

// SetCost overwrites the objective coefficient of variable v.
func (p *Problem) SetCost(v int, cost float64) { p.costs[v] = cost }

// Cost returns the objective coefficient of variable v.
func (p *Problem) Cost(v int) float64 { return p.costs[v] }

// SetBounds overwrites the bounds of variable v.
func (p *Problem) SetBounds(v int, lo, hi float64) { p.lo[v], p.hi[v] = lo, hi }

// Bounds returns the bounds of variable v.
func (p *Problem) Bounds(v int) (lo, hi float64) { return p.lo[v], p.hi[v] }

// SetRHS replaces the right-hand side of constraint row i. RHS changes
// leave the dual solution dual-feasible, so Incremental solves absorb them
// warmly (RHS ranging — the budget walk of a parametric family); cold
// solves simply see the new value.
func (p *Problem) SetRHS(i int, rhs float64) { p.rows[i].RHS = rhs }

// RHS returns the right-hand side of constraint row i.
func (p *Problem) RHS(i int) float64 { return p.rows[i].RHS }

// NumVariables returns the number of variables added so far.
func (p *Problem) NumVariables() int { return len(p.costs) }

// NumConstraints returns the number of rows added so far.
func (p *Problem) NumConstraints() int { return len(p.rows) }

// AddConstraint adds the row Σ terms {sense} rhs and returns its index.
func (p *Problem) AddConstraint(terms []Term, sense Sense, rhs float64, name string) int {
	for _, t := range terms {
		if t.Var < 0 || t.Var >= len(p.costs) {
			panic(fmt.Sprintf("lp: constraint references unknown variable %d", t.Var))
		}
	}
	p.rows = append(p.rows, Constraint{Terms: append([]Term(nil), terms...), Sense: sense, RHS: rhs, Name: name})
	return len(p.rows) - 1
}

// SetCrashPoint supplies a primal point in original variable space (one
// entry per variable added so far) as a crash-basis hint: solvers round it
// to a nearby vertex and start there when the vertex verifies as feasible,
// skipping phase 1. The hint is advisory — an infeasible or malformed point
// is declined and the solve proceeds cold, never wrong. Pass nil to clear.
// The hint survives Clone, so branch-and-bound node problems inherit it.
func (p *Problem) SetCrashPoint(x []float64) {
	if x == nil {
		p.crashPoint = nil
		return
	}
	p.crashPoint = append([]float64(nil), x...)
}

// CrashPoint returns the crash hint set by SetCrashPoint (nil when unset).
func (p *Problem) CrashPoint() []float64 { return p.crashPoint }

// Clone returns a deep copy of the problem.
func (p *Problem) Clone() *Problem {
	c := &Problem{
		costs:              append([]float64(nil), p.costs...),
		lo:                 append([]float64(nil), p.lo...),
		hi:                 append([]float64(nil), p.hi...),
		names:              append([]string(nil), p.names...),
		rows:               make([]Constraint, len(p.rows)),
		MaxIter:            p.MaxIter,
		DisableSparse:      p.DisableSparse,
		DisablePresolve:    p.DisablePresolve,
		DisableDevex:       p.DisableDevex,
		DisableCrash:       p.DisableCrash,
		DisableAggregation: p.DisableAggregation,
		DisableBorder:      p.DisableBorder,
		crashPoint:         append([]float64(nil), p.crashPoint...),
	}
	for i, r := range p.rows {
		c.rows[i] = Constraint{Terms: append([]Term(nil), r.Terms...), Sense: r.Sense, RHS: r.RHS, Name: r.Name}
	}
	return c
}

// Solution is the result of a solve.
type Solution struct {
	Status     Status
	X          []float64 // values of the original variables (valid when Optimal)
	Obj        float64   // objective value (valid when Optimal)
	Dual       []float64 // one multiplier per constraint (valid when Optimal)
	Iterations int
	// Pivots counts basis-changing simplex pivots (bound flips excluded).
	// It is the hardware-independent work metric used by the warm-start
	// benchmarks.
	Pivots int
	// Basis is a reusable snapshot of the optimal basis, populated only by
	// Incremental solves (plain Problem.Solve leaves it nil). It can seed a
	// warm dual-simplex reoptimization via Incremental.SolveFrom.
	Basis *Basis
}

// Value evaluates the row's left-hand side at x.
func (c *Constraint) Value(x []float64) float64 {
	s := 0.0
	for _, t := range c.Terms {
		s += t.Coef * x[t.Var]
	}
	return s
}

// Violation returns how far x is from satisfying row c (0 when satisfied).
func (c *Constraint) Violation(x []float64) float64 {
	v := c.Value(x)
	switch c.Sense {
	case LE:
		return math.Max(0, v-c.RHS)
	case GE:
		return math.Max(0, c.RHS-v)
	default:
		return math.Abs(v - c.RHS)
	}
}

// MaxViolation returns the largest constraint or bound violation of x.
func (p *Problem) MaxViolation(x []float64) float64 {
	worst := 0.0
	for i := range p.rows {
		if v := p.rows[i].Violation(x); v > worst {
			worst = v
		}
	}
	for j := range p.lo {
		if v := p.lo[j] - x[j]; v > worst {
			worst = v
		}
		if v := x[j] - p.hi[j]; v > worst {
			worst = v
		}
	}
	return worst
}

// Objective evaluates cᵀx.
func (p *Problem) Objective(x []float64) float64 {
	s := 0.0
	for j, c := range p.costs {
		s += c * x[j]
	}
	return s
}
