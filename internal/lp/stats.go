package lp

// Engine observability for the revised simplex: every time the sparse LU
// engine declines a solve and hands it to the dense tableau authority, the
// reason is recorded as a typed BasisDriftError, counted, and offered to an
// optional debug hook. PR 4's fixed-interval reinversion could silently eat
// accuracy between rebuilds; the LU engine instead measures its drift every
// pivot, and this file makes the resulting decisions visible — up to the
// hslbd /statz endpoint (internal/serve reads EngineStats into its
// snapshot).

import (
	"fmt"
	"sync/atomic"
)

// BasisDriftError describes why the revised engine abandoned a solve and
// fell back to the dense tableau path. Stage names the fallback rung;
// Residual is the measured quantity that tripped it (meaning depends on the
// stage: relative reduced-cost drift, phase-1 residual, bound violation, or
// 0 for structural declines like a singular factorization).
type BasisDriftError struct {
	Stage    string  // "factor-singular", "drift", "phase1", "iterlimit", "sanity", "unbounded-doubt"
	Residual float64 // the measured residual behind the verdict (0 if structural)
}

func (e *BasisDriftError) Error() string {
	return fmt.Sprintf("lp: revised engine fallback at %s (residual %g)", e.Stage, e.Residual)
}

// Process-global engine counters. Monotonic; cheap enough to maintain
// unconditionally. They are aggregates across every Problem in the process
// (the serve layer runs one process per shard, so per-process is the useful
// granularity).
var (
	engFallbacks atomic.Int64 // solves declined to the dense tableau, any stage
	engDrifts    atomic.Int64 // drift-check trips (each forces a refactorization)
	engRefactors atomic.Int64 // LU refactorizations, scheduled or forced
	engUpdates   atomic.Int64 // successful Forrest–Tomlin updates

	crashInstalls atomic.Int64 // crash bases installed and verified (phase 1 skipped)
	crashDeclines atomic.Int64 // crash hints declined (infeasible point, singular basis…)
	borderSolves  atomic.Int64 // solves that ran with a bordered coupling column
	aggMerges     atomic.Int64 // cold solves that went through a non-trivial aggregation
)

// EngineStats is a snapshot of the revised engine's global counters.
// Solves mirrors the route counter maintained by solveColdAuto.
type EngineStats struct {
	Solves    int64 // cold solves answered by the revised engine
	Fallbacks int64 // solves declined to the dense tableau
	Drifts    int64 // incremental-pricing drift trips
	Refactors int64 // LU refactorizations
	Updates   int64 // Forrest–Tomlin updates applied

	CrashInstalls int64 // crash bases installed and verified (phase 1 skipped)
	CrashDeclines int64 // crash hints declined (solve proceeded cold)
	BorderSolves  int64 // solves that held a coupling column behind the SM border
	AggMerges     int64 // cold solves that went through a non-trivial aggregation
}

// ReadEngineStats returns the current revised-engine counters.
func ReadEngineStats() EngineStats {
	return EngineStats{
		Solves:    revisedSolves.Load(),
		Fallbacks: engFallbacks.Load(),
		Drifts:    engDrifts.Load(),
		Refactors: engRefactors.Load(),
		Updates:   engUpdates.Load(),

		CrashInstalls: crashInstalls.Load(),
		CrashDeclines: crashDeclines.Load(),
		BorderSolves:  borderSolves.Load(),
		AggMerges:     aggMerges.Load(),
	}
}

// debugFallback observes every revised-engine fallback. Testing aid; the
// fallback itself always happens — the hook only watches.
var debugFallback func(*BasisDriftError)

// SetFallbackDebug installs an observer for revised-engine fallbacks (nil
// disables). The hook runs synchronously on the solving goroutine.
func SetFallbackDebug(f func(*BasisDriftError)) { debugFallback = f }

// engineFallback records one decline: counter, then hook.
func engineFallback(stage string, residual float64) {
	engFallbacks.Add(1)
	if f := debugFallback; f != nil {
		f(&BasisDriftError{Stage: stage, Residual: residual})
	}
}
