package lp

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/stats"
)

// Regression guard: outer-approximation master LPs (many near-parallel LE
// cuts bounding an epigraph variable, plus shifted variable lower bounds)
// once triggered a wrong "infeasible" — the incrementally tracked phase-1
// objective drifted above the feasibility tolerance even though every
// artificial variable had been driven to zero. The verdict now uses the
// exact artificial residual; these instances keep it honest.
func TestPhase1DriftOnOAMasters(t *testing.T) {
	f := func(seed uint64) bool {
		rng := stats.NewRNG(seed)
		p := NewProblem()
		// Epigraph variable T and a few "allocation" variables with
		// shifted boxes, like a branch-and-bound child node.
		tv := p.AddVariable(0, 1e4, 1, "T")
		k := 3 + rng.Intn(3)
		vars := make([]int, k)
		budget := make([]Term, 0, k)
		total := 0.0
		for j := 0; j < k; j++ {
			lo := float64(1 + rng.Intn(5))
			hi := lo + float64(1+rng.Intn(12))
			vars[j] = p.AddVariable(lo, hi, 0, "n")
			budget = append(budget, Term{vars[j], 1})
			total += hi
		}
		p.AddConstraint(budget, LE, total*rng.Range(0.7, 1.0), "budget")
		// Tangent-style cuts: T ≥ w/x linearized at many points —
		// w/x0 − w/x0²·(x−x0) ≤ T for x0 across each variable's box.
		for j := 0; j < k; j++ {
			w := rng.Range(50, 500)
			lo, hi := p.Bounds(vars[j])
			for i := 0; i < 12; i++ {
				x0 := lo + (hi-lo)*float64(i)/11
				if x0 < 1 {
					x0 = 1
				}
				grad := -w / (x0 * x0)
				// w/x0 + grad·(x − x0) − T ≤ 0.
				p.AddConstraint([]Term{{vars[j], grad}, {tv, -1}}, LE,
					-(w/x0)+grad*x0, "cut")
			}
		}
		sol, err := p.Solve()
		if err != nil {
			return false
		}
		// Feasible by construction: every box point with T large enough
		// satisfies all rows (budget RHS ≥ Σ lo by construction when the
		// shrink factor keeps it above; verify and skip the rare
		// genuinely-infeasible draw).
		sumLo := 0.0
		for j := 0; j < k; j++ {
			lo, _ := p.Bounds(vars[j])
			sumLo += lo
		}
		if rhsOf(p, 0) < sumLo {
			return true // budget genuinely infeasible; nothing to test
		}
		if sol.Status != Optimal {
			return false
		}
		return p.MaxViolation(sol.X) < 1e-6 && !math.IsNaN(sol.Obj)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// rhsOf returns constraint i's right-hand side (test helper).
func rhsOf(p *Problem, i int) float64 { return p.rows[i].RHS }
