package lp

// Crash basis construction: turn a caller-supplied primal point — in the
// HSLB stack, the paper's greedy LPT allocation, which is near-optimal by
// construction — into a starting BASIS, skipping phase 1 entirely and
// leaving phase 2 a handful of repair pivots instead of a cold march from
// the all-slack vertex.
//
// The rounding is deliberately simple (this is a heuristic; the verification
// is what carries correctness):
//
//  1. Map the point into standard space through the standardization's
//     variable maps and snap every coordinate within crashSnapEps of a
//     bound onto it.
//  2. Complete the slacks row by row; a row violated beyond the scaled
//     feasibility tolerance declines the whole crash.
//  3. Propose a basis: interior slacks claim their own rows (pass A);
//     interior structural columns claim a remaining row from their pattern
//     by largest pivot magnitude (pass B — this is where the makespan
//     column lands on a critical load row); rows still uncovered take
//     their best at-bound column basic, degenerately (pass C); anything
//     left keeps its slack or artificial.
//
// The proposal is then INSTALLED AND VERIFIED, never trusted: the revised
// engine refactorizes from the proposed columns and checks every basic
// value against its bounds (tryCrashBasis below); the warm path routes the
// proposal through Incremental.install, the same Gauss–Jordan validation
// every stored-basis warm start takes. Any failure — singular basis, bound
// violation, a residual on an equality row — falls back to the ordinary
// cold start, so a crash hint can cost pivots but never correctness.

import "math"

// crashPlan is the vertex rounding of a crash point: the rounded point in
// standard space, a proposed basic column per row (-1 keeps the row's
// slack/artificial), and the bound statuses of the nonbasic columns.
type crashPlan struct {
	u      []float64
	assign []int
	status []int8
}

// crashVal reads the t-th nonzero of standardized row i, from the aligned
// value rows when the sparse-only standardization built them, else from the
// dense rows.
func crashVal(std *standard, i, t int) float64 {
	if std.val != nil {
		return std.val[i][t]
	}
	return std.a[i][std.pat[i][t]]
}

// buildCrashPlan rounds p.crashPoint to a vertex proposal for the
// standardized system. slackOf names each row's identity slack column (-1
// when the row got an artificial). nil means "no usable plan" — malformed
// point, infeasible beyond tolerance, or no pattern rows to work from.
func buildCrashPlan(p *Problem, std *standard, nPre int, slackOf []int32) *crashPlan {
	x := p.crashPoint
	if x == nil || len(x) != len(p.costs) || std.pat == nil {
		return nil
	}
	m := len(std.a)
	u := make([]float64, nPre)
	status := make([]int8, nPre)
	isSlackCol := make([]bool, nPre)
	for i := 0; i < m; i++ {
		if s := slackOf[i]; s >= 0 {
			isSlackCol[s] = true
		}
	}

	// 1. Map the point into standard (shifted/split) space.
	for j, vm := range std.vmaps {
		v := x[j]
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return nil
		}
		switch vm.kind {
		case 0:
			u[vm.col] = v - vm.shift
		case 1:
			u[vm.col] = vm.shift - v
		case 2:
			u[vm.col] = math.Max(v, 0)
			u[vm.col2] = math.Max(-v, 0)
		}
	}

	// 2. Clamp structural coordinates into their boxes and snap the ones
	// within the (relative) snap window onto the bound.
	interior := make([]bool, nPre)
	for j := 0; j < nPre; j++ {
		if isSlackCol[j] {
			continue
		}
		lo, hi := std.lb[j], std.ub[j]
		v := u[j]
		if v < lo {
			v = lo
		}
		if v > hi {
			v = hi
		}
		if v-lo <= crashSnapEps*(1+math.Abs(lo)) {
			u[j], status[j] = lo, atLower
			continue
		}
		if !math.IsInf(hi, 1) && hi-v <= crashSnapEps*(1+math.Abs(hi)) {
			u[j] = hi
			if hi != lo {
				status[j] = atUpper
			}
			continue
		}
		u[j] = v
		interior[j] = true
	}

	// Column → rows index over the structural pattern (counting layout),
	// with the coefficient alongside for the pivot-magnitude choices. Built
	// before slack completion: the singleton-absorber step below needs
	// per-column occurrence counts.
	cnt := make([]int32, nPre+1)
	for i := 0; i < m; i++ {
		for _, j32 := range std.pat[i] {
			if int(j32) < nPre {
				cnt[j32+1]++
			}
		}
	}
	for j := 0; j < nPre; j++ {
		cnt[j+1] += cnt[j]
	}
	colRow := make([]int32, cnt[nPre])
	colCoef := make([]float64, cnt[nPre])
	fill := make([]int32, nPre)
	copy(fill, cnt[:nPre])
	for i := 0; i < m; i++ {
		for t, j32 := range std.pat[i] {
			if int(j32) >= nPre {
				continue
			}
			pos := fill[j32]
			colRow[pos] = int32(i)
			colCoef[pos] = crashVal(std, i, t)
			fill[j32] = pos + 1
		}
	}

	// 3. Slack completion: each row's slack absorbs its residual. A row
	// without a unit slack — an equality, or an inequality whose RHS sign
	// flip turned the slack into a structural column with coefficient −1 —
	// gets one more chance: a ROW-SINGLETON structural column (the flipped
	// slack or surplus is exactly that) absorbs the residual if its box
	// allows, touching no other row. Any residual beyond the SCALED
	// feasibility tolerance after that declines the crash — the point is
	// not the near-feasible allocation it claims to be.
	tol := feasTol(std.scale)
	var preAssign [][2]int
	for i := 0; i < m; i++ {
		act := 0.0
		sc := slackOf[i]
		for t, j32 := range std.pat[i] {
			j := int(j32)
			if j >= nPre || j32 == sc {
				continue
			}
			if v := u[j]; v != 0 {
				act += crashVal(std, i, t) * v
			}
		}
		if sc < 0 {
			r := std.b[i] - act
			if math.Abs(r) <= tol {
				continue
			}
			absorbed := false
			for t, j32 := range std.pat[i] {
				j := int(j32)
				if j >= nPre || cnt[j+1]-cnt[j] != 1 {
					continue
				}
				c := crashVal(std, i, t)
				if math.Abs(c) <= artPivotEps {
					continue
				}
				v := u[j] + r/c
				lo, hi := std.lb[j], std.ub[j]
				if v < lo-tol || v > hi+tol {
					continue
				}
				if v-lo <= crashSnapEps*(1+math.Abs(lo)) {
					u[j], status[j] = lo, atLower
					interior[j] = false
				} else if !math.IsInf(hi, 1) && hi-v <= crashSnapEps*(1+math.Abs(hi)) {
					u[j], status[j] = hi, atUpper
					interior[j] = false
				} else {
					// The absorber behaves exactly like an interior slack: it
					// owns its row (the row-singleton guarantee makes the
					// pivot safe) and pass B must neither park it on a bound
					// nor let another column claim the row.
					u[j] = v
					interior[j] = false
					isSlackCol[j] = true
					preAssign = append(preAssign, [2]int{i, j})
				}
				absorbed = true
				break
			}
			if !absorbed {
				return nil
			}
			continue
		}
		sv := std.b[i] - act
		if sv < -tol {
			return nil
		}
		if sv <= crashSnapEps*(1+math.Abs(std.b[i])) {
			sv = 0
		} else {
			interior[sc] = true
		}
		u[sc] = sv
	}

	assign := make([]int, m)
	rowTaken := make([]bool, m)
	colBasic := make([]bool, nPre)
	for i := range assign {
		assign[i] = -1
	}

	// Pass A: an interior slack is basic on its own row; an interior
	// singleton absorber (the flipped slack of a sign-corrected row) is the
	// same thing under a structural column index.
	for i := 0; i < m; i++ {
		if sc := slackOf[i]; sc >= 0 && interior[sc] {
			assign[i] = int(sc)
			rowTaken[i] = true
			colBasic[sc] = true
		}
	}
	for _, pa := range preAssign {
		assign[pa[0]] = pa[1]
		rowTaken[pa[0]] = true
		colBasic[pa[1]] = true
	}

	// Pass B: interior structural columns (ascending, deterministic) claim
	// the free row of their pattern with the largest pivot magnitude; a
	// column with no admissible row is parked on its nearest bound instead
	// (the verification refactorization is the authority on the residual
	// this introduces).
	for j := 0; j < nPre; j++ {
		if !interior[j] || isSlackCol[j] {
			continue
		}
		best, bestAbs := int32(-1), artPivotEps
		for t := cnt[j]; t < cnt[j+1]; t++ {
			i := colRow[t]
			if rowTaken[i] {
				continue
			}
			if a := math.Abs(colCoef[t]); a > bestAbs {
				best, bestAbs = i, a
			}
		}
		if best >= 0 {
			assign[best] = j
			rowTaken[best] = true
			colBasic[j] = true
			continue
		}
		lo, hi := std.lb[j], std.ub[j]
		if !math.IsInf(hi, 1) && hi-u[j] < u[j]-lo {
			u[j], status[j] = hi, atUpper
		} else {
			u[j], status[j] = lo, atLower
		}
	}

	// Pass C: rows still uncovered take their strongest unclaimed column
	// basic AT its bound — a degenerate but structural basis slot (on the
	// T-series pick rows this is the chosen assignment binary, which beats
	// leaving the artificial in the basis).
	for i := 0; i < m; i++ {
		if assign[i] >= 0 {
			continue
		}
		best, bestAbs := -1, artPivotEps
		for t, j32 := range std.pat[i] {
			j := int(j32)
			if j >= nPre || colBasic[j] {
				continue
			}
			if a := math.Abs(crashVal(std, i, t)); a > bestAbs {
				best, bestAbs = j, a
			}
		}
		if best >= 0 {
			assign[i] = best
			colBasic[best] = true
		}
	}
	return &crashPlan{u: u, assign: assign, status: status}
}

// tryCrashBasis rounds the problem's crash point to a basis proposal,
// installs it, and verifies it by a full refactorization: every basic value
// must land inside its bounds and every artificial slot must vanish, all
// within the scaled feasibility tolerance. true means the engine starts
// phase 2 directly from the crash vertex; false restores the untouched
// identity state and the solve proceeds cold. Called after the engine's
// books (CSC, slackOf/artOf, identity basis) are fully built and before
// the initial factorization.
func (rv *revEngine) tryCrashBasis(p *Problem, std *standard, nPre int) bool {
	if p.DisableCrash || p.crashPoint == nil {
		return false
	}
	plan := buildCrashPlan(p, std, nPre, rv.slackOf)
	if plan == nil {
		crashDeclines.Add(1)
		return false
	}
	for i := 0; i < rv.m; i++ {
		if a := plan.assign[i]; a >= 0 {
			rv.basis[i] = a
		}
	}
	copy(rv.status[:nPre], plan.status)
	for j := 0; j < rv.n; j++ {
		rv.inBase[j] = false
	}
	for _, bc := range rv.basis {
		rv.inBase[bc] = true
	}
	rv.maybeEngageBorderAtFactor(p)
	if !rv.refactor() {
		rv.restoreIdentity(std)
		crashDeclines.Add(1)
		return false
	}
	for i, bc := range rv.basis {
		v := rv.xB[i]
		vtol := crashInstallEps * (1 + math.Abs(v))
		if math.IsNaN(v) || v < rv.lb[bc]-vtol || v > rv.ub[bc]+vtol ||
			(bc >= rv.artStart && math.Abs(v) > vtol) {
			rv.restoreIdentity(std)
			crashDeclines.Add(1)
			return false
		}
	}
	crashInstalls.Add(1)
	return true
}

// restoreIdentity rewinds the engine books to the slack/artificial identity
// basis after a declined crash install; the caller then factors the
// identity exactly as if no crash had been attempted.
func (rv *revEngine) restoreIdentity(std *standard) {
	rv.borderOff()
	for j := 0; j < rv.n; j++ {
		rv.status[j] = atLower
		rv.inBase[j] = false
	}
	for i := 0; i < rv.m; i++ {
		bc := int(rv.slackOf[i])
		if bc < 0 {
			bc = int(rv.artOf[i])
		}
		rv.basis[i] = bc
		rv.inBase[bc] = true
		rv.xB[i] = std.b[i]
	}
}
