package lp

// Revised simplex over a sparse LU basis factorization — the cold-solve
// engine of the sparse path.
//
// The pattern-aware tableau kernels in sparse.go cut the cost of a pivot to
// the true fill of the tableau, but on the paper's min-max allocation LPs
// the tableau itself densifies: the makespan column T appears in every load
// row, so the first pivot that brings T into the basis sprays one row's
// pattern across all N load rows and the *exact* tableau jumps to ~50% fill
// (profiled in DESIGN.md). The classical answer is to stop forming B⁻¹A:
// the basis matrix B is a selection of ORIGINAL columns (≤ 3 nonzeros for
// an assignment column, 1 for a slack) and stays sparse even when the
// tableau does not.
//
// PR 4 represented B⁻¹ as a product-form-inverse eta file with a fixed
// 64-pivot reinversion cadence and exact Dantzig pricing recomputed from
// y = c_B·B⁻¹ every iteration; reinversion alone profiled at 40% of a cold
// N=2048 solve and BTRAN+pricing at another 40%. This generation replaces
// all three legs:
//
//   - B⁻¹ lives in a Markowitz-ordered sparse LU factorization (lu.go)
//     updated in place by Forrest–Tomlin after every pivot; refactorization
//     is adaptive (update count, fill growth, drift, or a declined unstable
//     update — the Bartels–Golub-style recovery) instead of fixed-cadence.
//
//   - Pricing is devex (devex.go) over reduced costs maintained
//     INCREMENTALLY: one hyper-sparse BTRAN of the pivot row per iteration
//     updates d and the devex weights in O(|pivot row|), replacing the
//     dense BTRAN + O(nnz(A)) reprice. Exact recomputation happens at every
//     refactorization, before any Optimal verdict, and on drift.
//
//   - Two drift checks per pivot hold the incremental state to the
//     factorization: the entering reduced cost is re-derived from the FTRAN
//     result (d_e = c_e − c_B·B⁻¹a_e), and the pivot element is computed by
//     both FTRAN and BTRAN routes; relative disagreement beyond driftEps
//     forces refactorization + exact reprice, and persistent disagreement
//     abandons the solve with a BasisDriftError (stats.go).
//
// The dense tableau remains the differential authority exactly as PR 4 left
// it: the engine declines — it never guesses — on singular factorizations,
// iteration limits, phase-1 Infeasible verdicts, bound-violating "optima",
// and persistent drift; solveColdAuto then reruns the solve on the tableau
// path. Verdicts the engine does stand behind (Optimal, phase-2 Unbounded)
// follow the same pricing tolerances and ratio-test tie-breaks as
// tableau.run, so the property batteries can hold the two engines to status
// agreement and objective agreement within scaled tolerances.

import (
	"math"
	"sync"
)

// revFailed is the internal sentinel for "abandon the revised engine and
// fall back to the tableau path"; it never escapes solveRevised.
const revFailed Status = -1

// revEngine is the working state of one revised-simplex solve. Engines are
// pooled (revPool): every slice below is sized with the cap-preserving grow
// helpers so steady-state solves allocate only their Solution.
type revEngine struct {
	m, n int // rows, columns (slacks and artificials included)

	// CSC of the standardized, artificial-extended constraint matrix.
	// Row indices ascend within each column; the matrix is immutable.
	colPtr []int32
	rowIdx []int32
	colVal []float64

	// CSR view of the structural (pre-artificial) columns, borrowed from
	// the sparse-only standardization (aligned pattern/value rows). The
	// pivot-row computation α = ρ·A walks these rows over ρ's support, so
	// its cost tracks the BTRAN result's fill, not nnz(A). Artificial
	// columns are singletons handled via artOf.
	rowPat [][]int32
	rowVal [][]float64
	artOf  []int32 // artificial column on row i, -1 if none

	cost   []float64 // current phase costs
	lb, ub []float64
	banned []bool
	basis  []int // basic column per SLOT (slots are fixed; the LU maps slots↔rows)
	inBase []bool
	status []int8
	xB     []float64 // values of the basic variables, by slot
	rhs    []float64 // standardized b (refactorization refresh source)

	obj    float64
	iters  int
	pivots int

	lu luFactor

	d     []float64 // maintained reduced costs (meaningful for nonbasic columns)
	gamma []float64 // devex reference weights
	devex bool

	// Pivot-row accumulator: α_j over the columns touched by the current
	// pivot row, support-tracked.
	acc      []float64
	accMark  []int32
	accGen   int32
	accTouch []int32

	cB     []float64 // slot-space basic costs (btranDense input)
	wx     []float64 // dense scratch for the x_B refresh
	active []int32   // pricing skip list (mirrors tableau.buildActive)
	cursor int       // cyclic partial-pricing position in active

	// Scratch for the initial-basis construction.
	colCnt  []int32
	colLast []int32
	slackOf []int32

	artStart    int
	driftStreak int // drift trips since the last clean pivot

	failStage string  // decline reason for engineFallback
	failResid float64 // measured residual behind the decline

	// Bordered coupling-column state (border.go). When borderOn, the LU
	// factors B₀ — the basis with unit column e_ρ (row borderRow) standing
	// in at slot borderSlot — and every B⁻¹ product is recovered through
	// the Sherman–Morrison border column f0 = B₀⁻¹a_c.
	borderOn    bool
	borderUsed  bool      // border engaged at least once this solve (stats)
	allowBorder bool      // pivot-time engagement permitted (phase 2 only)
	borderSlot  int       // s: slot of the true basis holding the coupling column
	borderRow   int32     // ρ: the stand-in unit row inside the LU
	f0          []float64 // B₀⁻¹·a_c, dense by slot
	f0s         float64   // f0[borderSlot], the SM divisor
	f0mx        float64   // running upper bound on ‖f0‖∞ (stability test)
	zRow        []float64 // z = e_sᵀB₀⁻¹ cached, by row over zTouch
	zTouch      []int32
	zValid      bool
	bW          []float64 // border-corrected FTRAN column when the correction is nonzero
	allSlots    []int32   // 0..m-1: the support list of a dense corrected column
	bMark       []int32   // row marks for duplicate-free support merging
	bGen        int32
	fBasis      []int // factorBordered scratch: basis with the synthetic unit column
}

var revPool = sync.Pool{New: func() interface{} { return &revEngine{} }}

func growInt(s []int, n int) []int {
	if cap(s) < n {
		return make([]int, n)
	}
	return s[:n]
}

func growBool(s []bool, n int) []bool {
	if cap(s) < n {
		return make([]bool, n)
	}
	return s[:n]
}

func growI8(s []int8, n int) []int8 {
	if cap(s) < n {
		return make([]int8, n)
	}
	return s[:n]
}

// bumpAccGen advances the accumulator stamp generation (wrap-safe).
func (rv *revEngine) bumpAccGen() int32 {
	rv.accGen++
	if rv.accGen < 0 {
		for i := range rv.accMark {
			rv.accMark[i] = 0
		}
		rv.accGen = 1
	}
	return rv.accGen
}

// fail records the decline reason and returns revFailed.
func (rv *revEngine) fail(stage string, resid float64) Status {
	rv.failStage, rv.failResid = stage, resid
	return revFailed
}

// nbVal mirrors tableau.nbVal for the engine's column bounds.
func (rv *revEngine) nbVal(j int) float64 {
	if rv.status[j] == atUpper {
		return rv.ub[j]
	}
	return rv.lb[j]
}

// buildActive mirrors tableau.buildActive: the pricing skip list of columns
// that could ever enter (non-banned, nonzero bound range).
func (rv *revEngine) buildActive() {
	rv.active = rv.active[:0]
	rv.cursor = 0
	for j := 0; j < rv.n; j++ {
		if rv.banned[j] || rv.lb[j] == rv.ub[j] {
			continue
		}
		rv.active = append(rv.active, int32(j))
	}
}

// refactor rebuilds the LU factorization from the current basis columns and
// refreshes x_B = B⁻¹(b − N·x_N) from first principles. The basis-to-slot
// assignment never changes — row pivoting is the factorization's private
// business — so unlike the PFI reinversion this cannot permute the basis.
// Under the border the LU factors B₀ instead (border.go); a failed bordered
// factorization tears the border down and retries plain, so false means the
// TRUE basis is singular.
func (rv *revEngine) refactor() bool {
	engRefactors.Add(1)
	if rv.borderOn && !rv.factorBordered() {
		rv.borderOff()
	}
	if !rv.borderOn {
		if !rv.lu.factor(rv.m, rv.colPtr, rv.rowIdx, rv.colVal, rv.basis) {
			return false
		}
	}
	w := rv.wx
	copy(w, rv.rhs)
	for j := 0; j < rv.n; j++ {
		if rv.inBase[j] {
			continue
		}
		v := rv.nbVal(j)
		if v == 0 {
			continue
		}
		for t := rv.colPtr[j]; t < rv.colPtr[j+1]; t++ {
			w[rv.rowIdx[t]] -= rv.colVal[t] * v
		}
	}
	x := rv.bFtranDense(w)
	for slot := 0; slot < rv.m; slot++ {
		v := x[slot]
		lo := rv.lb[rv.basis[slot]]
		if v < lo && v > lo-boundSnapEps {
			v = lo
		}
		rv.xB[slot] = v
	}
	return true
}

// refreshDuals recomputes every nonbasic reduced cost exactly from the
// factorization: y = c_B·B⁻¹ (one dense BTRAN), then d_j = c_j − y·a_j over
// the CSC columns — O(nnz(A)). This is the exact-Dantzig reset point of the
// devex scheme and the source of truth the incremental d is held to.
func (rv *revEngine) refreshDuals() {
	for slot := 0; slot < rv.m; slot++ {
		rv.cB[slot] = rv.cost[rv.basis[slot]]
	}
	y := rv.btranDenseB(rv.cB)
	for j := 0; j < rv.n; j++ {
		if rv.inBase[j] {
			rv.d[j] = 0
			continue
		}
		dj := rv.cost[j]
		for t := rv.colPtr[j]; t < rv.colPtr[j+1]; t++ {
			dj -= y[rv.rowIdx[t]] * rv.colVal[t]
		}
		rv.d[j] = dj
	}
}

// recover is the drift/instability rung of the fallback ladder: rebuild the
// factorization, restore x_B, recompute exact duals, restart the devex
// frame, and re-derive the tracked objective.
func (rv *revEngine) recover() bool {
	if !rv.refactor() {
		return false
	}
	rv.refreshDuals()
	rv.devexReset()
	rv.initObj()
	return true
}

// initObj recomputes the tracked objective for the current point,
// mirroring tableau.setCosts' bookkeeping.
func (rv *revEngine) initObj() {
	rv.obj = 0
	for i, bc := range rv.basis {
		if c := rv.cost[bc]; c != 0 {
			rv.obj += c * rv.xB[i]
		}
	}
	for j := 0; j < rv.n; j++ {
		if rv.inBase[j] {
			continue
		}
		if v := rv.nbVal(j); v != 0 {
			rv.obj += rv.cost[j] * v
		}
	}
}

// priceSection is the cyclic partial-pricing chunk FLOOR. The working
// section size is max(priceSection, na/6): pricing quality degrades — and
// total pivot counts grow — when a section sees too small a fraction of the
// active list, and the sixth-of-the-list rule reproduces the measured
// optimum at both N=4096 (section 4096) and N=16384 (section 16384) on the
// T-series sweep, where the active list runs ≈ 6N columns.
// Problems whose active list fits in one section are scanned in full every
// iteration — identical pivot sequences to exhaustive pricing — so partial
// pricing only changes behavior on large instances, where scanning every
// column per pivot costs more than the slightly-less-informed pivot order
// saves.
const priceSection = 4096

// price selects the entering column from the MAINTAINED reduced costs:
// devex picks the best d²/γ score, Dantzig (DisableDevex) the largest |d|,
// Bland the lowest favorable index. Large actives are scanned with cyclic
// partial pricing: sections of priceSection columns starting at a rotating
// cursor, stopping at the first section that yields any favorable
// candidate (best within that section wins). A full wrap with no candidate
// — and only that — reports optimality (e = -1), so partial pricing
// changes pivot ORDER, never verdicts.
func (rv *revEngine) price(bland bool) (e int, dir, de float64) {
	if bland {
		for _, j32 := range rv.active {
			j := int(j32)
			if rv.inBase[j] {
				continue
			}
			d := rv.d[j]
			if rv.status[j] == atLower && d < -costEps {
				return j, 1, d
			}
			if rv.status[j] == atUpper && d > costEps {
				return j, -1, d
			}
		}
		return -1, 0, 0
	}
	act := rv.active
	na := len(act)
	if rv.cursor >= na || na <= priceSection {
		// Single-section actives always scan ascending from 0, keeping the
		// exhaustive tie-break (lowest column) bit-for-bit.
		rv.cursor = 0
	}
	e, dir = -1, 1
	best := 0.0
	if !rv.devex {
		best = costEps
	}
	sec := na / 6
	if sec < priceSection {
		sec = priceSection
	}
	scanned := 0
	pos := rv.cursor
	for scanned < na {
		end := pos + sec
		if end > na {
			end = na
		}
		for _, j32 := range act[pos:end] {
			j := int(j32)
			if rv.inBase[j] {
				continue
			}
			d := rv.d[j]
			var dj float64
			if rv.status[j] == atLower && d < -costEps {
				dj = 1
			} else if rv.status[j] == atUpper && d > costEps {
				dj = -1
			} else {
				continue
			}
			score := d * d
			if rv.devex {
				score /= rv.gamma[j]
			} else {
				score = math.Abs(d)
			}
			if score > best {
				best, e, dir, de = score, j, dj, d
			}
		}
		scanned += end - pos
		pos = end
		if pos >= na {
			pos = 0
		}
		if e >= 0 {
			rv.cursor = pos
			return e, dir, de
		}
	}
	rv.cursor = pos
	return e, dir, de
}

// betterLeaving mirrors the dense authority's ratio-test tie-break
// (lowest basic column index).
func (rv *revEngine) betterLeaving(i, r int) bool {
	if r < 0 {
		return true
	}
	return rv.basis[i] < rv.basis[r]
}

// pivotRow computes α = ρ·A over the support of ρ (the BTRAN row in
// lu.yRow over rows rho), filling the accumulator acc/accTouch. Structural
// columns come from the CSR rows; each row's artificial, if any, is a
// singleton contributing ρ_i directly. Cost tracks Σ_{i∈supp ρ} nnz(row i).
// Basic columns are skipped: no consumer of the accumulator (the d/devex
// updates, drift check 2 via acc[e], the artificial drive-out scan) ever
// reads a basic column's entry, and on bases rich in structural columns —
// exactly what a crash install produces — the skip also keeps them out of
// the accTouch lists those consumers iterate.
func (rv *revEngine) pivotRow(rho []int32) {
	gen := rv.bumpAccGen()
	touch := rv.accTouch[:0]
	y := rv.lu.yRow
	inBase := rv.inBase
	for _, ri := range rho {
		yv := y[ri]
		if yv == 0 {
			continue
		}
		pat := rv.rowPat[ri]
		vals := rv.rowVal[ri]
		for t, j := range pat {
			if inBase[j] {
				continue
			}
			if rv.accMark[j] != gen {
				rv.accMark[j] = gen
				rv.acc[j] = 0
				touch = append(touch, j)
			}
			rv.acc[j] += yv * vals[t]
		}
		if a := rv.artOf[ri]; a >= 0 && !inBase[a] {
			if rv.accMark[a] != gen {
				rv.accMark[a] = gen
				rv.acc[a] = 0
				touch = append(touch, a)
			}
			rv.acc[a] += yv
		}
	}
	rv.accTouch = touch
}

// runPhase is the LU-generation iteration loop: devex pricing off
// maintained reduced costs, hyper-sparse FTRAN/BTRAN, the bounded-variable
// ratio test over the FTRAN support only, Forrest–Tomlin updates with
// adaptive refactorization, and the two per-pivot drift checks. The stall →
// Bland escalation, ratio tolerances, tie-breaks, and bound-flip hygiene
// mirror tableau.run.
func (rv *revEngine) runPhase(maxIter int) Status {
	rv.buildActive()
	stall := 0
	blandAfter := rv.m + 64
	// pricedExact: the maintained d is exact for the current basis (a
	// refreshDuals ran with no pivot since). Optimal is only declared on
	// exact reduced costs.
	pricedExact := false
	for rv.iters < maxIter {
		rv.iters++
		bland := stall > blandAfter

		e, dir, de := rv.price(bland)
		if e < 0 {
			if pricedExact {
				return Optimal
			}
			rv.refreshDuals()
			pricedExact = true
			continue
		}

		// FTRAN the entering column (border-corrected when engaged); the
		// spike feeds the FT update.
		sup, w := rv.enterFtran(e)

		// Drift check 1: the maintained d_e against the FTRAN-derived exact
		// value d_e = c_e − c_B·(B⁻¹a_e), an O(|support|) dot product.
		dx := rv.cost[e]
		for _, si := range sup {
			if c := rv.cost[rv.basis[si]]; c != 0 {
				dx -= c * w[si]
			}
		}
		if diff := math.Abs(de - dx); diff > driftEps*(1+math.Abs(dx)) {
			engDrifts.Add(1)
			rv.driftStreak++
			if rv.driftStreak > 2 {
				return rv.fail("drift", diff)
			}
			if !rv.recover() {
				return rv.fail("factor-singular", 0)
			}
			pricedExact = true
			continue
		}
		de = dx
		if (dir > 0 && de >= -costEps) || (dir < 0 && de <= costEps) {
			// The exact value is at the tolerance edge and no longer
			// favorable: correct the maintained entry and re-price.
			rv.d[e] = de
			stall++
			continue
		}

		// Ratio test over the FTRAN support (slots outside it have a zero
		// pivot-column entry and can never block).
		tMax := rv.ub[e] - rv.lb[e]
		r, rKind := -1, atLower
		limit := tMax
		for _, si32 := range sup {
			si := int(si32)
			rate := dir * w[si]
			if rate > pivotEps {
				l := (rv.xB[si] - rv.lb[rv.basis[si]]) / rate
				if l < limit-ratioTieEps || (l < limit+ratioTieEps && rv.betterLeaving(si, r)) {
					limit, r, rKind = l, si, atLower
				}
			} else if rate < -pivotEps {
				ubB := rv.ub[rv.basis[si]]
				if math.IsInf(ubB, 1) {
					continue
				}
				l := (ubB - rv.xB[si]) / -rate
				if l < limit-ratioTieEps || (l < limit+ratioTieEps && rv.betterLeaving(si, r)) {
					limit, r, rKind = l, si, atUpper
				}
			}
		}
		if math.IsInf(limit, 1) {
			return Unbounded
		}
		if limit < 0 {
			limit = 0
		}

		if r < 0 {
			// Bound flip: x_N moves across its range, duals and weights
			// unchanged.
			if limit > 0 {
				for _, si := range sup {
					rv.xB[si] -= w[si] * dir * limit
				}
				rv.obj += de * dir * limit
			}
			if rv.status[e] == atLower {
				rv.status[e] = atUpper
			} else {
				rv.status[e] = atLower
			}
			for _, si := range sup {
				lo := rv.lb[rv.basis[si]]
				if rv.xB[si] < lo && rv.xB[si] > lo-boundSnapEps {
					rv.xB[si] = lo
				}
			}
			if de*dir*limit < -progressRelEps*(1+math.Abs(rv.obj)) {
				stall = 0
			} else {
				stall++
			}
			continue
		}

		// Pivot row ρ = e_r·B⁻¹ (hyper-sparse BTRAN, border-corrected),
		// then α = ρ·A.
		rho := rv.rowBtran(r)
		rv.pivotRow(rho)

		// Drift check 2: the pivot element by the FTRAN route (w_r) against
		// the BTRAN route (α_e). Disagreement means the factorization and
		// the incremental state no longer describe the same basis.
		alphaE := w[r]
		if diff := math.Abs(rv.acc[e] - alphaE); diff > driftEps*(1+math.Abs(alphaE)) {
			engDrifts.Add(1)
			rv.driftStreak++
			if rv.driftStreak > 2 {
				return rv.fail("drift", diff)
			}
			if !rv.recover() {
				return rv.fail("factor-singular", 0)
			}
			pricedExact = true
			continue
		}

		// Border engagement decision (phase 2 only): a dense entering
		// column is held out of the LU from this pivot on. The stand-in row
		// ρ comes from the exact pivot row just computed — the new B₀ is
		// nonsingular iff (e_rᵀB'⁻¹)[ρ] = y[ρ]/α ≠ 0 — so the largest |y[ρ]|
		// is both admissible and the best-conditioned choice.
		engage := int32(-1)
		if rv.allowBorder && !rv.borderOn &&
			rv.colPtr[e+1]-rv.colPtr[e] >= int32(borderColCut(rv.m)) {
			bestY := pivotEps
			for _, rr := range rho {
				if a := math.Abs(rv.lu.yRow[rr]); a > bestY {
					bestY, engage = a, rr
				}
			}
		}

		// Commit the step: basic values, objective, incremental reduced
		// costs, devex weights, basis books, and the FT update — in that
		// order (d/γ read basis[r] before it changes).
		improved := de*dir*limit < -progressRelEps*(1+math.Abs(rv.obj))
		if limit > 0 {
			for _, si := range sup {
				rv.xB[si] -= w[si] * dir * limit
			}
			rv.obj += de * dir * limit
		}

		ratio := de / alphaE
		for _, j32 := range rv.accTouch {
			j := int(j32)
			if j == e || rv.inBase[j] {
				continue
			}
			if aj := rv.acc[j]; aj != 0 {
				rv.d[j] -= ratio * aj
			}
		}
		blown := false
		if rv.devex {
			blown = rv.devexUpdate(r, e, alphaE, rv.gamma[e])
		}
		leave := rv.basis[r]
		rv.d[leave] = -ratio
		rv.d[e] = 0

		newVal := dir*limit + rv.nbVal(e)
		rv.inBase[leave] = false
		rv.status[leave] = rKind
		rv.basis[r] = e
		rv.inBase[e] = true
		rv.xB[r] = newVal
		rv.pivots++
		rv.driftStreak = 0
		pricedExact = false

		var okUpd bool
		if engage >= 0 {
			okUpd = rv.engagePivotBorder(r, engage, e)
		} else {
			okUpd = rv.borderUpdate(r)
		}
		if okUpd {
			if rv.lu.needRefactor() {
				if !rv.recover() {
					return rv.fail("factor-singular", 0)
				}
				pricedExact = true
			}
		} else {
			// Declined unstable update (or a failed border step) — the
			// Bartels–Golub recovery rung: rebuild from the (already
			// mutated) basis columns.
			if !rv.recover() {
				return rv.fail("factor-singular", 0)
			}
			pricedExact = true
		}
		if blown {
			rv.devexReset()
		}

		for _, si := range sup {
			lo := rv.lb[rv.basis[si]]
			if rv.xB[si] < lo && rv.xB[si] > lo-boundSnapEps {
				rv.xB[si] = lo
			}
		}
		if improved {
			stall = 0
		} else {
			stall++
		}
	}
	return IterLimit
}

// reset prepares a pooled engine for a solve of the given shape. One extra
// CSC column slot (index n) and one spare nonzero are reserved for the
// border's synthetic unit column (factorBordered).
func (rv *revEngine) reset(m, n, nnzTotal int) {
	// Border teardown first: zTouch indexes the PREVIOUS solve's zRow.
	for _, r := range rv.zTouch {
		rv.zRow[r] = 0
	}
	rv.zTouch = rv.zTouch[:0]
	rv.borderOn, rv.borderUsed, rv.allowBorder, rv.zValid = false, false, false, false
	rv.m, rv.n = m, n
	rv.colPtr = grow32(rv.colPtr, n+2)
	rv.rowIdx = grow32(rv.rowIdx, nnzTotal+1)
	rv.colVal = growF(rv.colVal, nnzTotal+1)
	rv.f0 = growF(rv.f0, m)
	rv.bW = growF(rv.bW, m)
	rv.zRow = growF(rv.zRow, m)
	if len(rv.allSlots) < m {
		rv.allSlots = make([]int32, m)
		for i := range rv.allSlots {
			rv.allSlots[i] = int32(i)
		}
	}
	if cap(rv.bMark) < m {
		rv.bMark = make([]int32, m)
		rv.bGen = 0
	} else {
		rv.bMark = rv.bMark[:m]
	}
	rv.cost = growF(rv.cost, n)
	rv.lb = growF(rv.lb, n)
	rv.ub = growF(rv.ub, n)
	rv.banned = growBool(rv.banned, n)
	rv.basis = growInt(rv.basis, m)
	rv.inBase = growBool(rv.inBase, n)
	rv.status = growI8(rv.status, n)
	rv.xB = growF(rv.xB, m)
	rv.rhs = growF(rv.rhs, m)
	rv.d = growF(rv.d, n)
	rv.gamma = growF(rv.gamma, n)
	rv.cB = growF(rv.cB, m)
	rv.wx = growF(rv.wx, m)
	rv.artOf = grow32(rv.artOf, m)
	for j := 0; j < n; j++ {
		rv.cost[j] = 0
		rv.banned[j] = false
		rv.inBase[j] = false
		rv.status[j] = atLower
		rv.d[j] = 0
		rv.gamma[j] = 1
	}
	for i := 0; i < m; i++ {
		rv.artOf[i] = -1
	}
	// Accumulator marks are generation-stamped; only (re)size and zero on
	// growth so stale stamps cannot alias fresh generations.
	if cap(rv.acc) < n {
		rv.acc = make([]float64, n)
		rv.accMark = make([]int32, n)
		rv.accGen = 0
	} else {
		rv.acc = rv.acc[:n]
		rv.accMark = rv.accMark[:n]
	}
	rv.colPtr[0] = 0
	rv.obj = 0
	rv.iters, rv.pivots = 0, 0
	rv.driftStreak = 0
	rv.failStage, rv.failResid = "", 0
}

// release returns the engine to the pool, dropping borrowed references (the
// CSR rows belong to the standardization's pooled arenas).
func (rv *revEngine) release() {
	rv.rowPat, rv.rowVal = nil, nil
	revPool.Put(rv)
}

// solveRevised attempts a cold solve through the revised engine. ok=false
// means "no verdict — run the tableau path instead"; it is returned for
// structurally unusable inputs, iteration limits, and numerical failures,
// so the tableau path remains the single authority for every hard case.
// Every decline is counted and surfaced as a BasisDriftError through the
// stats.go hook. The debugPhase1 diagnostics hook never affects route
// selection: the engine declines every phase-1 Infeasible verdict, so those
// runs reach the tableau path — and its dense confirmation — where the hook
// fires.
func solveRevised(p *Problem, ws *workspace) (*Solution, bool) {
	if p.DisableSparse {
		return nil, false
	}
	for j := range p.lo {
		if math.IsNaN(p.lo[j]) || math.IsNaN(p.hi[j]) {
			return nil, false
		}
	}
	// Sparse-only standardization: aligned pattern/value rows, no m×n
	// dense arena.
	std, st := standardize(p, ws, false, true)
	if st == Infeasible {
		return &Solution{Status: Infeasible}, true
	}
	if std.pat == nil || std.val == nil {
		return nil, false
	}

	m, nPre := len(std.a), len(std.c)
	maxIter := p.MaxIter
	if maxIter == 0 {
		maxIter = 200*(m+25) + 20*nPre
	}

	rv := revPool.Get().(*revEngine)
	rv.devex = !p.DisableDevex

	// Initial basis, as in solveCold: for each row the smallest slack
	// column that is exactly its identity (a singleton +1 entry), else an
	// artificial. Column nonzero counts come from the standardize-built
	// row patterns; slackOf records the chosen slack per row (-1 → needs
	// an artificial) so the engine can be sized before any buffer fills.
	rv.colCnt = grow32(rv.colCnt, nPre)
	rv.colLast = grow32(rv.colLast, nPre)
	rv.slackOf = grow32(rv.slackOf, m)
	colNnz, colRow, slackOf := rv.colCnt, rv.colLast, rv.slackOf
	for j := 0; j < nPre; j++ {
		colNnz[j] = 0
	}
	nnz := 0
	for i, row := range std.pat {
		slackOf[i] = -1
		for _, j := range row {
			colNnz[j]++
			colRow[j] = int32(i)
		}
		nnz += len(row)
	}
	numArt := 0
	for j := 0; j < nPre; j++ {
		if colNnz[j] != 1 || !std.isSlack(j) {
			continue
		}
		ri := colRow[j]
		if slackOf[ri] >= 0 {
			continue
		}
		v := 0.0
		for t, c := range std.pat[ri] {
			if int(c) == j {
				v = std.val[ri][t]
				break
			}
		}
		if v != 1 {
			continue
		}
		slackOf[ri] = int32(j)
	}
	for i := 0; i < m; i++ {
		if slackOf[i] < 0 {
			numArt++
		}
	}
	n := nPre + numArt
	artStart := nPre

	rv.reset(m, n, nnz+numArt)
	rv.artStart = artStart
	std.unitCol = make([]int, m)
	for i := 0; i < m; i++ {
		rv.basis[i] = int(slackOf[i]) // artificial rows patched below
		if slackOf[i] >= 0 {
			std.unitCol[i] = int(slackOf[i])
		}
	}
	rv.rowPat, rv.rowVal = std.pat, std.val
	copy(rv.lb[:nPre], std.lb)
	copy(rv.ub[:nPre], std.ub)
	copy(rv.xB, std.b)
	copy(rv.rhs, std.b)

	// CSC fill: pass 1 counted (colNnz); artificial columns are appended
	// singletons. Rows are scanned in ascending order, so row indices
	// ascend within every column.
	cur := rv.colPtr
	for j := 0; j < nPre; j++ {
		cur[j+1] = cur[j] + colNnz[j]
	}
	pos := colRow // reuse: colRow's job is done
	copy(pos, cur[:nPre])
	for i, row := range std.pat {
		vals := std.val[i]
		for ti, j := range row {
			t := pos[j]
			rv.rowIdx[t] = int32(i)
			rv.colVal[t] = vals[ti]
			pos[j] = t + 1
		}
	}
	art := nPre
	for i := 0; i < m; i++ {
		if rv.basis[i] >= 0 {
			continue
		}
		t := cur[art]
		rv.rowIdx[t] = int32(i)
		rv.colVal[t] = 1
		cur[art+1] = t + 1
		rv.lb[art] = 0
		rv.ub[art] = math.Inf(1)
		rv.basis[i] = art
		rv.artOf[i] = int32(art)
		std.unitCol[i] = art
		art++
	}
	for _, bc := range rv.basis {
		rv.inBase[bc] = true
	}

	decline := func(stage string, resid float64) (*Solution, bool) {
		engineFallback(stage, resid)
		rv.release()
		return nil, false
	}

	// Crash-basis attempt (crash.go): round the caller's hint to a vertex,
	// install, verify by refactorization. Success makes phase 1 redundant —
	// the verified basic point is primal feasible with every artificial at
	// zero — so the solve drops straight into phase 2.
	crashOK := rv.tryCrashBasis(p, std, nPre)

	if !crashOK {
		// Initial factorization. The starting basis is the identity (slacks
		// and artificials), so failure here is purely defensive.
		engRefactors.Add(1)
		if !rv.lu.factor(m, rv.colPtr, rv.rowIdx, rv.colVal, rv.basis) {
			return decline("factor-singular", 0)
		}
	}

	totalIters := 0

	// Phase 1: minimize the artificial sum.
	if numArt > 0 && !crashOK {
		for j := artStart; j < n; j++ {
			rv.cost[j] = 1
		}
		rv.initObj()
		rv.refreshDuals()
		rv.devexReset()
		st := rv.runPhase(maxIter)
		totalIters += rv.iters
		if st == revFailed {
			return decline(rv.failStage, rv.failResid)
		}
		if st == IterLimit {
			return decline("iterlimit", 0)
		}
		resid := 0.0
		for i, bc := range rv.basis {
			if bc >= artStart && rv.xB[i] > 0 {
				resid += rv.xB[i]
			}
		}
		if st == Unbounded || resid > feasTol(std.scale) {
			// The engine never stands behind an Infeasible verdict: a
			// numerically wrong basis chain can manufacture any residual
			// (see the solveCold confirmation path). Decline and let the
			// tableau authority decide.
			return decline("phase1", resid)
		}
		// Drive zero-valued artificials out of the basis where a
		// structural pivot exists (mirrors solveCold; a leftover means a
		// redundant row and is harmless).
		for i := range rv.basis {
			if rv.basis[i] < artStart {
				continue
			}
			rv.xB[i] = 0
			rho := rv.lu.btranUnit(i)
			rv.pivotRow(rho)
			sortPattern(rv.accTouch)
			for _, j32 := range rv.accTouch {
				j := int(j32)
				if j >= artStart || rv.inBase[j] {
					continue
				}
				if math.Abs(rv.acc[j]) <= artPivotEps {
					continue
				}
				rv.lu.ftran(rv.rowIdx[rv.colPtr[j]:rv.colPtr[j+1]], rv.colVal[rv.colPtr[j]:rv.colPtr[j+1]], true)
				if math.Abs(rv.lu.xSlot[i]) <= pivotEps {
					continue
				}
				leave := rv.basis[i]
				rv.inBase[leave] = false
				rv.status[leave] = atLower
				rv.basis[i] = j
				rv.inBase[j] = true
				rv.xB[i] = rv.nbVal(j)
				if rv.lu.update(i) {
					engUpdates.Add(1)
					if rv.lu.needRefactor() && !rv.refactor() {
						return decline("factor-singular", 0)
					}
				} else if !rv.refactor() {
					return decline("factor-singular", 0)
				}
				break
			}
		}
		for j := artStart; j < n; j++ {
			rv.banned[j] = true
		}
	}

	if crashOK && numArt > 0 {
		// The crash verification proved every artificial slot ≈ 0; a banned
		// artificial still basic at zero is a legal degenerate basic (the
		// redundant-row case of the drive-out loop), so no drive-out runs.
		for j := artStart; j < n; j++ {
			rv.banned[j] = true
		}
	}

	// Phase 2: original costs (artificial columns cost 0). Border
	// engagement is a phase-2-only move: phase 1 bases never hold the
	// coupling column, and the drive-out loop's raw LU calls assume an
	// unbordered factorization.
	rv.allowBorder = !p.DisableBorder
	copy(rv.cost[:nPre], std.c)
	for j := artStart; j < n; j++ {
		rv.cost[j] = 0
	}
	rv.iters = 0
	rv.initObj()
	rv.refreshDuals()
	rv.devexReset()
	st2 := rv.runPhase(maxIter)
	totalIters += rv.iters
	switch st2 {
	case revFailed:
		return decline(rv.failStage, rv.failResid)
	case IterLimit:
		return decline("iterlimit", 0)
	case Unbounded:
		sol := &Solution{Status: Unbounded, Iterations: totalIters, Pivots: rv.pivots}
		rv.release()
		return sol, true
	}

	// Sanity gate before standing behind the answer: basic values must be
	// finite and inside their bounds. Anything else goes to the tableau.
	for i, bc := range rv.basis {
		v := rv.xB[i]
		gate := revSanityEps * std.scale
		if math.IsNaN(v) || v < rv.lb[bc]-gate || v > rv.ub[bc]+gate {
			resid := 0.0
			if !math.IsNaN(v) {
				if d := rv.lb[bc] - v; d > resid {
					resid = d
				}
				if d := v - rv.ub[bc]; d > resid {
					resid = d
				}
			}
			return decline("sanity", resid)
		}
	}

	// Extraction, mirroring extract(): u-values, original variables via
	// the standardize maps, duals off the row-space y = c_B·B⁻¹.
	u := make([]float64, n)
	for j := 0; j < n; j++ {
		if !rv.inBase[j] {
			u[j] = rv.nbVal(j)
		}
	}
	for i, bc := range rv.basis {
		u[bc] = rv.xB[i]
	}
	x := make([]float64, len(p.costs))
	for j, vm := range std.vmaps {
		switch vm.kind {
		case 0:
			x[j] = vm.shift + u[vm.col]
		case 1:
			x[j] = vm.shift - u[vm.col]
		case 2:
			x[j] = u[vm.col] - u[vm.col2]
		case 3:
			x[j] = vm.shift
		}
	}
	for slot := 0; slot < m; slot++ {
		rv.cB[slot] = rv.cost[rv.basis[slot]]
	}
	y := rv.btranDenseB(rv.cB)
	dual := make([]float64, len(p.rows))
	for i := range p.rows {
		r := std.rowOf[i]
		if r < 0 {
			continue
		}
		dual[i] = std.rowSign[i] * y[r]
	}
	sol := &Solution{
		Status:     Optimal,
		X:          x,
		Obj:        p.Objective(x),
		Dual:       dual,
		Iterations: totalIters,
		Pivots:     rv.pivots,
	}
	rv.release()
	return sol, true
}
