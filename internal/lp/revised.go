package lp

// Revised simplex with a product-form inverse — the cold-solve engine of
// the sparse path.
//
// The pattern-aware tableau kernels in sparse.go cut the cost of a pivot
// to the true fill of the tableau, but on the paper's min-max allocation
// LPs the tableau itself densifies: the makespan column T appears in every
// load row, so the first pivot that brings T into the basis sprays one
// row's pattern across all N load rows and the *exact* tableau jumps to
// ~50% fill (profiled in DESIGN.md). No bookkeeping of B⁻¹A can be sparse
// when B⁻¹A is dense. The classical answer is to stop forming B⁻¹A: the
// basis matrix B is a selection of ORIGINAL columns (≤ 3 nonzeros for an
// assignment column, 1 for a slack) and stays sparse even when the tableau
// does not.
//
// This engine keeps the constraint matrix in CSC form and represents B⁻¹
// as a product of eta matrices (PFI):
//
//   - FTRAN (B⁻¹·a_e, the pivot column) applies the eta file forward with
//     skip-on-zero, so its cost tracks the eta file's fill, not m·n;
//   - BTRAN (c_B·B⁻¹, the pricing row) applies it in reverse, one sparse
//     dot product per eta;
//   - pricing recomputes every reduced cost each iteration from y and the
//     original sparse columns — O(nnz(A)), exact, and drift-free;
//   - every reinvEvery pivots the eta file is rebuilt from scratch off the
//     current basis columns, sparsest column first with partial pivoting
//     (Markowitz-flavored static order), which both bounds the file length
//     and refreshes x_B against accumulated roundoff.
//
// The iteration logic — Dantzig pricing with a Bland fallback on stall,
// the bounded-variable ratio test, tie-breaks, tolerances, the two-phase
// artificial scheme, and the artificial pivot-out — mirrors tableau.run /
// solveCold line for line, so the engine follows (up to roundoff) the same
// vertex path as the dense authority and the property tests can hold it to
// status agreement and 1e-9 objective agreement. Any anomaly (singular
// reinversion, iteration limit, diagnostic hooks that want a tableau)
// abandons the attempt and the caller falls back to the tableau path.

import (
	"math"
	"sort"
)

// reinvEvery bounds the iteration-eta file: after this many pivots the
// basis inverse is rebuilt from the original columns. Small enough that
// post-densification etas (one near-dense vector per pivot) stay cheap to
// apply, large enough that reinversion cost amortizes to noise.
const reinvEvery = 64

// revFailed is the internal sentinel for "abandon the revised engine and
// fall back to the tableau path"; it never escapes solveRevised.
const revFailed Status = -1

// revEngine is the working state of one revised-simplex solve.
type revEngine struct {
	m, n int // rows, columns (slacks and artificials included)

	// CSC of the standardized, artificial-extended constraint matrix.
	// Row indices ascend within each column; the matrix is immutable.
	colPtr []int32
	rowIdx []int32
	colVal []float64

	cost   []float64 // current phase costs
	lb, ub []float64
	banned []bool
	basis  []int // basic column per row
	inBase []bool
	status []int8
	xB     []float64 // values of the basic variables, by row
	rhs    []float64 // standardized b (reinversion refresh source)

	obj    float64
	iters  int
	pivots int

	// Product-form eta file: the reinvLen-long prefix comes from the last
	// reinversion, one more eta per pivot since. Eta k transforms z by
	// z ← z − z_r·e_r + z_r·η_k (η stored sparse in the flat arenas).
	etaR     []int32
	etaOff   []int32 // len(etaR)+1 offsets into etaIdx/etaVal
	etaIdx   []int32
	etaVal   []float64
	reinvLen int

	w       []float64 // FTRAN scratch (dense, len m)
	y       []float64 // BTRAN scratch (dense, len m)
	mark    []int32   // touched-row stamps for sparse gathers
	markGen int32
	touch   []int32 // touched-row list scratch

	active []int32 // pricing skip list (mirrors tableau.buildActive)

	artStart int
}

// ftranApply multiplies z (dense, len m) by the eta file: z ← E_K···E_1 z.
// Etas whose pivot row is zero in z are no-ops, so cost tracks fill.
func (rv *revEngine) ftranApply(z []float64) {
	for k := 0; k < len(rv.etaR); k++ {
		r := rv.etaR[k]
		zr := z[r]
		if zr == 0 {
			continue
		}
		z[r] = 0
		for t := rv.etaOff[k]; t < rv.etaOff[k+1]; t++ {
			z[rv.etaIdx[t]] += rv.etaVal[t] * zr
		}
	}
}

// btranApply multiplies the row vector y by the eta file from the right:
// y ← y·E_K···E_1, i.e. one sparse dot product per eta, in reverse order.
func (rv *revEngine) btranApply(y []float64) {
	for k := len(rv.etaR) - 1; k >= 0; k-- {
		s := 0.0
		for t := rv.etaOff[k]; t < rv.etaOff[k+1]; t++ {
			s += rv.etaVal[t] * y[rv.etaIdx[t]]
		}
		y[rv.etaR[k]] = s
	}
}

// ftranColumn loads original column j into the w scratch and applies the
// eta file, leaving w = B⁻¹·a_j (the exact tableau column of j).
func (rv *revEngine) ftranColumn(j int) {
	w := rv.w
	for i := range w {
		w[i] = 0
	}
	for t := rv.colPtr[j]; t < rv.colPtr[j+1]; t++ {
		w[rv.rowIdx[t]] = rv.colVal[t]
	}
	rv.ftranApply(w)
}

// appendEtaDense records the eta of a pivot at row r on column w (dense,
// len m): η_r = 1/w_r, η_i = −w_i/w_r.
func (rv *revEngine) appendEtaDense(r int, w []float64) {
	inv := 1 / w[r]
	rv.etaR = append(rv.etaR, int32(r))
	for i, v := range w {
		if v == 0 {
			continue
		}
		if i == r {
			rv.etaIdx = append(rv.etaIdx, int32(i))
			rv.etaVal = append(rv.etaVal, inv)
		} else {
			rv.etaIdx = append(rv.etaIdx, int32(i))
			rv.etaVal = append(rv.etaVal, -v*inv)
		}
	}
	rv.etaOff = append(rv.etaOff, int32(len(rv.etaIdx)))
}

// bumpGen advances the touched-row stamp generation (wrap-safe).
func (rv *revEngine) bumpGen() int32 {
	rv.markGen++
	if rv.markGen < 0 {
		for i := range rv.mark {
			rv.mark[i] = 0
		}
		rv.markGen = 1
	}
	return rv.markGen
}

// reinvert rebuilds the eta file from the current basis columns and
// refreshes x_B. Columns are processed sparsest first (ties by column
// index, deterministic) with partial pivoting over the not-yet-pivoted
// rows; since every basis column has few original nonzeros this is
// near-fill-free — the rare dense column (the makespan variable) comes
// last and contributes a single long eta. Row assignments are rebuilt from
// the pivot choices; a valid basis always admits one (B is nonsingular),
// so failure to find a pivot means numerical trouble and reports false.
func (rv *revEngine) reinvert() bool {
	rv.etaR = rv.etaR[:0]
	rv.etaOff = rv.etaOff[:1]
	rv.etaIdx = rv.etaIdx[:0]
	rv.etaVal = rv.etaVal[:0]
	rv.reinvLen = 0

	m := rv.m
	order := make([]int, m)
	for i := range order {
		order[i] = i
	}
	nnzOf := func(c int) int32 { return rv.colPtr[c+1] - rv.colPtr[c] }
	sort.Slice(order, func(a, b int) bool {
		ca, cb := rv.basis[order[a]], rv.basis[order[b]]
		if d := nnzOf(ca) - nnzOf(cb); d != 0 {
			return d < 0
		}
		return ca < cb
	})

	taken := make([]bool, m)
	newBasis := make([]int, m)
	w := rv.w
	for i := range w {
		w[i] = 0
	}
	for _, pos := range order {
		c := rv.basis[pos]
		gen := rv.bumpGen()
		touch := rv.touch[:0]
		for t := rv.colPtr[c]; t < rv.colPtr[c+1]; t++ {
			i := rv.rowIdx[t]
			w[i] = rv.colVal[t]
			rv.mark[i] = gen
			touch = append(touch, i)
		}
		for k := 0; k < len(rv.etaR); k++ {
			r := rv.etaR[k]
			zr := w[r]
			if zr == 0 {
				continue
			}
			w[r] = 0
			for t := rv.etaOff[k]; t < rv.etaOff[k+1]; t++ {
				i := rv.etaIdx[t]
				w[i] += rv.etaVal[t] * zr
				if rv.mark[i] != gen {
					rv.mark[i] = gen
					touch = append(touch, i)
				}
			}
		}
		// Partial pivoting over the free rows (touch order is
		// deterministic, so strict improvement keeps this reproducible).
		r, bestAbs := -1, pivotEps
		for _, i := range touch {
			if taken[i] {
				continue
			}
			if a := math.Abs(w[i]); a > bestAbs {
				bestAbs, r = a, int(i)
			}
		}
		if r < 0 {
			for _, i := range touch {
				w[i] = 0
			}
			rv.touch = touch[:0]
			return false
		}
		inv := 1 / w[r]
		rv.etaR = append(rv.etaR, int32(r))
		for _, i := range touch {
			v := w[i]
			w[i] = 0
			if v == 0 {
				continue
			}
			if int(i) == r {
				rv.etaIdx = append(rv.etaIdx, i)
				rv.etaVal = append(rv.etaVal, inv)
			} else {
				rv.etaIdx = append(rv.etaIdx, i)
				rv.etaVal = append(rv.etaVal, -v*inv)
			}
		}
		rv.etaOff = append(rv.etaOff, int32(len(rv.etaIdx)))
		taken[r] = true
		newBasis[r] = c
		rv.touch = touch[:0]
	}
	copy(rv.basis, newBasis)
	rv.reinvLen = len(rv.etaR)

	// Refresh x_B = B⁻¹(b − N·x_N): the incremental updates drift over
	// long runs; the rebuilt inverse restores them from first principles.
	for i := range w {
		w[i] = rv.rhs[i]
	}
	for j := 0; j < rv.n; j++ {
		if rv.inBase[j] {
			continue
		}
		v := rv.nbVal(j)
		if v == 0 {
			continue
		}
		for t := rv.colPtr[j]; t < rv.colPtr[j+1]; t++ {
			w[rv.rowIdx[t]] -= rv.colVal[t] * v
		}
	}
	rv.ftranApply(w)
	for i := 0; i < m; i++ {
		rv.xB[i] = w[i]
		w[i] = 0
		lo := rv.lb[rv.basis[i]]
		if rv.xB[i] < lo && rv.xB[i] > lo-boundSnapEps {
			rv.xB[i] = lo
		}
	}
	return true
}

// nbVal mirrors tableau.nbVal for the engine's column bounds.
func (rv *revEngine) nbVal(j int) float64 {
	if rv.status[j] == atUpper {
		return rv.ub[j]
	}
	return rv.lb[j]
}

// buildActive mirrors tableau.buildActive: the pricing skip list of
// columns that could ever enter (non-banned, nonzero bound range).
func (rv *revEngine) buildActive() {
	rv.active = rv.active[:0]
	for j := 0; j < rv.n; j++ {
		if rv.banned[j] || rv.lb[j] == rv.ub[j] {
			continue
		}
		rv.active = append(rv.active, int32(j))
	}
}

// computeY fills y = c_B·B⁻¹ for the given cost vector.
func (rv *revEngine) computeY(cost []float64) {
	y := rv.y
	for i := range y {
		y[i] = cost[rv.basis[i]]
	}
	rv.btranApply(y)
}

// redCost prices column j against the current y: d_j = c_j − y·a_j.
func (rv *revEngine) redCost(j int) float64 {
	d := rv.cost[j]
	for t := rv.colPtr[j]; t < rv.colPtr[j+1]; t++ {
		d -= rv.y[rv.rowIdx[t]] * rv.colVal[t]
	}
	return d
}

// price selects the entering column exactly as tableau.priceEntering's
// dense branch does — Bland takes the lowest favorable index, Dantzig the
// best score — except the reduced costs come fresh from y each call.
func (rv *revEngine) price(bland bool) (e int, dir, de float64) {
	if bland {
		for _, j32 := range rv.active {
			j := int(j32)
			if rv.inBase[j] {
				continue
			}
			d := rv.redCost(j)
			if rv.status[j] == atLower && d < -costEps {
				return j, 1, d
			}
			if rv.status[j] == atUpper && d > costEps {
				return j, -1, d
			}
		}
		return -1, 0, 0
	}
	best := costEps
	e, dir = -1, 1
	for _, j32 := range rv.active {
		j := int(j32)
		if rv.inBase[j] {
			continue
		}
		d := rv.redCost(j)
		if rv.status[j] == atLower && -d > best {
			best, e, dir, de = -d, j, 1, d
		} else if rv.status[j] == atUpper && d > best {
			best, e, dir, de = d, j, -1, d
		}
	}
	return e, dir, de
}

// betterLeaving mirrors the dense authority's ratio-test tie-break
// (lowest basic column index).
func (rv *revEngine) betterLeaving(i, r int) bool {
	if r < 0 {
		return true
	}
	return rv.basis[i] < rv.basis[r]
}

// initObj recomputes the tracked objective for a fresh cost vector,
// mirroring tableau.setCosts' bookkeeping.
func (rv *revEngine) initObj() {
	rv.obj = 0
	for i, bc := range rv.basis {
		if c := rv.cost[bc]; c != 0 {
			rv.obj += c * rv.xB[i]
		}
	}
	for j := 0; j < rv.n; j++ {
		if rv.inBase[j] {
			continue
		}
		if v := rv.nbVal(j); v != 0 {
			rv.obj += rv.cost[j] * v
		}
	}
}

// runPhase is tableau.run transcribed to the revised representation: same
// stall/Bland escalation, same ratio test and tolerances, same bound-flip
// and clamp hygiene. Returns revFailed if a reinversion goes singular.
func (rv *revEngine) runPhase(maxIter int) Status {
	m := rv.m
	rv.buildActive()
	stall := 0
	blandAfter := m + 64
	for rv.iters < maxIter {
		rv.iters++
		bland := stall > blandAfter

		rv.computeY(rv.cost)
		e, dir, de := rv.price(bland)
		if e < 0 {
			return Optimal
		}

		rv.ftranColumn(e)
		w := rv.w
		tMax := rv.ub[e] - rv.lb[e]
		r, rKind := -1, atLower
		limit := tMax
		for i := 0; i < m; i++ {
			rate := dir * w[i]
			if rate > pivotEps {
				l := (rv.xB[i] - rv.lb[rv.basis[i]]) / rate
				if l < limit-ratioTieEps || (l < limit+ratioTieEps && rv.betterLeaving(i, r)) {
					limit, r, rKind = l, i, atLower
				}
			} else if rate < -pivotEps {
				ubB := rv.ub[rv.basis[i]]
				if math.IsInf(ubB, 1) {
					continue
				}
				l := (ubB - rv.xB[i]) / -rate
				if l < limit-ratioTieEps || (l < limit+ratioTieEps && rv.betterLeaving(i, r)) {
					limit, r, rKind = l, i, atUpper
				}
			}
		}
		if math.IsInf(limit, 1) {
			return Unbounded
		}
		if limit < 0 {
			limit = 0
		}

		improved := de*dir*limit < -progressRelEps*(1+math.Abs(rv.obj))
		if limit > 0 {
			for i := 0; i < m; i++ {
				rv.xB[i] -= w[i] * dir * limit
			}
			rv.obj += de * dir * limit
		}

		if r < 0 {
			if rv.status[e] == atLower {
				rv.status[e] = atUpper
			} else {
				rv.status[e] = atLower
			}
		} else {
			leave := rv.basis[r]
			rv.inBase[leave] = false
			rv.status[leave] = rKind
			newVal := dir*limit + rv.nbVal(e)
			rv.basis[r] = e
			rv.inBase[e] = true
			rv.xB[r] = newVal
			rv.appendEtaDense(r, w)
			rv.pivots++
			if len(rv.etaR)-rv.reinvLen >= reinvEvery {
				if !rv.reinvert() {
					return revFailed
				}
			}
		}
		for i := 0; i < m; i++ {
			lo := rv.lb[rv.basis[i]]
			if rv.xB[i] < lo && rv.xB[i] > lo-boundSnapEps {
				rv.xB[i] = lo
			}
		}
		if improved {
			stall = 0
		} else {
			stall++
		}
	}
	return IterLimit
}

// solveRevised attempts a cold solve through the revised engine. ok=false
// means "no verdict — run the tableau path instead"; it is returned for
// structurally unusable inputs (NaN bounds handled by solveCold's
// validation), iteration limits, and numerical failures, so the tableau
// path remains the single authority for every hard case. The debugPhase1
// diagnostics hook never affects route selection: the engine declines
// every phase-1 Infeasible verdict, so those runs reach the tableau path
// — and its dense confirmation — where the hook fires.
func solveRevised(p *Problem) (*Solution, bool) {
	if p.DisableSparse {
		return nil, false
	}
	for j := range p.lo {
		if math.IsNaN(p.lo[j]) || math.IsNaN(p.hi[j]) {
			return nil, false
		}
	}
	// Sparse-only standardization: aligned pattern/value rows, no m×n
	// dense arena (the workspace pool is left to the tableau fallback).
	std, st := standardize(p, nil, false, true)
	if st == Infeasible {
		return &Solution{Status: Infeasible}, true
	}
	if std.pat == nil || std.val == nil {
		return nil, false
	}

	m, nPre := len(std.a), len(std.c)
	maxIter := p.MaxIter
	if maxIter == 0 {
		maxIter = 200*(m+25) + 20*nPre
	}

	// Initial basis, as in solveCold: for each row the smallest slack
	// column that is exactly its identity (a singleton +1 entry), else an
	// artificial. Column nonzero counts come from the standardize-built
	// row patterns.
	colNnz := make([]int32, nPre)
	colRow := make([]int32, nPre) // last row touching the column
	nnz := 0
	for i, row := range std.pat {
		for _, j := range row {
			colNnz[j]++
			colRow[j] = int32(i)
		}
		nnz += len(row)
	}
	basis := make([]int, m)
	for i := range basis {
		basis[i] = -1
	}
	std.unitCol = make([]int, m)
	for j := 0; j < nPre; j++ {
		if colNnz[j] != 1 || !std.isSlack(j) {
			continue
		}
		ri := int(colRow[j])
		if basis[ri] >= 0 {
			continue
		}
		v := 0.0
		for t, c := range std.pat[ri] {
			if int(c) == j {
				v = std.val[ri][t]
				break
			}
		}
		if v != 1 {
			continue
		}
		basis[ri] = j
		std.unitCol[ri] = j
	}
	numArt := 0
	for i := range basis {
		if basis[i] < 0 {
			numArt++
		}
	}
	n := nPre + numArt
	artStart := nPre

	rv := &revEngine{
		m: m, n: n,
		colPtr:   make([]int32, n+1),
		rowIdx:   make([]int32, nnz+numArt),
		colVal:   make([]float64, nnz+numArt),
		cost:     make([]float64, n),
		lb:       append(append(make([]float64, 0, n), std.lb...), make([]float64, numArt)...),
		ub:       append(append(make([]float64, 0, n), std.ub...), make([]float64, numArt)...),
		banned:   make([]bool, n),
		basis:    basis,
		inBase:   make([]bool, n),
		status:   make([]int8, n),
		xB:       append([]float64(nil), std.b...),
		rhs:      append([]float64(nil), std.b...),
		etaOff:   make([]int32, 1, reinvEvery+m+1),
		w:        make([]float64, m),
		y:        make([]float64, m),
		mark:     make([]int32, m),
		touch:    make([]int32, 0, m),
		artStart: artStart,
	}

	// CSC fill: pass 1 counted (colNnz); artificial columns are appended
	// singletons. Rows are scanned in ascending order, so row indices
	// ascend within every column.
	cur := rv.colPtr
	for j := 0; j < nPre; j++ {
		cur[j+1] = cur[j] + colNnz[j]
	}
	pos := append([]int32(nil), cur[:nPre]...)
	for i, row := range std.pat {
		vals := std.val[i]
		for ti, j := range row {
			t := pos[j]
			rv.rowIdx[t] = int32(i)
			rv.colVal[t] = vals[ti]
			pos[j] = t + 1
		}
	}
	art := nPre
	for i := range basis {
		if basis[i] >= 0 {
			continue
		}
		t := cur[art]
		rv.rowIdx[t] = int32(i)
		rv.colVal[t] = 1
		cur[art+1] = t + 1
		rv.lb[art] = 0
		rv.ub[art] = math.Inf(1)
		basis[i] = art
		std.unitCol[i] = art
		art++
	}
	for _, bc := range basis {
		rv.inBase[bc] = true
	}

	totalIters := 0

	// Phase 1: minimize the artificial sum.
	if numArt > 0 {
		for j := artStart; j < n; j++ {
			rv.cost[j] = 1
		}
		rv.initObj()
		st := rv.runPhase(maxIter)
		totalIters += rv.iters
		if st == revFailed || st == IterLimit {
			return nil, false
		}
		resid := 0.0
		for i, bc := range rv.basis {
			if bc >= artStart && rv.xB[i] > 0 {
				resid += rv.xB[i]
			}
		}
		if st == Unbounded || resid > feasTol(std.scale) {
			// The engine never stands behind an Infeasible verdict: a
			// numerically exploded eta file can manufacture any residual
			// (see the solveCold confirmation path). Decline and let the
			// tableau authority decide.
			return nil, false
		}
		// Drive zero-valued artificials out of the basis where a
		// structural pivot exists (mirrors solveCold; a leftover means a
		// redundant row and is harmless).
		for i := range rv.basis {
			if rv.basis[i] < artStart {
				continue
			}
			rv.xB[i] = 0
			y := rv.y
			for k := range y {
				y[k] = 0
			}
			y[i] = 1
			rv.btranApply(y)
			for j := 0; j < artStart; j++ {
				if rv.inBase[j] {
					continue
				}
				alpha := 0.0
				for t := rv.colPtr[j]; t < rv.colPtr[j+1]; t++ {
					alpha += y[rv.rowIdx[t]] * rv.colVal[t]
				}
				if math.Abs(alpha) > artPivotEps {
					rv.ftranColumn(j)
					if math.Abs(rv.w[i]) <= pivotEps {
						continue
					}
					leave := rv.basis[i]
					rv.inBase[leave] = false
					rv.status[leave] = atLower
					rv.basis[i] = j
					rv.inBase[j] = true
					rv.xB[i] = rv.nbVal(j)
					rv.appendEtaDense(i, rv.w)
					if len(rv.etaR)-rv.reinvLen >= reinvEvery && !rv.reinvert() {
						return nil, false
					}
					break
				}
			}
		}
		for j := artStart; j < n; j++ {
			rv.banned[j] = true
		}
	}

	// Phase 2: original costs (artificial columns cost 0).
	copy(rv.cost, std.c)
	for j := artStart; j < n; j++ {
		rv.cost[j] = 0
	}
	rv.iters = 0
	rv.initObj()
	st2 := rv.runPhase(maxIter)
	totalIters += rv.iters
	switch st2 {
	case revFailed, IterLimit:
		return nil, false
	case Unbounded:
		return &Solution{Status: Unbounded, Iterations: totalIters, Pivots: rv.pivots}, true
	}

	// Sanity gate before standing behind the answer: basic values must be
	// finite and inside their bounds. Anything else goes to the tableau.
	for i, bc := range rv.basis {
		v := rv.xB[i]
		gate := revSanityEps * std.scale
		if math.IsNaN(v) || v < rv.lb[bc]-gate || v > rv.ub[bc]+gate {
			return nil, false
		}
	}

	// Extraction, mirroring extract(): u-values, original variables via
	// the standardize maps, duals off the unit columns. d_unit = −y_r for
	// a zero-cost +1 identity column, so dual = rowSign·y_r.
	u := make([]float64, n)
	for j := 0; j < n; j++ {
		if !rv.inBase[j] {
			u[j] = rv.nbVal(j)
		}
	}
	for i, bc := range rv.basis {
		u[bc] = rv.xB[i]
	}
	x := make([]float64, len(p.costs))
	for j, vm := range std.vmaps {
		switch vm.kind {
		case 0:
			x[j] = vm.shift + u[vm.col]
		case 1:
			x[j] = vm.shift - u[vm.col]
		case 2:
			x[j] = u[vm.col] - u[vm.col2]
		case 3:
			x[j] = vm.shift
		}
	}
	rv.computeY(rv.cost)
	dual := make([]float64, len(p.rows))
	for i := range p.rows {
		r := std.rowOf[i]
		if r < 0 {
			continue
		}
		dual[i] = std.rowSign[i] * rv.y[r]
	}
	return &Solution{
		Status:     Optimal,
		X:          x,
		Obj:        p.Objective(x),
		Dual:       dual,
		Iterations: totalIters,
		Pivots:     rv.pivots,
	}, true
}
