package lp

import (
	"math"
	"testing"

	"repro/internal/stats"
)

// sparseInstance generates LPs big enough that the sparse kernels really
// pivot (the tiny presolve-oriented instances barely exercise them), with
// a sparsity dial covering both the pattern-friendly regime and the dense
// regime that trips the fill-in fallback.
func sparseInstance(rng *stats.RNG) *Problem {
	p := NewProblem()
	n := 6 + rng.Intn(20)
	q := func(lo, hi float64) float64 {
		return math.Round(rng.Range(lo, hi)*8) / 8
	}
	for j := 0; j < n; j++ {
		lo := q(0, 3)
		p.AddVariable(lo, lo+q(1, 8), q(-4, 4), "")
	}
	m := 3 + rng.Intn(14)
	density := 0.15 + 0.7*rng.Float64()
	for i := 0; i < m; i++ {
		var terms []Term
		for j := 0; j < n; j++ {
			if rng.Float64() < density {
				terms = append(terms, Term{Var: j, Coef: q(-3, 3)})
			}
		}
		if len(terms) == 0 {
			terms = []Term{{Var: rng.Intn(n), Coef: 1}}
		}
		p.AddConstraint(terms, Sense(rng.Intn(3)), q(-6, 24), "")
	}
	return p
}

// TestSparseMatchesDenseProperty isolates the sparse solve path (presolve
// off on both sides): cold sparse solves route through the revised engine
// and its sparse LU basis, which must reproduce the dense authority's
// status and objective and pass KKT, over 1000 fuzzed instances spanning
// sparse to dense fill. (revised_test.go adds the larger-instance battery
// that exercises the Forrest–Tomlin update/reinversion cycle.)
func TestSparseMatchesDenseProperty(t *testing.T) {
	instances := 1000
	if testing.Short() {
		instances = 150
	}
	for seed := 0; seed < instances; seed++ {
		rng := stats.NewRNG(uint64(seed) + 7001)
		p := sparseInstance(rng)
		p.DisablePresolve = true

		dense := p.Clone()
		dense.DisableSparse = true

		got, err := p.Solve()
		if err != nil {
			t.Fatalf("seed %d: sparse solve error: %v", seed, err)
		}
		want, err := dense.Solve()
		if err != nil {
			t.Fatalf("seed %d: dense solve error: %v", seed, err)
		}
		if got.Status != want.Status {
			t.Fatalf("seed %d: status %v (sparse) vs %v (dense)", seed, got.Status, want.Status)
		}
		if got.Status != Optimal {
			continue
		}
		if math.Abs(got.Obj-want.Obj) > 1e-9*(1+math.Abs(want.Obj)) {
			t.Fatalf("seed %d: obj %.12g (sparse) vs %.12g (dense)", seed, got.Obj, want.Obj)
		}
		if err := VerifyKKT(p, got, 1e-6); err != nil {
			t.Fatalf("seed %d: sparse certificate: %v", seed, err)
		}
	}
}

// TestWarmSparseComposition drives a branch-and-bound-like warm sequence
// (tighten bounds, add rows, reoptimize from the parent basis) with the
// sparse kernels on, checking every step against a cold solve pinned to
// the dense authority with presolve off — the full composition the warm
// clients (milp, nlp) rely on.
func TestWarmSparseComposition(t *testing.T) {
	instances := 200
	if testing.Short() {
		instances = 40
	}
	for seed := 0; seed < instances; seed++ {
		rng := stats.NewRNG(uint64(seed) + 40409)
		p := sparseInstance(rng)
		inc := NewIncremental(p)
		warm, err := inc.Solve()
		if err != nil {
			t.Fatalf("seed %d: root warm error: %v", seed, err)
		}
		var parent *Basis
		if warm.Status == Optimal {
			parent = warm.Basis
		}
		q := func(lo, hi float64) float64 {
			return math.Round(rng.Range(lo, hi)*8) / 8
		}
		for s := 0; s < 3; s++ {
			if rng.Intn(3) == 0 {
				var terms []Term
				for j := 0; j < p.NumVariables(); j++ {
					if rng.Intn(3) == 0 {
						terms = append(terms, Term{Var: j, Coef: q(-2, 2)})
					}
				}
				if len(terms) == 0 {
					terms = []Term{{Var: 0, Coef: 1}}
				}
				sense := LE
				if rng.Intn(3) == 0 {
					sense = GE
				}
				inc.AddRow(terms, sense, q(0, 20), "")
			} else {
				v := rng.Intn(p.NumVariables())
				lo, hi := p.Bounds(v)
				nlo := lo + rng.Float64()
				nhi := hi - rng.Float64()
				if nhi < nlo {
					nhi = nlo
				}
				inc.TightenBound(v, nlo, nhi)
			}
			w, err := inc.SolveFrom(parent)
			if err != nil {
				t.Fatalf("seed %d step %d: warm error: %v", seed, s, err)
			}
			authority := p.Clone()
			authority.DisableSparse = true
			authority.DisablePresolve = true
			c, err := authority.Solve()
			if err != nil {
				t.Fatalf("seed %d step %d: dense cold error: %v", seed, s, err)
			}
			if w.Status != c.Status {
				t.Fatalf("seed %d step %d: status warm-sparse=%v dense-cold=%v", seed, s, w.Status, c.Status)
			}
			if w.Status == Optimal {
				if d := math.Abs(w.Obj - c.Obj); d > 1e-9*(1+math.Abs(c.Obj)) {
					t.Fatalf("seed %d step %d: obj warm-sparse=%.12g dense-cold=%.12g", seed, s, w.Obj, c.Obj)
				}
				if err := VerifyKKT(p, w, 1e-6); err != nil {
					t.Fatalf("seed %d step %d: warm-sparse certificate: %v", seed, s, err)
				}
				parent = w.Basis
			}
		}
	}
}

// TestTableauSparseCold pins the pattern-aware tableau kernels on cold
// solves. Problem.Solve routes cold sparse solves through the revised
// engine, so the tableau's pattern kernels (the warm layer's engine) are
// driven here through solveCold directly and held to the dense authority.
func TestTableauSparseCold(t *testing.T) {
	instances := 400
	if testing.Short() {
		instances = 80
	}
	for seed := 0; seed < instances; seed++ {
		rng := stats.NewRNG(uint64(seed) + 90001)
		p := sparseInstance(rng)
		got, _, _, err := solveCold(p, nil, nil)
		if err != nil {
			t.Fatalf("seed %d: tableau-sparse solve error: %v", seed, err)
		}
		dense := p.Clone()
		dense.DisableSparse = true
		want, _, _, err := solveCold(dense, nil, nil)
		if err != nil {
			t.Fatalf("seed %d: dense solve error: %v", seed, err)
		}
		if got.Status != want.Status {
			t.Fatalf("seed %d: status %v (tableau-sparse) vs %v (dense)", seed, got.Status, want.Status)
		}
		if got.Status != Optimal {
			continue
		}
		if math.Abs(got.Obj-want.Obj) > 1e-9*(1+math.Abs(want.Obj)) {
			t.Fatalf("seed %d: obj %.12g (tableau-sparse) vs %.12g (dense)", seed, got.Obj, want.Obj)
		}
		if err := VerifyKKT(p, got, 1e-6); err != nil {
			t.Fatalf("seed %d: tableau-sparse certificate: %v", seed, err)
		}
	}
}

// TestDenseFallbackGuard pins the tableau fill-in guard: a fully dense
// instance must (a) solve correctly and (b) actually drop to the dense
// kernels mid-solve rather than pay pattern maintenance on 100% fill. The
// guard lives in the tableau kernels, so this drives solveCold directly.
func TestDenseFallbackGuard(t *testing.T) {
	rng := stats.NewRNG(99)
	p := NewProblem()
	n := 12
	for j := 0; j < n; j++ {
		p.AddVariable(0, 10, rng.Range(-3, 3), "")
	}
	for i := 0; i < n; i++ {
		terms := make([]Term, n)
		for j := 0; j < n; j++ {
			terms[j] = Term{Var: j, Coef: rng.Range(0.5, 2)}
		}
		p.AddConstraint(terms, LE, rng.Range(20, 60), "")
	}
	dropped := false
	debugSparseDrop = func(pivots, nnz, m, n int) { dropped = true }
	defer func() { debugSparseDrop = nil }()
	sol, _, _, err := solveCold(p, nil, nil)
	if err != nil || sol.Status != Optimal {
		t.Fatalf("solve: %v %v", sol.Status, err)
	}
	if !dropped {
		t.Fatalf("fully dense instance never tripped the density guard")
	}
	dense := p.Clone()
	dense.DisableSparse = true
	ref, _ := dense.Solve()
	if math.Abs(sol.Obj-ref.Obj) > 1e-9*(1+math.Abs(ref.Obj)) {
		t.Fatalf("obj %.12g vs dense %.12g", sol.Obj, ref.Obj)
	}
	if err := VerifyKKT(p, sol, 1e-8); err != nil {
		t.Fatalf("certificate: %v", err)
	}
}
