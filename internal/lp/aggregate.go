package lp

// Aggregation presolve: a second reduction layer behind presolve that
// merges exact duplicates before standardization ever sees them.
//
//   - Duplicate COLUMNS — identical cost, identical bounds, identical
//     coefficient in every row, all compared bit-for-bit — collapse into
//     one aggregate variable s = Σ x_k with bounds [Σlo, Σhi]. The row
//     coefficient is the shared value ONCE (c·x₁ + c·x₂ = c·s), not the
//     sum. Postsolve disaggregates greedily: each member takes as much of
//     s as its box allows while leaving room for the remaining members'
//     lower bounds, so members sit at bounds whenever the aggregate does
//     and the KKT conditions transfer unchanged (members of a group share
//     the aggregate's reduced cost).
//   - Duplicate ROWS — identical sense and identical canonical term
//     vector after per-row accumulation — collapse to the binding one:
//     LE keeps the minimum RHS, GE the maximum, EQ keeps one copy and
//     declares Infeasible when two copies disagree beyond
//     aggEps·(1+|rhs|). Dropped rows carry dual zero in postsolve; the
//     kept row carries the multiplier, which prices identically through
//     either copy.
//
// Row detection runs on the column-REWRITTEN rows, so merges cascade one
// step: columns that become identical only never, but rows that become
// identical after column aggregation are caught.
//
// An FNV-1a hash pre-screen buckets candidates before any exact
// comparison; when no bucket holds two entries the pass returns nil and
// the solve proceeds untouched. On coefficient patterns with generic
// (random) values — the T-series tables included — that is the common
// case, and the pass costs one O(nnz) sweep. Problem.DisableAggregation
// opts out entirely.

import (
	"math"
	"sort"
)

// aggregated carries the merge mapping from an original problem to its
// aggregated form.
type aggregated struct {
	orig    *Problem
	reduced *Problem
	colMap  []int     // original var -> reduced var (group members share one)
	groups  [][]int32 // reduced var -> original members, ascending (nil: 1-1)
	rowMap  []int     // original row -> reduced row, -1 for dropped duplicates
	carrier []int32   // reduced row -> the original duplicate that carries its dual
}

// fnv1a folds v into an FNV-1a running hash.
func fnv1a(h, v uint64) uint64 {
	for s := 0; s < 64; s += 8 {
		h ^= (v >> s) & 0xff
		h *= 1099511628211
	}
	return h
}

// mix64 is a murmur3-style finalizer. The commutative row pre-screen sums
// per-term hashes; raw FNV of a small integer is affine in it, so sums over
// consecutive index blocks collide systematically ({29..32} and {61..64}
// fold to the same total). The avalanche destroys that structure.
func mix64(h uint64) uint64 {
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	h *= 0xc4ceb9fe1a85ec53
	h ^= h >> 33
	return h
}

// aggregateProblem merges duplicate columns and rows of p, returning
// (nil, Optimal) when nothing merges (caller solves p directly),
// (nil, Infeasible) when two equality copies disagree, or the mapping.
func aggregateProblem(p *Problem) (*aggregated, Status) {
	n, m := len(p.costs), len(p.rows)
	if n == 0 {
		return nil, Optimal
	}

	// Pre-screen signatures, straight off the raw rows with no per-row
	// storage. Column hashes fold (row, coef) walking rows in order —
	// within one row every term touches a different column, so term order
	// inside a row cannot change any column's fold order. Row hashes
	// combine their terms COMMUTATIVELY (summed per-term hashes), so an
	// unsorted row hashes identically to its sorted duplicate. A row
	// carrying the same variable twice hashes differently from its
	// combined form and can miss a merge — a soundness-preserving skip
	// (exact comparison later always works on canonical rows); matching
	// presolve's treatment of the same corner.
	colH := make([]uint64, n)
	for j := 0; j < n; j++ {
		h := uint64(14695981039346656037)
		h = fnv1a(h, math.Float64bits(p.costs[j]))
		h = fnv1a(h, math.Float64bits(p.lo[j]))
		h = fnv1a(h, math.Float64bits(p.hi[j]))
		colH[j] = h
	}
	for i := range p.rows {
		for _, t := range p.rows[i].Terms {
			if t.Coef != 0 {
				colH[t.Var] = fnv1a(fnv1a(colH[t.Var], uint64(i)), math.Float64bits(t.Coef))
			}
		}
	}

	// Any repeated column hash among eligible columns, or any repeated row
	// hash? If neither, nothing can merge — bail with O(nnz) work done and
	// nothing built. (Column and row hashes share one set; a cross-kind
	// collision costs a wasted exact pass, never a wrong answer.)
	colEligible := func(j int) bool {
		return !math.IsInf(p.lo[j], 0) && !math.IsNaN(p.lo[j]) && !math.IsNaN(p.hi[j])
	}
	cand := false
	seen := make(map[uint64]struct{}, n+m)
	for j := 0; j < n; j++ {
		if !colEligible(j) {
			continue
		}
		if _, ok := seen[colH[j]]; ok {
			cand = true
			break
		}
		seen[colH[j]] = struct{}{}
	}
	for i := 0; i < m && !cand; i++ {
		h := fnv1a(uint64(14695981039346656037), uint64(p.rows[i].Sense))
		for _, t := range p.rows[i].Terms {
			if t.Coef != 0 {
				h += mix64(fnv1a(fnv1a(uint64(2166136261), uint64(t.Var)), math.Float64bits(t.Coef)))
			}
		}
		if _, ok := seen[h]; ok {
			cand = true
			break
		}
		seen[h] = struct{}{}
	}
	if !cand {
		return nil, Optimal
	}

	// Candidates exist: canonicalize rows (duplicate terms accumulated,
	// sorted by variable), recompute exact column hashes against them, and
	// build the pattern index for exact comparison.
	rows := make([][]Term, m)
	for i := range p.rows {
		r := &p.rows[i]
		dup := false
		for k := 1; k < len(r.Terms); k++ {
			if r.Terms[k].Var <= r.Terms[k-1].Var {
				dup = true
				break
			}
		}
		if !dup {
			rows[i] = r.Terms
			continue
		}
		cs := make(map[int]float64, len(r.Terms))
		for _, t := range r.Terms {
			cs[t.Var] += t.Coef
		}
		terms := make([]Term, 0, len(cs))
		for v, c := range cs {
			if c != 0 {
				terms = append(terms, Term{Var: v, Coef: c})
			}
		}
		sort.Slice(terms, func(a, b int) bool { return terms[a].Var < terms[b].Var })
		rows[i] = terms
	}
	for j := 0; j < n; j++ {
		h := uint64(14695981039346656037)
		h = fnv1a(h, math.Float64bits(p.costs[j]))
		h = fnv1a(h, math.Float64bits(p.lo[j]))
		h = fnv1a(h, math.Float64bits(p.hi[j]))
		colH[j] = h
	}
	patRow := make([][]int32, n)
	patCoef := make([][]float64, n)
	for i := 0; i < m; i++ {
		for _, t := range rows[i] {
			colH[t.Var] = fnv1a(fnv1a(colH[t.Var], uint64(i)), math.Float64bits(t.Coef))
			patRow[t.Var] = append(patRow[t.Var], int32(i))
			patCoef[t.Var] = append(patCoef[t.Var], t.Coef)
		}
	}

	// Bucket by hash, verify exact equality inside each bucket. A merge
	// group needs finite lower bounds (the greedy disaggregation reserves
	// Σ later lo) and non-NaN boxes.
	sameCol := func(a, b int) bool {
		if math.Float64bits(p.costs[a]) != math.Float64bits(p.costs[b]) ||
			math.Float64bits(p.lo[a]) != math.Float64bits(p.lo[b]) ||
			math.Float64bits(p.hi[a]) != math.Float64bits(p.hi[b]) ||
			len(patRow[a]) != len(patRow[b]) {
			return false
		}
		for t := range patRow[a] {
			if patRow[a][t] != patRow[b][t] ||
				math.Float64bits(patCoef[a][t]) != math.Float64bits(patCoef[b][t]) {
				return false
			}
		}
		return true
	}
	groupOf := make([]int, n) // j -> leader (smallest member), self when alone
	for j := range groupOf {
		groupOf[j] = j
	}
	buckets := make(map[uint64][]int32, n)
	anyColMerge := false
	for j := 0; j < n; j++ {
		if math.IsInf(p.lo[j], 0) || math.IsNaN(p.lo[j]) || math.IsNaN(p.hi[j]) {
			continue
		}
		found := false
		for _, l := range buckets[colH[j]] {
			if sameCol(int(l), j) {
				groupOf[j] = int(l)
				anyColMerge = true
				found = true
				break
			}
		}
		if !found {
			buckets[colH[j]] = append(buckets[colH[j]], int32(j))
		}
	}

	// Row duplicate pre-screen on the rewritten rows (group members other
	// than the leader vanish; the leader's coefficient stands for the sum).
	rowH := make([]uint64, m)
	rowBuckets := make(map[uint64][]int32, m)
	anyRowDup := false
	for i := 0; i < m; i++ {
		h := fnv1a(uint64(14695981039346656037), uint64(p.rows[i].Sense))
		for _, t := range rows[i] {
			l := groupOf[t.Var]
			if l != t.Var {
				continue
			}
			h = fnv1a(fnv1a(h, uint64(l)), math.Float64bits(t.Coef))
		}
		rowH[i] = h
		if prev := rowBuckets[h]; len(prev) > 0 {
			anyRowDup = true
		}
		rowBuckets[h] = append(rowBuckets[h], int32(i))
	}
	if !anyColMerge && !anyRowDup {
		return nil, Optimal
	}

	ag := &aggregated{orig: p}
	ag.colMap = make([]int, n)

	red := NewProblem()
	red.MaxIter = p.MaxIter
	red.DisableSparse = p.DisableSparse
	red.DisableDevex = p.DisableDevex
	red.DisableCrash = p.DisableCrash
	red.DisableBorder = p.DisableBorder
	red.DisablePresolve = true
	red.DisableAggregation = true

	// Variables: leaders carry their whole group; members inherit the
	// leader's reduced index.
	members := make(map[int][]int32)
	for j := 0; j < n; j++ {
		members[groupOf[j]] = append(members[groupOf[j]], int32(j))
	}
	for j := 0; j < n; j++ {
		if groupOf[j] != j {
			ag.colMap[j] = -2 // patched below from the leader
			continue
		}
		g := members[j]
		lo, hi := p.lo[j], p.hi[j]
		if len(g) > 1 {
			lo *= float64(len(g))
			if !math.IsInf(hi, 1) {
				hi *= float64(len(g))
			}
		}
		rc := red.AddVariable(lo, hi, p.costs[j], p.names[j])
		ag.colMap[j] = rc
		for rc >= len(ag.groups) {
			ag.groups = append(ag.groups, nil)
		}
		if len(g) > 1 {
			ag.groups[rc] = g
		}
	}
	for j := 0; j < n; j++ {
		if ag.colMap[j] == -2 {
			ag.colMap[j] = ag.colMap[groupOf[j]]
		}
	}

	// Rows: rewrite through the column map, then fold duplicates onto the
	// first (kept) copy, tightening its RHS.
	keptOf := make(map[uint64][]int32, m) // hash -> kept original rows
	ag.rowMap = make([]int, m)
	keptOrig := make([]int32, 0, m)
	keptRHS := make([]float64, 0, m)
	carrier := make([]int32, 0, m)
	sameRow := func(a, b int) bool {
		if p.rows[a].Sense != p.rows[b].Sense {
			return false
		}
		ta, tb := rows[a], rows[b]
		wa, wb := 0, 0
		for {
			for wa < len(ta) && groupOf[ta[wa].Var] != ta[wa].Var {
				wa++
			}
			for wb < len(tb) && groupOf[tb[wb].Var] != tb[wb].Var {
				wb++
			}
			if wa == len(ta) || wb == len(tb) {
				return wa == len(ta) && wb == len(tb)
			}
			if ta[wa].Var != tb[wb].Var ||
				math.Float64bits(ta[wa].Coef) != math.Float64bits(tb[wb].Coef) {
				return false
			}
			wa++
			wb++
		}
	}
	for i := 0; i < m; i++ {
		dup := -1
		for _, k := range keptOf[rowH[i]] {
			if sameRow(int(k), i) {
				dup = int(k)
				break
			}
		}
		if dup < 0 {
			ag.rowMap[i] = len(keptOrig)
			keptOf[rowH[i]] = append(keptOf[rowH[i]], int32(i))
			keptOrig = append(keptOrig, int32(i))
			keptRHS = append(keptRHS, p.rows[i].RHS)
			carrier = append(carrier, int32(i))
			continue
		}
		// The duplicate whose RHS binds carries the dual in postsolve: the
		// non-binding copies are strictly slack at any reduced optimum and
		// must read zero for complementary slackness.
		k := ag.rowMap[dup]
		switch p.rows[i].Sense {
		case LE:
			if p.rows[i].RHS < keptRHS[k] {
				keptRHS[k] = p.rows[i].RHS
				carrier[k] = int32(i)
			}
		case GE:
			if p.rows[i].RHS > keptRHS[k] {
				keptRHS[k] = p.rows[i].RHS
				carrier[k] = int32(i)
			}
		case EQ:
			if math.Abs(p.rows[i].RHS-keptRHS[k]) > aggEps*(1+math.Abs(keptRHS[k])) {
				return nil, Infeasible
			}
		}
		ag.rowMap[i] = -1
	}
	ag.carrier = carrier
	for w, i32 := range keptOrig {
		i := int(i32)
		terms := make([]Term, 0, len(rows[i]))
		for _, t := range rows[i] {
			if groupOf[t.Var] != t.Var {
				continue
			}
			terms = append(terms, Term{Var: ag.colMap[t.Var], Coef: t.Coef})
		}
		red.AddConstraint(terms, p.rows[i].Sense, keptRHS[w], p.rows[i].Name)
	}

	// A crash hint aggregates with the columns: the merged coordinate is
	// the member sum.
	if p.crashPoint != nil && len(p.crashPoint) == n {
		cp := make([]float64, len(red.costs))
		for j := 0; j < n; j++ {
			cp[ag.colMap[j]] += p.crashPoint[j]
		}
		red.crashPoint = cp
	}

	ag.reduced = red
	return ag, Optimal
}

// postsolve maps an aggregated-problem solution back onto the original:
// merged columns disaggregate greedily over their members, kept rows keep
// their duals, dropped duplicates read zero.
func (ag *aggregated) postsolve(sol *Solution) *Solution {
	out := &Solution{Status: sol.Status, Iterations: sol.Iterations, Pivots: sol.Pivots}
	if sol.Status != Optimal {
		return out
	}
	p := ag.orig
	n, m := len(p.costs), len(p.rows)

	x := make([]float64, n)
	done := make([]bool, len(sol.X))
	for j := 0; j < n; j++ {
		rc := ag.colMap[j]
		if g := ag.groups[rc]; g == nil {
			x[j] = sol.X[rc]
			continue
		} else if !done[rc] {
			done[rc] = true
			// Greedy split: member k takes what its box allows while
			// reserving the later members' lower bounds; any float residual
			// lands on the last member's clamp.
			rest := 0.0
			for _, mb := range g[1:] {
				rest += p.lo[mb]
			}
			rem := sol.X[rc]
			for t, mb := range g {
				v := rem - rest
				if v < p.lo[mb] {
					v = p.lo[mb]
				}
				if v > p.hi[mb] {
					v = p.hi[mb]
				}
				x[mb] = v
				rem -= v
				if t+1 < len(g) {
					rest -= p.lo[g[t+1]]
				}
			}
		}
	}

	dual := make([]float64, m)
	for r, i := range ag.carrier {
		dual[i] = sol.Dual[r]
	}

	out.X = x
	out.Dual = dual
	out.Obj = p.Objective(x)
	return out
}
