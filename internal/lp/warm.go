package lp

import (
	"fmt"
	"math"
)

// The dual-simplex tolerances (dualFeasEps, dualPivotEps) and warmFeasTol
// live in tol.go with the rest of the package's tolerance audit.

// refactorEvery bounds the pivots applied to a warm tableau before it is
// refactorized from the pristine rows to purge accumulated round-off.
const refactorEvery = 256

// basisTag identifies the Incremental that produced a Basis. A snapshot can
// only be installed into its own Incremental; foreign snapshots are silently
// ignored. Within one Incremental every snapshot stays attemptable for the
// wrapper's whole lifetime — install revalidates against the current
// pristine rows, so even snapshots predating a cold rebuild are safe.
type basisTag struct{ _ byte }

// Basis is an opaque snapshot of a simplex basis: the basic column of every
// row plus the bound status of every nonbasic column. It is exported through
// Solution.Basis by Incremental solves and consumed by
// Incremental.SolveFrom. Snapshots are immutable and safe to share across
// goroutines.
type Basis struct {
	tag    *basisTag
	cols   []int32
	status []int8
}

// Incremental wraps a Problem with warm-start state: it keeps the simplex
// tableau alive between solves and reoptimizes with the dual simplex after
// bound changes (TightenBound / SetBounds on the wrapped problem) or row
// additions (AddRow / AddConstraint). Both kinds of change preserve dual
// feasibility of the incumbent basis, so a reoptimization typically takes a
// handful of pivots where a cold solve would take hundreds.
//
// The cold two-phase solve remains the correctness authority: any change the
// warm path cannot absorb (new variables, cost changes, bound-class changes
// such as fixing a previously free variable), any numerical rejection, and
// every warm Infeasible conclusion falls back to — or is confirmed by — a
// cold solve.
//
// An Incremental is not safe for concurrent use.
type Incremental struct {
	p   *Problem
	std *standard
	t   *tableau
	tag *basisTag

	// Applied snapshot of the wrapped problem, used to diff changes.
	loApplied    []float64
	hiApplied    []float64
	costApplied  []float64
	rhsApplied   []float64
	rowsApplied  int
	factorPivots int // t.pivots at the last (re)factorization

	// Basis-cache effectiveness counters; see Stats.
	warmSolves int
	coldSolves int

	valid bool
}

// Stats reports how often the live-tableau basis cache paid off: warm is the
// number of Solve/SolveFrom calls resolved by dual-simplex reoptimization of
// the cached basis (including trivial empty-box and confirmed-infeasible
// verdicts), cold the number that fell back to a full two-phase rebuild.
// Clients (the branch-and-bound tree, the solve service) surface these as
// cache hit/miss statistics.
func (inc *Incremental) Stats() (warm, cold int) { return inc.warmSolves, inc.coldSolves }

// NewIncremental wraps p for warm-started solving. The problem is shared,
// not copied: mutate it through the Incremental helpers or directly (e.g.
// AddConstraint) and call Solve to absorb the changes. The first Solve is a
// cold solve.
func NewIncremental(p *Problem) *Incremental {
	// One tag per Incremental lifetime, not per rebuild: within a single
	// Incremental any snapshot may be attempted (install fully validates
	// against the current pristine rows before committing), so snapshots
	// must survive rebuilds — a per-rebuild tag would strand every parent
	// basis held by a deep best-first node queue. The tag only guards
	// against snapshots produced by a different Incremental.
	return &Incremental{p: p, tag: &basisTag{}}
}

// Problem returns the wrapped problem (live, shared).
func (inc *Incremental) Problem() *Problem { return inc.p }

// TightenBound updates the bounds of variable v. Despite the name it may
// also relax bounds; either direction preserves dual feasibility and is
// absorbed warmly as long as the bound class is unchanged (a finite bound
// stays finite on the same side).
func (inc *Incremental) TightenBound(v int, lo, hi float64) {
	inc.p.SetBounds(v, lo, hi)
}

// AddRow appends the constraint Σ terms {sense} rhs and returns its index.
// Row additions preserve dual feasibility of the incumbent basis.
func (inc *Incremental) AddRow(terms []Term, sense Sense, rhs float64, name string) int {
	return inc.p.AddConstraint(terms, sense, rhs, name)
}

// SetRHS replaces the right-hand side of constraint row i (RHS ranging).
// The change preserves dual feasibility and is absorbed warmly by the next
// Solve: walking a single row's RHS across a parameter range — the budget
// row of a parametric table build — reoptimizes in a few dual pivots per
// step instead of a cold solve per value.
func (inc *Incremental) SetRHS(i int, rhs float64) {
	inc.p.SetRHS(i, rhs)
}

// Solve reoptimizes after any pending problem mutations, warm-starting from
// the live basis of the previous solve.
func (inc *Incremental) Solve() (*Solution, error) { return inc.SolveFrom(nil) }

// SolveFrom reoptimizes like Solve but first installs basis b (typically a
// parent node's Solution.Basis) when it is compatible with the current
// standardization. Incompatible or stale snapshots are ignored, never an
// error.
func (inc *Incremental) SolveFrom(b *Basis) (*Solution, error) {
	p := inc.p
	for j := range p.lo {
		if math.IsNaN(p.lo[j]) || math.IsNaN(p.hi[j]) {
			return nil, fmt.Errorf("%w: NaN bound on variable %d", ErrBadModel, j)
		}
		// Empty box: report infeasibility without touching the warm state,
		// so the tableau stays reusable for the next (feasible) sibling.
		if p.lo[j] > p.hi[j] {
			inc.warmSolves++
			return &Solution{Status: Infeasible}, nil
		}
	}
	if !inc.valid {
		return inc.rebuild()
	}
	if !inc.absorb() {
		return inc.rebuild()
	}
	if inc.t.pivots-inc.factorPivots > refactorEvery {
		if !inc.refactor() {
			return inc.rebuild()
		}
	}
	if b != nil && b.tag == inc.tag && !inc.liveEquals(b) {
		// Best effort: rejection keeps the live basis, which is always a
		// legal warm start.
		inc.install(b.cols, b.status, true)
	}
	return inc.reoptimize()
}

// rebuild discards all warm state and rebuilds: from the problem's crash
// hint when one is set (installing the heuristic vertex directly, skipping
// both simplex phases), else by an ordinary cold two-phase solve. The
// reoptimize-internal fallbacks call rebuildCold directly — a state the
// crash path just produced cannot be repaired by reproducing it.
func (inc *Incremental) rebuild() (*Solution, error) {
	if sol, err, ok := inc.rebuildFromCrash(); ok {
		return sol, err
	}
	return inc.rebuildCold()
}

// rebuildCold discards all warm state and runs a cold two-phase solve,
// adopting the resulting tableau when optimal.
func (inc *Incremental) rebuildCold() (*Solution, error) {
	inc.coldSolves++
	sol, std, t, err := solveCold(inc.p, nil, inc.tag)
	if err != nil || sol.Status != Optimal {
		inc.valid = false
		return sol, err
	}
	inc.std, inc.t = std, t
	inc.valid = true
	inc.factorPivots = t.pivots
	inc.snapshotApplied()
	return sol, nil
}

// rebuildFromCrash erects a fresh phase-0 tableau and installs the basis
// crashed from the problem's hint through the install machinery — the same
// Gauss–Jordan validation every stored-basis warm start takes — then lets
// reoptimize repair the vertex (dual cleanup, primal finish, and all of its
// cold-confirm fallbacks). ok=false declines: the caller falls back to
// rebuildCold with the warm state invalidated, exactly as if no hint were
// set.
func (inc *Incremental) rebuildFromCrash() (*Solution, error, bool) {
	p := inc.p
	if p.DisableCrash || p.crashPoint == nil {
		return nil, nil, false
	}
	sol, std, t, artStart, _, err := coldSetup(p, nil, inc.tag)
	if err != nil || sol != nil {
		// Structural verdicts (NaN bounds, standardize-Infeasible) belong to
		// the cold authority's reporting path.
		return nil, nil, false
	}
	if std.pat == nil {
		// Dense-only standardization: buildCrashPlan needs pattern rows.
		return nil, nil, false
	}
	inc.valid = false
	nPre := std.nReal
	m := len(t.a)
	slackOf := make([]int32, m)
	for i := 0; i < m; i++ {
		if uc := std.unitCol[i]; uc < nPre {
			slackOf[i] = int32(uc)
		} else {
			slackOf[i] = -1
		}
	}
	plan := buildCrashPlan(p, std, nPre, slackOf)
	if plan == nil {
		crashDeclines.Add(1)
		return nil, nil, false
	}
	inc.std, inc.t = std, t
	cols := make([]int32, m)
	for i := 0; i < m; i++ {
		if a := plan.assign[i]; a >= 0 {
			cols[i] = int32(a)
		} else {
			cols[i] = int32(std.unitCol[i])
		}
	}
	status := make([]int8, len(std.c))
	copy(status, plan.status)
	if !inc.install(cols, status, false) {
		crashDeclines.Add(1)
		return nil, nil, false
	}
	t = inc.t // install replaced the live tableau
	for j := artStart; j < len(std.c); j++ {
		t.banned[j] = true
	}
	// Primal gate mirroring tryCrashBasis: every artificial slot must have
	// vanished at the crash vertex (a banned artificial basic at ~0 is the
	// legal redundant-row degenerate).
	tol := feasTol(std.scale)
	for i, bc := range t.basis {
		if bc >= artStart && math.Abs(t.b[i]) > tol {
			inc.valid = false
			crashDeclines.Add(1)
			return nil, nil, false
		}
	}
	crashInstalls.Add(1)
	inc.coldSolves++
	inc.valid = true
	inc.factorPivots = t.pivots
	inc.snapshotApplied()
	sol2, err2 := inc.reoptimize()
	return sol2, err2, true
}

func (inc *Incremental) snapshotApplied() {
	p := inc.p
	inc.loApplied = append(inc.loApplied[:0], p.lo...)
	inc.hiApplied = append(inc.hiApplied[:0], p.hi...)
	inc.costApplied = append(inc.costApplied[:0], p.costs...)
	inc.rhsApplied = inc.rhsApplied[:0]
	for i := range p.rows {
		inc.rhsApplied = append(inc.rhsApplied, p.rows[i].RHS)
	}
	inc.rowsApplied = len(p.rows)
}

// absorb diffs the wrapped problem against the applied snapshot and folds
// the changes into the live tableau. It reports false when the change is
// outside the warm-compatible class and a cold rebuild is required.
func (inc *Incremental) absorb() bool {
	p := inc.p
	if len(p.costs) != len(inc.costApplied) {
		return false // new variables
	}
	for j := range p.costs {
		if p.costs[j] != inc.costApplied[j] {
			return false // cost changes break dual feasibility
		}
	}
	for j := range p.lo {
		lo, hi := p.lo[j], p.hi[j]
		if lo == inc.loApplied[j] && hi == inc.hiApplied[j] {
			continue
		}
		vm := inc.std.vmaps[j]
		switch vm.kind {
		case 0: // x = lo0 + u, needs a finite lower bound
			if math.IsInf(lo, -1) {
				return false
			}
			inc.setColBounds(vm.col, lo-vm.shift, hi-vm.shift)
		case 1: // x = hi0 - u, needs lo = -inf and a finite upper bound
			if !math.IsInf(lo, -1) || math.IsInf(hi, 1) {
				return false
			}
			inc.setColBounds(vm.col, vm.shift-hi, math.Inf(1))
		case 2: // free split: any finite bound changes the mapping
			if !math.IsInf(lo, -1) || !math.IsInf(hi, 1) {
				return false
			}
		case 3: // fixed: column was eliminated at standardization
			return false
		}
		inc.loApplied[j], inc.hiApplied[j] = lo, hi
	}
	for i := 0; i < inc.rowsApplied; i++ {
		rhs := p.rows[i].RHS
		if rhs == inc.rhsApplied[i] {
			continue
		}
		if math.IsNaN(rhs) || math.IsInf(rhs, 0) {
			return false
		}
		if !inc.shiftRHS(i, rhs-inc.rhsApplied[i]) {
			return false
		}
		inc.rhsApplied[i] = rhs
	}
	for i := inc.rowsApplied; i < len(p.rows); i++ {
		inc.addRowStd(i)
		inc.rhsApplied = append(inc.rhsApplied, p.rows[i].RHS)
	}
	inc.rowsApplied = len(p.rows)
	return true
}

// shiftRHS folds an RHS change of constraint i into the live tableau (RHS
// ranging). The standard-form delta is rowSign·dRHS — variable shifts from
// standardization are additive and unchanged, and rowSign tracks every
// negation (GE flip, b≥0 flip) the row went through. With e_r the unit
// vector of the row's standard slot, the basic values move by
// B⁻¹ e_r · Δ, and B⁻¹ e_r is exactly the live tableau column of the
// row's unit column (the slack or artificial that started as the identity
// on the row). Costs are untouched, so dual feasibility survives and the
// dual simplex in reoptimize repairs any primal violation — the same
// contract as bound changes.
func (inc *Incremental) shiftRHS(i int, dRHS float64) bool {
	std, t := inc.std, inc.t
	r := std.rowOf[i]
	if r < 0 || r >= len(t.a) {
		return false // row eliminated at standardization: rebuild
	}
	d := std.rowSign[i] * dRHS
	uc := std.unitCol[r]
	std.origB[r] += d
	std.b[r] += d
	for k := range t.a {
		t.b[k] += t.a[k][uc] * d
	}
	// Objective delta: c_B·B⁻¹e_r = −d_uc (unit columns carry zero cost),
	// valid whether the unit column is basic (both sides zero) or not.
	t.obj -= t.d[uc] * d
	return true
}

// setColBounds moves standard column col to bounds [lb, ub], shifting the
// basic values when a nonbasic column is parked at a moved bound.
func (inc *Incremental) setColBounds(col int, lb, ub float64) {
	t := inc.t
	if t.inBase[col] {
		// The basic value may now violate the new bounds; that is exactly
		// what the dual simplex repairs.
		t.lb[col], t.ub[col] = lb, ub
		return
	}
	old := t.nbVal(col)
	t.lb[col], t.ub[col] = lb, ub
	if t.status[col] == atUpper && math.IsInf(ub, 1) {
		t.status[col] = atLower
	}
	if nv := t.nbVal(col); nv != old {
		delta := nv - old
		for i := range t.a {
			t.b[i] -= t.a[i][col] * delta
		}
		t.obj += t.d[col] * delta
	}
}

// addRowStd standardizes constraint i of the wrapped problem and appends it
// to the live tableau with its fresh slack (LE) or pinned artificial (EQ)
// basic. Dual feasibility is preserved: the new basic column has zero cost.
func (inc *Incremental) addRowStd(i int) {
	p, std, t := inc.p, inc.std, inc.t
	r := &p.rows[i]
	coefs := make(map[int]float64)
	rhs := r.RHS
	for _, tm := range r.Terms {
		vm := std.vmaps[tm.Var]
		switch vm.kind {
		case 0:
			coefs[vm.col] += tm.Coef
			rhs -= tm.Coef * vm.shift
		case 1:
			coefs[vm.col] -= tm.Coef
			rhs -= tm.Coef * vm.shift
		case 2:
			coefs[vm.col] += tm.Coef
			coefs[vm.col2] -= tm.Coef
		case 3:
			rhs -= tm.Coef * vm.shift
		}
	}
	sign := 1.0
	sense := r.Sense
	if sense == GE {
		for c := range coefs {
			coefs[c] = -coefs[c]
		}
		rhs = -rhs
		sign = -1
		sense = LE
	}

	// New column: slack for ≤ rows, a [0,0]-pinned artificial for = rows
	// (it can only leave the basis, never re-enter).
	newcol := len(std.c)
	ubNew := math.Inf(1)
	banned := false
	if sense == EQ {
		ubNew = 0
		banned = true
	}
	std.c = append(std.c, 0)
	std.lb = append(std.lb, 0)
	std.ub = append(std.ub, ubNew)
	for k := range t.a {
		t.a[k] = append(t.a[k], 0)
	}
	for k := range std.orig {
		std.orig[k] = append(std.orig[k], 0)
	}
	t.d = append(t.d, 0)
	t.status = append(t.status, atLower)
	t.inBase = append(t.inBase, true)
	t.banned = append(t.banned, banned)
	t.growSparseCol()
	t.lb, t.ub = std.lb, std.ub // appends may have reallocated
	n := len(std.c)

	// Pristine row for future refactorizations.
	prow := make([]float64, n)
	for c, v := range coefs {
		prow[c] = v
	}
	prow[newcol] = 1
	std.orig = append(std.orig, prow)
	std.origB = append(std.origB, rhs)
	if std.origPat != nil {
		op := make([]int32, 0, len(coefs)+1)
		for c, v := range coefs {
			if v != 0 {
				op = append(op, int32(c))
			}
		}
		sortPattern(op)
		op = append(op, int32(newcol))
		std.origPat = append(std.origPat, op)
	}

	// Value of the new basic column at the current point.
	val := rhs
	for k, bc := range t.basis {
		val -= prow[bc] * t.b[k]
	}
	for c := 0; c < n; c++ {
		if t.inBase[c] || c == newcol {
			continue
		}
		if v := t.nbVal(c); v != 0 {
			val -= prow[c] * v
		}
	}

	// Reduced row: eliminate the basic columns against the tableau rows
	// (each tableau row is the identity on its own basic column).
	rrow := append([]float64(nil), prow...)
	if t.sparse() {
		// Pattern-aware elimination: only the eliminating row's nonzeros
		// can touch rrow, and the union of visited patterns is a superset
		// of the result, pruned exactly at the end.
		gen := t.bumpGen()
		rpat := t.patScratch[:0]
		for c, v := range coefs {
			if v != 0 {
				rpat = append(rpat, int32(c))
				t.mark[c] = gen
			}
		}
		sortPattern(rpat)
		rpat = append(rpat, int32(newcol))
		t.mark[newcol] = gen
		for k, bc := range t.basis {
			f := rrow[bc]
			if f == 0 {
				continue
			}
			rowk := t.a[k]
			for _, j32 := range t.pat[k] {
				j := int(j32)
				rrow[j] -= f * rowk[j]
				if t.mark[j] != gen {
					t.mark[j] = gen
					rpat = append(rpat, j32)
				}
			}
			rrow[bc] = 0
		}
		w := 0
		for _, j32 := range rpat {
			if rrow[j32] != 0 {
				rpat[w] = j32
				w++
			}
		}
		np := append([]int32(nil), rpat[:w]...)
		t.pat = append(t.pat, np)
		for _, j := range np {
			t.colCnt[j]++
		}
		t.nnz += len(np)
		t.patScratch = rpat[:0]
	} else {
		for k, bc := range t.basis {
			f := rrow[bc]
			if f == 0 {
				continue
			}
			rowk := t.a[k]
			for c := range rrow {
				rrow[c] -= f * rowk[c]
			}
			rrow[bc] = 0
		}
	}

	t.a = append(t.a, rrow)
	t.b = append(t.b, val)
	t.basis = append(t.basis, newcol)
	std.a = t.a
	std.b = append(std.b, rhs)
	std.rowOf = append(std.rowOf, len(t.a)-1)
	std.rowSign = append(std.rowSign, sign)
	std.unitCol = append(std.unitCol, newcol)
}

// liveEquals reports whether snapshot b is exactly the live basis.
func (inc *Incremental) liveEquals(b *Basis) bool {
	t := inc.t
	if len(b.cols) != len(t.basis) || len(b.status) != len(t.status) {
		return false
	}
	for i, c := range b.cols {
		if int(c) != t.basis[i] {
			return false
		}
	}
	for j, s := range b.status {
		if !t.inBase[j] && s != t.status[j] {
			return false
		}
	}
	return true
}

// install refactorizes the tableau from the pristine rows with the given
// basis assignment. Rows added after the snapshot keep their own unit
// column basic; columns added after the snapshot default to atLower. When
// checkDual is set the reduced costs are validated for dual feasibility
// before committing; any rejection leaves the live tableau untouched and
// returns false.
func (inc *Incremental) install(cols []int32, status []int8, checkDual bool) bool {
	std, t := inc.std, inc.t
	m, n := len(t.a), len(std.c)
	if len(cols) > m {
		return false
	}
	assign := make([]int, m)
	seen := make([]bool, n)
	for i, c := range cols {
		if int(c) >= n || seen[c] {
			return false
		}
		assign[i] = int(c)
		seen[c] = true
	}
	for i := len(cols); i < m; i++ {
		uc := std.unitCol[i]
		if seen[uc] {
			return false
		}
		assign[i] = uc
		seen[uc] = true
	}

	// Gauss-Jordan on the pristine system with the fixed row↔column
	// assignment. The elimination order is chosen greedily by pivot
	// magnitude: the assignment fixes WHICH column each row owns, but a
	// fixed 0..m-1 order could hit a zero pivot on a perfectly nonsingular
	// basis (elimination without reordering is not order-free). A
	// near-singular best pivot rejects the basis.
	//
	// With the sparse kernels on, the pristine rows start near-empty and
	// the elimination walks patterns instead of full rows — this is the
	// path every warm basis install (one per branch-and-bound node) and
	// every periodic refactorization takes, so it matters as much as the
	// pivot kernel itself.
	sparse := std.origPat != nil
	var pats [][]int32
	var pmark, pscratch []int32
	var pgen int32
	if sparse {
		pats = make([][]int32, m)
		for i := range pats {
			pats[i] = append([]int32(nil), std.origPat[i]...)
		}
		pmark = make([]int32, n)
	}
	work := make([][]float64, m)
	for i := range work {
		work[i] = append(make([]float64, 0, n), std.orig[i]...)
	}
	wb := append([]float64(nil), std.origB...)
	done := make([]bool, m)
	for step := 0; step < m; step++ {
		best, bestAbs := -1, pivotEps
		for r := 0; r < m; r++ {
			if done[r] {
				continue
			}
			if a := math.Abs(work[r][assign[r]]); a > bestAbs {
				best, bestAbs = r, a
			}
		}
		if best < 0 {
			return false
		}
		done[best] = true
		wi := work[best]
		pc := assign[best]
		inv := 1 / wi[pc]
		if sparse {
			for _, j := range pats[best] {
				wi[j] *= inv
			}
		} else {
			for j := range wi {
				wi[j] *= inv
			}
		}
		wi[pc] = 1
		wb[best] *= inv
		for k := 0; k < m; k++ {
			if k == best {
				continue
			}
			f := work[k][pc]
			if f == 0 {
				continue
			}
			wk := work[k]
			if sparse {
				patB := pats[best]
				old := pats[k]
				pgen++
				for _, j := range old {
					pmark[j] = pgen
				}
				for _, j := range patB {
					wk[j] -= f * wi[j]
				}
				wk[pc] = 0
				np := pscratch[:0]
				for _, j := range old {
					if wk[j] != 0 {
						np = append(np, j)
					}
				}
				for _, j := range patB {
					if pmark[j] != pgen && wk[j] != 0 {
						np = append(np, j)
					}
				}
				pats[k] = append(old[:0], np...)
				pscratch = np[:0]
			} else {
				for j := range wk {
					wk[j] -= f * wi[j]
				}
				wk[pc] = 0
			}
			wb[k] -= f * wb[best]
		}
	}

	inBase := make([]bool, n)
	for _, c := range assign {
		inBase[c] = true
	}
	newStatus := make([]int8, n)
	copy(newStatus, status) // columns beyond the snapshot default atLower
	for j := 0; j < n; j++ {
		if !inBase[j] && newStatus[j] == atUpper && math.IsInf(std.ub[j], 1) {
			newStatus[j] = atLower
		}
	}

	// b = B⁻¹(b₀ − N·x_N): subtract nonbasic columns parked at ≠ 0.
	for j := 0; j < n; j++ {
		if inBase[j] {
			continue
		}
		v := std.lb[j]
		if newStatus[j] == atUpper {
			v = std.ub[j]
		}
		if v == 0 {
			continue
		}
		for i := 0; i < m; i++ {
			wb[i] -= work[i][j] * v
		}
	}

	cand := &tableau{
		a:      work,
		b:      wb,
		d:      make([]float64, n),
		lb:     std.lb,
		ub:     std.ub,
		basis:  assign,
		inBase: inBase,
		status: newStatus,
		banned: append([]bool(nil), t.banned...),
		iters:  t.iters,
		pivots: t.pivots,
		delta:  t.delta,
	}
	if sparse {
		// Re-derive the column counts from the eliminated patterns; a
		// tableau that had dropped to dense under fill-in comes back
		// sparse from the pristine rows.
		cand.initSparse(pats, nil)
	}
	cand.setCosts(std.c)
	if checkDual {
		for j := 0; j < n; j++ {
			if inBase[j] || cand.banned[j] || std.lb[j] == std.ub[j] {
				continue
			}
			if newStatus[j] == atLower && cand.d[j] < -dualFeasEps {
				return false
			}
			if newStatus[j] == atUpper && cand.d[j] > dualFeasEps {
				return false
			}
		}
	}
	inc.t = cand
	std.a = work
	inc.factorPivots = cand.pivots
	return true
}

// refactor rebuilds the tableau from the pristine rows with the current
// basis, purging accumulated floating-point drift.
func (inc *Incremental) refactor() bool {
	t := inc.t
	cols := make([]int32, len(t.basis))
	for i, c := range t.basis {
		cols[i] = int32(c)
	}
	return inc.install(cols, append([]int8(nil), t.status...), false)
}

// reoptimize runs the dual simplex to repair primal feasibility, then a
// primal cleanup pass (a no-op when the dual phase ends optimal), falling
// back to the cold authority on iteration limits, unboundedness, or to
// confirm an Infeasible verdict.
func (inc *Incremental) reoptimize() (*Solution, error) {
	t := inc.t
	maxIter := inc.p.MaxIter
	if maxIter == 0 {
		maxIter = 200*(len(t.a)+25) + 20*len(t.d)
	}
	pivots0 := t.pivots
	t.iters = 0
	t.ddOff = inc.p.DisableDevex
	// The dual repair of a handful of bound changes or row additions needs
	// O(m) pivots; a dual phase still churning past a few multiples of the
	// tableau size is wandering a degenerate face (the Bland fallback is
	// not provably acyclic for the dual), so cap it well below the global
	// iteration limit and let the cold authority take over instead.
	dualBudget := 4*(len(t.a)+len(t.d)) + 64
	if dualBudget > maxIter {
		dualBudget = maxIter
	}
	st := t.runDual(dualBudget)
	if st == Optimal {
		st = t.run(maxIter)
	}
	iters := t.iters
	switch st {
	case Optimal:
		sol := extract(inc.p, inc.std, t, iters, t.pivots-pivots0, inc.tag)
		// Safety net: a warm tableau that drifted numerically can report
		// Optimal with a point that violates the original rows. Never let
		// that escape — any real violation discards the warm state and
		// defers to the cold authority.
		if inc.p.MaxViolation(sol.X) > warmFeasTol(inc.p) {
			return inc.rebuildCold()
		}
		inc.warmSolves++
		return sol, nil
	case Infeasible:
		// The dual simplex concluded infeasible; confirm with a cold solve
		// so a numerical misstep can never prune a feasible region. The
		// warm tableau is left as-is (still dual feasible) for the next
		// sibling solve.
		ws := wsPool.Get().(*workspace)
		sol, _, _, err := solveCold(inc.p, ws, nil)
		wsPool.Put(ws)
		if err != nil {
			return nil, err
		}
		if sol.Status == Infeasible {
			sol.Iterations += iters
			sol.Pivots += t.pivots - pivots0
			inc.warmSolves++
			return sol, nil
		}
		// Disagreement: the cold authority wins; adopt a fresh cold state.
		return inc.rebuildCold()
	default: // IterLimit, Unbounded
		return inc.rebuildCold()
	}
}

// runDual iterates the dual simplex: pick the leaving row among the basic
// variables outside their bounds — by dual-devex score violation²/w_i
// (devex.go), or by plain worst violation under DisableDevex/Bland — then
// the entering column by the dual ratio test over the dual-feasible reduced
// costs. Bound tightenings and row additions leave the reduced costs
// untouched, so the incumbent basis is a valid starting point and each
// iteration monotonically increases the objective toward the new optimum.
func (t *tableau) runDual(maxIter int) Status {
	m := len(t.a)
	t.buildActive()
	devex := !t.ddOff
	if devex {
		t.dd.reset(m)
		if cap(t.ddCol) < m {
			t.ddCol = make([]float64, m)
		}
		t.ddCol = t.ddCol[:m]
	}
	stall := 0
	blandAfter := m + 64
	for t.iters < maxIter {
		bland := stall > blandAfter

		// Leaving row: basic variable violating a bound. The devex score
		// normalizes the violation by the reference-framework row norm
		// w_i ≈ ‖e_i·B⁻¹‖², steering away from rows whose pivots move the
		// duals the least per unit of violation repaired. Verdicts are
		// untouched: a row is a candidate iff its violation exceeds
		// dualFeasEps, exactly as under the plain rule.
		r := -1
		var target float64
		var rKind int8
		worst := dualFeasEps
		bestScore := 0.0
		for i := 0; i < m; i++ {
			bc := t.basis[i]
			v, kind, tgt := 0.0, atLower, 0.0
			if lv := t.lb[bc] - t.b[i]; lv > dualFeasEps {
				v, kind, tgt = lv, atLower, t.lb[bc]
			} else if uv := t.b[i] - t.ub[bc]; uv > dualFeasEps {
				v, kind, tgt = uv, atUpper, t.ub[bc]
			} else {
				continue
			}
			if devex && !bland {
				if score := v * v / t.dd.w[i]; score > bestScore {
					bestScore, r, target, rKind = score, i, tgt, kind
				}
			} else if v > worst {
				worst, r, target, rKind = v, i, tgt, kind
				if bland {
					break
				}
			}
		}
		if r < 0 {
			return Optimal
		}
		t.iters++

		// Entering column: admissible sign pattern, minimal |d/α|. The
		// candidates all have row[j] != 0, so in sparse mode the leaving
		// row's pattern is the complete search space; the dense mode scans
		// the active skip list (banned and fixed columns pre-excluded).
		row := t.a[r]
		scan := t.active
		if t.sparse() {
			scan = t.pat[r]
		}
		e := -1
		best := math.Inf(1)
		for _, j32 := range scan {
			j := int(j32)
			if t.inBase[j] || t.banned[j] || t.lb[j] == t.ub[j] {
				continue
			}
			alpha := row[j]
			if alpha < dualPivotEps && alpha > -dualPivotEps {
				continue
			}
			var ok bool
			if rKind == atLower {
				// b_r must increase: entering at lower moving up needs
				// α < 0, entering at upper moving down needs α > 0.
				ok = (t.status[j] == atLower && alpha < 0) || (t.status[j] == atUpper && alpha > 0)
			} else {
				ok = (t.status[j] == atLower && alpha > 0) || (t.status[j] == atUpper && alpha < 0)
			}
			if !ok {
				continue
			}
			ratio := math.Abs(t.d[j] / alpha)
			if ratio < best-ratioTieEps || (ratio < best+ratioTieEps && (e < 0 || j < e)) {
				best, e = ratio, j
			}
		}
		if e < 0 {
			// No column can repair the violated row: the (standard-form)
			// problem is infeasible.
			return Infeasible
		}

		// Bound-flip ratio test: if repairing row r would push x_e past
		// its own opposite bound, flip x_e to that bound instead (no basis
		// change) and retry the row with another entering column. Without
		// this, a small |α| makes x_e take an enormous value that later
		// pivots must walk back, amplifying round-off catastrophically.
		delta := (t.b[r] - target) / row[e]
		if rng := t.ub[e] - t.lb[e]; math.Abs(delta) > rng {
			flip := rng
			if delta < 0 {
				flip = -rng
			}
			for i := 0; i < m; i++ {
				t.b[i] -= t.a[i][e] * flip
			}
			gain := t.d[e] * flip
			t.obj += gain
			if t.status[e] == atLower {
				t.status[e] = atUpper
			} else {
				t.status[e] = atLower
			}
			if gain > progressRelEps*(1+math.Abs(t.obj)) {
				stall = 0
			} else {
				stall++
			}
			continue
		}

		// Pivot: move x_e so that row r lands exactly on its bound. The
		// entering column is gathered into ddCol alongside the b update —
		// it is exactly the α column the devex weight update needs, and
		// t.pivot is about to destroy it.
		step := t.d[e] * delta
		newVal := t.nbVal(e) + delta
		alphaRE := row[e]
		leave := t.basis[r]
		t.inBase[leave] = false
		t.status[leave] = rKind
		t.basis[r] = e
		t.inBase[e] = true
		if devex {
			for i := 0; i < m; i++ {
				a := t.a[i][e]
				t.ddCol[i] = a
				if i != r {
					t.b[i] -= a * delta
				}
			}
		} else {
			for i := 0; i < m; i++ {
				if i != r {
					t.b[i] -= t.a[i][e] * delta
				}
			}
		}
		t.b[r] = newVal
		t.obj += step
		t.pivot(r, e)
		t.pivots++
		if devex && t.dd.update(r, alphaRE, t.ddCol) {
			t.dd.reset(m)
		}

		if step > progressRelEps*(1+math.Abs(t.obj)) {
			stall = 0
		} else {
			stall++
		}
	}
	return IterLimit
}
