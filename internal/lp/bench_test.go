package lp

import (
	"testing"

	"repro/internal/stats"
)

func benchLP(b *testing.B, n, m int) {
	b.Helper()
	rng := stats.NewRNG(1)
	p := randomLP(rng, n, m)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sol, err := p.Solve()
		if err != nil || sol.Status != Optimal {
			b.Fatalf("status %v err %v", sol.Status, err)
		}
	}
}

func BenchmarkSimplex10x10(b *testing.B)   { benchLP(b, 10, 10) }
func BenchmarkSimplex50x50(b *testing.B)   { benchLP(b, 50, 50) }
func BenchmarkSimplex100x100(b *testing.B) { benchLP(b, 100, 100) }
