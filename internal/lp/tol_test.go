package lp

import (
	"math"
	"testing"
)

// TestToleranceAudit pins every named tolerance of the LP layer to its
// audited value and discipline. The table is deliberately exhaustive: a new
// epsilon must be added here (and to tol.go) rather than inlined at its use
// site, and changing a value is a reviewed decision, not a drive-by edit.
func TestToleranceAudit(t *testing.T) {
	for _, tc := range []struct {
		name  string
		value float64
		want  float64
		// scaled tolerances are multiplied by a power-of-two problem
		// scale before judging an absolute residual; dimensionless ones
		// are applied as-is.
		scaled   bool
		consumer string
	}{
		{"costEps", costEps, 1e-9, false, "reduced-cost optimality (priceEntering, revEngine.price)"},
		{"pivotEps", pivotEps, 1e-9, false, "minimum primal pivot magnitude (tableau.run, reinvert)"},
		{"feasEps", feasEps, 1e-7, true, "phase-1 infeasibility verdict (solveCold, solveRevised)"},
		{"ratioTieEps", ratioTieEps, 1e-12, false, "ratio-test tie window (run, runPhase, dual ratio test)"},
		{"boundSnapEps", boundSnapEps, 1e-11, false, "basic-value bound hygiene clamp"},
		{"progressRelEps", progressRelEps, 1e-9, false, "stall detection, relative to 1+|obj|"},
		{"artPivotEps", artPivotEps, 1e-7, false, "pivoting zero artificials out after phase 1"},
		{"dualFeasEps", dualFeasEps, 1e-7, false, "reduced-cost sign check on installed bases (warm)"},
		{"dualPivotEps", dualPivotEps, 1e-7, false, "minimum dual pivot |α| (runDual)"},
		{"warmAcceptEps", warmAcceptEps, 1e-7, true, "warm Optimal acceptance vs RHS scale"},
		{"revSanityEps", revSanityEps, 1e-6, true, "revised-engine stand-behind gate"},
		{"psTol", psTol, 1e-7, false, "presolve trivial checks, applied as psTol·(1+|v|)"},
	} {
		if tc.value != tc.want {
			t.Errorf("%s = %g, want %g (%s)", tc.name, tc.value, tc.want, tc.consumer)
		}
	}
	if psTol != feasEps {
		t.Error("psTol must stay aligned with feasEps: presolve and phase 1 must agree on borderline instances")
	}
}

// TestPow2Scale pins the scale function every SCALED tolerance multiplies
// by: exact powers of two (no rounding when applied), unit floor, and exact
// equivariance under power-of-two rescaling of its input.
func TestPow2Scale(t *testing.T) {
	for _, tc := range []struct{ in, want float64 }{
		{0, 1}, {0.25, 1}, {1, 1}, {1.5, 2}, {2, 4}, {3, 4},
		{-3, 4}, {93, 128}, {1e6, 1 << 20}, {math.Inf(1), 1},
		{math.NaN(), 1},
	} {
		if got := pow2Scale(tc.in); got != tc.want {
			t.Errorf("pow2Scale(%v) = %v, want %v", tc.in, got, tc.want)
		}
	}
	// Exactness: the scale of a 2^e-rescaled value is exactly 2^e times
	// the scale — the property that keeps accept/reject decisions
	// bit-identical across power-of-two rescalings (above the unit floor).
	for _, v := range []float64{1.75, 93, 6287.49, 1e12} {
		for e := 0; e <= 40; e += 5 {
			want := math.Ldexp(pow2Scale(v), e)
			if got := pow2Scale(math.Ldexp(v, e)); got != want {
				t.Fatalf("pow2Scale(%v·2^%d) = %v, want %v", v, e, got, want)
			}
		}
	}
	// A power-of-two scale times any tolerance is exact: multiplying only
	// shifts the exponent.
	if feasTol(128) != math.Ldexp(feasEps, 7) {
		t.Fatal("feasTol(128) is not an exact exponent shift of feasEps")
	}
}

// TestPrimalScale: the standardized-RHS magnitude ignores non-finite
// entries, applies the unit floor, and scales exactly.
func TestPrimalScale(t *testing.T) {
	if got := primalScale(nil); got != 1 {
		t.Fatalf("primalScale(nil) = %v, want 1", got)
	}
	if got := primalScale([]float64{0.1, -0.2}); got != 1 {
		t.Fatalf("primalScale(small) = %v, want unit floor 1", got)
	}
	b := []float64{1.5, -93, 2, math.Inf(1)}
	if got := primalScale(b); got != 128 {
		t.Fatalf("primalScale = %v, want 128 (from |−93|, Inf ignored)", got)
	}
	scaled := make([]float64, len(b))
	for i := range b {
		scaled[i] = math.Ldexp(b[i], 9)
	}
	if got, want := primalScale(scaled), math.Ldexp(128, 9); got != want {
		t.Fatalf("primalScale(2^9·b) = %v, want %v", got, want)
	}
}

// TestWarmFeasTolScaling: the warm-acceptance tolerance tracks the
// power-of-two magnitude of the wrapped problem's right-hand sides, exactly.
func TestWarmFeasTolScaling(t *testing.T) {
	build := func(e int) *Problem {
		p := NewProblem()
		x := p.AddVariable(0, 10, 1, "x")
		y := p.AddVariable(0, 10, 0, "y")
		p.AddConstraint([]Term{{Var: x, Coef: 1}, {Var: y, Coef: 2}}, GE, math.Ldexp(3, e), "r1")
		p.AddConstraint([]Term{{Var: x, Coef: 1}}, LE, math.Ldexp(9, e), "r2")
		return p
	}
	base := warmFeasTol(build(0))
	if base != warmAcceptEps*16 {
		t.Fatalf("warmFeasTol = %v, want warmAcceptEps·16 (scale from RHS 9)", base)
	}
	for _, e := range []int{-3, 1, 12} {
		if got, want := warmFeasTol(build(e)), math.Ldexp(base, e); got != want {
			t.Fatalf("warmFeasTol at 2^%d = %v, want exactly %v", e, got, want)
		}
	}
}

// TestInfeasibleConfirmDebugHook: the sparse→dense infeasibility
// confirmation hook observes disagreements without changing verdicts, and
// a genuinely infeasible instance is still reported infeasible (confirmed
// by the dense authority, not silently healed into something else).
func TestInfeasibleConfirmDebugHook(t *testing.T) {
	calls := 0
	SetInfeasibleConfirmDebug(func(resid float64, dense Status) { calls++ })
	defer SetInfeasibleConfirmDebug(nil)

	p := NewProblem()
	x := p.AddVariable(0, 1, 1, "x")
	p.AddConstraint([]Term{{Var: x, Coef: 1}}, GE, 2, "impossible")
	p.DisablePresolve = true // keep presolve from short-circuiting the verdict
	sol, err := p.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Infeasible {
		t.Fatalf("status %v, want infeasible", sol.Status)
	}
	// The kernels agreed (genuine infeasibility): the hook must not fire.
	if calls != 0 {
		t.Fatalf("confirmation hook fired %d times on an agreed verdict", calls)
	}
}

// TestVerdictScaleInvariance is the LP-layer slice of the battery. Exact
// bit-equivariance of the full stack is provided one layer up: core
// normalizes the time dimension by a power of two before the LP is built,
// so two rescaled instances present identical bytes to this package (the
// serve equivariance suite asserts that end to end). What the LP layer's
// SCALED tolerances must guarantee on their own is weaker but essential:
// a feasibility verdict never flips when the data's magnitude changes, and
// the optimum tracks the rescale to relative round-off — without scaled
// feasTol/warmFeasTol, a large-magnitude instance whose phase-1 residual
// is pure round-off would be declared Infeasible.
func TestVerdictScaleInvariance(t *testing.T) {
	feasible := func(e int, dense bool) *Problem {
		p := NewProblem()
		x := p.AddVariable(0, math.Ldexp(10.45286474974421, e), 1, "T")
		n2 := p.AddVariable(1, 93, 0, "n2")
		n4 := p.AddVariable(1, 93, 0, "n4")
		s := func(v float64) float64 { return math.Ldexp(v, e) }
		p.AddConstraint([]Term{{Var: n2, Coef: s(-0.2816967520299447)}, {Var: x, Coef: -1}}, LE, s(-1.1746480489164406), "c1")
		p.AddConstraint([]Term{{Var: n2, Coef: s(-0.2816953832080269)}, {Var: x, Coef: -1}}, LE, s(-1.1746451975293033), "c2")
		p.AddConstraint([]Term{{Var: n4, Coef: s(-0.03305176785262576)}, {Var: x, Coef: -1}}, LE, s(-1.1757521169033385), "c3")
		p.AddConstraint([]Term{{Var: n2, Coef: 1}, {Var: n4, Coef: 1}}, LE, 90, "cap")
		p.DisableSparse = dense
		return p
	}
	infeasible := func(e int, dense bool) *Problem {
		p := NewProblem()
		x := p.AddVariable(0, 1, 1, "x")
		y := p.AddVariable(0, 1, 0, "y")
		s := func(v float64) float64 { return math.Ldexp(v, e) }
		p.AddConstraint([]Term{{Var: x, Coef: s(1)}, {Var: y, Coef: s(1)}}, GE, s(3), "impossible")
		p.DisableSparse = dense
		p.DisablePresolve = true // force the verdict through the simplex
		return p
	}
	// Only the cut rows scale (the time dimension); the node columns and
	// the cap row stay O(1)–O(100), so the standardized tableau mixes
	// magnitudes exactly the way real rescaled instances do.
	for _, dense := range []bool{false, true} {
		base, err := feasible(0, dense).Solve()
		if err != nil || base.Status != Optimal {
			t.Fatalf("base solve (dense=%v): %v %+v", dense, err, base)
		}
		for _, e := range []int{-20, -6, 3, 10, 24} {
			sol, err := feasible(e, dense).Solve()
			if err != nil || sol.Status != Optimal {
				t.Fatalf("2^%d solve (dense=%v): %v %+v", e, dense, err, sol)
			}
			want := math.Ldexp(base.Obj, e)
			if rel := math.Abs(sol.Obj-want) / want; rel > 1e-9 {
				t.Fatalf("dense=%v 2^%d: obj %v vs shifted base %v (rel err %g)",
					dense, e, sol.Obj, want, rel)
			}
			bad, err := infeasible(e, dense).Solve()
			if err != nil {
				t.Fatalf("2^%d infeasible solve (dense=%v): %v", e, dense, err)
			}
			if bad.Status != Infeasible {
				t.Fatalf("dense=%v 2^%d: infeasible instance reported %v", dense, e, bad.Status)
			}
		}
	}
}
