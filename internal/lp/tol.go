package lp

// Tolerance audit — every epsilon the LP layer uses, in one place.
//
// The package historically scattered ~170 numeric literals across the
// simplex kernels; they are collapsed here into named constants, each
// documenting its consumer and its scaling discipline. Two disciplines
// exist, and confusing them is exactly the class of defect the serve
// differential harness recorded (a warm+sparse cold build exploding to
// 1e30 tableau entries and reporting a feasible instance infeasible, and
// optima moving under an exact power-of-two rescale of the input):
//
//   - DIMENSIONLESS tolerances compare quantities that are already
//     relative — reduced-cost ratios, ratio-test ties, pivot magnitudes
//     of a tableau whose rows were produced by earlier unit pivots. They
//     are applied as-is.
//
//   - SCALED tolerances judge absolute residuals (phase-1 feasibility,
//     warm-verdict acceptance, the revised engine's sanity gate) and are
//     multiplied by the problem's power-of-two scale (primalScale /
//     pow2Scale below) so the verdict is invariant under an exact
//     power-of-two rescale of the data and honest at any magnitude.
//
// The scale factors are exact powers of two: multiplying a tolerance by
// one introduces no rounding, so two solves of the same instance at
// different power-of-two scales make bit-identical accept/reject
// decisions. See DESIGN.md "Numerics and tolerances" for the full scale
// model (the HSLB stack additionally normalizes the time dimension at the
// core layer, so the LP layer sees O(1) data from our own callers).

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"math"
)

const (
	// costEps is the reduced-cost optimality tolerance of the primal
	// pricing step (tableau.priceEntering, sparse candidate pricing,
	// revEngine.price). Dimensionless: reduced costs are compared against
	// the caller's cost units, and a smaller favorable reduced cost than
	// this cannot move the objective by more than noise before the ratio
	// test truncates the step.
	costEps = 1e-9

	// pivotEps is the minimum acceptable primal pivot magnitude in the
	// ratio test and basis (re)factorization (tableau.run, revEngine
	// runPhase/reinvert, Incremental.install). Dimensionless: tableau
	// entries are ratios of original coefficients after unit pivots.
	pivotEps = 1e-9

	// feasEps is the phase-1 feasibility tolerance: a solve concludes
	// Infeasible when the artificial residual exceeds feasEps × the
	// standard form's primal scale (standard.scale). SCALED — judging a
	// residual of absolute magnitude against RHS data of arbitrary units.
	feasEps = 1e-7

	// ratioTieEps is the window within which two ratio-test limits are
	// considered tied and the deterministic tie-break (lowest basic
	// column, or Markowitz row size in sparse mode) decides. Used by
	// tableau.run, revEngine.runPhase, and the dual ratio test.
	// Dimensionless: it compares step lengths, which are already in units
	// of the entering column.
	ratioTieEps = 1e-12

	// boundSnapEps is the hygiene clamp pulling a basic value that
	// round-off pushed just below its lower bound back onto the bound
	// (tableau.run, revEngine). Dimensionless by the same argument as
	// pivotEps; values this close to a bound are pivot noise.
	boundSnapEps = 1e-11

	// progressRelEps drives stall detection: an iteration "made progress"
	// when the objective moved by more than progressRelEps·(1+|obj|), and
	// a long stall escalates to Bland's rule. Relative to the running
	// objective with a unit floor; purely a cycling heuristic — it cannot
	// change a verdict, only the pivot order on degenerate faces.
	progressRelEps = 1e-9

	// artPivotEps is the minimum magnitude for pivoting a zero-valued
	// artificial out of the basis after phase 1 (solveCold,
	// solveRevised). Dimensionless (tableau entries).
	artPivotEps = 1e-7

	// dualFeasEps is the tolerance on reduced-cost signs when validating
	// an installed basis, and on primal bound violations when picking the
	// dual simplex leaving row (warm.go). Dimensionless for the
	// reduced-cost use; the leaving-row use compares primal values against
	// bounds and inherits the caller's units — the warm path's verdicts
	// are re-judged against warmFeasTol (scaled) before being trusted, so
	// this only steers pivot order.
	dualFeasEps = 1e-7

	// dualPivotEps is the minimum |α| accepted for a dual entering pivot.
	// Deliberately much stricter than pivotEps: after many warm
	// absorptions an exactly-zero tableau entry carries round-off at the
	// 1e-8 level, and pivoting on such noise amplifies every tableau value
	// by 1/|α| — irreversibly corrupting the shared state the next hundred
	// solves reuse. Rejecting a genuine small pivot is always safe here:
	// with no admissible column runDual reports Infeasible, which
	// reoptimize cold-confirms.
	dualPivotEps = 1e-7

	// warmAcceptEps is the relative factor of warmFeasTol: a warm Optimal
	// verdict is accepted only when the worst original-row violation is
	// below warmAcceptEps × the problem's RHS scale. SCALED.
	warmAcceptEps = 1e-7

	// revSanityEps gates the revised engine standing behind an Optimal
	// verdict: every basic value must sit within its bounds by
	// revSanityEps × the standard form's scale, else the engine declines
	// and the dense tableau decides. SCALED.
	revSanityEps = 1e-6

	// luTau is the threshold-pivoting factor of the sparse LU
	// factorization (luFactor.factor): a row r is an acceptable pivot for
	// column k when |u_rk| ≥ luTau · max_i |u_ik|; among acceptable rows the
	// one with the smallest static row count wins (Markowitz-style fill
	// control). Dimensionless — it compares entries of one column against
	// each other, so it is invariant under any column scaling. The textbook
	// 0.1 proved too strict here: on the min-max LPs the makespan column is
	// both the densest row and numerically large, and τ=0.1 kept forcing the
	// pivot onto it, exploding fill. 0.01 admits the sparse load rows
	// (growth stays bounded by 1/τ per step, and the engine's drift checks
	// catch the rare bad draw by refactorizing).
	luTau = 0.01

	// ftDiagEps is the relative stability floor for a Forrest–Tomlin
	// basis update: the updated diagonal must exceed ftDiagEps × the
	// largest entry of the incoming spike column, else the update is
	// declined and the engine refactorizes from scratch (the
	// Bartels–Golub-flavored recovery rung of the fallback ladder).
	// Dimensionless: it is a ratio within one FTRAN result. 1e-6 is
	// deliberately conservative — accepting a 1e-8-relative diagonal costs
	// ~1e-8·‖x‖ of drift on every later solve (measured in lu_test.go's
	// update battery), while declining merely costs one refactorization.
	ftDiagEps = 1e-6

	// driftEps is the relative disagreement tolerance between the revised
	// engine's incrementally maintained quantities (reduced costs updated
	// per pivot, the entering column's pivot element) and their exact
	// recomputation from the factorization. Exceeding it triggers a
	// refactorization plus exact recompute; exceeding it again immediately
	// after makes the engine decline the solve with a BasisDriftError so
	// the dense authority decides. Dimensionless — applied in relative form
	// driftEps·(1+|exact|).
	driftEps = 1e-7

	// psTol is the infeasibility tolerance of presolve's trivial checks,
	// aligned with the phase-1 feasibility tolerance so presolve and the
	// simplex agree on borderline instances. Applied in per-value relative
	// form psTol·(1+|v|) against the row's own RHS or bound magnitude.
	psTol = feasEps

	// crashSnapEps is the window within which a crash-point coordinate is
	// snapped onto a variable bound during vertex rounding (crash.go).
	// Dimensionless — applied in relative form crashSnapEps·(1+|bound|).
	// Values inside the window are treated as nonbasic at the bound; the
	// row residuals the snap introduces are re-judged against the SCALED
	// feasibility tolerance before the crash basis is accepted.
	crashSnapEps = 1e-9

	// crashRowEps is the per-row residual tolerance for accepting a crash
	// point: after slack completion every standardized row must balance
	// within crashRowEps × the standard form's primal scale, else the
	// crash declines and the solve starts cold. SCALED (absolute
	// residuals against RHS data). Aligned with feasEps so a crash-built
	// start is held to exactly the phase-1 feasibility bar.
	crashRowEps = feasEps

	// crashInstallEps is the STRICT verification tolerance on the basic
	// values of an installed crash basis, in relative form
	// crashInstallEps·(1+|value|). It is deliberately much tighter than
	// the scaled feasibility tolerance: the plan's point is constructed
	// exactly, so a verified refactorization should reproduce it to LU
	// roundoff (~1e-12 relative) — anything larger is a real residual the
	// rounding introduced (e.g. a pass-B column parked on a bound). Phase
	// 2 preserves whatever violation the start carries all the way into a
	// claimed optimum, so install-time leniency here would surface as an
	// infeasible "optimal" vertex and, on the MILP route, a wrong node
	// bound. Declining costs pivots; accepting costs correctness.
	crashInstallEps = 1e-7

	// aggEps is the coefficient-identity tolerance of the aggregation
	// pass (presolve.go): two columns (or rows) merge only when their
	// coefficients match bit-for-bit after Float64bits comparison — aggEps
	// guards only the RHS consistency check of duplicate EQ rows, in
	// relative form aggEps·(1+|rhs|). Dimensionless.
	aggEps = 1e-12

	// borderDiagEps is the relative stability floor of the bordered
	// Sherman–Morrison solve (border.go): the border diagonal f₀[s] must
	// exceed borderDiagEps × ‖f₀‖∞, else the border is torn down and the
	// coupling column re-enters the LU basis. Dimensionless — a ratio
	// within one FTRAN result, same discipline as ftDiagEps; 1e-6 for the
	// same reason (declining costs one refactorization, accepting a tiny
	// divisor poisons every later solve).
	borderDiagEps = 1e-6
)

// borderColCut returns the minimum column density (nonzeros) at which the
// revised engine holds a basis column out of the LU factorization behind a
// Sherman–Morrison border (border.go). Columns below the cut factor in
// place: the bordered solve costs two sparse passes plus a rank-one
// correction, which only pays for itself when the column would otherwise
// densify the U factor — on the paper's min-max family the makespan column
// couples every load row (nnz ≈ m/2), while genuine structural columns
// carry O(1) entries.
func borderColCut(m int) int {
	if c := m / 8; c > 32 {
		return c
	}
	return 32
}

// pow2Scale returns the power-of-two magnitude of v: the smallest 2^k with
// 2^k > |v|, floored at 1 (so |v| ≤ 1 yields 1, and an exact power of two
// yields its double). Power-of-two scales multiply tolerances exactly (no
// rounding), which keeps accept/reject decisions bit-identical across
// power-of-two rescalings of the data. Non-finite input yields 1.
func pow2Scale(v float64) float64 {
	v = math.Abs(v)
	if !(v > 1) || math.IsInf(v, 1) {
		return 1
	}
	// Frexp: v = f·2^e with f ∈ [0.5, 1), so 2^e ∈ [v, 2v).
	_, e := math.Frexp(v)
	return math.Ldexp(1, e)
}

// primalScale is the power-of-two magnitude of a standardized RHS vector —
// the scale factor behind every SCALED tolerance of a solve.
func primalScale(b []float64) float64 {
	mx := 0.0
	for _, v := range b {
		if a := math.Abs(v); a > mx && !math.IsInf(a, 1) {
			mx = a
		}
	}
	return pow2Scale(mx)
}

// feasTol is the phase-1 infeasibility threshold at the given primal scale.
func feasTol(scale float64) float64 { return feasEps * scale }

// warmFeasTol is the primal feasibility tolerance for accepting a warm
// Optimal verdict, scaled to the power-of-two magnitude of the wrapped
// problem's right-hand sides.
func warmFeasTol(p *Problem) float64 {
	mx := 0.0
	for i := range p.rows {
		if r := math.Abs(p.rows[i].RHS); r > mx {
			mx = r
		}
	}
	return warmAcceptEps * pow2Scale(mx)
}

// debugInfeasConfirm, when set, is invoked every time a pattern-kernel cold
// solve concluded Infeasible and the dense authority re-solve disagreed
// (healed a false verdict). Testing aid for the tolerance battery; the
// confirmation itself always runs — the hook only observes it.
var debugInfeasConfirm func(resid float64, denseStatus Status)

// SetInfeasibleConfirmDebug installs an observer for sparse-vs-dense
// infeasibility disagreements (nil disables). See solveCold: any Infeasible
// verdict reached with the sparse pattern kernels is confirmed by a dense
// re-solve before it escapes, because a numerically exploded tableau can
// manufacture arbitrarily large phase-1 residuals (the recorded defect
// reached 1e30) that no residual threshold can tell from genuine
// infeasibility.
func SetInfeasibleConfirmDebug(f func(resid float64, denseStatus Status)) {
	debugInfeasConfirm = f
}

// ToleranceFingerprint returns a short, stable fingerprint of the LP
// layer's tolerance configuration: the hash of every named epsilon above,
// in fixed order. Persistent artifacts derived from solver answers (the
// serve layer's disk-backed cache snapshots) embed it, so an entry written
// by a binary with different tolerance semantics — where the same instance
// may legitimately converge to a different vertex — is detected and
// dropped at load instead of being replayed as a wrong answer.
func ToleranceFingerprint() string {
	vals := []float64{
		costEps, pivotEps, feasEps, ratioTieEps, boundSnapEps,
		progressRelEps, artPivotEps, dualFeasEps, dualPivotEps,
		warmAcceptEps, revSanityEps, luTau, ftDiagEps, driftEps,
		psTol, crashSnapEps, crashRowEps, crashInstallEps, aggEps,
		borderDiagEps,
	}
	h := sha256.New()
	var buf [8]byte
	for _, v := range vals {
		binary.LittleEndian.PutUint64(buf[:], math.Float64bits(v))
		h.Write(buf[:])
	}
	return "lptol-" + hex.EncodeToString(h.Sum(nil))[:16]
}
