package lp

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/lina"
	"repro/internal/stats"
)

func solveOK(t *testing.T, p *Problem) *Solution {
	t.Helper()
	sol, err := p.Solve()
	if err != nil {
		t.Fatalf("Solve error: %v", err)
	}
	if sol.Status != Optimal {
		t.Fatalf("status = %v, want optimal", sol.Status)
	}
	return sol
}

func TestSimple2D(t *testing.T) {
	// max 3x + 5y  s.t. x ≤ 4, 2y ≤ 12, 3x + 2y ≤ 18, x,y ≥ 0
	// (classic Dantzig example; optimum x=2, y=6, obj=36)
	p := NewProblem()
	x := p.AddVariable(0, Inf, -3, "x")
	y := p.AddVariable(0, Inf, -5, "y")
	p.AddConstraint([]Term{{x, 1}}, LE, 4, "")
	p.AddConstraint([]Term{{y, 2}}, LE, 12, "")
	p.AddConstraint([]Term{{x, 3}, {y, 2}}, LE, 18, "")
	sol := solveOK(t, p)
	if math.Abs(sol.X[x]-2) > 1e-8 || math.Abs(sol.X[y]-6) > 1e-8 {
		t.Fatalf("x = %v", sol.X)
	}
	if math.Abs(sol.Obj+36) > 1e-8 {
		t.Fatalf("obj = %v, want -36", sol.Obj)
	}
}

func TestEqualityConstraint(t *testing.T) {
	// min x + y  s.t. x + y = 10, x - y = 2 → x=6, y=4
	p := NewProblem()
	x := p.AddVariable(0, Inf, 1, "x")
	y := p.AddVariable(0, Inf, 1, "y")
	p.AddConstraint([]Term{{x, 1}, {y, 1}}, EQ, 10, "")
	p.AddConstraint([]Term{{x, 1}, {y, -1}}, EQ, 2, "")
	sol := solveOK(t, p)
	if math.Abs(sol.X[x]-6) > 1e-8 || math.Abs(sol.X[y]-4) > 1e-8 {
		t.Fatalf("x = %v", sol.X)
	}
}

func TestGEConstraints(t *testing.T) {
	// Diet-style: min 2a + 3b  s.t. a + b ≥ 10, a ≥ 3 → a=10 (b=0)? cost 20
	// versus a=3,b=7: 6+21=27. So optimum a=10, b=0, obj 20.
	p := NewProblem()
	a := p.AddVariable(0, Inf, 2, "a")
	b := p.AddVariable(0, Inf, 3, "b")
	p.AddConstraint([]Term{{a, 1}, {b, 1}}, GE, 10, "")
	p.AddConstraint([]Term{{a, 1}}, GE, 3, "")
	sol := solveOK(t, p)
	if math.Abs(sol.Obj-20) > 1e-8 {
		t.Fatalf("obj = %v, want 20 (x=%v)", sol.Obj, sol.X)
	}
}

func TestVariableBounds(t *testing.T) {
	// min -x with 1 ≤ x ≤ 5 → x = 5.
	p := NewProblem()
	x := p.AddVariable(1, 5, -1, "x")
	sol := solveOK(t, p)
	if math.Abs(sol.X[x]-5) > 1e-9 {
		t.Fatalf("x = %v", sol.X[x])
	}
	// min +x → x = 1.
	p.SetCost(x, 1)
	sol = solveOK(t, p)
	if math.Abs(sol.X[x]-1) > 1e-9 {
		t.Fatalf("x = %v", sol.X[x])
	}
}

func TestFixedVariable(t *testing.T) {
	p := NewProblem()
	x := p.AddVariable(3, 3, 1, "x")
	y := p.AddVariable(0, Inf, 1, "y")
	p.AddConstraint([]Term{{x, 1}, {y, 1}}, GE, 5, "")
	sol := solveOK(t, p)
	if sol.X[x] != 3 || math.Abs(sol.X[y]-2) > 1e-8 {
		t.Fatalf("x = %v", sol.X)
	}
}

func TestFreeVariable(t *testing.T) {
	// min x  s.t. x ≥ -7 expressed as a row, x free → x = -7.
	p := NewProblem()
	x := p.AddVariable(-Inf, Inf, 1, "x")
	p.AddConstraint([]Term{{x, 1}}, GE, -7, "")
	sol := solveOK(t, p)
	if math.Abs(sol.X[x]+7) > 1e-8 {
		t.Fatalf("x = %v", sol.X[x])
	}
}

func TestNegativeUpperBoundOnly(t *testing.T) {
	// Variable with only an upper bound, pushed negative: min x, x ≤ -2,
	// x ≥ -10 via a row.
	p := NewProblem()
	x := p.AddVariable(-Inf, -2, 1, "x")
	p.AddConstraint([]Term{{x, 1}}, GE, -10, "")
	sol := solveOK(t, p)
	if math.Abs(sol.X[x]+10) > 1e-8 {
		t.Fatalf("x = %v", sol.X[x])
	}
}

func TestInfeasibleBounds(t *testing.T) {
	p := NewProblem()
	p.AddVariable(5, 3, 1, "x")
	sol, err := p.Solve()
	if err != nil || sol.Status != Infeasible {
		t.Fatalf("status = %v err = %v, want infeasible", sol.Status, err)
	}
}

func TestInfeasibleRows(t *testing.T) {
	p := NewProblem()
	x := p.AddVariable(0, Inf, 1, "x")
	p.AddConstraint([]Term{{x, 1}}, LE, 2, "")
	p.AddConstraint([]Term{{x, 1}}, GE, 5, "")
	sol, err := p.Solve()
	if err != nil || sol.Status != Infeasible {
		t.Fatalf("status = %v err = %v, want infeasible", sol.Status, err)
	}
}

func TestUnbounded(t *testing.T) {
	p := NewProblem()
	x := p.AddVariable(0, Inf, -1, "x")
	p.AddConstraint([]Term{{x, 1}}, GE, 1, "")
	sol, err := p.Solve()
	if err != nil || sol.Status != Unbounded {
		t.Fatalf("status = %v err = %v, want unbounded", sol.Status, err)
	}
}

func TestNoConstraints(t *testing.T) {
	p := NewProblem()
	x := p.AddVariable(0, 10, 2, "x")
	sol := solveOK(t, p)
	if sol.X[x] != 0 || sol.Obj != 0 {
		t.Fatalf("sol = %+v", sol)
	}
}

func TestRedundantRows(t *testing.T) {
	p := NewProblem()
	x := p.AddVariable(0, Inf, 1, "x")
	y := p.AddVariable(0, Inf, 1, "y")
	p.AddConstraint([]Term{{x, 1}, {y, 1}}, EQ, 4, "")
	p.AddConstraint([]Term{{x, 2}, {y, 2}}, EQ, 8, "") // redundant
	sol := solveOK(t, p)
	if math.Abs(sol.X[x]+sol.X[y]-4) > 1e-8 {
		t.Fatalf("x = %v", sol.X)
	}
}

func TestDegenerateLP(t *testing.T) {
	// A classic degenerate instance (Beale's cycling example structure).
	p := NewProblem()
	x1 := p.AddVariable(0, Inf, -0.75, "x1")
	x2 := p.AddVariable(0, Inf, 150, "x2")
	x3 := p.AddVariable(0, Inf, -0.02, "x3")
	x4 := p.AddVariable(0, Inf, 6, "x4")
	p.AddConstraint([]Term{{x1, 0.25}, {x2, -60}, {x3, -0.04}, {x4, 9}}, LE, 0, "")
	p.AddConstraint([]Term{{x1, 0.5}, {x2, -90}, {x3, -0.02}, {x4, 3}}, LE, 0, "")
	p.AddConstraint([]Term{{x3, 1}}, LE, 1, "")
	sol := solveOK(t, p)
	if math.Abs(sol.Obj-(-0.05)) > 1e-8 {
		t.Fatalf("obj = %v, want -0.05", sol.Obj)
	}
}

func TestDualsKnown(t *testing.T) {
	// max 3x+5y (Dantzig): duals of the three LE rows (for the max problem)
	// are 0, 1.5, 1. We solve min -3x-5y, so our LE duals are ≤ 0 and equal
	// the negated classical values.
	p := NewProblem()
	x := p.AddVariable(0, Inf, -3, "x")
	y := p.AddVariable(0, Inf, -5, "y")
	p.AddConstraint([]Term{{x, 1}}, LE, 4, "")
	p.AddConstraint([]Term{{y, 2}}, LE, 12, "")
	p.AddConstraint([]Term{{x, 3}, {y, 2}}, LE, 18, "")
	sol := solveOK(t, p)
	want := []float64{0, -1.5, -1}
	for i, w := range want {
		if math.Abs(sol.Dual[i]-w) > 1e-8 {
			t.Fatalf("dual = %v, want %v", sol.Dual, want)
		}
	}
}

// randomLP builds a random LP with x ≥ 0 and mixed-sense rows that is
// guaranteed feasible (x=feasible point is built in) and bounded (costs are
// positive, variables have finite upper bounds).
func randomLP(r *stats.RNG, n, m int) *Problem {
	p := NewProblem()
	for j := 0; j < n; j++ {
		p.AddVariable(0, r.Range(2, 10), r.Range(0.1, 5), "")
	}
	feas := make([]float64, n)
	for j := range feas {
		lo, hi := p.Bounds(j)
		feas[j] = r.Range(lo, hi)
	}
	for i := 0; i < m; i++ {
		terms := make([]Term, 0, n)
		val := 0.0
		for j := 0; j < n; j++ {
			c := r.Range(-3, 3)
			terms = append(terms, Term{j, c})
			val += c * feas[j]
		}
		switch r.Intn(3) {
		case 0:
			p.AddConstraint(terms, LE, val+r.Range(0, 2), "")
		case 1:
			p.AddConstraint(terms, GE, val-r.Range(0, 2), "")
		default:
			p.AddConstraint(terms, EQ, val, "")
		}
	}
	return p
}

// Property: solutions are feasible and the objective matches cᵀx.
func TestRandomFeasibility(t *testing.T) {
	f := func(seed uint64) bool {
		r := stats.NewRNG(seed)
		p := randomLP(r, 2+r.Intn(6), 1+r.Intn(6))
		sol, err := p.Solve()
		if err != nil {
			return false
		}
		if sol.Status != Optimal {
			// Feasible by construction; must be optimal.
			return false
		}
		if p.MaxViolation(sol.X) > 1e-6 {
			return false
		}
		return math.Abs(p.Objective(sol.X)-sol.Obj) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: strong duality bᵀy = cᵀx holds for problems whose variable
// bounds are inactive at the optimum... in general bounds contribute, so we
// verify the full KKT identity instead: cᵀx* = bᵀy* + Σ_j r_j·x*_j where
// r_j = c_j - Σ_i y_i a_ij is the reduced cost (complementary slackness puts
// x_j at 0 or at its bound when r_j ≠ 0).
func TestStrongDualityProperty(t *testing.T) {
	f := func(seed uint64) bool {
		r := stats.NewRNG(seed)
		n, m := 2+r.Intn(5), 1+r.Intn(5)
		p := randomLP(r, n, m)
		sol, err := p.Solve()
		if err != nil || sol.Status != Optimal {
			return false
		}
		// Reduced costs.
		red := make([]float64, n)
		for j := 0; j < n; j++ {
			red[j] = p.Cost(j)
		}
		for i := 0; i < p.NumConstraints(); i++ {
			for _, tm := range p.rows[i].Terms {
				red[tm.Var] -= sol.Dual[i] * tm.Coef
			}
		}
		lhs := sol.Obj
		rhs := 0.0
		for i := 0; i < p.NumConstraints(); i++ {
			rhs += sol.Dual[i] * p.rows[i].RHS
		}
		for j := 0; j < n; j++ {
			rhs += red[j] * sol.X[j]
		}
		return math.Abs(lhs-rhs) < 1e-5*(1+math.Abs(lhs))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// bruteForce finds the optimum of a small LP by enumerating all candidate
// vertices: every subset of n constraints (rows as equalities plus active
// bounds) is solved as a linear system; feasible solutions are compared.
func bruteForce(p *Problem) (float64, bool) {
	n := p.NumVariables()
	// Candidate hyperplanes: each row (as equality) and each finite bound.
	type plane struct {
		coefs []float64
		rhs   float64
	}
	var planes []plane
	for i := range p.rows {
		cs := make([]float64, n)
		for _, t := range p.rows[i].Terms {
			cs[t.Var] += t.Coef
		}
		planes = append(planes, plane{cs, p.rows[i].RHS})
	}
	for j := 0; j < n; j++ {
		lo, hi := p.Bounds(j)
		if !math.IsInf(lo, -1) {
			cs := make([]float64, n)
			cs[j] = 1
			planes = append(planes, plane{cs, lo})
		}
		if !math.IsInf(hi, 1) {
			cs := make([]float64, n)
			cs[j] = 1
			planes = append(planes, plane{cs, hi})
		}
	}
	best, found := math.Inf(1), false
	idx := make([]int, n)
	var rec func(start, k int)
	rec = func(start, k int) {
		if k == n {
			a := lina.NewMatrix(n, n)
			b := make([]float64, n)
			for r, pi := range idx {
				copy(a.Row(r), planes[pi].coefs)
				b[r] = planes[pi].rhs
			}
			x, err := lina.SolveSquare(a, b)
			if err != nil {
				return
			}
			if p.MaxViolation(x) < 1e-7 {
				if obj := p.Objective(x); obj < best {
					best, found = obj, true
				}
			}
			return
		}
		for i := start; i < len(planes); i++ {
			idx[k] = i
			rec(i+1, k+1)
		}
	}
	rec(0, 0)
	return best, found
}

// Property: the simplex optimum matches independent vertex enumeration.
func TestAgainstBruteForceProperty(t *testing.T) {
	f := func(seed uint64) bool {
		r := stats.NewRNG(seed)
		n, m := 2+r.Intn(3), 1+r.Intn(4) // small enough to enumerate
		p := randomLP(r, n, m)
		sol, err := p.Solve()
		if err != nil || sol.Status != Optimal {
			return false
		}
		want, found := bruteForce(p)
		if !found {
			return false
		}
		return math.Abs(sol.Obj-want) < 1e-5*(1+math.Abs(want))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestCloneIndependent(t *testing.T) {
	p := NewProblem()
	x := p.AddVariable(0, 1, 1, "x")
	p.AddConstraint([]Term{{x, 1}}, LE, 1, "")
	c := p.Clone()
	c.SetCost(x, -1)
	c.SetBounds(x, 0, 5)
	c.AddConstraint([]Term{{x, 1}}, GE, 0, "")
	if p.Cost(x) != 1 || p.NumConstraints() != 1 {
		t.Fatal("Clone mutated original")
	}
}

func TestConstraintHelpers(t *testing.T) {
	c := Constraint{Terms: []Term{{0, 2}, {1, -1}}, Sense: LE, RHS: 3}
	x := []float64{2, 0}
	if v := c.Value(x); v != 4 {
		t.Fatalf("Value = %v", v)
	}
	if v := c.Violation(x); v != 1 {
		t.Fatalf("Violation = %v", v)
	}
	c.Sense = GE
	if v := c.Violation(x); v != 0 {
		t.Fatalf("GE Violation = %v", v)
	}
	c.Sense = EQ
	if v := c.Violation(x); v != 1 {
		t.Fatalf("EQ Violation = %v", v)
	}
}

func TestLargerDenseLP(t *testing.T) {
	// Transportation-style problem with known optimum:
	// 3 suppliers (cap 20, 30, 25), 4 consumers (demand 10, 25, 15, 20),
	// random-ish costs; we only assert supply/demand feasibility and that
	// the objective is no worse than a greedy feasible shipment.
	supply := []float64{20, 30, 25}
	demand := []float64{10, 25, 15, 20}
	cost := [][]float64{
		{2, 3, 1, 4},
		{5, 1, 3, 2},
		{2, 2, 2, 6},
	}
	p := NewProblem()
	idx := make([][]int, len(supply))
	for i := range supply {
		idx[i] = make([]int, len(demand))
		for j := range demand {
			idx[i][j] = p.AddVariable(0, Inf, cost[i][j], "")
		}
	}
	for i, s := range supply {
		terms := make([]Term, len(demand))
		for j := range demand {
			terms[j] = Term{idx[i][j], 1}
		}
		p.AddConstraint(terms, LE, s, "")
	}
	for j, d := range demand {
		terms := make([]Term, len(supply))
		for i := range supply {
			terms[i] = Term{idx[i][j], 1}
		}
		p.AddConstraint(terms, EQ, d, "")
	}
	sol := solveOK(t, p)
	if p.MaxViolation(sol.X) > 1e-7 {
		t.Fatalf("infeasible solution, violation %v", p.MaxViolation(sol.X))
	}
	// Optimal cost computed by hand/enumeration for this instance is 115.
	if sol.Obj > 115+1e-6 {
		t.Fatalf("obj = %v, want ≤ 115", sol.Obj)
	}
}
