package lp

// Devex pricing (Forrest & Goldfarb 1992) — approximate steepest-edge
// reference weights for both simplex directions.
//
// Dantzig pricing picks the most negative reduced cost; on the paper's long
// thin T-series polytopes that happily marches along near-degenerate edges,
// because a large d_j says nothing about how far the edge actually travels.
// Steepest edge normalizes by the true edge norm ‖B⁻¹a_j‖ but costs an
// extra BTRAN per pivot to maintain. Devex keeps a cheap running
// overestimate γ_j ≈ ‖B⁻¹a_j‖² relative to a reference framework (the
// nonbasic set at the last reset) and selects max d²/γ; the weights update
// from quantities the pivot computes anyway (the pivot row and the pivot
// element). The weights only steer pivot ORDER — every verdict still rests
// on reduced-cost signs under costEps, so devex can change which
// tied-optimal vertex a solve lands on but never feasibility/optimality.
//
// Resets: weights restart at 1 (reference framework := current nonbasic
// set) whenever a weight grows past devexWeightCap — the classical signal
// that the reference framework is stale — and at every refactorization,
// where the engine also recomputes exact reduced costs (the "exact-Dantzig
// periodic reset": after it, one devex round is exactly Dantzig on fresh
// duals until the weights differentiate again).

// devexWeightCap triggers a reference-framework reset. Forrest–Goldfarb
// suggest retiring the frame when weights grow by ~1e4..1e8; past that the
// overestimate is so loose it degenerates to noisy Dantzig. Dimensionless
// (weights are squared ratios of tableau entries).
const devexWeightCap = 1e7

// devexReset restarts the reference framework at the current nonbasic set:
// every weight returns to 1.
func (rv *revEngine) devexReset() {
	for j := range rv.gamma {
		rv.gamma[j] = 1
	}
}

// devexUpdate folds one pivot into the weights. alphaE is the pivot
// element; the candidate columns' pivot-row entries arrive via the
// accumulator support (rv.acc over rv.accTouch, built by pivotRow). gammaE
// is the entering column's weight at selection time. Returns true when a
// weight passed devexWeightCap and the caller should reset the framework.
func (rv *revEngine) devexUpdate(r int, e int, alphaE float64, gammaE float64) bool {
	inv2 := 1 / (alphaE * alphaE)
	blown := false
	for _, j32 := range rv.accTouch {
		j := int(j32)
		if j == e || rv.inBase[j] {
			continue
		}
		aj := rv.acc[j]
		if aj == 0 {
			continue
		}
		if cand := aj * aj * inv2 * gammaE; cand > rv.gamma[j] {
			rv.gamma[j] = cand
			if cand > devexWeightCap {
				blown = true
			}
		}
	}
	// The leaving variable joins the nonbasic set with the entering
	// column's weight seen through the pivot: γ_leave = max(γ_e/α_e², 1).
	gl := gammaE * inv2
	if gl < 1 {
		gl = 1
	}
	rv.gamma[rv.basis[r]] = gl
	if gl > devexWeightCap {
		blown = true
	}
	return blown
}

// dualDevex carries the dual simplex's row weights: w_i ≈ ‖e_i·B⁻¹‖²
// relative to a reference framework of basic variables. The dual devex rule
// picks the leaving row maximizing violation²/w_i — the dual analogue of
// the primal rule, steering the warm path away from rows whose BTRAN row is
// long (and whose pivots therefore move the duals the least per unit of
// tableau work).
type dualDevex struct {
	w []float64
}

// reset restarts the reference framework: unit weights for all m rows.
func (dd *dualDevex) reset(m int) {
	if cap(dd.w) < m {
		dd.w = make([]float64, m)
	}
	dd.w = dd.w[:m]
	for i := range dd.w {
		dd.w[i] = 1
	}
}

// update folds one dual pivot into the row weights given the leaving row r,
// its pivot element alphaRE, and the pivot column alpha (α_ie per row i,
// dense). Returns true when a weight blew past devexWeightCap and the
// caller should reset.
func (dd *dualDevex) update(r int, alphaRE float64, alpha []float64) bool {
	inv2 := 1 / (alphaRE * alphaRE)
	wr := dd.w[r]
	blown := false
	for i := range alpha {
		if i == r {
			continue
		}
		ai := alpha[i]
		if ai == 0 {
			continue
		}
		if cand := ai * ai * inv2 * wr; cand > dd.w[i] {
			dd.w[i] = cand
			if cand > devexWeightCap {
				blown = true
			}
		}
	}
	nr := wr * inv2
	if nr < 1 {
		nr = 1
	}
	dd.w[r] = nr
	if nr > devexWeightCap {
		blown = true
	}
	return blown
}
