package lp

// Sparse LU basis factorization with Forrest–Tomlin updates — the engine
// room of the revised simplex (revised.go).
//
// The basis matrix B of the paper's allocation LPs is a selection of
// original columns: slacks (1 nonzero), assignment columns (2–3), the
// makespan column (one per load row), artificials (1). PR 4 represented
// B⁻¹ as a product-form-inverse eta file rebuilt every 64 pivots; the
// rebuild scanned the whole file per column (O(m·fill) skip checks) and
// profiled at 40% of a cold N=2048 solve. This file replaces it with the
// classical sparse-LU design:
//
//   - factor() runs a left-looking Gilbert–Peierls factorization over the
//     basis columns in sparsest-column-first order with threshold row
//     pivoting (Markowitz-style: among rows within luTau of the column
//     max, the smallest static row count wins). Each column's L-solve
//     visits only the etas reachable from its pattern (a DFS over the
//     L dependency DAG), so the factorization cost tracks fill, not m².
//
//   - The U factor is dynamic: entries live in paired column-wise and
//     row-wise adjacency lists keyed by stable pivot ids, with the
//     triangular ORDER maintained as a doubly-linked sequence under
//     monotone uint64 keys. Moving a pivot to the end of the order — the
//     heart of a Forrest–Tomlin update — is O(1) and never renumbers
//     anything.
//
//   - update() replaces one U column with the spike (the entering column
//     after the L and eta passes), eliminates the stale row of U via a
//     sparse triangular closure driven by a key-ordered heap, appends the
//     multipliers as one row eta to the H file, and moves the pivot id to
//     the sequence tail. The new diagonal is tested against ftDiagEps
//     before anything is mutated; a failed test reports false and the
//     caller refactorizes from the basis columns instead (the
//     Bartels–Golub-style recovery rung — see DESIGN.md for the full
//     fallback ladder, which ends at the dense tableau authority).
//
//   - ftran/btranUnit are adaptive between two U-solve strategies. A
//     Gilbert–Peierls DFS over the U adjacency computes the topological
//     closure of the input support, so a genuinely sparse solve costs
//     O(closure), not O(m). But the closure is ABORTED past m/8 visited
//     pivots: on the paper's min-max LPs the makespan column couples every
//     load row, the closure routinely reaches ~40% of m, and at that
//     density the branchy DFS with its cache-missing visited marks loses
//     to a plain walk of the pivot sequence (measured: the hybrid saves
//     ~20% of a cold N=16384 solve over DFS-always). Dense variants
//     (ftranDense/btranDense) serve the x_B refresh and exact pricing
//     resets, where the input is dense anyway.
//
// All scratch lives in the luFactor and is reused across solves via the
// revised engine's pool; steady-state operation allocates nothing.

import (
	"math"
)

// luEnt is one off-diagonal entry of the dynamic U factor, identified by
// the stable pivot id of its other axis. The id's constraint row is cached
// alongside (id↔row bindings never change between factorizations, and the
// row field fits in what was struct padding): the solve scatters are row
// addressed, and the cached copy saves a cache-missing rowOfId lookup per
// entry in the hottest loops.
type luEnt struct {
	id  int32
	row int32 // == rowOfId[id], cached at insertion
	val float64
}

const (
	// luMaxUpdates caps Forrest–Tomlin updates between refactorizations.
	// Updates append one row eta each; past a couple hundred the eta file
	// costs more to apply than a rebuild costs to run.
	luMaxUpdates = 192

	// luGrowthFactor / luGrowthSlack trigger adaptive reinversion: the
	// factor is rebuilt when nnz(L)+nnz(U)+fill(H) exceeds
	// luGrowthFactor × its post-factorization size plus the slack. This
	// replaces PR 4's fixed 64-pivot interval — a stable basis sequence
	// runs to luMaxUpdates, a fill-heavy one rebuilds early.
	luGrowthFactor = 3
	luGrowthSlack  = 512
)

// luFactor is a sparse LU factorization of a simplex basis, maintained
// across pivots by Forrest–Tomlin updates. It maps between two index
// spaces: ROWS of the constraint matrix and basis SLOTS (positions in the
// engine's basis array); pivot ids tie one row to one slot each.
type luFactor struct {
	m int

	// L from the last factorization: one column eta per pivot step, flat.
	// Eta k scatters from pivot row lR[k] into the then-unpivoted rows.
	lR   []int32
	lOff []int32 // len(lR)+1 offsets into lIdx/lVal
	lIdx []int32
	lVal []float64

	// H: Forrest–Tomlin row etas appended by update(), flat. Eta k
	// subtracts Σ hVal·w[hIdx] from w[hR[k]] in ftran (a gather) and
	// scatters in btran.
	hR   []int32
	hOff []int32
	hIdx []int32
	hVal []float64

	// U over stable pivot ids: diagonal per id, strictly-above-diagonal
	// entries in paired column/row lists, and the triangular order as a
	// doubly-linked sequence under monotone keys.
	udiag    []float64
	ucol     [][]luEnt // ucol[k]: entries (i, U_ik) with key[i] < key[k]
	urow     [][]luEnt // urow[k]: entries (j, U_kj) with key[j] > key[k]
	rowOfId  []int32
	slotOfId []int32
	idOfRow  []int32
	idOfSlot []int32
	key      []uint64
	seqNext  []int32
	seqPrev  []int32
	seqHead  int32
	seqTail  int32
	keyCtr   uint64

	// Fill accounting for the adaptive reinversion trigger.
	nnzL, nnzU int
	hFill      int
	baseSize   int
	updates    int

	// Dense solve vectors with lazy support-tracked clearing. xSlot/yRow
	// hold the latest ftran/btran result; valid until the next call.
	wrow   []float64 // ftran working vector (row space)
	xSlot  []float64 // ftran result (slot space)
	xTouch []int32
	xDense bool
	yRow   []float64 // btran result (row space)
	yTouch []int32
	yDense bool

	// Spike of the last ftran(saveSpike=true): the entering column after
	// the L and H passes, the input of the next update().
	spikeDense []float64
	spikeRows  []int32
	spikeMax   float64

	// Scratch: row marks for support tracking, id stamps for heap
	// membership, the key-ordered heap, DFS state for the L reach, the
	// update closure accumulator (dense by id), and multiplier buffers.
	mark     []int32
	gen      int32
	touch    []int32
	hmark    []int32
	hgen     int32
	heap     []int32
	topo     []int32
	stack    []int32
	stackT   []int32
	rvis     []int32
	rgen     int32
	g        []float64
	multIds  []int32
	multVals []float64
	rcount   []int32
	order    []int32
	sortCnt  []int32

	// Arena behind the per-id ucol/urow slices; see entPool.
	ents entPool
}

// entPool is a grow-only arena of luEnt storage reused across
// factorizations: reset rewinds the carve cursor instead of freeing each
// id's slice, so the U column/row appends stop churning the heap. (Before
// the arena, the permutation shifting between refactorizations meant the
// per-id capacities rarely fit the next round — the urow append alone
// showed up as thousands of allocations per solve at scale.) A slice that
// outgrows its carve is moved to a double-size carve; appends never fall
// back to the heap while a block has room.
type entPool struct {
	blocks [][]luEnt
	bi     int // block being carved
	used   int // entries carved from blocks[bi]
}

// entBlock is the arena block granularity: 8192 luEnts = 128 KiB.
const entBlock = 8192

func (ep *entPool) reset() { ep.bi, ep.used = 0, 0 }

// carve returns a zero-length slice with capacity c backed by the arena.
// The three-index slice pins cap at the carve boundary, so an append past
// it cannot bleed into a neighbouring carve.
func (ep *entPool) carve(c int) []luEnt {
	for {
		if ep.bi >= len(ep.blocks) {
			sz := entBlock
			if c > sz {
				sz = c
			}
			ep.blocks = append(ep.blocks, make([]luEnt, sz))
		}
		b := ep.blocks[ep.bi]
		if ep.used+c <= len(b) {
			s := b[ep.used : ep.used : ep.used+c]
			ep.used += c
			return s
		}
		ep.bi++
		ep.used = 0
	}
}

// regrow moves s to a carve of twice its capacity.
func (ep *entPool) regrow(s []luEnt) []luEnt {
	c := 2 * cap(s)
	if c < 4 {
		c = 4
	}
	ns := ep.carve(c)[:len(s)]
	copy(ns, s)
	return ns
}

// entAppend appends e to s, growing through the arena instead of the heap.
func (lu *luFactor) entAppend(s []luEnt, e luEnt) []luEnt {
	if len(s) == cap(s) {
		s = lu.ents.regrow(s)
	}
	return append(s, e)
}

// grow32 / growF resize helpers keeping capacity across pooled reuse.
func grow32(s []int32, n int) []int32 {
	if cap(s) < n {
		return make([]int32, n)
	}
	return s[:n]
}

func growF(s []float64, n int) []float64 {
	if cap(s) < n {
		return make([]float64, n)
	}
	return s[:n]
}

// reset prepares the factor for a fresh factorization at dimension m,
// reusing every buffer it can.
func (lu *luFactor) reset(m int) {
	// Clear stale solve scratch FIRST: the touch lists index the previous
	// dimension, which may exceed the new m once the vectors are truncated.
	if lu.xSlot != nil {
		lu.clearX()
		lu.clearY()
		lu.clearSpike()
	}
	grew := m > lu.m
	lu.m = m
	lu.lR = lu.lR[:0]
	if len(lu.lOff) == 0 {
		lu.lOff = append(lu.lOff, 0)
	}
	lu.lOff = lu.lOff[:1]
	lu.lIdx = lu.lIdx[:0]
	lu.lVal = lu.lVal[:0]
	lu.hR = lu.hR[:0]
	if len(lu.hOff) == 0 {
		lu.hOff = append(lu.hOff, 0)
	}
	lu.hOff = lu.hOff[:1]
	lu.hIdx = lu.hIdx[:0]
	lu.hVal = lu.hVal[:0]

	lu.udiag = growF(lu.udiag, m)
	if cap(lu.ucol) < m {
		nc := make([][]luEnt, m)
		copy(nc, lu.ucol)
		lu.ucol = nc
		nr := make([][]luEnt, m)
		copy(nr, lu.urow)
		lu.urow = nr
	} else {
		lu.ucol = lu.ucol[:m]
		lu.urow = lu.urow[:m]
	}
	// Hand every id's U storage back to the arena (the headers are
	// re-carved on first append); rewinding the cursor frees everything at
	// once.
	for k := 0; k < m; k++ {
		lu.ucol[k] = nil
		lu.urow[k] = nil
	}
	lu.ents.reset()
	lu.rowOfId = grow32(lu.rowOfId, m)
	lu.slotOfId = grow32(lu.slotOfId, m)
	lu.idOfRow = grow32(lu.idOfRow, m)
	lu.idOfSlot = grow32(lu.idOfSlot, m)
	for i := 0; i < m; i++ {
		lu.idOfRow[i] = -1
		lu.idOfSlot[i] = -1
	}
	if cap(lu.key) < m {
		lu.key = make([]uint64, m)
	} else {
		lu.key = lu.key[:m]
	}
	lu.seqNext = grow32(lu.seqNext, m)
	lu.seqPrev = grow32(lu.seqPrev, m)
	lu.nnzL, lu.nnzU, lu.hFill, lu.updates = 0, 0, 0, 0

	lu.wrow = growF(lu.wrow, m)
	lu.xSlot = growF(lu.xSlot, m)
	lu.yRow = growF(lu.yRow, m)
	lu.spikeDense = growF(lu.spikeDense, m)
	if grew {
		for i := range lu.wrow {
			lu.wrow[i] = 0
		}
		for i := range lu.xSlot {
			lu.xSlot[i] = 0
		}
		for i := range lu.yRow {
			lu.yRow[i] = 0
		}
		for i := range lu.spikeDense {
			lu.spikeDense[i] = 0
		}
		lu.xDense, lu.yDense = false, false
		lu.xTouch = lu.xTouch[:0]
		lu.yTouch = lu.yTouch[:0]
		lu.spikeRows = lu.spikeRows[:0]
	}
	lu.mark = grow32(lu.mark, m)
	lu.hmark = grow32(lu.hmark, m)
	lu.rvis = grow32(lu.rvis, m)
	if grew {
		for i := 0; i < m; i++ {
			lu.mark[i] = 0
			lu.hmark[i] = 0
			lu.rvis[i] = 0
		}
		lu.gen, lu.hgen, lu.rgen = 0, 0, 0
	}
	lu.g = growF(lu.g, m)
	if grew {
		for i := range lu.g {
			lu.g[i] = 0
		}
	}
	lu.rcount = grow32(lu.rcount, m)
	lu.order = grow32(lu.order, m)
}

func (lu *luFactor) clearX() {
	if lu.xDense {
		for i := range lu.xSlot {
			lu.xSlot[i] = 0
		}
		lu.xDense = false
	} else {
		for _, s := range lu.xTouch {
			lu.xSlot[s] = 0
		}
	}
	lu.xTouch = lu.xTouch[:0]
}

func (lu *luFactor) clearY() {
	if lu.yDense {
		for i := range lu.yRow {
			lu.yRow[i] = 0
		}
		lu.yDense = false
	} else {
		for _, r := range lu.yTouch {
			lu.yRow[r] = 0
		}
	}
	lu.yTouch = lu.yTouch[:0]
}

func (lu *luFactor) clearSpike() {
	for _, r := range lu.spikeRows {
		lu.spikeDense[r] = 0
	}
	lu.spikeRows = lu.spikeRows[:0]
	lu.spikeMax = 0
}

func (lu *luFactor) bumpGen() int32 {
	lu.gen++
	if lu.gen < 0 {
		for i := range lu.mark {
			lu.mark[i] = 0
		}
		lu.gen = 1
	}
	return lu.gen
}

func (lu *luFactor) bumpHGen() int32 {
	lu.hgen++
	if lu.hgen < 0 {
		for i := range lu.hmark {
			lu.hmark[i] = 0
		}
		lu.hgen = 1
	}
	return lu.hgen
}

// size is the fill monitor behind the adaptive reinversion trigger.
func (lu *luFactor) size() int { return lu.nnzL + lu.nnzU + lu.hFill }

// needRefactor reports whether the update file grew past its budget.
func (lu *luFactor) needRefactor() bool {
	return lu.updates >= luMaxUpdates || lu.size() > lu.baseSize*luGrowthFactor+luGrowthSlack
}

// Key-ordered binary heaps over pivot ids. Keys are unique (monotone
// counter), so pop order — and therefore every solve — is deterministic.

func (lu *luFactor) heapPushMin(id int32) {
	h := append(lu.heap, id)
	i := len(h) - 1
	for i > 0 {
		p := (i - 1) / 2
		if lu.key[h[p]] <= lu.key[h[i]] {
			break
		}
		h[p], h[i] = h[i], h[p]
		i = p
	}
	lu.heap = h
}

func (lu *luFactor) heapPopMin() int32 {
	h := lu.heap
	top := h[0]
	last := len(h) - 1
	h[0] = h[last]
	h = h[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		s := i
		if l < last && lu.key[h[l]] < lu.key[h[s]] {
			s = l
		}
		if r < last && lu.key[h[r]] < lu.key[h[s]] {
			s = r
		}
		if s == i {
			break
		}
		h[i], h[s] = h[s], h[i]
		i = s
	}
	lu.heap = h
	return top
}

// reach computes the L etas that fire for a vector whose support rows are
// in touch, in application (topological) order — the Gilbert–Peierls
// reachability DFS over the L dependency DAG (eta k → etas pivoting the
// rows it scatters into). Cost is proportional to the reach set, not the
// eta count.
func (lu *luFactor) reach(touch []int32) []int32 {
	lu.rgen++
	if lu.rgen < 0 {
		for i := range lu.rvis {
			lu.rvis[i] = 0
		}
		lu.rgen = 1
	}
	rgen := lu.rgen
	topo := lu.topo[:0]
	stack := lu.stack[:0]
	stackT := lu.stackT[:0]
	for _, rr := range touch {
		k0 := lu.idOfRow[rr]
		if k0 < 0 || lu.rvis[k0] == rgen {
			continue
		}
		lu.rvis[k0] = rgen
		stack = append(stack, k0)
		stackT = append(stackT, lu.lOff[k0])
		for len(stack) > 0 {
			sp := len(stack) - 1
			k := stack[sp]
			t := stackT[sp]
			end := lu.lOff[k+1]
			advanced := false
			for ; t < end; t++ {
				k2 := lu.idOfRow[lu.lIdx[t]]
				if k2 >= 0 && lu.rvis[k2] != rgen {
					lu.rvis[k2] = rgen
					stackT[sp] = t + 1
					stack = append(stack, k2)
					stackT = append(stackT, lu.lOff[k2])
					advanced = true
					break
				}
			}
			if !advanced {
				stack = stack[:sp]
				stackT = stackT[:sp]
				topo = append(topo, k)
			}
		}
	}
	// Reverse postorder of a DAG is a topological order.
	for i, j := 0, len(topo)-1; i < j; i, j = i+1, j-1 {
		topo[i], topo[j] = topo[j], topo[i]
	}
	lu.topo = topo
	lu.stack = stack[:0]
	lu.stackT = stackT[:0]
	return topo
}

// factor builds the LU factorization of the basis selected by basis[slot]
// from the CSC matrix. Columns are processed sparsest first (ties by
// column index) with threshold pivoting: among the unpivoted support rows
// within luTau of the column max, the smallest static row count wins,
// ties to the lowest row — a static Markowitz approximation that keeps
// slack and assignment columns fill-free and pushes the dense makespan
// column last. Reports false on a (numerically) singular basis.
func (lu *luFactor) factor(m int, colPtr, rowIdx []int32, colVal []float64, basis []int) bool {
	lu.reset(m)
	rcount := lu.rcount[:m]
	for i := range rcount {
		rcount[i] = 0
	}
	for _, c := range basis {
		for t := colPtr[c]; t < colPtr[c+1]; t++ {
			rcount[rowIdx[t]]++
		}
	}
	// Sparsest column first; ties by slot order. Column nnz is bounded by
	// m, so a stable counting sort replaces the comparator sort — same
	// elimination principle, deterministic (slot order is a total order
	// over the ties), and no per-call closure or comparator overhead.
	order := lu.order[:m]
	cnt := grow32(lu.sortCnt, m+1)
	lu.sortCnt = cnt
	for i := 0; i <= m; i++ {
		cnt[i] = 0
	}
	for slot := 0; slot < m; slot++ {
		c := basis[slot]
		cnt[colPtr[c+1]-colPtr[c]]++
	}
	run := int32(0)
	for k := 0; k <= m; k++ {
		cnt[k], run = run, run+cnt[k]
	}
	for slot := 0; slot < m; slot++ {
		c := basis[slot]
		k := colPtr[c+1] - colPtr[c]
		order[cnt[k]] = int32(slot)
		cnt[k]++
	}
	lu.order = order

	w := lu.wrow
	for step, slot32 := range order {
		slot := int(slot32)
		c := basis[slot]
		gen := lu.bumpGen()
		touch := lu.touch[:0]
		for t := colPtr[c]; t < colPtr[c+1]; t++ {
			i := rowIdx[t]
			w[i] = colVal[t]
			lu.mark[i] = gen
			touch = append(touch, i)
		}
		// Sparse L-solve over the reach of the column pattern.
		topo := lu.reach(touch)
		for _, k := range topo {
			v := w[lu.lR[k]]
			if v == 0 {
				continue
			}
			for t := lu.lOff[k]; t < lu.lOff[k+1]; t++ {
				i := lu.lIdx[t]
				w[i] -= lu.lVal[t] * v
				if lu.mark[i] != gen {
					lu.mark[i] = gen
					touch = append(touch, i)
				}
			}
		}
		// Threshold pivot among the unpivoted support rows.
		amax := 0.0
		for _, i := range touch {
			if lu.idOfRow[i] < 0 {
				if a := math.Abs(w[i]); a > amax {
					amax = a
				}
			}
		}
		if amax <= pivotEps {
			for _, i := range touch {
				w[i] = 0
			}
			lu.touch = touch[:0]
			return false
		}
		thr := luTau * amax
		r := int32(-1)
		var bestCnt int32
		for _, i := range touch {
			if lu.idOfRow[i] >= 0 || math.Abs(w[i]) < thr {
				continue
			}
			if r < 0 || rcount[i] < bestCnt || (rcount[i] == bestCnt && i < r) {
				r, bestCnt = i, rcount[i]
			}
		}
		id := int32(step)
		piv := w[r]
		lu.rowOfId[id] = r
		lu.slotOfId[id] = int32(slot)
		lu.idOfRow[r] = id
		lu.idOfSlot[slot] = id
		lu.udiag[id] = piv
		lu.lR = append(lu.lR, r)
		for _, i := range touch {
			v := w[i]
			w[i] = 0
			if v == 0 || i == r {
				continue
			}
			if id2 := lu.idOfRow[i]; id2 >= 0 && id2 != id {
				lu.ucol[id] = lu.entAppend(lu.ucol[id], luEnt{id2, i, v})
				lu.urow[id2] = lu.entAppend(lu.urow[id2], luEnt{id, r, v})
				lu.nnzU++
			} else {
				lu.lIdx = append(lu.lIdx, i)
				lu.lVal = append(lu.lVal, v/piv)
				lu.nnzL++
			}
		}
		lu.lOff = append(lu.lOff, int32(len(lu.lIdx)))
		lu.key[id] = uint64(step)
		lu.touch = touch[:0]
	}
	for id := int32(0); id < int32(m); id++ {
		lu.seqPrev[id] = id - 1
		if id == int32(m)-1 {
			lu.seqNext[id] = -1
		} else {
			lu.seqNext[id] = id + 1
		}
	}
	if m > 0 {
		lu.seqHead, lu.seqTail = 0, int32(m)-1
	} else {
		lu.seqHead, lu.seqTail = -1, -1
	}
	lu.keyCtr = uint64(m)
	lu.baseSize = lu.nnzL + lu.nnzU + m
	return true
}

// ftran solves B·x = a for the sparse column a given as (rows, vals).
// The result lives in lu.xSlot over the returned slot list, valid until
// the next ftran call. With saveSpike the intermediate vector after the
// L and H passes — the Forrest–Tomlin spike — is retained for update().
func (lu *luFactor) ftran(rows []int32, vals []float64, saveSpike bool) []int32 {
	lu.clearX()
	w := lu.wrow
	gen := lu.bumpGen()
	touch := lu.touch[:0]
	for t, r := range rows {
		w[r] = vals[t]
		lu.mark[r] = gen
		touch = append(touch, r)
	}
	// L: only the etas reachable from the column pattern fire.
	topo := lu.reach(touch)
	for _, k := range topo {
		v := w[lu.lR[k]]
		if v == 0 {
			continue
		}
		for t := lu.lOff[k]; t < lu.lOff[k+1]; t++ {
			i := lu.lIdx[t]
			w[i] -= lu.lVal[t] * v
			if lu.mark[i] != gen {
				lu.mark[i] = gen
				touch = append(touch, i)
			}
		}
	}
	// H forward: one gather per row eta, in append order.
	for k := 0; k < len(lu.hR); k++ {
		s := 0.0
		for t := lu.hOff[k]; t < lu.hOff[k+1]; t++ {
			s += lu.hVal[t] * w[lu.hIdx[t]]
		}
		if s != 0 {
			r := lu.hR[k]
			w[r] -= s
			if lu.mark[r] != gen {
				lu.mark[r] = gen
				touch = append(touch, r)
			}
		}
	}
	if saveSpike {
		lu.clearSpike()
		for _, r := range touch {
			if v := w[r]; v != 0 {
				lu.spikeDense[r] = v
				lu.spikeRows = append(lu.spikeRows, r)
				if a := math.Abs(v); a > lu.spikeMax {
					lu.spikeMax = a
				}
			}
		}
	}
	// U backward: Gilbert–Peierls closure over the ucol scatter DAG —
	// reverse postorder of the DFS is a topological order, so every id is
	// finalized before it scatters into its dependents. Cost tracks the
	// closure, not m. On the paper's minmax polytopes the makespan column
	// couples every load row, so closures routinely blow up to a large
	// fraction of m; past dfsCut the DFS's cache-missing mark checks cost
	// more than a plain reverse sequence walk (one sequential load per id,
	// zero bookkeeping), so the symbolic phase ABORTS and the numeric pass
	// walks the whole triangular order instead — same arithmetic, the walk
	// merely fails to skip the zero part.
	xT := lu.xTouch[:0]
	dfsCut := lu.m/8 + 16
	abort := false
	hgen := lu.bumpHGen()
	topo = lu.topo[:0]
	stack := lu.stack[:0]
	stackT := lu.stackT[:0]
	for _, r := range touch {
		k0 := lu.idOfRow[r]
		if lu.hmark[k0] == hgen {
			continue
		}
		lu.hmark[k0] = hgen
		stack = append(stack, k0)
		stackT = append(stackT, 0)
		for len(stack) > 0 {
			sp := len(stack) - 1
			k := stack[sp]
			adj := lu.ucol[k]
			t := stackT[sp]
			advanced := false
			for ; int(t) < len(adj); t++ {
				k2 := adj[t].id
				if lu.hmark[k2] != hgen {
					lu.hmark[k2] = hgen
					stackT[sp] = t + 1
					stack = append(stack, k2)
					stackT = append(stackT, 0)
					advanced = true
					break
				}
			}
			if !advanced {
				stack = stack[:sp]
				stackT = stackT[:sp]
				topo = append(topo, k)
				if len(topo) > dfsCut {
					abort = true
					break
				}
			}
		}
		if abort {
			break
		}
	}
	if abort {
		for id := lu.seqTail; id >= 0; id = lu.seqPrev[id] {
			r := lu.rowOfId[id]
			v := w[r]
			if v == 0 {
				continue
			}
			w[r] = 0
			v /= lu.udiag[id]
			slot := lu.slotOfId[id]
			lu.xSlot[slot] = v
			xT = append(xT, slot)
			for _, e := range lu.ucol[id] {
				w[e.row] -= e.val * v
			}
		}
	} else {
		for i := len(topo) - 1; i >= 0; i-- {
			k := topo[i]
			r := lu.rowOfId[k]
			v := w[r]
			w[r] = 0
			if v == 0 {
				continue
			}
			v /= lu.udiag[k]
			slot := lu.slotOfId[k]
			lu.xSlot[slot] = v
			xT = append(xT, slot)
			for _, e := range lu.ucol[k] {
				w[e.row] -= e.val * v
			}
		}
	}
	lu.topo = topo
	lu.stack = stack[:0]
	lu.stackT = stackT[:0]
	lu.xTouch = xT
	lu.touch = touch[:0]
	return xT
}

// ftranDense solves B·x = w for a dense w (consumed: zeroed on return).
// The result is lu.xSlot, dense. Used for the x_B refresh after a
// (re)factorization, where the right-hand side is dense anyway.
func (lu *luFactor) ftranDense(w []float64) []float64 {
	lu.clearX()
	lu.xDense = true
	for k := 0; k < len(lu.lR); k++ {
		v := w[lu.lR[k]]
		if v == 0 {
			continue
		}
		for t := lu.lOff[k]; t < lu.lOff[k+1]; t++ {
			w[lu.lIdx[t]] -= lu.lVal[t] * v
		}
	}
	for k := 0; k < len(lu.hR); k++ {
		s := 0.0
		for t := lu.hOff[k]; t < lu.hOff[k+1]; t++ {
			s += lu.hVal[t] * w[lu.hIdx[t]]
		}
		w[lu.hR[k]] -= s
	}
	for id := lu.seqTail; id >= 0; id = lu.seqPrev[id] {
		r := lu.rowOfId[id]
		v := w[r]
		w[r] = 0
		if v == 0 {
			continue
		}
		v /= lu.udiag[id]
		lu.xSlot[lu.slotOfId[id]] = v
		for _, e := range lu.ucol[id] {
			w[e.row] -= e.val * v
		}
	}
	return lu.xSlot
}

// btranUnit computes y = e_slot·B⁻¹ (the row-space functional selecting
// basis slot `slot`). The result lives in lu.yRow over the returned row
// list, valid until the next btran call. y·a_j is then column j's entry
// of the pivot row — the revised engine's incremental pricing input.
func (lu *luFactor) btranUnit(slot int) []int32 {
	lu.clearY()
	y := lu.yRow
	gen := lu.bumpGen()
	yT := lu.yTouch[:0]
	id0 := lu.idOfSlot[slot]
	r0 := lu.rowOfId[id0]
	y[r0] = 1
	lu.mark[r0] = gen
	yT = append(yT, r0)
	// Uᵀ forward: Gilbert–Peierls closure over the urow scatter DAG
	// (contributions flow from earlier to later sequence positions only).
	// Reverse postorder of the DFS from the seed id is a topological
	// order, so every id is finalized before it scatters forward. As in
	// ftran, a closure past dfsCut means the DFS costs more than the plain
	// forward sequence walk, so the symbolic phase aborts to the walk.
	hgen := lu.bumpHGen()
	dfsCut := lu.m/8 + 16
	abort := false
	topo := lu.topo[:0]
	stack := lu.stack[:0]
	stackT := lu.stackT[:0]
	lu.hmark[id0] = hgen
	stack = append(stack, id0)
	stackT = append(stackT, 0)
	for len(stack) > 0 {
		sp := len(stack) - 1
		k := stack[sp]
		adj := lu.urow[k]
		t := stackT[sp]
		advanced := false
		for ; int(t) < len(adj); t++ {
			k2 := adj[t].id
			if lu.hmark[k2] != hgen {
				lu.hmark[k2] = hgen
				stackT[sp] = t + 1
				stack = append(stack, k2)
				stackT = append(stackT, 0)
				advanced = true
				break
			}
		}
		if !advanced {
			stack = stack[:sp]
			stackT = stackT[:sp]
			topo = append(topo, k)
			if len(topo) > dfsCut {
				abort = true
				break
			}
		}
	}
	if abort {
		for id := lu.seqHead; id >= 0; id = lu.seqNext[id] {
			r := lu.rowOfId[id]
			v := y[r]
			if v == 0 {
				continue
			}
			v /= lu.udiag[id]
			y[r] = v
			for _, e := range lu.urow[id] {
				r2 := e.row
				y[r2] -= e.val * v
				if lu.mark[r2] != gen {
					lu.mark[r2] = gen
					yT = append(yT, r2)
				}
			}
		}
	} else {
		for i := len(topo) - 1; i >= 0; i-- {
			k := topo[i]
			r := lu.rowOfId[k]
			v := y[r]
			if v == 0 {
				continue
			}
			v /= lu.udiag[k]
			y[r] = v
			for _, e := range lu.urow[k] {
				r2 := e.row
				y[r2] -= e.val * v
				if lu.mark[r2] != gen {
					lu.mark[r2] = gen
					yT = append(yT, r2)
				}
			}
		}
	}
	lu.topo = topo
	lu.stack = stack[:0]
	lu.stackT = stackT[:0]
	// H reverse: scatters, skip-on-zero.
	for k := len(lu.hR) - 1; k >= 0; k-- {
		v := y[lu.hR[k]]
		if v == 0 {
			continue
		}
		for t := lu.hOff[k]; t < lu.hOff[k+1]; t++ {
			r2 := lu.hIdx[t]
			y[r2] -= lu.hVal[t] * v
			if lu.mark[r2] != gen {
				lu.mark[r2] = gen
				yT = append(yT, r2)
			}
		}
	}
	// L reverse: one gather per eta (a gather cannot skip on zero, but
	// nnz(L) is tiny for the near-triangular bases this engine sees).
	for k := len(lu.lR) - 1; k >= 0; k-- {
		s := 0.0
		for t := lu.lOff[k]; t < lu.lOff[k+1]; t++ {
			s += lu.lVal[t] * y[lu.lIdx[t]]
		}
		if s != 0 {
			r := lu.lR[k]
			y[r] -= s
			if lu.mark[r] != gen {
				lu.mark[r] = gen
				yT = append(yT, r)
			}
		}
	}
	lu.yTouch = yT
	return yT
}

// btranDense computes y = c·B⁻¹ for a dense slot-space cost vector (the
// exact pricing reset and the dual extraction). Result: lu.yRow, dense.
func (lu *luFactor) btranDense(cSlot []float64) []float64 {
	lu.clearY()
	lu.yDense = true
	y := lu.yRow
	for id := lu.seqHead; id >= 0; id = lu.seqNext[id] {
		r := lu.rowOfId[id]
		v := cSlot[lu.slotOfId[id]] + y[r]
		if v == 0 {
			y[r] = 0
			continue
		}
		v /= lu.udiag[id]
		y[r] = v
		for _, e := range lu.urow[id] {
			y[e.row] -= e.val * v
		}
	}
	for k := len(lu.hR) - 1; k >= 0; k-- {
		v := y[lu.hR[k]]
		if v == 0 {
			continue
		}
		for t := lu.hOff[k]; t < lu.hOff[k+1]; t++ {
			y[lu.hIdx[t]] -= lu.hVal[t] * v
		}
	}
	for k := len(lu.lR) - 1; k >= 0; k-- {
		s := 0.0
		for t := lu.lOff[k]; t < lu.lOff[k+1]; t++ {
			s += lu.lVal[t] * y[lu.lIdx[t]]
		}
		y[lu.lR[k]] -= s
	}
	return y
}

// removeColEnt drops the entry referencing target from ucol[id]
// (swap-delete; entry order is never significant).
func (lu *luFactor) removeColEnt(id, target int32) {
	l := lu.ucol[id]
	for i := range l {
		if l[i].id == target {
			l[i] = l[len(l)-1]
			lu.ucol[id] = l[:len(l)-1]
			return
		}
	}
}

// removeRowEnt drops the entry referencing target from urow[id].
func (lu *luFactor) removeRowEnt(id, target int32) {
	l := lu.urow[id]
	for i := range l {
		if l[i].id == target {
			l[i] = l[len(l)-1]
			lu.urow[id] = l[:len(l)-1]
			return
		}
	}
}

// update applies the Forrest–Tomlin basis change at the given slot: the
// spike saved by the preceding ftran(saveSpike=true) replaces the slot's
// U column, the stale U row is eliminated by a sparse triangular closure
// whose multipliers become one H row eta, and the pivot id moves to the
// sequence tail. The new diagonal is stability-tested BEFORE any state is
// mutated; false means "refactorize instead" and leaves the factor
// exactly as it was.
func (lu *luFactor) update(slot int) bool {
	s := lu.idOfSlot[slot]
	rs := lu.rowOfId[s]

	// Elimination closure over the stale row of U, in sequence order via
	// the min-heap. Read-only: the accumulator g (dense by id) is cleared
	// as ids pop, and the multipliers go to side buffers until the
	// stability verdict commits them.
	g := lu.g
	hgen := lu.bumpHGen()
	lu.heap = lu.heap[:0]
	for _, e := range lu.urow[s] {
		g[e.id] = e.val
		lu.hmark[e.id] = hgen
		lu.heapPushMin(e.id)
	}
	multIds := lu.multIds[:0]
	multVals := lu.multVals[:0]
	dnew := lu.spikeDense[rs]
	for len(lu.heap) > 0 {
		j := lu.heapPopMin()
		v := g[j]
		g[j] = 0
		if v == 0 {
			continue
		}
		mj := v / lu.udiag[j]
		if mj == 0 {
			continue
		}
		multIds = append(multIds, j)
		multVals = append(multVals, mj)
		dnew -= mj * lu.spikeDense[lu.rowOfId[j]]
		for _, e := range lu.urow[j] {
			if lu.hmark[e.id] != hgen {
				lu.hmark[e.id] = hgen
				g[e.id] = 0
				lu.heapPushMin(e.id)
			}
			g[e.id] -= mj * e.val
		}
	}
	lu.multIds, lu.multVals = multIds, multVals

	// Stability: the updated diagonal must be a safe divisor both in
	// absolute terms and relative to the spike it came from.
	if a := math.Abs(dnew); !(a > pivotEps) || !(a > ftDiagEps*lu.spikeMax) {
		return false
	}

	// Commit. Remove the old column and row of id s from the paired lists.
	for _, e := range lu.ucol[s] {
		lu.removeRowEnt(e.id, s)
	}
	lu.nnzU -= len(lu.ucol[s])
	lu.ucol[s] = lu.ucol[s][:0]
	for _, e := range lu.urow[s] {
		lu.removeColEnt(e.id, s)
	}
	lu.nnzU -= len(lu.urow[s])
	lu.urow[s] = lu.urow[s][:0]

	// Insert the spike as the (new, last-in-order) column of id s. Every
	// other id now precedes s, so all spike entries are above-diagonal.
	for _, r := range lu.spikeRows {
		v := lu.spikeDense[r]
		if v == 0 || r == rs {
			continue
		}
		i := lu.idOfRow[r]
		lu.ucol[s] = lu.entAppend(lu.ucol[s], luEnt{i, r, v})
		lu.urow[i] = lu.entAppend(lu.urow[i], luEnt{s, rs, v})
		lu.nnzU++
	}
	lu.udiag[s] = dnew

	// One H row eta: w[rs] -= Σ m_j·w[row_j].
	if len(multIds) > 0 {
		lu.hR = append(lu.hR, rs)
		for t, j := range multIds {
			lu.hIdx = append(lu.hIdx, lu.rowOfId[j])
			lu.hVal = append(lu.hVal, multVals[t])
		}
		lu.hOff = append(lu.hOff, int32(len(lu.hIdx)))
		lu.hFill += len(multIds)
	}

	// Move id s to the sequence tail under a fresh maximal key.
	if lu.seqTail != s {
		p, n := lu.seqPrev[s], lu.seqNext[s]
		if p >= 0 {
			lu.seqNext[p] = n
		} else {
			lu.seqHead = n
		}
		if n >= 0 {
			lu.seqPrev[n] = p
		}
		lu.seqPrev[s] = lu.seqTail
		lu.seqNext[s] = -1
		lu.seqNext[lu.seqTail] = s
		lu.seqTail = s
	}
	lu.keyCtr++
	lu.key[s] = lu.keyCtr
	lu.updates++
	return true
}
