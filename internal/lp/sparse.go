package lp

// Sparse simplex kernels.
//
// HSLB constraint matrices are overwhelmingly sparse: per-fragment
// assignment rows touch one SOS1 family, min-max load rows touch one
// family plus the makespan column, and only the single node-budget row is
// dense. The dense tableau kernels in simplex.go pay O(m·n) per pivot
// regardless; at thousands of fragments that dominates everything else.
//
// Division of labor: cold solves go through the revised product-form
// engine (revised.go), which never materializes B⁻¹A and therefore does
// not suffer tableau densification when the makespan column enters the
// basis. The pattern kernels below serve the warm-start layer — which
// must keep a live tableau to absorb bound changes and new rows — and the
// tableau cold path that backs the revised engine's fallback.
//
// The sparse path keeps the dense float64 rows (so every consumer of
// t.a — ratio tests, extraction, warm absorption — is untouched) and adds
// an exact nonzero *pattern* per row: pat[i] lists the columns j with
// a[i][j] != 0, in a deterministic order (CSR-style index arrays over the
// shared dense storage). The kernels then iterate patterns instead of full
// rows:
//
//   - pivot touches only the pivot row's pattern in every updated row,
//     rebuilding each touched row's pattern exactly (fill-in added,
//     cancellations dropped) with a shared generation-stamped mark array;
//   - setCosts prices only the nonzeros of each costed basic row;
//   - the dual-simplex entering scan walks the leaving row's pattern
//     (a column with a zero coefficient can never be entering);
//   - primal pricing uses a candidate list (partial pricing): a full scan
//     picks the exact Dantzig column AND caches every column scoring
//     within a factor of it; subsequent iterations price only the cache,
//     and optimality is only ever declared by a full rescan coming up
//     empty. Refill pivots are therefore identical to dense Dantzig picks,
//     so the pivot count stays close to the dense trajectory's while the
//     per-iteration scan shrinks to the near-best set.
//
// Per-column pattern-membership counts (colCnt) track total fill. When
// occupancy crosses denseSwitchPct the pattern bookkeeping costs more than
// it saves, so the tableau drops it and continues with the dense kernels —
// the values are shared, so the switch is free and exact.
//
// The dense path remains the correctness authority: Problem.DisableSparse
// pins every kernel to the original dense loops, mirroring the
// DisableWarmStart discipline of the warm-start layer.

const (
	// candKeep is the relative score cutoff for the candidate list: a
	// refill caches every favorable column scoring within best/candKeep.
	candKeep = 16
	// denseSwitchPct: pattern occupancy (percent of m·n) beyond which the
	// sparse bookkeeping is abandoned for the dense kernels. Indexed
	// pattern walks cost ~2-3x a dense sequential pass per entry, so the
	// crossover sits well below half fill.
	denseSwitchPct = 20
)

// debugSparseDrop, when non-nil, observes density-guard fallbacks
// (testing/tuning hook, mirroring debugPhase1).
var debugSparseDrop func(pivots, nnz, m, n int)

// sparse reports whether the tableau is running the pattern kernels.
func (t *tableau) sparse() bool { return t.pat != nil }

// initSparse adopts per-row nonzero patterns (ownership transfers; rows
// must be deterministic in order and exact in content) and derives the
// column counts. mark/scratch buffers may come from a pooled workspace.
func (t *tableau) initSparse(pats [][]int32, ws *workspace) {
	n := len(t.d)
	t.pat = pats
	if ws != nil {
		t.colCnt = intSlice(&ws.colCnt, n)
		t.mark = intSlice(&ws.mark, n)
		t.patScratch = ws.patScratch[:0]
	} else {
		t.colCnt = make([]int32, n)
		t.mark = make([]int32, n)
		t.patScratch = nil
	}
	t.markGen = 0
	t.nnz = 0
	for _, row := range pats {
		for _, j := range row {
			t.colCnt[j]++
		}
		t.nnz += len(row)
	}
}

// intSlice returns *s resized to n and zeroed, growing the backing array
// only when needed (workspace reuse).
func intSlice(s *[]int32, n int) []int32 {
	if cap(*s) < n {
		*s = make([]int32, n)
	}
	v := (*s)[:n]
	for i := range v {
		v[i] = 0
	}
	return v
}

// dropSparse abandons pattern maintenance; the dense kernels take over on
// the shared value rows. One-way for this tableau (a refactorization or
// rebuild re-derives patterns from the pristine rows).
func (t *tableau) dropSparse() {
	t.pat = nil
	t.colCnt = nil
	t.mark = nil
	t.patScratch = nil
	t.cand = t.cand[:0]
}

// growSparseCol extends the per-column sparse state for one appended
// column (warm AddRow). The new column belongs to no pattern yet.
func (t *tableau) growSparseCol() {
	if !t.sparse() {
		return
	}
	t.colCnt = append(t.colCnt, 0)
	t.mark = append(t.mark, 0)
}

// bumpGen advances the mark generation, resetting the array on the rare
// wrap so stale stamps can never collide.
func (t *tableau) bumpGen() int32 {
	t.markGen++
	if t.markGen < 0 { // wrapped
		for i := range t.mark {
			t.mark[i] = 0
		}
		t.markGen = 1
	}
	return t.markGen
}

// pivotSparse is the pattern-aware row reduction: identical arithmetic to
// the dense pivot (skipped entries are exact zeros), O(nnz(pivot row))
// per touched row instead of O(n).
func (t *tableau) pivotSparse(r, e int) {
	pr := t.a[r]
	inv := 1 / pr[e]
	patR := t.pat[r]
	for _, j := range patR {
		pr[j] *= inv
	}
	for i := range t.a {
		if i == r {
			continue
		}
		f := t.a[i][e]
		if f == 0 {
			continue
		}
		t.updateRowSparse(i, f, pr, patR, e)
	}
	if f := t.d[e]; f != 0 {
		for _, j := range patR {
			t.d[j] -= f * pr[j]
		}
		t.d[e] = 0
	}
	// Density guard: when fill-in erodes the sparsity the pattern walks
	// cost more than the dense loops they replace.
	if t.nnz*100 > len(t.a)*len(t.d)*denseSwitchPct {
		if debugSparseDrop != nil {
			debugSparseDrop(t.pivots, t.nnz, len(t.a), len(t.d))
		}
		t.dropSparse()
	}
}

// updateRowSparse applies row_i -= f·row_r over the pivot row's pattern
// and rebuilds row i's exact pattern: entries outside both patterns are
// untouched zeros, fill-in is appended, cancellations are pruned, and the
// per-column counts stay exact.
func (t *tableau) updateRowSparse(i int, f float64, pr []float64, patR []int32, e int) {
	ri := t.a[i]
	old := t.pat[i]
	gen := t.bumpGen()
	for _, j := range old {
		t.mark[j] = gen
	}
	for _, j := range patR {
		ri[j] -= f * pr[j]
	}
	ri[e] = 0
	np := t.patScratch[:0]
	for _, j := range old {
		if ri[j] != 0 {
			np = append(np, j)
		} else {
			t.colCnt[j]--
			t.nnz--
		}
	}
	for _, j := range patR {
		if t.mark[j] == gen {
			continue // already handled via old
		}
		if ri[j] != 0 {
			np = append(np, j)
			t.colCnt[j]++
			t.nnz++
		}
	}
	t.pat[i] = append(old[:0], np...)
	t.patScratch = np[:0]
}

// buildActive precomputes the pricing skip list: every column that could
// ever enter the basis. Banned columns (artificials) and fixed columns
// (lb == ub, whose movement range is zero) are excluded once instead of
// being re-tested n times per iteration. Ascending order keeps Bland's
// rule (lowest favorable index) intact.
func (t *tableau) buildActive() {
	t.active = t.active[:0]
	for j := range t.d {
		if t.banned[j] || t.lb[j] == t.ub[j] {
			continue
		}
		t.active = append(t.active, int32(j))
	}
}

// priceEntering selects the entering column, or e < 0 at optimality.
// Bland mode scans the full active list ascending (anti-cycling needs
// every favorable column considered); Dantzig mode scans the active list
// densely, or prices the candidate list when the sparse kernels are on.
func (t *tableau) priceEntering(bland bool) (e int, dir float64) {
	if bland {
		for _, j32 := range t.active {
			j := int(j32)
			if t.inBase[j] {
				continue
			}
			if t.status[j] == atLower && t.d[j] < -costEps {
				return j, 1
			}
			if t.status[j] == atUpper && t.d[j] > costEps {
				return j, -1
			}
		}
		return -1, 0
	}
	if !t.sparse() {
		best := costEps
		e, dir = -1, 1
		for _, j32 := range t.active {
			j := int(j32)
			if t.inBase[j] {
				continue
			}
			if t.status[j] == atLower && -t.d[j] > best {
				best, e, dir = -t.d[j], j, 1
			} else if t.status[j] == atUpper && t.d[j] > best {
				best, e, dir = t.d[j], j, -1
			}
		}
		return e, dir
	}
	return t.priceCandidates()
}

// priceCandidates implements candidate-list partial pricing: price only
// the cached near-best list (reduced costs are re-read, so scores are
// always current — only set membership is stale), dropping entries that
// went basic or unfavorable; when the list yields nothing, refill with one
// exact Dantzig scan. Optimality is declared only by a refill scan coming
// up empty.
func (t *tableau) priceCandidates() (int, float64) {
	best := costEps
	e, dir := -1, 1.0
	w := 0
	for _, j32 := range t.cand {
		j := int(j32)
		if t.inBase[j] {
			continue
		}
		var score, d float64
		if t.status[j] == atLower && t.d[j] < -costEps {
			score, d = -t.d[j], 1
		} else if t.status[j] == atUpper && t.d[j] > costEps {
			score, d = t.d[j], -1
		} else {
			continue
		}
		t.cand[w] = j32
		w++
		if score > best {
			best, e, dir = score, j, d
		}
	}
	t.cand = t.cand[:w]
	if e >= 0 {
		return e, dir
	}
	return t.refillCandidates()
}

// refillCandidates runs one exact Dantzig scan over the active list,
// returning the globally best column (identical to the dense pick) and
// caching every favorable column within best/candKeep of it for the cheap
// pricing of subsequent iterations. Returns e < 0 at optimality.
func (t *tableau) refillCandidates() (int, float64) {
	t.cand = t.cand[:0]
	best := costEps
	e, dir := -1, 1.0
	for _, j32 := range t.active {
		j := int(j32)
		if t.inBase[j] {
			continue
		}
		var score, d float64
		if t.status[j] == atLower && t.d[j] < -costEps {
			score, d = -t.d[j], 1
		} else if t.status[j] == atUpper && t.d[j] > costEps {
			score, d = t.d[j], -1
		} else {
			continue
		}
		if score > best {
			best, e, dir = score, j, d
		}
		t.cand = append(t.cand, j32)
	}
	if e < 0 {
		return -1, 0
	}
	// Trim to the near-best set; dropped columns are rediscovered by the
	// next refill if they still matter.
	thresh := best / candKeep
	w := 0
	for _, j32 := range t.cand {
		j := int(j32)
		score := -t.d[j]
		if t.status[j] == atUpper {
			score = t.d[j]
		}
		if score >= thresh {
			t.cand[w] = j32
			w++
		}
	}
	t.cand = t.cand[:w]
	return e, dir
}
