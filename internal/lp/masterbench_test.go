package lp

import (
	"repro/internal/stats"
	"testing"
)

func BenchmarkWideMaster(b *testing.B) {
	// BenchmarkWideMaster covers the shape of the outer-approximation master
	// LPs: ~80 rows, 3200 bounded binary columns.
	rng := stats.NewRNG(9)
	p := NewProblem()
	nCols := 3200
	cols := make([]int, nCols)
	for j := range cols {
		cols[j] = p.AddVariable(0, 1, rng.Range(-5, 5), "")
	}
	for i := 0; i < 80; i++ {
		terms := make([]Term, 0, 40)
		for k := 0; k < 40; k++ {
			terms = append(terms, Term{cols[rng.Intn(nCols)], rng.Range(-3, 3)})
		}
		p.AddConstraint(terms, LE, rng.Range(5, 50), "")
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sol, err := p.Solve()
		if err != nil || sol.Status != Optimal {
			b.Fatalf("%v %v", sol.Status, err)
		}
	}
}
