package lp

import (
	"fmt"
	"math"
)

// VerifyKKT checks that (sol.X, sol.Dual) is an optimality certificate for
// the problem: primal feasibility, dual feasibility (sign conditions per
// row sense), stationarity (reduced costs consistent with each variable's
// position in its box), and complementary slackness on rows. For linear
// programs these conditions are necessary and sufficient, so a nil return
// certifies optimality independently of how the solution was produced.
//
// tol is the absolute feasibility/stationarity tolerance (e.g. 1e-6).
func VerifyKKT(p *Problem, sol *Solution, tol float64) error {
	if sol.Status != Optimal {
		return fmt.Errorf("lp: cannot verify non-optimal status %v", sol.Status)
	}
	if len(sol.X) != p.NumVariables() || len(sol.Dual) != p.NumConstraints() {
		return fmt.Errorf("lp: certificate dimensions mismatch")
	}
	// Scale-aware tolerance.
	scale := 1.0
	for j := range sol.X {
		if a := math.Abs(sol.X[j]); a > scale {
			scale = a
		}
	}
	eps := tol * scale

	// Primal feasibility.
	if v := p.MaxViolation(sol.X); v > eps {
		return fmt.Errorf("lp: primal violation %g", v)
	}
	// Dual sign conditions and complementary slackness on rows:
	// convention (see Solve): for minimization, GE rows have Dual ≥ 0,
	// LE rows Dual ≤ 0, EQ rows free; a nonzero dual requires the row
	// to be active.
	for i := range p.rows {
		c := &p.rows[i]
		y := sol.Dual[i]
		switch c.Sense {
		case GE:
			if y < -eps {
				return fmt.Errorf("lp: row %d (GE) has negative dual %g", i, y)
			}
		case LE:
			if y > eps {
				return fmt.Errorf("lp: row %d (LE) has positive dual %g", i, y)
			}
		}
		if math.Abs(y) > eps {
			gap := c.Value(sol.X) - c.RHS
			rowScale := math.Abs(c.RHS) + 1
			if math.Abs(gap) > tol*rowScale*10 {
				return fmt.Errorf("lp: row %d has dual %g but slack %g", i, y, gap)
			}
		}
	}
	// Stationarity: reduced cost r_j = c_j − Σ_i y_i a_ij must be ≥ 0 when
	// x_j sits at its lower bound, ≤ 0 at its upper bound, ≈ 0 when
	// strictly between.
	red := make([]float64, p.NumVariables())
	for j := range red {
		red[j] = p.costs[j]
	}
	for i := range p.rows {
		y := sol.Dual[i]
		if y == 0 {
			continue
		}
		for _, t := range p.rows[i].Terms {
			red[t.Var] -= y * t.Coef
		}
	}
	// Reduced-cost tolerance scales with the costs/duals involved.
	cscale := 1.0
	for j := range p.costs {
		if a := math.Abs(p.costs[j]); a > cscale {
			cscale = a
		}
	}
	for i := range sol.Dual {
		if a := math.Abs(sol.Dual[i]); a > cscale {
			cscale = a
		}
	}
	ceps := tol * cscale * 10
	for j := range red {
		lo, hi := p.lo[j], p.hi[j]
		atLo := sol.X[j] <= lo+eps
		atHi := sol.X[j] >= hi-eps
		switch {
		case atLo && atHi: // fixed
		case atLo:
			if red[j] < -ceps {
				return fmt.Errorf("lp: var %d at lower bound with reduced cost %g", j, red[j])
			}
		case atHi:
			if red[j] > ceps {
				return fmt.Errorf("lp: var %d at upper bound with reduced cost %g", j, red[j])
			}
		default:
			if math.Abs(red[j]) > ceps {
				return fmt.Errorf("lp: interior var %d has reduced cost %g", j, red[j])
			}
		}
	}
	return nil
}
