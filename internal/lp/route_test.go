package lp

import (
	"math/rand"
	"testing"
)

// TestSparseRouteUnchangedByPhase1Hook pins cold-solve route selection
// against diagnostic state: installing the debugPhase1 hook must not
// change which engine answers a solve. The hook only fires at a phase-1
// infeasible conclusion — a case the revised engine always declines to the
// tableau path anyway — so gating the revised route on the hook (the old
// behavior) silently benchmarked and tested a different engine whenever
// any diagnostics were active.
func TestSparseRouteUnchangedByPhase1Hook(t *testing.T) {
	build := func() *Problem {
		rng := rand.New(rand.NewSource(42))
		p := NewProblem()
		n := 12
		for j := 0; j < n; j++ {
			p.AddVariable(0, 4, rng.Float64()*2-1, "")
		}
		for i := 0; i < 8; i++ {
			var terms []Term
			for j := 0; j < n; j++ {
				if rng.Float64() < 0.3 {
					terms = append(terms, Term{j, 1 + rng.Float64()})
				}
			}
			if len(terms) == 0 {
				terms = append(terms, Term{i % n, 1})
			}
			p.AddConstraint(terms, LE, 6, "")
		}
		return p
	}

	// Baseline: the revised engine owns this solve when no hook is set.
	before := revisedSolves.Load()
	base, err := build().Solve()
	if err != nil || base.Status != Optimal {
		t.Fatalf("baseline solve: %v %v", base, err)
	}
	if revisedSolves.Load() == before {
		t.Skip("instance not served by the revised engine; route pin not applicable")
	}

	// With the hook installed the same instance must still be answered by
	// the revised engine, with an identical optimum.
	debugPhase1 = func(tab *tableau, std *standard, artStart int) {}
	defer func() { debugPhase1 = nil }()
	before = revisedSolves.Load()
	sol, err := build().Solve()
	if err != nil || sol.Status != Optimal {
		t.Fatalf("hooked solve: %v %v", sol, err)
	}
	if revisedSolves.Load() == before {
		t.Fatalf("debugPhase1 hook changed route selection: revised engine was bypassed")
	}
	if sol.Obj != base.Obj {
		t.Fatalf("hooked route returned a different optimum: %g vs %g", sol.Obj, base.Obj)
	}
}
