package lp

import (
	"math"
	"testing"

	"repro/internal/stats"
)

// Property batteries for the revised engine's sparse LU basis
// (lu.go) and devex pricing (devex.go). TestSparseMatchesDenseProperty
// already fuzzes small instances across the sparsity dial; the batteries
// here are shaped to make the LU machinery actually work — pivot paths
// long enough to run through multiple Forrest–Tomlin update cycles and
// scheduled refactorizations, degenerate faces that stress the drift
// checks, and the devex/Dantzig ablation on both the cold and warm paths.

// tSeriesInstance builds a small copy of the paper's min-max allocation
// shape (the bench_scaling generator, shrunk): per family a pick row over K
// configs, a load row coupling the family to the makespan T, and one global
// budget row. The T column couples every load row, so FTRAN/BTRAN results
// are dense in the row dimension — exactly the regime the LU engine's
// density-abort closures are built for.
func tSeriesInstance(rng *stats.RNG, families int) *Problem {
	const K = 3
	p := NewProblem()
	T := p.AddVariable(0, Inf, 1, "T")
	budget := make([]Term, 0, K*families)
	for f := 0; f < families; f++ {
		pick := make([]Term, K)
		load := make([]Term, 0, K+1)
		nodes := 1 + rng.Intn(6)
		a := rng.Range(40, 400)
		for k := 0; k < K; k++ {
			z := p.AddVariable(0, 1, 0, "")
			pick[k] = Term{Var: z, Coef: 1}
			tm := a/float64(nodes) + 0.1*float64(nodes) + rng.Range(0, 4)
			load = append(load, Term{Var: z, Coef: tm})
			budget = append(budget, Term{Var: z, Coef: float64(nodes)})
			nodes *= 2
		}
		p.AddConstraint(pick, EQ, 1, "")
		load = append(load, Term{Var: T, Coef: -1})
		p.AddConstraint(load, LE, 0, "")
	}
	p.AddConstraint(budget, LE, rng.Range(3.5, 6)*float64(families), "")
	return p
}

// luBatteryInstance alternates between the structured T-series shape and a
// free-form random LP large enough to outlast luMaxUpdates (so scheduled
// reinversions happen mid-solve, not only at the end).
func luBatteryInstance(rng *stats.RNG, seed int) *Problem {
	if seed%2 == 0 {
		return tSeriesInstance(rng, 8+rng.Intn(40))
	}
	p := randomLP(rng, 20+rng.Intn(40), 15+rng.Intn(30))
	p.DisablePresolve = true
	return p
}

// TestLUvsDenseProperty: the sparse-LU revised engine must reproduce the
// dense tableau authority's verdict on ~1000 instances whose pivot paths
// exercise the full Forrest–Tomlin update/reinversion cycle, and every
// Optimal claim must carry a KKT certificate. Objectives are compared under
// the same scaled discipline as tol.go (relative to the optimum magnitude).
func TestLUvsDenseProperty(t *testing.T) {
	instances := 1000
	if testing.Short() {
		instances = 120
	}
	before := revisedSolves.Load()
	for seed := 0; seed < instances; seed++ {
		rng := stats.NewRNG(uint64(seed) + 88001)
		p := luBatteryInstance(rng, seed)
		dense := p.Clone()
		dense.DisableSparse = true

		got, err := p.Solve()
		if err != nil {
			t.Fatalf("seed %d: sparse err %v", seed, err)
		}
		want, err := dense.Solve()
		if err != nil {
			t.Fatalf("seed %d: dense err %v", seed, err)
		}
		if got.Status != want.Status {
			t.Fatalf("seed %d: status %v (LU) vs %v (dense)", seed, got.Status, want.Status)
		}
		if got.Status != Optimal {
			continue
		}
		scale := 1 + math.Abs(want.Obj)
		if diff := math.Abs(got.Obj - want.Obj); diff > 1e-6*scale {
			t.Fatalf("seed %d: obj %v (LU) vs %v (dense), diff %g", seed, got.Obj, want.Obj, diff)
		}
		if err := VerifyKKT(p, got, 1e-6); err != nil {
			t.Fatalf("seed %d: KKT on LU solution: %v", seed, err)
		}
	}
	if revisedSolves.Load() == before {
		t.Fatal("battery never reached the revised LU engine")
	}
}

// TestDevexAblationProperty: devex weights may only steer pivot ORDER —
// under DisableDevex the cold revised path and the warm dual path must
// reach the same verdict and objective on every instance. The pivot totals
// of both policies are logged for the record; on this problem family devex
// is roughly pivot-neutral (see DESIGN.md), so no ratio is asserted.
func TestDevexAblationProperty(t *testing.T) {
	instances := 500
	if testing.Short() {
		instances = 80
	}
	pivDevex, pivDantzig := 0, 0
	for seed := 0; seed < instances; seed++ {
		rng := stats.NewRNG(uint64(seed) + 99001)
		p := luBatteryInstance(rng, seed)
		ablated := p.Clone()
		ablated.DisableDevex = true

		got, err := p.Solve()
		if err != nil {
			t.Fatalf("seed %d: devex err %v", seed, err)
		}
		want, err := ablated.Solve()
		if err != nil {
			t.Fatalf("seed %d: dantzig err %v", seed, err)
		}
		if got.Status != want.Status {
			t.Fatalf("seed %d: status %v (devex) vs %v (dantzig)", seed, got.Status, want.Status)
		}
		if got.Status == Optimal {
			scale := 1 + math.Abs(want.Obj)
			if diff := math.Abs(got.Obj - want.Obj); diff > 1e-6*scale {
				t.Fatalf("seed %d: obj %v (devex) vs %v (dantzig), diff %g", seed, got.Obj, want.Obj, diff)
			}
		}
		pivDevex += got.Pivots
		pivDantzig += want.Pivots
	}
	t.Logf("cold pivots: devex %d vs dantzig %d (%.2fx)", pivDevex, pivDantzig,
		float64(pivDevex)/float64(pivDantzig))
}

// TestDualDevexWarmAblation drives the warm dual simplex — an RHS walk on
// the budget row plus bound tightenings, the branch-and-bound access
// pattern — under both leaving-row policies. Verdict and objective must
// match the cold authority at every step regardless of policy.
func TestDualDevexWarmAblation(t *testing.T) {
	walks := 60
	if testing.Short() {
		walks = 15
	}
	for seed := 0; seed < walks; seed++ {
		for _, disable := range []bool{false, true} {
			rng := stats.NewRNG(uint64(seed) + 55001)
			fam := 6 + rng.Intn(14)
			p := tSeriesInstance(rng, fam)
			p.DisableDevex = disable
			budgetRow := p.NumConstraints() - 1
			base := p.rows[budgetRow].RHS
			inc := NewIncremental(p)
			if _, err := inc.Solve(); err != nil {
				t.Fatalf("seed %d: cold start: %v", seed, err)
			}
			for step := 0; step < 8; step++ {
				inc.SetRHS(budgetRow, base*(1-0.08*float64(step)))
				if step == 4 {
					// A bound tightening mid-walk, as branching would do.
					v := 1 + rng.Intn(p.NumVariables()-1)
					inc.TightenBound(v, 0, 0.5)
				}
				warm, err := inc.Solve()
				if err != nil {
					t.Fatalf("seed %d step %d: warm: %v", seed, step, err)
				}
				cold := p.Clone()
				cold.DisableSparse = true
				want, err := cold.Solve()
				if err != nil {
					t.Fatalf("seed %d step %d: cold: %v", seed, step, err)
				}
				if warm.Status != want.Status {
					t.Fatalf("seed %d step %d devexOff=%v: status %v (warm) vs %v (cold)",
						seed, step, disable, warm.Status, want.Status)
				}
				if warm.Status == Optimal {
					scale := 1 + math.Abs(want.Obj)
					if diff := math.Abs(warm.Obj - want.Obj); diff > 1e-6*scale {
						t.Fatalf("seed %d step %d devexOff=%v: obj %v vs %v",
							seed, step, disable, warm.Obj, want.Obj)
					}
				}
			}
		}
	}
}

// TestFTDriftDegenerate runs the LU engine across Klee–Minty cubes and
// perturbed variants — maximally degenerate pivot paths where every pivot
// hammers the same few rows, the worst case for Forrest–Tomlin drift. The
// engine must either stay accurate through its update/refactorization
// ladder or decline to the dense authority; both end in the known optimum.
// Engine drift/fallback counters are snapshotted to show which of the two
// happened (diagnostic only — either is a correct outcome).
func TestFTDriftDegenerate(t *testing.T) {
	s0 := ReadEngineStats()
	for _, n := range []int{4, 6, 8, 10, 12} {
		for pert := 0; pert < 3; pert++ {
			rng := stats.NewRNG(uint64(n*100 + pert))
			p := NewProblem()
			vars := make([]int, n)
			for j := 0; j < n; j++ {
				c := -math.Pow(2, float64(n-1-j))
				if pert > 0 {
					c *= 1 + 1e-9*rng.Range(-1, 1)
				}
				vars[j] = p.AddVariable(0, Inf, c, "")
			}
			for i := 0; i < n; i++ {
				terms := []Term{{vars[i], 1}}
				for j := 0; j < i; j++ {
					terms = append(terms, Term{vars[j], math.Pow(2, float64(i-j+1))})
				}
				p.AddConstraint(terms, LE, math.Pow(5, float64(i+1)), "")
			}
			sol, err := p.Solve()
			if err != nil {
				t.Fatalf("n=%d pert=%d: %v", n, pert, err)
			}
			if sol.Status != Optimal {
				t.Fatalf("n=%d pert=%d: status %v", n, pert, sol.Status)
			}
			want := -math.Pow(5, float64(n))
			if math.Abs(sol.Obj-want) > 1e-6*math.Abs(want) {
				t.Fatalf("n=%d pert=%d: obj %v, want %v", n, pert, sol.Obj, want)
			}
			if err := VerifyKKT(p, sol, 1e-6); err != nil {
				t.Fatalf("n=%d pert=%d: KKT: %v", n, pert, err)
			}
		}
	}
	s1 := ReadEngineStats()
	t.Logf("degenerate battery: %d updates, %d refactors, %d drift trips, %d fallbacks",
		s1.Updates-s0.Updates, s1.Refactors-s0.Refactors,
		s1.Drifts-s0.Drifts, s1.Fallbacks-s0.Fallbacks)
}
