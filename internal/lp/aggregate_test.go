package lp

import (
	"math"
	"math/rand"
	"testing"
)

// TestAggregatePresolve pins the two merge moves on a hand-built instance:
// three identical columns collapse to one with summed bounds, duplicate LE
// rows keep the tightest RHS, and the optimum plus its certificate survive
// exact disaggregation.
func TestAggregatePresolve(t *testing.T) {
	build := func() *Problem {
		p := NewProblem()
		for k := 0; k < 3; k++ {
			p.AddVariable(0, 4, -1, "x")
		}
		w := p.AddVariable(0, 10, -2, "w")
		dup := []Term{{0, 1}, {1, 1}, {2, 1}, {w, 1}}
		p.AddConstraint(dup, LE, 9, "cap1")
		p.AddConstraint(dup, LE, 7, "cap2")
		p.AddConstraint([]Term{{w, 1}}, LE, 5, "wcap")
		return p
	}
	a0 := ReadEngineStats().AggMerges
	p := build()
	sol, err := p.Solve()
	if err != nil || sol.Status != Optimal {
		t.Fatalf("agg solve: %v %v", sol.Status, err)
	}
	if got := ReadEngineStats().AggMerges; got <= a0 {
		t.Fatalf("aggregation did not fire")
	}
	q := build()
	q.DisableAggregation = true
	ref, err := q.Solve()
	if err != nil || ref.Status != Optimal {
		t.Fatalf("ref solve: %v %v", ref.Status, err)
	}
	if math.Abs(sol.Obj-ref.Obj) > 1e-9*(1+math.Abs(ref.Obj)) {
		t.Fatalf("obj mismatch: %g vs %g", sol.Obj, ref.Obj)
	}
	if err := VerifyKKT(p, sol, 1e-6); err != nil {
		t.Fatalf("KKT: %v", err)
	}

	// Conflicting duplicate EQ rows are a trivial infeasibility the merge
	// must detect without spending a simplex.
	p2 := NewProblem()
	v := p2.AddVariable(0, 1, 1, "v")
	u := p2.AddVariable(0, 1, 1, "u")
	p2.AddConstraint([]Term{{v, 1}, {u, 2}}, EQ, 1, "e1")
	p2.AddConstraint([]Term{{v, 1}, {u, 2}}, EQ, 2, "e2")
	s2, err := p2.Solve()
	if err != nil || s2.Status != Infeasible {
		t.Fatalf("EQ conflict: want Infeasible, got %v %v", s2.Status, err)
	}
}

// randomAggregateLP builds a small LP whose population is skewed toward
// the aggregation triggers: duplicate columns (identical cost, bounds, and
// coefficients everywhere) and duplicate rows (identical terms, possibly
// different RHS). The matrix is built dense-first so duplicated columns
// are bit-exact copies.
func randomAggregateLP(rng *rand.Rand) *Problem {
	nBase := 1 + rng.Intn(5)
	nRow := 1 + rng.Intn(5)
	cost := make([]float64, 0, 2*nBase)
	hi := make([]float64, 0, 2*nBase)
	cols := make([][]float64, 0, 2*nBase)
	for j := 0; j < nBase; j++ {
		col := make([]float64, nRow)
		for i := range col {
			col[i] = float64(rng.Intn(9) - 4)
		}
		c := float64(rng.Intn(11) - 5)
		h := float64(1 + rng.Intn(9))
		reps := 1
		if rng.Intn(2) == 0 {
			reps = 2 + rng.Intn(2) // bit-exact duplicates of this column
		}
		for r := 0; r < reps; r++ {
			cost = append(cost, c)
			hi = append(hi, h)
			cols = append(cols, col)
		}
	}
	p := NewProblem()
	for j := range cols {
		p.AddVariable(0, hi[j], cost[j], "")
	}
	for i := 0; i < nRow; i++ {
		var terms []Term
		for j := range cols {
			if c := cols[j][i]; c != 0 {
				terms = append(terms, Term{Var: j, Coef: c})
			}
		}
		if len(terms) == 0 {
			continue
		}
		sense := Sense(rng.Intn(3))
		rhs := float64(rng.Intn(31) - 5)
		reps := 1
		if rng.Intn(3) == 0 {
			reps = 2 // duplicate row, possibly with a different RHS
		}
		for r := 0; r < reps; r++ {
			p.AddConstraint(terms, sense, rhs+float64(r*rng.Intn(4)), "")
		}
	}
	return p
}

// TestAggregateRoundTripBattery solves ~1000 duplicate-heavy random
// instances with and without aggregation: identical status, objective to
// 1e-9, and a KKT certificate on the disaggregated optimum. Exact
// disaggregation means the reduced solve is invisible except in time.
func TestAggregateRoundTripBattery(t *testing.T) {
	iters := 1000
	if testing.Short() {
		iters = 200
	}
	rng := rand.New(rand.NewSource(808))
	a0 := ReadEngineStats().AggMerges
	for it := 0; it < iters; it++ {
		p := randomAggregateLP(rng)
		agg, err := p.Solve()
		if err != nil {
			t.Fatalf("iter %d agg: %v", it, err)
		}
		q := p.Clone()
		q.DisableAggregation = true
		ref, err := q.Solve()
		if err != nil {
			t.Fatalf("iter %d ref: %v", it, err)
		}
		if agg.Status != ref.Status {
			t.Fatalf("iter %d: status diverged agg=%v ref=%v", it, agg.Status, ref.Status)
		}
		if ref.Status != Optimal {
			continue
		}
		if math.Abs(agg.Obj-ref.Obj) > 1e-9*(1+math.Abs(ref.Obj)) {
			t.Fatalf("iter %d: obj diverged agg=%.12g ref=%.12g", it, agg.Obj, ref.Obj)
		}
		if err := VerifyKKT(p, agg, 1e-6); err != nil {
			t.Fatalf("iter %d: disaggregated optimum fails certificate: %v", it, err)
		}
	}
	merges := ReadEngineStats().AggMerges - a0
	t.Logf("%d instances: %d aggregated solves", iters, merges)
	if merges == 0 {
		t.Errorf("battery never aggregated; the duplicate-skewed generator should trigger merges")
	}
}

// FuzzAggregatePresolve feeds arbitrary instances through the aggregation
// path and its disabled twin: verdicts and optima must agree, and the
// disaggregated optimum must carry a full KKT certificate.
func FuzzAggregatePresolve(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{3, 2, 5, 1, 5, 1, 5, 1, 1, 1, 1, 0, 9})
	f.Add([]byte{4, 3, 8, 0, 8, 0, 2, 200, 7, 7, 7, 1, 2, 3, 4, 5, 6})
	f.Fuzz(func(t *testing.T, data []byte) {
		p := decodeLP(data)
		agg, err := p.Solve()
		if err != nil {
			return
		}
		q := p.Clone()
		q.DisableAggregation = true
		ref, err := q.Solve()
		if err != nil {
			return
		}
		if agg.Status != ref.Status {
			t.Fatalf("status diverged: agg=%v ref=%v", agg.Status, ref.Status)
		}
		if ref.Status != Optimal {
			return
		}
		if math.Abs(agg.Obj-ref.Obj) > 1e-6*(1+math.Abs(ref.Obj)) {
			t.Fatalf("obj diverged: agg=%g ref=%g", agg.Obj, ref.Obj)
		}
		if err := VerifyKKT(p, agg, 1e-6); err != nil {
			t.Fatalf("aggregated optimum fails certificate: %v", err)
		}
	})
}
