package lp

import (
	"testing"
	"testing/quick"

	"repro/internal/stats"
)

func TestVerifyKKTAcceptsOptimal(t *testing.T) {
	p := NewProblem()
	x := p.AddVariable(0, Inf, -3, "x")
	y := p.AddVariable(0, Inf, -5, "y")
	p.AddConstraint([]Term{{x, 1}}, LE, 4, "")
	p.AddConstraint([]Term{{y, 2}}, LE, 12, "")
	p.AddConstraint([]Term{{x, 3}, {y, 2}}, LE, 18, "")
	sol := solveOK(t, p)
	if err := VerifyKKT(p, sol, 1e-7); err != nil {
		t.Fatalf("optimal solution rejected: %v", err)
	}
}

func TestVerifyKKTRejectsDoctored(t *testing.T) {
	p := NewProblem()
	x := p.AddVariable(0, 10, -1, "x")
	p.AddConstraint([]Term{{x, 1}}, LE, 6, "")
	sol := solveOK(t, p)

	// Infeasible primal.
	bad := *sol
	bad.X = []float64{9}
	if err := VerifyKKT(p, &bad, 1e-7); err == nil {
		t.Fatal("infeasible point certified")
	}
	// Suboptimal interior point (stationarity violated).
	bad2 := *sol
	bad2.X = []float64{3}
	bad2.Dual = []float64{0}
	if err := VerifyKKT(p, &bad2, 1e-7); err == nil {
		t.Fatal("suboptimal interior point certified")
	}
	// Wrong-signed dual on a LE row.
	bad3 := *sol
	bad3.Dual = []float64{2}
	if err := VerifyKKT(p, &bad3, 1e-7); err == nil {
		t.Fatal("positive LE dual certified")
	}
	// Nonzero dual on an inactive row (complementary slackness).
	p2 := NewProblem()
	z := p2.AddVariable(0, 1, 1, "z")
	p2.AddConstraint([]Term{{z, 1}}, LE, 5, "") // inactive at z=0
	sol2 := solveOK(t, p2)
	bad4 := *sol2
	bad4.Dual = []float64{-3}
	if err := VerifyKKT(p2, &bad4, 1e-7); err == nil {
		t.Fatal("nonzero dual on slack row certified")
	}
	// Non-optimal status.
	bad5 := *sol
	bad5.Status = Infeasible
	if err := VerifyKKT(p, &bad5, 1e-7); err == nil {
		t.Fatal("non-optimal status certified")
	}
}

// Property: every solution the simplex returns as optimal carries a valid
// KKT certificate.
func TestVerifyKKTProperty(t *testing.T) {
	f := func(seed uint64) bool {
		rng := stats.NewRNG(seed)
		p := randomLP(rng, 2+rng.Intn(5), 1+rng.Intn(5))
		sol, err := p.Solve()
		if err != nil || sol.Status != Optimal {
			return false
		}
		return VerifyKKT(p, sol, 1e-6) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 250}); err != nil {
		t.Fatal(err)
	}
}
