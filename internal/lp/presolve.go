package lp

import (
	"math"
	"sort"
)

// LP presolve: a reduction layer in front of cold Problem.Solve.
//
// Branch-and-bound node problems arrive with most binaries pinned
// (lo == hi) and whole constraint families thereby trivialized: an SOS1
// pick row with all but one member fixed is a singleton, a min-max load
// row over a fully fixed family is empty. standardize already eliminates
// fixed *columns* (kind 3), but it keeps every *row* — and rows are what
// phase 1 pays for (one artificial each for equalities). Presolve closes
// the loop:
//
//   - fixed variables (lo == hi) are substituted into every row;
//   - empty rows are checked (0 {sense} rhs) and dropped — a clear
//     violation is a trivial infeasibility, detected without a simplex;
//   - singleton rows are absorbed into the variable's bounds (an equality
//     singleton fixes the variable, cascading) and dropped;
//   - crossed bounds (lo > hi beyond tolerance) are trivially infeasible;
//     sub-tolerance crossings are snapped to a fixed variable.
//
// The reductions cascade to a fixpoint through a worklist. The elimination
// log is replayed in reverse by postsolve to reconstruct the full original
// Solution — values for eliminated variables, and duals for eliminated
// rows via the running reduced cost of their column (an absorbed bound
// that ends up binding carries the multiplier its variable's reduced cost
// demands; a slack one carries zero) — so callers and VerifyKKT see no
// difference from an unreduced solve.
//
// Warm (Incremental) solves never presolve: their keep-fixed
// standardization must retain every column and row so later TightenBound
// calls remain absorbable. Problem.DisablePresolve opts cold solves out.

// psAction logs one eliminated singleton row for reverse replay.
type psAction struct {
	row     int     // original row index
	vr      int     // the row's single variable
	coef    float64 // its coefficient
	sense   Sense   // original row sense
	implied float64 // rhs/coef: the x value at which the row is tight
}

// presolved carries the reduction mapping from an original problem to its
// reduced form.
type presolved struct {
	orig    *Problem
	reduced *Problem
	colMap  []int     // original var -> reduced var, -1 if eliminated
	fixed   []float64 // value of eliminated vars
	rowMap  []int     // original row -> reduced row, -1 if eliminated
	rows    [][]Term  // original rows, duplicates combined (for postsolve)
	actions []psAction
}

// presolveProblem reduces p, returning (nil, Optimal) when no reduction
// applies (caller should solve p directly), (nil, Infeasible) on a trivial
// infeasibility, or the reduction mapping.
func presolveProblem(p *Problem) (*presolved, Status) {
	n, m := len(p.costs), len(p.rows)

	// Fast path: presolve can only fire from a fixed variable, a crossed
	// bound, or a (sub-)singleton row; scan for a trigger before building
	// any working state. (A multi-term row whose duplicates cancel to a
	// singleton is missed here — that is a soundness-preserving skip.)
	trigger := false
	for j := 0; j < n && !trigger; j++ {
		if p.lo[j] >= p.hi[j] && !math.IsInf(p.lo[j], 0) {
			trigger = true
		}
	}
	for i := 0; i < m && !trigger; i++ {
		if len(p.rows[i].Terms) <= 1 {
			trigger = true
		}
	}
	if !trigger {
		return nil, Optimal
	}

	lo := append([]float64(nil), p.lo...)
	hi := append([]float64(nil), p.hi...)
	isFixed := make([]bool, n)
	fixed := make([]float64, n)

	// Combine duplicate terms per row; build the var -> rows adjacency.
	rows := make([][]Term, m)
	rhs := make([]float64, m)
	alive := make([]bool, m)
	varRows := make([][]int32, n)
	for i := range p.rows {
		r := &p.rows[i]
		alive[i] = true
		rhs[i] = r.RHS
		if len(r.Terms) <= 1 {
			rows[i] = append([]Term(nil), r.Terms...)
			if len(rows[i]) == 1 && rows[i][0].Coef == 0 {
				rows[i] = rows[i][:0]
			}
		} else {
			cs := make(map[int]float64, len(r.Terms))
			for _, t := range r.Terms {
				cs[t.Var] += t.Coef
			}
			terms := make([]Term, 0, len(cs))
			for v, c := range cs {
				if c != 0 {
					terms = append(terms, Term{Var: v, Coef: c})
				}
			}
			sort.Slice(terms, func(a, b int) bool { return terms[a].Var < terms[b].Var })
			rows[i] = terms
		}
		for _, t := range rows[i] {
			varRows[t.Var] = append(varRows[t.Var], int32(i))
		}
	}
	// rows stays the immutable original (combined) form — postsolve prices
	// duals against it; substitution works on a separate copy.
	work := make([][]Term, m)
	for i := range rows {
		work[i] = append([]Term(nil), rows[i]...)
	}
	ps := &presolved{orig: p, rows: rows}

	// fixVar pins variable j at v and enqueues its rows for re-reduction.
	var queue []int32
	fixVar := func(j int, v float64) {
		isFixed[j] = true
		fixed[j] = v
		lo[j], hi[j] = v, v
		queue = append(queue, varRows[j]...)
	}

	// Initial bound screen. Input crossings mirror standardize exactly
	// (strict lo > hi is infeasible); only crossings produced later by
	// tightening get the tolerance snap.
	for j := 0; j < n; j++ {
		if lo[j] > hi[j] {
			return nil, Infeasible
		}
		if lo[j] == hi[j] && !math.IsInf(lo[j], 0) {
			isFixed[j] = true
			fixed[j] = lo[j]
		}
	}
	for i := 0; i < m; i++ {
		queue = append(queue, int32(i))
	}

	for len(queue) > 0 {
		i := int(queue[0])
		queue = queue[1:]
		if !alive[i] {
			continue
		}
		// Substitute fixed variables out of the row.
		terms := work[i]
		w := 0
		for _, t := range terms {
			if isFixed[t.Var] {
				rhs[i] -= t.Coef * fixed[t.Var]
			} else {
				terms[w] = t
				w++
			}
		}
		work[i] = terms[:w]

		switch w {
		case 0:
			// 0 {sense} rhs: either trivially satisfied or infeasible.
			viol := 0.0
			switch p.rows[i].Sense {
			case LE:
				viol = -rhs[i]
			case GE:
				viol = rhs[i]
			case EQ:
				viol = math.Abs(rhs[i])
			}
			if viol > psTol*(1+math.Abs(p.rows[i].RHS)) {
				return nil, Infeasible
			}
			alive[i] = false
		case 1:
			t := work[i][0]
			j, c := t.Var, t.Coef
			v := rhs[i] / c
			sense := p.rows[i].Sense
			// Normalize a negative coefficient: it flips the inequality.
			eff := sense
			if c < 0 {
				if sense == LE {
					eff = GE
				} else if sense == GE {
					eff = LE
				}
			}
			switch eff {
			case EQ:
				if v < lo[j]-psTol*(1+math.Abs(v)) || v > hi[j]+psTol*(1+math.Abs(v)) {
					return nil, Infeasible
				}
				alive[i] = false
				ps.actions = append(ps.actions, psAction{row: i, vr: j, coef: c, sense: sense, implied: v})
				fixVar(j, math.Min(math.Max(v, lo[j]), hi[j]))
				continue
			case LE: // x_j ≤ v
				if v < hi[j] {
					hi[j] = v
				}
			case GE: // x_j ≥ v
				if v > lo[j] {
					lo[j] = v
				}
			}
			alive[i] = false
			ps.actions = append(ps.actions, psAction{row: i, vr: j, coef: c, sense: sense, implied: v})
			if lo[j] > hi[j] {
				if lo[j]-hi[j] > psTol*(1+math.Abs(lo[j])) {
					return nil, Infeasible
				}
				hi[j] = lo[j]
			}
			if lo[j] == hi[j] && !isFixed[j] && !math.IsInf(lo[j], 0) {
				fixVar(j, lo[j])
			}
		}
	}

	// Anything reduced? (Bound tightenings without an elimination cannot
	// happen: every singleton row is dropped once processed.)
	anyFixed := false
	for j := range isFixed {
		if isFixed[j] {
			anyFixed = true
			break
		}
	}
	anyDropped := false
	for i := range alive {
		if !alive[i] {
			anyDropped = true
			break
		}
	}
	if !anyFixed && !anyDropped {
		return nil, Optimal
	}

	// Assemble the reduced problem.
	red := NewProblem()
	red.MaxIter = p.MaxIter
	red.DisableSparse = p.DisableSparse
	red.DisableDevex = p.DisableDevex
	red.DisableCrash = p.DisableCrash
	red.DisableAggregation = p.DisableAggregation
	red.DisableBorder = p.DisableBorder
	red.DisablePresolve = true
	ps.colMap = make([]int, n)
	ps.fixed = fixed
	for j := 0; j < n; j++ {
		if isFixed[j] {
			ps.colMap[j] = -1
			continue
		}
		ps.colMap[j] = red.AddVariable(lo[j], hi[j], p.costs[j], p.names[j])
	}
	// A crash hint survives the reduction: eliminated coordinates drop,
	// the rest map through colMap.
	if p.crashPoint != nil && len(p.crashPoint) == n {
		cp := make([]float64, len(red.costs))
		for j := 0; j < n; j++ {
			if c := ps.colMap[j]; c >= 0 {
				cp[c] = p.crashPoint[j]
			}
		}
		red.crashPoint = cp
	}
	ps.rowMap = make([]int, m)
	for i := 0; i < m; i++ {
		if !alive[i] {
			ps.rowMap[i] = -1
			continue
		}
		terms := make([]Term, len(work[i]))
		for k, t := range work[i] {
			terms[k] = Term{Var: ps.colMap[t.Var], Coef: t.Coef}
		}
		ps.rowMap[i] = red.AddConstraint(terms, p.rows[i].Sense, rhs[i], p.rows[i].Name)
	}
	ps.reduced = red
	return ps, Optimal
}

// postsolve maps a reduced-problem solution back onto the original
// problem: eliminated variables take their fixed values, surviving rows
// keep their duals, and eliminated singleton rows recover theirs by
// reverse replay of the elimination log.
func (ps *presolved) postsolve(sol *Solution) *Solution {
	out := &Solution{Status: sol.Status, Iterations: sol.Iterations, Pivots: sol.Pivots}
	if sol.Status != Optimal {
		return out
	}
	p := ps.orig
	n, m := len(p.costs), len(p.rows)

	x := make([]float64, n)
	for j := 0; j < n; j++ {
		if c := ps.colMap[j]; c >= 0 {
			x[j] = sol.X[c]
		} else {
			x[j] = ps.fixed[j]
		}
	}

	dual := make([]float64, m)
	// Running reduced costs c_j − Σ y_i a_ij over the duals assigned so
	// far, using the original (combined) rows: fixed variables were
	// substituted out of the reduced rows but still appear in the
	// originals that VerifyKKT and callers price against.
	red := append([]float64(nil), p.costs...)
	for i := 0; i < m; i++ {
		r := ps.rowMap[i]
		if r < 0 {
			continue
		}
		y := sol.Dual[r]
		dual[i] = y
		if y == 0 {
			continue
		}
		for _, t := range ps.rows[i] {
			red[t.Var] -= y * t.Coef
		}
	}
	// Reverse replay: an eliminated row whose implied bound the solution
	// actually sits on absorbs the variable's remaining reduced cost (the
	// first such row in replay order takes it all; any other binding row
	// then reads a zero remainder). An equality always absorbs — its
	// variable is wherever the row put it. The assigned dual is then priced
	// through the FULL original row: variables that had been substituted
	// out before this row went singleton (fixed earlier in the log) still
	// appear there, and their own absorbing rows — replayed later, since
	// they were eliminated earlier — need the updated remainder.
	for k := len(ps.actions) - 1; k >= 0; k-- {
		a := ps.actions[k]
		var y float64
		if a.sense == EQ || math.Abs(x[a.vr]-a.implied) <= psTol*(1+math.Abs(a.implied)) {
			y = red[a.vr] / a.coef
		}
		// Dual sign guard: a minimization LE row needs y ≤ 0, GE needs
		// y ≥ 0. A wrong-signed candidate means the bound binds from the
		// harmless side (the variable's own bound coincides); its
		// multiplier belongs to the variable, not this row.
		if (a.sense == LE && y > 0) || (a.sense == GE && y < 0) || math.IsInf(y, 0) || math.IsNaN(y) {
			y = 0
		}
		if y != 0 {
			dual[a.row] = y
			for _, t := range ps.rows[a.row] {
				red[t.Var] -= y * t.Coef
			}
		}
	}

	out.X = x
	out.Dual = dual
	out.Obj = p.Objective(x)
	return out
}
