package lp

import (
	"fmt"
	"math"
	"testing"
)

// TestPhase1DebugHook is a scratch test used while chasing the wrong
// "infeasible" on OA-master child LPs; it stays as a regression guard with
// the hook disabled.
func TestPhase1HookPlumbing(t *testing.T) {
	called := false
	debugPhase1 = func(tab *tableau, std *standard, artStart int) {
		called = true
		pos := 0
		for i, bc := range tab.basis {
			if bc >= artStart && tab.b[i] > 1e-9 {
				pos++
				if pos <= 5 {
					fmt.Printf("  artificial in row %d value %g\n", i, tab.b[i])
				}
			}
		}
		fmt.Printf("phase1 infeasible: obj=%g, %d positive artificials, iters=%d\n",
			tab.obj, pos, tab.iters)
		// Dump reduced costs of nonbasic columns that LOOK ineligible.
		worstLo, worstUp := 0.0, 0.0
		for j := range tab.d {
			if tab.inBase[j] || tab.banned[j] {
				continue
			}
			if tab.status[j] == atLower && tab.d[j] < worstLo {
				worstLo = tab.d[j]
			}
			if tab.status[j] == atUpper && tab.d[j] > worstUp {
				worstUp = tab.d[j]
			}
		}
		fmt.Printf("  worst eligible-looking d: atLower %g, atUpper %g\n", worstLo, worstUp)
		// Recompute obj from scratch as a consistency check.
		recomputed := 0.0
		for i, bc := range tab.basis {
			if bc >= artStart {
				recomputed += tab.b[i]
			}
		}
		fmt.Printf("  Σ artificial b = %g (tracked obj %g)\n", recomputed, tab.obj)
		_ = math.Inf(1)
	}
	defer func() { debugPhase1 = nil }()
	// A genuinely infeasible problem triggers the hook. Presolve would
	// catch this trivially (singleton row vs. bounds) before phase 1 ever
	// runs, so pin the solve to the raw two-phase path.
	p := NewProblem()
	p.DisablePresolve = true
	x := p.AddVariable(0, 1, 1, "x")
	p.AddConstraint([]Term{{x, 1}}, GE, 5, "")
	sol, _ := p.Solve()
	if sol.Status != Infeasible || !called {
		t.Fatalf("hook not exercised: %v %v", sol.Status, called)
	}
}
