package lp

import (
	"math"
	"math/rand"
	"testing"
)

// buildCrashTSeries builds the N-family min-max T-series LP (one EQ pick
// row and one LE load row per family, one dense node-budget row) together
// with the paper-style heuristic hint the crash layer consumes: bisect the
// makespan target and give each family the cheapest configuration meeting
// it. The hint is exactly the greedy allocation a production caller would
// pass through SetCrashPoint, not a solved optimum.
func buildCrashTSeries(n int, seed int64) (*Problem, []float64) {
	rng := rand.New(rand.NewSource(seed))
	p := NewProblem()
	T := p.AddVariable(0, Inf, 1, "T")
	type fam struct {
		vars  []int
		times []float64
		nodes []float64
	}
	fams := make([]fam, n)
	nodeVars := []Term{}
	for f := 0; f < n; f++ {
		K := 4
		vars := make([]int, K)
		times := make([]float64, K)
		nn := make([]float64, K)
		nodes := float64(1 + rng.Intn(8))
		a := 50 + 450*rng.Float64()
		for k := 0; k < K; k++ {
			t := a/nodes + 0.1*nodes + 5*rng.Float64()
			v := p.AddVariable(0, 1, 0, "")
			vars[k], times[k], nn[k] = v, t, nodes
			nodeVars = append(nodeVars, Term{Var: v, Coef: nodes})
			nodes *= 2
		}
		fams[f] = fam{vars, times, nn}
		pick := make([]Term, K)
		for k := 0; k < K; k++ {
			pick[k] = Term{Var: vars[k], Coef: 1}
		}
		p.AddConstraint(pick, EQ, 1, "")
		load := make([]Term, 0, K+1)
		for k := 0; k < K; k++ {
			load = append(load, Term{Var: vars[k], Coef: times[k]})
		}
		load = append(load, Term{Var: T, Coef: -1})
		p.AddConstraint(load, LE, 0, "")
	}
	p.AddConstraint(nodeVars, LE, 6*float64(n), "")

	budget := 6 * float64(n)
	pick := func(tgt float64) (float64, []int, bool) {
		tot := 0.0
		sel := make([]int, len(fams))
		for fi, f := range fams {
			bi, bn := -1, math.Inf(1)
			for k, t := range f.times {
				if t <= tgt && f.nodes[k] < bn {
					bn, bi = f.nodes[k], k
				}
			}
			if bi < 0 {
				return 0, nil, false
			}
			sel[fi] = bi
			tot += bn
		}
		return tot, sel, true
	}
	lo, hi := 0.0, 0.0
	for _, f := range fams {
		mn := math.Inf(1)
		for _, t := range f.times {
			if t < mn {
				mn = t
			}
		}
		if mn > lo {
			lo = mn
		}
		if f.times[0] > hi {
			hi = f.times[0]
		}
	}
	if hi < lo {
		hi = lo
	}
	var bestSel []int
	for it := 0; it < 60; it++ {
		mid := 0.5 * (lo + hi)
		if tot, sel, ok := pick(mid); ok && tot <= budget {
			bestSel = sel
			hi = mid
		} else {
			lo = mid
		}
	}
	if bestSel == nil {
		_, bestSel, _ = pick(hi)
	}
	hint := make([]float64, p.NumVariables())
	maxT := 0.0
	for fi, f := range fams {
		hint[f.vars[bestSel[fi]]] = 1
		if t := f.times[bestSel[fi]]; t > maxT {
			maxT = t
		}
	}
	hint[0] = maxT
	return p, hint
}

// TestCrashTSeriesMatchesCold pins the crash layer's contract on the
// paper's own shape: a crash-hinted cold solve must reach the same optimum
// as the unhinted solve, install (not decline) on this well-formed hint,
// and hold up to the KKT certificate.
func TestCrashTSeriesMatchesCold(t *testing.T) {
	n := 512
	if testing.Short() {
		n = 128
	}
	p, hint := buildCrashTSeries(n, 4242)
	s0 := ReadEngineStats()
	cold, err := p.Solve()
	if err != nil || cold.Status != Optimal {
		t.Fatalf("cold: %v %v", cold.Status, err)
	}
	p2 := p.Clone()
	p2.SetCrashPoint(hint)
	warm, err := p2.Solve()
	if err != nil || warm.Status != Optimal {
		t.Fatalf("crash: %v %v", warm.Status, err)
	}
	s1 := ReadEngineStats()
	t.Logf("cold pivots=%d crash pivots=%d installs=%d declines=%d border=%d",
		cold.Pivots, warm.Pivots,
		s1.CrashInstalls-s0.CrashInstalls, s1.CrashDeclines-s0.CrashDeclines,
		s1.BorderSolves-s0.BorderSolves)
	if s1.CrashInstalls <= s0.CrashInstalls {
		t.Errorf("crash basis declined on a well-formed T-series hint")
	}
	if math.Abs(warm.Obj-cold.Obj) > 1e-6*(1+math.Abs(cold.Obj)) {
		t.Fatalf("obj mismatch: %g vs %g", warm.Obj, cold.Obj)
	}
	if err := VerifyKKT(p2, warm, 1e-6); err != nil {
		t.Fatalf("KKT: %v", err)
	}
}

// TestCrashIncrementalWarmPath drives the crash hint through the
// Incremental (dense warm) engine: install, solve, then keep reoptimizing
// after a bound tighten, the branch-and-bound access pattern.
func TestCrashIncrementalWarmPath(t *testing.T) {
	n := 512
	if testing.Short() {
		n = 128
	}
	p, hint := buildCrashTSeries(n, 4242)
	cold, err := p.Solve()
	if err != nil || cold.Status != Optimal {
		t.Fatalf("cold: %v %v", cold.Status, err)
	}
	p2, _ := buildCrashTSeries(n, 4242)
	p2.SetCrashPoint(hint)
	i0 := ReadEngineStats().CrashInstalls
	inc := NewIncremental(p2)
	sol, err := inc.Solve()
	if err != nil || sol.Status != Optimal {
		t.Fatalf("warm crash: %v %v", sol.Status, err)
	}
	if d := math.Abs(sol.Obj - cold.Obj); d > 1e-7*(1+math.Abs(cold.Obj)) {
		t.Fatalf("objective mismatch: %g vs %g", sol.Obj, cold.Obj)
	}
	if got := ReadEngineStats().CrashInstalls; got <= i0 {
		t.Fatalf("crashInstalls did not increment: %d -> %d", i0, got)
	}
	if err := VerifyKKT(p2, sol, 1e-6); err != nil {
		t.Fatalf("KKT: %v", err)
	}
	inc.TightenBound(1, 0, 0)
	sol2, err := inc.Solve()
	if err != nil || sol2.Status != Optimal {
		t.Fatalf("reopt after tighten: %v %v", sol2.Status, err)
	}
}

// randomBatteryLP builds a small random box-bounded LP: up to 8 variables,
// up to 8 rows of mixed sense with small integer coefficients. The
// population deliberately includes infeasible and unbounded instances —
// the battery checks agreement of verdicts, not just optima.
func randomBatteryLP(rng *rand.Rand) *Problem {
	p := NewProblem()
	nv := 1 + rng.Intn(8)
	for j := 0; j < nv; j++ {
		hi := float64(rng.Intn(20))
		if rng.Intn(8) == 0 {
			hi = Inf
		}
		p.AddVariable(0, hi, float64(rng.Intn(21)-10), "")
	}
	nc := rng.Intn(9)
	for c := 0; c < nc; c++ {
		var terms []Term
		for v := 0; v < nv; v++ {
			if coef := rng.Intn(11) - 5; coef != 0 {
				terms = append(terms, Term{Var: v, Coef: float64(coef)})
			}
		}
		if len(terms) == 0 {
			continue
		}
		p.AddConstraint(terms, Sense(rng.Intn(3)), float64(rng.Intn(41)-10), "")
	}
	return p
}

// randomCrashPoint draws a hint of varying quality: the cold optimum, a
// perturbation of it, or a uniformly random point in the boxes. Poor hints
// must decline or repair, never corrupt the answer.
func randomCrashPoint(rng *rand.Rand, p *Problem, coldX []float64) []float64 {
	n := p.NumVariables()
	hint := make([]float64, n)
	switch mode := rng.Intn(3); {
	case mode == 0 && coldX != nil:
		copy(hint, coldX)
	case mode == 1 && coldX != nil:
		for j := range hint {
			hint[j] = coldX[j] + rng.NormFloat64()
		}
	default:
		for j := range hint {
			hint[j] = float64(rng.Intn(25)) - 5
		}
	}
	return hint
}

// TestCrashVsColdBattery solves ~1000 random instances twice — cold and
// with a crash hint of varying quality — and demands identical status, an
// objective match to 1e-9 (relative), and a clean KKT certificate on the
// crash-path optimum. This is the paranoid-fallback contract: a hint can
// save pivots or be declined, but it can never change the answer.
func TestCrashVsColdBattery(t *testing.T) {
	iters := 1000
	if testing.Short() {
		iters = 200
	}
	rng := rand.New(rand.NewSource(20260808))
	installs, declines := 0, 0
	s0 := ReadEngineStats()
	for it := 0; it < iters; it++ {
		p := randomBatteryLP(rng)
		cold, err := p.Solve()
		if err != nil {
			t.Fatalf("iter %d cold: %v", it, err)
		}
		var coldX []float64
		if cold.Status == Optimal {
			coldX = cold.X
		}
		q := p.Clone()
		q.SetCrashPoint(randomCrashPoint(rng, p, coldX))
		crash, err := q.Solve()
		if err != nil {
			t.Fatalf("iter %d crash: %v", it, err)
		}
		if crash.Status != cold.Status {
			t.Fatalf("iter %d: status diverged cold=%v crash=%v", it, cold.Status, crash.Status)
		}
		if cold.Status != Optimal {
			continue
		}
		if math.Abs(crash.Obj-cold.Obj) > 1e-9*(1+math.Abs(cold.Obj)) {
			t.Fatalf("iter %d: obj diverged cold=%.12g crash=%.12g", it, cold.Obj, crash.Obj)
		}
		if err := VerifyKKT(q, crash, 1e-6); err != nil {
			t.Fatalf("iter %d: crash optimum fails certificate: %v", it, err)
		}
	}
	s1 := ReadEngineStats()
	installs = int(s1.CrashInstalls - s0.CrashInstalls)
	declines = int(s1.CrashDeclines - s0.CrashDeclines)
	t.Logf("%d instances: %d installs, %d declines", iters, installs, declines)
	if installs == 0 {
		t.Errorf("battery never installed a crash basis; the layer is dead code on this population")
	}
	if declines == 0 {
		t.Errorf("battery never declined; the random hints should exercise the fallback")
	}
}

// FuzzCrashBasis feeds arbitrary instances plus arbitrary crash points to
// the solver: no panic, and any claimed optimum must match the unhinted
// solve and pass the KKT certificate.
func FuzzCrashBasis(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{2, 1, 5, 1, 10, 5, 1, 3, 7, 0, 4, 9, 9})
	f.Add([]byte{5, 6, 0, 0, 255, 31, 1, 128, 9, 2, 100, 200, 50, 25, 12, 6, 3, 1, 2, 3})
	f.Fuzz(func(t *testing.T, data []byte) {
		p := decodeLP(data)
		cold, err := p.Solve()
		if err != nil {
			return
		}
		q := p.Clone()
		hint := make([]float64, p.NumVariables())
		for j := range hint {
			if len(data) > 0 {
				hint[j] = float64(int8(data[j%len(data)]))
			}
		}
		q.SetCrashPoint(hint)
		crash, err := q.Solve()
		if err != nil {
			return
		}
		if crash.Status != cold.Status {
			t.Fatalf("status diverged: cold=%v crash=%v", cold.Status, crash.Status)
		}
		if cold.Status != Optimal {
			return
		}
		if math.Abs(crash.Obj-cold.Obj) > 1e-6*(1+math.Abs(cold.Obj)) {
			t.Fatalf("obj diverged: cold=%g crash=%g", cold.Obj, crash.Obj)
		}
		if err := VerifyKKT(q, crash, 1e-6); err != nil {
			t.Fatalf("crash optimum fails certificate: %v", err)
		}
	})
}
