package lp

import (
	"math"
	"testing"
)

// Klee–Minty cubes are the classic worst case for Dantzig pricing; they
// must still solve correctly (possibly after many pivots).
func TestKleeMinty(t *testing.T) {
	for _, n := range []int{3, 5, 8} {
		p := NewProblem()
		vars := make([]int, n)
		for j := 0; j < n; j++ {
			// max Σ 2^(n-1-j) x_j.
			vars[j] = p.AddVariable(0, Inf, -math.Pow(2, float64(n-1-j)), "")
		}
		for i := 0; i < n; i++ {
			terms := []Term{{vars[i], 1}}
			for j := 0; j < i; j++ {
				terms = append(terms, Term{vars[j], math.Pow(2, float64(i-j+1))})
			}
			p.AddConstraint(terms, LE, math.Pow(5, float64(i+1)), "")
		}
		sol, err := p.Solve()
		if err != nil {
			t.Fatal(err)
		}
		if sol.Status != Optimal {
			t.Fatalf("n=%d: status %v", n, sol.Status)
		}
		// Known optimum: x_n = 5^n, others 0, objective -5^n.
		want := -math.Pow(5, float64(n))
		if math.Abs(sol.Obj-want) > 1e-6*math.Abs(want) {
			t.Fatalf("n=%d: obj %v, want %v", n, sol.Obj, want)
		}
	}
}

// A pathological scale mix: coefficients spanning 10 orders of magnitude.
func TestScaleRobustness(t *testing.T) {
	p := NewProblem()
	x := p.AddVariable(0, Inf, 1e-6, "x")
	y := p.AddVariable(0, Inf, 1e4, "y")
	p.AddConstraint([]Term{{x, 1e6}, {y, 1e-4}}, GE, 1e6, "")
	sol, err := p.Solve()
	if err != nil || sol.Status != Optimal {
		t.Fatalf("status %v err %v", sol.Status, err)
	}
	// Cheapest way to satisfy the row: x = 1 (cost 1e-6).
	if math.Abs(sol.X[x]-1) > 1e-6 {
		t.Fatalf("x = %v", sol.X)
	}
}

// Zero-width ranges everywhere: the fixed-variable substitution path.
func TestAllFixedVariables(t *testing.T) {
	p := NewProblem()
	x := p.AddVariable(2, 2, 3, "x")
	y := p.AddVariable(-1, -1, 5, "y")
	p.AddConstraint([]Term{{x, 1}, {y, 1}}, LE, 1.5, "")
	sol, err := p.Solve()
	if err != nil || sol.Status != Optimal {
		t.Fatalf("status %v err %v", sol.Status, err)
	}
	if sol.X[x] != 2 || sol.X[y] != -1 {
		t.Fatalf("x = %v", sol.X)
	}
	if math.Abs(sol.Obj-1) > 1e-12 {
		t.Fatalf("obj = %v", sol.Obj)
	}
	// And an infeasible fixed combination.
	p2 := NewProblem()
	a := p2.AddVariable(2, 2, 0, "a")
	p2.AddConstraint([]Term{{a, 1}}, GE, 3, "")
	sol2, err := p2.Solve()
	if err != nil || sol2.Status != Infeasible {
		t.Fatalf("status %v err %v, want infeasible", sol2.Status, err)
	}
}
