package lp_test

import (
	"math"
	"testing"

	"repro/internal/lp"
)

// nearParallelCutLP is a minimized branch-and-bound node LP captured from an
// outer-approximation master that made the dense tableau pivot itself into
// numeric garbage: the three oa[perf[t2]] rows (and the two oa[perf[t4]]
// rows) are near-parallel copies of the same cut whose coefficients differ
// only around 1e-6 relative. After the first of them pivots, the others'
// tableau entries are pure cancellation noise — and a single-pass exact
// ratio test is then forced to pivot on a ~1e-7 entry, amplifying every
// tableau value by its reciprocal. Two such pivots inflated reduced costs to
// ~1e14 and produced an "optimal" solution with x[n(t0)] ≈ 34 against an
// upper bound of 17, which in turn made the MILP layer branch forever
// (floor(34) ≥ 17 leaves the child identical to its parent).
//
// The two-pass Harris ratio test (tableau.run) fixes this by relaxing each
// basic bound by a slack relative to that bound's own magnitude and then
// pivoting on the largest admissible entry.
func nearParallelCutLP() *lp.Problem {
	p := lp.NewProblem()
	p.AddVariable(0, 10.45286474974421, 1, "T")
	p.AddVariable(3, 17, 0, "n[t0]")
	p.AddVariable(0, 1, 0, "z[t0=3]")
	p.AddVariable(0, 1, 0, "z[t0=7]")
	p.AddVariable(0, 1, 0, "z[t0=13]")
	p.AddVariable(0, 1, 0, "z[t0=16]")
	p.AddVariable(0, 1, 0, "z[t0=17]")
	p.AddVariable(3, 93, 0, "n[t1]")
	p.AddVariable(1, 93, 0, "n[t2]")
	p.AddVariable(1, 93, 0, "n[t3]")
	p.AddVariable(1, 93, 0, "n[t4]")
	p.AddConstraint([]lp.Term{{Var: 8, Coef: -0.2816967520299447}, {Var: 0, Coef: -1}}, lp.LE, -1.1746480489164406, "oa[perf[t2]]")
	p.AddConstraint([]lp.Term{{Var: 8, Coef: -0.2816953832080269}, {Var: 0, Coef: -1}}, lp.LE, -1.1746451975293033, "oa[perf[t2]]")
	p.AddConstraint([]lp.Term{{Var: 8, Coef: -0.28169538320802423}, {Var: 0, Coef: -1}}, lp.LE, -1.1746451975292977, "oa[perf[t2]]")
	p.AddConstraint([]lp.Term{{Var: 10, Coef: -0.03305176785262576}, {Var: 0, Coef: -1}}, lp.LE, -1.1757521169033385, "oa[perf[t4]]")
	p.AddConstraint([]lp.Term{{Var: 1, Coef: -0.0345165719802828}, {Var: 0, Coef: -1}}, lp.LE, -1.1746277491233088, "oa[perf[t0]]")
	p.AddConstraint([]lp.Term{{Var: 10, Coef: -0.033036700967000066}, {Var: 0, Coef: -1}}, lp.LE, -1.1754841462407115, "oa[perf[t4]]")
	return p
}

// TestNearParallelCutsStayInBounds replays the recorded tableau corruption
// on every solver path and asserts the one invariant the defect broke: an
// Optimal solution respects its own variable bounds.
func TestNearParallelCutsStayInBounds(t *testing.T) {
	for _, cfg := range []struct {
		name             string
		sparse, presolve bool
	}{
		{"dense", false, true},
		{"dense-nopresolve", false, false},
		{"sparse", true, true},
		{"sparse-nopresolve", true, false},
	} {
		p := nearParallelCutLP()
		p.DisableSparse = !cfg.sparse
		p.DisablePresolve = !cfg.presolve
		sol, err := p.Solve()
		if err != nil {
			t.Fatalf("%s: %v", cfg.name, err)
		}
		if sol.Status != lp.Optimal {
			t.Fatalf("%s: status %v, want optimal", cfg.name, sol.Status)
		}
		for j := 0; j < p.NumVariables(); j++ {
			lo, hi := p.Bounds(j)
			if sol.X[j] < lo-1e-6 || sol.X[j] > hi+1e-6 {
				t.Fatalf("%s: x[%d]=%v outside [%v, %v]", cfg.name, j, sol.X[j], lo, hi)
			}
		}
		// The optimum: every n variable at its largest admissible value,
		// T at the worst of the cut intercepts there.
		if math.Abs(sol.X[1]-17) > 1e-6 {
			t.Fatalf("%s: x[n(t0)]=%v, want 17", cfg.name, sol.X[1])
		}
		if math.Abs(sol.Obj-0.5878460254585012) > 1e-7 {
			t.Fatalf("%s: obj=%v, want ≈ 0.5878460254585012", cfg.name, sol.Obj)
		}
	}
}
