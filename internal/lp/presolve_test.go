package lp

import (
	"math"
	"testing"

	"repro/internal/stats"
)

// presolveInstance generates a small LP rigged to exercise every presolve
// reduction: fixed variables, singleton rows of all senses and signs,
// rows that empty out after substitution, and plain multi-term rows.
// Values are quantized to eighths so feasibility questions never land in
// the tolerance gray zone where the trivial checks and phase 1 could
// legitimately disagree.
func presolveInstance(rng *stats.RNG) *Problem {
	p := NewProblem()
	n := 2 + rng.Intn(6)
	q := func(lo, hi float64) float64 {
		return math.Round(rng.Range(lo, hi)*8) / 8
	}
	for j := 0; j < n; j++ {
		lo := q(-4, 2)
		hi := lo + q(0, 6)
		if rng.Intn(4) == 0 {
			hi = lo // fixed at input
		}
		p.AddVariable(lo, hi, q(-5, 5), "")
	}
	m := 1 + rng.Intn(7)
	for i := 0; i < m; i++ {
		var terms []Term
		switch rng.Intn(4) {
		case 0: // singleton
			c := q(-3, 3)
			if c == 0 {
				c = 1
			}
			terms = []Term{{Var: rng.Intn(n), Coef: c}}
		case 1: // pair, possibly duplicating a variable
			terms = []Term{
				{Var: rng.Intn(n), Coef: q(-3, 3)},
				{Var: rng.Intn(n), Coef: q(-3, 3)},
			}
		default:
			k := 2 + rng.Intn(n)
			for v := 0; v < n && len(terms) < k; v++ {
				if rng.Intn(2) == 0 {
					terms = append(terms, Term{Var: v, Coef: q(-3, 3)})
				}
			}
			if len(terms) == 0 {
				terms = []Term{{Var: 0, Coef: 1}}
			}
		}
		sense := Sense(rng.Intn(3))
		p.AddConstraint(terms, sense, q(-8, 8), "")
	}
	return p
}

// comparePaths solves p through the default path (presolve + sparse
// kernels) and through the pinned dense authority, then cross-checks
// status, objective, and both KKT certificates.
func comparePaths(t *testing.T, seed int, p *Problem) {
	t.Helper()
	dense := p.Clone()
	dense.DisableSparse = true
	dense.DisablePresolve = true

	got, err := p.Solve()
	if err != nil {
		t.Fatalf("seed %d: default solve error: %v", seed, err)
	}
	want, err := dense.Solve()
	if err != nil {
		t.Fatalf("seed %d: dense solve error: %v", seed, err)
	}
	if got.Status != want.Status {
		t.Fatalf("seed %d: status %v (default) vs %v (dense authority)", seed, got.Status, want.Status)
	}
	if got.Status != Optimal {
		return
	}
	if math.Abs(got.Obj-want.Obj) > 1e-9*(1+math.Abs(want.Obj)) {
		t.Fatalf("seed %d: obj %.12g (default) vs %.12g (dense authority)", seed, got.Obj, want.Obj)
	}
	if err := VerifyKKT(p, got, 1e-6); err != nil {
		t.Fatalf("seed %d: default-path certificate: %v", seed, err)
	}
	if err := VerifyKKT(dense, want, 1e-6); err != nil {
		t.Fatalf("seed %d: dense-path certificate: %v", seed, err)
	}
}

// TestPresolveRoundTripProperty: the presolve/postsolve round trip must be
// invisible — same status and objective as the dense authority, and a full
// KKT certificate (values AND reconstructed duals) on the original
// problem, across a population heavy in presolvable structure.
func TestPresolveRoundTripProperty(t *testing.T) {
	instances := 1000
	if testing.Short() {
		instances = 150
	}
	for seed := 0; seed < instances; seed++ {
		rng := stats.NewRNG(uint64(seed) + 11)
		comparePaths(t, seed, presolveInstance(rng))
	}
}

// TestPresolveReduces pins the reductions themselves: fixed variables
// leave, implied-empty and singleton rows leave, and postsolve restores
// full-length certificates.
func TestPresolveReduces(t *testing.T) {
	p := NewProblem()
	x := p.AddVariable(2, 2, 3, "x") // fixed at input
	y := p.AddVariable(0, 10, -1, "y")
	z := p.AddVariable(0, 10, 1, "z")
	p.AddConstraint([]Term{{x, 1}, {y, 1}}, LE, 8, "")  // y ≤ 6 after substitution
	p.AddConstraint([]Term{{x, 2}}, LE, 5, "")          // empties: 4 ≤ 5
	p.AddConstraint([]Term{{z, 1}}, EQ, 4, "")          // fixes z
	p.AddConstraint([]Term{{y, 1}, {z, 1}}, LE, 20, "") // slack either way

	ps, st := presolveProblem(p)
	if st != Optimal || ps == nil {
		t.Fatalf("expected a reduction, got ps=%v st=%v", ps, st)
	}
	if ps.reduced.NumVariables() != 1 {
		t.Fatalf("reduced vars = %d, want 1 (only y survives)", ps.reduced.NumVariables())
	}
	// Every row trivializes: rows 0 and 3 become singletons on y once x and
	// z are substituted and are absorbed into y's bounds.
	if ps.reduced.NumConstraints() != 0 {
		t.Fatalf("reduced rows = %d, want 0", ps.reduced.NumConstraints())
	}
	sol, err := p.Solve()
	if err != nil || sol.Status != Optimal {
		t.Fatalf("solve: %v %v", sol.Status, err)
	}
	wantX := []float64{2, 6, 4}
	for j, w := range wantX {
		if math.Abs(sol.X[j]-w) > 1e-9 {
			t.Fatalf("X[%d] = %g, want %g", j, sol.X[j], w)
		}
	}
	if err := VerifyKKT(p, sol, 1e-8); err != nil {
		t.Fatalf("postsolved certificate: %v", err)
	}
	// The y ≤ 6 row binds (cost favors large y): its reconstructed dual
	// must carry y's reduced cost, -(-1)/1... c_y = -1, so y = -1.
	if math.Abs(sol.Dual[0]-(-1)) > 1e-9 {
		t.Fatalf("dual[0] = %g, want -1", sol.Dual[0])
	}
	if sol.Dual[1] != 0 || sol.Dual[3] != 0 {
		t.Fatalf("slack rows must carry zero duals, got %g %g", sol.Dual[1], sol.Dual[3])
	}
}

// TestPresolveTrivialInfeasible: contradictions presolve must catch (or
// hand to the simplex with an agreeing verdict).
func TestPresolveTrivialInfeasible(t *testing.T) {
	cases := []func() *Problem{
		func() *Problem { // empty row violation
			p := NewProblem()
			x := p.AddVariable(1, 1, 0, "x")
			p.AddConstraint([]Term{{x, 1}}, GE, 3, "")
			return p
		},
		func() *Problem { // singleton forces bound crossing
			p := NewProblem()
			x := p.AddVariable(0, 5, 1, "x")
			p.AddConstraint([]Term{{x, 1}}, GE, 4, "")
			p.AddConstraint([]Term{{x, 1}}, LE, 2, "")
			return p
		},
		func() *Problem { // EQ singleton out of range
			p := NewProblem()
			x := p.AddVariable(0, 1, 1, "x")
			p.AddConstraint([]Term{{x, 2}}, EQ, 7, "")
			return p
		},
	}
	for i, mk := range cases {
		sol, err := mk().Solve()
		if err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		if sol.Status != Infeasible {
			t.Fatalf("case %d: status %v, want Infeasible", i, sol.Status)
		}
	}
}

// TestPresolveAllEliminated: a problem that reduces to nothing still
// round-trips (the reduced solve is a 0-var, 0-row LP).
func TestPresolveAllEliminated(t *testing.T) {
	p := NewProblem()
	x := p.AddVariable(0, 9, 2, "x")
	y := p.AddVariable(-3, 3, -1, "y")
	p.AddConstraint([]Term{{x, 1}}, EQ, 4, "")
	p.AddConstraint([]Term{{y, 2}}, EQ, -2, "")
	p.AddConstraint([]Term{{x, 1}, {y, 1}}, LE, 10, "")
	sol, err := p.Solve()
	if err != nil || sol.Status != Optimal {
		t.Fatalf("solve: %v %v", sol.Status, err)
	}
	if math.Abs(sol.X[0]-4) > 1e-12 || math.Abs(sol.X[1]-(-1)) > 1e-12 {
		t.Fatalf("X = %v, want [4 -1]", sol.X)
	}
	if math.Abs(sol.Obj-9) > 1e-12 {
		t.Fatalf("obj = %g, want 9", sol.Obj)
	}
	if err := VerifyKKT(p, sol, 1e-9); err != nil {
		t.Fatalf("certificate: %v", err)
	}
}
