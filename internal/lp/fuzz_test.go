package lp

import (
	"math"
	"testing"
)

// decodeLP deterministically builds a small LP from fuzz bytes: up to six
// box-bounded variables (occasionally unbounded above) and up to six rows
// with int8-scaled coefficients. The decoder accepts any byte string, so
// the fuzzer explores infeasible, unbounded, degenerate, and empty
// instances alike.
func decodeLP(data []byte) *Problem {
	next := func() byte {
		if len(data) == 0 {
			return 0
		}
		b := data[0]
		data = data[1:]
		return b
	}
	p := NewProblem()
	nv := 1 + int(next())%6
	nc := int(next()) % 7
	for i := 0; i < nv; i++ {
		hi := float64(next() % 32)
		if next()%8 == 0 {
			hi = Inf
		}
		p.AddVariable(0, hi, float64(int8(next())), "")
	}
	for c := 0; c < nc; c++ {
		var terms []Term
		for v := 0; v < nv; v++ {
			if coef := float64(int8(next())); coef != 0 {
				terms = append(terms, Term{Var: v, Coef: coef})
			}
		}
		sense := Sense(next() % 3)
		rhs := float64(int8(next()))
		if len(terms) > 0 {
			p.AddConstraint(terms, sense, rhs, "")
		}
	}
	return p
}

// FuzzSimplex feeds arbitrary small standard-form instances to the simplex
// solver: it must never panic, and any claimed optimum must be a finite
// point that satisfies the variable boxes and rows to tolerance.
func FuzzSimplex(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{2, 1, 5, 1, 10, 5, 1, 3, 7, 0, 4})
	f.Add([]byte{5, 6, 0, 0, 255, 31, 1, 128, 9, 2, 100, 200, 50, 25, 12, 6, 3})
	f.Fuzz(func(t *testing.T, data []byte) {
		p := decodeLP(data)
		sol, err := p.Solve()
		if err != nil || sol.Status != Optimal {
			return // rejecting is fine; claiming optimality is what we audit
		}
		if len(sol.X) != p.NumVariables() {
			t.Fatalf("len(X) = %d, want %d", len(sol.X), p.NumVariables())
		}
		if math.IsNaN(sol.Obj) || math.IsInf(sol.Obj, 0) {
			t.Fatalf("optimal status with objective %v", sol.Obj)
		}
		for i, x := range sol.X {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				t.Fatalf("X[%d] = %v", i, x)
			}
		}
		// A claimed optimum must at least be a KKT point; the decoder only
		// emits coefficients of magnitude ≤ 127, so a modest absolute
		// tolerance is meaningful.
		if err := VerifyKKT(p, sol, 1e-6); err != nil {
			t.Fatalf("optimal solution fails certificate: %v (X=%v)", err, sol.X)
		}
	})
}
