package lp

import (
	"math"
	"testing"
)

// decodeLP deterministically builds a small LP from fuzz bytes: up to six
// box-bounded variables (occasionally unbounded above) and up to six rows
// with int8-scaled coefficients. The decoder accepts any byte string, so
// the fuzzer explores infeasible, unbounded, degenerate, and empty
// instances alike.
func decodeLP(data []byte) *Problem {
	next := func() byte {
		if len(data) == 0 {
			return 0
		}
		b := data[0]
		data = data[1:]
		return b
	}
	p := NewProblem()
	nv := 1 + int(next())%6
	nc := int(next()) % 7
	for i := 0; i < nv; i++ {
		hi := float64(next() % 32)
		if next()%8 == 0 {
			hi = Inf
		}
		p.AddVariable(0, hi, float64(int8(next())), "")
	}
	for c := 0; c < nc; c++ {
		var terms []Term
		for v := 0; v < nv; v++ {
			if coef := float64(int8(next())); coef != 0 {
				terms = append(terms, Term{Var: v, Coef: coef})
			}
		}
		sense := Sense(next() % 3)
		rhs := float64(int8(next()))
		if len(terms) > 0 {
			p.AddConstraint(terms, sense, rhs, "")
		}
	}
	return p
}

// FuzzSimplex feeds arbitrary small standard-form instances to the simplex
// solver: it must never panic, and any claimed optimum must be a finite
// point that satisfies the variable boxes and rows to tolerance.
func FuzzSimplex(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{2, 1, 5, 1, 10, 5, 1, 3, 7, 0, 4})
	f.Add([]byte{5, 6, 0, 0, 255, 31, 1, 128, 9, 2, 100, 200, 50, 25, 12, 6, 3})
	f.Fuzz(func(t *testing.T, data []byte) {
		p := decodeLP(data)
		sol, err := p.Solve()
		if err != nil || sol.Status != Optimal {
			return // rejecting is fine; claiming optimality is what we audit
		}
		if len(sol.X) != p.NumVariables() {
			t.Fatalf("len(X) = %d, want %d", len(sol.X), p.NumVariables())
		}
		if math.IsNaN(sol.Obj) || math.IsInf(sol.Obj, 0) {
			t.Fatalf("optimal status with objective %v", sol.Obj)
		}
		for i, x := range sol.X {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				t.Fatalf("X[%d] = %v", i, x)
			}
		}
		// A claimed optimum must at least be a KKT point; the decoder only
		// emits coefficients of magnitude ≤ 127, so a modest absolute
		// tolerance is meaningful.
		if err := VerifyKKT(p, sol, 1e-6); err != nil {
			t.Fatalf("optimal solution fails certificate: %v (X=%v)", err, sol.X)
		}
	})
}

// decodePresolveLP builds on decodeLP's byte diet but skews the population
// toward presolve triggers: fixed variables (lo == hi), nonzero lower
// bounds, and singleton rows.
func decodePresolveLP(data []byte) *Problem {
	next := func() byte {
		if len(data) == 0 {
			return 0
		}
		b := data[0]
		data = data[1:]
		return b
	}
	p := NewProblem()
	nv := 1 + int(next())%6
	nc := int(next()) % 7
	for i := 0; i < nv; i++ {
		lo := float64(int8(next()) % 16)
		span := float64(next() % 16)
		if next()%4 == 0 {
			span = 0 // fixed at input
		}
		p.AddVariable(lo, lo+span, float64(int8(next())), "")
	}
	for c := 0; c < nc; c++ {
		var terms []Term
		if next()%3 == 0 { // singleton row
			coef := float64(int8(next()))
			if coef == 0 {
				coef = 1
			}
			terms = []Term{{Var: int(next()) % nv, Coef: coef}}
		} else {
			for v := 0; v < nv; v++ {
				if coef := float64(int8(next())); coef != 0 {
					terms = append(terms, Term{Var: v, Coef: coef})
				}
			}
		}
		sense := Sense(next() % 3)
		rhs := float64(int8(next()))
		if len(terms) > 0 {
			p.AddConstraint(terms, sense, rhs, "")
		}
	}
	return p
}

// FuzzPresolve audits the presolve/postsolve round trip: on any decodable
// instance, the default path (presolve + sparse kernels) must agree with
// the pinned dense no-presolve authority on status, match its objective,
// and produce a full KKT certificate on the ORIGINAL problem — values and
// reconstructed duals for eliminated rows alike.
func FuzzPresolve(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{3, 2, 2, 0, 1, 5, 0, 0, 3, 1, 7, 2, 0, 4, 1, 1, 2, 9})
	f.Add([]byte{4, 5, 1, 4, 0, 200, 2, 0, 0, 3, 0, 3, 5, 1, 128, 127, 64, 32, 2, 1})
	f.Fuzz(func(t *testing.T, data []byte) {
		p := decodePresolveLP(data)
		dense := p.Clone()
		dense.DisableSparse = true
		dense.DisablePresolve = true

		got, err := p.Solve()
		if err != nil {
			return // structurally invalid models may reject either way
		}
		want, err := dense.Solve()
		if err != nil {
			t.Fatalf("dense authority rejected what default accepted: %v", err)
		}
		if got.Status != want.Status {
			t.Fatalf("status %v (default) vs %v (dense authority)", got.Status, want.Status)
		}
		if got.Status != Optimal {
			return
		}
		if math.Abs(got.Obj-want.Obj) > 1e-6*(1+math.Abs(want.Obj)) {
			t.Fatalf("obj %.12g (default) vs %.12g (dense authority)", got.Obj, want.Obj)
		}
		if err := VerifyKKT(p, got, 1e-6); err != nil {
			t.Fatalf("postsolved certificate: %v", err)
		}
	})
}
