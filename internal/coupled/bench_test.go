package coupled

import (
	"testing"

	"repro/internal/minlp"
)

// BenchmarkEighthDegreeConstrained solves the 1/8°, 32768-node layout with
// the hard-coded ocean set (the follow-up's production configuration).
func BenchmarkEighthDegreeConstrained(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := EighthDegree(32768, true).Solve(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEighthDegreeUnconstrained opens the ocean set (ternary-search
// path over the full range).
func BenchmarkEighthDegreeUnconstrained(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := EighthDegree(32768, false).Solve(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkOneDegreeMINLP solves the 1° layout via the paper's MINLP route.
func BenchmarkOneDegreeMINLP(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg := OneDegree(128)
		if _, err := cfg.SolveMINLP(minlp.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}
