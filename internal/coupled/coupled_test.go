package coupled

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/minlp"
	"repro/internal/perfmodel"
	"repro/internal/stats"
)

// smallConfig returns a 4-component instance small enough for exhaustive
// verification.
func smallConfig(n int, layout Layout) *Config {
	return &Config{
		Ice:        Component{Name: "ice", Perf: perfmodel.Params{A: 90, B: 0.01, C: 1, D: 1}},
		Lnd:        Component{Name: "lnd", Perf: perfmodel.Params{A: 15, B: 0.01, C: 1, D: 0.5}},
		Atm:        Component{Name: "atm", Perf: perfmodel.Params{A: 320, B: 0.005, C: 1.1, D: 2}},
		Ocn:        Component{Name: "ocn", Perf: perfmodel.Params{A: 140, B: 0.02, C: 1, D: 1.5}},
		TotalNodes: n,
		Layout:     layout,
	}
}

// bruteLayout exhaustively enumerates all admissible allocations of the
// config (test oracle; exponential, keep n small).
func bruteLayout(cfg *Config) *Result {
	var best *Result
	for _, no := range cfg.Ocn.candidatesUpTo(cfg.TotalNodes, 0) {
		for _, na := range cfg.Atm.candidatesUpTo(cfg.TotalNodes, 0) {
			for _, ni := range cfg.Ice.candidatesUpTo(cfg.TotalNodes, 0) {
				for _, nl := range cfg.Lnd.candidatesUpTo(cfg.TotalNodes, 0) {
					r := cfg.evaluate(ni, nl, na, no)
					if !cfg.Feasible(r) {
						continue
					}
					if best == nil || r.Total < best.Total {
						best = r
					}
				}
			}
		}
	}
	return best
}

func TestValidate(t *testing.T) {
	if err := smallConfig(32, Layout1).Validate(); err != nil {
		t.Fatal(err)
	}
	bad := smallConfig(32, Layout1)
	bad.Layout = Layout(7)
	if err := bad.Validate(); err == nil {
		t.Fatal("bad layout accepted")
	}
	tiny := smallConfig(3, Layout1)
	if err := tiny.Validate(); err == nil {
		t.Fatal("3 nodes accepted")
	}
	seq := smallConfig(32, Layout1)
	seq.Ocn.Allowed = []int{4, 4}
	if err := seq.Validate(); err == nil {
		t.Fatal("non-increasing allowed set accepted")
	}
}

func TestAssemble(t *testing.T) {
	if v := Assemble(Layout1, 2, 3, 5, 7); v != 8 {
		t.Fatalf("layout1 = %v, want max(max(2,3)+5, 7) = 8", v)
	}
	if v := Assemble(Layout2, 2, 3, 5, 11); v != 11 {
		t.Fatalf("layout2 = %v, want max(10, 11) = 11", v)
	}
	if v := Assemble(Layout3, 2, 3, 5, 7); v != 17 {
		t.Fatalf("layout3 = %v, want 17", v)
	}
}

func TestLayout1AgainstBrute(t *testing.T) {
	cfg := smallConfig(24, Layout1)
	got, err := cfg.Solve()
	if err != nil {
		t.Fatal(err)
	}
	want := bruteLayout(cfg)
	if want == nil {
		t.Fatal("brute found nothing")
	}
	if math.Abs(got.Total-want.Total) > 1e-9*want.Total {
		t.Fatalf("solve %v vs brute %v (alloc %+v vs %+v)", got.Total, want.Total, got.Nodes(), want.Nodes())
	}
	if !cfg.Feasible(got) {
		t.Fatalf("infeasible solution %+v", got)
	}
}

func TestLayout2And3AgainstBrute(t *testing.T) {
	for _, layout := range []Layout{Layout2, Layout3} {
		cfg := smallConfig(20, layout)
		got, err := cfg.Solve()
		if err != nil {
			t.Fatal(err)
		}
		want := bruteLayout(cfg)
		if math.Abs(got.Total-want.Total) > 1e-9*want.Total {
			t.Fatalf("%v: solve %v vs brute %v", layout, got.Total, want.Total)
		}
	}
}

func TestMINLPRouteAgrees(t *testing.T) {
	for _, layout := range []Layout{Layout1, Layout2, Layout3} {
		cfg := smallConfig(20, layout)
		exact, err := cfg.Solve()
		if err != nil {
			t.Fatal(err)
		}
		viaMINLP, err := cfg.SolveMINLP(minlp.Options{})
		if err != nil {
			t.Fatalf("%v: %v", layout, err)
		}
		if math.Abs(exact.Total-viaMINLP.Total) > 1e-5*exact.Total {
			t.Fatalf("%v: exact %v vs MINLP %v", layout, exact.Total, viaMINLP.Total)
		}
	}
}

func TestTsyncRejectedByMINLP(t *testing.T) {
	cfg := smallConfig(20, Layout1)
	cfg.Tsync = 0.5
	if _, err := cfg.SolveMINLP(minlp.Options{}); err != ErrTsyncNotConvex {
		t.Fatalf("err = %v, want ErrTsyncNotConvex", err)
	}
}

func TestTsyncConstrainsSolve(t *testing.T) {
	free := smallConfig(32, Layout1)
	rFree, err := free.Solve()
	if err != nil {
		t.Fatal(err)
	}
	sync := smallConfig(32, Layout1)
	sync.Tsync = 0.05
	rSync, err := sync.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(rSync.TLnd-rSync.TIce) > sync.Tsync+1e-9 {
		t.Fatalf("Tsync violated: |%v - %v| > %v", rSync.TLnd, rSync.TIce, sync.Tsync)
	}
	// The follow-up's warning: extra sync constraints cannot help.
	if rSync.Total < rFree.Total-1e-9 {
		t.Fatalf("Tsync improved the optimum: %v < %v", rSync.Total, rFree.Total)
	}
}

func TestAllowedSetsRespected(t *testing.T) {
	cfg := smallConfig(32, Layout1)
	cfg.Ocn.Allowed = []int{2, 4, 8, 16}
	cfg.Atm.Allowed = []int{4, 8, 12, 16, 24}
	r, err := cfg.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if !cfg.Feasible(r) {
		t.Fatalf("allocation violates sets: %+v", r.Nodes())
	}
	want := bruteLayout(cfg)
	if math.Abs(r.Total-want.Total) > 1e-9*want.Total {
		t.Fatalf("solve %v vs brute %v", r.Total, want.Total)
	}
	viaMINLP, err := cfg.SolveMINLP(minlp.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(viaMINLP.Total-want.Total) > 1e-5*want.Total {
		t.Fatalf("MINLP %v vs brute %v", viaMINLP.Total, want.Total)
	}
}

func TestLayoutOrderingShape(t *testing.T) {
	// The follow-up's Figure 4: layouts 1 and 2 perform similarly;
	// layout 3 (all sequential) is clearly worst.
	for _, n := range []int{128, 512, 2048} {
		r1, err := OneDegree(n).Solve()
		if err != nil {
			t.Fatal(err)
		}
		cfg2 := OneDegree(n)
		cfg2.Layout = Layout2
		r2, err := cfg2.Solve()
		if err != nil {
			t.Fatal(err)
		}
		cfg3 := OneDegree(n)
		cfg3.Layout = Layout3
		r3, err := cfg3.Solve()
		if err != nil {
			t.Fatal(err)
		}
		if r3.Total < r1.Total || r3.Total < r2.Total {
			t.Fatalf("n=%d: layout3 (%v) beats layout1 (%v) or layout2 (%v)",
				n, r3.Total, r1.Total, r2.Total)
		}
		if r1.Total > 1.5*r2.Total || r2.Total > 1.5*r1.Total {
			t.Fatalf("n=%d: layouts 1 (%v) and 2 (%v) should be comparable",
				n, r1.Total, r2.Total)
		}
	}
}

func TestOneDegreePresetMatchesTableIII(t *testing.T) {
	// Evaluating the paper's manual 1° allocations under the calibrated
	// curves must land near the reported times.
	cfg := OneDegree(128)
	manual, ok := ManualTableIII("1deg", 128)
	if !ok {
		t.Fatal("missing manual row")
	}
	r := cfg.EvaluateManual(manual)
	want := map[string]float64{"lnd": 63.766, "ice": 109.054, "atm": 306.952, "ocn": 362.669}
	got := r.Times()
	for k, w := range want {
		if math.Abs(got[k]-w) > 0.15*w {
			t.Fatalf("%s: preset gives %v, Table III says %v", k, got[k], w)
		}
	}
	if math.Abs(r.Total-416.0) > 0.15*416 {
		t.Fatalf("total %v, Table III says 416.0", r.Total)
	}
}

func TestEighthDegreePresetMatchesTableIII(t *testing.T) {
	cfg := EighthDegree(32768, true)
	manual, ok := ManualTableIII("eighth", 32768)
	if !ok {
		t.Fatal("missing manual row")
	}
	r := cfg.EvaluateManual(manual)
	want := map[string]float64{"lnd": 44.225, "ice": 214.203, "atm": 787.478, "ocn": 1645.009}
	got := r.Times()
	for k, w := range want {
		if math.Abs(got[k]-w) > 0.2*w {
			t.Fatalf("%s: preset gives %v, Table III says %v", k, got[k], w)
		}
	}
}

func TestHSLBBeatsManualAtEighthDegree(t *testing.T) {
	// The headline: ~25% improvement at 32768 nodes with unconstrained
	// ocean counts.
	cfg := EighthDegree(32768, true)
	manual := cfg.EvaluateManual(mustManual(t, "eighth", 32768))
	constr, err := cfg.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if constr.Total > manual.Total*1.02 {
		t.Fatalf("constrained HSLB (%v) worse than manual (%v)", constr.Total, manual.Total)
	}
	free := EighthDegree(32768, false)
	unconstr, err := free.Solve()
	if err != nil {
		t.Fatal(err)
	}
	imp := 1 - unconstr.Total/manual.Total
	if imp < 0.15 || imp > 0.45 {
		t.Fatalf("unconstrained improvement %.0f%% outside the paper's ~25%% shape (HSLB %v vs manual %v)",
			imp*100, unconstr.Total, manual.Total)
	}
}

func mustManual(t *testing.T, res string, n int) Result {
	t.Helper()
	r, ok := ManualTableIII(res, n)
	if !ok {
		t.Fatalf("no manual row for %s/%d", res, n)
	}
	return r
}

func TestSimulateActual(t *testing.T) {
	cfg := smallConfig(24, Layout1)
	r, err := cfg.Solve()
	if err != nil {
		t.Fatal(err)
	}
	rng := stats.NewRNG(1)
	a := cfg.SimulateActual(r, 0.03, rng)
	if a.Total <= 0 {
		t.Fatalf("actual total %v", a.Total)
	}
	if a.NIce != r.NIce || a.NOcn != r.NOcn {
		t.Fatal("SimulateActual changed the allocation")
	}
	if math.Abs(a.Total-r.Total) > 0.3*r.Total {
		t.Fatalf("3%% noise moved total from %v to %v", r.Total, a.Total)
	}
	quiet := cfg.SimulateActual(r, 0, rng)
	if quiet.Total != r.Total {
		t.Fatal("zero-noise simulation changed times")
	}
}

// Property: Solve always returns a feasible allocation no worse than the
// uniform-ish baseline (equal quarters).
func TestSolveFeasibleAndReasonableProperty(t *testing.T) {
	f := func(seed uint64) bool {
		rng := stats.NewRNG(seed)
		cfg := &Config{
			Ice:        Component{Name: "ice", Perf: perfmodel.Params{A: rng.Range(10, 200), B: 0.01, C: 1, D: rng.Range(0, 2)}},
			Lnd:        Component{Name: "lnd", Perf: perfmodel.Params{A: rng.Range(5, 50), B: 0.01, C: 1, D: rng.Range(0, 1)}},
			Atm:        Component{Name: "atm", Perf: perfmodel.Params{A: rng.Range(50, 500), B: 0.01, C: 1, D: rng.Range(0, 3)}},
			Ocn:        Component{Name: "ocn", Perf: perfmodel.Params{A: rng.Range(20, 300), B: 0.01, C: 1, D: rng.Range(0, 2)}},
			TotalNodes: 8 + rng.Intn(56),
			Layout:     Layout1,
		}
		r, err := cfg.Solve()
		if err != nil {
			return false
		}
		if !cfg.Feasible(r) {
			return false
		}
		q := cfg.TotalNodes / 4
		base := cfg.evaluate(q, q, 2*q, cfg.TotalNodes-2*q)
		if !cfg.Feasible(base) {
			return true // baseline itself infeasible; nothing to compare
		}
		return r.Total <= base.Total+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestLargeScaleSolveFast(t *testing.T) {
	// Unconstrained 1/8° at 32768 nodes must solve quickly via the
	// ternary path and beat the constrained solution.
	free, err := EighthDegree(32768, false).Solve()
	if err != nil {
		t.Fatal(err)
	}
	constr, err := EighthDegree(32768, true).Solve()
	if err != nil {
		t.Fatal(err)
	}
	if free.Total > constr.Total+1e-9 {
		t.Fatalf("unconstrained (%v) worse than constrained (%v)", free.Total, constr.Total)
	}
}
