package coupled

// Presets calibrated so that the synthetic component scaling curves
// reproduce the magnitudes of the follow-up paper's Table III (manual
// columns). The a and d coefficients were solved from the two manual
// allocations reported per resolution (e.g. 1°: atm takes 306.95 s on 104
// nodes and 61.99 s on 1664 nodes → a ≈ 27180, d ≈ 45.7); the small b·n^c
// overhead term is added so that over-allocating eventually hurts, as on
// the real machine.
//
// These are the "ground truth" curves for the T6/F2 extension experiments:
// the benchmark harness fits HSLB's model against noisy samples of these
// curves and compares allocations, reproducing the shape of the follow-up's
// results (HSLB ≈ manual at 1°, ~10% better at 1/8° with the constrained
// ocean set, ~25% better with the ocean set opened up).

import "repro/internal/perfmodel"

// oceanSet1Deg is the hard-coded 1° ocean allocation set of Table I line 5:
// even counts up to 480, plus 768.
func oceanSet1Deg() []int {
	var s []int
	for n := 2; n <= 480; n += 2 {
		s = append(s, n)
	}
	return append(s, 768)
}

// atmSet1Deg is the 1° atmosphere sweet-spot set of Table I line 6:
// 1..1638 plus 1664.
func atmSet1Deg() []int {
	var s []int
	for n := 1; n <= 1638; n++ {
		s = append(s, n)
	}
	return append(s, 1664)
}

// OneDegree returns the 1° resolution configuration (layout 1 by default).
func OneDegree(totalNodes int) *Config {
	return &Config{
		Lnd: Component{Name: "lnd", Perf: perfmodel.Params{A: 1485, B: 3e-4, C: 1, D: 1.9}},
		Ice: Component{Name: "ice", Perf: perfmodel.Params{A: 7772, B: 2e-4, C: 1.05, D: 11.0}},
		Atm: Component{Name: "atm", Perf: perfmodel.Params{A: 27180, B: 2e-4, C: 1, D: 45.3},
			Allowed: atmSet1Deg()},
		Ocn: Component{Name: "ocn", Perf: perfmodel.Params{A: 7697, B: 1e-4, C: 1.1, D: 42.3},
			Allowed: oceanSet1Deg()},
		TotalNodes: totalNodes,
		Layout:     Layout1,
	}
}

// EighthDegreeOceanSet is the 1/8° constrained ocean set ("the ocean model
// was initially limited to a few handful of node counts ... as a result of
// prior testing").
var EighthDegreeOceanSet = []int{480, 512, 2356, 3136, 4564, 6124, 19460}

// EighthDegree returns the 1/8° resolution configuration. When
// constrainedOcean is true the ocean component is limited to
// EighthDegreeOceanSet, matching the follow-up's first experiments; false
// reproduces the "unconstrained ocean nodes" entries.
func EighthDegree(totalNodes int, constrainedOcean bool) *Config {
	cfg := &Config{
		Lnd:        Component{Name: "lnd", Perf: perfmodel.Params{A: 64225, B: 2e-4, C: 1.05, D: 14.5}},
		Ice:        Component{Name: "ice", Perf: perfmodel.Params{A: 1.7903e6, B: 1e-4, C: 1.05, D: 140.0}},
		Atm:        Component{Name: "atm", Perf: perfmodel.Params{A: 1.3071e7, B: 1e-4, C: 1.05, D: 292.0}},
		Ocn:        Component{Name: "ocn", Perf: perfmodel.Params{A: 8.1955e6, B: 1e-4, C: 1.05, D: 303.0}},
		TotalNodes: totalNodes,
		Layout:     Layout1,
	}
	if constrainedOcean {
		cfg.Ocn.Allowed = append([]int(nil), EighthDegreeOceanSet...)
	}
	return cfg
}

// ManualTableIII returns the follow-up's reported manual ("human expert")
// allocations for comparison rows, keyed by (resolution, nodes). ok=false
// when the paper has no manual row for that configuration.
func ManualTableIII(resolution string, nodes int) (Result, bool) {
	switch {
	case resolution == "1deg" && nodes == 128:
		return Result{NLnd: 24, NIce: 80, NAtm: 104, NOcn: 24}, true
	case resolution == "1deg" && nodes == 2048:
		return Result{NLnd: 384, NIce: 1280, NAtm: 1664, NOcn: 384}, true
	case resolution == "eighth" && nodes == 8192:
		return Result{NLnd: 486, NIce: 5350, NAtm: 5836, NOcn: 2356}, true
	case resolution == "eighth" && nodes == 32768:
		return Result{NLnd: 2220, NIce: 24424, NAtm: 26644, NOcn: 6124}, true
	}
	return Result{}, false
}

// EvaluateManual fills in the predicted times of a manual allocation under
// the preset curves.
func (cfg *Config) EvaluateManual(r Result) *Result {
	return cfg.evaluate(r.NIce, r.NLnd, r.NAtm, r.NOcn)
}
