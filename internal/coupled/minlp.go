package coupled

import (
	"context"
	"errors"
	"fmt"
	"math"

	"repro/internal/lp"
	"repro/internal/minlp"
	"repro/internal/model"
	"repro/internal/perfmodel"
)

// ErrTsyncNotConvex is returned by SolveMINLP when Tsync > 0: the
// constraint T_lnd ≥ T_ice − Tsync bounds a convex function from below,
// which is outside the convex outer-approximation framework. Use Solve.
var ErrTsyncNotConvex = errors.New("coupled: Tsync constraints are non-convex; use Solve")

// addAlloc adds component c's allocation variable to m (integer range or
// binary-set + SOS1 for discrete allowed sets) and returns its id.
func addAlloc(m *model.Model, c *Component, total int) int {
	lo := c.minNodes()
	if c.Allowed == nil {
		return m.AddVar(float64(lo), float64(total), model.Integer, "n["+c.Name+"]")
	}
	var cands []int
	for _, v := range c.Allowed {
		if v >= lo && v <= total {
			cands = append(cands, v)
		}
	}
	n := m.AddVar(float64(cands[0]), float64(cands[len(cands)-1]), model.Continuous, "n["+c.Name+"]")
	one := make([]model.Term, 0, len(cands))
	link := []model.Term{{Var: n, Coef: -1}}
	zs := make([]int, 0, len(cands))
	wts := make([]float64, 0, len(cands))
	for _, v := range cands {
		z := m.AddBinary(fmt.Sprintf("z[%s=%d]", c.Name, v))
		zs = append(zs, z)
		wts = append(wts, float64(v))
		one = append(one, model.Term{Var: z, Coef: 1})
		link = append(link, model.Term{Var: z, Coef: float64(v)})
	}
	m.AddLinear(one, lp.EQ, 1, "pick["+c.Name+"]")
	m.AddLinear(link, lp.EQ, 0, "link["+c.Name+"]")
	m.AddSOS1(zs, wts, "sos["+c.Name+"]")
	return n
}

// perfLE adds the constraint Perf(x[nVar]) ≤ x[target] (plus optional extra
// linear offset variable with coefficient +1), i.e.
// Perf(n) + x[plus] − x[target] ≤ 0. Pass plus = -1 for no offset.
func perfLE(m *model.Model, p perfmodel.Params, nVar, plus, target int, name string) {
	over := []int{nVar, target}
	if plus >= 0 {
		over = []int{nVar, plus, target}
	}
	m.AddNonlinear(&model.FuncSmooth{
		Over: over,
		F: func(x []float64) float64 {
			v := p.Eval(x[nVar]) - x[target]
			if plus >= 0 {
				v += x[plus]
			}
			return v
		},
		DF: func(x []float64) []float64 {
			if plus >= 0 {
				return []float64{p.Deriv(x[nVar]), 1, -1}
			}
			return []float64{p.Deriv(x[nVar]), -1}
		},
	}, name)
}

// BuildModel constructs the layout MINLP exactly as the follow-up's Table I
// writes it (Tsync omitted — see ErrTsyncNotConvex).
func (cfg *Config) BuildModel() (*model.Model, map[string]int, error) {
	if err := cfg.Validate(); err != nil {
		return nil, nil, err
	}
	if cfg.Tsync > 0 {
		return nil, nil, ErrTsyncNotConvex
	}
	m := model.New()
	N := cfg.TotalNodes
	comps := []*Component{&cfg.Ice, &cfg.Lnd, &cfg.Atm, &cfg.Ocn}
	ub := 1.0
	for _, c := range comps {
		v := math.Max(c.Perf.Eval(float64(c.minNodes())), c.Perf.Eval(float64(N)))
		ub += v
	}
	tv := m.AddVar(0, ub, model.Continuous, "T")
	m.SetObjective([]model.Term{{Var: tv, Coef: 1}}, 0)

	ids := map[string]int{}
	ni := addAlloc(m, &cfg.Ice, N)
	nl := addAlloc(m, &cfg.Lnd, N)
	na := addAlloc(m, &cfg.Atm, N)
	no := addAlloc(m, &cfg.Ocn, N)
	ids["ice"], ids["lnd"], ids["atm"], ids["ocn"] = ni, nl, na, no
	ids["T"] = tv

	switch cfg.Layout {
	case Layout1:
		ticelnd := m.AddVar(0, ub, model.Continuous, "Ticelnd")
		ids["Ticelnd"] = ticelnd
		perfLE(m, cfg.Ice.Perf, ni, -1, ticelnd, "ice<=icelnd")
		perfLE(m, cfg.Lnd.Perf, nl, -1, ticelnd, "lnd<=icelnd")
		perfLE(m, cfg.Atm.Perf, na, ticelnd, tv, "icelnd+atm<=T")
		perfLE(m, cfg.Ocn.Perf, no, -1, tv, "ocn<=T")
		m.AddLinear([]model.Term{{Var: ni, Coef: 1}, {Var: nl, Coef: 1}, {Var: na, Coef: -1}},
			lp.LE, 0, "ni+nl<=na")
		m.AddLinear([]model.Term{{Var: na, Coef: 1}, {Var: no, Coef: 1}},
			lp.LE, float64(N), "na+no<=N")
	case Layout2:
		ti := m.AddVar(0, ub, model.Continuous, "t_ice")
		tl := m.AddVar(0, ub, model.Continuous, "t_lnd")
		ta := m.AddVar(0, ub, model.Continuous, "t_atm")
		perfLE(m, cfg.Ice.Perf, ni, -1, ti, "ice")
		perfLE(m, cfg.Lnd.Perf, nl, -1, tl, "lnd")
		perfLE(m, cfg.Atm.Perf, na, -1, ta, "atm")
		perfLE(m, cfg.Ocn.Perf, no, -1, tv, "ocn<=T")
		m.AddLinear([]model.Term{{Var: ti, Coef: 1}, {Var: tl, Coef: 1}, {Var: ta, Coef: 1}, {Var: tv, Coef: -1}},
			lp.LE, 0, "seq<=T")
		for _, pair := range [][2]int{{ni, no}, {nl, no}, {na, no}} {
			m.AddLinear([]model.Term{{Var: pair[0], Coef: 1}, {Var: pair[1], Coef: 1}},
				lp.LE, float64(N), "n<=N-no")
		}
	default: // Layout3
		ti := m.AddVar(0, ub, model.Continuous, "t_ice")
		tl := m.AddVar(0, ub, model.Continuous, "t_lnd")
		ta := m.AddVar(0, ub, model.Continuous, "t_atm")
		to := m.AddVar(0, ub, model.Continuous, "t_ocn")
		perfLE(m, cfg.Ice.Perf, ni, -1, ti, "ice")
		perfLE(m, cfg.Lnd.Perf, nl, -1, tl, "lnd")
		perfLE(m, cfg.Atm.Perf, na, -1, ta, "atm")
		perfLE(m, cfg.Ocn.Perf, no, -1, to, "ocn")
		m.AddLinear([]model.Term{{Var: ti, Coef: 1}, {Var: tl, Coef: 1}, {Var: ta, Coef: 1}, {Var: to, Coef: 1}, {Var: tv, Coef: -1}},
			lp.LE, 0, "seq<=T")
	}
	return m, ids, nil
}

// SolveMINLP solves the layout model with LP/NLP-based branch-and-bound —
// the paper's solver route, demonstrated here on the coupled extension.
func (cfg *Config) SolveMINLP(opts minlp.Options) (*Result, error) {
	return cfg.SolveMINLPContext(context.Background(), opts)
}

// SolveMINLPContext is SolveMINLP with cooperative cancellation and
// deadline support: a cancelled ctx or an expired opts.TimeLimit stops the
// search with status Limit, reported as an error (the coupled layouts are
// small; callers fall back to the exact enumeration route, as cmd/cesmlb
// does).
func (cfg *Config) SolveMINLPContext(ctx context.Context, opts minlp.Options) (*Result, error) {
	m, ids, err := cfg.BuildModel()
	if err != nil {
		return nil, err
	}
	res := minlp.SolveContext(ctx, m, opts)
	if res.Status != minlp.Optimal {
		return nil, fmt.Errorf("coupled: MINLP ended with status %v", res.Status)
	}
	round := func(k string) int { return int(math.Round(res.X[ids[k]])) }
	out := cfg.evaluate(round("ice"), round("lnd"), round("atm"), round("ocn"))
	return out, nil
}
