// Package coupled is the generality extension of HSLB: load balancing a
// coupled multi-component application whose components run concurrently
// and/or sequentially on overlapping processor sets — the setting of the
// follow-up paper (HSLB applied to CESM, IPDPSW 2014), which this
// repository treats as published evidence for the target paper's claim that
// the method applies to "any coarse-grained application with large tasks of
// diverse size".
//
// Three layouts are modelled, following the follow-up's Table I (Figure 1):
//
//	layout 1 (hybrid, the common production layout):
//	    T = max( max(T_ice, T_lnd) + T_atm , T_ocn )
//	    with n_ice + n_lnd ≤ n_atm and n_atm + n_ocn ≤ N
//	layout 2: ice, lnd, atm sequential on N−n_ocn nodes, ocn concurrent:
//	    T = max( T_ice + T_lnd + T_atm , T_ocn )
//	layout 3: everything sequential on all N nodes:
//	    T = T_ice + T_lnd + T_atm + T_ocn
//
// Ocean and atmosphere allocations may be restricted to discrete sets (the
// hard-coded ocean counts and atmosphere "sweet spots" of the follow-up).
// An optional synchronization tolerance couples T_lnd to T_ice within
// ±Tsync (layout 1 only); note the follow-up's warning that this extra
// constraint can reduce performance.
//
// Two solver routes: Solve (exact enumeration over the discrete outer
// choices with bisection inner splits — supports Tsync) and SolveMINLP (the
// paper's MINLP route via outer approximation — Tsync unsupported there
// because its lower-bounding side is concave).
package coupled

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/perfmodel"
	"repro/internal/stats"
)

// Layout selects the component arrangement.
type Layout int

// Layouts (1)-(3) of the follow-up's Figure 1.
const (
	Layout1 Layout = iota + 1
	Layout2
	Layout3
)

func (l Layout) String() string { return fmt.Sprintf("layout%d", int(l)) }

// Component is one model component with its fitted performance function.
type Component struct {
	Name string
	Perf perfmodel.Params
	// Allowed restricts the allocation to this strictly increasing set;
	// nil allows any count in [1, N].
	Allowed []int
	// MinNodes is the memory floor (default 1).
	MinNodes int
}

func (c *Component) minNodes() int {
	if c.MinNodes < 1 {
		return 1
	}
	return c.MinNodes
}

// bestIn returns the admissible n ≤ cap minimizing the component time, and
// that time. ok=false when no admissible count fits.
func (c *Component) bestIn(cap int) (int, float64, bool) {
	lo := c.minNodes()
	if cap < lo {
		return 0, 0, false
	}
	if c.Allowed != nil {
		bestN, bestT := 0, math.Inf(1)
		for _, n := range c.Allowed {
			if n < lo || n > cap {
				continue
			}
			if t := c.Perf.Eval(float64(n)); t < bestT {
				bestN, bestT = n, t
			}
		}
		if bestN == 0 {
			return 0, 0, false
		}
		return bestN, bestT, true
	}
	// Convex curve: minimum at clamp(ArgMin).
	am := int(math.Round(c.Perf.ArgMin()))
	cands := []int{lo, cap}
	if am > lo && am < cap {
		cands = append(cands, am, am+1, am-1)
	}
	bestN, bestT := 0, math.Inf(1)
	for _, n := range cands {
		if n < lo || n > cap {
			continue
		}
		if t := c.Perf.Eval(float64(n)); t < bestT {
			bestN, bestT = n, t
		}
	}
	return bestN, bestT, true
}

// candidatesUpTo returns the admissible counts in [minNodes, cap].
// Unrestricted components with a large range are sampled on a geometric
// grid of ~maxPoints values (the solvers refine around the coarse optimum
// afterwards); discrete sets are always returned in full.
func (c *Component) candidatesUpTo(cap, maxPoints int) []int {
	lo := c.minNodes()
	var out []int
	if c.Allowed != nil {
		for _, n := range c.Allowed {
			if n >= lo && n <= cap {
				out = append(out, n)
			}
		}
		return out
	}
	if cap < lo {
		return nil
	}
	if maxPoints <= 0 || cap-lo+1 <= maxPoints {
		for n := lo; n <= cap; n++ {
			out = append(out, n)
		}
		return out
	}
	ratio := float64(cap) / float64(lo)
	prev := 0
	for i := 0; i < maxPoints; i++ {
		f := float64(i) / float64(maxPoints-1)
		n := int(math.Round(float64(lo) * math.Pow(ratio, f)))
		if n <= prev {
			n = prev + 1
		}
		if n > cap {
			break
		}
		out = append(out, n)
		prev = n
	}
	return out
}

// Config is one coupled load-balancing instance over the four heavy
// components (runoff, land-ice, and the coupler are excluded, as in the
// follow-up, because their cost is small).
type Config struct {
	Ice, Lnd, Atm, Ocn Component
	TotalNodes         int
	Layout             Layout
	// Tsync, when positive, requires |T_lnd − T_ice| ≤ Tsync (layout 1).
	Tsync float64
}

// Validate reports structural problems.
func (cfg *Config) Validate() error {
	if cfg.TotalNodes < 4 {
		return fmt.Errorf("coupled: need at least 4 nodes, have %d", cfg.TotalNodes)
	}
	if cfg.Layout < Layout1 || cfg.Layout > Layout3 {
		return fmt.Errorf("coupled: unknown layout %d", int(cfg.Layout))
	}
	for _, c := range []*Component{&cfg.Ice, &cfg.Lnd, &cfg.Atm, &cfg.Ocn} {
		if !c.Perf.Valid() {
			return fmt.Errorf("coupled: component %q has invalid parameters", c.Name)
		}
		for i := 1; i < len(c.Allowed); i++ {
			if c.Allowed[i] <= c.Allowed[i-1] {
				return fmt.Errorf("coupled: component %q allowed set not increasing", c.Name)
			}
		}
	}
	return nil
}

// Result is a solved coupled allocation.
type Result struct {
	NIce, NLnd, NAtm, NOcn int
	TIce, TLnd, TAtm, TOcn float64
	TIceLnd                float64 // layout-1 intermediate (max of ice, lnd)
	Total                  float64
}

// Times returns the per-component times keyed by name for reports.
func (r *Result) Times() map[string]float64 {
	return map[string]float64{
		"ice": r.TIce, "lnd": r.TLnd, "atm": r.TAtm, "ocn": r.TOcn,
	}
}

// Nodes returns the per-component allocations keyed by name.
func (r *Result) Nodes() map[string]int {
	return map[string]int{
		"ice": r.NIce, "lnd": r.NLnd, "atm": r.NAtm, "ocn": r.NOcn,
	}
}

// Assemble computes the layout's total time formula from per-component
// times (used for both predictions and simulated "actual" runs).
func Assemble(layout Layout, tIce, tLnd, tAtm, tOcn float64) float64 {
	switch layout {
	case Layout1:
		return math.Max(math.Max(tIce, tLnd)+tAtm, tOcn)
	case Layout2:
		return math.Max(tIce+tLnd+tAtm, tOcn)
	default:
		return tIce + tLnd + tAtm + tOcn
	}
}

// evaluate fills a Result from allocations.
func (cfg *Config) evaluate(ni, nl, na, no int) *Result {
	r := &Result{NIce: ni, NLnd: nl, NAtm: na, NOcn: no}
	r.TIce = cfg.Ice.Perf.Eval(float64(ni))
	r.TLnd = cfg.Lnd.Perf.Eval(float64(nl))
	r.TAtm = cfg.Atm.Perf.Eval(float64(na))
	r.TOcn = cfg.Ocn.Perf.Eval(float64(no))
	r.TIceLnd = math.Max(r.TIce, r.TLnd)
	r.Total = Assemble(cfg.Layout, r.TIce, r.TLnd, r.TAtm, r.TOcn)
	return r
}

// Feasible reports whether the allocation satisfies the layout's node
// constraints, allowed sets, and Tsync.
func (cfg *Config) Feasible(r *Result) bool {
	inSet := func(c *Component, n int) bool {
		if n < c.minNodes() || n > cfg.TotalNodes {
			return false
		}
		if c.Allowed == nil {
			return true
		}
		for _, v := range c.Allowed {
			if v == n {
				return true
			}
		}
		return false
	}
	if !inSet(&cfg.Ice, r.NIce) || !inSet(&cfg.Lnd, r.NLnd) ||
		!inSet(&cfg.Atm, r.NAtm) || !inSet(&cfg.Ocn, r.NOcn) {
		return false
	}
	switch cfg.Layout {
	case Layout1:
		if r.NIce+r.NLnd > r.NAtm || r.NAtm+r.NOcn > cfg.TotalNodes {
			return false
		}
		if cfg.Tsync > 0 && math.Abs(r.TLnd-r.TIce) > cfg.Tsync+1e-9 {
			return false
		}
	case Layout2:
		lim := cfg.TotalNodes - r.NOcn
		if r.NIce > lim || r.NLnd > lim || r.NAtm > lim {
			return false
		}
	default:
		// Layout 3: each within N, already checked.
	}
	return true
}

// Solve finds the optimal allocation by exact enumeration of the discrete
// outer choices (ocean and atmosphere counts) with an inner bisection split
// of the atmosphere nodes between ice and land (layout 1).
func (cfg *Config) Solve() (*Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	switch cfg.Layout {
	case Layout1:
		return cfg.solveLayout1()
	case Layout2:
		return cfg.solveLayout2()
	default:
		return cfg.solveLayout3()
	}
}

// splitIceLnd finds the best split ni + nl ≤ budget minimizing
// max(T_ice(ni), T_lnd(nl)), honouring Tsync. Returns ok=false when no
// feasible split exists.
func (cfg *Config) splitIceLnd(budget int) (ni, nl int, tmax float64, ok bool) {
	loI, loL := cfg.Ice.minNodes(), cfg.Lnd.minNodes()
	if loI+loL > budget {
		return 0, 0, 0, false
	}
	// d(ni) = T_ice(ni) − T_lnd(budget−ni) is decreasing in ni on the
	// decreasing branches; find the crossing by bisection, then examine
	// its neighbourhood (coarse granularity effects).
	d := func(n int) float64 {
		return cfg.Ice.Perf.Eval(float64(n)) - cfg.Lnd.Perf.Eval(float64(budget-n))
	}
	lo, hi := loI, budget-loL
	for lo < hi {
		mid := (lo + hi) / 2
		if d(mid) <= 0 {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	bestT := math.Inf(1)
	for _, n := range []int{lo - 2, lo - 1, lo, lo + 1, lo + 2} {
		if n < loI || n > budget-loL {
			continue
		}
		ti := cfg.Ice.Perf.Eval(float64(n))
		tl := cfg.Lnd.Perf.Eval(float64(budget - n))
		if cfg.Tsync > 0 && math.Abs(ti-tl) > cfg.Tsync {
			continue
		}
		if t := math.Max(ti, tl); t < bestT {
			ni, nl, bestT, ok = n, budget-n, t, true
		}
	}
	// With Tsync the feasible interval may sit away from ±2 of the
	// crossing only when no split is Tsync-feasible at all (|d| is
	// minimized at the crossing); scan outward briefly to be safe.
	if !ok && cfg.Tsync > 0 {
		for off := 3; off <= 64 && !ok; off++ {
			for _, n := range []int{lo - off, lo + off} {
				if n < loI || n > budget-loL {
					continue
				}
				ti := cfg.Ice.Perf.Eval(float64(n))
				tl := cfg.Lnd.Perf.Eval(float64(budget - n))
				if math.Abs(ti-tl) > cfg.Tsync {
					continue
				}
				if t := math.Max(ti, tl); t < bestT {
					ni, nl, bestT, ok = n, budget-n, t, true
				}
			}
		}
	}
	return ni, nl, bestT, ok
}

func (cfg *Config) solveLayout1() (*Result, error) {
	// Ranges up to this size are enumerated fully (exact); beyond it the
	// quasi-unimodal structure is exploited with a padded ternary search.
	const scanLimit = 4096
	minIceLnd := cfg.Ice.minNodes() + cfg.Lnd.minNodes()

	// innerBest finds the best atmosphere count for a given cap and
	// returns the concurrent-branch time max(T_icelnd + T_atm) along with
	// the allocation. The function na → tIceLnd(na)+tAtm(na) is
	// quasi-unimodal: the split max is non-increasing in na while tAtm
	// first falls then rises.
	type inner struct {
		ni, nl, na int
		branch     float64 // max(ice,lnd)+atm
		ok         bool
	}
	evalNa := func(na int) inner {
		ni, nl, tIceLnd, ok := cfg.splitIceLnd(na)
		if !ok {
			return inner{}
		}
		return inner{ni: ni, nl: nl, na: na,
			branch: tIceLnd + cfg.Atm.Perf.Eval(float64(na)), ok: true}
	}
	innerBest := func(capAtm int) inner {
		if capAtm < minIceLnd {
			return inner{}
		}
		if cfg.Atm.Allowed != nil || capAtm-minIceLnd <= scanLimit {
			best := inner{}
			for _, na := range cfg.Atm.candidatesUpTo(capAtm, 0) {
				if na < minIceLnd {
					continue
				}
				if c := evalNa(na); c.ok && (!best.ok || c.branch < best.branch) {
					best = c
				}
			}
			return best
		}
		lo, hi := minIceLnd, capAtm
		for hi-lo > 16 {
			m1 := lo + (hi-lo)/3
			m2 := hi - (hi-lo)/3
			c1, c2 := evalNa(m1), evalNa(m2)
			switch {
			case !c1.ok:
				lo = m1 + 1
			case !c2.ok:
				hi = m2 - 1
			case c1.branch <= c2.branch:
				hi = m2 - 1
			default:
				lo = m1 + 1
			}
		}
		best := inner{}
		for na := lo - 8; na <= hi+8; na++ {
			if na < minIceLnd || na > capAtm {
				continue
			}
			if c := evalNa(na); c.ok && (!best.ok || c.branch < best.branch) {
				best = c
			}
		}
		return best
	}

	evalNo := func(no int) *Result {
		c := innerBest(cfg.TotalNodes - no)
		if !c.ok {
			return nil
		}
		cand := cfg.evaluate(c.ni, c.nl, c.na, no)
		return cand
	}

	var best *Result
	consider := func(r *Result) {
		if r != nil && (best == nil || r.Total < best.Total) {
			best = r
		}
	}
	loOcn := cfg.Ocn.minNodes()
	hiOcn := cfg.TotalNodes - minIceLnd
	if cfg.Ocn.Allowed != nil || hiOcn-loOcn <= scanLimit {
		for _, no := range cfg.Ocn.candidatesUpTo(hiOcn, 0) {
			consider(evalNo(no))
		}
	} else {
		// total(no) = max(branch(N−no), tOcn(no)) is quasi-unimodal in
		// no: the first term rises with no, the second falls.
		lo, hi := loOcn, hiOcn
		total := func(no int) float64 {
			r := evalNo(no)
			if r == nil {
				return math.Inf(1)
			}
			return r.Total
		}
		for hi-lo > 16 {
			m1 := lo + (hi-lo)/3
			m2 := hi - (hi-lo)/3
			if total(m1) <= total(m2) {
				hi = m2 - 1
			} else {
				lo = m1 + 1
			}
		}
		for no := lo - 8; no <= hi+8; no++ {
			if no < loOcn || no > hiOcn {
				continue
			}
			consider(evalNo(no))
		}
	}
	if best == nil {
		return nil, errors.New("coupled: no feasible layout-1 allocation")
	}
	return best, nil
}

func (cfg *Config) solveLayout2() (*Result, error) {
	var best *Result
	for _, no := range cfg.Ocn.candidatesUpTo(cfg.TotalNodes-1, 0) {
		lim := cfg.TotalNodes - no
		ni, ti, ok1 := cfg.Ice.bestIn(lim)
		nl, tl, ok2 := cfg.Lnd.bestIn(lim)
		na, ta, ok3 := cfg.Atm.bestIn(lim)
		if !ok1 || !ok2 || !ok3 {
			continue
		}
		total := math.Max(ti+tl+ta, cfg.Ocn.Perf.Eval(float64(no)))
		if best == nil || total < best.Total {
			best = cfg.evaluate(ni, nl, na, no)
		}
	}
	if best == nil {
		return nil, errors.New("coupled: no feasible layout-2 allocation")
	}
	return best, nil
}

func (cfg *Config) solveLayout3() (*Result, error) {
	ni, _, ok1 := cfg.Ice.bestIn(cfg.TotalNodes)
	nl, _, ok2 := cfg.Lnd.bestIn(cfg.TotalNodes)
	na, _, ok3 := cfg.Atm.bestIn(cfg.TotalNodes)
	no, _, ok4 := cfg.Ocn.bestIn(cfg.TotalNodes)
	if !ok1 || !ok2 || !ok3 || !ok4 {
		return nil, errors.New("coupled: no feasible layout-3 allocation")
	}
	return cfg.evaluate(ni, nl, na, no), nil
}

// SimulateActual evaluates the allocation against noisy "actual" component
// runs (lognormal noise of relative size sigma), returning a Result whose
// times include the noise — the analog of the follow-up's "actual time"
// columns.
func (cfg *Config) SimulateActual(r *Result, sigma float64, rng *stats.RNG) *Result {
	a := *r
	a.TIce *= rng.LogNormFactor(sigma)
	a.TLnd *= rng.LogNormFactor(sigma)
	a.TAtm *= rng.LogNormFactor(sigma)
	a.TOcn *= rng.LogNormFactor(sigma)
	a.TIceLnd = math.Max(a.TIce, a.TLnd)
	a.Total = Assemble(cfg.Layout, a.TIce, a.TLnd, a.TAtm, a.TOcn)
	return &a
}
