package dlb

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/gddi"
	"repro/internal/stats"
)

func constTask(id int, d float64) gddi.Task {
	return gddi.Task{ID: id, Time: func(int, *stats.RNG) float64 { return d }}
}

func scaledTask(id int, w float64) gddi.Task {
	return gddi.Task{ID: id, Time: func(n int, _ *stats.RNG) float64 { return w / float64(n) }}
}

func TestCentralQueueBasic(t *testing.T) {
	tasks := []gddi.Task{constTask(0, 1), constTask(1, 1), constTask(2, 1), constTask(3, 1)}
	r, err := RunCentralQueue(tasks, 8, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	if r.Makespan != 2 || r.Groups != 2 || r.GroupSize != 4 {
		t.Fatalf("r = %+v", r)
	}
}

func TestCentralQueueErrors(t *testing.T) {
	if _, err := RunCentralQueue(nil, 4, 0, nil); err == nil {
		t.Fatal("zero groups accepted")
	}
	if _, err := RunCentralQueue(nil, 2, 4, nil); err == nil {
		t.Fatal("groups > nodes accepted")
	}
}

func TestWorkStealingBalances(t *testing.T) {
	// Imbalanced deal: all large tasks land on queue 0 without stealing.
	var tasks []gddi.Task
	for i := 0; i < 16; i++ {
		d := 1.0
		if i%2 == 0 {
			d = 4.0
		}
		tasks = append(tasks, constTask(i, d))
	}
	r, err := RunWorkStealing(tasks, 2, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Total work = 8*4 + 8*1 = 40 on 2 workers → ideal 20.
	if r.Makespan > 24 {
		t.Fatalf("work stealing failed to balance: makespan %v", r.Makespan)
	}
	if r.Steals == 0 {
		t.Fatal("no steals happened on an imbalanced deal")
	}
}

func TestWorkStealingMatchesCentralOnUniform(t *testing.T) {
	var tasks []gddi.Task
	for i := 0; i < 32; i++ {
		tasks = append(tasks, constTask(i, 1))
	}
	ws, err := RunWorkStealing(tasks, 4, 4, nil)
	if err != nil {
		t.Fatal(err)
	}
	cq, err := RunCentralQueue(tasks, 4, 4, nil)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(ws.Makespan-cq.Makespan) > 1e-9 {
		t.Fatalf("uniform tasks: stealing %v vs central %v", ws.Makespan, cq.Makespan)
	}
}

func TestAutoTunePicksGoodGroupCount(t *testing.T) {
	// 4 perfectly scalable equal tasks on 16 nodes: 4 groups of 4 is
	// ideal (makespan w/4); 1 group serializes (4·w/16 = w/4 too —
	// scalable tasks make single-group fine as well); use a task mix
	// with a serial floor so group count matters.
	mk := func(id int, w, floor float64) gddi.Task {
		return gddi.Task{ID: id, Time: func(n int, _ *stats.RNG) float64 {
			return w/float64(n) + floor
		}}
	}
	tasks := []gddi.Task{mk(0, 16, 1), mk(1, 16, 1), mk(2, 16, 1), mk(3, 16, 1)}
	best, err := AutoTune(tasks, 16, nil)
	if err != nil {
		t.Fatal(err)
	}
	// 4 groups of 4: each task 16/4+1 = 5. 1 group of 16: 4·(1+1) = 8.
	// 16 groups of 1: 4 tasks of 17 on 16 groups = 17.
	if best.Makespan > 5+1e-9 {
		t.Fatalf("AutoTune makespan %v (groups %d), want ≤ 5", best.Makespan, best.Groups)
	}
}

func TestDLBRegimeCrossover(t *testing.T) {
	// The intro claim: with many small tasks DLB utilization is high;
	// with few large diverse tasks on equal groups it degrades.
	rng := stats.NewRNG(1)
	many := make([]gddi.Task, 256)
	for i := range many {
		many[i] = constTask(i, rng.Range(0.5, 1.5))
	}
	rMany, err := RunCentralQueue(many, 16, 16, nil)
	if err != nil {
		t.Fatal(err)
	}
	few := []gddi.Task{scaledTask(0, 100), scaledTask(1, 10), scaledTask(2, 1)}
	rFew, err := RunCentralQueue(few, 16, 3, nil)
	if err != nil {
		t.Fatal(err)
	}
	if rMany.Utilization < 0.9 {
		t.Fatalf("many-small utilization %v, want ≥ 0.9", rMany.Utilization)
	}
	if rFew.Utilization > 0.75 {
		t.Fatalf("few-large utilization %v unexpectedly good", rFew.Utilization)
	}
}

func TestIdealMakespan(t *testing.T) {
	tasks := []gddi.Task{scaledTask(0, 100), scaledTask(1, 100)}
	// Σ work = 200 on 10 nodes → 20; longest on full machine = 10.
	if got := IdealMakespan(tasks, 10); got != 20 {
		t.Fatalf("IdealMakespan = %v", got)
	}
}

// Property: work stealing conserves work and respects the list-scheduling
// bound on unit groups.
func TestWorkStealingBoundProperty(t *testing.T) {
	f := func(seed uint64) bool {
		rng := stats.NewRNG(seed)
		g := 1 + rng.Intn(6)
		n := 1 + rng.Intn(30)
		tasks := make([]gddi.Task, n)
		sum, maxD := 0.0, 0.0
		for i := range tasks {
			d := rng.Range(0.1, 4)
			tasks[i] = constTask(i, d)
			sum += d
			if d > maxD {
				maxD = d
			}
		}
		r, err := RunWorkStealing(tasks, g, g, nil)
		if err != nil {
			return false
		}
		lower := math.Max(maxD, sum/float64(g))
		return r.Makespan >= lower-1e-9 && r.Makespan <= 2*lower+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: AutoTune never loses to the single-group configuration.
func TestAutoTuneDominatesSingleGroupProperty(t *testing.T) {
	f := func(seed uint64) bool {
		rng := stats.NewRNG(seed)
		n := 1 + rng.Intn(12)
		tasks := make([]gddi.Task, n)
		for i := range tasks {
			w := rng.Range(1, 50)
			fl := rng.Range(0, 2)
			i := i
			_ = i
			tasks[i] = gddi.Task{ID: i, Time: func(nn int, _ *stats.RNG) float64 {
				return w/float64(nn) + fl
			}}
		}
		best, err := AutoTune(tasks, 32, nil)
		if err != nil {
			return false
		}
		single, err := RunCentralQueue(tasks, 32, 1, nil)
		if err != nil {
			return false
		}
		return best.Makespan <= single.Makespan+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
