// Package dlb provides the dynamic load-balancing baselines the paper's
// introduction positions HSLB against: a central-queue master/worker
// scheduler and a work-stealing scheduler, both over equal-size node
// groups.
//
// DLB shines when there are many more tasks than groups — the queue evens
// out imbalance. It fails in the paper's regime ("a few large tasks of
// diverse size ... the number of tasks is much smaller than the number of
// processors"): with one task per group, dynamic reassignment has nothing
// to reassign, and equal group sizes leave the largest task dominating.
// The T7 crossover benchmark measures exactly this transition.
package dlb

import (
	"errors"
	"math"

	"repro/internal/gddi"
	"repro/internal/stats"
)

// Result reports a DLB run.
type Result struct {
	Makespan    float64
	Groups      int
	GroupSize   int
	Utilization float64
	// Steals counts successful steals (work-stealing runs only).
	Steals int
}

// RunCentralQueue schedules the tasks on totalNodes split into `groups`
// equal groups, with free groups pulling the largest remaining task first.
func RunCentralQueue(tasks []gddi.Task, totalNodes, groups int, rng *stats.RNG) (*Result, error) {
	if groups < 1 || totalNodes < groups {
		return nil, errors.New("dlb: invalid group count")
	}
	sizes := gddi.UniformGroups(totalNodes, groups)
	res, err := gddi.Run(&gddi.Spec{
		GroupSizes: sizes,
		Tasks:      tasks,
		Policy:     gddi.DynamicLPT,
		RNG:        rng,
	})
	if err != nil {
		return nil, err
	}
	return &Result{
		Makespan:    res.Makespan,
		Groups:      len(sizes),
		GroupSize:   sizes[0],
		Utilization: res.Utilization,
	}, nil
}

// RunWorkStealing schedules the tasks with decentralized queues: tasks are
// dealt round-robin to per-group queues; a group that runs dry steals the
// last task of the longest remaining queue (random stealing is the paper's
// cited technique; stealing from the longest queue is the strongest common
// variant, giving DLB its best shot).
func RunWorkStealing(tasks []gddi.Task, totalNodes, groups int, rng *stats.RNG) (*Result, error) {
	if groups < 1 || totalNodes < groups {
		return nil, errors.New("dlb: invalid group count")
	}
	sizes := gddi.UniformGroups(totalNodes, groups)
	g := len(sizes)
	queues := make([][]int, g)
	for i := range tasks {
		queues[i%g] = append(queues[i%g], i)
	}
	clock := make([]float64, g)
	steals := 0
	busySum := 0.0
	for {
		// Advance the earliest-free group.
		gi := 0
		for i := 1; i < g; i++ {
			if clock[i] < clock[gi] {
				gi = i
			}
		}
		var ti int
		if len(queues[gi]) > 0 {
			ti, queues[gi] = queues[gi][0], queues[gi][1:]
		} else {
			// Steal from the longest queue.
			victim := -1
			for i := 0; i < g; i++ {
				if len(queues[i]) > 0 && (victim < 0 || len(queues[i]) > len(queues[victim])) {
					victim = i
				}
			}
			if victim < 0 {
				break // all queues empty
			}
			last := len(queues[victim]) - 1
			ti = queues[victim][last]
			queues[victim] = queues[victim][:last]
			steals++
		}
		d := tasks[ti].Time(sizes[gi], rng)
		clock[gi] += d
		busySum += d
	}
	mk := 0.0
	for _, c := range clock {
		if c > mk {
			mk = c
		}
	}
	util := 1.0
	if mk > 0 {
		util = busySum / (float64(g) * mk)
	}
	return &Result{
		Makespan:    mk,
		Groups:      g,
		GroupSize:   sizes[0],
		Utilization: util,
		Steals:      steals,
	}, nil
}

// AutoTune runs the central-queue scheduler over a sweep of group counts
// (powers of two up to min(totalNodes, len(tasks)·4)) and returns the best
// result — the strongest DLB configuration, so comparisons against HSLB are
// fair.
func AutoTune(tasks []gddi.Task, totalNodes int, rng *stats.RNG) (*Result, error) {
	if len(tasks) == 0 {
		return nil, errors.New("dlb: no tasks")
	}
	best := (*Result)(nil)
	limit := totalNodes
	if l := len(tasks) * 4; l < limit {
		limit = l
	}
	for g := 1; g <= limit; g *= 2 {
		r, err := RunCentralQueue(tasks, totalNodes, g, rng)
		if err != nil {
			return nil, err
		}
		if best == nil || r.Makespan < best.Makespan {
			best = r
		}
	}
	if best == nil {
		return nil, errors.New("dlb: no feasible group count")
	}
	return best, nil
}

// IdealMakespan returns the trivial lower bound max(longest task on the
// whole machine, Σ work at perfect efficiency) used in reports.
func IdealMakespan(tasks []gddi.Task, totalNodes int) float64 {
	longest, sum := 0.0, 0.0
	for _, t := range tasks {
		d := t.Time(totalNodes, nil)
		if d > longest {
			longest = d
		}
		sum += t.Time(1, nil)
	}
	return math.Max(longest, sum/float64(totalNodes))
}
