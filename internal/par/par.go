// Package par is the shared bounded worker pool of the HSLB code base, with
// a determinism contract every caller relies on:
//
//   - Work items are identified by their submission index, and results are
//     merged in submission order. A parallel Map is therefore bit-identical
//     to the equivalent serial loop regardless of worker count or
//     scheduling.
//   - Work items must not share mutable state. Randomized items derive an
//     independent deterministic stream per index (SplitSeeds, following the
//     golden-ratio convention of the pipeline's per-task fit seeds) instead
//     of sharing one RNG.
//   - Panics inside items are captured and re-raised on the caller's
//     goroutine (the first panicking index wins), so `go test -race` and
//     fuzzing see ordinary stack traces instead of a crashed process.
//
// Every parallel hot path in the repository — multistart fitting
// (internal/nlp, internal/perfmodel), speculative node evaluation in
// branch-and-bound (internal/milp), outer-approximation feasibility checks
// (internal/minlp), and the experiment sweeps (internal/experiments,
// cmd/fmobench) — goes through this package, so the race detector exercises
// one pool implementation rather than N ad-hoc goroutine patterns.
package par

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
)

// Workers resolves a parallelism knob to an actual worker count:
// n > 0 requests exactly n workers, n == 0 requests one per available CPU
// (GOMAXPROCS), and n < 0 forces serial execution (one worker).
func Workers(n int) int {
	switch {
	case n > 0:
		return n
	case n < 0:
		return 1
	default:
		return runtime.GOMAXPROCS(0)
	}
}

// capturedPanic wraps a recovered panic value so it can be re-raised on the
// caller's goroutine with the item index attached.
type capturedPanic struct {
	index int
	value interface{}
	stack []byte
}

func (c *capturedPanic) String() string {
	return fmt.Sprintf("par: item %d panicked: %v\n%s", c.index, c.value, c.stack)
}

// ForEach runs fn(i) for i in [0, n) on at most Workers(workers) goroutines
// and returns when all items finished. Items must only write state owned by
// their own index. When workers resolves to 1 (or n < 2), fn runs inline on
// the caller's goroutine in index order, making the serial path identical to
// a plain loop.
func ForEach(workers, n int, fn func(i int)) {
	forEach(context.Background(), workers, n, fn)
}

// ForEachCtx is ForEach with cooperative cancellation: once ctx is done, no
// further items are started (items already running complete normally, so fn
// never observes a torn-down environment) and ctx.Err() is returned. With a
// background or never-cancelled context the execution — including the serial
// inline path — is identical to ForEach, preserving the determinism
// contract.
func ForEachCtx(ctx context.Context, workers, n int, fn func(i int)) error {
	return forEach(ctx, workers, n, fn)
}

func forEach(ctx context.Context, workers, n int, fn func(i int)) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	w := Workers(workers)
	if w > n {
		w = n
	}
	if w <= 1 {
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			fn(i)
		}
		return nil
	}
	var (
		next  atomic.Int64
		wg    sync.WaitGroup
		pmu   sync.Mutex
		first *capturedPanic
	)
	body := func(i int) {
		defer func() {
			if r := recover(); r != nil {
				buf := make([]byte, 4096)
				buf = buf[:runtime.Stack(buf, false)]
				pmu.Lock()
				if first == nil || i < first.index {
					first = &capturedPanic{index: i, value: r, stack: buf}
				}
				pmu.Unlock()
			}
		}()
		fn(i)
	}
	done := ctx.Done()
	wg.Add(w)
	for g := 0; g < w; g++ {
		go func() {
			defer wg.Done()
			for {
				select {
				case <-done:
					return
				default:
				}
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				body(i)
			}
		}()
	}
	wg.Wait()
	if first != nil {
		panic(first.String())
	}
	return ctx.Err()
}

// Map evaluates fn over [0, n) in parallel and returns the results in
// submission order: out[i] = fn(i). Deterministic for any worker count.
func Map[T any](workers, n int, fn func(i int) T) []T {
	out := make([]T, n)
	ForEach(workers, n, func(i int) {
		out[i] = fn(i)
	})
	return out
}

// MapErr is Map for fallible items. All items run to completion; the error
// of the lowest failing index is returned (matching what a serial loop that
// stops at the first error would report), alongside the full result slice.
func MapErr[T any](workers, n int, fn func(i int) (T, error)) ([]T, error) {
	return MapErrCtx(context.Background(), workers, n, fn)
}

// MapErrCtx is MapErr with cooperative cancellation (see ForEachCtx). Item
// errors take precedence — the lowest failing index is reported, as in
// MapErr — and ctx.Err() is returned when the run was cut short with no item
// error. Indices skipped by cancellation keep their zero value in the result
// slice.
func MapErrCtx[T any](ctx context.Context, workers, n int, fn func(i int) (T, error)) ([]T, error) {
	out := make([]T, n)
	errs := make([]error, n)
	cerr := forEach(ctx, workers, n, func(i int) {
		out[i], errs[i] = fn(i)
	})
	for _, err := range errs {
		if err != nil {
			return out, err
		}
	}
	return out, cerr
}

// seedStep is the golden-ratio increment used throughout the repository to
// derive per-item seeds from a base seed (same constant as the pipeline's
// per-task fit seeds, so existing outputs are unchanged).
const seedStep = 0x9e3779b9

// SplitSeeds derives n deterministic, well-spread seeds from base:
// out[i] = base + i·0x9e3779b9. Parallel items seeded this way produce the
// same streams as the serial loop that splits the same way.
func SplitSeeds(base uint64, n int) []uint64 {
	out := make([]uint64, n)
	for i := range out {
		out[i] = base + uint64(i)*seedStep
	}
	return out
}
