package par

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
)

func TestCancelForEachCtxPreCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	ran := 0
	err := ForEachCtx(ctx, 4, 100, func(i int) { ran++ })
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if ran != 0 {
		t.Fatalf("%d items ran under a pre-cancelled context", ran)
	}
}

func TestCancelForEachCtxSerialStops(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	ran := 0
	err := ForEachCtx(ctx, -1, 100, func(i int) {
		ran++
		if i == 9 {
			cancel()
		}
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if ran != 10 {
		t.Fatalf("serial path ran %d items after cancelling at item 9", ran)
	}
}

func TestCancelForEachCtxParallelStops(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var ran atomic.Int64
	err := ForEachCtx(ctx, 4, 10000, func(i int) {
		if ran.Add(1) == 50 {
			cancel()
		}
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if n := ran.Load(); n >= 10000 {
		t.Fatalf("all %d items ran despite cancellation", n)
	}
}

func TestCancelForEachCtxNoCancelMatchesForEach(t *testing.T) {
	a := make([]int, 64)
	b := make([]int, 64)
	ForEach(3, 64, func(i int) { a[i] = i * i })
	if err := ForEachCtx(context.Background(), 3, 64, func(i int) { b[i] = i * i }); err != nil {
		t.Fatalf("uncancelled ForEachCtx returned %v", err)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("results diverge at %d", i)
		}
	}
}

func TestCancelMapErrCtxItemErrorWins(t *testing.T) {
	// An item error must take precedence over the context error, and the
	// lowest failing index must be the one reported.
	boom := errors.New("boom")
	ctx, cancel := context.WithCancel(context.Background())
	out, err := MapErrCtx(ctx, -1, 10, func(i int) (int, error) {
		if i == 3 {
			cancel()
			return 0, boom
		}
		return i, nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want item error", err)
	}
	if out[2] != 2 {
		t.Fatalf("completed item lost its result: %v", out)
	}
}

func TestCancelMapErrCtxSkippedKeepZero(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	out, err := MapErrCtx(ctx, -1, 10, func(i int) (int, error) {
		if i == 4 {
			cancel()
		}
		return i + 1, nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	for i := 0; i <= 4; i++ {
		if out[i] != i+1 {
			t.Fatalf("item %d lost its result: %v", i, out)
		}
	}
	for i := 5; i < 10; i++ {
		if out[i] != 0 {
			t.Fatalf("skipped item %d has non-zero value %d", i, out[i])
		}
	}
}
