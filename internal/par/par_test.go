package par

import (
	"errors"
	"fmt"
	"strings"
	"sync/atomic"
	"testing"

	"repro/internal/stats"
)

func TestWorkers(t *testing.T) {
	if got := Workers(4); got != 4 {
		t.Fatalf("Workers(4) = %d", got)
	}
	if got := Workers(-1); got != 1 {
		t.Fatalf("Workers(-1) = %d", got)
	}
	if got := Workers(0); got < 1 {
		t.Fatalf("Workers(0) = %d", got)
	}
}

// TestMapDeterministic is the package's core contract: the result of Map is
// identical for every worker count, including the serial path.
func TestMapDeterministic(t *testing.T) {
	const n = 500
	fn := func(i int) float64 {
		// A per-index deterministic stream: no shared state.
		rng := stats.NewRNG(uint64(i) + 1)
		s := 0.0
		for k := 0; k < 100; k++ {
			s += rng.Float64()
		}
		return s
	}
	want := Map(-1, n, fn) // serial reference
	for _, w := range []int{1, 2, 3, 7, 16, 0} {
		got := Map(w, n, fn)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("workers=%d: out[%d] = %v, want %v", w, i, got[i], want[i])
			}
		}
	}
}

func TestForEachRunsAll(t *testing.T) {
	for _, w := range []int{1, 3, 8} {
		var count atomic.Int64
		seen := make([]bool, 137)
		ForEach(w, len(seen), func(i int) {
			seen[i] = true
			count.Add(1)
		})
		if int(count.Load()) != len(seen) {
			t.Fatalf("workers=%d: ran %d items, want %d", w, count.Load(), len(seen))
		}
		for i, ok := range seen {
			if !ok {
				t.Fatalf("workers=%d: item %d not run", w, i)
			}
		}
	}
}

func TestForEachZeroItems(t *testing.T) {
	ForEach(4, 0, func(int) { t.Fatal("must not run") })
	if out := Map(4, 0, func(int) int { return 1 }); len(out) != 0 {
		t.Fatalf("Map over 0 items returned %v", out)
	}
}

// TestMapErrLowestIndex checks the serial-equivalent error selection: the
// reported error belongs to the lowest failing index, not the first to
// finish.
func TestMapErrLowestIndex(t *testing.T) {
	wantErr := errors.New("boom-3")
	for _, w := range []int{1, 4} {
		_, err := MapErr(w, 10, func(i int) (int, error) {
			if i == 7 {
				return 0, errors.New("boom-7")
			}
			if i == 3 {
				return 0, wantErr
			}
			return i, nil
		})
		if err == nil || err.Error() != "boom-3" {
			t.Fatalf("workers=%d: err = %v, want boom-3", w, err)
		}
	}
}

// TestPanicPropagates: a panic inside an item must surface on the caller's
// goroutine with the index attached, for every worker count.
func TestPanicPropagates(t *testing.T) {
	for _, w := range []int{1, 4} {
		func() {
			defer func() {
				r := recover()
				if r == nil {
					t.Fatalf("workers=%d: panic did not propagate", w)
				}
				msg := fmt.Sprint(r)
				if !strings.Contains(msg, "kapow") {
					t.Fatalf("workers=%d: panic message %q lost the cause", w, msg)
				}
			}()
			ForEach(w, 8, func(i int) {
				if i == 5 {
					panic("kapow")
				}
			})
		}()
	}
}

func TestSplitSeeds(t *testing.T) {
	seeds := SplitSeeds(42, 4)
	want := []uint64{42, 42 + 0x9e3779b9, 42 + 2*0x9e3779b9, 42 + 3*0x9e3779b9}
	for i := range want {
		if seeds[i] != want[i] {
			t.Fatalf("seeds[%d] = %d, want %d", i, seeds[i], want[i])
		}
	}
}

// BenchmarkMapSerial / BenchmarkMapParallel pair up to report the pool's
// raw speedup on a CPU-bound workload (run with -cpu to vary cores).
func benchWork(i int) float64 {
	rng := stats.NewRNG(uint64(i) + 1)
	s := 0.0
	for k := 0; k < 20000; k++ {
		s += rng.Float64()
	}
	return s
}

func BenchmarkMapSerial(b *testing.B) {
	for i := 0; i < b.N; i++ {
		Map(-1, 64, benchWork)
	}
}

func BenchmarkMapParallel(b *testing.B) {
	for i := 0; i < b.N; i++ {
		Map(0, 64, benchWork)
	}
}
