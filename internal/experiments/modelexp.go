package experiments

import (
	"math"

	"repro/internal/perfmodel"
	"repro/internal/stats"
)

// T8Families is the performance-model ablation: fit every fragment of the
// protein workload with each model family (the paper's 4-parameter HSLB
// form, plain Amdahl, and a power law), let AICc choose per fragment, and
// compare the allocations each family produces. It substantiates the
// paper's remark that "choosing an appropriate performance model is a
// crucial step" — and that the HSLB form describes these tasks well.
func T8Families(scale Scale) (*Table, error) {
	nFrag, n := 16, 512
	if scale == Full {
		nFrag, n = 64, 8192
	}
	w := Protein(nFrag, n*4, 8)
	rng := stats.NewRNG(w.Seed + 301)

	// Gather one shared set of samples per fragment.
	type fragFit struct {
		samples []perfmodel.Sample
		aiccWin perfmodel.Family
	}
	frags := make([]fragFit, w.NumTasks())
	for i := range frags {
		// Serial: the fragments share one noise stream.
		cap := w.Cost.MaxUsefulNodes(i)
		if cap > n {
			cap = n
		}
		counts := perfmodel.SuggestSampleNodes(1, cap, 5)
		frags[i].samples = w.Cost.GatherMonomerSamples(i, counts, rng)
	}
	// Model selection only reads the gathered samples with per-fragment
	// seeds, so it runs on the worker pool.
	wins, err := mapRows(len(frags), func(i int) (perfmodel.Family, error) {
		sel, err := perfmodel.SelectModel(frags[i].samples, perfmodel.FitOptions{Seed: w.Seed + uint64(i)})
		if err != nil {
			return 0, err
		}
		return sel[0].Family, nil
	})
	if err != nil {
		return nil, err
	}
	for i := range frags {
		frags[i].aiccWin = wins[i]
	}

	tbl := &Table{
		ID:     "T8",
		Title:  "performance-model families: fit quality and resulting allocation quality",
		Header: []string{"family", "mean R²", "picked by AICc", "executed", "vs best %"},
	}

	type famResult struct {
		name     string
		meanR2   float64
		picked   int
		executed float64
	}
	run := func(fam perfmodel.Family) (*famResult, error) {
		fits := make([]perfmodel.FitResult, w.NumTasks())
		sumR2 := 0.0
		picked := 0
		for i := range frags {
			ff, err := perfmodel.FitFamily(fam, frags[i].samples, perfmodel.FitOptions{Seed: w.Seed + uint64(i)})
			if err != nil {
				return nil, err
			}
			sumR2 += ff.R2
			// Represent every family through the HSLB Params container
			// so the allocation solver can consume it; the power family
			// is approximated by refitting its predictions with the
			// HSLB form (its allocation differences are then the point).
			switch fam {
			case perfmodel.FamilyPower:
				// Convert via dense resampling of the fitted curve.
				var synth []perfmodel.Sample
				for _, s := range frags[i].samples {
					synth = append(synth, perfmodel.Sample{Nodes: s.Nodes, Time: ff.Eval(s.Nodes)})
				}
				re, err := perfmodel.Fit(synth, perfmodel.FitOptions{Seed: w.Seed + uint64(i)})
				if err != nil {
					return nil, err
				}
				fits[i] = *re
				fits[i].R2 = ff.R2
			default:
				fits[i] = perfmodel.FitResult{Params: ff.HSLB, SSE: ff.SSE, R2: ff.R2}
			}
			if frags[i].aiccWin == fam {
				picked++
			}
		}
		p := w.Problem(fits, n)
		a, err := p.SolveParametric()
		if err != nil {
			return nil, err
		}
		exec, err := w.ExecuteMonomers(a.Nodes, w.Seed+71)
		if err != nil {
			return nil, err
		}
		return &famResult{meanR2: sumR2 / float64(w.NumTasks()), picked: picked, executed: exec}, nil
	}

	// Families only read the shared samples (fits use fixed per-fragment
	// seeds, executions per-call RNGs), so they run on the worker pool.
	fams := []perfmodel.Family{perfmodel.FamilyHSLB, perfmodel.FamilyAmdahl, perfmodel.FamilyPower}
	results, err := mapRows(len(fams), func(i int) (*famResult, error) {
		r, err := run(fams[i])
		if err != nil {
			return nil, err
		}
		r.name = fams[i].String()
		return r, nil
	})
	if err != nil {
		return nil, err
	}
	best := math.Inf(1)
	for _, r := range results {
		if r.executed < best {
			best = r.executed
		}
	}
	for _, r := range results {
		tbl.AddRow(r.name, r.meanR2, r.picked, r.executed, (r.executed/best-1)*100)
	}
	tbl.Note("paper: the HSLB form 'describes the scalability of all CESM components except sea ice well'")
	return tbl, nil
}
