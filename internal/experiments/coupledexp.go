package experiments

import (
	"fmt"

	"repro/internal/coupled"
	"repro/internal/stats"
)

// (T8Families lives in modelexp.go; F2's noise stream below is independent
// of the other experiments' seeds.)

// T6Coupled reproduces the follow-up's Table III analog on the coupled
// extension: manual vs HSLB allocations per component, with predicted and
// simulated-actual times, at 1° (128 and 2048 nodes) and 1/8° (8192 and
// 32768 nodes, constrained and unconstrained ocean sets).
func T6Coupled(scale Scale) (*Table, error) {
	type entry struct {
		label       string
		resolution  string
		nodes       int
		constrained bool
		cfg         *coupled.Config
	}
	var entries []entry
	add := func(label, res string, nodes int, constrained bool, cfg *coupled.Config) {
		entries = append(entries, entry{label, res, nodes, constrained, cfg})
	}
	add("1deg/128", "1deg", 128, true, coupled.OneDegree(128))
	if scale == Full {
		add("1deg/2048", "1deg", 2048, true, coupled.OneDegree(2048))
		add("eighth/8192", "eighth", 8192, true, coupled.EighthDegree(8192, true))
		add("eighth/32768", "eighth", 32768, true, coupled.EighthDegree(32768, true))
		add("eighth/8192-free-ocn", "eighth", 8192, false, coupled.EighthDegree(8192, false))
		add("eighth/32768-free-ocn", "eighth", 32768, false, coupled.EighthDegree(32768, false))
	} else {
		add("eighth/32768", "eighth", 32768, true, coupled.EighthDegree(32768, true))
		add("eighth/32768-free-ocn", "eighth", 32768, false, coupled.EighthDegree(32768, false))
	}

	tbl := &Table{
		ID:    "T6",
		Title: "coupled extension, Table III analog: manual vs HSLB (per-component nodes and times)",
		Header: []string{"config", "component", "manual n", "manual t",
			"HSLB n", "predicted t", "actual t"},
	}
	rng := stats.NewRNG(66)
	for _, e := range entries {
		hslbRes, err := e.cfg.Solve()
		if err != nil {
			return nil, fmt.Errorf("T6 %s: %w", e.label, err)
		}
		actual := e.cfg.SimulateActual(hslbRes, 0.03, rng)

		var manual *coupled.Result
		if m, ok := coupled.ManualTableIII(e.resolution, e.nodes); ok {
			manual = e.cfg.EvaluateManual(m)
		}
		comps := []string{"lnd", "ice", "atm", "ocn"}
		hn, ht := hslbRes.Nodes(), hslbRes.Times()
		at := actual.Times()
		for _, c := range comps {
			mn, mt := "-", "-"
			if manual != nil {
				mn = fmt.Sprintf("%d", manual.Nodes()[c])
				mt = fmt.Sprintf("%.3f", manual.Times()[c])
			}
			tbl.AddRow(e.label, c, mn, mt, hn[c], ht[c], at[c])
		}
		mTot := "-"
		if manual != nil {
			mTot = fmt.Sprintf("%.3f", manual.Total)
		}
		tbl.AddRow(e.label, "TOTAL", "", mTot, "", hslbRes.Total, actual.Total)
		if manual != nil {
			tbl.Note("%s: HSLB improves total by %.1f%% over manual (paper: ~0%% at 1°, ~10%% constrained, ~25%% unconstrained 1/8°)",
				e.label, (1-hslbRes.Total/manual.Total)*100)
		}
	}
	return tbl, nil
}

// F2Layouts reproduces the follow-up's Figure 4 analog: predicted total
// time of layouts (1)-(3) across node counts at 1° resolution. Layouts 1
// and 2 track each other; layout 3 (fully sequential) is worst.
func F2Layouts(scale Scale) (*Table, error) {
	ns := []int{64, 128, 256, 512}
	if scale == Full {
		ns = []int{64, 128, 256, 512, 1024, 2048}
	}
	tbl := &Table{
		ID:    "F2",
		Title: "layout comparison at 1° (predicted total seconds; figure series)",
		Header: []string{"nodes", "layout1", "layout1 actual", "layout2", "layout3",
			"layout3/layout1"},
	}
	rng := stats.NewRNG(77)
	for _, n := range ns {
		totals := make([]float64, 3)
		var actual1 float64
		for i, l := range []coupled.Layout{coupled.Layout1, coupled.Layout2, coupled.Layout3} {
			cfg := coupled.OneDegree(n)
			cfg.Layout = l
			r, err := cfg.Solve()
			if err != nil {
				return nil, fmt.Errorf("F2 layout%d at %d: %w", i+1, n, err)
			}
			totals[i] = r.Total
			if l == coupled.Layout1 {
				// The follow-up's Fig. 4 includes the experimental
				// layout-1 curve ("1exp"), with R² = 1.0 against the
				// prediction; simulate it with run-to-run noise.
				actual1 = cfg.SimulateActual(r, 0.02, rng).Total
			}
		}
		tbl.AddRow(n, totals[0], actual1, totals[1], totals[2], totals[2]/totals[0])
	}
	tbl.Note("paper: 'layouts 1 and 2 performed similar, while layout 3, as expected, performs the worst'; predicted vs experimental layout-1 R² = 1.0")
	return tbl, nil
}

// All runs every experiment at the given scale and returns the tables in
// DESIGN.md index order.
func All(scale Scale) ([]*Table, error) {
	runners := []func(Scale) (*Table, error){
		T1FitQuality, T2Objectives, T3Baselines, F1Scaling,
		T4Solver, T4Relaxation, T5Sensitivity, T6Coupled, F2Layouts,
		T7Crossover, T8Families, T9ParametricTable,
	}
	var out []*Table
	for _, r := range runners {
		t, err := r(scale)
		if err != nil {
			return nil, err
		}
		out = append(out, t)
	}
	return out, nil
}
