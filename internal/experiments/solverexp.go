package experiments

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/minlp"
	"repro/internal/perfmodel"
	"repro/internal/stats"
)

// T4Solver reproduces the solver-performance claims (C4): the MINLP solves
// in seconds even at the paper's scales, and branching on the allocation
// special ordered sets instead of their binaries cuts the search
// dramatically (the paper: "improved the runtime of the MINLP solver by two
// orders of magnitude").
func T4Solver(scale Scale) (*Table, error) {
	setSizes := []int{20, 60}
	total := 2048
	if scale == Full {
		setSizes = []int{20, 60, 200, 800}
		total = 32768
	}
	tbl := &Table{
		ID:    "T4",
		Title: "MINLP solver: SOS1 branching vs binary branching (allocation problems with sweet-spot sets)",
		Header: []string{"set size", "nodes(SOS)", "LPs(SOS)", "ms(SOS)",
			"nodes(bin)", "LPs(bin)", "ms(bin)", "time ratio"},
	}
	// The binary-branching ablation explodes combinatorially on large
	// sets (that is the point); give it a wall-clock budget so the table
	// always finishes, and report expired runs as lower bounds.
	binBudget := 5 * time.Second
	if scale == Full {
		binBudget = 60 * time.Second
	}
	rng := stats.NewRNG(44)
	for _, sz := range setSizes {
		p := solverInstance(rng, sz, total)
		runOne := func(o minlp.Options) (*minlp.Result, float64, error) {
			m, _, err := p.BuildModel()
			if err != nil {
				return nil, 0, err
			}
			start := time.Now()
			res := minlp.Solve(m, o)
			return res, float64(time.Since(start).Microseconds()) / 1000, nil
		}
		// The ablation varies only the branching strategy; pin both runs
		// to cold LP solves so warm-start vertex selection cannot reshape
		// either tree.
		rSOS, msSOS, err := runOne(minlp.Options{DisableWarmStart: true})
		if err != nil {
			return nil, err
		}
		if rSOS.Status != minlp.Optimal {
			return nil, fmt.Errorf("T4: SOS run ended %v on set size %d", rSOS.Status, sz)
		}
		rBin, msBin, err := runOne(minlp.Options{
			DisableSOSBranching: true,
			DisableWarmStart:    true,
			TimeLimit:           binBudget,
		})
		if err != nil {
			return nil, err
		}
		nodesBin := fmt.Sprintf("%d", rBin.Nodes)
		lpsBin := fmt.Sprintf("%d", rBin.LPSolves)
		msBinS := fmt.Sprintf("%.4g", msBin)
		ratio := fmt.Sprintf("%.4g", msBin/msSOS)
		if rBin.Status != minlp.Optimal {
			nodesBin = "≥" + nodesBin
			msBinS = "≥" + msBinS
			ratio = "≥" + ratio
		}
		tbl.AddRow(sz, rSOS.Nodes, rSOS.LPSolves, msSOS,
			nodesBin, lpsBin, msBinS, ratio)
	}
	tbl.Note("paper: SOS branching ~100x faster; 'the MINLP for 40960 nodes took less than 60 seconds'")
	return tbl, nil
}

// solverInstance builds an allocation problem where every task is
// restricted to a sweet-spot set of the given size — the structure that
// stresses set branching.
func solverInstance(rng *stats.RNG, setSize, total int) *core.Problem {
	p := &core.Problem{TotalNodes: total, Objective: core.MinMax}
	for t := 0; t < 4; t++ {
		set := make([]int, 0, setSize)
		n := 1 + rng.Intn(3)
		for len(set) < setSize && n < total {
			set = append(set, n)
			n += 1 + rng.Intn(2*total/setSize/3+1)
		}
		p.Tasks = append(p.Tasks, core.Task{
			Name: "t",
			Perf: perfmodel.Params{
				A: rng.Range(1e3, 5e4),
				B: rng.Range(0, 1e-3),
				C: 1 + rng.Float64()*0.4,
				D: rng.Range(0, 10),
			},
			Allowed: set,
		})
	}
	return p
}

// T4Relaxation is the second solver ablation: the value of the initial NLP
// (Kelley) relaxation solve and of cutting at fractional nodes.
func T4Relaxation(scale Scale) (*Table, error) {
	total := 2048
	if scale == Full {
		total = 32768
	}
	tbl := &Table{
		ID:     "T4b",
		Title:  "LP/NLP-based B&B ablations (same optimum, different work)",
		Header: []string{"variant", "B&B nodes", "LP solves", "OA cuts", "obj"},
	}
	rng := stats.NewRNG(45)
	p := solverInstance(rng, 60, total)
	variants := []struct {
		name string
		opt  core.SolverOptions
	}{
		{"default (Kelley warm start)", core.SolverOptions{}},
		{"skip NLP relaxation", core.SolverOptions{SkipNLPRelaxation: true}},
		{"cut at fractional", core.SolverOptions{CutAtFractional: true}},
	}
	for _, v := range variants {
		a, err := p.SolveMINLP(v.opt)
		if err != nil {
			return nil, err
		}
		tbl.AddRow(v.name, a.SolverNodes, a.LPSolves, a.OACuts, a.Makespan)
	}
	tbl.Note("all variants reach the same global optimum (convexity); they differ only in effort")
	return tbl, nil
}
