package experiments

import (
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/stats"
)

// T1FitQuality reproduces the fit-quality claim (C5): with ≥4 benchmark
// points per task the performance model fits with R² ≈ 1, and
// interpolation inside the sampled range is accurate.
func T1FitQuality(scale Scale) (*Table, error) {
	nFrag, maxSample := 24, 512
	if scale == Full {
		nFrag, maxSample = 64, 4096
	}
	w := Protein(nFrag, maxSample*8, 1)
	tbl := &Table{
		ID:     "T1",
		Title:  "fit quality vs number of benchmark points (protein workload, 2%-noise samples)",
		Header: []string{"points D", "mean R²", "min R²", "median interp err %", "max interp err %"},
	}
	// Each row re-benchmarks with its own noise stream (FitAll seeds a fresh
	// RNG per call), so the rows are independent and run on the worker pool.
	ds := []int{3, 4, 5, 6, 8}
	type t1row struct {
		r2s  []float64
		errs []float64
	}
	rows, err := mapRows(len(ds), func(di int) (t1row, error) {
		fits, err := w.FitAll(ds[di], maxSample, true)
		if err != nil {
			return t1row{}, err
		}
		row := t1row{r2s: make([]float64, len(fits))}
		for i, f := range fits {
			row.r2s[i] = f.R2
			// Interpolation probes at off-grid node counts inside each
			// fragment's sampled range.
			cap := w.Cost.MaxUsefulNodes(i)
			if cap > maxSample {
				cap = maxSample
			}
			for _, n := range []int{2, cap / 4, cap / 2, 3 * cap / 4} {
				if n < 2 || n > cap {
					continue
				}
				truth := w.Cost.MonomerTotalTime(i, n, nil)
				pred := f.Params.Eval(float64(n))
				row.errs = append(row.errs, math.Abs(pred-truth)/truth*100)
			}
		}
		return row, nil
	})
	if err != nil {
		return nil, err
	}
	for di, row := range rows {
		tbl.AddRow(ds[di], stats.Mean(row.r2s), stats.Min(row.r2s),
			stats.Quantile(row.errs, 0.5), stats.Max(row.errs))
	}
	tbl.Note("paper: 'four points were enough to build well-fitted scaling curves'; R² 'very close to 1'")
	return tbl, nil
}

// T2Objectives reproduces the objective comparison (C3): min-max and
// max-min allocations balance comparably; min-sum is much worse.
func T2Objectives(scale Scale) (*Table, error) {
	nFrag := 16
	ns := []int{256, 1024}
	if scale == Full {
		nFrag = 64
		ns = []int{256, 1024, 4096, 16384}
	}
	w := Protein(nFrag, 65536, 2)
	fits, err := w.FitAll(5, 1024, true)
	if err != nil {
		return nil, err
	}
	tbl := &Table{
		ID:     "T2",
		Title:  "objective comparison: resulting makespan of each objective's allocation",
		Header: []string{"nodes", "min-max", "max-min", "min-sum", "min-sum / min-max"},
	}
	// Rows only read the shared fits and solve fresh problems, so they run
	// on the worker pool.
	rows, err := mapRows(len(ns), func(ni int) ([]float64, error) {
		n := ns[ni]
		row := make([]float64, 3)
		for i, obj := range []core.Objective{core.MinMax, core.MaxMin, core.MinSum} {
			p := w.Problem(fits, n)
			p.Objective = obj
			a, err := p.SolveParametric()
			if err != nil {
				return nil, fmt.Errorf("T2 %v at %d: %w", obj, n, err)
			}
			// Judge every objective by the true executed makespan.
			row[i] = stats.Max(w.TrueTimes(a.Nodes))
		}
		return row, nil
	})
	if err != nil {
		return nil, err
	}
	for ni, row := range rows {
		tbl.AddRow(ns[ni], row[0], row[1], row[2], row[2]/row[0])
	}
	tbl.Note("paper: min-max slightly better than max-min; min-sum 'performs much worse'")
	return tbl, nil
}

// T3Baselines reproduces the headline comparison (C2): HSLB versus the
// uniform GDDI default, proportional and manual-mimic heuristics, and
// auto-tuned dynamic dispatch, at growing machine sizes. All strategies are
// judged by executing the monomer phase in the simulator.
func T3Baselines(scale Scale) (*Table, error) {
	type wl struct {
		name string
		mk   func(machineNodes int) *Workload
	}
	wls := []wl{
		{"protein", func(mn int) *Workload { return Protein(32, mn, 3) }},
		{"water", func(mn int) *Workload { return Water(64, mn, 4) }},
	}
	ns := []int{128, 512}
	if scale == Full {
		wls = []wl{
			{"protein", func(mn int) *Workload { return Protein(64, mn, 3) }},
			{"water", func(mn int) *Workload { return Water(256, mn, 4) }},
		}
		ns = []int{128, 512, 2048, 8192, 32768}
	}
	tbl := &Table{
		ID:    "T3",
		Title: "executed monomer-phase time: HSLB vs baselines (seconds; speedup vs uniform groups)",
		Header: []string{"workload", "nodes", "uniform", "proportional", "manual",
			"dlb-tuned", "HSLB", "speedup"},
	}
	// Every (workload, node-count) cell builds its own workload from fixed
	// seeds, so the grid flattens into independent rows for the worker pool;
	// rows are appended in grid order afterwards.
	type cell struct {
		wi, n int
	}
	var grid []cell
	for wi := range wls {
		for _, n := range ns {
			grid = append(grid, cell{wi, n})
		}
	}
	type t3row struct {
		skip                           bool
		uni, prop, man, bestDLB, hslbT float64
	}
	rows, err := mapRows(len(grid), func(gi int) (t3row, error) {
		wspec, n := wls[grid[gi].wi], grid[gi].n
		w := wspec.mk(n * 2)
		k := w.NumTasks()
		if n < k {
			return t3row{skip: true}, nil
		}
		fits, err := w.FitAll(5, n, true)
		if err != nil {
			return t3row{}, err
		}
		p := w.Problem(fits, n)

		exec := func(a *core.Allocation) (float64, error) {
			nodes := append([]int(nil), a.Nodes...)
			// Idle leftover nodes stay idle (as the paper's layouts do).
			return w.ExecuteMonomers(nodes, w.Seed+77)
		}
		uni, err := exec(core.Uniform(p))
		if err != nil {
			return t3row{}, err
		}
		prop, err := exec(core.Proportional(p))
		if err != nil {
			return t3row{}, err
		}
		man, err := exec(core.ManualMimic(p, 8))
		if err != nil {
			return t3row{}, err
		}
		hslbAlloc, err := p.SolveParametric()
		if err != nil {
			return t3row{}, err
		}
		hslbT, err := exec(hslbAlloc)
		if err != nil {
			return t3row{}, err
		}
		// Best dynamic configuration: sweep group counts.
		bestDLB := math.Inf(1)
		for g := 1; g <= k; g *= 2 {
			v, err := w.ExecuteDynamic(n, g, w.Seed+78)
			if err != nil {
				return t3row{}, err
			}
			if v < bestDLB {
				bestDLB = v
			}
		}
		return t3row{uni: uni, prop: prop, man: man, bestDLB: bestDLB, hslbT: hslbT}, nil
	})
	if err != nil {
		return nil, err
	}
	for gi, r := range rows {
		if r.skip {
			continue
		}
		tbl.AddRow(wls[grid[gi].wi].name, grid[gi].n,
			r.uni, r.prop, r.man, r.bestDLB, r.hslbT, r.uni/r.hslbT)
	}
	tbl.Note("paper shape: HSLB consistently well balanced; gap vs uniform grows with heterogeneity and scale")
	return tbl, nil
}

// F1Scaling reproduces the predicted-vs-actual validation (C1): across a
// node sweep, the HSLB-predicted total time tracks the executed time.
func F1Scaling(scale Scale) (*Table, error) {
	nFrag := 24
	ns := []int{64, 128, 256, 512}
	if scale == Full {
		nFrag = 64
		ns = []int{128, 256, 512, 1024, 2048, 4096, 8192, 16384, 32768}
	}
	w := Protein(nFrag, 65536, 5)
	fits, err := w.FitAll(5, 2048, true)
	if err != nil {
		return nil, err
	}
	tbl := &Table{
		ID:     "F1",
		Title:  "scaling curve: HSLB predicted vs executed monomer time (figure series)",
		Header: []string{"nodes", "predicted", "actual", "error %", "imbalance"},
	}
	// Rows share the fits read-only and execute with per-row RNGs, so the
	// sweep runs on the worker pool.
	var sweep []int
	for _, n := range ns {
		if n >= w.NumTasks() {
			sweep = append(sweep, n)
		}
	}
	type f1row struct {
		pred, actual, imbalance float64
	}
	rows, err := mapRows(len(sweep), func(ni int) (f1row, error) {
		p := w.Problem(fits, sweep[ni])
		a, err := p.SolveParametric()
		if err != nil {
			return f1row{}, err
		}
		actual, err := w.ExecuteMonomers(a.Nodes, w.Seed+99)
		if err != nil {
			return f1row{}, err
		}
		return f1row{pred: a.Makespan, actual: actual,
			imbalance: stats.Imbalance(w.TrueTimes(a.Nodes))}, nil
	})
	if err != nil {
		return nil, err
	}
	for ni, r := range rows {
		tbl.AddRow(sweep[ni], r.pred, r.actual,
			math.Abs(r.pred-r.actual)/r.actual*100, r.imbalance)
	}
	tbl.Note("paper: predicted and actual total times 'very close to each other' at all scales")
	return tbl, nil
}

// T5Sensitivity reproduces the sample-budget guidance (C5): allocation
// quality as a function of the number of benchmark points, and the
// interpolation-vs-extrapolation contrast.
func T5Sensitivity(scale Scale) (*Table, error) {
	nFrag, n := 16, 512
	if scale == Full {
		nFrag, n = 64, 8192
	}
	w := Protein(nFrag, n*4, 6)
	tbl := &Table{
		ID:     "T5",
		Title:  "allocation quality vs benchmark budget (executed monomer time)",
		Header: []string{"points D", "sample range", "mean R²", "executed", "vs best %"},
	}
	type variant struct {
		d     int
		maxNs int
		label string
	}
	var variants []variant
	for _, d := range []int{3, 4, 5, 6, 10} {
		variants = append(variants, variant{d, n, "interpolate"})
	}
	// The extrapolation variant benchmarks only up to 6 nodes per task and
	// lets the solver extrapolate far beyond the sampled range.
	variants = append(variants, variant{5, 6, "extrapolate"})
	// Variants are independent (fresh noise stream per FitAll call, per-call
	// execution RNGs), so they run on the worker pool.
	type t5row struct {
		r2, executed float64
	}
	rows, err := mapRows(len(variants), func(i int) (t5row, error) {
		v := variants[i]
		fits, err := w.FitAll(v.d, v.maxNs, true)
		if err != nil {
			return t5row{}, err
		}
		sum := 0.0
		for _, f := range fits {
			sum += f.R2
		}
		p := w.Problem(fits, n)
		a, err := p.SolveParametric()
		if err != nil {
			return t5row{}, err
		}
		t, err := w.ExecuteMonomers(a.Nodes, w.Seed+55)
		if err != nil {
			return t5row{}, err
		}
		return t5row{r2: sum / float64(len(fits)), executed: t}, nil
	})
	if err != nil {
		return nil, err
	}
	best := math.Inf(1)
	results := make([]float64, len(variants))
	r2s := make([]float64, len(variants))
	for i, r := range rows {
		r2s[i] = r.r2
		results[i] = r.executed
		if r.executed < best {
			best = r.executed
		}
	}
	for i, v := range variants {
		tbl.AddRow(v.d, v.label, r2s[i], results[i], (results[i]/best-1)*100)
	}
	tbl.Note("paper: ≥4 points suffice; sampling so predictions interpolate 'is important for accuracy'")
	return tbl, nil
}

// T7Crossover reproduces the introduction's regime claim: dynamic load
// balancing wins with many small tasks; static (HSLB) wins with few large
// diverse tasks on the same machine.
func T7Crossover(scale Scale) (*Table, error) {
	n := 256
	frags := []int{8, 16, 64, 256}
	if scale == Full {
		n = 2048
		frags = []int{8, 16, 64, 256, 1024}
	}
	tbl := &Table{
		ID:     "T7",
		Title:  "SLB vs DLB crossover: executed monomer time as task count grows (fixed machine, 5% task-time jitter)",
		Header: []string{"fragments", "tasks/nodes", "HSLB static", "DLB tuned", "DLB/HSLB"},
	}
	// Each fragment count builds its own workload from fixed seeds, so the
	// rows run on the worker pool and are appended in sweep order.
	type t7row struct {
		k              int
		hslbT, bestDLB float64
	}
	rows, err := mapRows(len(frags), func(fi int) (t7row, error) {
		w := Protein(frags[fi], n*4, 7)
		// Task times jitter heavily run-to-run (SCF iteration counts vary
		// with the evolving embedding field) — the regime where dynamic
		// rebalancing has something to rebalance. With accurate, stable
		// predictions a well-tuned static plan matches dynamic dispatch
		// even for many tasks; the paper's SLB/DLB positioning is about
		// unpredictability times task granularity.
		w.Machine.NoiseSigma = 0.05
		k := w.NumTasks()
		fits, err := w.FitAll(5, n, true)
		if err != nil {
			return t7row{}, err
		}
		// The static plan — group count, sizes, and assignment — is
		// chosen entirely from the fitted predictions (no runtime
		// rebalancing), covering both the one-group-per-task regime and
		// the tasks ≫ groups regime.
		hslbT, err := w.ExecuteStaticTuned(n, fits, w.Seed+33)
		if err != nil {
			return t7row{}, err
		}
		bestDLB := math.Inf(1)
		for g := 1; g <= k && g <= n; g *= 2 {
			v, err := w.ExecuteDynamic(n, g, w.Seed+34)
			if err != nil {
				return t7row{}, err
			}
			if v < bestDLB {
				bestDLB = v
			}
		}
		return t7row{k: k, hslbT: hslbT, bestDLB: bestDLB}, nil
	})
	if err != nil {
		return nil, err
	}
	for fi, r := range rows {
		tbl.AddRow(frags[fi], float64(r.k)/float64(n), r.hslbT, r.bestDLB, r.bestDLB/r.hslbT)
	}
	tbl.Note("paper intro: 'in the special cases of a few large tasks of diverse size, DLB algorithms are not appropriate'")
	return tbl, nil
}
