package experiments

import (
	"context"
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/perfmodel"
	"repro/internal/stats"
)

// T9ParametricTable measures the breakpoint-table census: for workload
// families of increasing budget range, how many segments the optimal
// allocation really has, how many solves the table build spends walking
// them (boundary verification included), and the amortization over solving
// every budget directly. Sweet-spot (power-of-two) allowed sets are the
// production shape — a handful of segments across thousands of budgets —
// while dense integer ranges are the adversarial shape where nearly every
// budget is its own segment and the table degrades to per-budget solving.
func T9ParametricTable(scale Scale) (*Table, error) {
	ranges := []int{256, 1024}
	if scale == Full {
		ranges = []int{256, 1024, 4096, 16384}
	}
	tbl := &Table{
		ID:    "T9",
		Title: "Parametric breakpoint tables: segment census and build cost over the budget range",
		Header: []string{"shape", "budgets", "segments", "build solves",
			"build ms", "direct ms", "amortization"},
	}
	rng := stats.NewRNG(47)
	for _, shape := range []string{"sweet-spot", "dense"} {
		for _, hi := range ranges {
			p := tableInstance(rng, shape, hi)
			lo := len(p.Tasks)
			start := time.Now()
			tab, err := core.BuildParametricTable(context.Background(), p, lo, hi, core.TableOptions{})
			if err != nil {
				return nil, fmt.Errorf("T9 %s [%d,%d]: %w", shape, lo, hi, err)
			}
			buildMS := float64(time.Since(start).Microseconds()) / 1000

			start = time.Now()
			for n := lo; n <= hi; n++ {
				q := p.WithBudget(n)
				if q.Validate() != nil {
					continue
				}
				if _, err := q.SolveParametricContext(context.Background()); err != nil {
					return nil, fmt.Errorf("T9 %s direct N=%d: %w", shape, n, err)
				}
			}
			directMS := float64(time.Since(start).Microseconds()) / 1000

			budgets := hi - lo + 1
			tbl.AddRow(shape, budgets, len(tab.Segments), tab.Solves,
				fmt.Sprintf("%.4g", buildMS), fmt.Sprintf("%.4g", directMS),
				fmt.Sprintf("%.3gx", float64(budgets)/float64(max(1, tab.Solves))))
		}
	}
	tbl.Note("sweet-spot sets give O(|set|·tasks) segments regardless of range; dense ranges break at nearly every budget")
	return tbl, nil
}

// tableInstance builds the two workload shapes of T9 at a given maximum
// budget: power-of-two sweet spots or unconstrained dense ranges.
func tableInstance(rng *stats.RNG, shape string, total int) *core.Problem {
	p := &core.Problem{TotalNodes: total, Objective: core.MinMax}
	for t := 0; t < 4; t++ {
		task := core.Task{
			Name: "t",
			Perf: perfmodel.Params{
				A: rng.Range(1e3, 5e4),
				B: rng.Range(0, 1e-3),
				C: 1 + rng.Float64()*0.4,
				D: rng.Range(0, 10),
			},
		}
		if shape == "sweet-spot" {
			for n := 1; n <= total; n *= 2 {
				task.Allowed = append(task.Allowed, n)
			}
		}
		p.Tasks = append(p.Tasks, task)
	}
	return p
}
