package experiments

import (
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/fmo"
	"repro/internal/gddi"
	"repro/internal/machine"
	"repro/internal/perfmodel"
	"repro/internal/stats"
)

// Workload bundles an FMO system, its cost model, and everything the
// experiments need to benchmark, fit, allocate, and execute it.
type Workload struct {
	Name    string
	Mol     *fmo.Molecule
	Machine *machine.Machine
	Cost    *fmo.CostModel
	Seed    uint64
}

// Protein returns the heterogeneous workload (per-residue fragments).
func Protein(nFrag, machineNodes int, seed uint64) *Workload {
	rng := stats.NewRNG(seed)
	mol := fmo.Polypeptide(nFrag, 1, rng)
	m := machine.Intrepid()
	m.Nodes = machineNodes
	return &Workload{
		Name: "protein", Mol: mol, Machine: m,
		Cost: fmo.NewCostModel(mol, m), Seed: seed,
	}
}

// Water returns the homogeneous workload (2-water fragments).
func Water(nWaters, machineNodes int, seed uint64) *Workload {
	rng := stats.NewRNG(seed)
	mol := fmo.WaterCluster(nWaters, 2, rng)
	m := machine.Intrepid()
	m.Nodes = machineNodes
	return &Workload{
		Name: "water", Mol: mol, Machine: m,
		Cost: fmo.NewCostModel(mol, m), Seed: seed,
	}
}

// NumTasks returns the fragment count.
func (w *Workload) NumTasks() int { return len(w.Mol.Fragments) }

// FitAll runs HSLB steps 1-2 for every fragment: benchmark at `points` node
// counts — capped per fragment at its useful block count, following the
// paper's guidance to sample between the minimum feasible and "the greatest
// number of nodes possible" (beyond the block count extra nodes only idle,
// and no practitioner benchmarks there) — then fit.
func (w *Workload) FitAll(points, maxSample int, noise bool) ([]perfmodel.FitResult, error) {
	// Gathering stays serial: the noisy benchmarks share one noise stream,
	// and drawing from it out of order would change the recorded samples.
	var rng *stats.RNG
	if noise {
		rng = stats.NewRNG(w.Seed + 101)
	}
	allSamples := make([][]perfmodel.Sample, w.NumTasks())
	for i := range allSamples {
		cap := w.Cost.MaxUsefulNodes(i)
		if maxSample < cap {
			cap = maxSample
		}
		counts := perfmodel.SuggestSampleNodes(1, cap, points)
		// Average three repeats per point, as benchmarking practice does,
		// to keep run-to-run noise out of the fit.
		samples := w.Cost.GatherMonomerSamples(i, counts, rng)
		if rng != nil {
			for rep := 0; rep < 2; rep++ {
				more := w.Cost.GatherMonomerSamples(i, counts, rng)
				for s := range samples {
					samples[s].Time += more[s].Time
				}
			}
			for s := range samples {
				samples[s].Time /= 3
			}
		}
		allSamples[i] = samples
	}
	// The fits are independent pure computations with per-fragment seeds, so
	// they run on the worker pool; results land in fragment order either way.
	return mapRows(len(allSamples), func(i int) (perfmodel.FitResult, error) {
		fr, err := perfmodel.Fit(allSamples[i], perfmodel.FitOptions{
			Seed:        w.Seed + uint64(i),
			Parallelism: -1, // the per-fragment loop already fills the pool
		})
		if err != nil {
			return perfmodel.FitResult{}, err
		}
		return *fr, nil
	})
}

// Problem assembles the allocation problem from fits, capping each task at
// its useful block count.
func (w *Workload) Problem(fits []perfmodel.FitResult, totalNodes int) *core.Problem {
	p := &core.Problem{TotalNodes: totalNodes, Objective: core.MinMax}
	for i, f := range fits {
		p.Tasks = append(p.Tasks, core.Task{
			Name:     w.Mol.Fragments[i].Name,
			Perf:     f.Params,
			MaxNodes: w.Cost.MaxUsefulNodes(i),
		})
	}
	return p
}

// ExecuteMonomers runs the monomer phase (all SCC iterations) with the
// given group sizes under static one-group-per-fragment assignment and
// returns the measured monomer time.
func (w *Workload) ExecuteMonomers(groupSizes []int, execSeed uint64) (float64, error) {
	assign := make([]int, w.NumTasks())
	for i := range assign {
		assign[i] = i
	}
	res, err := gddi.RunFMO2(&gddi.FMO2Config{
		Cost:          w.Cost,
		GroupSizes:    groupSizes,
		MonomerPolicy: gddi.StaticAssign,
		MonomerAssign: assign,
		RNG:           stats.NewRNG(execSeed),
	})
	if err != nil {
		return 0, err
	}
	return res.MonomerTime, nil
}

// ExecuteStaticLPT runs the monomer phase on `groups` equal groups with a
// STATIC task→group assignment computed from the fitted predictions (no
// runtime rebalancing) — HSLB's honest extension when tasks outnumber
// groups: decisions use only step-2 estimates.
func (w *Workload) ExecuteStaticLPT(totalNodes, groups int, fits []perfmodel.FitResult, execSeed uint64) (float64, error) {
	sizes := gddi.UniformGroups(totalNodes, groups)
	est := make([]gddi.Task, w.NumTasks())
	for i := range est {
		params := fits[i].Params
		est[i] = gddi.Task{ID: i, Time: func(n int, _ *stats.RNG) float64 {
			return params.Eval(float64(n))
		}}
	}
	assign := gddi.StaticLPTAssign(sizes, est)
	res, err := gddi.RunFMO2(&gddi.FMO2Config{
		Cost:          w.Cost,
		GroupSizes:    sizes,
		MonomerPolicy: gddi.StaticAssign,
		MonomerAssign: assign,
		RNG:           stats.NewRNG(execSeed),
	})
	if err != nil {
		return 0, err
	}
	return res.MonomerTime, nil
}

// StaticTunedPlan selects, purely from the fitted predictions (the static
// discipline: every decision is made offline), the best of:
//
//   - one group per task, sized by the parametric allocation solver
//     (requires tasks ≤ nodes), and
//   - g equal groups with a static LPT assignment, for g in a power-of-two
//     sweep,
//
// returning the chosen group sizes and assignment.
func (w *Workload) StaticTunedPlan(totalNodes int, fits []perfmodel.FitResult) (sizes []int, assign []int, predicted float64, err error) {
	k := w.NumTasks()
	est := make([]gddi.Task, k)
	for i := range est {
		params := fits[i].Params
		est[i] = gddi.Task{ID: i, Time: func(n int, _ *stats.RNG) float64 {
			return params.Eval(float64(n))
		}}
	}
	best := math.Inf(1)
	consider := func(s []int, a []int) error {
		pred, err := gddi.Run(&gddi.Spec{GroupSizes: s, Tasks: est, Policy: gddi.StaticAssign, Assign: a})
		if err != nil {
			return err
		}
		if pred.Makespan < best {
			best = pred.Makespan
			sizes, assign, predicted = s, a, pred.Makespan
		}
		return nil
	}
	if k <= totalNodes {
		p := w.Problem(fits, totalNodes)
		alloc, err := p.SolveParametric()
		if err != nil {
			return nil, nil, 0, err
		}
		ident := make([]int, k)
		for i := range ident {
			ident[i] = i
		}
		if err := consider(alloc.Nodes, ident); err != nil {
			return nil, nil, 0, err
		}
	}
	maxG := k
	if totalNodes < maxG {
		maxG = totalNodes
	}
	for g := 1; g <= maxG; g *= 2 {
		s := gddi.UniformGroups(totalNodes, g)
		if err := consider(s, gddi.StaticLPTAssign(s, est)); err != nil {
			return nil, nil, 0, err
		}
	}
	if sizes == nil {
		return nil, nil, 0, fmt.Errorf("experiments: no feasible static plan for %d tasks on %d nodes", k, totalNodes)
	}
	return sizes, assign, predicted, nil
}

// ExecuteStaticTuned runs the monomer phase with the StaticTunedPlan.
func (w *Workload) ExecuteStaticTuned(totalNodes int, fits []perfmodel.FitResult, execSeed uint64) (float64, error) {
	sizes, assign, _, err := w.StaticTunedPlan(totalNodes, fits)
	if err != nil {
		return 0, err
	}
	res, err := gddi.RunFMO2(&gddi.FMO2Config{
		Cost:          w.Cost,
		GroupSizes:    sizes,
		MonomerPolicy: gddi.StaticAssign,
		MonomerAssign: assign,
		RNG:           stats.NewRNG(execSeed),
	})
	if err != nil {
		return 0, err
	}
	return res.MonomerTime, nil
}

// ExecuteDynamic runs the monomer phase with dynamic dispatch over `groups`
// equal groups (the DLB comparison path).
func (w *Workload) ExecuteDynamic(totalNodes, groups int, execSeed uint64) (float64, error) {
	res, err := gddi.RunFMO2(&gddi.FMO2Config{
		Cost:          w.Cost,
		GroupSizes:    gddi.UniformGroups(totalNodes, groups),
		MonomerPolicy: gddi.DynamicLPT,
		RNG:           stats.NewRNG(execSeed),
	})
	if err != nil {
		return 0, err
	}
	return res.MonomerTime, nil
}

// TrueTimes returns the noise-free monomer-loop time of every fragment at
// the given per-fragment allocation.
func (w *Workload) TrueTimes(nodes []int) []float64 {
	out := make([]float64, len(nodes))
	for i, n := range nodes {
		out[i] = w.Cost.MonomerTotalTime(i, n, nil)
	}
	return out
}
