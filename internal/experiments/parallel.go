package experiments

import (
	"context"
	"sync/atomic"

	"repro/internal/par"
)

// parKnob is the package-wide parallelism setting for the experiment
// runners (atomic so tests and benchmarks on different goroutines can read
// it safely). 0 = one worker per CPU, negative = serial.
var parKnob atomic.Int64

// SetParallelism sets the worker-pool bound used by the experiment runners
// (cmd/fmobench's -parallel flag lands here). Every table is bit-identical
// for any setting: each row derives its randomness from fixed seeds, rows
// are computed as independent items, and results are merged in row order.
// Timing columns (the ms columns of T4/T4b) are the one exception — those
// runners always execute their timed solves serially so the measurements
// stay honest.
func SetParallelism(n int) { parKnob.Store(int64(n)) }

// Parallelism returns the current setting (see SetParallelism).
func Parallelism() int { return int(parKnob.Load()) }

// ctxKnob is the package-wide cancellation context for the experiment
// runners, mirroring the parallelism knob (cmd/fmobench's -timeout flag
// lands here). Stored atomically for the same cross-goroutine reason.
var ctxKnob atomic.Value // context.Context

// SetContext installs the context consulted between rows by every runner:
// once it is cancelled, in-flight tables abort with its error. A nil ctx
// restores the default (context.Background(), never cancelled). Like
// SetParallelism this does not change any computed value — a run that
// finishes before cancellation is bit-identical to an unlimited one.
func SetContext(ctx context.Context) {
	if ctx == nil {
		ctx = context.Background()
	}
	ctxKnob.Store(ctx)
}

// Context returns the current runner context (see SetContext).
func Context() context.Context {
	if v := ctxKnob.Load(); v != nil {
		return v.(context.Context)
	}
	return context.Background()
}

// mapRows evaluates fn over [0, n) on the package worker pool and returns
// the results in row order; the first error (by row index) aborts the
// table, as does cancellation of the package context. Row functions must
// be self-contained: fixed seeds, no shared mutable state.
func mapRows[T any](n int, fn func(i int) (T, error)) ([]T, error) {
	return par.MapErrCtx(Context(), Parallelism(), n, fn)
}
